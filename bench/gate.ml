(* The CI performance gate: compare a fresh `main.exe --json` report
   against the committed baseline and fail on regressions.

   Every metric is normalized by its report's [calibration_ns] — the
   cost of a fixed pure-OCaml loop measured on the same machine in the
   same run — so the comparison is a ratio of ratios and survives
   running the baseline and the candidate on different hardware. A
   metric regresses when

     (cur_ns / cur_calibration) > (base_ns / base_calibration) * (1 + threshold)

   Derived metrics (speedup ratios) are reported but never gated: they
   depend on the runner's core count. Exit status: 0 when every
   baseline metric passes, 1 on any regression or a metric missing from
   the current report, 2 on usage/parse errors. *)

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader (objects, numbers, strings) — just enough for
   the reports main.ml emits, avoiding any parsing dependency.          *)
(* ------------------------------------------------------------------ *)

type json =
  | Num of float
  | Str of string
  | Obj of (string * json) list

exception Parse_error of string

let parse (src : string) : json =
  let pos = ref 0 in
  let len = String.length src in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some (('"' | '\\' | '/') as c) ->
           Buffer.add_char buf c;
           advance ();
           go ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
         | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
         | _ -> fail "unsupported escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '"' -> Str (string_lit ())
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let key = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Report access                                                       *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | Num _ | Str _ -> None

let num_exn what = function
  | Some (Num f) -> f
  | _ -> raise (Parse_error (what ^ ": missing or non-numeric"))

let metrics_exn report =
  match field "metrics" report with
  | Some (Obj kvs) ->
    List.filter_map (function k, Num f -> Some (k, f) | _ -> None) kvs
  | _ -> raise (Parse_error "metrics: missing or not an object")

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)
(* ------------------------------------------------------------------ *)

let () =
  let baseline = ref "" in
  let current = ref "" in
  let threshold = ref 0.25 in
  let usage = "gate --baseline FILE --current FILE [--threshold F]" in
  Arg.parse
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline report");
      ("--current", Arg.Set_string current, "FILE freshly measured report");
      ( "--threshold",
        Arg.Set_float threshold,
        "F allowed relative regression (default 0.25)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  match (parse_file !baseline, parse_file !current) with
  | exception Parse_error e ->
    Printf.eprintf "gate: %s\n" e;
    exit 2
  | exception Sys_error e ->
    Printf.eprintf "gate: %s\n" e;
    exit 2
  | base, cur ->
    let base_cal = num_exn "baseline calibration_ns" (field "calibration_ns" base) in
    let cur_cal = num_exn "current calibration_ns" (field "calibration_ns" cur) in
    let cur_metrics = metrics_exn cur in
    let failures = ref 0 in
    Printf.printf "perf gate: threshold %+.0f%%, calibration %.0f -> %.0f ns\n"
      (100. *. !threshold) base_cal cur_cal;
    List.iter
      (fun (name, base_ns) ->
        match List.assoc_opt name cur_metrics with
        | None ->
          incr failures;
          Printf.printf "  FAIL %-24s missing from the current report\n" name
        | Some cur_ns ->
          let base_ratio = base_ns /. base_cal in
          let cur_ratio = cur_ns /. cur_cal in
          let change = (cur_ratio /. base_ratio) -. 1. in
          let ok = change <= !threshold in
          if not ok then incr failures;
          Printf.printf "  %s %-24s %10.0f ns -> %10.0f ns  normalized %+6.1f%%\n"
            (if ok then "ok  " else "FAIL")
            name base_ns cur_ns (100. *. change))
      (metrics_exn base);
    (match field "derived" cur with
     | Some (Obj kvs) ->
       List.iter
         (function
           | k, Num f -> Printf.printf "  info %-24s %.2fx (not gated)\n" k f
           | _ -> ())
         kvs
     | _ -> ());
    if !failures > 0 then begin
      Printf.printf
        "perf gate FAILED: %d metric(s) regressed more than %.0f%%\n\
         (apply the bench-override label to the PR to ship a known regression\n\
         and refresh bench/baseline.json in the same change)\n"
        !failures (100. *. !threshold);
      exit 1
    end
    else print_endline "perf gate passed"
