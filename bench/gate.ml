(* The CI performance gate: compare a fresh `main.exe --json` report
   against the committed baseline and fail on regressions.

   Every metric is normalized by its report's [calibration_ns] — the
   cost of a fixed pure-OCaml loop measured on the same machine in the
   same run — so the comparison is a ratio of ratios and survives
   running the baseline and the candidate on different hardware. A
   metric regresses when

     (cur_ns / cur_calibration) > (base_ns / base_calibration) * (1 + threshold)

   Derived metrics (speedup ratios) are gated where they are
   meaningful, reported as info otherwise:

   - [trace_disabled_overhead], the cost of a disabled tracing span
     relative to one semantics statement, fails above
     --trace-overhead-max (default 0.02: tracing off must stay within
     2%). Machine-free, always gated.
   - [session_warm_speedup], a warm service session relative to paying
     full session setup per request, fails below --session-speedup-min
     (default 5: the daemon must beat one-shot clients by that margin).
     Machine-free, always gated.
   - [constraint_delta_speedup], a warm differential commit relative to
     from-scratch constraint re-evaluation, fails below
     --delta-speedup-min (default 0: disabled; CI passes 5 — the
     differential layer must beat re-running every compiled plan by
     that margin). Machine-free, gated whenever the minimum is > 0.
   - [monitor_commit_overhead], a transactional commit with streaming
     temporal monitors attached relative to the same commit without
     them, fails above --monitor-overhead-max (default 0: disabled; CI
     passes 3 — monitoring a two-axiom theory must stay within 3x the
     bare commit). Machine-free, gated whenever the maximum is > 0.
   - [gateway_rps], aggregate pipelined requests/second through the
     socket gateway, fails below --rps-min (default 0: disabled; CI
     passes 200). The floor is absolute, not machine-relative — it is
     set far below any real machine and exists to catch a hung or
     serialized gateway, so it is safe to gate on shared runners.
   - [check23_speedup_jobs4] (and, as a no-regression floor,
     [check23_speedup_jobs2]) gate real multicore scaling: jobs4 fails
     below --check23-speedup-min (default 1.5) and jobs2 below 1.0.
     These depend on physical parallelism, so they are gated only when
     the current report's [cores] field is >= 4 — below that the gate
     prints an explicit skip line and passes (pass 0 to disable
     entirely).

   Exit status: 0 when every baseline metric passes, 1 on any
   regression or a metric missing from the current report, 2 on
   usage/parse errors. *)

module Json = Fdbs_kernel.Json

let field = Json.field

let num_exn what = function
  | Some (Json.Num f) -> f
  | _ -> raise (Json.Parse_error (what ^ ": missing or non-numeric"))

let metrics_exn report =
  match field "metrics" report with
  | Some (Json.Obj kvs) ->
    List.filter_map (function k, Json.Num f -> Some (k, f) | _ -> None) kvs
  | _ -> raise (Json.Parse_error "metrics: missing or not an object")

let () =
  let baseline = ref "" in
  let current = ref "" in
  let threshold = ref 0.25 in
  let overhead_max = ref 0.02 in
  let session_min = ref 5.0 in
  let speedup_min = ref 1.5 in
  let delta_min = ref 0.0 in
  let rps_min = ref 0.0 in
  let monitor_max = ref 0.0 in
  let usage =
    "gate --baseline FILE --current FILE [--threshold F] [--trace-overhead-max F] \
     [--session-speedup-min F] [--check23-speedup-min F] [--delta-speedup-min F] \
     [--rps-min F] [--monitor-overhead-max F]"
  in
  Arg.parse
    [
      ("--baseline", Arg.Set_string baseline, "FILE committed baseline report");
      ("--current", Arg.Set_string current, "FILE freshly measured report");
      ( "--threshold",
        Arg.Set_float threshold,
        "F allowed relative regression (default 0.25)" );
      ( "--trace-overhead-max",
        Arg.Set_float overhead_max,
        "F allowed disabled-tracing overhead per statement (default 0.02)" );
      ( "--session-speedup-min",
        Arg.Set_float session_min,
        "F required warm-session speedup over per-request setup (default 5)" );
      ( "--check23-speedup-min",
        Arg.Set_float speedup_min,
        "F required Check23 speedup at 4 domains on a >=4-core runner \
         (default 1.5; 0 disables)" );
      ( "--delta-speedup-min",
        Arg.Set_float delta_min,
        "F required differential-commit speedup over from-scratch constraint \
         re-evaluation (default 0: disabled; CI passes 5)" );
      ( "--rps-min",
        Arg.Set_float rps_min,
        "F required gateway requests/second, an absolute floor \
         (default 0: disabled; CI passes 200)" );
      ( "--monitor-overhead-max",
        Arg.Set_float monitor_max,
        "F allowed monitored-commit cost relative to a bare commit \
         (default 0: disabled; CI passes 3)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  match (Json.parse_file !baseline, Json.parse_file !current) with
  | exception Json.Parse_error e ->
    Printf.eprintf "gate: %s\n" e;
    exit 2
  | exception Sys_error e ->
    Printf.eprintf "gate: %s\n" e;
    exit 2
  | base, cur ->
    let base_cal = num_exn "baseline calibration_ns" (field "calibration_ns" base) in
    let cur_cal = num_exn "current calibration_ns" (field "calibration_ns" cur) in
    let cur_metrics = metrics_exn cur in
    let failures = ref 0 in
    Printf.printf "perf gate: threshold %+.0f%%, calibration %.0f -> %.0f ns\n"
      (100. *. !threshold) base_cal cur_cal;
    List.iter
      (fun (name, base_ns) ->
        match List.assoc_opt name cur_metrics with
        | None ->
          incr failures;
          Printf.printf "  FAIL %-24s missing from the current report\n" name
        | Some cur_ns ->
          let base_ratio = base_ns /. base_cal in
          let cur_ratio = cur_ns /. cur_cal in
          let change = (cur_ratio /. base_ratio) -. 1. in
          let ok = change <= !threshold in
          if not ok then incr failures;
          Printf.printf "  %s %-24s %10.0f ns -> %10.0f ns  normalized %+6.1f%%\n"
            (if ok then "ok  " else "FAIL")
            name base_ns cur_ns (100. *. change))
      (metrics_exn base);
    (* the speedup gate needs physical parallelism: read the core count
       the current report recorded on its own runner *)
    let cores =
      match field "cores" cur with Some (Json.Num f) -> int_of_float f | _ -> 1
    in
    let gate_speedups = !speedup_min > 0. && cores >= 4 in
    let skip_speedup name f =
      if !speedup_min <= 0. then
        Printf.printf "  skip %-24s %.2fx (gate disabled: --check23-speedup-min 0)\n"
          name f
      else
        Printf.printf
          "  skip %-24s %.2fx (gate skipped: runner has %d core(s), needs >= 4)\n"
          name f cores
    in
    (match field "derived" cur with
     | Some (Json.Obj kvs) ->
       List.iter
         (function
           | "check23_speedup_jobs4", Json.Num f ->
             if gate_speedups then begin
               let ok = f >= !speedup_min in
               if not ok then incr failures;
               Printf.printf
                 "  %s %-24s %.2fx (min %.2fx: Check23 at 4 domains must scale)\n"
                 (if ok then "ok  " else "FAIL")
                 "check23_speedup_jobs4" f !speedup_min
             end
             else skip_speedup "check23_speedup_jobs4" f
           | "check23_speedup_jobs2", Json.Num f ->
             if gate_speedups then begin
               let ok = f >= 1.0 in
               if not ok then incr failures;
               Printf.printf
                 "  %s %-24s %.2fx (min 1.00x: 2 domains must not regress)\n"
                 (if ok then "ok  " else "FAIL")
                 "check23_speedup_jobs2" f
             end
             else skip_speedup "check23_speedup_jobs2" f
           | "trace_disabled_overhead", Json.Num f ->
             let ok = f <= !overhead_max in
             if not ok then incr failures;
             Printf.printf
               "  %s %-24s %.4f (max %.4f: disabled tracing per statement)\n"
               (if ok then "ok  " else "FAIL")
               "trace_disabled_overhead" f !overhead_max
           | "constraint_delta_speedup", Json.Num f ->
             if !delta_min > 0. then begin
               let ok = f >= !delta_min in
               if not ok then incr failures;
               Printf.printf
                 "  %s %-24s %.2fx (min %.2fx: differential commit vs \
                  from-scratch checks)\n"
                 (if ok then "ok  " else "FAIL")
                 "constraint_delta_speedup" f !delta_min
             end
             else
               Printf.printf
                 "  skip %-24s %.2fx (gate disabled: --delta-speedup-min 0)\n"
                 "constraint_delta_speedup" f
           | "session_warm_speedup", Json.Num f ->
             let ok = f >= !session_min in
             if not ok then incr failures;
             Printf.printf
               "  %s %-24s %.2fx (min %.2fx: warm session vs per-request setup)\n"
               (if ok then "ok  " else "FAIL")
               "session_warm_speedup" f !session_min
           | "monitor_commit_overhead", Json.Num f ->
             if !monitor_max > 0. then begin
               let ok = f <= !monitor_max in
               if not ok then incr failures;
               Printf.printf
                 "  %s %-24s %.2fx (max %.2fx: monitored commit vs bare \
                  commit)\n"
                 (if ok then "ok  " else "FAIL")
                 "monitor_commit_overhead" f !monitor_max
             end
             else
               Printf.printf
                 "  skip %-24s %.2fx (gate disabled: --monitor-overhead-max 0)\n"
                 "monitor_commit_overhead" f
           | "gateway_rps", Json.Num f ->
             if !rps_min > 0. then begin
               let ok = f >= !rps_min in
               if not ok then incr failures;
               Printf.printf
                 "  %s %-24s %.0f req/s (min %.0f req/s: pipelined gateway \
                  throughput)\n"
                 (if ok then "ok  " else "FAIL")
                 "gateway_rps" f !rps_min
             end
             else
               Printf.printf
                 "  skip %-24s %.0f req/s (gate disabled: --rps-min 0)\n"
                 "gateway_rps" f
           | k, Json.Num f -> Printf.printf "  info %-24s %.2fx (not gated)\n" k f
           | _ -> ())
         kvs
     | _ -> ());
    if !failures > 0 then begin
      Printf.printf
        "perf gate FAILED: %d metric(s) regressed more than %.0f%%\n\
         (apply the bench-override label to the PR to ship a known regression\n\
         and refresh bench/baseline.json in the same change)\n"
        !failures (100. *. !threshold);
      exit 1
    end
    else print_endline "perf gate passed"
