(* A minimal JSON reader (objects, arrays, numbers, strings, booleans,
   null) — just enough for the reports main.ml emits and the Chrome
   trace files the CLI writes, avoiding any parsing dependency. Shared
   by gate.ml (perf gate) and trace_validate.ml (trace smoke). *)

type t =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (src : string) : t =
  let pos = ref 0 in
  let len = String.length src in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some (('"' | '\\' | '/') as c) ->
           Buffer.add_char buf c;
           advance ();
           go ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
         | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
         | Some 'u' ->
           (* pass the escape through undecoded; the validator only
              checks structure *)
           Buffer.add_string buf "\\u";
           advance ();
           go ()
         | _ -> fail "unsupported escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some ('-' | '0' .. '9') -> Num (number ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | _ -> fail "expected a value"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let rec items acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          items (v :: acc)
        | Some ']' ->
          advance ();
          Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      items []
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let key = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ((key, v) :: acc)
        | Some '}' ->
          advance ();
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | Num _ | Str _ | Bool _ | Null | Arr _ -> None
