(* The benchmark harness: one Bechamel test group per experiment of
   DESIGN.md's experiment index (E1-E12). The paper (PODS 1984) contains
   no quantitative tables or figures — it is a conceptual framework
   paper — so the experiments measure every checker and evaluator the
   framework comprises, on the paper's own example and controlled
   sweeps, and EXPERIMENTS.md records the expected shapes (who wins, how
   costs scale) against these measurements. *)

open Bechamel
open Toolkit
open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_rpr
open Fdbs_refine
open Fdbs_wgrammar
open Fdbs

let v s = Value.Sym s

(* ------------------------------------------------------------------ *)
(* Harness: run a test group, print a table of ns/run                  *)
(* ------------------------------------------------------------------ *)

let cfg =
  Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~stabilize:false ~kde:None ()

let instances = Instance.[ monotonic_clock ]

let measure (test : Test.t) : (string * float) list =
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> (name, t) :: acc
      | Some [] | None -> (name, nan) :: acc)
    results []
  |> List.sort compare

let pp_time ppf ns =
  if Float.is_nan ns then Fmt.string ppf "n/a"
  else if ns < 1e3 then Fmt.pf ppf "%8.1f ns" ns
  else if ns < 1e6 then Fmt.pf ppf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%8.2f ms" (ns /. 1e6)
  else Fmt.pf ppf "%8.2f s " (ns /. 1e9)

let report ~id ~title ~(notes : string) (test : Test.t) =
  Fmt.pr "@.%s: %s@." id title;
  Fmt.pr "%s@." (String.make (String.length id + String.length title + 2) '-');
  List.iter
    (fun (name, ns) -> Fmt.pr "  %-42s %a@." name pp_time ns)
    (measure test);
  if notes <> "" then Fmt.pr "  shape: %s@." notes

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                     *)
(* ------------------------------------------------------------------ *)

let uni = University.functions
let sg2 = uni.Spec.signature

let domain_n_students n =
  Domain.of_list
    [
      ("course", [ v "cs101"; v "cs102" ]);
      ("student", List.init n (fun i -> v (Fmt.str "s%d" i)));
    ]

(* a trace of length l alternating offers and enrollments *)
let trace_of_length l =
  let rec go k acc =
    if k = 0 then acc
    else
      let step =
        match k mod 4 with
        | 0 -> Strace.apply "offer" [ v "cs101" ] acc
        | 1 -> Strace.apply "enroll" [ v "ana"; v "cs101" ] acc
        | 2 -> Strace.apply "offer" [ v "cs102" ] acc
        | _ -> Strace.apply "enroll" [ v "bob"; v "cs102" ] acc
      in
      go (k - 1) step
  in
  go l (Strace.apply "offer" [ v "cs101" ] (Strace.init "initiate"))

(* ------------------------------------------------------------------ *)
(* E1: temporal model checking vs number of states                     *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let sg1 = University.signature1 in
  let dom =
    Domain.of_list
      [ ("course", [ v "cs101"; v "cs102" ]); ("student", [ v "ana"; v "bob" ]) ]
  in
  let consts = [] in
  let mk_state i =
    (* four cyclic patterns of offered/takes *)
    let offered =
      match i mod 4 with
      | 0 -> []
      | 1 -> [ [ v "cs101" ] ]
      | 2 -> [ [ v "cs101" ]; [ v "cs102" ] ]
      | _ -> [ [ v "cs102" ] ]
    in
    let takes =
      match i mod 4 with
      | 2 -> [ [ v "ana"; v "cs101" ] ]
      | 3 -> [ [ v "bob"; v "cs102" ] ]
      | _ -> []
    in
    Structure.of_tables ~domain:dom ~consts
      ~relations:[ ("offered", offered); ("takes", takes) ]
  in
  let axiom1 =
    Tparser.formula_exn sg1 "~(exists s:student, c:course. takes(s, c) & ~offered(c))"
  in
  let point n =
    let states = List.init n mk_state in
    let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
    let u = Universe.make ~states ~edges in
    Test.make
      ~name:(Fmt.str "states=%3d" n)
      (Staged.stage (fun () -> Check.holds_everywhere u axiom1))
  in
  report ~id:"E1" ~title:"Kripke model checking of the static axiom (Sec 3.2)"
    ~notes:"linear in the number of states; each state pays |student|x|course| quantifier work"
    (Test.make_grouped ~name:"e1-temporal-mc" (List.map point [ 10; 50; 200; 500 ]))

(* ------------------------------------------------------------------ *)
(* E2: rewriting-based query evaluation vs trace length                *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let point name spec l =
    let trace = trace_of_length l in
    Test.make
      ~name:(Fmt.str "%s trace=%3d" name l)
      (Staged.stage (fun () ->
           Eval.query_on_trace spec ~q:"takes" ~params:[ v "ana"; v "cs101" ] trace))
  in
  report ~id:"E2" ~title:"conditional rewriting answers a ground query (Sec 4.2)"
    ~notes:"linear in trace length; the larger derived rule set costs a constant factor more per step"
    (Test.make_grouped ~name:"e2-rewrite-eval"
       (List.map (point "hand-eqs" uni) [ 2; 8; 32; 128 ]
       @ List.map (point "derived " University.derived_functions) [ 8; 32 ]))

(* ------------------------------------------------------------------ *)
(* E3: sufficient-completeness checking                                *)
(* ------------------------------------------------------------------ *)

let e3 () =
  let point name spec depth =
    Test.make
      ~name:(Fmt.str "%s depth=%d" name depth)
      (Staged.stage (fun () -> Completeness.check ~depth spec))
  in
  report ~id:"E3" ~title:"sufficient completeness: coverage + termination + probing (Sec 4.4a)"
    ~notes:"probing dominates and grows with |updates|^depth"
    (Test.make_grouped ~name:"e3-suff-complete"
       [
         point "hand-eqs" uni 1;
         point "hand-eqs" uni 2;
         point "derived " University.derived_functions 1;
         point "derived " University.derived_functions 2;
       ])

(* ------------------------------------------------------------------ *)
(* E4: refinement T1->T2 (static consistency + reachability + modal)   *)
(* ------------------------------------------------------------------ *)

let dom_1x1 =
  Domain.of_list [ ("course", [ v "cs101" ]); ("student", [ v "ana" ]) ]

let dom_2x1 =
  Domain.of_list
    [ ("course", [ v "cs101"; v "cs102" ]); ("student", [ v "ana" ]) ]

let dom_2x2 = University.domain

let e4 () =
  let point name dom =
    Test.make ~name
      (Staged.stage (fun () ->
           Check12.check ~domain:dom University.info uni University.interp))
  in
  report ~id:"E4"
    ~title:"refinement T1->T2: properties (b),(c),(d) of Sec 4.4 over a bounded domain"
    ~notes:"reachable states grow with the domain (3 / 9 / 25); the valid-state sweep is exponential in |tuples|"
    (Test.make_grouped ~name:"e4-check12"
       [ point "domain=1x1 (3 states)" dom_1x1;
         point "domain=2x1 (9 states)" dom_2x1;
         point "domain=2x2 (25 states)" dom_2x2 ])

(* ------------------------------------------------------------------ *)
(* E5: enumerating the valid states (Sec 4.4c)                         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let dom_3x2 =
    Domain.of_list
      [
        ("course", [ v "cs101"; v "cs102"; v "cs103" ]);
        ("student", [ v "ana"; v "bob" ]);
      ]
  in
  let point name dom =
    Test.make ~name
      (Staged.stage (fun () -> Check12.valid_states University.info ~domain:dom))
  in
  report ~id:"E5" ~title:"valid-state enumeration: all models of the static axioms"
    ~notes:"2^(|offered tuples| + |takes tuples|) candidate structures"
    (Test.make_grouped ~name:"e5-valid-states"
       [ point "domain=1x1 (2^3 candidates)" dom_1x1;
         point "domain=2x2 (2^6 candidates)" dom_2x2;
         point "domain=3x2 (2^9 candidates)" dom_3x2 ])

(* ------------------------------------------------------------------ *)
(* E6: transition-consistency checking on a prebuilt universe          *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let mk dom =
    let g = Reach.explore_exn ~domain:dom uni in
    match Check12.universe_of_graph University.info uni University.interp g with
    | Ok u -> u
    | Error e -> invalid_arg e
  in
  let point name dom =
    let u = mk dom in
    Test.make ~name
      (Staged.stage (fun () -> Ttheory.check_in University.info u))
  in
  report ~id:"E6" ~title:"transition consistency: modal axioms over the reachable universe"
    ~notes:"the nested dia axiom visits successor sets; cost scales with states x edges"
    (Test.make_grouped ~name:"e6-transition"
       [ point "1x1 (3 states)" dom_1x1; point "2x2 (25 states)" dom_2x2 ])

(* ------------------------------------------------------------------ *)
(* E7: RPR procedure execution vs database size + update styles        *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let schema = University.representation in
  let mk_db n =
    let dom = domain_n_students n in
    let env = Semantics.env ~domain:dom schema in
    let db = Semantics.call_det_exn env "initiate" [] (Schema.empty_db schema) in
    let db =
      Db.with_relation "TAKES"
        (Relation.of_list [ "student"; "course" ]
           (List.init n (fun i -> [ v (Fmt.str "s%d" i); v "cs101" ])))
        (Db.with_relation "OFFERED"
           (Relation.of_list [ "course" ] [ [ v "cs101" ]; [ v "cs102" ] ])
           db)
    in
    (env, db)
  in
  let sorts_of = Schema.sorts_of schema in
  let insert_stmt = Stmt.Insert ("TAKES", [ Term.Lit (v "s0"); Term.Lit (v "cs102") ]) in
  let set_stmt = Stmt.desugar ~sorts_of insert_stmt in
  let point n =
    let env, db = mk_db n in
    let env_naive = { env with Semantics.strategy = `Naive } in
    [
      Test.make
        ~name:(Fmt.str "enroll tuple-oriented        n=%5d" n)
        (Staged.stage (fun () -> Semantics.exec env insert_stmt db));
      Test.make
        ~name:(Fmt.str "enroll set-oriented compiled n=%5d" n)
        (Staged.stage (fun () -> Semantics.exec env set_stmt db));
      Test.make
        ~name:(Fmt.str "enroll set-oriented naive    n=%5d" n)
        (Staged.stage (fun () -> Semantics.exec env_naive set_stmt db));
      Test.make
        ~name:(Fmt.str "cancel quantified guard      n=%5d" n)
        (Staged.stage (fun () ->
             Semantics.call_det env "cancel" [ v "cs102" ] db));
    ]
  in
  report ~id:"E7"
    ~title:"procedure execution: tuple- vs set-oriented styles (Sec 5.2 discussion)"
    ~notes:"tuple-oriented point updates are O(log n); set-oriented reassignment rebuilds the relation; naive enumeration pays |student| x |course|"
    (Test.make_grouped ~name:"e7-rpr-exec"
       (List.concat_map point [ 10; 100; 1000 ]))

(* ------------------------------------------------------------------ *)
(* E8: W-grammar recognition vs schema size                            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let schema_src k =
    let rels =
      List.init k (fun i -> Fmt.str "relation R%d(thing)" i) |> String.concat "\n"
    in
    let procs =
      List.init k (fun i ->
          Fmt.str "proc add%d(x: thing) = insert R%d(x)" i i)
      |> String.concat "\n"
    in
    Fmt.str "schema s\n%s\nproc init() = R0 := {(x:thing) | false}\n%s\nend" rels procs
  in
  let point k =
    let src = schema_src k in
    Test.make
      ~name:(Fmt.str "relations=procs=%d (%d tokens)" k
               (List.length (Rpr_grammar.tokens_of_source src)))
      (Staged.stage (fun () -> Rpr_grammar.recognizes src))
  in
  report ~id:"E8" ~title:"W-grammar recognition of schema texts (Sec 5.1.1)"
    ~notes:"superlinear: memoized spans x free-metanotion enumeration (identifiers grow with the schema)"
    (Test.make_grouped ~name:"e8-wgrammar" (List.map point [ 1; 2; 4; 8 ]))

(* ------------------------------------------------------------------ *)
(* E9: refinement T2->T3                                               *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let point name dom =
    let env = Semantics.env ~domain:dom University.representation in
    Test.make ~name
      (Staged.stage (fun () -> Check23.check uni env University.mapping))
  in
  report ~id:"E9" ~title:"refinement T2->T3: every equation valid in the induced model (Sec 5.4)"
    ~notes:"instances = equations x parameter tuples x reachable databases"
    (Test.make_grouped ~name:"e9-check23"
       [ point "domain=1x1" dom_1x1; point "domain=2x1" dom_2x1;
         point "domain=2x2" dom_2x2 ])

(* ------------------------------------------------------------------ *)
(* E10: relational calculus evaluation, naive vs compiled              *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let schema = University.representation in
  let rterm =
    let sv = { Term.vname = "s"; vsort = "student" } in
    let cv = { Term.vname = "c"; vsort = "course" } in
    {
      Stmt.rt_vars = [ sv; cv ];
      rt_body =
        Formula.And
          ( Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]),
            Formula.Not (Formula.Pred ("OFFERED", [ Term.Var cv ])) );
    }
  in
  let compiled = Option.get (Relalg.compile rterm) in
  let point n =
    let dom = domain_n_students n in
    let db =
      Schema.empty_db schema
      |> Db.with_relation "OFFERED" (Relation.of_list [ "course" ] [ [ v "cs101" ] ])
      |> Db.with_relation "TAKES"
           (Relation.of_list [ "student"; "course" ]
              (List.init n (fun i ->
                   [ v (Fmt.str "s%d" i); (if i mod 2 = 0 then v "cs101" else v "cs102") ])))
    in
    [
      Test.make
        ~name:(Fmt.str "naive active-domain n=%4d" n)
        (Staged.stage (fun () -> Relcalc.eval_rterm_naive ~domain:dom db rterm));
      Test.make
        ~name:(Fmt.str "compiled algebra    n=%4d" n)
        (Staged.stage (fun () -> Relalg.eval ~domain:dom db compiled));
    ]
  in
  report ~id:"E10"
    ~title:"relational term {(s,c) | TAKES & ~OFFERED}: naive vs algebra-compiled"
    ~notes:"naive enumerates |student| x |course| tuples and re-tests; compiled scans TAKES once with an antijoin"
    (Test.make_grouped ~name:"e10-relcalc" (List.concat_map point [ 8; 64; 512 ]))

(* ------------------------------------------------------------------ *)
(* E11: equation derivation from structured descriptions               *)
(* ------------------------------------------------------------------ *)

let e11 () =
  report ~id:"E11" ~title:"constructive derivation of equations (Sec 4.2 methodology)"
    ~notes:"cost is |descriptions| x |queries|; negligible next to verification"
    (Test.make_grouped ~name:"e11-derive"
       [
         Test.make ~name:"university (5 updates, 2 queries)"
           (Staged.stage (fun () ->
                Derive.equations_exn sg2 University.descriptions));
       ])

(* ------------------------------------------------------------------ *)
(* E12: cross-level agreement sweep                                    *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let point name dom depth =
    Test.make ~name
      (Staged.stage (fun () -> Design.agreement ~domain:dom ~depth University.design))
  in
  report ~id:"E12" ~title:"cross-level agreement: levels 2 and 3 answer every query alike (Sec 6)"
    ~notes:"traces grow with |updates|^depth; each compared at both levels"
    (Test.make_grouped ~name:"e12-agreement"
       [
         point "domain=1x1 depth=2" dom_1x1 2;
         point "domain=1x1 depth=3" dom_1x1 3;
         point "domain=2x2 depth=2" dom_2x2 2;
       ])

(* ------------------------------------------------------------------ *)
(* E13: observability ablation (extension)                             *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let g = Reach.explore_exn ~domain:dom_2x2 uni in
  report ~id:"E13" ~title:"observability: quotient size under query ablation (Sec 4.1)"
    ~notes:"dropping a load-bearing query collapses the 25-state quotient; the check is linear in states x observations"
    (Test.make_grouped ~name:"e13-observability"
       [
         Test.make ~name:"full repertoire (25 states)"
           (Staged.stage (fun () -> Observability.observable g));
         Test.make ~name:"ablation table"
           (Staged.stage (fun () -> Observability.ablation uni g));
         Test.make ~name:"minimal sufficient sets"
           (Staged.stage (fun () -> Observability.minimal_sufficient_sets uni g));
       ])

(* ------------------------------------------------------------------ *)
(* E14: critical pairs / confluence (extension)                        *)
(* ------------------------------------------------------------------ *)

let e14 () =
  report ~id:"E14" ~title:"critical pairs of the conditional rewrite system"
    ~notes:"pair discovery is |equations|^2 unifications; joinability pays ground instances x rewriting"
    (Test.make_grouped ~name:"e14-confluence"
       [
         Test.make ~name:"discover pairs (hand equations)"
           (Staged.stage (fun () -> Confluence.critical_pairs uni));
         Test.make ~name:"decide joinability depth=1"
           (Staged.stage (fun () -> Confluence.check ~depth:1 uni));
         Test.make ~name:"decide joinability depth=2"
           (Staged.stage (fun () -> Confluence.check ~depth:2 uni));
       ])

(* ------------------------------------------------------------------ *)
(* E15: time-sorted translation vs modal checking (Sec 3.1 variant)    *)
(* ------------------------------------------------------------------ *)

let e15 () =
  let sg1 = University.signature1 in
  let g = Reach.explore_exn ~domain:dom_1x1 uni in
  let u =
    match Check12.universe_of_graph University.info uni University.interp g with
    | Ok u -> u
    | Error e -> invalid_arg e
  in
  let axiom2 =
    Tparser.formula_exn sg1
      "~(exists s:student, c:course. dia (takes(s, c) & dia ~(exists c2:course. takes(s, c2))))"
  in
  report ~id:"E15"
    ~title:"modal vs time-sorted checking of the transition axiom (Sec 3.1 alternative)"
    ~notes:"the time-sorted route quantifies over time points explicitly; same verdicts, comparable cost"
    (Test.make_grouped ~name:"e15-timesort"
       [
         Test.make ~name:"Kripke (modal operators)"
           (Staged.stage (fun () -> Check.holds_everywhere u axiom2));
         Test.make ~name:"time-sorted translation"
           (Staged.stage (fun () ->
                List.init (Universe.num_states u) (fun i ->
                    Timesort.holds_at sg1 u i axiom2)));
       ])

(* ------------------------------------------------------------------ *)
(* E16: semantic vs dynamic-logic route to 2->3 refinement             *)
(* ------------------------------------------------------------------ *)

let e16 () =
  let point name dom =
    let env = Semantics.env ~domain:dom University.representation in
    [
      Test.make
        ~name:(Fmt.str "semantic route (Check23)   %s" name)
        (Staged.stage (fun () -> Check23.check uni env University.mapping));
      Test.make
        ~name:(Fmt.str "dynamic-logic route        %s" name)
        (Staged.stage (fun () -> Dynamic23.check uni env University.mapping));
    ]
  in
  report ~id:"E16"
    ~title:"2->3 refinement: semantic route vs the deferred dynamic-logic route (Sec 5.3)"
    ~notes:"both check all 15 equations over the reachable databases; the DL route re-runs the procedure inside each modality"
    (Test.make_grouped ~name:"e16-dynamic23"
       (List.concat_map (fun (n, d) -> point n d) [ ("1x1", dom_1x1); ("2x1", dom_2x1) ]))

(* ------------------------------------------------------------------ *)
(* E17: transactional overhead over direct execution                   *)
(* ------------------------------------------------------------------ *)

let e17 () =
  let schema = University.representation in
  let calls =
    [
      ("initiate", []);
      ("offer", [ v "cs101" ]);
      ("offer", [ v "cs102" ]);
      ("enroll", [ v "ana"; v "cs101" ]);
      ("enroll", [ v "bob"; v "cs102" ]);
      ("transfer", [ v "bob"; v "cs102"; v "cs101" ]);
      ("cancel", [ v "cs102" ]);
    ]
  in
  let point name dom =
    let env = Semantics.env ~domain:dom schema in
    let db0 = Fdbs_rpr.Schema.empty_db schema in
    let direct () =
      List.fold_left
        (fun db (n, args) -> Semantics.call_det_exn env n args db)
        db0 calls
    in
    let txn = Txn.make env in
    let budgeted = Txn.make env in
    [
      Test.make
        ~name:(Fmt.str "direct call_det           %s" name)
        (Staged.stage direct);
      Test.make
        ~name:(Fmt.str "transactional             %s" name)
        (Staged.stage (fun () -> Txn.run txn calls db0));
      Test.make
        ~name:(Fmt.str "transactional + budget    %s" name)
        (Staged.stage (fun () ->
             Txn.run ~budget:(Budget.make ~steps:10_000 ~ms:10_000 ()) budgeted
               calls db0));
    ]
  in
  report ~id:"E17"
    ~title:"transactional execution: snapshot/commit/constraint overhead over direct calls"
    ~notes:"Db.t is immutable, so the snapshot is free; the cost is the budget accounting and commit-time constraint sweep"
    (Test.make_grouped ~name:"e17-txn"
       (List.concat_map (fun (n, d) -> point n d) [ ("2x2", dom_2x2) ]))

(* ------------------------------------------------------------------ *)
(* E19: the cost-based query planner — quantified bodies, constraint   *)
(* checking, and the plan cache                                        *)
(* ------------------------------------------------------------------ *)

let planner_schema = University.representation

(* {(s,c) | TAKES(s,c) & forall s2. TAKES(s2,c) -> OFFERED(c)} — a
   universally quantified body the naive evaluator pays
   |student|^2 x |course| substitute-and-test steps for (no witness
   short-circuits a true forall), while the compiled plan antijoins
   TAKES against the tiny projected subplan of the negated
   existential. *)
let planner_quantified_rterm =
  let sv = { Term.vname = "s"; vsort = "student" } in
  let cv = { Term.vname = "c"; vsort = "course" } in
  let s2 = { Term.vname = "s2"; vsort = "student" } in
  {
    Stmt.rt_vars = [ sv; cv ];
    rt_body =
      Formula.And
        ( Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]),
          Formula.Forall
            ( s2,
              Formula.Imp
                ( Formula.Pred ("TAKES", [ Term.Var s2; Term.Var cv ]),
                  Formula.Pred ("OFFERED", [ Term.Var cv ]) ) ) );
  }

(* The guarded schema's integrity constraint: every enrollment is in an
   offered course. Compiles to an emptiness test on an antijoin. *)
let takes_offered_wff =
  let sv = { Term.vname = "s"; vsort = "student" } in
  let cv = { Term.vname = "c"; vsort = "course" } in
  Formula.forall [ sv; cv ]
    (Formula.Imp
       ( Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]),
         Formula.Pred ("OFFERED", [ Term.Var cv ]) ))

let planner_db n =
  Schema.empty_db planner_schema
  |> Db.with_relation "OFFERED"
       (Relation.of_list [ "course" ] [ [ v "cs101" ]; [ v "cs102" ] ])
  |> Db.with_relation "TAKES"
       (Relation.of_list [ "student"; "course" ]
          (List.init n (fun i ->
               [ v (Fmt.str "s%d" i); (if i mod 2 = 0 then v "cs101" else v "cs102") ])))

let e19 () =
  let point n =
    let dom = domain_n_students n in
    let db = planner_db n in
    let eval strategy () =
      Planner.eval_rterm ~strategy ~schema:planner_schema ~domain:dom db
        planner_quantified_rterm
    in
    let check strategy () =
      Planner.holds ~strategy ~schema:planner_schema ~domain:dom db
        takes_offered_wff
    in
    [
      Test.make
        ~name:(Fmt.str "quantified rterm naive    n=%4d" n)
        (Staged.stage (eval `Naive));
      Test.make
        ~name:(Fmt.str "quantified rterm compiled n=%4d" n)
        (Staged.stage (eval `Compiled));
      Test.make
        ~name:(Fmt.str "constraint check naive    n=%4d" n)
        (Staged.stage (check `Naive));
      Test.make
        ~name:(Fmt.str "constraint check compiled n=%4d" n)
        (Staged.stage (check `Compiled));
    ]
  in
  report ~id:"E19"
    ~title:"cost-based planner: quantified bodies and constraint checks vs naive"
    ~notes:"naive pays carrier-product enumeration with an inner quantifier sweep per tuple; the plan cache amortizes compilation so compiled scans the live relations"
    (Test.make_grouped ~name:"e19-planner" (List.concat_map point [ 16; 64; 256 ]))

(* ------------------------------------------------------------------ *)
(* E18: kernel microbenchmarks, machine-readable (--json)               *)
(* ------------------------------------------------------------------ *)

(* The JSON mode exists for the CI perf gate: a handful of kernel
   metrics (indexed-relation membership / compose / closure, and the
   full Check23 sweep at 1/2/4 domains) timed with a plain monotonic
   loop and printed as one JSON object. The gate normalizes every
   metric by [calibration_ns] — the cost of a fixed pure-OCaml loop on
   the same machine — so baselines survive hardware changes. *)

(* Monotonic, immune to wall-clock adjustments mid-measurement. *)
let now_ns () = Mclock.now () *. 1e9

(* ns per call of [f]: repeat in doubling batches (after one warm-up
   call) until the batch runs at least [min_time_ns]. *)
let time_ns ?(min_time_ns = 5e7) (f : unit -> unit) : float =
  f ();
  let rec go reps =
    let t0 = now_ns () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = now_ns () -. t0 in
    if dt >= min_time_ns || reps >= 1 lsl 24 then dt /. float_of_int reps
    else go (reps * 2)
  in
  go 1

let calibration () =
  let xs = List.init 4096 (fun i -> i) in
  time_ns (fun () ->
      ignore
        (Sys.opaque_identity
           (List.fold_left (fun acc i -> acc + (i * i mod 4093)) 0 xs)))

let bench_relation_mem () =
  let tuples = List.init 1024 (fun i -> [ Value.Int i; Value.Int (i * 7) ]) in
  let r = Relation.of_list [ "a"; "b" ] tuples in
  let present = List.init 256 (fun i -> [ Value.Int (i * 4); Value.Int (i * 4 * 7) ]) in
  let absent = List.init 256 (fun i -> [ Value.Int (i + 2048); Value.Int i ]) in
  let probes = present @ absent in
  let per_batch =
    time_ns (fun () ->
        ignore
          (Sys.opaque_identity
             (List.fold_left
                (fun acc tu -> if Relation.mem tu r then acc + 1 else acc)
                0 probes)))
  in
  per_batch /. float_of_int (List.length probes)

let bench_relation_compose () =
  let a =
    Relation.of_list [ "a"; "m" ]
      (List.init 512 (fun i -> [ Value.Int i; Value.Int (i mod 64) ]))
  in
  let b =
    Relation.of_list [ "m"; "b" ]
      (List.init 512 (fun i -> [ Value.Int (i mod 64); Value.Int i ]))
  in
  time_ns (fun () -> ignore (Sys.opaque_identity (Relation.compose a b)))

let bench_relation_closure () =
  let chain =
    Relation.of_list [ "n"; "n" ]
      (List.init 48 (fun i -> [ Value.Int i; Value.Int (i + 1) ]))
  in
  time_ns (fun () -> ignore (Sys.opaque_identity (Relation.transitive_closure chain)))

(* Shared-snapshot ablation (E23). A parallel sweep can hand every
   worker domain the same immutable relation — indexes built once,
   published one-shot, probed by reference — or give each chunk its own
   copy, which re-canonicalizes the tuple set and rebuilds every index
   from scratch (what per-chunk store copying costs). The probe sweep
   is the same in both arms; only snapshot handling differs. *)
let snapshot_sorts = [ "student"; "course" ]

let snapshot_tuples =
  List.init 1024 (fun i -> [ Value.Int i; Value.Int (i mod 64) ])

let snapshot_probes =
  List.init 256 (fun i -> [ Value.Int (i * 4); Value.Int (i * 4 mod 64) ])
  @ List.init 256 (fun i -> [ Value.Int (i + 2048); Value.Int i ])

let snapshot_sweep r =
  ignore
    (Sys.opaque_identity
       (List.fold_left
          (fun acc tu -> if Relation.mem tu r then acc + 1 else acc)
          0 snapshot_probes))

let bench_snapshot_shared () =
  let r = Relation.of_list snapshot_sorts snapshot_tuples in
  Relation.warm r;
  time_ns (fun () -> snapshot_sweep r)

let bench_snapshot_copy () =
  time_ns (fun () ->
      snapshot_sweep (Relation.of_list snapshot_sorts snapshot_tuples))

let bench_check23 ~jobs () =
  let env = Semantics.env ~domain:dom_2x2 University.representation in
  time_ns ~min_time_ns:2e8 (fun () ->
      let r =
        Check23.check ~config:(Fdbs_kernel.Config.with_jobs jobs) uni env
          University.mapping
      in
      if not (Check23.ok r) then invalid_arg "bench: Check23 unexpectedly failed")

let bench_planner_quantified ~strategy () =
  let n = 256 in
  let dom = domain_n_students n in
  let db = planner_db n in
  time_ns (fun () ->
      ignore
        (Sys.opaque_identity
           (Planner.eval_rterm ~strategy ~schema:planner_schema ~domain:dom db
              planner_quantified_rterm)))

let bench_constraint_check ~strategy () =
  let n = 512 in
  let dom = domain_n_students n in
  let db = planner_db n in
  time_ns (fun () ->
      if
        not
          (Planner.holds ~strategy ~schema:planner_schema ~domain:dom db
             takes_offered_wff)
      then invalid_arg "bench: takes_offered unexpectedly violated")

(* Observability costs (E20). The guard metric is the disabled span:
   one atomic load per [with_span] call site, which the gate requires
   to stay within 2% of a semantics statement. *)
let bench_trace_span ~enabled () =
  Trace.set_enabled enabled;
  let per_call =
    time_ns (fun () ->
        ignore (Sys.opaque_identity (Trace.with_span "bench.span" (fun () -> 1))))
  in
  Trace.set_enabled false;
  Trace.reset ();
  per_call

let bench_metrics_incr () =
  let c = Metrics.counter "bench.e20.incr" in
  time_ns (fun () -> Metrics.incr c)

(* One tuple-oriented statement through the instrumented [Semantics.exec]
   hot path, with tracing off (the deployment default) and on. *)
let bench_semantics_statement ~traced () =
  let n = 100 in
  let dom = domain_n_students n in
  let db = planner_db n in
  let env = Semantics.env ~domain:dom planner_schema in
  let stmt = Stmt.Insert ("TAKES", [ Term.Lit (v "s0"); Term.Lit (v "cs102") ]) in
  Trace.set_enabled traced;
  let per_call =
    time_ns (fun () -> ignore (Sys.opaque_identity (Semantics.exec env stmt db)))
  in
  Trace.set_enabled false;
  Trace.reset ();
  per_call

(* A cache miss pays hashing + compilation + optimization; a hit pays
   hashing + one bucket scan. *)
let bench_plan_cache_miss () =
  time_ns (fun () ->
      Planner.clear ();
      ignore
        (Sys.opaque_identity (Planner.plan_rterm planner_schema planner_quantified_rterm)))

let bench_plan_cache_hit () =
  ignore (Planner.plan_rterm planner_schema planner_quantified_rterm);
  time_ns (fun () ->
      ignore
        (Sys.opaque_identity (Planner.plan_rterm planner_schema planner_quantified_rterm)))

(* Service session costs (E21). The daemon's reason to exist: a warm
   session pays only execution per request, while a one-shot client
   pays session setup every time — parsing and checking the schema and
   warming the planner against a cold plan cache, exactly what each
   fresh `fds run` invocation repeats. Both variants run the same
   request batch. *)
module Session = Fdbs_service.Session

let session_schema_src =
  {|
schema service

relation OFFERED(course)
relation TAKES(student, course)

constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)

end-schema
|}

let bench_session_open () =
  match Session.open_text session_schema_src with
  | Ok s -> s
  | Error _ -> invalid_arg "bench: session open failed"

let bench_session_request s =
  match
    Session.run s [ ("offer", [ v "cs101" ]); ("enroll", [ v "s0"; v "cs101" ]) ]
  with
  | Ok _ -> ()
  | Error _ -> invalid_arg "bench: session request failed"

let bench_session_warm () =
  let s = bench_session_open () in
  time_ns (fun () -> bench_session_request s)

let bench_session_cold () =
  time_ns (fun () ->
      Planner.clear ();
      bench_session_request (bench_session_open ()))

(* Recovery costs (E22). Crash recovery re-executes the journal; a
   durable snapshot bounds that work to the tail committed after it.
   Build a journal of [recovery_entries] committed transactions with a
   snapshot covering all but [recovery_tail] of them, then measure
   [Session.replay] with the snapshot present (bounded) against the
   same journal with the snapshot hidden (full history). *)
let recovery_entries = 300
let recovery_tail = 10

let with_recovery_journal f =
  let journal = Filename.temp_file "fdbs_bench_recovery" ".journal" in
  Sys.remove journal;
  let snap = Replication.snapshot_path journal in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ journal; snap; snap ^ ".hidden" ])
    (fun () ->
      let config = Config.make ~transactional:true ~journal () in
      let s =
        match Session.open_text ~config session_schema_src with
        | Ok s -> s
        | Error _ -> invalid_arg "bench: recovery session open failed"
      in
      (match Session.run s [ ("initiate", []) ] with
      | Ok _ -> ()
      | Error _ -> invalid_arg "bench: recovery initiate failed");
      for i = 2 to recovery_entries do
        (match Session.run s [ ("offer", [ v (Fmt.str "c%d" i) ]) ] with
        | Ok _ -> ()
        | Error _ -> invalid_arg "bench: recovery offer failed");
        if i = recovery_entries - recovery_tail then
          let snapshot =
            {
              Replication.snap_epoch = 0;
              snap_offset = i;
              snap_db = Session.db s;
            }
          in
          match Replication.save_snapshot snap snapshot with
          | Ok () -> ()
          | Error _ -> invalid_arg "bench: recovery snapshot failed"
      done;
      f journal snap)

(* Both timings from one journal build: (full replay, snapshot-bounded
   replay). The replay counts are asserted so the bench can't silently
   measure the wrong regime. *)
let bench_recovery () =
  with_recovery_journal (fun journal snap ->
      let s =
        match Session.open_text session_schema_src with
        | Ok s -> s
        | Error _ -> invalid_arg "bench: recovery reader open failed"
      in
      let replay expected_entries () =
        match Session.replay s journal with
        | Ok r when r.Session.rep_entries = expected_entries -> ()
        | Ok r ->
            invalid_arg
              (Fmt.str "bench: recovery replayed %d entries, expected %d"
                 r.Session.rep_entries expected_entries)
        | Error _ -> invalid_arg "bench: recovery replay failed"
      in
      let snapshot_ns = time_ns (replay recovery_tail) in
      let hidden = snap ^ ".hidden" in
      Sys.rename snap hidden;
      let full_ns =
        Fun.protect
          ~finally:(fun () -> Sys.rename hidden snap)
          (fun () -> time_ns (replay recovery_entries))
      in
      (full_ns, snapshot_ns))

(* Write-heavy constraint bursts (E24). A store with K integrity
   constraints absorbs N single-tuple commits; from-scratch checking
   re-evaluates every constraint's compiled plan over the whole
   database per commit (K x O(|db|)), while the differential layer
   diffs the snapshot against the commit state (O(changed relations))
   and pushes the one-tuple delta through each materialized plan
   (K x O(|delta|)). The workload alternates an insert with the
   matching delete, so the store stays bounded while every commit
   carries a real delta through both the insert and delete rules. *)
let burst_k = 12
let burst_n = 2000

let burst_schema_src =
  let rels =
    List.init burst_k (Fmt.str "relation OFFERED%d(course)")
    |> String.concat "\n"
  in
  let cons =
    List.init burst_k (fun i ->
        Fmt.str
          "constraint guard%d: forall s:student. forall c:course. (TAKES(s, c) \
           -> OFFERED%d(c))"
          i i)
    |> String.concat "\n"
  in
  Fmt.str
    "schema burst\nrelation TAKES(student, course)\n%s\n%s\n\
     proc enroll(s: student, c: course) = insert TAKES(s, c)\n\
     proc leave(s: student, c: course) = delete TAKES(s, c)\nend-schema"
    rels cons

let burst_courses = List.init 8 (fun i -> v (Fmt.str "cs%d" i))

let burst_domain =
  Domain.of_list
    [
      ("course", burst_courses);
      ( "student",
        List.init burst_n (fun i -> v (Fmt.str "s%d" i))
        @ List.init 64 (fun i -> v (Fmt.str "w%d" i)) );
    ]

let bench_constraint_burst ~incremental () =
  let schema = Rparser.schema_exn burst_schema_src in
  let env = Semantics.env ~domain:burst_domain schema in
  let offered = Relation.of_list [ "course" ] (List.map (fun c -> [ c ]) burst_courses) in
  let db =
    List.fold_left
      (fun db i -> Db.with_relation (Fmt.str "OFFERED%d" i) offered db)
      (Db.with_relation "TAKES"
         (Relation.of_list [ "student"; "course" ]
            (List.init burst_n (fun i ->
                 [ v (Fmt.str "s%d" i); List.nth burst_courses (i mod 8) ])))
         (Schema.empty_db schema))
      (List.init burst_k Fun.id)
  in
  let txn = Txn.make env in
  Planner.set_materialization incremental;
  Planner.clear ();
  let state = ref db in
  let tick = ref 0 in
  let commit () =
    let i = !tick in
    incr tick;
    let j = i / 2 in
    let s = v (Fmt.str "w%d" (j mod 64))
    and c = List.nth burst_courses (j mod 8) in
    let call = if i mod 2 = 0 then ("enroll", [ s; c ]) else ("leave", [ s; c ]) in
    match Txn.run txn [ call ] !state with
    | Ok db' -> state := db'
    | Error rb ->
      invalid_arg (Fmt.str "bench: burst commit rolled back: %a" Txn.pp_rollback rb)
  in
  (* time_ns's warm-up call pays the one cold materialization miss *)
  let per_commit = time_ns ~min_time_ns:2e8 commit in
  Planner.set_materialization true;
  Planner.clear ();
  per_commit

(* Gateway throughput (E25). Boot the real [Server.serve] on a Unix
   socket in a spawned domain and drive it with [gw_clients] pipelined
   connections, each keeping a window of [gw_window] frames in flight
   (~7:1 ping:query mix), exactly as the pooled `fds client` does. The
   result is aggregate answered requests per second — the end-to-end
   number CI floors with gate.ml's --rps-min: protocol framing, the
   pipelined read-ahead loop, admission accounting, and the corked
   flush all sit on this path. *)
module Server = Fdbs_service.Server
module Protocol = Fdbs_service.Protocol

let gw_clients = 8
let gw_requests = 500
let gw_window = 32

let gateway_request i =
  if i mod 8 = 7 then
    Fmt.str {|{"id": %d, "op": "query", "wff": "exists c:course. OFFERED(c)"}|}
      i
  else Fmt.str {|{"id": %d, "op": "ping"}|} i

let gateway_drive fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let sent = ref 0 and got = ref 0 in
  while !got < gw_requests do
    while !sent < gw_requests && !sent - !got < gw_window do
      Protocol.output_frame oc (gateway_request !sent);
      incr sent
    done;
    flush oc;
    (* drain to half a window so the next burst overlaps the server's
       replies instead of strictly alternating *)
    let target =
      if !sent = gw_requests then gw_requests
      else Stdlib.min gw_requests (!got + (gw_window / 2))
    in
    while !got < target do
      match Protocol.read_frame ic with
      | None -> invalid_arg "bench: gateway server closed the connection"
      | Some _ -> incr got
    done
  done;
  (* closing here, not after the join, releases this connection's
     worker to the next queued connection *)
  Unix.close fd

let bench_gateway_rps () =
  let sock = Filename.temp_file "fdbs_bench_gw" ".sock" in
  Sys.remove sock;
  let schema =
    match Rparser.schema session_schema_src with
    | Ok s -> s
    | Error _ -> invalid_arg "bench: gateway schema parse failed"
  in
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let server =
    Stdlib.Domain.spawn (fun () ->
        Server.serve ~workers:gw_clients
          ~ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.broadcast ready_c;
            Mutex.unlock ready_m)
          (`Unix sock) schema)
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let fds = Array.init gw_clients (fun _ -> connect ()) in
  let t0 = Unix.gettimeofday () in
  let drivers =
    Array.map (fun fd -> Stdlib.Domain.spawn (fun () -> gateway_drive fd)) fds
  in
  Array.iter Stdlib.Domain.join drivers;
  let elapsed = Unix.gettimeofday () -. t0 in
  let fd = connect () in
  let oc = Unix.out_channel_of_descr fd in
  Protocol.write_frame oc {|{"id": 0, "op": "shutdown"}|};
  ignore (Protocol.read_frame (Unix.in_channel_of_descr fd));
  Unix.close fd;
  (match Stdlib.Domain.join server with
  | Ok _ -> ()
  | Error _ -> invalid_arg "bench: gateway server failed");
  if Sys.file_exists sock then Sys.remove sock;
  float_of_int (gw_clients * gw_requests) /. elapsed

(* Streaming monitor overhead (E26). The same transactional commit
   loop as the burst bench, through the full [Session.run] path, with
   and without temporal monitors attached to the store. The theory
   holds on the workload (OFFERED never shrinks, every TAKES tuple is
   in an offered course), so the measured cost is pure monitoring —
   one static and one depth-1 transition axiom advanced by the delta
   layer per commit — not the violation path. *)
let monitor_schema_src =
  {|
schema watched

relation OFFERED(course)
relation TAKES(student, course)

constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)

proc leave(s: student, c: course) = delete TAKES(s, c)

end-schema
|}

let monitor_theory_src =
  {|
theory watched

sort course
sort student

pred offered : course
pred takes : student, course

axiom takes_offered: forall s:student, c:course. (takes(s, c) -> offered(c))

axiom no_retract: forall c:course. (offered(c) -> box offered(c))
|}

let bench_monitor_commit ~monitored () =
  let config = Config.make ~transactional:true () in
  let s =
    match Session.open_text ~config monitor_schema_src with
    | Ok s -> s
    | Error _ -> invalid_arg "bench: monitor session open failed"
  in
  let run calls =
    match Session.run s calls with
    | Ok _ -> ()
    | Error _ -> invalid_arg "bench: monitor commit failed"
  in
  run [ ("initiate", []); ("offer", [ v "cs101" ]); ("offer", [ v "cs102" ]) ];
  let mon =
    if not monitored then None
    else
      let schema = Rparser.schema_exn monitor_schema_src in
      match Monitor.compile ~schema (Tparser.theory_exn monitor_theory_src) with
      | Error _ -> invalid_arg "bench: monitor compile failed"
      | Ok m ->
        if Monitor.skipped m <> [] then
          invalid_arg "bench: monitor skipped an axiom";
        Session.Store.attach_monitors (Session.store s) m;
        Some m
  in
  let tick = ref 0 in
  let commit () =
    let i = !tick in
    incr tick;
    let j = i / 2 in
    let st = v (Fmt.str "w%d" (j mod 64)) in
    let call =
      if i mod 2 = 0 then ("enroll", [ st; v "cs101" ])
      else ("leave", [ st; v "cs101" ])
    in
    run [ call ]
  in
  let per_commit = time_ns ~min_time_ns:2e8 commit in
  (match mon with
  | Some m when Monitor.violations m > 0 ->
    invalid_arg "bench: monitor workload unexpectedly violated"
  | _ -> ());
  per_commit

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let run_json () =
  let calibration_ns = calibration () in
  let metrics =
    [
      ("relation_mem", bench_relation_mem ());
      ("relation_compose", bench_relation_compose ());
      ("relation_closure", bench_relation_closure ());
      ("check23_jobs1", bench_check23 ~jobs:1 ());
      ("check23_jobs2", bench_check23 ~jobs:2 ());
      ("check23_jobs4", bench_check23 ~jobs:4 ());
      ("snapshot_shared_sweep", bench_snapshot_shared ());
      ("snapshot_copy_sweep", bench_snapshot_copy ());
      ("planner_quantified_naive", bench_planner_quantified ~strategy:`Naive ());
      ("planner_quantified_compiled", bench_planner_quantified ~strategy:`Compiled ());
      ("constraint_check_naive", bench_constraint_check ~strategy:`Naive ());
      ("constraint_check_compiled", bench_constraint_check ~strategy:`Compiled ());
      ("plan_cache_miss", bench_plan_cache_miss ());
      ("plan_cache_hit", bench_plan_cache_hit ());
      ("trace_span_disabled", bench_trace_span ~enabled:false ());
      ("trace_span_enabled", bench_trace_span ~enabled:true ());
      ("metrics_counter_incr", bench_metrics_incr ());
      ("semantics_statement", bench_semantics_statement ~traced:false ());
      ("semantics_statement_traced", bench_semantics_statement ~traced:true ());
      ("session_cold_request", bench_session_cold ());
      ("session_warm_request", bench_session_warm ());
    ]
  in
  let metrics =
    let recovery_full, recovery_snapshot = bench_recovery () in
    metrics
    @ [
        ("recovery_full", recovery_full);
        ("recovery_snapshot", recovery_snapshot);
        ( "constraint_burst_incremental",
          bench_constraint_burst ~incremental:true () );
        ("constraint_burst_scratch", bench_constraint_burst ~incremental:false ());
        ("monitor_commit_plain", bench_monitor_commit ~monitored:false ());
        ("monitor_commit_monitored", bench_monitor_commit ~monitored:true ());
      ]
  in
  let get name = List.assoc name metrics in
  let derived =
    [
      (* gated by gate.ml's --check23-speedup-min on runners with >= 4
         cores (default 1.5 at 4 domains; jobs2 must not regress) *)
      ("check23_speedup_jobs2", get "check23_jobs1" /. get "check23_jobs2");
      ("check23_speedup_jobs4", get "check23_jobs1" /. get "check23_jobs4");
      (* shared warm snapshot vs per-chunk copy rebuild — the E23
         ablation *)
      ( "snapshot_share_speedup",
        get "snapshot_copy_sweep" /. get "snapshot_shared_sweep" );
      ( "planner_quantified_speedup",
        get "planner_quantified_naive" /. get "planner_quantified_compiled" );
      ( "constraint_check_speedup",
        get "constraint_check_naive" /. get "constraint_check_compiled" );
      ("plan_cache_speedup", get "plan_cache_miss" /. get "plan_cache_hit");
      (* gated at 2% by gate.ml: the cost of a disabled span relative to
         one semantics statement — the zero-cost-when-off contract *)
      ( "trace_disabled_overhead",
        get "trace_span_disabled" /. get "semantics_statement" );
      ( "trace_enabled_cost_ratio",
        get "semantics_statement_traced" /. get "semantics_statement" );
      (* gated by gate.ml (>= 5 by default): a warm session must beat
         per-request setup by the margin that justifies the daemon *)
      ( "session_warm_speedup",
        get "session_cold_request" /. get "session_warm_request" );
      (* recovery bounded by a snapshot vs a full history re-run —
         the number EXPERIMENTS.md's E22 reports *)
      ("recovery_snapshot_speedup", get "recovery_full" /. get "recovery_snapshot");
      (* gated by gate.ml's --delta-speedup-min (CI passes 5): a warm
         differential commit must beat from-scratch constraint
         re-evaluation by the margin that justifies the machinery —
         the number EXPERIMENTS.md's E24 reports *)
      ( "constraint_delta_speedup",
        get "constraint_burst_scratch" /. get "constraint_burst_incremental" );
      (* gated by gate.ml's --monitor-overhead-max (default 0:
         disabled; CI passes 3): a commit with streaming monitors
         attached relative to the same commit without them — the
         number EXPERIMENTS.md's E26 reports *)
      ( "monitor_commit_overhead",
        get "monitor_commit_monitored" /. get "monitor_commit_plain" );
      (* not a ratio: aggregate answered requests/second through the
         socket gateway (E25), gated by gate.ml's --rps-min (CI passes
         200 — an absolute floor, deliberately far below any real
         machine, that catches a hung or serialized gateway) *)
      ("gateway_rps", bench_gateway_rps ());
    ]
  in
  let pp_fields ppf fields =
    Fmt.pf ppf "%a"
      Fmt.(
        list ~sep:(any ",@,") (fun ppf (k, value) ->
            (* 4 decimals: the derived overhead ratios live well below
               the 2% gate and must survive the round-trip *)
            Fmt.pf ppf "@[\"%s\": %.4f@]" (json_escape k) value))
      fields
  in
  Fmt.pr
    "@[<v 2>{@,\
     \"schema_version\": 1,@,\
     \"cores\": %d,@,\
     \"calibration_ns\": %.2f,@,\
     @[<v 2>\"metrics\": {@,%a@]@,},@,\
     @[<v 2>\"derived\": {@,%a@]@,}@]@,}@."
    (Pool.recommended_jobs ())
    calibration_ns pp_fields metrics pp_fields derived

(* ------------------------------------------------------------------ *)
(* E20: observability — span/counter costs and counter deltas          *)
(* ------------------------------------------------------------------ *)

(* Measured with the same monotonic time_ns loop as the JSON metrics
   (not Bechamel): the off/on variants flip the process-wide tracing
   flag, which must not interleave with other tests. Printed after
   E19 in the human-readable run. *)
let e20 () =
  Fmt.pr "@.E20: observability: span and counter costs, tracing off vs on@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let rows =
    [
      ("metrics counter incr", bench_metrics_incr ());
      ("span site, tracing disabled", bench_trace_span ~enabled:false ());
      ("span site, tracing enabled", bench_trace_span ~enabled:true ());
      ( "semantics statement, tracing disabled",
        bench_semantics_statement ~traced:false () );
      ( "semantics statement, tracing enabled",
        bench_semantics_statement ~traced:true () );
    ]
  in
  List.iter (fun (name, ns) -> Fmt.pr "  %-42s %a@." name pp_time ns) rows;
  let get name = List.assoc name rows in
  Fmt.pr "  disabled span / statement: %.4f (gate: <= 0.02)@."
    (get "span site, tracing disabled"
    /. get "semantics statement, tracing disabled");
  Fmt.pr
    "  shape: a disabled span is one atomic load; enabled spans pay two clock \
     reads and an allocation; counters are one atomic rmw@."

(* E21: service sessions — warm session vs per-request setup           *)

let e21 () =
  Fmt.pr "@.E21: service sessions: warm session vs per-request setup@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let warm = bench_session_warm () in
  let cold = bench_session_cold () in
  Fmt.pr "  %-42s %a@." "request on a warm session" pp_time warm;
  Fmt.pr "  %-42s %a@." "request paying full session setup" pp_time cold;
  Fmt.pr "  warm-session speedup: %.1fx (gate: >= 5x)@." (cold /. warm);
  Fmt.pr
    "  shape: setup re-checks the schema and re-plans every constraint and \
     assignment against a cold plan cache; the warm session keeps those and \
     pays only execution@."

(* E22: crash recovery — snapshot-bounded replay vs full history       *)

let e22 () =
  Fmt.pr "@.E22: recovery: snapshot-bounded replay vs full journal replay@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let full, snapshot = bench_recovery () in
  Fmt.pr "  %-42s %a@."
    (Fmt.str "full replay (%d entries)" recovery_entries)
    pp_time full;
  Fmt.pr "  %-42s %a@."
    (Fmt.str "snapshot + %d-entry tail" recovery_tail)
    pp_time snapshot;
  Fmt.pr "  snapshot-bounded speedup: %.1fx@." (full /. snapshot);
  Fmt.pr
    "  shape: full recovery re-executes every committed entry, constraint \
     checks included; a durable snapshot installs the captured state directly \
     and re-runs only the tail committed after it@."

(* E23: the parallel refinement sweep — work-stealing speedups and the
   shared-snapshot ablation *)

let e23 () =
  Fmt.pr "@.E23: work-stealing Pool: Check23 speedups and snapshot sharing@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let j1 = bench_check23 ~jobs:1 () in
  let j2 = bench_check23 ~jobs:2 () in
  let j4 = bench_check23 ~jobs:4 () in
  Fmt.pr "  %-42s %a@." "check23 sweep, 1 domain" pp_time j1;
  Fmt.pr "  %-42s %a  (%.2fx)@." "check23 sweep, 2 domains" pp_time j2
    (j1 /. j2);
  Fmt.pr "  %-42s %a  (%.2fx)@." "check23 sweep, 4 domains" pp_time j4
    (j1 /. j4);
  let shared = bench_snapshot_shared () in
  let copy = bench_snapshot_copy () in
  Fmt.pr "  %-42s %a@." "probe sweep, shared warm snapshot" pp_time shared;
  Fmt.pr "  %-42s %a@." "probe sweep, per-chunk copy rebuild" pp_time copy;
  Fmt.pr "  shared-snapshot speedup: %.1fx@." (copy /. shared);
  Fmt.pr
    "  shape: persistent worker domains + work stealing remove the per-map \
     spawn and straggler barrier; sharing the immutable snapshot removes the \
     per-chunk index rebuild. Speedups need real cores (this machine: %d); \
     the CI multicore gate requires >= 1.5x at 4 domains@."
    (Pool.recommended_jobs ())

(* E24: incremental evaluation — differential constraint checks on a
   write-heavy commit burst *)

let e24 () =
  Fmt.pr
    "@.E24: incremental evaluation: delta-driven constraint checks per commit@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let incr_ns = bench_constraint_burst ~incremental:true () in
  let scratch_ns = bench_constraint_burst ~incremental:false () in
  Fmt.pr "  %-42s %a@."
    (Fmt.str "commit, %d constraints, from scratch" burst_k)
    pp_time scratch_ns;
  Fmt.pr "  %-42s %a@."
    (Fmt.str "commit, %d constraints, differential" burst_k)
    pp_time incr_ns;
  Fmt.pr "  delta speedup: %.1fx  (gate: >= 5x)@." (scratch_ns /. incr_ns);
  Fmt.pr
    "  shape: from-scratch checking re-evaluates every compiled plan over all \
     %d tuples per commit; the differential layer diffs the snapshot once and \
     pushes the one-tuple delta through each materialized plan, so the \
     per-commit cost drops from K x O(|db|) to O(|db| diff) + K x O(|delta|)@."
    burst_n

(* E25: the socket gateway — pipelined throughput end to end *)

let e25 () =
  Fmt.pr "@.E25: gateway throughput: pipelined clients over the socket server@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let rps = bench_gateway_rps () in
  Fmt.pr "  %-42s %8.0f req/s@."
    (Fmt.str "%d connections x %d requests, window %d" gw_clients gw_requests
       gw_window)
    rps;
  Fmt.pr
    "  shape: the pipelined connection loop answers every buffered frame into \
     one corked flush, so throughput is bounded by execution, not by \
     per-request round-trips; the CI gate floors this at 200 req/s \
     (--rps-min), an absolute sanity floor rather than a machine-relative \
     number@."

(* E26: streaming temporal monitors — per-commit overhead *)

let e26 () =
  Fmt.pr "@.E26: streaming monitors: per-commit overhead on the session path@.";
  Fmt.pr "----------------------------------------------------------------@.";
  let plain = bench_monitor_commit ~monitored:false () in
  let monitored = bench_monitor_commit ~monitored:true () in
  Fmt.pr "  %-42s %a@." "commit, no monitors" pp_time plain;
  Fmt.pr "  %-42s %a@." "commit, 2-axiom theory monitored" pp_time monitored;
  Fmt.pr "  monitored / plain: %.2fx  (gate: <= 3x)@." (monitored /. plain);
  Fmt.pr
    "  shape: each commit pays one delta extraction plus, per transition \
     axiom, a two-state widened delta pushed through the materialized \
     time-sorted plan; static axioms re-check only when their relations \
     changed, so the overhead tracks the delta, not the database@."

(* --metrics-json: run a fixed deterministic workload (the small
   university verification, one domain) from zeroed instruments and
   print every counter delta — the numbers behind EXPERIMENTS.md's E20
   table. Counter deltas are exact and machine-independent; histogram
   timings are not, so only their counts are emitted. *)
let run_metrics_json () =
  Metrics.reset ();
  let v = Design.verify ~domain:University.small_domain ~depth:2 University.design in
  if not (Design.verified v) then
    invalid_arg "bench: the university design failed to verify";
  let snap = Metrics.snapshot () in
  let pp_counters ppf cs =
    Fmt.(
      list ~sep:(any ",@,") (fun ppf (k, n) ->
          Fmt.pf ppf "@[\"%s\": %d@]" (json_escape k) n))
      ppf cs
  in
  let pp_hist_counts ppf hs =
    Fmt.(
      list ~sep:(any ",@,") (fun ppf (k, h) ->
          Fmt.pf ppf "@[\"%s\": %d@]" (json_escape k) h.Metrics.h_count))
      ppf hs
  in
  Fmt.pr
    "@[<v 2>{@,\
     \"schema_version\": 1,@,\
     \"workload\": \"verify university (small domain, depth 2, jobs 1)\",@,\
     @[<v 2>\"counters\": {@,%a@]@,},@,\
     @[<v 2>\"histogram_counts\": {@,%a@]@,}@]@,}@."
    pp_counters snap.Metrics.counters pp_hist_counts snap.Metrics.histograms

let () =
  if Array.exists (( = ) "--metrics-json") Sys.argv then begin
    run_metrics_json ();
    exit 0
  end;
  if Array.exists (( = ) "--json") Sys.argv then begin
    run_json ();
    exit 0
  end;
  Fmt.pr "fdbs benchmark harness — experiments E1..E26 (see DESIGN.md / EXPERIMENTS.md)@.";
  Fmt.pr "paper: Casanova, Veloso & Furtado, PODS 1984 (no quantitative tables;@.";
  Fmt.pr "the experiments measure the framework's checkers and evaluators).@.";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e15 ();
  e16 ();
  e17 ();
  e19 ();
  e20 ();
  e21 ();
  e22 ();
  e23 ();
  e24 ();
  e25 ();
  e26 ();
  Fmt.pr "@.done.@."
