(* Validate a Chrome-trace-format JSON file as written by `fds --trace`:
   a top-level object with a "traceEvents" array of complete-duration
   events, each carrying name/cat/ph:"X"/ts/dur/pid/tid (and optionally
   string-valued "args"). Used by the CI trace smoke. Exit 0 and print
   the event count on success; exit 1 with a message on the first
   malformed event. *)

module Json = Fdbs_kernel.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace_validate: " ^ s); exit 1) fmt

let check_event i (ev : Json.t) =
  let get name =
    match Json.field name ev with
    | Some v -> v
    | None -> fail "event %d: missing field %S" i name
  in
  (match get "name" with
   | Json.Str "" -> fail "event %d: empty name" i
   | Json.Str _ -> ()
   | _ -> fail "event %d: name is not a string" i);
  (match get "cat" with
   | Json.Str _ -> ()
   | _ -> fail "event %d: cat is not a string" i);
  (match get "ph" with
   | Json.Str "X" -> ()
   | Json.Str ph -> fail "event %d: phase %S, expected \"X\"" i ph
   | _ -> fail "event %d: ph is not a string" i);
  (match (get "ts", get "dur") with
   | Json.Num ts, Json.Num dur ->
     if ts < 0. then fail "event %d: negative ts" i;
     if dur < 0. then fail "event %d: negative dur" i
   | _ -> fail "event %d: ts/dur are not numbers" i);
  (match (get "pid", get "tid") with
   | Json.Num _, Json.Num _ -> ()
   | _ -> fail "event %d: pid/tid are not numbers" i);
  match Json.field "args" ev with
  | None -> ()
  | Some (Json.Obj kvs) ->
    List.iter
      (function
        | _, Json.Str _ -> ()
        | k, _ -> fail "event %d: arg %S is not a string" i k)
      kvs
  | Some _ -> fail "event %d: args is not an object" i

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: trace_validate FILE.json";
      exit 2
  in
  let report =
    match Json.parse_file path with
    | report -> report
    | exception Json.Parse_error e -> fail "%s: %s" path e
    | exception Sys_error e -> fail "%s" e
  in
  match Json.field "traceEvents" report with
  | Some (Json.Arr events) ->
    List.iteri check_event events;
    Printf.printf "trace OK: %d events\n" (List.length events)
  | Some _ -> fail "%s: traceEvents is not an array" path
  | None -> fail "%s: no traceEvents field" path
