Journal-backed replication: boot a leader (journaled, so it serves the
fetch op) and a read-only follower streaming from it, commit on the
leader, watch the follower converge, kill the leader with SIGKILL, and
check the follower keeps serving reads from its snapshot + journal.

  $ fds serve guarded.schema --socket leader.sock --transactional --journal leader.journal 2>leader.log &
  $ LEADER=$!
  $ for i in $(seq 1 150); do test -S leader.sock && break; sleep 0.1; done
  $ fds serve guarded.schema --socket follower.sock --journal follower.journal --follow leader.sock --snapshot-every 2 2>follower.log &
  $ FOLLOWER=$!
  $ for i in $(seq 1 150); do test -S follower.sock && break; sleep 0.1; done

The client retries transient connection failures with backoff, so a
racing boot is harmless:

  $ fds client --socket leader.sock --retries 10 '{"id": 1, "op": "ping"}'
  {"id": 1, "ok": true, "result": "pong"}

Two committed transactions on the leader:

  $ fds client --socket leader.sock \
  >   '{"id": 2, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  >   '{"id": 3, "op": "run", "calls": ["offer(cs202)"]}'
  {"id": 2, "ok": true, "result": {"completed": 2, "state": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}}
  {"id": 3, "ok": true, "result": {"completed": 1, "state": {"relations": {"OFFERED": [["cs101"], ["cs202"]], "TAKES": []}, "scalars": {}}}}

The follower catches up (poll until the second commit lands):

  $ for i in $(seq 1 150); do fds client --socket follower.sock '{"id": 0, "op": "state"}' | grep -q cs202 && break; sleep 0.1; done
  $ fds client --socket follower.sock '{"id": 4, "op": "state"}'
  {"id": 4, "ok": true, "result": {"relations": {"OFFERED": [["cs101"], ["cs202"]], "TAKES": []}, "scalars": {}}}

Writes on the follower are rejected with a structured Read_only error;
reads keep working:

  $ fds client --socket follower.sock \
  >   '{"id": 5, "op": "run", "calls": ["offer(cs303)"]}' \
  >   '{"id": 6, "op": "query", "wff": "OFFERED(c)", "params": [["c", "course", "cs101"]]}'
  {"id": 5, "ok": false, "error": {"phase": "exec", "code": "read-only", "message": "read-only replica: writes must go to the leader", "context": {"op": "run"}}}
  {"id": 6, "ok": true, "result": true}

Kill the leader without ceremony — SIGKILL, no shutdown handshake:

  $ kill -9 $LEADER
  $ wait $LEADER
  [137]
  $ for i in $(seq 1 150); do grep -q "unreachable" follower.log && break; sleep 0.1; done

The follower degrades to read-only-and-reconnecting instead of an
outage — reads still answer from the replicated state:

  $ fds client --socket follower.sock \
  >   '{"id": 7, "op": "query", "wff": "OFFERED(c)", "params": [["c", "course", "cs202"]]}' \
  >   '{"id": 8, "op": "run", "calls": ["offer(cs404)"]}'
  {"id": 7, "ok": true, "result": true}
  {"id": 8, "ok": false, "error": {"phase": "exec", "code": "read-only", "message": "read-only replica: writes must go to the leader", "context": {"op": "run"}}}

  $ fds client --socket follower.sock '{"id": 9, "op": "shutdown"}'
  {"id": 9, "ok": true, "result": "bye"}
  $ wait

The follower announced both its role and the degradation, once each:

  $ grep -c "following leader.sock" follower.log
  1
  $ grep -c "unreachable; serving reads only" follower.log
  1

With --snapshot-every 2 the second applied entry snapshotted the state
and truncated the follower's journal behind it, so its disk footprint
is the snapshot plus an empty tail — and recovery is snapshot-bounded:
replay installs the snapshot and re-runs zero entries:

  $ cat follower.journal
  base 2
  epoch 1
  $ fds replay guarded.schema follower.journal
  installed snapshot (offset 2)
  replayed 0 transactions (0 calls)
  
  final state:
  OFFERED = {(cs101), (cs202)}
  TAKES = {}


The leader's own journal still replays to the same state — the
follower lost nothing:

  $ fds replay guarded.schema leader.journal
  replayed 2 transactions (3 calls)
  
  final state:
  OFFERED = {(cs101), (cs202)}
  TAKES = {}

