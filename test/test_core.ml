(* End-to-end tests of the bundled framework: the university design
   verifies at every level; the constructively derived equations agree;
   the W-grammar accepts the representation-level source. *)

open Fdbs

let test_design_verifies_small () =
  let v = Design.verify ~domain:University.small_domain ~depth:2 University.design in
  Alcotest.(check bool)
    (Fmt.str "%a" Design.pp_verification v)
    true (Design.verified v)

let test_design_verifies_full () =
  let v = Design.verify ~depth:2 University.design in
  Alcotest.(check bool)
    (Fmt.str "%a" Design.pp_verification v)
    true (Design.verified v);
  Alcotest.(check bool) "nontrivial agreement sweep" true (v.Design.agreement_checked > 1000)

let test_cross_level_agreement () =
  let checked, mismatches =
    Design.agreement ~domain:University.small_domain ~depth:3 University.design
  in
  Alcotest.(check (list string)) "no mismatches" []
    (List.map (Fmt.str "%a" Design.pp_mismatch) mismatches);
  Alcotest.(check bool) "checked many" true (checked > 100)

let test_derived_design_verifies () =
  (* swap in the equations derived from structured descriptions *)
  let design =
    Design.make ~name:"university-derived" ~info:University.info
      ~functions:University.derived_functions
      ~representation:University.representation ~interp:University.interp
      ~mapping:University.mapping
  in
  let v = Design.verify ~domain:University.small_domain ~depth:2 design in
  Alcotest.(check bool)
    (Fmt.str "%a" Design.pp_verification v)
    true (Design.verified v)

let test_wgrammar_accepts_representation () =
  Alcotest.(check bool) "schema text recognized" true
    (Fdbs_wgrammar.Rpr_grammar.recognizes University.representation_src)

let test_canonical_design () =
  match
    Design.canonical ~name:"university" ~info:University.info
      ~functions:University.functions ~representation:University.representation
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e.Fdbs_kernel.Error.message

let suite =
  [
    Alcotest.test_case "university verifies (1x1)" `Quick test_design_verifies_small;
    Alcotest.test_case "university verifies (2x2)" `Slow test_design_verifies_full;
    Alcotest.test_case "cross-level agreement" `Slow test_cross_level_agreement;
    Alcotest.test_case "derived design verifies" `Quick test_derived_design_verifies;
    Alcotest.test_case "wgrammar accepts representation" `Slow
      test_wgrammar_accepts_representation;
    Alcotest.test_case "canonical design" `Quick test_canonical_design;
  ]
