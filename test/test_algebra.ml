(* Tests for the algebraic level: the paper's university specification
   (Section 4.2 equations 1-15), rewriting evaluation, sufficient
   completeness, observations, reachability and equation derivation. *)

open Fdbs_kernel
open Fdbs_algebra

let university_src =
  {|
spec university

sort course
sort student
const cs101 : course
const cs102 : course
const ana : student
const bob : student

query offered : course -> bool
query takes : student, course -> bool

update initiate
update offer : course
update cancel : course
update enroll : student, course
update transfer : student, course, course

# Section 4.2, equations 1-15 (eq6 in the biconditional form the paper
# derives: offered(c, cancel(c,U)) is true iff some student takes c).
eq q1: offered(c, initiate) = false
eq q2: takes(s, c, initiate) = false
eq q3: offered(c, offer(c, U)) = true
eq q4: c /= c2 => offered(c, offer(c2, U)) = offered(c, U)
eq q5: takes(s, c, offer(c2, U)) = takes(s, c, U)
eq q6: offered(c, cancel(c, U)) = (exists s:student. takes(s, c, U))
eq q7: c /= c2 => offered(c, cancel(c2, U)) = offered(c, U)
eq q8: takes(s, c, cancel(c2, U)) = takes(s, c, U)
eq q9: offered(c, enroll(s, c2, U)) = offered(c, U)
eq q10: takes(s, c, enroll(s, c, U)) = offered(c, U)
eq q11: s /= s2 | c /= c2 => takes(s, c, enroll(s2, c2, U)) = takes(s, c, U)
eq q12: offered(c, transfer(s, c2, c3, U)) = offered(c, U)
eq q13: takes(s, c2, transfer(s, c, c2, U)) =
        ((offered(c2, U) & takes(s, c, U)) | takes(s, c2, U))
eq q14: takes(s, c, transfer(s, c, c2, U)) =
        ((~offered(c2, U) | takes(s, c2, U)) & takes(s, c, U))
eq q15: s /= s2 | (c /= c2 & c /= c3) =>
        takes(s, c, transfer(s2, c2, c3, U)) = takes(s, c, U)
|}

let university = Aparser.spec_exn university_src

let course c = Value.Sym c
let student s = Value.Sym s

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A handy trace: offer cs101; enroll ana in cs101. *)
let trace_enrolled =
  Strace.apply "enroll" [ student "ana"; course "cs101" ]
    (Strace.apply "offer" [ course "cs101" ] (Strace.init "initiate"))

let q spec name params trace =
  match Eval.query_on_trace spec ~q:name ~params trace with
  | Ok (Value.Bool b) -> b
  | Ok v -> Alcotest.failf "expected bool, got %a" Value.pp v
  | Error e -> Alcotest.failf "eval error: %a" Eval.pp_error e

let test_initiate () =
  check_bool "offered(cs101, initiate) = false" false
    (q university "offered" [ course "cs101" ] (Strace.init "initiate"));
  check_bool "takes(ana, cs101, initiate) = false" false
    (q university "takes" [ student "ana"; course "cs101" ] (Strace.init "initiate"))

let test_offer () =
  let t = Strace.apply "offer" [ course "cs101" ] (Strace.init "initiate") in
  check_bool "offered(cs101) after offer" true (q university "offered" [ course "cs101" ] t);
  check_bool "offered(cs102) unaffected" false (q university "offered" [ course "cs102" ] t)

let test_enroll () =
  check_bool "takes(ana, cs101) after enroll" true
    (q university "takes" [ student "ana"; course "cs101" ] trace_enrolled);
  check_bool "takes(bob, cs101) unaffected" false
    (q university "takes" [ student "bob"; course "cs101" ] trace_enrolled)

let test_enroll_not_offered () =
  (* enrolling in a course that is not offered is a no-op *)
  let t =
    Strace.apply "enroll" [ student "ana"; course "cs102" ] (Strace.init "initiate")
  in
  check_bool "takes(ana, cs102) still false" false
    (q university "takes" [ student "ana"; course "cs102" ] t)

let test_cancel_blocked () =
  (* cancel fails while a student takes the course (equation 6) *)
  let t = Strace.apply "cancel" [ course "cs101" ] trace_enrolled in
  check_bool "offered(cs101) still true after blocked cancel" true
    (q university "offered" [ course "cs101" ] t)

let test_cancel_succeeds () =
  let t =
    Strace.apply "cancel" [ course "cs101" ]
      (Strace.apply "offer" [ course "cs101" ] (Strace.init "initiate"))
  in
  check_bool "offered(cs101) false after cancel" false
    (q university "offered" [ course "cs101" ] t)

let test_transfer () =
  let t =
    Strace.apply "transfer" [ student "ana"; course "cs101"; course "cs102" ]
      (Strace.apply "offer" [ course "cs102" ] trace_enrolled)
  in
  check_bool "takes(ana, cs102) after transfer" true
    (q university "takes" [ student "ana"; course "cs102" ] t);
  check_bool "takes(ana, cs101) false after transfer" false
    (q university "takes" [ student "ana"; course "cs101" ] t)

let test_transfer_blocked () =
  (* target course not offered: transfer is a no-op *)
  let t =
    Strace.apply "transfer" [ student "ana"; course "cs101"; course "cs102" ] trace_enrolled
  in
  check_bool "takes(ana, cs101) still true" true
    (q university "takes" [ student "ana"; course "cs101" ] t);
  check_bool "takes(ana, cs102) still false" false
    (q university "takes" [ student "ana"; course "cs102" ] t)

let test_sufficient_completeness () =
  let report = Completeness.check ~depth:2 university in
  Alcotest.(check bool)
    (Fmt.str "%a" Completeness.pp_report report)
    true (Completeness.is_complete report)

let test_observational_equiv () =
  (* offering twice is the same as offering once *)
  let t1 = Strace.apply "offer" [ course "cs101" ] (Strace.init "initiate") in
  let t2 = Strace.apply "offer" [ course "cs101" ] t1 in
  check_bool "offer idempotent (observationally)" true (Observe.equiv university t1 t2);
  check_bool "distinct states distinguished" false
    (Observe.equiv university t1 (Strace.init "initiate"))

let test_reach () =
  (* Over 1 course and 1 student: states are subsets of
     {offered, takes} with takes -> offered: initiate, offered,
     offered+takes = 3 states. *)
  let domain =
    Domain.of_list
      [ ("course", [ course "cs101" ]); ("student", [ student "ana" ]) ]
  in
  let g = Reach.explore_exn ~domain university in
  check_int "3 reachable states over 1x1 domain" 3 (Reach.num_states g);
  check_bool "not truncated" false g.Reach.truncated

let test_static_constraint_on_reachable () =
  (* every reachable state satisfies takes(s,c) -> offered(c) *)
  let g = Reach.explore_exn university in
  Array.iter
    (fun (n : Reach.node) ->
      List.iter
        (fun (o : Observe.observation) ->
          if o.Observe.obs_query = "takes" && o.Observe.obs_result = Value.Bool true then
            match o.Observe.obs_params with
            | [ _; crs ] ->
              let offered =
                q university "offered" [ crs ] n.Reach.trace
              in
              check_bool
                (Fmt.str "static constraint at %a" Strace.pp n.Reach.trace)
                true offered
            | _ -> Alcotest.fail "unexpected takes arity")
        n.Reach.obs)
    g.Reach.nodes

(* Structured descriptions for the university example; Derive must
   produce an equation set observationally equivalent to the hand
   equations. *)
let university_descriptions =
  let sg = university.Spec.signature in
  let v n s : Fdbs_logic.Term.var = { Fdbs_logic.Term.vname = n; vsort = Sort.make s } in
  let av n s = Aterm.Var (v n s) in
  let u_var = Aterm.Var Sdesc.state_var in
  let takes s c st = Aterm.App ("takes", [ s; c; st ]) in
  let offered c st = Aterm.App ("offered", [ c; st ]) in
  ignore sg;
  [
    Sdesc.make ~update:"initiate" ~params:[]
      ~effects:
        [
          Sdesc.effect_ "offered" [ av "c" "course" ] Aterm.fls;
          Sdesc.effect_ "takes" [ av "s" "student"; av "c" "course" ] Aterm.fls;
        ]
      ();
    Sdesc.make ~update:"offer" ~params:[ v "c" "course" ]
      ~effects:[ Sdesc.effect_ "offered" [ av "c" "course" ] Aterm.tru ]
      ();
    Sdesc.make ~update:"cancel" ~params:[ v "c" "course" ]
      ~pre:
        (Aterm.Forall
           (v "s" "student", Aterm.eq (takes (av "s" "student") (av "c" "course") u_var) Aterm.fls))
      ~effects:[ Sdesc.effect_ "offered" [ av "c" "course" ] Aterm.fls ]
      ();
    Sdesc.make ~update:"enroll" ~params:[ v "s" "student"; v "c" "course" ]
      ~pre:(Aterm.eq (offered (av "c" "course") u_var) Aterm.tru)
      ~effects:
        [ Sdesc.effect_ "takes" [ av "s" "student"; av "c" "course" ] Aterm.tru ]
      ();
    Sdesc.make ~update:"transfer"
      ~params:[ v "s" "student"; v "c" "course"; v "c2" "course" ]
      ~pre:
        (Aterm.conj
           [
             Aterm.eq (takes (av "s" "student") (av "c" "course") u_var) Aterm.tru;
             Aterm.eq (takes (av "s" "student") (av "c2" "course") u_var) Aterm.fls;
             Aterm.eq (offered (av "c2" "course") u_var) Aterm.tru;
           ])
      ~effects:
        [
          Sdesc.effect_ "takes" [ av "s" "student"; av "c" "course" ] Aterm.fls;
          Sdesc.effect_ "takes" [ av "s" "student"; av "c2" "course" ] Aterm.tru;
        ]
      ();
  ]

let derived_spec =
  let sg = university.Spec.signature in
  let eqs = Derive.equations_exn sg university_descriptions in
  Spec.make_exn ~name:"university-derived" ~signature:sg ~equations:eqs ()

let test_derive_complete () =
  let report = Completeness.check ~depth:2 derived_spec in
  Alcotest.(check bool)
    (Fmt.str "%a" Completeness.pp_report report)
    true (Completeness.is_complete report)

let test_derive_agrees_with_hand_equations () =
  (* Both specifications answer every query identically on every trace
     up to depth 3 over a 2x1 domain. *)
  let domain =
    Domain.of_list
      [ ("course", [ course "cs101"; course "cs102" ]); ("student", [ student "ana" ]) ]
  in
  let sg = university.Spec.signature in
  let traces =
    List.concat_map
      (fun d -> Strace.enumerate sg ~domain ~depth:d)
      [ 0; 1; 2; 3 ]
  in
  List.iter
    (fun trace ->
      List.iter
        (fun (qop : Asig.op) ->
          let carriers = List.map (Domain.carrier domain) (Asig.param_args qop) in
          List.iter
            (fun params ->
              let a =
                Eval.query_on_trace ~domain university ~q:qop.Asig.oname ~params trace
              in
              let b =
                Eval.query_on_trace ~domain derived_spec ~q:qop.Asig.oname ~params trace
              in
              match (a, b) with
              | Ok va, Ok vb ->
                check_bool
                  (Fmt.str "%s(%a) on %a agrees" qop.Asig.oname
                     Fmt.(list ~sep:(any ",") Value.pp)
                     params Strace.pp trace)
                  true (Value.equal va vb)
              | Error e, _ | _, Error e ->
                Alcotest.failf "eval error: %a" Eval.pp_error e)
            (Util.cartesian carriers))
        sg.Asig.queries)
    traces

let suite =
  [
    Alcotest.test_case "initiate" `Quick test_initiate;
    Alcotest.test_case "offer" `Quick test_offer;
    Alcotest.test_case "enroll" `Quick test_enroll;
    Alcotest.test_case "enroll not offered" `Quick test_enroll_not_offered;
    Alcotest.test_case "cancel blocked" `Quick test_cancel_blocked;
    Alcotest.test_case "cancel succeeds" `Quick test_cancel_succeeds;
    Alcotest.test_case "transfer" `Quick test_transfer;
    Alcotest.test_case "transfer blocked" `Quick test_transfer_blocked;
    Alcotest.test_case "sufficient completeness" `Quick test_sufficient_completeness;
    Alcotest.test_case "observational equivalence" `Quick test_observational_equiv;
    Alcotest.test_case "reachable states" `Quick test_reach;
    Alcotest.test_case "static constraint on reachables" `Slow
      test_static_constraint_on_reachable;
    Alcotest.test_case "derived equations complete" `Quick test_derive_complete;
    Alcotest.test_case "derived equations agree" `Slow test_derive_agrees_with_hand_equations;
  ]

(* --- critical pairs / confluence (extension) ------------------------ *)

let test_critical_pairs_found () =
  (* q13 and q14 overlap on transfer(s, c, c, U); q10/q11, q3/q4 etc.
     overlap vacuously (contradictory conditions). *)
  let pairs = Confluence.critical_pairs university in
  Alcotest.(check bool) "some overlaps exist" true (List.length pairs > 0);
  Alcotest.(check bool) "q13/q14 overlap detected" true
    (List.exists
       (fun (p : Confluence.pair) ->
         (p.Confluence.cp_eq1 = "q13" && p.Confluence.cp_eq2 = "q14")
         || (p.Confluence.cp_eq1 = "q14" && p.Confluence.cp_eq2 = "q13"))
       pairs)

let test_university_confluent () =
  match Confluence.check ~depth:2 university with
  | Error e -> Alcotest.failf "%a" Eval.pp_error e
  | Ok report ->
    Alcotest.(check bool)
      (Fmt.str "%a" Confluence.pp_report report)
      true
      (Confluence.is_confluent report)

let test_derived_confluent () =
  match Confluence.check ~depth:2 derived_spec with
  | Error e -> Alcotest.failf "%a" Eval.pp_error e
  | Ok report -> Alcotest.(check bool) "derived confluent" true (Confluence.is_confluent report)

let test_divergence_detected () =
  (* two unconditional rules assigning different values to the same
     query/update pair must be reported as diverging *)
  let src =
    {|
spec broken
sort thing
const t1 : thing
query q : thing -> bool
update initiate
update touch : thing
eq e1: q(x, initiate) = false
eq e2: q(x, touch(y, U)) = true
eq e3: q(x, touch(x, U)) = false
|}
  in
  let spec = Aparser.spec_exn src in
  match Confluence.check ~depth:1 spec with
  | Error _ -> Alcotest.fail "expected a confluence report"
  | Ok report ->
    Alcotest.(check bool) "divergence detected" false (Confluence.is_confluent report)

(* --- observability (extension) -------------------------------------- *)

let test_observability_holds () =
  let g = Reach.explore_exn university in
  Alcotest.(check bool) "full query set observes" true (Observability.observable g)

let test_observability_ablation () =
  let g = Reach.explore_exn university in
  let rows = Observability.ablation university g in
  let n = Reach.num_states g in
  (* dropping takes collapses states that differ only in enrollments *)
  Alcotest.(check bool) "takes is load-bearing" true
    (List.assoc "takes" rows < n);
  Alcotest.(check bool) "offered is load-bearing" true
    (List.assoc "offered" rows < n)

let test_minimal_sufficient_sets () =
  let g = Reach.explore_exn university in
  let sets = Observability.minimal_sufficient_sets university g in
  (* both queries are needed: the only minimal sufficient set is {offered, takes} *)
  Alcotest.(check int) "one minimal set" 1 (List.length sets);
  Alcotest.(check int) "of size two" 2 (List.length (List.hd sets))

let suite =
  suite
  @ [
      Alcotest.test_case "critical pairs found" `Quick test_critical_pairs_found;
      Alcotest.test_case "university confluent" `Slow test_university_confluent;
      Alcotest.test_case "derived system confluent" `Slow test_derived_confluent;
      Alcotest.test_case "divergence detected" `Quick test_divergence_detected;
      Alcotest.test_case "observability holds" `Quick test_observability_holds;
      Alcotest.test_case "observability ablation" `Quick test_observability_ablation;
      Alcotest.test_case "minimal sufficient query sets" `Quick test_minimal_sufficient_sets;
    ]

(* --- derivation tracing (Eval.explain) ------------------------------ *)

let test_explain () =
  let t =
    Strace.apply "cancel" [ course "cs101" ]
      (Strace.apply "offer" [ course "cs101" ] (Strace.init "initiate"))
  in
  let term =
    Aterm.App
      ("offered",
       [ Aterm.Val (course "cs101", "course");
         Strace.to_aterm university.Spec.signature t ])
  in
  match Eval.explain university term with
  | Error e -> Alcotest.failf "%a" Eval.pp_error e
  | Ok (v, steps) ->
    Alcotest.(check bool) "result false" true (Value.equal v (Value.Bool false));
    (* innermost steps first; the outermost step is the cancel query *)
    Alcotest.(check bool) "at least two steps" true (List.length steps >= 2);
    (match List.rev steps with
     | last :: _ -> Alcotest.(check string) "outermost via q6" "q6" last.Eval.step_via
     | [] -> Alcotest.fail "no steps")

let suite =
  suite @ [ Alcotest.test_case "derivation tracing" `Quick test_explain ]

(* --- error paths and checker diagnostics ----------------------------- *)

let test_conflicting_equations_detected () =
  let src =
    {|
spec clash
sort thing
const t1 : thing
query q : thing -> bool
update initiate
update touch : thing
eq e1: q(x, initiate) = false
eq e2: q(x, touch(y, U)) = true
eq e3: q(x, touch(x, U)) = false
|}
  in
  let spec = Aparser.spec_exn src in
  let t = Strace.apply "touch" [ Value.Sym "t1" ] (Strace.init "initiate") in
  match Eval.query_on_trace spec ~q:"q" ~params:[ Value.Sym "t1" ] t with
  | Error (Eval.Conflicting_equations (_, eqs)) ->
    Alcotest.(check bool) "both rules named" true
      (List.mem "e2" eqs && List.mem "e3" eqs)
  | Ok _ | Error _ -> Alcotest.fail "expected a conflict"

let test_missing_pair_detected () =
  let src =
    {|
spec holey
sort thing
const t1 : thing
query q : thing -> bool
update initiate
update touch : thing
eq e1: q(x, initiate) = false
|}
  in
  let spec = Aparser.spec_exn src in
  let report = Completeness.check ~depth:1 spec in
  Alcotest.(check bool) "incomplete" false (Completeness.is_complete report);
  Alcotest.(check bool) "missing pair reported" true
    (List.exists
       (function Completeness.Missing_pair ("q", "touch") -> true | _ -> false)
       report.Completeness.issues)

let test_non_decreasing_detected () =
  (* rhs interrogates the same state as the lhs: circular definition *)
  let src =
    {|
spec circular
sort thing
const t1 : thing
query q : thing -> bool
query r : thing -> bool
update initiate
update touch : thing
eq e1: q(x, initiate) = false
eq e2: r(x, initiate) = false
eq e3: q(x, touch(y, U)) = r(x, touch(y, U))
eq e4: r(x, touch(y, U)) = q(x, U)
|}
  in
  let spec = Aparser.spec_exn src in
  Alcotest.(check bool) "non-decreasing flagged" true
    (List.exists
       (function Completeness.Non_decreasing ("e3", _) -> true | _ -> false)
       (Completeness.termination_issues spec))

let test_parser_rejects_bad_specs () =
  let cases =
    [
      (* duplicate operator *)
      "spec s\nsort t\nquery q : t -> bool\nquery q : t -> bool\nupdate initiate";
      (* equation over undeclared operator *)
      "spec s\nsort t\nquery q : t -> bool\nupdate initiate\neq e: ghost(x, initiate) = false";
      (* unresolvable variable sort *)
      "spec s\nsort t\nquery q : t -> bool\nupdate initiate\neq e: x = y";
      (* rhs variable not in lhs *)
      "spec s\nsort t\nconst a : t\nquery q : t -> bool\nupdate initiate\neq e: q(x, initiate) = (x = z)";
    ]
  in
  List.iteri
    (fun i src ->
      match Aparser.spec src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad spec %d accepted" i)
    cases

let test_trace_enumerate_counts () =
  let domain =
    Domain.of_list
      [ ("course", [ course "cs101" ]); ("student", [ student "ana" ]) ]
  in
  let sg = university.Spec.signature in
  (* transformers over 1x1: offer(1) + cancel(1) + enroll(1) + transfer(1) = 4 *)
  Alcotest.(check int) "depth 0" 1 (List.length (Strace.enumerate sg ~domain ~depth:0));
  Alcotest.(check int) "depth 1" 4 (List.length (Strace.enumerate sg ~domain ~depth:1));
  Alcotest.(check int) "depth 2" 16 (List.length (Strace.enumerate sg ~domain ~depth:2))

let test_fuel_exhausted () =
  (* mutually recursive non-decreasing rules spin until the fuel runs out *)
  let src =
    {|
spec spin
sort thing
const t1 : thing
query q : thing -> bool
query r : thing -> bool
update initiate
eq e1: q(x, initiate) = r(x, initiate)
eq e2: r(x, initiate) = q(x, initiate)
|}
  in
  let spec = Aparser.spec_exn src in
  match
    Eval.query_on_trace ~fuel:1000 spec ~q:"q" ~params:[ Value.Sym "t1" ]
      (Strace.init "initiate")
  with
  | Error Eval.Fuel_exhausted -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected fuel exhaustion"

let suite =
  suite
  @ [
      Alcotest.test_case "conflicting equations detected" `Quick
        test_conflicting_equations_detected;
      Alcotest.test_case "missing pair detected" `Quick test_missing_pair_detected;
      Alcotest.test_case "non-decreasing detected" `Quick test_non_decreasing_detected;
      Alcotest.test_case "parser rejects bad specs" `Quick test_parser_rejects_bad_specs;
      Alcotest.test_case "trace enumeration counts" `Quick test_trace_enumerate_counts;
      Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhausted;
    ]
