Streaming temporal monitors behind the versioned subscription API:
serve a schema with monitors compiled from a theory file, subscribe a
client to the event stream, commit an update that breaks a transition
axiom, and watch the violation arrive as a tagged event frame.

  $ fds serve guarded.schema --socket fds.sock --transactional --journal srv.journal --monitors guarded.theory 2>server.log &
  $ for i in $(seq 1 100); do test -S fds.sock && break; sleep 0.1; done

A subscriber connects first: it negotiates protocol v2 with hello,
subscribes, and prints every event frame. The first frame is the
deterministic heartbeat, so we can wait for it before committing.

  $ fds monitor --subscribe --socket fds.sock --events 1 > sub.out &
  $ SUB=$!
  $ for i in $(seq 1 100); do test -s sub.out && break; sleep 0.1; done

The v2 handshake advertises the op set and the feature flags; old
clients that never send hello keep speaking v1 unchanged.

  $ fds client --socket fds.sock '{"id": 1, "op": "hello", "version": 2}'
  {"id": 1, "ok": true, "result": {"version": 2, "ops": ["ping", "hello", "query", "eval", "explain", "state", "stats", "monitor", "subscribe", "batch", "shutdown", "run", "begin", "commit", "rollback", "replay", "attach", "fetch"], "features": ["namespaces", "monitors", "subscribe"]}}

Offer a course, then retract it. The schema's own constraints allow
the retraction -- only the theory's transition axiom (once offered,
always offered) forbids it, and the monitors are observing, so the
commit succeeds and the violation is reported out of band.

  $ fds client --socket fds.sock \
  >   '{"id": 2, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  >   '{"id": 3, "op": "run", "calls": ["retract(cs101)"]}'
  {"id": 2, "ok": true, "result": {"completed": 2, "state": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}}
  {"id": 3, "ok": true, "result": {"completed": 1, "state": {"relations": {"OFFERED": [], "TAKES": []}, "scalars": {}}}}

The monitor op reports per-axiom verdict counters: the transition
axiom fired once, about pre-retraction state 1 (verdicts lag by the
axiom's modal depth).

  $ fds client --socket fds.sock '{"id": 4, "op": "monitor"}'
  {"id": 4, "ok": true, "result": {"theory": "guarded", "mode": "observe", "commits": 2, "violations": 1, "axioms": [{"name": "takes_offered", "kind": "static", "depth": 0, "compiled": true, "violations": 0}, {"name": "no_retract", "kind": "transition", "depth": 1, "compiled": true, "violations": 1}], "skipped": {}}}

The subscriber received the heartbeat and then the violation event
frame, pushed from the committing worker the moment the commit became
durable:

  $ wait $SUB
  $ cat sub.out
  {"event": "heartbeat", "commits": 0, "violations": 0}
  {"event": "violation", "monitor": "no_retract", "kind": "transition", "state": 1}

  $ fds client --socket fds.sock '{"id": 5, "op": "shutdown"}'
  {"id": 5, "ok": true, "result": "bye"}
  $ wait
  $ cat server.log
  fds: serving guarded on fds.sock
  fds: server stopped (5 connections, 7 requests)

Offline, the same monitors replay the server's journal and find the
same violation:

  $ fds monitor guarded.schema guarded.theory --journal srv.journal
  theory guarded against schema guarded:
    takes_offered: static, depth 0
    no_retract: transition, depth 1
  monitor no_retract (transition) violated at state 1
  replayed 2 entries: 1 violations

With --enforce-monitors the violating commit is rolled back with a
structured monitor-violation error instead: the schema's promise set
now includes the theory's transition axioms.

  $ fds serve guarded.schema --socket fds2.sock --transactional --monitors guarded.theory --enforce-monitors 2>server2.log &
  $ for i in $(seq 1 100); do test -S fds2.sock && break; sleep 0.1; done
  $ fds client --socket fds2.sock \
  >   '{"id": 1, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  >   '{"id": 2, "op": "run", "calls": ["retract(cs101)"]}' \
  >   '{"id": 3, "op": "state"}' \
  >   '{"id": 4, "op": "shutdown"}'
  {"id": 1, "ok": true, "result": {"completed": 2, "state": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}}
  {"id": 2, "ok": false, "error": {"phase": "commit", "code": "monitor-violation", "message": "monitor no_retract violated at state 1", "context": {"completed": "0", "monitor": "no_retract", "state": "1"}}}
  {"id": 3, "ok": true, "result": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}
  {"id": 4, "ok": true, "result": "bye"}
  $ wait
