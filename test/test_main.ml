let () =
  Alcotest.run "fdbs"
    [
      ("kernel", Test_kernel.suite);
      ("logic", Test_logic.suite);
      ("temporal", Test_temporal.suite);
      ("algebra", Test_algebra.suite);
      ("rpr", Test_rpr.suite);
      ("wgrammar", Test_wgrammar.suite);
      ("refinement", Test_refinement.suite);
      ("core", Test_core.suite);
      ("txn", Test_txn.suite);
      ("parallel", Test_parallel.suite);
      ("observability", Test_observability.suite);
      ("properties", Test_props.suite);
      ("service", Test_service.suite);
      ("delta", Test_delta.suite);
      ("monitor", Test_monitor.suite);
    ]
