The fds serve daemon: boot it on a Unix socket, talk to it with fds
client over the length-prefixed JSON protocol, and check that a
graceful shutdown leaves a flushed journal behind.

  $ fds serve guarded.schema --socket fds.sock --transactional --journal srv.journal 2>server.log &
  $ for i in $(seq 1 100); do test -S fds.sock && break; sleep 0.1; done

A ping round-trips:

  $ fds client --socket fds.sock '{"id": 1, "op": "ping"}'
  {"id": 1, "ok": true, "result": "pong"}

A transaction on one connection: begin, run a batch, ask a ground
query against the uncommitted view (params bind extra constants in
the wff), and commit:

  $ fds client --socket fds.sock \
  >   '{"id": 2, "op": "begin"}' \
  >   '{"id": 3, "op": "run", "calls": ["initiate()", "offer(cs101)"]}' \
  >   '{"id": 4, "op": "query", "wff": "OFFERED(c)", "params": [["c", "course", "cs101"]]}' \
  >   '{"id": 5, "op": "query", "wff": "OFFERED(c)", "params": [["c", "course", "cs999"]]}' \
  >   '{"id": 6, "op": "commit"}'
  {"id": 2, "ok": true, "result": null}
  {"id": 3, "ok": true, "result": {"completed": 2, "state": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}}
  {"id": 4, "ok": true, "result": true}
  {"id": 5, "ok": true, "result": false}
  {"id": 6, "ok": true, "result": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}

A second connection sees the committed state; its own rolled-back
transaction leaves no trace:

  $ fds client --socket fds.sock \
  >   '{"id": 7, "op": "state"}' \
  >   '{"id": 8, "op": "begin"}' \
  >   '{"id": 9, "op": "run", "calls": ["offer(cs202)"]}' \
  >   '{"id": 10, "op": "rollback"}' \
  >   '{"id": 11, "op": "state"}'
  {"id": 7, "ok": true, "result": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}
  {"id": 8, "ok": true, "result": null}
  {"id": 9, "ok": true, "result": {"completed": 1, "state": {"relations": {"OFFERED": [["cs101"], ["cs202"]], "TAKES": []}, "scalars": {}}}}
  {"id": 10, "ok": true, "result": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}
  {"id": 11, "ok": true, "result": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}

Errors are structured, echo the request id, and never kill the
server:

  $ fds client --socket fds.sock '{"id": 12, "op": "nope"}' '{"id": 13, "op": "ping"}'
  {"id": 12, "ok": false, "error": {"phase": "parse", "code": "exec-failure", "message": "unknown operation \"nope\"", "context": {}}}
  {"id": 13, "ok": true, "result": "pong"}

A shutdown request stops the server gracefully:

  $ fds client --socket fds.sock '{"id": 14, "op": "shutdown"}'
  {"id": 14, "ok": true, "result": "bye"}
  $ wait

The server's own log is deterministic, the socket is unlinked, and
the journal holds the one committed transaction, flushed:

  $ cat server.log
  fds: serving guarded on fds.sock
  fds: server stopped (5 connections, 14 requests)
  $ test -S fds.sock || echo "socket gone"
  socket gone
  $ cat srv.journal
  epoch 1
  call initiate
  call offer cs101
  commit

The journal replays to the committed state:

  $ fds replay guarded.schema srv.journal
  replayed 1 transactions (2 calls)
  
  final state:
  OFFERED = {(cs101)}
  TAKES = {}

