(* Cross-cutting property tests (qcheck): invariants the framework's
   correctness rests on, exercised on random inputs. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_rpr

let v s = Value.Sym s

(* ------------------------------------------------------------------ *)
(* Random traces of the university specification                       *)
(* ------------------------------------------------------------------ *)

let university = Fdbs.University.functions

let small_domain = Fdbs.University.small_domain
let domain = Fdbs.University.domain

let random_trace_gen dom =
  let open QCheck.Gen in
  let courses = Domain.carrier dom "course" in
  let students = Domain.carrier dom "student" in
  let update =
    oneof
      [
        map (fun c -> ("offer", [ c ])) (oneofl courses);
        map (fun c -> ("cancel", [ c ])) (oneofl courses);
        map2 (fun s c -> ("enroll", [ s; c ])) (oneofl students) (oneofl courses);
        map3
          (fun s c c2 -> ("transfer", [ s; c; c2 ]))
          (oneofl students) (oneofl courses) (oneofl courses);
      ]
  in
  let* len = int_range 0 8 in
  let* steps = list_repeat len update in
  return
    (List.fold_left
       (fun acc (u, args) -> Strace.apply u args acc)
       (Strace.init "initiate") steps)

let arbitrary_trace dom = QCheck.make ~print:Strace.to_string (random_trace_gen dom)

let arbitrary_trace_pair dom =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "%a / %a" Strace.pp a Strace.pp b)
    QCheck.Gen.(pair (random_trace_gen dom) (random_trace_gen dom))

(* Strace round-trip through algebraic terms. *)
let prop_trace_roundtrip =
  QCheck.Test.make ~name:"trace to_aterm/of_aterm roundtrip" ~count:200
    (arbitrary_trace domain) (fun t ->
      match Strace.of_aterm university.Spec.signature
              (Strace.to_aterm university.Spec.signature t)
      with
      | Some t' -> Strace.equal t t'
      | None -> false)

(* Observational equivalence is preserved by applying the same update:
   the congruence property underlying the quotient graph construction. *)
let prop_equiv_congruence =
  QCheck.Test.make ~name:"observational equivalence is a congruence" ~count:100
    (arbitrary_trace_pair small_domain) (fun (t1, t2) ->
      QCheck.assume (Observe.equiv ~domain:small_domain university t1 t2);
      List.for_all
        (fun (u, args) ->
          Observe.equiv ~domain:small_domain university
            (Strace.apply u args t1) (Strace.apply u args t2))
        [
          ("offer", [ v "cs101" ]);
          ("cancel", [ v "cs101" ]);
          ("enroll", [ v "ana"; v "cs101" ]);
        ])

(* The static constraint holds on every random trace (4.4b, randomized). *)
let prop_static_invariant =
  QCheck.Test.make ~name:"static constraint holds on random traces" ~count:200
    (arbitrary_trace domain) (fun t ->
      let dom = domain in
      List.for_all
        (fun c ->
          List.for_all
            (fun s ->
              let takes =
                Eval.query_on_trace ~domain:dom university ~q:"takes"
                  ~params:[ s; c ] t
              in
              let offered =
                Eval.query_on_trace ~domain:dom university ~q:"offered" ~params:[ c ] t
              in
              match (takes, offered) with
              | Ok (Value.Bool true), Ok (Value.Bool o) -> o
              | Ok _, Ok _ -> true
              | _ -> false)
            (Domain.carrier dom "student"))
        (Domain.carrier dom "course"))

(* Level-2 rewriting and level-3 procedures agree on random traces. *)
let prop_cross_level_random =
  QCheck.Test.make ~name:"levels 2 and 3 agree on random traces" ~count:100
    (arbitrary_trace domain) (fun t ->
      let env = Semantics.env ~domain Fdbs.University.representation in
      let rec db_of = function
        | Strace.Init _ ->
          Semantics.call_det_exn env "initiate" []
            (Schema.empty_db Fdbs.University.representation)
        | Strace.Apply (u, args, rest) -> Semantics.call_det_exn env u args (db_of rest)
      in
      let db = db_of t in
      List.for_all
        (fun c ->
          let l2 =
            Eval.query_on_trace ~domain university ~q:"offered" ~params:[ c ] t
          in
          let l3 =
            Semantics.query env db (Formula.Pred ("OFFERED", [ Term.Lit c ]))
          in
          match l2 with Ok (Value.Bool b) -> b = l3 | _ -> false)
        (Domain.carrier domain "course"))

(* ------------------------------------------------------------------ *)
(* Relational algebra laws on random relations                         *)
(* ------------------------------------------------------------------ *)

let random_relation_gen =
  let open QCheck.Gen in
  let value = map (fun i -> Value.Sym (Fmt.str "v%d" i)) (int_range 0 5) in
  let tuple = pair value value in
  let* tuples = list_size (int_range 0 12) tuple in
  return (Relation.of_list [ "a"; "b" ] (List.map (fun (x, y) -> [ x; y ]) tuples))

let arbitrary_relation =
  QCheck.make ~print:(Fmt.str "%a" Relation.pp) random_relation_gen

let arbitrary_relation_pair =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "%a / %a" Relation.pp a Relation.pp b)
    QCheck.Gen.(pair random_relation_gen random_relation_gen)

let prop_union_commutative =
  QCheck.Test.make ~name:"relation union commutative" ~count:200 arbitrary_relation_pair
    (fun (a, b) -> Relation.equal (Relation.union a b) (Relation.union b a))

let prop_diff_inter_disjoint =
  QCheck.Test.make ~name:"diff and inter partition" ~count:200 arbitrary_relation_pair
    (fun (a, b) ->
      let d = Relation.diff a b and i = Relation.inter a b in
      Relation.equal a (Relation.union d i) && Relation.is_empty (Relation.inter d b))

let prop_select_distributes_over_union =
  QCheck.Test.make ~name:"selection distributes over union" ~count:200
    arbitrary_relation_pair (fun (a, b) ->
      let p row = match row with x :: _ -> Value.equal x (Value.Sym "v0") | [] -> false in
      Relation.equal
        (Relation.filter p (Relation.union a b))
        (Relation.union (Relation.filter p a) (Relation.filter p b)))

let prop_active_domain_covers =
  QCheck.Test.make ~name:"active domain covers every tuple value" ~count:200
    arbitrary_relation (fun r ->
      let d = Relation.active_domain r in
      Relation.for_all
        (fun row ->
          List.for_all2 (fun value srt -> Domain.mem d srt value) row (Relation.sorts r))
        r)

(* ------------------------------------------------------------------ *)
(* The indexed relation is observationally a list model                *)
(* ------------------------------------------------------------------ *)

(* Oracle: plain sorted-unique tuple lists with naive list operations.
   Every observable of the hash-indexed Relation must agree with it. *)
let tuple_compare = List.compare Value.compare
let model_of_list tuples = List.sort_uniq tuple_compare tuples

let random_tuples_gen n_values size =
  let open QCheck.Gen in
  let value = map (fun i -> Value.Sym (Fmt.str "v%d" i)) (int_range 0 n_values) in
  list_size (int_range 0 size) (map (fun (x, y) -> [ x; y ]) (pair value value))

let arbitrary_tuples_and_probe =
  QCheck.make
    ~print:(fun (tus, probe) ->
      Fmt.str "%a ? %a" Fmt.(list Relation.Tuple.pp) tus Relation.Tuple.pp probe)
    QCheck.Gen.(
      pair (random_tuples_gen 5 40)
        (map2 (fun x y -> [ x; y ])
           (map (fun i -> Value.Sym (Fmt.str "v%d" i)) (int_range 0 5))
           (map (fun i -> Value.Sym (Fmt.str "v%d" i)) (int_range 0 5))))

let prop_model_membership =
  QCheck.Test.make ~name:"indexed membership agrees with the list model" ~count:300
    arbitrary_tuples_and_probe (fun (tuples, probe) ->
      let r = Relation.of_list [ "a"; "b" ] tuples in
      (* probe twice: before and after the lazy membership table exists *)
      let first = Relation.mem probe r in
      let again = Relation.mem probe r in
      let model = List.exists (fun tu -> tuple_compare tu probe = 0) tuples in
      first = model && again = model)

let prop_model_union_to_list =
  QCheck.Test.make ~name:"union/to_list agree with the list model" ~count:200
    arbitrary_relation_pair (fun (a, b) ->
      let model =
        model_of_list (Relation.to_list a @ Relation.to_list b)
      in
      Relation.to_list (Relation.union a b) = model)

let prop_model_equal_and_hash =
  QCheck.Test.make ~name:"equality matches the list model; equal => same hash"
    ~count:300 arbitrary_relation_pair (fun (a, b) ->
      let model_eq = Relation.to_list a = Relation.to_list b in
      Relation.equal a b = model_eq
      && ((not model_eq) || Relation.hash a = Relation.hash b))

(* compose needs sorts [a; m] / [m; b]; build both sides from scratch *)
let arbitrary_composable =
  QCheck.make
    ~print:(fun (xs, ys) ->
      Fmt.str "%a ; %a" Fmt.(list Relation.Tuple.pp) xs Fmt.(list Relation.Tuple.pp) ys)
    QCheck.Gen.(pair (random_tuples_gen 4 25) (random_tuples_gen 4 25))

let prop_model_compose =
  QCheck.Test.make ~name:"indexed compose agrees with the list model" ~count:300
    arbitrary_composable (fun (xs, ys) ->
      let a = Relation.of_list [ "a"; "m" ] xs in
      let b = Relation.of_list [ "m"; "b" ] ys in
      let model =
        model_of_list
          (List.concat_map
             (fun tu ->
               match tu with
               | [ x; y ] ->
                 List.filter_map
                   (function
                     | [ y'; z ] when Value.equal y y' -> Some [ x; z ]
                     | _ -> None)
                   ys
               | _ -> [])
             xs)
      in
      Relation.to_list (Relation.compose a b) = model)

let prop_model_closure =
  QCheck.Test.make ~name:"transitive closure agrees with the list model" ~count:200
    (QCheck.make
       ~print:(Fmt.str "%a" Fmt.(list Relation.Tuple.pp))
       (random_tuples_gen 4 12))
    (fun edges ->
      let r = Relation.of_list [ "n"; "n" ] edges in
      (* naive closure on lists: iterate edge-extension to fixpoint *)
      let extend paths =
        model_of_list
          (paths
          @ List.concat_map
              (fun p ->
                match p with
                | [ x; y ] ->
                  List.filter_map
                    (function
                      | [ y'; z ] when Value.equal y y' -> Some [ x; z ]
                      | _ -> None)
                    edges
                | _ -> [])
              paths)
      in
      let rec fix paths =
        let next = extend paths in
        if next = paths then paths else fix next
      in
      Relation.to_list (Relation.transitive_closure r) = fix (model_of_list edges))

(* The indexed Denote.compose agrees with the retained naive oracle. *)
let prop_denote_compose_equiv =
  QCheck.Test.make ~name:"Denote.compose agrees with compose_naive" ~count:300
    QCheck.(
      pair
        (small_list (pair (int_bound 20) (int_bound 20)))
        (small_list (pair (int_bound 20) (int_bound 20))))
    (fun (r1, r2) ->
      Denote.compose r1 r2 = Denote.compose_naive r1 r2)

(* ------------------------------------------------------------------ *)
(* Desugaring preserves the semantics of derived statements            *)
(* ------------------------------------------------------------------ *)

let schema = Fdbs.University.representation

let random_stmt_gen =
  let open QCheck.Gen in
  let course = oneofl [ v "cs101"; v "cs102" ] in
  let student = oneofl [ v "ana"; v "bob" ] in
  let atom =
    oneof
      [
        map (fun c -> Stmt.Insert ("OFFERED", [ Term.Lit c ])) course;
        map (fun c -> Stmt.Delete ("OFFERED", [ Term.Lit c ])) course;
        map2 (fun s c -> Stmt.Insert ("TAKES", [ Term.Lit s; Term.Lit c ])) student course;
        map2 (fun s c -> Stmt.Delete ("TAKES", [ Term.Lit s; Term.Lit c ])) student course;
        return Stmt.Skip;
      ]
  in
  let cond = map (fun c -> Formula.Pred ("OFFERED", [ Term.Lit c ])) course in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [
          (3, atom);
          (2, map2 (fun a b -> Stmt.Seq (a, b)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun a b -> Stmt.Union (a, b)) (gen (n / 2)) (gen (n / 2)));
          (1, map3 (fun c a b -> Stmt.If (c, a, b)) cond (gen (n / 2)) (gen (n / 2)));
          (1, map (fun c -> Stmt.Test c) cond);
        ]
  in
  gen 6

let arbitrary_stmt = QCheck.make ~print:(Fmt.str "%a" Stmt.pp) random_stmt_gen

let prop_desugar_preserves_semantics =
  QCheck.Test.make ~name:"desugaring preserves statement outcomes" ~count:150
    arbitrary_stmt (fun s ->
      let env = Semantics.env ~domain schema in
      let db0 =
        Semantics.call_det_exn env "initiate" [] (Schema.empty_db schema)
        |> Db.with_relation "OFFERED"
             (Relation.of_list [ "course" ] [ [ v "cs101" ] ])
      in
      let core = Stmt.desugar ~sorts_of:(Schema.sorts_of schema) s in
      let norm dbs = List.sort compare (List.map Db.key dbs) in
      norm (Semantics.exec env s db0) = norm (Semantics.exec env core db0))

(* Relational-term evaluation strategies agree on random statements'
   desugared assignments. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"naive and compiled strategies agree on exec" ~count:150
    arbitrary_stmt (fun s ->
      let env_naive = Semantics.env ~strategy:`Naive ~domain schema in
      let env_auto = Semantics.env ~strategy:`Auto ~domain schema in
      let db0 = Semantics.call_det_exn env_auto "initiate" [] (Schema.empty_db schema) in
      let core = Stmt.desugar ~sorts_of:(Schema.sorts_of schema) s in
      let norm dbs = List.sort compare (List.map Db.key dbs) in
      norm (Semantics.exec env_naive core db0) = norm (Semantics.exec env_auto core db0))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_trace_roundtrip;
      prop_equiv_congruence;
      prop_static_invariant;
      prop_cross_level_random;
      prop_union_commutative;
      prop_diff_inter_disjoint;
      prop_select_distributes_over_union;
      prop_active_domain_covers;
      prop_model_membership;
      prop_model_union_to_list;
      prop_model_equal_and_hash;
      prop_model_compose;
      prop_model_closure;
      prop_denote_compose_equiv;
      prop_desugar_preserves_semantics;
      prop_strategies_agree;
    ]

(* The synthesized schema and the paper's hand schema compute the same
   database on random traces. *)
let synthesized_schema =
  match
    Fdbs_refine.Synthesize.schema ~name:"university_synth"
      university.Spec.signature Fdbs.University.descriptions
  with
  | Ok sc -> sc
  | Error e -> invalid_arg e.Fdbs_kernel.Error.message

let prop_synthesized_agrees_on_random_traces =
  QCheck.Test.make ~name:"synthesized schema agrees with hand schema" ~count:100
    (arbitrary_trace domain) (fun t ->
      let run sc =
        let env = Semantics.env ~domain sc in
        let rec db_of = function
          | Strace.Init _ -> Semantics.call_det_exn env "initiate" [] (Schema.empty_db sc)
          | Strace.Apply (u, args, rest) -> Semantics.call_det_exn env u args (db_of rest)
        in
        db_of t
      in
      let a = run Fdbs.University.representation in
      let b = run synthesized_schema in
      (* compare the relation contents modulo the relations' names,
         which coincide for the university *)
      List.for_all2
        (fun (n1, r1) (n2, r2) -> n1 = n2 && Relation.equal r1 r2)
        (Db.relations a) (Db.relations b))

(* Observational equivalence is an equivalence relation on random traces. *)
let prop_equiv_reflexive_symmetric =
  QCheck.Test.make ~name:"observational equivalence reflexive and symmetric" ~count:100
    (arbitrary_trace_pair small_domain) (fun (t1, t2) ->
      Observe.equiv ~domain:small_domain university t1 t1
      && Observe.equiv ~domain:small_domain university t1 t2
         = Observe.equiv ~domain:small_domain university t2 t1)

(* ------------------------------------------------------------------ *)
(* The query planner: full safe-calculus compilation and the plan cache *)
(* ------------------------------------------------------------------ *)

(* Random safe bodies over TAKES/OFFERED with head (s, c) — including
   quantifiers and negation. Safety comes from the positive TAKES(s, c)
   guard conjoined at the top, present in every DNF clause; every
   quantified subformula uses its bound variable, so nothing falls back
   to the carrier. *)
let random_safe_rterm_gen =
  let open QCheck.Gen in
  let sv = { Term.vname = "s"; vsort = "student" } in
  let cv = { Term.vname = "c"; vsort = "course" } in
  let s2 = { Term.vname = "s2"; vsort = "student" } in
  let c2 = { Term.vname = "c2"; vsort = "course" } in
  let takes a b = Formula.Pred ("TAKES", [ Term.Var a; Term.Var b ]) in
  let offered a = Formula.Pred ("OFFERED", [ Term.Var a ]) in
  let atom =
    oneofl
      [
        takes sv cv;
        offered cv;
        Formula.Eq (Term.Var cv, Term.Lit (v "cs101"));
        Formula.Eq (Term.Var sv, Term.Lit (v "ana"));
        Formula.Exists (s2, takes s2 cv);
        Formula.Exists (c2, Formula.And (takes sv c2, offered c2));
        Formula.Forall (s2, Formula.Imp (takes s2 cv, offered cv));
        Formula.Forall (c2, Formula.Imp (takes sv c2, offered c2));
      ]
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [
          (3, atom);
          (2, map (fun f -> Formula.Not f) (gen (n - 1)));
          (2, map2 (fun f g -> Formula.And (f, g)) (gen (n / 2)) (gen (n / 2)));
          (2, map2 (fun f g -> Formula.Or (f, g)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun f g -> Formula.Imp (f, g)) (gen (n / 2)) (gen (n / 2)));
          ( 1,
            map
              (fun f -> Formula.Exists (s2, Formula.And (takes s2 cv, f)))
              (gen (n - 1)) );
        ]
  in
  map
    (fun body ->
      { Stmt.rt_vars = [ sv; cv ]; rt_body = Formula.And (takes sv cv, body) })
    (gen 5)

(* Random university states over the 2x2 domain, so the active domain
   stays inside the evaluation domain's carriers (the equivalence
   invariant of compiled evaluation). *)
let random_univ_db_gen =
  let open QCheck.Gen in
  let course = oneofl [ v "cs101"; v "cs102" ] in
  let student = oneofl [ v "ana"; v "bob" ] in
  let* offered = list_size (int_range 0 3) course in
  let* takes = list_size (int_range 0 4) (pair student course) in
  return
    (Schema.empty_db schema
    |> Db.with_relation "OFFERED"
         (Relation.of_list [ "course" ] (List.map (fun c -> [ c ]) offered))
    |> Db.with_relation "TAKES"
         (Relation.of_list [ "student"; "course" ]
            (List.map (fun (s, c) -> [ s; c ]) takes)))

let arbitrary_safe_rterm_and_db =
  QCheck.make
    ~print:(fun (rt, db) -> Fmt.str "%a @@ %a" Stmt.pp_rterm rt Db.pp db)
    QCheck.Gen.(pair random_safe_rterm_gen random_univ_db_gen)

let rel_arity r = List.length (Schema.sorts_of schema r)

(* Every safe body compiles (no naive fallback), and both the raw and
   the optimized plan agree with the naive oracle. *)
let prop_safe_bodies_compile =
  QCheck.Test.make ~name:"safe bodies always compile; compiled = naive" ~count:300
    arbitrary_safe_rterm_and_db (fun (rt, db) ->
      match Relalg.compile rt with
      | None -> false
      | Some e ->
        let naive = Relcalc.eval_rterm_naive ~domain db rt in
        Relation.equal (Relalg.eval ~domain db e) naive
        && Relation.equal (Relalg.eval ~domain db (Relalg.optimize ~rel_arity e)) naive)

(* Closed wffs (the constraint-checking shape) compile to 0-ary plans
   whose emptiness test agrees with naive recursive evaluation. *)
let prop_wff_compiles =
  QCheck.Test.make ~name:"closed safe wffs compile; emptiness = holds" ~count:300
    arbitrary_safe_rterm_and_db (fun (rt, db) ->
      let check wff =
        match Relalg.compile_wff wff with
        | None -> false
        | Some e ->
          let plan_truth =
            not (Relation.is_empty (Relalg.eval ~domain db (Relalg.optimize ~rel_arity e)))
          in
          plan_truth = Relcalc.holds ~domain db wff
      in
      check (Formula.exists rt.Stmt.rt_vars rt.Stmt.rt_body)
      && check (Formula.forall rt.Stmt.rt_vars (Formula.Not rt.Stmt.rt_body)))

(* Warm cache hits return the very same relation contents. *)
let prop_plan_cache_stable =
  QCheck.Test.make ~name:"plan cache returns identical relations on repeat" ~count:100
    arbitrary_safe_rterm_and_db (fun (rt, db) ->
      let first = Planner.eval_rterm ~strategy:`Compiled ~schema ~domain db rt in
      let hits1, _ = Planner.stats () in
      let second = Planner.eval_rterm ~strategy:`Compiled ~schema ~domain db rt in
      let hits2, _ = Planner.stats () in
      Relation.equal first second
      && hits2 > hits1
      && Planner.holds ~strategy:`Compiled ~schema ~domain db
           (Formula.exists rt.Stmt.rt_vars rt.Stmt.rt_body)
         = not (Relation.is_empty first))

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_synthesized_agrees_on_random_traces;
        prop_equiv_reflexive_symmetric;
        prop_safe_bodies_compile;
        prop_wff_compiles;
        prop_plan_cache_stable;
      ]
