(* Tests for the differential-maintenance layer: the per-operator delta
   rules agree with fresh evaluation tuple-for-tuple on random update
   sequences; transactional constraint checking is observationally
   identical with materialization on and off (including fallback paths:
   scalar writes, stale materializations); a rolled-back transaction
   never publishes a stale materialization; ad-hoc extra constraints
   bypass the shared cache entirely; and the semi-naive closure agrees
   with the naive oracle. *)

open Fdbs_kernel
open Fdbs_rpr

let v s = Value.Sym s

(* A schema with an antijoin-shaped constraint (forall/imp), a
   join-shaped one (exists under forall), an unconstrained graph
   relation, deleting and while-looping procs, and a proc that writes a
   global scalar (the delta-fallback trigger). *)
let deltas_src =
  {|
schema deltas

relation OFFERED(course)
relation TAKES(student, course)
relation EDGE(node, node)

constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))
constraint takes_nonempty_offer: forall s:student. forall c:course. (TAKES(s, c) -> (exists c2:course. OFFERED(c2)))

proc initiate() =
  (OFFERED := {(c:course) | false} ;
   (TAKES := {(s:student, c:course) | false} ;
    EDGE := {(a:node, b:node) | false}))

proc offer(c: course) = insert OFFERED(c)

proc retract(c: course) = delete OFFERED(c)

proc enroll_unchecked(s: student, c: course) = insert TAKES(s, c)

proc leave(s: student, c: course) = delete TAKES(s, c)

proc link(a: node, b: node) = insert EDGE(a, b)

proc drain_all(c: course) = while (OFFERED(c)) do delete OFFERED(c)

proc mark(c: course) = last := c

end-schema
|}

let schema = Rparser.schema_exn deltas_src

let courses = [ v "cs101"; v "cs102"; v "cs103" ]
let students = [ v "ana"; v "bob" ]
let nodes = [ v "n1"; v "n2"; v "n3" ]

let domain =
  Domain.of_list
    [ ("course", courses); ("student", students); ("node", nodes) ]

let env = Semantics.env ~domain schema
let db0 = Schema.empty_db schema
let db = Alcotest.testable Db.pp Db.equal

(* Restore the process-wide materialization toggle whatever a test
   does; every test also starts from a clean cache so counter deltas
   are deterministic. *)
let with_clean_caches f =
  Planner.clear ();
  Planner.set_materialization true;
  Fun.protect ~finally:(fun () -> Planner.set_materialization true) f

(* ------------------------------------------------------------------ *)
(* Random database states and update sequences                         *)
(* ------------------------------------------------------------------ *)

let random_op_gen : (Db.t -> Db.t) QCheck.Gen.t =
  let open QCheck.Gen in
  let touch r tu add st =
    let rel = Db.relation_exn st r in
    Db.with_relation r
      (if add then Relation.add tu rel else Relation.remove tu rel)
      st
  in
  let* add = bool in
  oneof
    [
      map (fun c -> touch "OFFERED" [ c ] add) (oneofl courses);
      map2 (fun s c -> touch "TAKES" [ s; c ] add) (oneofl students) (oneofl courses);
      map2 (fun a b -> touch "EDGE" [ a; b ] add) (oneofl nodes) (oneofl nodes);
    ]

let apply_ops ops st = List.fold_left (fun st op -> op st) st ops

let random_db_pair_gen =
  let open QCheck.Gen in
  let* setup = list_size (int_range 0 12) random_op_gen in
  let* updates = list_size (int_range 0 8) random_op_gen in
  let before = apply_ops setup db0 in
  return (before, apply_ops updates before)

let arbitrary_db_pair =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "before=%a@.after=%a" Db.pp a Db.pp b)
    random_db_pair_gen

(* Plans covering every operator the delta rules rewrite: the schema
   constraints' own compiled plans (antijoin towers, joins under
   projections) plus hand-built Select/Project/Product/Union/Join/
   Antijoin expressions. *)
let plans =
  let compiled =
    List.filter_map
      (fun (_, wff) -> Planner.plan_wff schema wff)
      schema.Schema.constraints
  in
  let open Relalg in
  compiled
  @ [
      Project ([ 1 ], Rel "TAKES");
      Select ([ Eq (Acol 0, Acol 1) ], Rel "EDGE");
      Select ([ Eq (Acol 0, Aterm (Fdbs_logic.Term.Lit (v "cs101"))) ], Rel "OFFERED");
      Union (Rel "OFFERED", Project ([ 1 ], Rel "TAKES"));
      Product (Rel "OFFERED", Rel "OFFERED");
      Join ([ Rel "TAKES"; Rel "OFFERED" ], [ Eq (Acol 1, Acol 2) ]);
      Join ([ Rel "EDGE"; Rel "EDGE" ], [ Eq (Acol 1, Acol 2) ]);
      Antijoin (Rel "TAKES", Rel "OFFERED", [ Acol 1 ]);
      Antijoin
        ( Rel "EDGE",
          Project ([ 1 ], Rel "EDGE"),
          [ Acol 0 ] );
    ]

let prop_advance_agrees =
  QCheck.Test.make
    ~name:"delta advance agrees with fresh evaluation (all operators)"
    ~count:300 arbitrary_db_pair (fun (before, after) ->
      let delta = Delta.of_dbs ~before ~after in
      List.for_all
        (fun plan ->
          let n0 = Delta.materialize ~domain before plan in
          let n1, ins, del = Delta.advance ~domain ~after delta plan n0 in
          let fresh = Relalg.eval ~domain after plan in
          Relation.equal n1.Delta.out fresh
          && Relation.equal ins (Relation.diff fresh n0.Delta.out)
          && Relation.equal del (Relation.diff n0.Delta.out fresh))
        plans)

let prop_of_dbs_apply_roundtrip =
  QCheck.Test.make ~name:"of_dbs/apply roundtrip and compose" ~count:300
    (QCheck.make
       ~print:(fun (a, b, c) ->
         Fmt.str "a=%a@.b=%a@.c=%a" Db.pp a Db.pp b Db.pp c)
       QCheck.Gen.(
         let* a, b = random_db_pair_gen in
         let* more = list_size (int_range 0 8) random_op_gen in
         return (a, b, apply_ops more b)))
    (fun (a, b, c) ->
      let dab = Delta.of_dbs ~before:a ~after:b in
      let dbc = Delta.of_dbs ~before:b ~after:c in
      let dac = Delta.of_dbs ~before:a ~after:c in
      Db.equal (Delta.apply dab a) b
      && Db.equal (Delta.apply dac a) c
      && Db.equal (Delta.apply (Delta.compose dab dbc) a) c)

(* ------------------------------------------------------------------ *)
(* Incremental transactions agree with from-scratch checking           *)
(* ------------------------------------------------------------------ *)

let random_call_gen =
  let open QCheck.Gen in
  oneof
    [
      return ("initiate", []);
      map (fun c -> ("offer", [ c ])) (oneofl courses);
      map (fun c -> ("retract", [ c ])) (oneofl courses);
      map2 (fun s c -> ("enroll_unchecked", [ s; c ])) (oneofl students) (oneofl courses);
      map2 (fun s c -> ("leave", [ s; c ])) (oneofl students) (oneofl courses);
      map2 (fun a b -> ("link", [ a; b ])) (oneofl nodes) (oneofl nodes);
      map (fun c -> ("drain_all", [ c ])) (oneofl courses);
      map (fun c -> ("mark", [ c ])) (oneofl courses);
    ]

let arbitrary_calls =
  QCheck.make
    ~print:(Fmt.str "%a" Fmt.(list ~sep:(any "; ") Journal.pp_call))
    QCheck.Gen.(list_size (int_range 0 12) random_call_gen)

(* Each call commits (or rolls back) as its own transaction, so the
   materialization advances across the sequence like a server's store
   would. Verdicts and every intermediate state must match the
   from-scratch run exactly. *)
let run_seq txn calls =
  List.fold_left
    (fun (st, verdicts) call ->
      match Txn.run txn [ call ] st with
      | Ok st' -> (st', true :: verdicts)
      | Error rb -> (rb.Txn.restored, false :: verdicts))
    (db0, []) calls

let prop_txn_incremental_agrees =
  QCheck.Test.make
    ~name:"incremental constraint checks agree with from-scratch (txn)"
    ~count:150 arbitrary_calls (fun calls ->
      with_clean_caches (fun () ->
          let txn = Txn.make env in
          let incr_state, incr_verdicts = run_seq txn calls in
          Planner.set_materialization false;
          let full_state, full_verdicts = run_seq txn calls in
          Db.equal incr_state full_state && incr_verdicts = full_verdicts))

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests: counters, rollback, extras, fallback      *)
(* ------------------------------------------------------------------ *)

let commit_exn txn calls st =
  match Txn.run txn calls st with
  | Ok st' -> st'
  | Error rb -> Alcotest.failf "unexpected rollback: %a" Txn.pp_rollback rb

let test_delta_hits () =
  with_clean_caches (fun () ->
      let txn = Txn.make env in
      let st = commit_exn txn [ ("offer", [ v "cs101" ]) ] db0 in
      let h0, f0, m0 = Planner.delta_stats () in
      Alcotest.(check int) "cold commit: no hits yet" 0 h0;
      Alcotest.(check int) "cold commit: no fallbacks" 0 f0;
      Alcotest.(check int)
        "cold commit: one materialization per constraint"
        (List.length schema.Schema.constraints)
        m0;
      let st = commit_exn txn [ ("offer", [ v "cs102" ]) ] st in
      let st = commit_exn txn [ ("enroll_unchecked", [ v "ana"; v "cs101" ]) ] st in
      ignore st;
      let h, f, m = Planner.delta_stats () in
      Alcotest.(check int)
        "two warm commits hit per constraint"
        (2 * List.length schema.Schema.constraints)
        h;
      Alcotest.(check int) "no fallbacks on pure relation writes" 0 f;
      Alcotest.(check int) "no further misses" m0 m)

let test_scalar_write_falls_back () =
  with_clean_caches (fun () ->
      let txn = Txn.make env in
      let st = commit_exn txn [ ("offer", [ v "cs101" ]) ] db0 in
      (* mark writes a global scalar: the delta carries
         scalars_changed, no rule applies, the check re-evaluates in
         full — and stays correct *)
      let st = commit_exn txn [ ("mark", [ v "cs101" ]) ] st in
      let _, f, _ = Planner.delta_stats () in
      Alcotest.(check bool) "scalar write fell back" true (f >= 1);
      (* the fallback republished against the new state: the next pure
         relational commit advances incrementally again *)
      let h0, _, _ = Planner.delta_stats () in
      let st = commit_exn txn [ ("offer", [ v "cs102" ]) ] st in
      ignore st;
      let h1, _, _ = Planner.delta_stats () in
      Alcotest.(check int)
        "next commit hits again"
        (h0 + List.length schema.Schema.constraints)
        h1)

let test_rollback_publishes_nothing () =
  with_clean_caches (fun () ->
      let txn = Txn.make env in
      let st = commit_exn txn [ ("offer", [ v "cs101" ]) ] db0 in
      let h0, f0, _ = Planner.delta_stats () in
      (* a violating transaction: checked (takes_offered fails), rolled
         back — its materializations must NOT be published *)
      (match Txn.run txn [ ("enroll_unchecked", [ v "ana"; v "cs103" ]) ] st with
       | Ok _ -> Alcotest.fail "expected a constraint rollback"
       | Error rb ->
         Alcotest.check db "rollback restored the snapshot" st rb.Txn.restored);
      (* the next commit advances from the committed state: if the
         rolled-back state had been published, this would be a
         stale-state fallback instead of a hit *)
      let _ = commit_exn txn [ ("offer", [ v "cs102" ]) ] st in
      let h1, f1, _ = Planner.delta_stats () in
      Alcotest.(check int) "no stale-materialization fallback" f0 f1;
      Alcotest.(check bool)
        "commit after rollback still hits"
        true
        (h1 >= h0 + List.length schema.Schema.constraints))

let test_extra_constraints_bypass_shared_cache () =
  with_clean_caches (fun () ->
      let txn = Txn.make env in
      let st = commit_exn txn [ ("offer", [ v "cs101" ]) ] db0 in
      let h0, f0, m0 = Planner.delta_stats () in
      (* an ad-hoc extra structurally equal to a schema constraint: it
         must neither be served from the shared materialization nor
         publish into it *)
      let extra =
        match schema.Schema.constraints with
        | (name, wff) :: _ -> [ (name ^ "_adhoc", wff) ]
        | [] -> Alcotest.fail "schema has no constraints"
      in
      let txn_extra = Txn.make ~extra_constraints:extra env in
      let st = commit_exn txn_extra [ ("offer", [ v "cs102" ]) ] st in
      let h1, f1, m1 = Planner.delta_stats () in
      Alcotest.(check int)
        "extras do not touch the delta counters (schema constraints only)"
        (h0 + List.length schema.Schema.constraints)
        h1;
      Alcotest.(check int) "extras cause no fallbacks" f0 f1;
      Alcotest.(check int) "extras cause no misses" m0 m1;
      (* and the shared slots were advanced by the schema checks, not
         poisoned by the extra: the next plain commit still hits *)
      let _ = commit_exn txn [ ("offer", [ v "cs103" ]) ] st in
      let h2, f2, _ = Planner.delta_stats () in
      Alcotest.(check int)
        "shared cache intact after extras"
        (h1 + List.length schema.Schema.constraints)
        h2;
      Alcotest.(check int) "still no fallbacks" f1 f2)

let test_stale_state_falls_back_correctly () =
  with_clean_caches (fun () ->
      let txn = Txn.make env in
      (* two independent stores interleaving commits under the same
         schema: each sees the other's publication as stale state and
         falls back — verdicts stay correct on both *)
      let a = commit_exn txn [ ("offer", [ v "cs101" ]) ] db0 in
      let b = commit_exn txn [ ("offer", [ v "cs102" ]) ] db0 in
      let a = commit_exn txn [ ("enroll_unchecked", [ v "ana"; v "cs101" ]) ] a in
      let b = commit_exn txn [ ("enroll_unchecked", [ v "bob"; v "cs102" ]) ] b in
      let _, f, _ = Planner.delta_stats () in
      Alcotest.(check bool) "interleaving caused stale fallbacks" true (f >= 1);
      Alcotest.(check bool)
        "store A state correct" true
        (Relation.mem [ v "ana"; v "cs101" ] (Db.relation_exn a "TAKES"));
      Alcotest.(check bool)
        "store B state correct" true
        (Relation.mem [ v "bob"; v "cs102" ] (Db.relation_exn b "TAKES")))

let test_exec_delta_writes () =
  let st = commit_exn (Txn.make env) [ ("offer", [ v "cs101" ]) ] db0 in
  let stmt =
    Stmt.Seq
      ( Stmt.Insert ("OFFERED", [ Fdbs_logic.Term.Lit (v "cs102") ]),
        Stmt.Delete ("OFFERED", [ Fdbs_logic.Term.Lit (v "cs101") ]) )
  in
  match Semantics.exec_delta env stmt st with
  | [ (out, d) ] ->
    Alcotest.check db "delta applies to the outcome" out (Delta.apply d st);
    Alcotest.(check (list string)) "touches OFFERED" [ "OFFERED" ] (Delta.touches d);
    Alcotest.(check int) "one insert + one delete" 2 (Delta.cardinal d)
  | outs -> Alcotest.failf "expected one outcome, got %d" (List.length outs)

(* Semi-naive closure against the naive re-composition oracle. *)
let naive_closure r =
  let rec go acc =
    let next = Relation.union acc (Relation.compose acc r) in
    if Relation.equal next acc then acc else go next
  in
  go r

let prop_closure_semi_naive =
  QCheck.Test.make ~name:"semi-naive closure agrees with the naive oracle"
    ~count:300
    (QCheck.make
       ~print:(Fmt.str "%a" Fmt.(list (list Value.pp)))
       QCheck.Gen.(
         list_size (int_range 0 20)
           (map2 (fun a b -> [ a; b ]) (oneofl nodes) (oneofl nodes))))
    (fun edges ->
      let r = Relation.of_list [ "node"; "node" ] edges in
      Relation.equal (Relation.transitive_closure r) (naive_closure r))

let suite =
  [
    Alcotest.test_case "delta hits across warm commits" `Quick test_delta_hits;
    Alcotest.test_case "scalar write falls back (and recovers)" `Quick
      test_scalar_write_falls_back;
    Alcotest.test_case "rollback publishes nothing" `Quick
      test_rollback_publishes_nothing;
    Alcotest.test_case "extra constraints bypass the shared cache" `Quick
      test_extra_constraints_bypass_shared_cache;
    Alcotest.test_case "stale materializations fall back correctly" `Quick
      test_stale_state_falls_back_correctly;
    Alcotest.test_case "exec_delta pairs outcomes with their writes" `Quick
      test_exec_delta_writes;
    QCheck_alcotest.to_alcotest prop_advance_agrees;
    QCheck_alcotest.to_alcotest prop_of_dbs_apply_roundtrip;
    QCheck_alcotest.to_alcotest prop_txn_incremental_agrees;
    QCheck_alcotest.to_alcotest prop_closure_semi_naive;
  ]
