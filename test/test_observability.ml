(* The observability layer and the three correctness fixes riding with
   it: the planner cache's structural slot comparison under forced key
   collisions, the monotonic budget clock, torn-journal recovery, and
   the determinism contract of tracing and metrics across Pool
   domains. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_rpr

let v s = Value.Sym s
let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Planner cache: collisions must re-plan, never cross-serve           *)
(* ------------------------------------------------------------------ *)

(* Two relations over one sort, R inhabited and S empty, so a plan for
   "exists x. R(x)" answers true and a plan for "exists x. S(x)" answers
   false — if a hash collision ever cross-serves one for the other the
   truth value flips. *)
let obs_src =
  {|
schema obs

relation R(thing)
relation S(thing)

proc initiate() =
  (R := {(t:thing) | false} ; S := {(t:thing) | false})

end-schema
|}

let obs_schema = Rparser.schema_exn obs_src
let obs_domain = Domain.of_list [ ("thing", [ v "a"; v "b" ]) ]

let obs_db =
  Schema.empty_db obs_schema
  |> Db.with_relation "R" (Relation.of_list [ "thing" ] [ [ v "a" ] ])

let exists_in rel =
  let x = { Term.vname = "x"; vsort = "thing" } in
  Formula.Exists (x, Formula.Pred (rel, [ Term.Var x ]))

(* With every cache key masked to 0, the two formulas land in the same
   bucket. The structural slot comparison must detect the mismatch and
   re-plan; before the fix the bucket served R's compiled plan for the
   S query, answering true for an empty relation. *)
let test_collision_does_not_cross_serve () =
  Planner.clear ();
  Planner.set_key_mask (Some 0);
  Fun.protect
    ~finally:(fun () ->
      Planner.set_key_mask None;
      Planner.clear ())
    (fun () ->
      let holds f =
        Planner.holds ~strategy:`Compiled ~schema:obs_schema ~domain:obs_domain
          obs_db f
      in
      checkb "R is inhabited" true (holds (exists_in "R"));
      checkb "S stays empty despite the colliding key" false
        (holds (exists_in "S"));
      let _, misses = Planner.stats () in
      check Alcotest.int "each formula planned separately" 2 misses)

(* The slot must also compare the schema: the same formula under two
   different schemas is two distinct plans even when their keys
   collide. *)
let test_collision_distinguishes_schemas () =
  let obs2_schema =
    Rparser.schema_exn
      (Str_replace.replace obs_src "schema obs" "schema obs2")
  in
  Planner.clear ();
  Planner.set_key_mask (Some 0);
  Fun.protect
    ~finally:(fun () ->
      Planner.set_key_mask None;
      Planner.clear ())
    (fun () ->
      ignore (Planner.plan_wff obs_schema (exists_in "R"));
      ignore (Planner.plan_wff obs2_schema (exists_in "R"));
      let hits, misses = Planner.stats () in
      check Alcotest.int "no cross-schema hit" 0 hits;
      check Alcotest.int "planned once per schema" 2 misses)

(* ------------------------------------------------------------------ *)
(* Budget: the default clock is monotonic                              *)
(* ------------------------------------------------------------------ *)

(* Before the fix the default clock was the wall clock
   (gettimeofday-based), ~1.7e9 seconds since the epoch; the monotonic
   clock counts from boot, so the two differ by years. Reading both
   back-to-back pins the default to the monotonic source. *)
let test_default_clock_is_monotonic () =
  let d = Budget.default_clock () in
  let m = Mclock.now () in
  checkb "default_clock reads the monotonic clock" true
    (Float.abs (m -. d) < 1.0);
  let d' = Budget.default_clock () in
  checkb "default_clock never goes backwards" true (d' >= d)

(* The [?clock] injection point survives the fix: a deadline measured
   against a fake clock fires exactly when that clock passes it. *)
let test_injectable_clock_still_drives_deadlines () =
  let now = ref 0. in
  let b = Budget.make ~ms:10 ~clock:(fun () -> !now) () in
  Budget.check_time b;
  now := 0.005;
  Budget.check_time b;
  now := 0.050;
  match Budget.check_time b with
  | () -> Alcotest.fail "deadline did not fire"
  | exception Budget.Exhausted Budget.Time -> ()

(* ------------------------------------------------------------------ *)
(* Journal: torn tails are tolerated, mid-file corruption is not       *)
(* ------------------------------------------------------------------ *)

let with_journal_content content f =
  let path = Filename.temp_file "fdbs_obs" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc;
      f path)

let load_exn path =
  match Journal.load path with
  | Ok r -> r
  | Error e -> Alcotest.failf "journal load: %s" (Error.to_string e)

let contains s sub =
  let sl = String.length s and nl = String.length sub in
  let rec go i = i + nl <= sl && (String.sub s i nl = sub || go (i + 1)) in
  nl = 0 || go 0

let torn_mentions what = function
  | Some msg ->
    checkb (Fmt.str "torn tail mentions %S" what) true (contains msg what)
  | None -> Alcotest.failf "expected a torn tail mentioning %S" what

let test_uncommitted_tail_dropped () =
  with_journal_content
    "call offer cs101\ncommit\ncall offer cs102\ncall enroll ana cs102\n"
    (fun path ->
      let entries, torn = load_exn path in
      check Alcotest.int "only the committed entry survives" 1
        (List.length entries);
      torn_mentions "uncommitted" torn)

let test_truncated_final_line_dropped () =
  with_journal_content "call offer cs101\ncommit\ncall offer cs1" (fun path ->
      let entries, torn = load_exn path in
      check Alcotest.int "only the committed entry survives" 1
        (List.length entries);
      torn_mentions "torn final record" torn)

let test_malformed_final_line_dropped () =
  with_journal_content "call offer cs101\ncommit\ngarbage here\n" (fun path ->
      let entries, torn = load_exn path in
      check Alcotest.int "only the committed entry survives" 1
        (List.length entries);
      torn_mentions "malformed trailing" torn)

let test_malformed_mid_file_is_corruption () =
  with_journal_content "call offer cs101\ngarbage here\ncommit\n" (fun path ->
      match Journal.load path with
      | Ok _ -> Alcotest.fail "mid-file corruption must not load"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Trace: span trees are identical for any --jobs N                    *)
(* ------------------------------------------------------------------ *)

(* A workload with per-item spans under one root, run through Pool so
   worker domains record into isolated collectors that Pool grafts back
   in chunk order. The rendered structure (names, attributes, nesting —
   no timings) must not depend on the jobs count. *)
let traced_structure ~jobs n =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      ignore
        (Trace.with_span ~cat:"test" "root" (fun () ->
             Pool.map ~jobs
               (fun i ->
                 Trace.with_span ~cat:"test"
                   ~args:[ ("i", string_of_int i) ]
                   "item"
                   (fun () ->
                     if i mod 3 = 0 then
                       Trace.with_span ~cat:"test" "item.nested" (fun () -> i)
                     else i))
               (List.init n Fun.id)));
      Trace.structure ())

let test_span_tree_jobs_invariant () =
  let reference = traced_structure ~jobs:1 17 in
  checkb "sequential run recorded spans" true (reference <> "");
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Fmt.str "span tree ~jobs:%d = ~jobs:1" jobs)
        reference
        (traced_structure ~jobs 17))
    [ 2; 4; 8 ]

let prop_span_tree_jobs_invariant =
  QCheck.Test.make ~name:"span tree is identical for any jobs count"
    ~count:50
    QCheck.(pair (int_range 0 40) (int_range 1 8))
    (fun (n, jobs) -> traced_structure ~jobs n = traced_structure ~jobs:1 n)

(* Chrome output in virtual-timestamp mode is byte-identical across
   jobs counts — the property `fds verify --trace` relies on. *)
let test_chrome_trace_bytes_jobs_invariant () =
  let chrome ~jobs =
    let file = Filename.temp_file "fdbs_obs" ".trace.json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove file)
      (fun () ->
        Trace.reset ();
        Trace.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Trace.set_enabled false;
            Trace.reset ())
          (fun () ->
            ignore
              (Trace.with_span ~cat:"test" "root" (fun () ->
                   Pool.map ~jobs
                     (fun i ->
                       Trace.with_span ~cat:"test" "item" (fun () -> i))
                     (List.init 12 Fun.id))));
        ignore (Trace.write_chrome ~virtual_ts:true file);
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
  in
  check Alcotest.string "virtual-ts Chrome trace bytes ~jobs:4 = ~jobs:1"
    (chrome ~jobs:1) (chrome ~jobs:4)

(* The root ring is bounded: a runaway trace drops oldest roots instead
   of growing without limit. *)
let test_root_ring_bounded () =
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      for i = 1 to 400 do
        Trace.with_span "burst" (fun () -> ignore i)
      done;
      checkb "roots stay bounded" true (List.length (Trace.roots ()) <= 256);
      let _, dropped = Trace.stats () in
      checkb "overflow is counted as dropped" true (dropped > 0))

(* ------------------------------------------------------------------ *)
(* Metrics: counters are exact across domains                          *)
(* ------------------------------------------------------------------ *)

(* Mirrors the Budget step-exactness test: 8 items each incrementing 25
   times must land exactly 200 on the counter for every jobs count. *)
let test_counters_exact_across_domains () =
  let c = Metrics.counter "test.obs.events" in
  List.iter
    (fun jobs ->
      let before = Metrics.value c in
      ignore
        (Pool.map ~jobs
           (fun _ ->
             for _k = 1 to 25 do
               Metrics.incr c
             done)
           (List.init 8 Fun.id));
      check Alcotest.int
        (Fmt.str "exactly 200 increments with ~jobs:%d" jobs)
        (before + 200) (Metrics.value c))
    [ 1; 2; 4; 8 ]

let suite =
  [
    Alcotest.test_case "colliding cache keys re-plan" `Quick
      test_collision_does_not_cross_serve;
    Alcotest.test_case "colliding keys distinguish schemas" `Quick
      test_collision_distinguishes_schemas;
    Alcotest.test_case "default budget clock is monotonic" `Quick
      test_default_clock_is_monotonic;
    Alcotest.test_case "injected clock drives deadlines" `Quick
      test_injectable_clock_still_drives_deadlines;
    Alcotest.test_case "uncommitted journal tail dropped" `Quick
      test_uncommitted_tail_dropped;
    Alcotest.test_case "truncated final journal line dropped" `Quick
      test_truncated_final_line_dropped;
    Alcotest.test_case "malformed final journal line dropped" `Quick
      test_malformed_final_line_dropped;
    Alcotest.test_case "malformed mid-journal line is corruption" `Quick
      test_malformed_mid_file_is_corruption;
    Alcotest.test_case "span tree invariant under jobs" `Quick
      test_span_tree_jobs_invariant;
    Alcotest.test_case "virtual-ts Chrome trace byte-identical" `Quick
      test_chrome_trace_bytes_jobs_invariant;
    Alcotest.test_case "trace root ring is bounded" `Quick
      test_root_ring_bounded;
    Alcotest.test_case "metrics counters exact across domains" `Quick
      test_counters_exact_across_domains;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_span_tree_jobs_invariant ]
