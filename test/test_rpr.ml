(* Tests for the representation level: relations, database states,
   relational calculus and algebra, statement semantics (m), procedures
   (k), the denotational validation of Section 5.1.2, and the schema
   parser with the paper's Section 5.2 specification. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_rpr

let v s = Value.Sym s

(* The paper's Section 5.2 schema (with the OFFERED sort fixed: the
   paper's SCL lists OFFERED(Students) by typo; it is a set of courses). *)
let university_src =
  {|
schema university

relation OFFERED(course)
relation TAKES(student, course)

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc cancel(c: course) =
  if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)

proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)

proc transfer(s: student, c: course, c2: course) =
  if (TAKES(s, c) & ~TAKES(s, c2) & OFFERED(c2))
  then (delete TAKES(s, c) ; insert TAKES(s, c2))

end-schema
|}

let schema = Rparser.schema_exn university_src

let domain =
  Domain.of_list
    [
      ("course", [ v "cs101"; v "cs102" ]);
      ("student", [ v "ana"; v "bob" ]);
    ]

let env = Semantics.env ~domain schema

let db0 = Semantics.call_det_exn env "initiate" [] (Schema.empty_db schema)

let run name args db = Semantics.call_det_exn env name args db

let offered db c = Semantics.query env db (Formula.Pred ("OFFERED", [ Term.Lit (v c) ]))

let takes db s c =
  Semantics.query env db (Formula.Pred ("TAKES", [ Term.Lit (v s); Term.Lit (v c) ]))

let test_schema_well_formed () =
  Alcotest.(check (list string)) "no schema errors" [] (Schema.check schema)

let test_undeclared_relation_rejected () =
  let bad =
    {|
schema bad
relation R(course)
proc p(c: course) = insert S(c)
end-schema
|}
  in
  match Rparser.schema bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undeclared relation accepted"

let test_initiate_offer_enroll () =
  Alcotest.(check bool) "initially nothing offered" false (offered db0 "cs101");
  let db1 = run "offer" [ v "cs101" ] db0 in
  Alcotest.(check bool) "offered after offer" true (offered db1 "cs101");
  let db2 = run "enroll" [ v "ana"; v "cs101" ] db1 in
  Alcotest.(check bool) "takes after enroll" true (takes db2 "ana" "cs101");
  Alcotest.(check bool) "other student unaffected" false (takes db2 "bob" "cs101")

let test_cancel_guard () =
  let db1 = run "offer" [ v "cs101" ] db0 in
  let db2 = run "enroll" [ v "ana"; v "cs101" ] db1 in
  (* blocked: a student takes the course *)
  let db3 = run "cancel" [ v "cs101" ] db2 in
  Alcotest.(check bool) "cancel blocked" true (offered db3 "cs101");
  (* unblocked on a course nobody takes *)
  let db4 = run "cancel" [ v "cs101" ] db1 in
  Alcotest.(check bool) "cancel succeeds" false (offered db4 "cs101")

let test_transfer () =
  let db1 = run "offer" [ v "cs101" ] db0 in
  let db2 = run "offer" [ v "cs102" ] db1 in
  let db3 = run "enroll" [ v "ana"; v "cs101" ] db2 in
  let db4 = run "transfer" [ v "ana"; v "cs101"; v "cs102" ] db3 in
  Alcotest.(check bool) "moved to cs102" true (takes db4 "ana" "cs102");
  Alcotest.(check bool) "left cs101" false (takes db4 "ana" "cs101");
  (* transfer to an unoffered course is a no-op *)
  let db5 = run "transfer" [ v "ana"; v "cs101"; v "cs102" ] db3 in
  ignore db5;
  let db6 =
    run "transfer" [ v "ana"; v "cs102"; v "cs101" ] (run "cancel" [ v "cs101" ] db4)
  in
  Alcotest.(check bool) "no-op transfer target unoffered" true (takes db6 "ana" "cs102")

let test_insert_delete_desugar () =
  (* the derived forms and their core desugarings agree *)
  let sorts_of = Schema.sorts_of schema in
  let stmt = Stmt.Insert ("OFFERED", [ Term.Lit (v "cs101") ]) in
  let core = Stmt.desugar ~sorts_of stmt in
  (match core with
   | Stmt.Rel_assign ("OFFERED", _) -> ()
   | _ -> Alcotest.fail "insert must desugar to a relational assignment");
  let out1 = Semantics.exec env stmt db0 in
  let out2 = Semantics.exec env core db0 in
  (match (out1, out2) with
   | [ a ], [ b ] -> Alcotest.(check bool) "same outcome" true (Db.equal a b)
   | _ -> Alcotest.fail "expected deterministic outcomes")

let test_while_desugar_agree () =
  (* while as derived construct vs its star desugaring *)
  let sorts_of = Schema.sorts_of schema in
  let body =
    Rparser.stmt schema
      "while (OFFERED(cs101)) do delete OFFERED(cs101)"
      ~params:[ ("cs101", "course") ]
    |> Result.get_ok
  in
  let db1 = run "offer" [ v "cs101" ] db0 in
  let env = Semantics.env ~domain ~consts:[ ("cs101", v "cs101") ] schema in
  let out_direct = Semantics.exec env body db1 in
  let out_core = Semantics.exec env (Stmt.desugar ~sorts_of body) db1 in
  (match (out_direct, out_core) with
   | [ a ], [ b ] ->
     Alcotest.(check bool) "course deleted" false (offered a "cs101");
     Alcotest.(check bool) "desugaring agrees" true (Db.equal a b)
   | _ -> Alcotest.fail "expected single outcomes")

let test_union_nondeterminism () =
  let s =
    Rparser.stmt schema "insert OFFERED(c) u skip" ~params:[ ("c", "course") ]
    |> Result.get_ok
  in
  let env = Semantics.env ~domain ~consts:[ ("c", v "cs101") ] schema in
  let outs = Semantics.exec env s db0 in
  Alcotest.(check int) "two outcomes" 2 (List.length outs)

let test_test_blocks () =
  let s = Rparser.stmt schema "test (OFFERED(c))" ~params:[ ("c", "course") ] in
  let s = Result.get_ok s in
  let env = Semantics.env ~domain ~consts:[ ("c", v "cs101") ] schema in
  Alcotest.(check int) "blocked on empty db" 0 (List.length (Semantics.exec env s db0))

let test_star_closure () =
  (* (insert OFFERED(cs101) u insert OFFERED(cs102))* reaches all four
     subsets of {cs101, cs102} *)
  let s =
    Rparser.stmt schema "(insert OFFERED(a) u insert OFFERED(b))*"
      ~params:[ ("a", "course"); ("b", "course") ]
    |> Result.get_ok
  in
  let env =
    Semantics.env ~domain ~consts:[ ("a", v "cs101"); ("b", v "cs102") ] schema
  in
  let outs = Semantics.exec env s db0 in
  Alcotest.(check int) "four reachable contents" 4 (List.length outs)

(* --- relational calculus vs algebra ------------------------------- *)

let rterm_src_takes_unoffered : Stmt.rterm =
  (* {(s, c) | TAKES(s,c) & ~OFFERED(c)} *)
  let sv = { Term.vname = "s"; vsort = "student" } in
  let cv = { Term.vname = "c"; vsort = "course" } in
  {
    Stmt.rt_vars = [ sv; cv ];
    rt_body =
      Formula.And
        ( Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]),
          Formula.Not (Formula.Pred ("OFFERED", [ Term.Var cv ])) );
  }

let sample_db =
  db0
  |> Db.with_relation "OFFERED" (Relation.of_list [ "course" ] [ [ v "cs101" ] ])
  |> Db.with_relation "TAKES"
       (Relation.of_list [ "student"; "course" ]
          [ [ v "ana"; v "cs101" ]; [ v "bob"; v "cs102" ] ])

let test_calc_vs_algebra () =
  let naive = Relcalc.eval_rterm_naive ~domain sample_db rterm_src_takes_unoffered in
  (match Relalg.compile rterm_src_takes_unoffered with
   | None -> Alcotest.fail "body should be compilable"
   | Some e ->
     let compiled = Relalg.eval ~domain sample_db e in
     Alcotest.(check bool) "naive = compiled" true (Relation.equal naive compiled));
  Alcotest.(check int) "one violating pair" 1 (Relation.cardinal naive)

let test_compile_quantified () =
  (* existential bodies compile: ∃ is projection over a join *)
  let sv = { Term.vname = "s"; vsort = "student" } in
  let cv = { Term.vname = "c"; vsort = "course" } in
  let rt =
    {
      Stmt.rt_vars = [ cv ];
      rt_body =
        Formula.Exists (sv, Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]));
    }
  in
  (match Relalg.compile rt with
   | None -> Alcotest.fail "existential body should be compilable"
   | Some e ->
     let compiled = Relalg.eval ~domain sample_db e in
     let naive = Relcalc.eval_rterm_naive ~domain sample_db rt in
     Alcotest.(check bool) "naive = compiled" true (Relation.equal naive compiled));
  let r = Relalg.eval_rterm ~strategy:`Compiled ~domain sample_db rt in
  Alcotest.(check int) "two courses taken" 2 (Relation.cardinal r)

let test_compile_fallback () =
  (* a head variable ranging only over the carrier (body True) is not
     range-restricted; Auto falls back to naive enumeration *)
  let cv = { Term.vname = "c"; vsort = "course" } in
  let rt = { Stmt.rt_vars = [ cv ]; rt_body = Formula.True } in
  Alcotest.(check bool) "not compilable" true (Relalg.compile rt = None);
  (match Relalg.compile_explain rt with
   | Ok _ -> Alcotest.fail "expected a compile failure"
   | Error _ -> ());
  let r = Relalg.eval_rterm ~strategy:`Auto ~domain sample_db rt in
  Alcotest.(check int) "whole course carrier" 2 (Relation.cardinal r)

let test_singleton_compile () =
  (* insert-desugared body: R(x̄) ∨ x̄ = t̄ *)
  let sorts_of = Schema.sorts_of schema in
  match Stmt.desugar ~sorts_of (Stmt.Insert ("OFFERED", [ Term.Lit (v "cs102") ])) with
  | Stmt.Rel_assign (_, rt) ->
    (match Relalg.compile rt with
     | None -> Alcotest.fail "insert body must compile"
     | Some e ->
       let r = Relalg.eval ~domain sample_db e in
       Alcotest.(check int) "two offered rows" 2 (Relation.cardinal r))
  | _ -> Alcotest.fail "unexpected desugaring"

(* --- the denotational equations of Section 5.1.2 ------------------- *)

let tiny_domain =
  Domain.of_list [ ("course", [ v "cs101" ]); ("student", [ v "ana" ]) ]

let tiny_env = Semantics.env ~domain:tiny_domain schema

let tiny_universe =
  Denote.universe schema ~domain:tiny_domain ~base:(Schema.empty_db schema)

let p_stmt = Stmt.Insert ("OFFERED", [ Term.Lit (v "cs101") ])
let q_stmt = Stmt.Delete ("OFFERED", [ Term.Lit (v "cs101") ])

let test_denote_seq_is_composition () =
  let m_p = Denote.meaning tiny_env tiny_universe p_stmt in
  let m_q = Denote.meaning tiny_env tiny_universe q_stmt in
  let m_pq = Denote.meaning tiny_env tiny_universe (Stmt.Seq (p_stmt, q_stmt)) in
  Alcotest.(check bool) "m(p;q) = m(p) o m(q)" true
    (Denote.equal_relations m_pq (Denote.compose m_p m_q))

let test_denote_union () =
  let m_p = Denote.meaning tiny_env tiny_universe p_stmt in
  let m_q = Denote.meaning tiny_env tiny_universe q_stmt in
  let m_u = Denote.meaning tiny_env tiny_universe (Stmt.Union (p_stmt, q_stmt)) in
  Alcotest.(check bool) "m(p u q) = m(p) ∪ m(q)" true
    (Denote.equal_relations m_u (List.sort_uniq compare (m_p @ m_q)))

let test_denote_star_is_closure () =
  let u = Stmt.Union (p_stmt, q_stmt) in
  let m_u = Denote.meaning tiny_env tiny_universe u in
  let m_star = Denote.meaning tiny_env tiny_universe (Stmt.Star u) in
  Alcotest.(check bool) "m(p*) = closure of m(p)" true
    (Denote.equal_relations m_star
       (Denote.closure ~n:(List.length tiny_universe) m_u))

let test_denote_test () =
  let f = Formula.Pred ("OFFERED", [ Term.Lit (v "cs101") ]) in
  let m_t = Denote.meaning tiny_env tiny_universe (Stmt.Test f) in
  (* test is a partial identity: all pairs are diagonal *)
  Alcotest.(check bool) "partial identity" true (List.for_all (fun (a, b) -> a = b) m_t);
  Alcotest.(check bool) "nonempty" true (m_t <> [])

(* --- determinism, reads/writes ------------------------------------ *)

let test_determinism_analysis () =
  List.iter
    (fun (p : Schema.proc) ->
      Alcotest.(check bool)
        (Fmt.str "%s deterministic" p.Schema.pname)
        true
        (Stmt.is_deterministic p.Schema.body))
    schema.Schema.procs

let test_reads_writes () =
  let proc = Option.get (Schema.find_proc schema "transfer") in
  Alcotest.(check (list string)) "writes TAKES" [ "TAKES"; "TAKES" ]
    (Stmt.writes proc.Schema.body);
  Alcotest.(check bool) "reads OFFERED" true
    (List.mem "OFFERED" (Stmt.reads proc.Schema.body))

(* --- property tests ------------------------------------------------ *)

(* random quantifier-free bodies over TAKES/OFFERED with head (s, c) *)
let random_rterm_gen =
  let open QCheck.Gen in
  let sv = { Term.vname = "s"; vsort = "student" } in
  let cv = { Term.vname = "c"; vsort = "course" } in
  let atom =
    oneofl
      [
        Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]);
        Formula.Pred ("OFFERED", [ Term.Var cv ]);
        Formula.Eq (Term.Var cv, Term.Lit (v "cs101"));
        Formula.Eq (Term.Var sv, Term.Lit (v "ana"));
      ]
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map (fun f -> Formula.Not f) (gen (n - 1)));
          (2, map2 (fun f g -> Formula.And (f, g)) (gen (n / 2)) (gen (n / 2)));
          (2, map2 (fun f g -> Formula.Or (f, g)) (gen (n / 2)) (gen (n / 2)));
        ]
  in
  map
    (fun body ->
      (* ensure range restriction by conjoining a positive atom *)
      {
        Stmt.rt_vars = [ sv; cv ];
        rt_body =
          Formula.And (Formula.Pred ("TAKES", [ Term.Var sv; Term.Var cv ]), body);
      })
    (gen 6)

let arbitrary_rterm =
  QCheck.make
    ~print:(fun rt -> Fmt.str "%a" Stmt.pp_rterm rt)
    random_rterm_gen

let prop_compiled_matches_naive =
  QCheck.Test.make ~name:"compiled algebra = naive calculus" ~count:200 arbitrary_rterm
    (fun rt ->
      match Relalg.compile rt with
      | None -> QCheck.assume_fail ()
      | Some e ->
        Relation.equal
          (Relalg.eval ~domain sample_db e)
          (Relcalc.eval_rterm_naive ~domain sample_db rt))

let suite =
  [
    Alcotest.test_case "schema well-formed" `Quick test_schema_well_formed;
    Alcotest.test_case "undeclared relation rejected" `Quick test_undeclared_relation_rejected;
    Alcotest.test_case "initiate/offer/enroll" `Quick test_initiate_offer_enroll;
    Alcotest.test_case "cancel guard" `Quick test_cancel_guard;
    Alcotest.test_case "transfer" `Quick test_transfer;
    Alcotest.test_case "insert/delete desugaring" `Quick test_insert_delete_desugar;
    Alcotest.test_case "while desugaring agrees" `Quick test_while_desugar_agree;
    Alcotest.test_case "union nondeterminism" `Quick test_union_nondeterminism;
    Alcotest.test_case "test blocks" `Quick test_test_blocks;
    Alcotest.test_case "star closure" `Quick test_star_closure;
    Alcotest.test_case "calculus vs algebra" `Quick test_calc_vs_algebra;
    Alcotest.test_case "compile quantified" `Quick test_compile_quantified;
    Alcotest.test_case "compile fallback" `Quick test_compile_fallback;
    Alcotest.test_case "singleton compile" `Quick test_singleton_compile;
    Alcotest.test_case "m(p;q) composition" `Quick test_denote_seq_is_composition;
    Alcotest.test_case "m(p u q) union" `Quick test_denote_union;
    Alcotest.test_case "m(p*) closure" `Quick test_denote_star_is_closure;
    Alcotest.test_case "m(P?) partial identity" `Quick test_denote_test;
    Alcotest.test_case "determinism analysis" `Quick test_determinism_analysis;
    Alcotest.test_case "reads and writes" `Quick test_reads_writes;
    QCheck_alcotest.to_alcotest prop_compiled_matches_naive;
  ]

(* --- dynamic logic over RPR programs (the deferred Section 5.3 route) *)

let dyn_env = Semantics.env ~domain schema

let db_offered = run "offer" [ v "cs101" ] db0

let offered_atom c = Dynamic.Atom (Formula.Pred ("OFFERED", [ Term.Lit (v c) ]))

let test_dynamic_box_diamond () =
  let prog = Dynamic.Call ("offer", [ Term.Lit (v "cs101") ]) in
  Alcotest.(check bool) "[offer]OFFERED" true
    (Dynamic.holds dyn_env db0 (Dynamic.Box (prog, offered_atom "cs101")));
  Alcotest.(check bool) "<offer>OFFERED" true
    (Dynamic.holds dyn_env db0 (Dynamic.Diamond (prog, offered_atom "cs101")));
  Alcotest.(check bool) "[offer]OFFERED(cs102) false" false
    (Dynamic.holds dyn_env db0 (Dynamic.Box (prog, offered_atom "cs102")))

let test_dynamic_duality () =
  (* <p>φ ≡ ~[p]~φ over a nondeterministic program *)
  let p =
    Dynamic.Prim
      (Rparser.stmt schema "insert OFFERED(a) u skip" ~params:[ ("a", "course") ]
      |> Result.get_ok)
  in
  let env = Semantics.env ~domain ~consts:[ ("a", v "cs101") ] schema in
  let phi = offered_atom "cs101" in
  List.iter
    (fun db ->
      Alcotest.(check bool) "duality" true
        (Dynamic.holds env db (Dynamic.Diamond (p, phi))
        = Dynamic.holds env db
            (Dynamic.Not (Dynamic.Box (p, Dynamic.Not phi)))))
    [ db0; db_offered ]

let test_dynamic_test_law () =
  (* [P?]φ ≡ P -> φ *)
  let cond = Formula.Pred ("OFFERED", [ Term.Lit (v "cs101") ]) in
  let p = Dynamic.Prim (Stmt.Test cond) in
  let phi = offered_atom "cs102" in
  List.iter
    (fun db ->
      Alcotest.(check bool) "test law" true
        (Dynamic.holds dyn_env db (Dynamic.Box (p, phi))
        = Dynamic.holds dyn_env db
            (Dynamic.Imp (Dynamic.Atom cond, phi))))
    [ db0; db_offered ]

let test_dynamic_seq_composition () =
  (* [p;q]φ ≡ [p][q]φ *)
  let p = Dynamic.Call ("offer", [ Term.Lit (v "cs101") ]) in
  let q = Dynamic.Call ("enroll", [ Term.Lit (v "ana"); Term.Lit (v "cs101") ]) in
  let phi = Dynamic.Atom (Formula.Pred ("TAKES", [ Term.Lit (v "ana"); Term.Lit (v "cs101") ])) in
  Alcotest.(check bool) "seq law" true
    (Dynamic.holds dyn_env db0 (Dynamic.Box (Dynamic.Pseq (p, q), phi))
    = Dynamic.holds dyn_env db0 (Dynamic.Box (p, Dynamic.Box (q, phi))))

let test_dynamic_quantifier () =
  (* forall c. [offer(c)] OFFERED(c) *)
  let cvar = { Term.vname = "c"; vsort = "course" } in
  let f =
    Dynamic.Forall
      ( cvar,
        Dynamic.Box
          ( Dynamic.Call ("offer", [ Term.Var cvar ]),
            Dynamic.Atom (Formula.Pred ("OFFERED", [ Term.Var cvar ])) ) )
  in
  Alcotest.(check bool) "forall-box" true (Dynamic.holds dyn_env db0 f)

let suite =
  suite
  @ [
      Alcotest.test_case "dynamic box/diamond" `Quick test_dynamic_box_diamond;
      Alcotest.test_case "dynamic duality" `Quick test_dynamic_duality;
      Alcotest.test_case "dynamic test law" `Quick test_dynamic_test_law;
      Alcotest.test_case "dynamic seq composition" `Quick test_dynamic_seq_composition;
      Alcotest.test_case "dynamic quantifier" `Quick test_dynamic_quantifier;
    ]

(* --- schema-level diagnostics ---------------------------------------- *)

let test_schema_check_diagnostics () =
  (* arity mismatch on insert *)
  (match Rparser.schema
           {|
schema bad
relation R(course, student)
proc p(c: course) = insert R(c)
end
|}
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "arity mismatch accepted");
  (* relational term with wrong column sorts *)
  (match Rparser.schema
           {|
schema bad
relation R(course)
proc p() = R := {(s:student) | false}
end
|}
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "column sort mismatch accepted");
  (* duplicate procedure *)
  (match Rparser.schema
           {|
schema bad
relation R(course)
proc p(c: course) = insert R(c)
proc p(c: course) = delete R(c)
end
|}
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate procedure accepted")

let test_scalar_assignment () =
  let s =
    Rparser.stmt schema "x := c" ~params:[ ("c", "course") ] |> Result.get_ok
  in
  let env = Semantics.env ~domain ~consts:[ ("c", v "cs101") ] schema in
  match Semantics.exec env s db0 with
  | [ db' ] ->
    Alcotest.(check bool) "scalar bound" true
      (Db.scalar db' "x" = Some (v "cs101"))
  | _ -> Alcotest.fail "expected one outcome"

let test_call_restores_params () =
  (* a procedure call must not leak its formal parameters as scalars *)
  let db1 = run "offer" [ v "cs101" ] db0 in
  Alcotest.(check (option string)) "no leaked scalar" None
    (Option.map Value.to_string (Db.scalar db1 "c"))

let suite =
  suite
  @ [
      Alcotest.test_case "schema diagnostics" `Quick test_schema_check_diagnostics;
      Alcotest.test_case "scalar assignment" `Quick test_scalar_assignment;
      Alcotest.test_case "call restores parameters" `Quick test_call_restores_params;
    ]
