(* Streaming temporal monitors: the incremental verdict over a random
   commit sequence equals the offline Kripke check on the replayed
   universe (QCheck); static, one-step and nested axioms fire at the
   right states; axioms a monitor cannot host are reported, never
   silently dropped; and a monitor that lost sync with the commit
   stream resynchronizes instead of reporting nonsense. *)

open Fdbs_kernel
open Fdbs_temporal
open Fdbs_rpr

let v s = Value.Sym s

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0
let courses = [ v "cs101"; v "cs102" ]
let students = [ v "ana"; v "bob" ]

let domain = Domain.of_list [ ("course", courses); ("student", students) ]

(* Relations deliberately share the theory's predicate names (the
   canonical correspondence is case-insensitive; the cram test covers
   the uppercase convention). *)
let schema : Schema.t =
  {
    Schema.name = "tmon";
    relations =
      [
        Schema.rel_decl "offered" [ "course" ];
        Schema.rel_decl "takes" [ "student"; "course" ];
      ];
    consts = [];
    constraints = [];
    procs = [];
  }

let theory_src =
  {|
theory tmon
sort course
sort student
pred offered : course
pred takes : student, course
axiom ghost: ~(exists s:student, c:course. takes(s, c) & ~offered(c))
axiom keep: forall c:course. (offered(c) -> box offered(c))
axiom keep2: forall c:course. (offered(c) -> box box offered(c))
|}

let theory = Tparser.theory_exn theory_src

let compile_exn () =
  match Monitor.compile ~schema theory with
  | Ok m -> m
  | Error e -> Alcotest.failf "monitor compile failed: %a" Error.pp e

let db_of (offered : Value.t list) (takes : (Value.t * Value.t) list) : Db.t =
  Db.empty
  |> Db.with_relation "offered"
       (Relation.of_list [ "course" ] (List.map (fun c -> [ c ]) offered))
  |> Db.with_relation "takes"
       (Relation.of_list [ "student"; "course" ]
          (List.map (fun (s, c) -> [ s; c ]) takes))

(* ------------------------------------------------------------------ *)
(* Directed verdicts                                                   *)
(* ------------------------------------------------------------------ *)

let test_static_fires () =
  let m = compile_exn () in
  let s0 = db_of [ v "cs101" ] [] in
  Monitor.attach m s0;
  (* enroll into an unoffered course: the static axiom fails at the
     post-commit state (state 1) *)
  let s1 = db_of [ v "cs101" ] [ (v "ana", v "cs102") ] in
  let events = Monitor.advance m ~domain ~before:s0 ~after:s1 in
  match List.filter (fun e -> e.Monitor.ev_axiom = "ghost") events with
  | [ e ] ->
    Alcotest.(check int) "state" 1 e.Monitor.ev_state;
    Alcotest.(check bool) "kind" true (e.Monitor.ev_kind = Tformula.Static)
  | es -> Alcotest.failf "expected one ghost event, got %d" (List.length es)

let test_transition_fires_about_pre_state () =
  let m = compile_exn () in
  let s0 = db_of [ v "cs101" ] [] in
  Monitor.attach m s0;
  (* retracting cs101 violates keep (□ offered) — about state 0 *)
  let s1 = db_of [] [] in
  let events = Monitor.advance m ~domain ~before:s0 ~after:s1 in
  (match List.filter (fun e -> e.Monitor.ev_axiom = "keep") events with
  | [ e ] -> Alcotest.(check int) "state" 0 e.Monitor.ev_state
  | es -> Alcotest.failf "expected one keep event, got %d" (List.length es));
  (* the nested keep2 verdict about state 0 needs one more commit *)
  Alcotest.(check bool)
    "keep2 not yet decidable" true
    (not (List.exists (fun e -> e.Monitor.ev_axiom = "keep2") events));
  let events = Monitor.advance m ~domain ~before:s1 ~after:s1 in
  match List.filter (fun e -> e.Monitor.ev_axiom = "keep2") events with
  | [ e ] -> Alcotest.(check int) "keep2 state" 0 e.Monitor.ev_state
  | es -> Alcotest.failf "expected one keep2 event, got %d" (List.length es)

let test_clean_history_is_quiet () =
  let m = compile_exn () in
  let s0 = db_of [ v "cs101" ] [] in
  Monitor.attach m s0;
  let s1 = db_of [ v "cs101" ] [ (v "ana", v "cs101") ] in
  let s2 = db_of [ v "cs101"; v "cs102" ] [ (v "ana", v "cs101") ] in
  let e1 = Monitor.advance m ~domain ~before:s0 ~after:s1 in
  let e2 = Monitor.advance m ~domain ~before:s1 ~after:s2 in
  Alcotest.(check int) "no events" 0 (List.length e1 + List.length e2);
  Alcotest.(check int) "commits" 2 (Monitor.commits m)

let test_unpublished_check_has_no_effect () =
  let m = compile_exn () in
  let s0 = db_of [ v "cs101" ] [] in
  Monitor.attach m s0;
  let s1 = db_of [] [] in
  (* a rolled-back commit: check but never publish *)
  let events, _publish = Monitor.check m ~domain ~before:s0 ~after:s1 in
  Alcotest.(check bool) "would fire" true (events <> []);
  Alcotest.(check int) "not advanced" 0 (Monitor.commits m);
  Alcotest.(check int) "not counted" 0 (Monitor.violations m);
  (* the same commit done for real still fires *)
  let events = Monitor.advance m ~domain ~before:s0 ~after:s1 in
  Alcotest.(check bool) "fires" true (events <> [])

let test_resync_after_missed_commit () =
  let m = compile_exn () in
  let s0 = db_of [ v "cs101" ] [] in
  Monitor.attach m s0;
  (* a commit the monitor never saw *)
  let s1 = db_of [ v "cs101"; v "cs102" ] [] in
  let s2 = db_of [ v "cs101"; v "cs102" ] [ (v "bob", v "cs102") ] in
  let events = Monitor.advance m ~domain ~before:s1 ~after:s2 in
  Alcotest.(check int) "clean transition" 0 (List.length events)

let test_skipped_axioms_reported () =
  let src =
    {|
theory part
sort course
pred offered : course
shared special : course
axiom static_ok: ~(exists c:course. offered(c) & ~offered(c))
axiom uses_shared: ~(exists c:course. special(c) & ~offered(c))
|}
  in
  let theory = Tparser.theory_exn src in
  let schema : Schema.t =
    {
      Schema.name = "part";
      relations = [ Schema.rel_decl "offered" [ "course" ] ];
      consts = [];
      constraints = [];
      procs = [];
    }
  in
  match Monitor.compile ~schema theory with
  | Error e -> Alcotest.failf "compile failed: %a" Error.pp e
  | Ok m ->
    Alcotest.(check int) "monitored" 1 (List.length (Monitor.monitors m));
    (match Monitor.skipped m with
    | [ (name, reason) ] ->
      Alcotest.(check string) "skipped axiom" "uses_shared" name;
      Alcotest.(check bool)
        "reason mentions the predicate" true
        (contains ~sub:"special" reason)
    | sk -> Alcotest.failf "expected one skipped axiom, got %d" (List.length sk))

let test_missing_relation_is_an_error () =
  let src = {|
theory bad
sort course
pred nowhere : course
axiom a: ~(exists c:course. nowhere(c))
|} in
  let theory = Tparser.theory_exn src in
  match Monitor.compile ~schema theory with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e ->
    Alcotest.(check bool)
      "names the predicate" true
      (contains ~sub:"nowhere" e.Error.message)

let test_static_projections_report_skips () =
  let axioms =
    List.map (fun ax -> (ax.Ttheory.ax_name, ax.Ttheory.ax_formula)) theory.Ttheory.axioms
  in
  let statics, skipped = Check.static_projections axioms in
  Alcotest.(check (list string)) "statics" [ "ghost" ] (List.map fst statics);
  Alcotest.(check (list string)) "skipped" [ "keep"; "keep2" ] skipped

(* ------------------------------------------------------------------ *)
(* QCheck: incremental verdicts = offline Check.check_axioms           *)
(* ------------------------------------------------------------------ *)

(* A random history: start empty, each commit flips one tuple. *)
type flip = Offer of Value.t | Retract of Value.t | Enroll of Value.t * Value.t | Leave of Value.t * Value.t

let apply_flip db = function
  | Offer c -> Db.with_relation "offered" (Relation.add [ c ] (Db.relation_exn db "offered")) db
  | Retract c ->
    Db.with_relation "offered" (Relation.remove [ c ] (Db.relation_exn db "offered")) db
  | Enroll (s, c) ->
    Db.with_relation "takes" (Relation.add [ s; c ] (Db.relation_exn db "takes")) db
  | Leave (s, c) ->
    Db.with_relation "takes" (Relation.remove [ s; c ] (Db.relation_exn db "takes")) db

let flip_gen =
  let open QCheck.Gen in
  let course = oneofl courses and student = oneofl students in
  oneof
    [
      map (fun c -> Offer c) course;
      map (fun c -> Retract c) course;
      map2 (fun s c -> Enroll (s, c)) student course;
      map2 (fun s c -> Leave (s, c)) student course;
    ]

let history_gen = QCheck.Gen.(list_size (int_range 1 12) flip_gen)

let pp_flip ppf = function
  | Offer c -> Fmt.pf ppf "offer %a" Value.pp c
  | Retract c -> Fmt.pf ppf "retract %a" Value.pp c
  | Enroll (s, c) -> Fmt.pf ppf "enroll %a %a" Value.pp s Value.pp c
  | Leave (s, c) -> Fmt.pf ppf "leave %a %a" Value.pp s Value.pp c

let arbitrary_history =
  QCheck.make ~print:(Fmt.str "%a" (Fmt.Dump.list pp_flip)) history_gen

(* Offline: replay the same states into a one-step universe and check
   every axiom everywhere. The monitor can only speak about states
   whose successor window it has seen, so restrict the offline failure
   sets accordingly: a static axiom is monitored at states 1..n (state
   0 predates the stream), an axiom of modal depth d at states
   0..n-d. *)
let offline_failures (states : Db.t list) =
  let structures = List.map (fun db -> Relcalc.structure_of_db ~domain db) states in
  let n = List.length states - 1 in
  let u =
    Universe.make ~states:structures
      ~edges:(List.init n (fun i -> (i, i + 1)))
  in
  let axioms =
    List.map (fun ax -> (ax.Ttheory.ax_name, ax.Ttheory.ax_formula)) theory.Ttheory.axioms
  in
  List.map
    (fun (r : Check.report) ->
      let depth =
        Tformula.modal_depth
          (List.assoc r.Check.axiom axioms)
      in
      let keep i = if depth = 0 then i >= 1 else i <= n - depth in
      (r.Check.axiom, List.filter keep r.Check.failures))
    (Check.check_axioms u axioms)

let monitor_failures (states : Db.t list) =
  let m = compile_exn () in
  (match states with
  | s0 :: _ -> Monitor.attach m s0
  | [] -> ());
  let rec go events = function
    | before :: (after :: _ as rest) ->
      let es = Monitor.advance m ~domain ~before ~after in
      go (events @ es) rest
    | _ -> events
  in
  let events = go [] states in
  List.map
    (fun ax ->
      ( ax.Ttheory.ax_name,
        List.filter_map
          (fun (e : Monitor.event) ->
            if e.Monitor.ev_axiom = ax.Ttheory.ax_name then Some e.Monitor.ev_state
            else None)
          events
        |> List.sort_uniq compare ))
    theory.Ttheory.axioms

let prop_incremental_equals_offline =
  QCheck.Test.make ~name:"incremental monitor = offline Check.check_axioms"
    ~count:200 arbitrary_history (fun flips ->
      let states =
        List.rev
          (List.fold_left
             (fun acc f -> apply_flip (List.hd acc) f :: acc)
             [ db_of [] [] ] flips)
      in
      let off = offline_failures states in
      let inc = monitor_failures states in
      List.for_all
        (fun (name, fails) ->
          List.sort_uniq compare fails = List.assoc name inc)
        off)

let suite =
  [
    Alcotest.test_case "static axiom fires about the post state" `Quick test_static_fires;
    Alcotest.test_case "transition axiom fires about the pre state" `Quick
      test_transition_fires_about_pre_state;
    Alcotest.test_case "clean history is quiet" `Quick test_clean_history_is_quiet;
    Alcotest.test_case "unpublished check has no effect" `Quick
      test_unpublished_check_has_no_effect;
    Alcotest.test_case "resync after a missed commit" `Quick test_resync_after_missed_commit;
    Alcotest.test_case "non-monitorable axioms are reported" `Quick
      test_skipped_axioms_reported;
    Alcotest.test_case "missing homonym relation is an error" `Quick
      test_missing_relation_is_an_error;
    Alcotest.test_case "static_projections report skipped modals" `Quick
      test_static_projections_report_skips;
    QCheck_alcotest.to_alcotest prop_incremental_equals_offline;
  ]
