(* The parallel kernel: Pool's determinism contract, budget exactness
   across domains, and jobs-count invariance of the refinement
   checkers. *)

open Fdbs_kernel
open Fdbs_rpr
open Fdbs_refine

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_chunks () =
  let xs = List.init 13 Fun.id in
  List.iter
    (fun jobs ->
      let cs = Pool.chunks ~jobs xs in
      check
        Alcotest.(list int)
        (Fmt.str "concat of chunks ~jobs:%d" jobs)
        xs (List.concat cs);
      checkb (Fmt.str "at most %d chunks" jobs) true (List.length cs <= jobs);
      checkb "no empty chunk" true (List.for_all (fun c -> c <> []) cs))
    [ 1; 2; 3; 5; 13; 100 ];
  check Alcotest.(list (list int)) "empty input" [] (Pool.chunks ~jobs:4 [])

let test_map_matches_list_map () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Fmt.str "map ~jobs:%d" jobs)
        (List.map f xs)
        (Pool.map ~jobs f xs))
    [ 1; 2; 4; 8 ]

let test_map_earliest_exception () =
  let xs = List.init 10 Fun.id in
  let f x = if x = 3 || x = 7 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f xs with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        check Alcotest.string
          (Fmt.str "earliest chunk's exception with ~jobs:%d" jobs)
          "3" msg)
    [ 1; 2; 4 ]

let test_map_reduce () =
  let xs = List.init 100 (fun i -> i + 1) in
  let total =
    Pool.map_reduce ~jobs:4 ~map:(fun x -> x) ~merge:( + ) ~neutral:0 xs
  in
  check Alcotest.int "sum 1..100" 5050 total

let test_map_edges () =
  (* empty input, single element, and far more participants than items:
     the deque split must degenerate gracefully *)
  let f x = (x * 3) + 1 in
  check Alcotest.(list int) "empty input" [] (Pool.map ~jobs:4 f []);
  check Alcotest.(list int) "single element" [ 22 ] (Pool.map ~jobs:8 f [ 7 ]);
  let xs = List.init 5 Fun.id in
  check
    Alcotest.(list int)
    "more jobs than items" (List.map f xs)
    (Pool.map ~jobs:100 f xs);
  check Alcotest.int "map_reduce on empty input" 0
    (Pool.map_reduce ~jobs:4 ~map:f ~merge:( + ) ~neutral:0 [])

let test_steal_determinism_under_contention () =
  (* Wildly skewed per-item cost: the first few items dominate, so the
     even initial split leaves most participants idle unless they
     steal. Whatever the steal schedule, the result must stay
     [List.map] — run repeatedly to shake out schedule dependence. *)
  let xs = List.init 200 Fun.id in
  let f x =
    let rounds = if x < 4 then 20_000 else 50 in
    let acc = ref x in
    for i = 1 to rounds do
      acc := ((!acc * 7) + i) mod 9973
    done;
    !acc
  in
  let expect = List.map f xs in
  for _run = 1 to 5 do
    List.iter
      (fun jobs ->
        check
          Alcotest.(list int)
          (Fmt.str "steal-heavy map ~jobs:%d" jobs)
          expect (Pool.map ~jobs f xs))
      [ 2; 3; 4; 8 ]
  done

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"work-stealing map = List.map for any sizes and jobs"
    ~count:200
    QCheck.(triple (small_list int) (int_range 1 16) (int_range 0 60))
    (fun (xs, jobs, pad) ->
      (* pad stretches the length so block sizes and steal splits vary *)
      let xs = xs @ List.init pad (fun i -> i - 30) in
      let f x = (x * 2) + 1 in
      Pool.map ~jobs f xs = List.map f xs)

let test_default_jobs () =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  check Alcotest.int "set_default_jobs" 3 (Pool.default_jobs ());
  Pool.set_default_jobs 0;
  check Alcotest.int "clamped to 1" 1 (Pool.default_jobs ());
  Pool.set_default_jobs saved;
  checkb "recommended_jobs positive" true (Pool.recommended_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Budget exactness across domains                                     *)
(* ------------------------------------------------------------------ *)

let test_budget_exact_across_domains () =
  (* 4 workers spend exactly the whole allowance concurrently: no spend
     may be lost (a lost decrement would let a 101st spend through). *)
  let b = Budget.make ~steps:100 () in
  let spend _ =
    for _ = 1 to 25 do
      Budget.spend_step b
    done
  in
  (match Pool.map ~jobs:4 spend (List.init 4 Fun.id) with
   | _ -> ()
   | exception Budget.Exhausted _ ->
     Alcotest.fail "budget exhausted before its allowance");
  (match Budget.spend_step b with
   | () -> Alcotest.fail "101st step should exhaust the budget"
   | exception Budget.Exhausted Budget.Steps -> ())

(* ------------------------------------------------------------------ *)
(* Jobs-count invariance of the checkers                               *)
(* ------------------------------------------------------------------ *)

let university = Fdbs.University.functions
let domain = Fdbs.University.small_domain

let test_check23_jobs_invariant () =
  let env = Semantics.env ~domain Fdbs.University.representation in
  let r1 = Check23.check ~config:(Fdbs_kernel.Config.with_jobs 1) university env
      Fdbs.University.mapping in
  let r4 = Check23.check ~config:(Fdbs_kernel.Config.with_jobs 4) university env
      Fdbs.University.mapping in
  checkb "jobs=1 passes" true (Check23.ok r1);
  checkb "identical reports" true (r1 = r4)

let test_check23_jobs_invariant_on_violation () =
  (* a broken mapping yields violations; their order and count must not
     depend on the job count either *)
  let broken =
    (* offer runs the cancel procedure: same parameter sorts, wrong
       behaviour — the offered(c, offer(c, U)) equations now fail *)
    Interp23.make
      ~updates:
        (List.map
           (fun (u, p) -> (u, if u = "offer" then "cancel" else p))
           Fdbs.University.mapping.Interp23.updates)
      ~queries:Fdbs.University.mapping.Interp23.queries
  in
  let env = Semantics.env ~domain Fdbs.University.representation in
  let r1 = Check23.check ~config:(Fdbs_kernel.Config.with_jobs 1) university env broken in
  let r4 = Check23.check ~config:(Fdbs_kernel.Config.with_jobs 4) university env broken in
  checkb "violations found" true (r1.Check23.violations <> []);
  checkb "identical failing reports" true (r1 = r4)

let test_check12_jobs_invariant () =
  let r1 =
    Check12.check ~domain ~config:(Fdbs_kernel.Config.with_jobs 1)
      Fdbs.University.info university Fdbs.University.interp
  in
  let r4 =
    Check12.check ~domain ~config:(Fdbs_kernel.Config.with_jobs 4)
      Fdbs.University.info university Fdbs.University.interp
  in
  checkb "jobs=1 passes" true (Check12.ok r1);
  checkb "same verdict" true (Check12.ok r1 = Check12.ok r4);
  check Alcotest.int "same states" r1.Check12.states r4.Check12.states;
  check Alcotest.int "same unreachable-valid count"
    (List.length r1.Check12.unreachable_valid)
    (List.length r4.Check12.unreachable_valid)

let test_dynamic23_jobs_invariant () =
  let env = Semantics.env ~domain Fdbs.University.representation in
  let verdicts jobs =
    match
      Dynamic23.check ~config:(Fdbs_kernel.Config.with_jobs jobs) university env
        Fdbs.University.mapping
    with
    | Ok vs ->
      List.map (fun v -> (v.Dynamic23.dyn_equation, v.Dynamic23.dyn_holds)) vs
    | Error e -> Alcotest.fail e.Fdbs_kernel.Error.message
  in
  check
    Alcotest.(list (pair string bool))
    "jobs 1 = jobs 4" (verdicts 1) (verdicts 4)

let suite =
  [
    Alcotest.test_case "pool chunks invariants" `Quick test_chunks;
    Alcotest.test_case "pool map = List.map for any jobs" `Quick
      test_map_matches_list_map;
    Alcotest.test_case "pool map re-raises the earliest chunk's exception" `Quick
      test_map_earliest_exception;
    Alcotest.test_case "pool map_reduce folds in order" `Quick test_map_reduce;
    Alcotest.test_case "pool map edge cases" `Quick test_map_edges;
    Alcotest.test_case "pool steal determinism under contention" `Quick
      test_steal_determinism_under_contention;
    Alcotest.test_case "default jobs knob" `Quick test_default_jobs;
    Alcotest.test_case "budget exact across 4 domains" `Quick
      test_budget_exact_across_domains;
    Alcotest.test_case "Check23 invariant under jobs" `Quick
      test_check23_jobs_invariant;
    Alcotest.test_case "Check23 violations invariant under jobs" `Quick
      test_check23_jobs_invariant_on_violation;
    Alcotest.test_case "Check12 invariant under jobs" `Quick
      test_check12_jobs_invariant;
    Alcotest.test_case "Dynamic23 invariant under jobs" `Quick
      test_dynamic23_jobs_invariant;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_map_matches_list_map ]
