The CI smoke scenarios are ordinary shell scripts under ci/ so they
can be run locally, from the repo root, without GitHub Actions:

- bash ci/parallel-smoke.sh -- --jobs never changes verify output
- bash ci/fault-smoke.sh -- an injected fault rolls the txn back
- bash ci/trace-smoke.sh -- Chrome traces valid and jobs-invariant
- bash ci/service-smoke.sh -- serve daemon lifecycle over a socket
- bash ci/replication-smoke.sh -- leader/follower chaos, journal replay
- bash ci/delta-smoke.sh -- journaled burst checked differentially
- bash ci/gateway-smoke.sh -- 100 clients, tenants, overload rejection

They need dune on PATH (CI wraps them in `opam exec`) and write their
scratch files into the current directory. This cram keeps the cheapest
of those contracts pinned in the test suite proper: verification output
is byte-identical whatever --jobs says, sequential or the
work-stealing pool.

  $ fds verify --small --depth 1 --jobs 1 > j1.out
  $ fds verify --small --depth 1 --jobs 4 > j4.out
  $ cmp j1.out j4.out
  $ grep -c VERIFIED j1.out
  1

And the incremental-evaluation contract: replaying a journaled burst
in one process materializes each constraint plan on the first commit
(delta_miss) and advances it differentially on every later one
(delta_hit), with nothing on this workload forcing a fallback.

  $ cat > d.schema <<'EOF'
  > schema d
  > relation R(course)
  > relation S(course)
  > constraint covered: forall x:course. (S(x) -> R(x))
  > proc base(x: course) = insert R(x)
  > proc add(x: course) = insert S(x)
  > end-schema
  > EOF
  $ fds run d.schema --transactional --journal d.journal --check-constraints -c 'base(cs101)' > /dev/null
  $ fds run d.schema --transactional --journal d.journal --check-constraints -c 'base(cs101)' -c 'add(cs101)' > /dev/null
  $ fds run d.schema --transactional --journal d.journal --check-constraints -c 'base(cs202)' > /dev/null
  $ fds replay d.schema d.journal --check-constraints --stats 2>&1 >/dev/null | grep -Eo 'planner.delta_(hit|miss|fallback) +[0-9]+' | tr -s ' '
  planner.delta_fallback 0
  planner.delta_hit 2
  planner.delta_miss 1

The derivative views behind that differential layer render per
constraint under `fds explain --delta`.

  $ fds explain --delta d.schema | grep -E 'delta view:|ΔS:'
  delta view: per-relation insert-derivatives of each constraint plan;
    ΔS:     retract/readmit via Δ(project[](antijoin[(#0)](S, R)))
    ΔS:     ΔS
