The CI smoke scenarios are ordinary shell scripts under ci/ so they
can be run locally, from the repo root, without GitHub Actions:

- bash ci/parallel-smoke.sh -- --jobs never changes verify output
- bash ci/fault-smoke.sh -- an injected fault rolls the txn back
- bash ci/trace-smoke.sh -- Chrome traces valid and jobs-invariant
- bash ci/service-smoke.sh -- serve daemon lifecycle over a socket
- bash ci/replication-smoke.sh -- leader/follower chaos, journal replay

They need dune on PATH (CI wraps them in `opam exec`) and write their
scratch files into the current directory. This cram keeps the cheapest
of those contracts pinned in the test suite proper: verification output
is byte-identical whatever --jobs says, sequential or the
work-stealing pool.

  $ fds verify --small --depth 1 --jobs 1 > j1.out
  $ fds verify --small --depth 1 --jobs 4 > j4.out
  $ cmp j1.out j4.out
  $ grep -c VERIFIED j1.out
  1
