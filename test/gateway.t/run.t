The production gateway: pipelined batches, multi-tenant namespaces,
authenticated attach, connection pooling, and structured rejection of
malformed frames.

  $ fds serve guarded.schema --socket fds.sock --transactional \
  >   --journal gw.journal --auth-token sesame 2>server.log &
  $ for i in $(seq 1 100); do test -S fds.sock && break; sleep 0.1; done

A batch executes N requests in one frame exchange and answers them in
order as one array:

  $ fds client --socket fds.sock \
  >   '{"id": 1, "op": "batch", "requests": [{"id": 1, "op": "ping"}, {"id": 2, "op": "run", "calls": ["initiate()", "offer(cs101)"]}, {"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}]}'
  {"id": 1, "ok": true, "result": [{"id": 1, "ok": true, "result": "pong"}, {"id": 2, "ok": true, "result": {"completed": 2, "state": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}}, {"id": 3, "ok": true, "result": true}]}

A batch may not nest batches or smuggle a shutdown — each offending
item gets its own structured error while the rest still execute:

  $ fds client --socket fds.sock \
  >   '{"id": 2, "op": "batch", "requests": [{"id": 1, "op": "shutdown"}, {"id": 2, "op": "ping"}]}'
  {"id": 2, "ok": true, "result": [{"id": 1, "ok": false, "error": {"phase": "parse", "code": "exec-failure", "message": "\"shutdown\" is not allowed inside a batch", "context": {}}}, {"id": 2, "ok": true, "result": "pong"}]}

Attaching a namespace needs the token; a wrong one is a structured
Unauthorized error, and the error echoes the request id:

  $ fds client --socket fds.sock \
  >   '{"id": 3, "op": "attach", "namespace": "acme", "token": "wrong"}'
  {"id": 3, "ok": false, "error": {"phase": "exec", "code": "unauthorized", "message": "attach: missing or invalid token", "context": {}}}

Two tenants with the same schema get isolated stores: writes in one
namespace are invisible in the other (and in the default namespace):

  $ fds client --socket fds.sock \
  >   '{"id": 4, "op": "attach", "namespace": "acme", "token": "sesame"}' \
  >   '{"id": 5, "op": "run", "calls": ["initiate()", "offer(acme101)"]}' \
  >   '{"id": 6, "op": "state"}'
  {"id": 4, "ok": true, "result": {"namespace": "acme"}}
  {"id": 5, "ok": true, "result": {"completed": 2, "state": {"relations": {"OFFERED": [["acme101"]], "TAKES": []}, "scalars": {}}}}
  {"id": 6, "ok": true, "result": {"relations": {"OFFERED": [["acme101"]], "TAKES": []}, "scalars": {}}}
  $ fds client --socket fds.sock \
  >   '{"id": 7, "op": "attach", "namespace": "globex", "token": "sesame"}' \
  >   '{"id": 8, "op": "state"}'
  {"id": 7, "ok": true, "result": {"namespace": "globex"}}
  {"id": 8, "ok": true, "result": {"relations": {"OFFERED": [], "TAKES": []}, "scalars": {}}}
  $ fds client --socket fds.sock '{"id": 9, "op": "state"}'
  {"id": 9, "ok": true, "result": {"relations": {"OFFERED": [["cs101"]], "TAKES": []}, "scalars": {}}}

A malformed request is a structured reply (with the id echoed when the
JSON carried one) and never kills the connection:

  $ fds client --socket fds.sock '{"id": 10, "nop": "ping"}' '{"id": 11, "op": "ping"}'
  {"id": 10, "ok": false, "error": {"phase": "parse", "code": "exec-failure", "message": "request needs an \"op\" string", "context": {}}}
  {"id": 11, "ok": true, "result": "pong"}

The pooled client reuses connections across a repeated script:

  $ fds client --socket fds.sock --pool 2 --requests 3 --quiet '{"id": 12, "op": "ping"}'
  3 responses

Shut down and check the per-namespace journals: each tenant's commits
landed in its own journal next to the base one:

  $ fds client --socket fds.sock '{"id": 13, "op": "shutdown"}'
  {"id": 13, "ok": true, "result": "bye"}
  $ wait
  $ cat gw.journal
  epoch 1
  call initiate
  call offer cs101
  commit
  $ cat gw.journal.acme
  call initiate
  call offer acme101
  commit
  $ test -f gw.journal.globex || echo "no commits, no journal entries"
  no commits, no journal entries
