(* Tests for the transactional execution kernel: atomic commit,
   constraint-checked rollback, resource budgets, fault injection at
   every instrumented site, and journal replay. The acceptance property
   throughout: a transaction that fails for any reason leaves the
   database Db.equal to its pre-transaction snapshot. *)

open Fdbs_kernel
open Fdbs_rpr

let v s = Value.Sym s

(* The university schema guarded by a static integrity constraint, plus
   an unguarded insert so the constraint can actually be violated. *)
let guarded_src =
  {|
schema guarded

relation OFFERED(course)
relation TAKES(student, course)

constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)

proc enroll_unchecked(s: student, c: course) = insert TAKES(s, c)

proc choose(c: course, c2: course) = (insert OFFERED(c)) u (insert OFFERED(c2))

proc drain(c: course) = while (OFFERED(c)) do ((delete OFFERED(c)) u skip)

end-schema
|}

let schema = Rparser.schema_exn guarded_src

let domain =
  Domain.of_list
    [
      ("course", [ v "cs101"; v "cs102" ]);
      ("student", [ v "ana"; v "bob" ]);
    ]

let env = Semantics.env ~domain schema
let db0 = Schema.empty_db schema
let txn = Txn.make env

(* A nonempty pre-state so rollback is observable. *)
let pre =
  match Txn.run txn [ ("initiate", []); ("offer", [ v "cs102" ]) ] db0 with
  | Ok db -> db
  | Error rb -> Alcotest.failf "pre-state setup rolled back: %a" Txn.pp_rollback rb

let db = Alcotest.testable Db.pp Db.equal

let code_name_of_rollback (rb : Txn.rollback) = Error.code_name rb.Txn.error.Error.code

let check_rolled_back ?code name (result : (Db.t, Txn.rollback) result) =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected a rollback, got a commit" name
  | Error rb ->
    Alcotest.check db (name ^ ": restored = snapshot") pre rb.Txn.restored;
    (match code with
     | Some c -> Alcotest.(check string) (name ^ ": code") c (code_name_of_rollback rb)
     | None -> ())

let test_commit () =
  let calls =
    [ ("initiate", []); ("offer", [ v "cs101" ]); ("enroll", [ v "ana"; v "cs101" ]) ]
  in
  match Txn.run txn calls db0 with
  | Error rb -> Alcotest.failf "commit failed: %a" Txn.pp_rollback rb
  | Ok final ->
    let expected =
      List.fold_left
        (fun d (n, args) -> Semantics.call_det_exn env n args d)
        db0 calls
    in
    Alcotest.check db "transactional = sequential" expected final

let test_constraint_rollback () =
  (* enroll_unchecked violates takes_offered: rollback, structured error *)
  check_rolled_back ~code:"constraint-violation" "constraint"
    (Txn.run txn [ ("enroll_unchecked", [ v "ana"; v "cs101" ]) ] pre);
  (* the same calls commit when constraint checking is off *)
  let lax = Txn.make ~check_constraints:false env in
  match Txn.run lax [ ("enroll_unchecked", [ v "ana"; v "cs101" ]) ] pre with
  | Ok _ -> ()
  | Error rb -> Alcotest.failf "lax transaction rolled back: %a" Txn.pp_rollback rb

let test_blocked_rollback () =
  (* a nondeterministic procedure is not a deterministic transaction *)
  check_rolled_back ~code:"nondeterministic" "nondeterministic"
    (Txn.run txn [ ("choose", [ v "cs101"; v "cs102" ]) ] pre);
  check_rolled_back ~code:"unknown-procedure" "unknown"
    (Txn.run txn [ ("nope", []) ] pre)

(* Every instrumented fault site: an injected abort rolls back to a
   Db.equal pre-state. *)
let fault_sites =
  [ "txn.begin"; "semantics.exec"; "semantics.call"; "relalg.eval"; "txn.commit" ]

let test_fault_sites () =
  List.iter
    (fun site ->
      Fun.protect ~finally:Fault.disarm_all (fun () ->
          Fault.arm ~site Fault.Abort;
          check_rolled_back ~code:"fault-injected" ("abort at " ^ site)
            (Txn.run txn
               [ ("initiate", []); ("offer", [ v "cs101" ]);
                 ("enroll", [ v "ana"; v "cs101" ]) ]
               pre)))
    fault_sites

let test_fault_after () =
  (* countdown arming: fires on the 3rd exec hit, still rolls back *)
  Fun.protect ~finally:Fault.disarm_all (fun () ->
      Fault.arm ~after:2 ~site:"semantics.exec" Fault.Abort;
      check_rolled_back ~code:"fault-injected" "countdown abort"
        (Txn.run txn [ ("initiate", []); ("offer", [ v "cs101" ]) ] pre))

let test_budget_steps () =
  check_rolled_back ~code:"budget-steps" "step fuel"
    (Txn.run ~budget:(Budget.make ~steps:1 ()) txn
       [ ("initiate", []); ("offer", [ v "cs101" ]) ]
       pre)

let test_budget_time () =
  check_rolled_back ~code:"budget-time" "deadline"
    (Txn.run ~budget:(Budget.make ~ms:(-1) ()) txn [ ("offer", [ v "cs101" ]) ] pre)

let test_budget_states () =
  (* the distinct-state cap subsumes star_limit: draining both courses
     needs 3 distinct states through the while fixpoint *)
  let calls = [ ("offer", [ v "cs101" ]); ("drain", [ v "cs101" ]) ] in
  check_rolled_back ~code:"budget-states" "state cap"
    (Txn.run ~budget:(Budget.make ~states:1 ()) txn calls pre);
  match Txn.run ~budget:(Budget.make ~states:100 ()) txn calls pre with
  | Ok _ -> ()
  | Error rb -> Alcotest.failf "ample state cap rolled back: %a" Txn.pp_rollback rb

let test_fault_exhausts_budget () =
  (* an injected exhaustion drains the transaction's budget mid-flight *)
  Fun.protect ~finally:Fault.disarm_all (fun () ->
      Fault.arm ~site:"semantics.exec" (Fault.Exhaust Budget.Steps);
      check_rolled_back ~code:"budget-steps" "injected exhaustion"
        (Txn.run ~budget:(Budget.make ~steps:1_000 ()) txn
           [ ("initiate", []); ("offer", [ v "cs101" ]) ]
           pre))

let test_constraint_flip () =
  (* a flipped verdict rolls back a perfectly valid transaction *)
  Fun.protect ~finally:Fault.disarm_all (fun () ->
      Fault.arm ~site:"txn.constraint" Fault.Flip;
      check_rolled_back ~code:"constraint-violation" "flipped verdict"
        (Txn.run txn [ ("offer", [ v "cs101" ]) ] pre))

(* ------------------------------------------------------------------ *)
(* Journal + replay                                                    *)
(* ------------------------------------------------------------------ *)

let with_temp_journal f =
  let path = Filename.temp_file "fdbs_txn" ".journal" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_journal_replay () =
  with_temp_journal (fun path ->
      let jtxn = Txn.make ~journal:path env in
      let step calls d =
        match Txn.run jtxn calls d with
        | Ok d' -> d'
        | Error rb -> Alcotest.failf "journaled txn rolled back: %a" Txn.pp_rollback rb
      in
      let d1 = step [ ("initiate", []); ("offer", [ v "cs101" ]) ] db0 in
      let d2 = step [ ("enroll", [ v "ana"; v "cs101" ]) ] d1 in
      (* an aborted transaction leaves no journal entry *)
      Fun.protect ~finally:Fault.disarm_all (fun () ->
          Fault.arm ~site:"txn.commit" Fault.Abort;
          match Txn.run jtxn [ ("offer", [ v "cs102" ]) ] d2 with
          | Ok _ -> Alcotest.fail "aborted txn: expected a rollback"
          | Error rb -> Alcotest.check db "aborted txn restored" d2 rb.Txn.restored);
      (match Journal.load path with
       | Ok (entries, torn) ->
         Alcotest.(check int) "two committed entries" 2 (List.length entries);
         Alcotest.(check (option string)) "no torn tail" None torn
       | Error e -> Alcotest.failf "journal load: %s" (Error.to_string e));
      match Txn.replay jtxn path db0 with
      | Ok replayed -> Alcotest.check db "replay reproduces the committed state" d2 replayed
      | Error e -> Alcotest.failf "replay: %s" (Error.to_string e))

let test_journal_ignores_partial_entry () =
  with_temp_journal (fun path ->
      let jtxn = Txn.make ~journal:path env in
      (match Txn.run jtxn [ ("initiate", []); ("offer", [ v "cs101" ]) ] db0 with
       | Ok _ -> ()
       | Error rb -> Alcotest.failf "rolled back: %a" Txn.pp_rollback rb);
      (* simulate a crash mid-entry: calls with no commit marker *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "call offer cs102\n";
      close_out oc;
      match Journal.load path with
      | Ok ([ entry ], torn) ->
        Alcotest.(check int) "committed calls only" 2 (List.length entry.Journal.calls);
        Alcotest.(check bool) "partial entry reported as torn" true (torn <> None)
      | Ok (es, _) -> Alcotest.failf "expected 1 entry, got %d" (List.length es)
      | Error e -> Alcotest.failf "journal load: %s" (Error.to_string e))

let test_journal_malformed_line_context () =
  with_temp_journal (fun path ->
      let jtxn = Txn.make ~journal:path env in
      (match Txn.run jtxn [ ("initiate", []); ("offer", [ v "cs101" ]) ] db0 with
       | Ok _ -> ()
       | Error rb -> Alcotest.failf "rolled back: %a" Txn.pp_rollback rb);
      (* corrupt the middle of the file: a malformed line with entries
         after it cannot be a torn tail, so the error must locate it *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "garbage line\ncall offer cs102\ncommit\n";
      close_out oc;
      match Journal.load path with
      | Ok _ -> Alcotest.fail "malformed mid-file line must be an error"
      | Error e ->
        Alcotest.(check (option string))
          "line number in context" (Some "4")
          (List.assoc_opt "line" e.Error.context);
        (* "call initiate\ncall offer cs101\ncommit\n" = 38 bytes *)
        Alcotest.(check (option string))
          "byte offset in context" (Some "38")
          (List.assoc_opt "byte" e.Error.context);
        Alcotest.(check bool) "message names line and byte" true
          (let m = e.Error.message in
           let has sub =
             let n = String.length sub and l = String.length m in
             let rec at i = i + n <= l && (String.sub m i n = sub || at (i + 1)) in
             at 0
           in
           has "line 4" && has "byte 38"))

let test_journal_fsync_append () =
  (* ~fsync:true must produce the same bytes as the buffered path —
     the guarantee is about durability, not format *)
  with_temp_journal (fun path ->
      let jtxn = Txn.make ~fsync:true ~journal:path env in
      (match Txn.run jtxn [ ("initiate", []); ("offer", [ v "cs101" ]) ] db0 with
       | Ok _ -> ()
       | Error rb -> Alcotest.failf "rolled back: %a" Txn.pp_rollback rb);
      match Journal.load path with
      | Ok ([ entry ], None) ->
        Alcotest.(check int) "both calls landed" 2 (List.length entry.Journal.calls)
      | Ok (es, torn) ->
        Alcotest.failf "expected 1 clean entry, got %d (torn: %a)"
          (List.length es) Fmt.(option string) torn
      | Error e -> Alcotest.failf "journal load: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* The While visited-set fix                                           *)
(* ------------------------------------------------------------------ *)

let test_while_nondeterministic_body () =
  (* [drain]'s body may skip, revisiting the same state forever; the
     visited set makes the fixpoint converge on 2 distinct states even
     with a tiny limit (the old per-branch fuel re-explored duplicates
     and exhausted any budget) *)
  let tight = Semantics.env ~star_limit:8 ~domain schema in
  let d1 = Semantics.call_det_exn tight "offer" [ v "cs101" ] db0 in
  match Semantics.call_det tight "drain" [ v "cs101" ] d1 with
  | Ok out ->
    Alcotest.(check bool) "course drained" false
      (Semantics.query tight out
         (Fdbs_logic.Formula.pred "OFFERED" [ Fdbs_logic.Term.Lit (v "cs101") ]))
  | Error e -> Alcotest.failf "drain: %s" e.Fdbs_kernel.Error.message

(* ------------------------------------------------------------------ *)
(* Properties (qcheck)                                                 *)
(* ------------------------------------------------------------------ *)

let call_gen =
  let open QCheck.Gen in
  oneof
    [
      return ("initiate", []);
      map (fun c -> ("offer", [ c ])) (oneofl [ v "cs101"; v "cs102" ]);
      map2
        (fun s c -> ("enroll", [ s; c ]))
        (oneofl [ v "ana"; v "bob" ])
        (oneofl [ v "cs101"; v "cs102" ]);
      map (fun c -> ("drain", [ c ])) (oneofl [ v "cs101"; v "cs102" ]);
    ]

let print_scenario ((site, after), calls) =
  Fmt.str "%s:%d [%a]" site after Fmt.(list ~sep:(any "; ") Journal.pp_call) calls

let arbitrary_fault_scenario =
  QCheck.make ~print:print_scenario
    QCheck.Gen.(
      pair
        (pair (oneofl fault_sites) (int_range 0 5))
        (list_size (int_range 1 6) call_gen))

(* (a) rollback restores a Db.equal pre-state under every injected
   fault site, wherever in the run it fires. *)
let prop_rollback_restores_pre_state =
  QCheck.Test.make ~name:"rollback restores the snapshot under any fault" ~count:200
    arbitrary_fault_scenario (fun ((site, after), calls) ->
      Fun.protect ~finally:Fault.disarm_all (fun () ->
          Fault.arm ~after ~site Fault.Abort;
          match Txn.run txn calls pre with
          | Ok _ -> true  (* the fault never fired (countdown too deep) *)
          | Error rb -> Db.equal rb.Txn.restored pre))

let arbitrary_txns =
  QCheck.make
    ~print:
      Fmt.(str "%a" (list ~sep:(any " | ") (list ~sep:(any "; ") Journal.pp_call)))
    QCheck.Gen.(list_size (int_range 1 4) (list_size (int_range 1 4) call_gen))

(* (b) replay of a journal reproduces the committed state exactly. *)
let prop_replay_reproduces_commits =
  QCheck.Test.make ~name:"journal replay reproduces the committed state" ~count:100
    arbitrary_txns (fun txns ->
      with_temp_journal (fun path ->
          let jtxn = Txn.make ~journal:path env in
          let final =
            List.fold_left
              (fun d calls ->
                match Txn.run jtxn calls d with Ok d' -> d' | Error rb -> rb.Txn.restored)
              db0 txns
          in
          match Txn.replay jtxn path db0 with
          | Ok replayed -> Db.equal final replayed
          | Error _ -> false))

let suite =
  [
    Alcotest.test_case "transactional commit = sequential" `Quick test_commit;
    Alcotest.test_case "constraint violation rolls back" `Quick test_constraint_rollback;
    Alcotest.test_case "nondeterministic/unknown roll back" `Quick test_blocked_rollback;
    Alcotest.test_case "abort rolls back at every fault site" `Quick test_fault_sites;
    Alcotest.test_case "countdown fault rolls back" `Quick test_fault_after;
    Alcotest.test_case "step budget rolls back" `Quick test_budget_steps;
    Alcotest.test_case "deadline rolls back" `Quick test_budget_time;
    Alcotest.test_case "state cap rolls back" `Quick test_budget_states;
    Alcotest.test_case "injected exhaustion rolls back" `Quick test_fault_exhausts_budget;
    Alcotest.test_case "flipped constraint rolls back" `Quick test_constraint_flip;
    Alcotest.test_case "journal + replay" `Quick test_journal_replay;
    Alcotest.test_case "partial journal entry ignored" `Quick test_journal_ignores_partial_entry;
    Alcotest.test_case "malformed journal line carries line and byte" `Quick
      test_journal_malformed_line_context;
    Alcotest.test_case "fsynced journal appends round-trip" `Quick
      test_journal_fsync_append;
    Alcotest.test_case "while converges on nondeterministic body" `Quick
      test_while_nondeterministic_body;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_rollback_restores_pre_state; prop_replay_reproduces_commits ]
