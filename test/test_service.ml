(* Tests for the session-based service layer: warm planner caches
   shared across session calls, transaction isolation between sessions
   over one store, serializable concurrent commits (two client domains
   against one store, checked against both serial reference orders),
   structured budget errors that leave the store alive, and the wire
   protocol's framing and dispatch. *)

open Fdbs_kernel
open Fdbs_rpr
module Session = Fdbs_service.Session
module Protocol = Fdbs_service.Protocol

let v s = Value.Sym s

let guarded_src =
  {|
schema guarded

relation OFFERED(course)
relation TAKES(student, course)

constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc enroll_unchecked(s: student, c: course) = insert TAKES(s, c)

end-schema
|}

let schema = Rparser.schema_exn guarded_src
let db = Alcotest.testable Db.pp Db.equal

let session_exn ?config () =
  match Session.open_ ?config ~schema () with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_ failed: %s" (Error.to_string e)

let run_exn s calls =
  match Session.run s calls with
  | Ok o -> o.Session.state
  | Error f -> Alcotest.failf "run failed: %s" (Error.to_string f.Session.fail_error)

(* --- planner cache stays warm across session calls --- *)

let test_planner_cache_warm () =
  let s = session_exn () in
  (* creation compiled every constraint and assignment already *)
  let h0, m0 = Planner.stats () in
  ignore (run_exn s [ ("initiate", []); ("offer", [ v "cs101" ]) ]);
  let h1, m1 = Planner.stats () in
  Alcotest.(check bool) "first batch hits the warm cache" true (h1 > h0);
  Alcotest.(check int) "no new plans compiled" m0 m1;
  (* a later batch re-evaluating the same assignments hits again;
     plain inserts never consult the planner, so route through initiate *)
  ignore (run_exn s [ ("initiate", []); ("offer", [ v "cs102" ]) ]);
  let h2, m2 = Planner.stats () in
  Alcotest.(check bool) "hits keep rising across calls" true (h2 > h1);
  Alcotest.(check int) "still no new plans" m1 m2

(* --- transaction isolation between sessions over one store --- *)

let test_txn_isolation () =
  let a = session_exn () in
  let b = Session.on_store (Session.store a) in
  (match Session.begin_txn a with
   | Ok () -> ()
   | Error e -> Alcotest.failf "begin: %s" (Error.to_string e));
  (match Session.run a [ ("offer", [ v "cs101" ]) ] with
   | Ok _ -> ()
   | Error f -> Alcotest.failf "txn run: %s" (Error.to_string f.Session.fail_error));
  let offered st = Relation.cardinal (Db.relation_exn st "OFFERED") in
  Alcotest.(check int) "A sees its uncommitted insert" 1 (offered (Session.db a));
  Alcotest.(check int) "B does not" 0 (offered (Session.db b));
  Alcotest.(check bool) "A is in a transaction" true (Session.in_txn a);
  (match Session.commit a with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "commit: %s" (Error.to_string e));
  Alcotest.(check int) "commit publishes to B" 1 (offered (Session.db b));
  (* a rolled-back transaction leaves no trace *)
  ignore (Session.begin_txn b);
  ignore (Session.run b [ ("offer", [ v "cs102" ]) ]);
  (match Session.rollback b with
   | Ok st -> Alcotest.(check int) "rollback restores the store" 1 (offered st)
   | Error e -> Alcotest.failf "rollback: %s" (Error.to_string e))

(* --- serializable concurrent commits (QCheck) --- *)

let call_gen =
  QCheck.Gen.(
    oneof
      [
        return ("initiate", []);
        map (fun c -> ("offer", [ v c ])) (oneofl [ "cs101"; "cs102" ]);
        map2
          (fun s c -> ("enroll_unchecked", [ v s; v c ]))
          (oneofl [ "ana"; "bob" ])
          (oneofl [ "cs101"; "cs102" ]);
      ])

let batch_gen = QCheck.Gen.(list_size (int_range 1 4) call_gen)

let pp_batch ppf calls =
  Fmt.(list ~sep:(any "; ") Journal.pp_call) ppf calls

let arbitrary_batches =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "A=[%a] B=[%a]" pp_batch a pp_batch b)
    QCheck.Gen.(pair batch_gen batch_gen)

(* The reference model: apply the batch as one constraint-checked
   transaction; a rollback is the identity. *)
let serial_apply st batch =
  let domain =
    Domain.of_list
      [
        ("course", [ v "cs101"; v "cs102" ]);
        ("student", [ v "ana"; v "bob" ]);
      ]
  in
  let env = Semantics.env ~domain schema in
  let txn = Txn.make ~check_constraints:true env in
  match Txn.run txn batch st with Ok st' -> st' | Error rb -> rb.Txn.restored

let concurrent_commits_serializable =
  QCheck.Test.make ~name:"concurrent commits are serializable" ~count:25
    arbitrary_batches (fun (batch_a, batch_b) ->
      let config = Config.make ~check_constraints:true () in
      let a = session_exn ~config () in
      let b = Session.on_store (Session.store a) in
      let client s batch () =
        ignore (Session.begin_txn s);
        ignore (Session.run s batch);
        ignore (Session.commit s)
      in
      let da = Stdlib.Domain.spawn (client a batch_a) in
      let db_ = Stdlib.Domain.spawn (client b batch_b) in
      Stdlib.Domain.join da;
      Stdlib.Domain.join db_;
      let final = Session.db a in
      let empty = Schema.empty_db schema in
      let ab = serial_apply (serial_apply empty batch_a) batch_b in
      let ba = serial_apply (serial_apply empty batch_b) batch_a in
      Db.equal final ab || Db.equal final ba)

(* --- budget exhaustion is a structured error, not a crash --- *)

let test_budget_error () =
  let config = Config.make ~steps:1 () in
  let s = session_exn ~config () in
  (match Session.run s [ ("initiate", []); ("offer", [ v "cs101" ]) ] with
   | Ok _ -> Alcotest.fail "expected budget exhaustion"
   | Error f ->
     Alcotest.(check string)
       "structured budget code" "budget-steps"
       (Error.code_name f.Session.fail_error.Error.code));
  (* the store survives: state intact, the session keeps answering *)
  Alcotest.check db "state rolled to last good prefix" (Schema.empty_db schema)
    (Session.db s);
  (match Session.run s [ ("initiate", []) ] with
   | Ok _ -> Alcotest.fail "budget still armed"
   | Error f ->
     Alcotest.(check string)
       "every batch draws a fresh budget, same structured error" "budget-steps"
       (Error.code_name f.Session.fail_error.Error.code))

(* --- wire protocol: framing, dispatch, shutdown --- *)

let roundtrip_frames payloads =
  let path = Filename.temp_file "fds_proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      List.iter (Protocol.write_frame oc) payloads;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Protocol.read_frame ic with
            | Some p -> go (p :: acc)
            | None -> List.rev acc
          in
          go []))

let test_protocol_frames () =
  let payloads = [ "{\"op\": \"ping\"}"; "{}"; String.make 300 'x' ] in
  Alcotest.(check (list string)) "frames round-trip" payloads
    (roundtrip_frames payloads)

let has_prefix ~affix s =
  String.length s >= String.length affix
  && String.sub s 0 (String.length affix) = affix

let handle_exn session src =
  match Protocol.request_of_string src with
  | Error e -> Alcotest.failf "bad request: %s" (Error.to_string e)
  | Ok req -> Protocol.handle session req

let test_protocol_dispatch () =
  let s = session_exn ~config:(Config.make ~transactional:true ()) () in
  (match handle_exn s {|{"id": 1, "op": "ping"}|} with
   | Protocol.Reply r ->
     Alcotest.(check string)
       "ping" {|{"id": 1, "ok": true, "result": "pong"}|} r
   | Protocol.Final _ -> Alcotest.fail "ping must not stop the server");
  (match
     handle_exn s {|{"id": 2, "op": "run", "calls": ["offer(cs101)"]}|}
   with
   | Protocol.Reply r ->
     Alcotest.(check bool) "run ok" true
       (has_prefix ~affix:{|{"id": 2, "ok": true|} r)
   | Protocol.Final _ -> Alcotest.fail "run must not stop the server");
  (match
     handle_exn s {|{"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}|}
   with
   | Protocol.Reply r ->
     Alcotest.(check string)
       "query sees the committed state" {|{"id": 3, "ok": true, "result": true}|} r
   | Protocol.Final _ -> Alcotest.fail "query must not stop the server");
  (match handle_exn s {|{"id": 4, "op": "nope"}|} with
   | Protocol.Reply r ->
     Alcotest.(check bool) "unknown op is a structured error" true
       (has_prefix ~affix:{|{"id": 4, "ok": false|} r)
   | Protocol.Final _ -> Alcotest.fail "unknown op must not stop the server");
  (match handle_exn s {|{"id": 5, "op": "shutdown"}|} with
   | Protocol.Final _ -> ()
   | Protocol.Reply _ -> Alcotest.fail "shutdown must stop the server")

let suite =
  [
    Alcotest.test_case "planner cache stays warm across session calls" `Quick
      test_planner_cache_warm;
    Alcotest.test_case "transactions are isolated between sessions" `Quick
      test_txn_isolation;
    Alcotest.test_case "budget exhaustion is structured and survivable" `Quick
      test_budget_error;
    Alcotest.test_case "protocol frames round-trip" `Quick test_protocol_frames;
    Alcotest.test_case "protocol dispatch over a session" `Quick
      test_protocol_dispatch;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ concurrent_commits_serializable ]
