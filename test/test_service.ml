(* Tests for the session-based service layer: warm planner caches
   shared across session calls, transaction isolation between sessions
   over one store, serializable concurrent commits (two client domains
   against one store, checked against both serial reference orders),
   structured budget errors that leave the store alive, and the wire
   protocol's framing and dispatch. *)

open Fdbs_kernel
open Fdbs_rpr
module Session = Fdbs_service.Session
module Protocol = Fdbs_service.Protocol

let v s = Value.Sym s

let guarded_src =
  {|
schema guarded

relation OFFERED(course)
relation TAKES(student, course)

constraint takes_offered: forall s:student. forall c:course. (TAKES(s, c) -> OFFERED(c))

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc enroll_unchecked(s: student, c: course) = insert TAKES(s, c)

end-schema
|}

let schema = Rparser.schema_exn guarded_src
let db = Alcotest.testable Db.pp Db.equal

let session_exn ?config () =
  match Session.open_ ?config ~schema () with
  | Ok s -> s
  | Error e -> Alcotest.failf "open_ failed: %s" (Error.to_string e)

let run_exn s calls =
  match Session.run s calls with
  | Ok o -> o.Session.state
  | Error f -> Alcotest.failf "run failed: %s" (Error.to_string f.Session.fail_error)

(* --- planner cache stays warm across session calls --- *)

let test_planner_cache_warm () =
  let s = session_exn () in
  (* creation compiled every constraint and assignment already *)
  let h0, m0 = Planner.stats () in
  ignore (run_exn s [ ("initiate", []); ("offer", [ v "cs101" ]) ]);
  let h1, m1 = Planner.stats () in
  Alcotest.(check bool) "first batch hits the warm cache" true (h1 > h0);
  Alcotest.(check int) "no new plans compiled" m0 m1;
  (* a later batch re-evaluating the same assignments hits again;
     plain inserts never consult the planner, so route through initiate *)
  ignore (run_exn s [ ("initiate", []); ("offer", [ v "cs102" ]) ]);
  let h2, m2 = Planner.stats () in
  Alcotest.(check bool) "hits keep rising across calls" true (h2 > h1);
  Alcotest.(check int) "still no new plans" m1 m2

(* --- transaction isolation between sessions over one store --- *)

let test_txn_isolation () =
  let a = session_exn () in
  let b = Session.on_store (Session.store a) in
  (match Session.begin_txn a with
   | Ok () -> ()
   | Error e -> Alcotest.failf "begin: %s" (Error.to_string e));
  (match Session.run a [ ("offer", [ v "cs101" ]) ] with
   | Ok _ -> ()
   | Error f -> Alcotest.failf "txn run: %s" (Error.to_string f.Session.fail_error));
  let offered st = Relation.cardinal (Db.relation_exn st "OFFERED") in
  Alcotest.(check int) "A sees its uncommitted insert" 1 (offered (Session.db a));
  Alcotest.(check int) "B does not" 0 (offered (Session.db b));
  Alcotest.(check bool) "A is in a transaction" true (Session.in_txn a);
  (match Session.commit a with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "commit: %s" (Error.to_string e));
  Alcotest.(check int) "commit publishes to B" 1 (offered (Session.db b));
  (* a rolled-back transaction leaves no trace *)
  ignore (Session.begin_txn b);
  ignore (Session.run b [ ("offer", [ v "cs102" ]) ]);
  (match Session.rollback b with
   | Ok st -> Alcotest.(check int) "rollback restores the store" 1 (offered st)
   | Error e -> Alcotest.failf "rollback: %s" (Error.to_string e))

(* --- serializable concurrent commits (QCheck) --- *)

let call_gen =
  QCheck.Gen.(
    oneof
      [
        return ("initiate", []);
        map (fun c -> ("offer", [ v c ])) (oneofl [ "cs101"; "cs102" ]);
        map2
          (fun s c -> ("enroll_unchecked", [ v s; v c ]))
          (oneofl [ "ana"; "bob" ])
          (oneofl [ "cs101"; "cs102" ]);
      ])

let batch_gen = QCheck.Gen.(list_size (int_range 1 4) call_gen)

let pp_batch ppf calls =
  Fmt.(list ~sep:(any "; ") Journal.pp_call) ppf calls

let arbitrary_batches =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "A=[%a] B=[%a]" pp_batch a pp_batch b)
    QCheck.Gen.(pair batch_gen batch_gen)

(* The reference model: apply the batch as one constraint-checked
   transaction; a rollback is the identity. *)
let serial_apply st batch =
  let domain =
    Domain.of_list
      [
        ("course", [ v "cs101"; v "cs102" ]);
        ("student", [ v "ana"; v "bob" ]);
      ]
  in
  let env = Semantics.env ~domain schema in
  let txn = Txn.make ~check_constraints:true env in
  match Txn.run txn batch st with Ok st' -> st' | Error rb -> rb.Txn.restored

let concurrent_commits_serializable =
  QCheck.Test.make ~name:"concurrent commits are serializable" ~count:25
    arbitrary_batches (fun (batch_a, batch_b) ->
      let config = Config.make ~check_constraints:true () in
      let a = session_exn ~config () in
      let b = Session.on_store (Session.store a) in
      let client s batch () =
        ignore (Session.begin_txn s);
        ignore (Session.run s batch);
        ignore (Session.commit s)
      in
      let da = Stdlib.Domain.spawn (client a batch_a) in
      let db_ = Stdlib.Domain.spawn (client b batch_b) in
      Stdlib.Domain.join da;
      Stdlib.Domain.join db_;
      let final = Session.db a in
      let empty = Schema.empty_db schema in
      let ab = serial_apply (serial_apply empty batch_a) batch_b in
      let ba = serial_apply (serial_apply empty batch_b) batch_a in
      Db.equal final ab || Db.equal final ba)

(* --- budget exhaustion is a structured error, not a crash --- *)

let test_budget_error () =
  let config = Config.make ~steps:1 () in
  let s = session_exn ~config () in
  (match Session.run s [ ("initiate", []); ("offer", [ v "cs101" ]) ] with
   | Ok _ -> Alcotest.fail "expected budget exhaustion"
   | Error f ->
     Alcotest.(check string)
       "structured budget code" "budget-steps"
       (Error.code_name f.Session.fail_error.Error.code));
  (* the store survives: state intact, the session keeps answering *)
  Alcotest.check db "state rolled to last good prefix" (Schema.empty_db schema)
    (Session.db s);
  (match Session.run s [ ("initiate", []) ] with
   | Ok _ -> Alcotest.fail "budget still armed"
   | Error f ->
     Alcotest.(check string)
       "every batch draws a fresh budget, same structured error" "budget-steps"
       (Error.code_name f.Session.fail_error.Error.code))

(* --- wire protocol: framing, dispatch, shutdown --- *)

let roundtrip_frames payloads =
  let path = Filename.temp_file "fds_proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      List.iter (Protocol.write_frame oc) payloads;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Protocol.read_frame ic with
            | Some p -> go (p :: acc)
            | None -> List.rev acc
          in
          go []))

let test_protocol_frames () =
  let payloads = [ "{\"op\": \"ping\"}"; "{}"; String.make 300 'x' ] in
  Alcotest.(check (list string)) "frames round-trip" payloads
    (roundtrip_frames payloads)

let has_prefix ~affix s =
  String.length s >= String.length affix
  && String.sub s 0 (String.length affix) = affix

let handle_exn session src =
  match Protocol.request_of_string src with
  | Error (_, e) -> Alcotest.failf "bad request: %s" (Error.to_string e)
  | Ok req -> Protocol.handle session req

let test_protocol_dispatch () =
  let s = session_exn ~config:(Config.make ~transactional:true ()) () in
  (match handle_exn s {|{"id": 1, "op": "ping"}|} with
   | Protocol.Reply r ->
     Alcotest.(check string)
       "ping" {|{"id": 1, "ok": true, "result": "pong"}|} r
   | Protocol.Final _ -> Alcotest.fail "ping must not stop the server");
  (match
     handle_exn s {|{"id": 2, "op": "run", "calls": ["offer(cs101)"]}|}
   with
   | Protocol.Reply r ->
     Alcotest.(check bool) "run ok" true
       (has_prefix ~affix:{|{"id": 2, "ok": true|} r)
   | Protocol.Final _ -> Alcotest.fail "run must not stop the server");
  (match
     handle_exn s {|{"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}|}
   with
   | Protocol.Reply r ->
     Alcotest.(check string)
       "query sees the committed state" {|{"id": 3, "ok": true, "result": true}|} r
   | Protocol.Final _ -> Alcotest.fail "query must not stop the server");
  (match handle_exn s {|{"id": 4, "op": "nope"}|} with
   | Protocol.Reply r ->
     Alcotest.(check bool) "unknown op is a structured error" true
       (has_prefix ~affix:{|{"id": 4, "ok": false|} r)
   | Protocol.Final _ -> Alcotest.fail "unknown op must not stop the server");
  (match handle_exn s {|{"id": 5, "op": "shutdown"}|} with
   | Protocol.Final _ -> ()
   | Protocol.Reply _ -> Alcotest.fail "shutdown must stop the server")

(* ------------------------------------------------------------------ *)
(* replication: leader log, follower replica, failover, convergence    *)
(* ------------------------------------------------------------------ *)

module Replication = Fdbs_rpr.Replication
module Replica = Fdbs_service.Replica

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* A fresh path that does not exist yet: journals and snapshots are
   created by their writers. *)
let temp_path name =
  let path = Filename.temp_file ("fds_" ^ name) ".journal" in
  Sys.remove path;
  path

(* Remove a journal and every file its machinery may leave next to it. *)
let with_journals names f =
  let paths = List.map temp_path names in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_all ();
      List.iter
        (fun p ->
          List.iter
            (fun q -> if Sys.file_exists q then Sys.remove q)
            [
              p;
              p ^ ".tmp";
              Replication.snapshot_path p;
              Replication.snapshot_path p ^ ".tmp";
            ])
        paths)
    (fun () -> f paths)

(* A leader: a journaled transactional session plus the leadership
   log over the same journal (stamps epoch 1). *)
let leader_exn journal =
  let log =
    match Replication.lead ~journal with
    | Ok log -> log
    | Error e -> Alcotest.failf "lead: %s" (Error.to_string e)
  in
  let config = Config.make ~transactional:true ~journal () in
  (session_exn ~config (), log)

let replica_exn ?snapshot_every journal =
  let config = Config.make ~transactional:true ~journal () in
  match Session.Store.create ~config schema with
  | Error e -> Alcotest.failf "store: %s" (Error.to_string e)
  | Ok store -> (
      match Replica.recover ?snapshot_every ~store ~journal () with
      | Ok r -> r
      | Error e -> Alcotest.failf "recover: %s" (Error.to_string e))

(* Drive the replica to the leader's last offset, the way the server's
   follow loop does: refresh, fetch, apply, repeat. Apply failures
   (armed faults) are retried — faults are one-shot. *)
let catch_up log replica =
  (match Replication.refresh log with
   | Ok () -> ()
   | Error e -> Alcotest.failf "refresh: %s" (Error.to_string e));
  let rec go guard =
    if guard = 0 then Alcotest.fail "catch-up did not converge";
    if Replica.applied replica < Replication.last_offset log then (
      (match Replication.entries_from log (Replica.applied replica) with
       | [] ->
         (* behind the leader's truncation base: install its snapshot *)
         (match
            Replication.load_snapshot ~schema
              (Replication.snapshot_path (Replication.path log))
          with
          | Ok (Some snap, _) ->
            (match Replica.install_snapshot replica snap with
             | Ok () -> ()
             | Error e -> Alcotest.failf "install: %s" (Error.to_string e))
          | _ -> Alcotest.fail "no entries and no leader snapshot")
       | entries -> ignore (Replica.apply replica entries));
      go (guard - 1))
  in
  go 1000

let follower_db replica = Session.db (Replica.session replica)

(* --- basic convergence: leader commits stream to the follower --- *)

let test_replication_convergence () =
  with_journals [ "conv_l"; "conv_f" ] @@ fun paths ->
  let lj, fj = match paths with [ a; b ] -> (a, b) | _ -> assert false in
  let leader, log = leader_exn lj in
  ignore (run_exn leader [ ("initiate", []); ("offer", [ v "cs101" ]) ]);
  ignore (run_exn leader [ ("offer", [ v "cs102" ]) ]);
  let r = replica_exn fj in
  catch_up log r;
  Alcotest.check db "follower state equals leader state" (Session.db leader)
    (follower_db r);
  Alcotest.(check int) "applied the whole history" 2 (Replica.applied r);
  Alcotest.(check int)
    "carries the leader's epoch" (Replication.epoch log) (Replica.epoch r)

(* --- writes on a follower are rejected as structured Read_only --- *)

let test_read_only_rejection () =
  with_journals [ "ro" ] @@ fun paths ->
  let fj = List.hd paths in
  let r = replica_exn fj in
  let role = Protocol.Follower r in
  let handle src =
    match Protocol.request_of_string src with
    | Error (_, e) -> Alcotest.failf "bad request: %s" (Error.to_string e)
    | Ok req -> (
        match Protocol.handle ~role (Replica.session r) req with
        | Protocol.Reply resp -> resp
        | Protocol.Final _ -> Alcotest.fail "must not stop the server")
  in
  Alcotest.(check string)
    "the exact structured Read_only JSON"
    {|{"id": 1, "ok": false, "error": {"phase": "exec", "code": "read-only", "message": "read-only replica: writes must go to the leader", "context": {"op": "run"}}}|}
    (handle {|{"id": 1, "op": "run", "calls": ["offer(cs101)"]}|});
  (* every write op is covered; reads still answer *)
  List.iter
    (fun op ->
      let resp = handle (Fmt.str {|{"id": 2, "op": %S}|} op) in
      Alcotest.(check bool)
        (op ^ " rejected as read-only") true
        (has_prefix ~affix:{|{"id": 2, "ok": false|} resp
        && contains ~sub:{|"code": "read-only"|} resp))
    [ "begin"; "commit"; "rollback"; "replay" ];
  Alcotest.(check string)
    "reads still served" {|{"id": 3, "ok": true, "result": false}|}
    (handle {|{"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}|})

(* --- a fetch from an epoch ahead of the leader is rejected --- *)

let test_stale_epoch_fetch () =
  with_journals [ "stale" ] @@ fun paths ->
  let lj = List.hd paths in
  let leader, log = leader_exn lj in
  ignore (run_exn leader [ ("initiate", []) ]);
  let fetch ~epoch =
    match Protocol.request_of_string (Protocol.fetch_request ~id:(Json.Num 1.) ~from:0 ~epoch) with
    | Error (_, e) -> Alcotest.failf "bad fetch: %s" (Error.to_string e)
    | Ok req -> (
        match Protocol.handle ~role:(Protocol.Leader log) leader req with
        | Protocol.Reply resp -> resp
        | Protocol.Final _ -> Alcotest.fail "fetch must not stop the server")
  in
  Alcotest.(check bool)
    "an up-to-date fetch streams the history" true
    (contains ~sub:{|"ok": true|} (fetch ~epoch:1));
  let stale = fetch ~epoch:5 in
  Alcotest.(check bool)
    "epoch ahead of the leader is a structured stale-epoch error" true
    (has_prefix ~affix:{|{"id": 1, "ok": false|} stale
    && contains ~sub:{|"code": "stale-epoch"|} stale);
  (* and a standalone server does not serve fetch at all *)
  (match
     Protocol.request_of_string
       (Protocol.fetch_request ~id:(Json.Num 2.) ~from:0 ~epoch:1)
   with
   | Error (_, e) -> Alcotest.failf "bad fetch: %s" (Error.to_string e)
   | Ok req -> (
       match Protocol.handle leader req with
       | Protocol.Reply resp ->
         Alcotest.(check bool)
           "standalone rejects fetch" true
           (contains ~sub:{|"ok": false|} resp)
       | Protocol.Final _ -> Alcotest.fail "fetch must not stop the server"))

(* --- a torn snapshot never loses data --- *)

let test_torn_snapshot_recovery () =
  with_journals [ "torn_l"; "torn_f" ] @@ fun paths ->
  let lj, fj = match paths with [ a; b ] -> (a, b) | _ -> assert false in
  let leader, log = leader_exn lj in
  ignore (run_exn leader [ ("initiate", []) ]);
  ignore (run_exn leader [ ("offer", [ v "cs101" ]) ]);
  ignore (run_exn leader [ ("offer", [ v "cs102" ]) ]);
  ignore (run_exn leader [ ("enroll_unchecked", [ v "ana"; v "cs101" ]) ]);
  (* the only snapshot boundary (applied = 4) hits the torn window:
     the fault fires between fsync and rename. The fault is one-shot,
     so the period must make this the single boundary. *)
  Fault.arm ~site:"replication.snapshot" Fault.Abort;
  let r = replica_exn ~snapshot_every:4 fj in
  catch_up log r;
  Alcotest.check db "the replica converged anyway" (Session.db leader)
    (follower_db r);
  Alcotest.(check bool)
    "no snapshot was installed" false
    (Sys.file_exists (Replication.snapshot_path fj));
  Alcotest.(check int) "so nothing was truncated behind one" 0
    (Replica.snapshot_offset r);
  (* a restart falls back to the full (untruncated) replay *)
  Fault.disarm_all ();
  let r2 = replica_exn ~snapshot_every:100 fj in
  Alcotest.check db "recovered from the full journal" (Session.db leader)
    (follower_db r2);
  Alcotest.(check int) "all four entries re-ran" 4 (Replica.recovered_entries r2);
  (* a torn snapshot *file* (no end terminator) is unusable, not fatal:
     recovery warns and replays the full journal *)
  let oc = open_out (Replication.snapshot_path fj) in
  output_string oc "fdbs-snapshot 1\nepoch 1\noffset 2\nrel OFFERED\nt cs101\n";
  close_out oc;
  let r3 = replica_exn ~snapshot_every:100 fj in
  Alcotest.check db "torn snapshot file falls back to full replay"
    (Session.db leader) (follower_db r3);
  Alcotest.(check int) "full history re-ran" 4 (Replica.recovered_entries r3)

(* --- recovery is bounded by the snapshot period --- *)

let test_bounded_recovery () =
  with_journals [ "bound_l"; "bound_f" ] @@ fun paths ->
  let lj, fj = match paths with [ a; b ] -> (a, b) | _ -> assert false in
  let leader, log = leader_exn lj in
  ignore (run_exn leader [ ("initiate", []) ]);
  List.iter
    (fun c -> ignore (run_exn leader [ ("offer", [ v c ]) ]))
    [ "cs1"; "cs2"; "cs3"; "cs4"; "cs5"; "cs6"; "cs7" ];
  let r = replica_exn ~snapshot_every:3 fj in
  catch_up log r;
  Alcotest.(check int) "eight entries applied" 8 (Replica.applied r);
  Alcotest.(check int) "snapshot at the last boundary" 6
    (Replica.snapshot_offset r);
  (* restart: only the tail past the snapshot re-runs *)
  let r2 = replica_exn ~snapshot_every:3 fj in
  Alcotest.(check int) "recovery replayed only the tail" 2
    (Replica.recovered_entries r2);
  Alcotest.(check bool) "bounded by the snapshot period" true
    (Replica.recovered_entries r2 <= 3);
  Alcotest.(check int) "at the right offset" 8 (Replica.applied r2);
  Alcotest.check db "with the right state" (Session.db leader) (follower_db r2)

(* --- QCheck: any interleaving of commits, catch-up rounds, follower
   restarts and injected faults converges to the leader's state --- *)

type repl_op =
  | Commit of Journal.call list
  | Sync  (** one fetch/apply round *)
  | Restart  (** crash the follower, recover from snapshot + tail *)
  | Fault_snapshot  (** arm the torn-snapshot window *)
  | Fault_apply  (** arm a one-shot apply failure *)

let pp_repl_op ppf = function
  | Commit calls -> Fmt.pf ppf "commit[%a]" pp_batch calls
  | Sync -> Fmt.string ppf "sync"
  | Restart -> Fmt.string ppf "restart"
  | Fault_snapshot -> Fmt.string ppf "fault-snapshot"
  | Fault_apply -> Fmt.string ppf "fault-apply"

let repl_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun b -> Commit b) batch_gen);
        (3, return Sync);
        (1, return Restart);
        (1, return Fault_snapshot);
        (1, return Fault_apply);
      ])

let arbitrary_repl_ops =
  QCheck.make
    ~print:(Fmt.str "%a" (Fmt.Dump.list pp_repl_op))
    QCheck.Gen.(list_size (int_range 1 12) repl_op_gen)

let replication_converges =
  QCheck.Test.make ~name:"replicated interleavings converge to leader state"
    ~count:20 arbitrary_repl_ops (fun ops ->
      with_journals [ "prop_l"; "prop_f" ] @@ fun paths ->
      let lj, fj =
        match paths with [ a; b ] -> (a, b) | _ -> assert false
      in
      let leader, log = leader_exn lj in
      let replica = ref (replica_exn ~snapshot_every:2 fj) in
      let sync_once () =
        ignore (Replication.refresh log);
        match Replication.entries_from log (Replica.applied !replica) with
        | [] -> ()
        | entries -> ignore (Replica.apply !replica entries)
      in
      List.iter
        (fun op ->
          match op with
          | Commit calls -> ignore (Session.run leader calls)
          | Sync -> sync_once ()
          | Restart -> replica := replica_exn ~snapshot_every:2 fj
          | Fault_snapshot -> Fault.arm ~site:"replication.snapshot" Fault.Abort
          | Fault_apply -> Fault.arm ~site:"replication.apply" Fault.Abort)
        ops;
      (* quiesce: disarm and drive the follower to the leader's offset *)
      Fault.disarm_all ();
      catch_up log !replica;
      let converged = Db.equal (Session.db leader) (follower_db !replica) in
      (* and a fresh replay of the leader's journal agrees too *)
      let fresh = session_exn ~config:(Config.make ~transactional:true ()) () in
      let replay_agrees =
        match Session.replay fresh lj with
        | Ok rep -> Db.equal rep.Session.rep_state (Session.db leader)
        | Error e -> Alcotest.failf "fresh replay: %s" (Error.to_string e)
      in
      converged && replay_agrees)

(* ------------------------------------------------------------------ *)
(* gateway: framing edge cases, batch, admission, tenancy              *)
(* ------------------------------------------------------------------ *)

let read_all_from_string (s : string) =
  let path = Filename.temp_file "fds_frames" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Protocol.read_frame ic with
            | Some p -> go (p :: acc)
            | None -> List.rev acc
          in
          go []))

(* the blank-header regression: stray newlines between frames used to
   read as end-of-stream and silently drop the rest of the pipeline *)
let test_blank_header_skipped () =
  Alcotest.(check (list string))
    "blank lines between frames are skipped" [ "abc"; "de" ]
    (read_all_from_string "3\nabc\n\n\n2\nde\n")

let test_oversized_frame_rejected () =
  match read_all_from_string "999999999\nx\n" with
  | _ -> Alcotest.fail "oversized frame must raise"
  | exception Error.Error e ->
    Alcotest.(check bool) "structured length error" true
      (contains ~sub:"bad frame length" e.Error.message)

let test_missing_trailing_newline () =
  (* tolerated at EOF... *)
  Alcotest.(check (list string))
    "missing newline at EOF tolerated" [ "abc" ]
    (read_all_from_string "3\nabc");
  (* ...but mid-stream the byte after the payload must be the newline *)
  match read_all_from_string "3\nabcX2\nde\n" with
  | _ -> Alcotest.fail "mid-stream missing newline must raise"
  | exception Error.Error e ->
    Alcotest.(check bool) "structured framing error" true
      (contains ~sub:"trailing newline" e.Error.message)

let test_reader_pipelines () =
  let rfd, wfd = Unix.pipe () in
  let r = Protocol.Reader.create rfd in
  let send s = ignore (Unix.write_substring wfd s 0 (String.length s)) in
  send "3\nabc\n\n2\nde\n";
  (match Protocol.Reader.next r ~block:true with
   | `Frame p -> Alcotest.(check string) "first frame" "abc" p
   | _ -> Alcotest.fail "expected the first frame");
  (match Protocol.Reader.next r ~block:false with
   | `Frame p ->
     Alcotest.(check string) "second frame drained without blocking" "de" p
   | _ -> Alcotest.fail "expected the buffered second frame");
  (match Protocol.Reader.next r ~block:false with
   | `Pending -> ()
   | _ -> Alcotest.fail "a drained pipeline must report pending");
  send "4\nwxyz" (* missing trailing newline, then EOF *);
  Unix.close wfd;
  (match Protocol.Reader.next r ~block:true with
   | `Frame p -> Alcotest.(check string) "newline tolerated at EOF" "wxyz" p
   | _ -> Alcotest.fail "expected the EOF-terminated frame");
  (match Protocol.Reader.next r ~block:true with
   | `Eof -> ()
   | _ -> Alcotest.fail "expected a clean EOF");
  Unix.close rfd

(* the id-echo regression: malformed requests used to answer id: null
   even when the JSON parsed enough to carry the id *)
let test_error_id_echo () =
  (match Protocol.request_of_string {|{"id": 7, "nop": "ping"}|} with
   | Ok _ -> Alcotest.fail "missing op must be an error"
   | Error (id, e) ->
     Alcotest.(check string) "the id is echoed" "7" (Json.to_string id);
     Alcotest.(check bool) "op mentioned" true
       (contains ~sub:"op" e.Error.message));
  match Protocol.request_of_string "{nope" with
  | Ok _ -> Alcotest.fail "bad JSON must be an error"
  | Error (id, _) ->
    Alcotest.(check string) "null id when unparsable" "null" (Json.to_string id)

let test_batch_dispatch () =
  let s = session_exn ~config:(Config.make ~transactional:true ()) () in
  (match
     handle_exn s
       {|{"id": 9, "op": "batch", "requests": [{"id": 1, "op": "ping"}, {"id": 2, "op": "run", "calls": ["initiate()", "offer(cs101)"]}, {"id": 3, "op": "query", "wff": "exists c:course. OFFERED(c)"}]}|}
   with
   | Protocol.Final _ -> Alcotest.fail "batch must not stop the server"
   | Protocol.Reply r ->
     Alcotest.(check bool) "batch envelope ok" true
       (has_prefix ~affix:{|{"id": 9, "ok": true|} r);
     Alcotest.(check bool) "sub-responses carried in order" true
       (contains ~sub:{|{"id": 1, "ok": true, "result": "pong"}|} r);
     Alcotest.(check bool) "the query saw the run's commit" true
       (contains ~sub:{|{"id": 3, "ok": true, "result": true}|} r));
  (match
     handle_exn s
       {|{"id": 10, "op": "batch", "requests": [{"id": 1, "op": "batch", "requests": []}, {"id": 2, "op": "shutdown"}]}|}
   with
   | Protocol.Final _ -> Alcotest.fail "nested shutdown must not stop the server"
   | Protocol.Reply r ->
     Alcotest.(check bool) "envelope still ok" true
       (has_prefix ~affix:{|{"id": 10, "ok": true|} r);
     Alcotest.(check bool) "nesting rejected per item" true
       (contains ~sub:"not allowed inside a batch" r));
  match handle_exn s {|{"id": 11, "op": "batch"}|} with
  | Protocol.Final _ -> Alcotest.fail "empty batch must not stop the server"
  | Protocol.Reply r ->
    Alcotest.(check bool) "an empty batch is an error" true
      (has_prefix ~affix:{|{"id": 11, "ok": false|} r)

let test_batch_admission () =
  let s = session_exn () in
  let admitted = ref 0 in
  let admit () =
    incr admitted;
    if !admitted > 2 then
      Result.Error (Error.overloaded ~retry_after_s:0.5 "rate exceeded")
    else Ok ()
  in
  match
    Protocol.request_of_string
      {|{"id": 1, "op": "batch", "requests": [{"id": 1, "op": "ping"}, {"id": 2, "op": "ping"}, {"id": 3, "op": "ping"}]}|}
  with
  | Error (_, e) -> Alcotest.failf "bad request: %s" (Error.to_string e)
  | Ok req ->
    (match Protocol.handle ~admit s req with
     | Protocol.Final _ -> Alcotest.fail "batch must not stop the server"
     | Protocol.Reply r ->
       Alcotest.(check int) "each sub-request admitted once" 3 !admitted;
       Alcotest.(check bool) "first two served" true
         (contains ~sub:{|{"id": 1, "ok": true, "result": "pong"}|} r
         && contains ~sub:{|{"id": 2, "ok": true, "result": "pong"}|} r);
       Alcotest.(check bool) "third overloaded with a retry hint" true
         (contains ~sub:{|"code": "overloaded"|} r
         && contains ~sub:{|"retry-after-ms": "500"|} r))

let test_bucket () =
  let now = ref 0.0 in
  let b = Budget.Bucket.make ~clock:(fun () -> !now) ~rate:2.0 ~burst:2.0 () in
  Alcotest.(check bool) "burst admits" true (Budget.Bucket.take b 1.0 = Ok ());
  Alcotest.(check bool) "burst admits twice" true
    (Budget.Bucket.take b 1.0 = Ok ());
  (match Budget.Bucket.take b 1.0 with
   | Ok () -> Alcotest.fail "an empty bucket must reject"
   | Error wait ->
     Alcotest.(check (float 1e-6)) "retry hint is the refill time" 0.5 wait);
  now := !now +. 0.5;
  Alcotest.(check bool) "refills at the rate" true
    (Budget.Bucket.take b 1.0 = Ok ());
  (* post-charging actual spend can drive the bucket into debt *)
  Budget.Bucket.charge b 4.0;
  match Budget.Bucket.take b 0.0 with
  | Ok () -> Alcotest.fail "in debt even a free take must reject"
  | Error wait ->
    Alcotest.(check bool) "the debt must be paid off first" true (wait >= 1.9)

(* step-rate admission: a heavy first request is admitted (the bucket
   starts full) and its actual spend puts the store in debt, so the
   next requests are rejected with a structured Overloaded — reads
   included. Deterministic: paying off the debt takes seconds, the test
   runs in milliseconds. *)
let test_step_rate_overload () =
  let config = Config.make ~step_rate:1.0 () in
  let s = session_exn ~config () in
  ignore (run_exn s [ ("initiate", []); ("offer", [ v "cs101" ]) ]);
  (match Session.run s [ ("offer", [ v "cs102" ]) ] with
   | Ok _ -> Alcotest.fail "expected overload"
   | Error f ->
     Alcotest.(check string) "structured overloaded" "overloaded"
       (Error.code_name f.Session.fail_error.Error.code);
     Alcotest.(check bool) "carries a retry hint" true
       (List.mem_assoc "retry-after-ms" f.Session.fail_error.Error.context));
  match Session.query s "exists c:course. OFFERED(c)" with
  | Ok _ -> Alcotest.fail "reads are metered by the same bucket"
  | Error e ->
    Alcotest.(check string) "query overloaded too" "overloaded"
      (Error.code_name e.Error.code)

(* the multi-tenant substrate: independent stores over one schema share
   the planner cache (plan keys mix the schema fingerprint) while their
   states stay isolated *)
let test_store_planner_sharing () =
  let a = session_exn () in
  let _, m0 = Planner.stats () in
  let b = session_exn () in
  let _, m1 = Planner.stats () in
  Alcotest.(check int) "a second identical-schema store compiles nothing" m0 m1;
  ignore (run_exn a [ ("initiate", []); ("offer", [ v "cs101" ]) ]);
  let offered st = Relation.cardinal (Db.relation_exn st "OFFERED") in
  Alcotest.(check int) "writes land in A" 1 (offered (Session.db a));
  Alcotest.(check int) "and are invisible in B" 0 (offered (Session.db b))

let arbitrary_batch_requests =
  let sub_gen =
    QCheck.Gen.(
      oneof
        [
          map
            (fun id ->
              Json.Obj
                [ ("id", Json.Num (float_of_int id)); ("op", Json.Str "ping") ])
            (int_bound 100);
          map
            (fun w ->
              Json.Obj
                [
                  ("id", Json.Str w);
                  ("op", Json.Str "query");
                  ("wff", Json.Str "exists c:course. OFFERED(c)");
                ])
            (oneofl [ "a"; "b"; "c" ]);
          map
            (fun c ->
              Json.Obj
                [
                  ("op", Json.Str "run");
                  ("calls", Json.Arr [ Json.Str (Fmt.str "offer(%s)" c) ]);
                ])
            (oneofl [ "cs101"; "cs102" ]);
        ])
  in
  QCheck.make
    ~print:(fun reqs -> Json.to_string (Json.Arr reqs))
    QCheck.Gen.(list_size (int_range 1 8) sub_gen)

let batch_frames_roundtrip =
  QCheck.Test.make ~name:"random batch frames round-trip the framing layer"
    ~count:50 arbitrary_batch_requests (fun reqs ->
      let payload =
        Json.to_string
          (Json.Obj
             [
               ("id", Json.Num 1.);
               ("op", Json.Str "batch");
               ("requests", Json.Arr reqs);
             ])
      in
      match roundtrip_frames [ payload; payload ] with
      | [ p1; p2 ] ->
        p1 = payload && p2 = payload
        && (match Protocol.request_of_string p1 with
            | Ok req ->
              req.Protocol.op = "batch"
              && (match Json.field "requests" req.Protocol.body with
                 | Some (Json.Arr items) ->
                   List.length items = List.length reqs
                 | _ -> false)
            | Error _ -> false)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "planner cache stays warm across session calls" `Quick
      test_planner_cache_warm;
    Alcotest.test_case "transactions are isolated between sessions" `Quick
      test_txn_isolation;
    Alcotest.test_case "budget exhaustion is structured and survivable" `Quick
      test_budget_error;
    Alcotest.test_case "protocol frames round-trip" `Quick test_protocol_frames;
    Alcotest.test_case "protocol dispatch over a session" `Quick
      test_protocol_dispatch;
    Alcotest.test_case "replication: follower converges on the leader" `Quick
      test_replication_convergence;
    Alcotest.test_case "replication: follower rejects writes as read-only"
      `Quick test_read_only_rejection;
    Alcotest.test_case "replication: stale-epoch fetch is rejected" `Quick
      test_stale_epoch_fetch;
    Alcotest.test_case "replication: torn snapshot never loses data" `Quick
      test_torn_snapshot_recovery;
    Alcotest.test_case "replication: recovery is snapshot-bounded" `Quick
      test_bounded_recovery;
    Alcotest.test_case "framing: blank header lines are skipped" `Quick
      test_blank_header_skipped;
    Alcotest.test_case "framing: oversized frames are rejected" `Quick
      test_oversized_frame_rejected;
    Alcotest.test_case "framing: trailing newline required mid-stream" `Quick
      test_missing_trailing_newline;
    Alcotest.test_case "framing: the reader drains pipelines" `Quick
      test_reader_pipelines;
    Alcotest.test_case "protocol: error replies echo the request id" `Quick
      test_error_id_echo;
    Alcotest.test_case "protocol: batch dispatch" `Quick test_batch_dispatch;
    Alcotest.test_case "protocol: batch admits per sub-request" `Quick
      test_batch_admission;
    Alcotest.test_case "admission: token bucket takes, waits, and debts" `Quick
      test_bucket;
    Alcotest.test_case "admission: step-rate overload is structured" `Quick
      test_step_rate_overload;
    Alcotest.test_case "tenancy: stores share plans, isolate state" `Quick
      test_store_planner_sharing;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        concurrent_commits_serializable;
        replication_converges;
        batch_frames_roundtrip;
      ]
