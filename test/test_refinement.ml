(* Tests for the refinement layer: the interpretation I and first-to-
   second level checks (paper 4.3-4.4), and the mapping K and second-to-
   third level checks (5.3-5.4) - including failure injection: broken
   specifications and procedures must be caught. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_temporal
open Fdbs_rpr
open Fdbs_refine

let v s = Value.Sym s

(* --- the three levels of the running example ----------------------- *)

let sg1 =
  Signature.make
    ~sorts:[ "course"; "student" ]
    ~funcs:[]
    ~preds:
      [
        Signature.db_pred "offered" [ "course" ];
        Signature.db_pred "takes" [ "student"; "course" ];
      ]

let t1 =
  Ttheory.make_exn ~name:"university-info" ~signature:sg1
    ~axioms:
      [
        Ttheory.axiom "static"
          (Tparser.formula_exn sg1
             "~(exists s:student, c:course. takes(s, c) & ~offered(c))");
        Ttheory.axiom "transition"
          (Tparser.formula_exn sg1
             "~(exists s:student, c:course. dia (takes(s, c) & dia ~(exists c2:course. takes(s, c2))))");
      ]

let university_alg_src =
  {|
spec university
sort course
sort student
query offered : course -> bool
query takes : student, course -> bool
update initiate
update offer : course
update cancel : course
update enroll : student, course
update transfer : student, course, course
eq q1: offered(c, initiate) = false
eq q2: takes(s, c, initiate) = false
eq q3: offered(c, offer(c, U)) = true
eq q4: c /= c2 => offered(c, offer(c2, U)) = offered(c, U)
eq q5: takes(s, c, offer(c2, U)) = takes(s, c, U)
eq q6: offered(c, cancel(c, U)) = (exists s:student. takes(s, c, U))
eq q7: c /= c2 => offered(c, cancel(c2, U)) = offered(c, U)
eq q8: takes(s, c, cancel(c2, U)) = takes(s, c, U)
eq q9: offered(c, enroll(s, c2, U)) = offered(c, U)
eq q10: takes(s, c, enroll(s, c, U)) = offered(c, U)
eq q11: s /= s2 | c /= c2 => takes(s, c, enroll(s2, c2, U)) = takes(s, c, U)
eq q12: offered(c, transfer(s, c2, c3, U)) = offered(c, U)
eq q13: takes(s, c2, transfer(s, c, c2, U)) =
        ((offered(c2, U) & takes(s, c, U)) | takes(s, c2, U))
eq q14: takes(s, c, transfer(s, c, c2, U)) =
        ((~offered(c2, U) | takes(s, c2, U)) & takes(s, c, U))
eq q15: s /= s2 | (c /= c2 & c /= c3) =>
        takes(s, c, transfer(s2, c2, c3, U)) = takes(s, c, U)
|}

let t2 = Aparser.spec_exn university_alg_src

let t3_src =
  {|
schema university
relation OFFERED(course)
relation TAKES(student, course)
proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})
proc offer(c: course) = insert OFFERED(c)
proc cancel(c: course) =
  if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)
proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)
proc transfer(s: student, c: course, c2: course) =
  if (TAKES(s, c) & ~TAKES(s, c2) & OFFERED(c2))
  then (delete TAKES(s, c) ; insert TAKES(s, c2))
end-schema
|}

let t3 = Rparser.schema_exn t3_src

let domain =
  Domain.of_list
    [ ("course", [ v "cs101"; v "cs102" ]); ("student", [ v "ana"; v "bob" ]) ]

let small_domain =
  Domain.of_list [ ("course", [ v "cs101" ]); ("student", [ v "ana" ]) ]

(* --- interpretation I ----------------------------------------------- *)

let interp = Interp12.canonical_exn sg1 t2.Spec.signature

let test_interp_check () =
  Alcotest.(check (list string)) "interpretation clean" []
    (Interp12.check interp sg1 t2.Spec.signature)

let test_interp_apply () =
  let trace = Strace.apply "offer" [ v "cs101" ] (Strace.init "initiate") in
  let term = Strace.to_aterm t2.Spec.signature trace in
  match Interp12.apply interp "offered" [ v "cs101" ] term with
  | Error e -> Alcotest.fail e
  | Ok img ->
    (match Eval.holds ~domain t2 img with
     | Ok b -> Alcotest.(check bool) "image evaluates like query" true b
     | Error e -> Alcotest.failf "%a" Eval.pp_error e)

let test_canonical_fails_on_mismatch () =
  (* a signature with a db-predicate lacking a homonym query *)
  let sg_bad =
    Signature.make ~sorts:[ "course" ] ~funcs:[]
      ~preds:[ Signature.db_pred "ghost" [ "course" ] ]
  in
  match Interp12.canonical sg_bad t2.Spec.signature with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "canonical interpretation should fail"

(* --- first-to-second level refinement ------------------------------- *)

let test_check12_passes () =
  let report = Check12.check ~domain:small_domain t1 t2 interp in
  Alcotest.(check bool)
    (Fmt.str "%a" Check12.pp_report report)
    true (Check12.ok report);
  Alcotest.(check int) "3 states over 1x1" 3 report.Check12.states

let test_check12_passes_2x2 () =
  let report = Check12.check ~domain t1 t2 interp in
  Alcotest.(check bool)
    (Fmt.str "%a" Check12.pp_report report)
    true (Check12.ok report);
  Alcotest.(check int) "25 states over 2x2" 25 report.Check12.states

let test_valid_states_enumeration () =
  (* over 1 course x 1 student: {} ; {offered} ; {offered,takes} *)
  Alcotest.(check int) "3 valid states" 3
    (List.length (Check12.valid_states t1 ~domain:small_domain))

(* Failure injection: an enroll without the offered-guard violates the
   static constraint. *)
let broken_spec =
  let src =
    Str_replace.replace university_alg_src
      "eq q10: takes(s, c, enroll(s, c, U)) = offered(c, U)"
      "eq q10: takes(s, c, enroll(s, c, U)) = true"
  in
  Aparser.spec_exn src

let test_check12_catches_static_violation () =
  let report = Check12.check ~domain:small_domain t1 broken_spec interp in
  Alcotest.(check bool) "broken spec rejected" false (Check12.ok report);
  (* specifically the static axiom must fail somewhere *)
  let static_fails =
    List.exists
      (fun (r : Check.report) -> r.Check.axiom = "static" && r.Check.failures <> [])
      report.Check12.axiom_reports
  in
  Alcotest.(check bool) "static axiom flagged" true static_fails

(* Failure injection: a drop update that removes a student's last course
   violates the transition constraint. *)
let dropping_spec =
  let src =
    university_alg_src
    ^ {|
update drop : student, course
eq d1: offered(c, drop(s, c2, U)) = offered(c, U)
eq d2: takes(s, c, drop(s, c, U)) = false
eq d3: s /= s2 | c /= c2 => takes(s, c, drop(s2, c2, U)) = takes(s, c, U)
|}
  in
  Aparser.spec_exn src

let test_check12_catches_transition_violation () =
  let report = Check12.check ~domain:small_domain t1 dropping_spec interp in
  Alcotest.(check bool) "dropping spec rejected" false (Check12.ok report);
  let transition_fails =
    List.exists
      (fun (r : Check.report) -> r.Check.axiom = "transition" && r.Check.failures <> [])
      report.Check12.axiom_reports
  in
  Alcotest.(check bool) "transition axiom flagged" true transition_fails

(* Failure injection: remove the offer update; offered-but-empty states
   become unreachable. *)
let no_offer_spec =
  let src =
    {|
spec crippled
sort course
sort student
query offered : course -> bool
query takes : student, course -> bool
update initiate
eq q1: offered(c, initiate) = false
eq q2: takes(s, c, initiate) = false
|}
  in
  Aparser.spec_exn src

let test_check12_catches_unreachable_valid () =
  let report = Check12.check ~domain:small_domain t1 no_offer_spec interp in
  Alcotest.(check bool) "crippled spec rejected" false (Check12.ok report);
  Alcotest.(check int) "two valid states unreachable" 2
    (List.length report.Check12.unreachable_valid)

(* --- second-to-third level refinement ------------------------------- *)

let mapping = Interp23.canonical_exn t2.Spec.signature t3

let test_mapping_check () =
  Alcotest.(check (list string)) "mapping clean" []
    (Interp23.check mapping t2.Spec.signature t3)

let test_check23_passes () =
  let env = Semantics.env ~domain:small_domain t3 in
  let report = Check23.check t2 env mapping in
  Alcotest.(check bool)
    (Fmt.str "%a" Check23.pp_report report)
    true (Check23.ok report);
  Alcotest.(check int) "3 reachable databases" 3 report.Check23.databases

let test_check23_passes_2x2 () =
  let env = Semantics.env ~domain t3 in
  let report = Check23.check t2 env mapping in
  Alcotest.(check bool)
    (Fmt.str "%a" Check23.pp_report report)
    true (Check23.ok report);
  Alcotest.(check int) "25 reachable databases" 25 report.Check23.databases

(* Failure injection: a cancel procedure without its guard violates
   equation q6 (cancel must be blocked while someone takes the course). *)
let broken_t3 =
  Rparser.schema_exn
    (Str_replace.replace t3_src
       {|proc cancel(c: course) =
  if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)|}
       {|proc cancel(c: course) = delete OFFERED(c)|})

let test_check23_catches_broken_procedure () =
  let env = Semantics.env ~domain:small_domain broken_t3 in
  let mapping = Interp23.canonical_exn t2.Spec.signature broken_t3 in
  let report = Check23.check t2 env mapping in
  Alcotest.(check bool) "broken cancel rejected" false (Check23.ok report);
  Alcotest.(check bool) "q6 among violations" true
    (List.exists
       (fun (viol : Check23.violation) -> viol.Check23.equation = "q6")
       report.Check23.violations)

let test_check23_catches_missing_proc () =
  (* a schema lacking the transfer procedure *)
  let t3_small =
    Rparser.schema_exn
      {|
schema university
relation OFFERED(course)
relation TAKES(student, course)
proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})
end-schema
|}
  in
  match Interp23.canonical t2.Spec.signature t3_small with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing procedures should fail the canonical mapping"

let suite =
  [
    Alcotest.test_case "interpretation I checks" `Quick test_interp_check;
    Alcotest.test_case "interpretation I applies" `Quick test_interp_apply;
    Alcotest.test_case "canonical I mismatch" `Quick test_canonical_fails_on_mismatch;
    Alcotest.test_case "check12 passes (1x1)" `Quick test_check12_passes;
    Alcotest.test_case "check12 passes (2x2)" `Slow test_check12_passes_2x2;
    Alcotest.test_case "valid state enumeration" `Quick test_valid_states_enumeration;
    Alcotest.test_case "check12 catches static violation" `Quick
      test_check12_catches_static_violation;
    Alcotest.test_case "check12 catches transition violation" `Quick
      test_check12_catches_transition_violation;
    Alcotest.test_case "check12 catches unreachable valid" `Quick
      test_check12_catches_unreachable_valid;
    Alcotest.test_case "mapping K checks" `Quick test_mapping_check;
    Alcotest.test_case "check23 passes (1x1)" `Quick test_check23_passes;
    Alcotest.test_case "check23 passes (2x2)" `Slow test_check23_passes_2x2;
    Alcotest.test_case "check23 catches broken procedure" `Quick
      test_check23_catches_broken_procedure;
    Alcotest.test_case "check23 catches missing procedure" `Quick
      test_check23_catches_missing_proc;
  ]

(* --- the syntactic wff translation through I (Section 4.3) ---------- *)

let test_translate_static_axiom () =
  let now = { Term.vname = "sigma"; vsort = Sort.state } in
  let static = List.hd t1.Ttheory.axioms in
  match Translate12.wff interp ~now static.Ttheory.ax_formula with
  | Error e -> Alcotest.fail e
  | Ok sf ->
    (* the translation mentions no F (static) and holds over the graph *)
    let g = Reach.explore_exn ~domain:small_domain t2 in
    Alcotest.(check bool) "holds at all states" true
      (Sformula.eval g t2 (Sformula.Forall_state (now, sf)))

let test_translate_agrees_with_kripke_route () =
  let g = Reach.explore_exn ~domain:small_domain t2 in
  match Translate12.check_axioms t1 t2 interp g with
  | Error e -> Alcotest.fail e
  | Ok verdicts ->
    Alcotest.(check (list (pair string bool)))
      "both axioms hold via translation"
      [ ("static", true); ("transition", true) ]
      verdicts;
    (* and the direct Kripke route agrees *)
    let report = Check12.check ~domain:small_domain t1 t2 interp in
    Alcotest.(check bool) "direct route agrees" true (Check12.ok report)

let test_translate_catches_violation () =
  let g = Reach.explore_exn ~domain:small_domain dropping_spec in
  match Translate12.check_axioms t1 dropping_spec interp g with
  | Error e -> Alcotest.fail e
  | Ok verdicts ->
    Alcotest.(check (option bool)) "transition axiom fails via translation"
      (Some false)
      (List.assoc_opt "transition" verdicts)

let test_translated_formula_shape () =
  let now = { Term.vname = "sigma"; vsort = Sort.state } in
  let transition = List.nth t1.Ttheory.axioms 1 in
  match Translate12.wff interp ~now transition.Ttheory.ax_formula with
  | Error e -> Alcotest.fail e
  | Ok sf ->
    (* dia became an existential state quantifier guarded by F *)
    let rec count_f = function
      | Sformula.F _ -> 1
      | Sformula.True | Sformula.False | Sformula.Holds _ -> 0
      | Sformula.Not f -> count_f f
      | Sformula.And (f, g) | Sformula.Or (f, g) | Sformula.Imp (f, g)
      | Sformula.Iff (f, g) -> count_f f + count_f g
      | Sformula.Forall_param (_, f) | Sformula.Exists_param (_, f)
      | Sformula.Forall_state (_, f) | Sformula.Exists_state (_, f) -> count_f f
    in
    Alcotest.(check int) "two F atoms (two dias)" 2 (count_f sf)

let suite =
  suite
  @ [
      Alcotest.test_case "translate static axiom" `Quick test_translate_static_axiom;
      Alcotest.test_case "translation agrees with Kripke route" `Quick
        test_translate_agrees_with_kripke_route;
      Alcotest.test_case "translation catches violation" `Quick
        test_translate_catches_violation;
      Alcotest.test_case "translated formula shape" `Quick test_translated_formula_shape;
    ]

(* --- synthesis of procedures from structured descriptions (Sec 5.2) - *)

let synthesized_schema =
  match
    Synthesize.schema ~name:"university_synth" t2.Spec.signature
      Fdbs.University.descriptions
  with
  | Ok sc -> sc
  | Error e -> invalid_arg e.Fdbs_kernel.Error.message

let test_synthesized_well_formed () =
  Alcotest.(check (list string)) "no schema errors" [] (Schema.check synthesized_schema)

let test_synthesized_refines_hand_equations () =
  let env = Semantics.env ~domain:small_domain synthesized_schema in
  let mapping = Interp23.canonical_exn t2.Spec.signature synthesized_schema in
  let report = Check23.check t2 env mapping in
  Alcotest.(check bool)
    (Fmt.str "%a" Check23.pp_report report)
    true (Check23.ok report)

let test_synthesized_refines_derived_equations () =
  let derived = Fdbs.University.derived_functions in
  let env = Semantics.env ~domain:small_domain synthesized_schema in
  let mapping = Interp23.canonical_exn derived.Spec.signature synthesized_schema in
  let report = Check23.check derived env mapping in
  Alcotest.(check bool)
    (Fmt.str "%a" Check23.pp_report report)
    true (Check23.ok report)

let test_synthesized_agrees_with_hand_schema () =
  (* the synthesized procedures and the paper's Section 5.2 schema
     compute the same databases on every trace *)
  let env_synth = Semantics.env ~domain synthesized_schema in
  let env_hand = Semantics.env ~domain t3 in
  let calls =
    [
      ("initiate", []);
      ("offer", [ v "cs101" ]);
      ("offer", [ v "cs102" ]);
      ("enroll", [ v "ana"; v "cs101" ]);
      ("transfer", [ v "ana"; v "cs101"; v "cs102" ]);
      ("cancel", [ v "cs101" ]);
      ("cancel", [ v "cs102" ]);
    ]
  in
  let run env schema =
    List.fold_left
      (fun db (name, args) -> Semantics.call_det_exn env name args db)
      (Schema.empty_db schema) calls
  in
  let a = run env_synth synthesized_schema in
  let b = run env_hand t3 in
  Alcotest.(check bool) "same final database" true (Db.equal a b)

let test_synthesized_schema_text_roundtrip () =
  (* the printed synthesized schema is parseable and W-grammar valid *)
  let src = Fmt.str "%a" Schema.pp synthesized_schema in
  (match Rparser.schema src with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "printed schema does not reparse: %s" e.Fdbs_kernel.Error.message);
  Alcotest.(check bool) "W-grammar accepts printed schema" true
    (Fdbs_wgrammar.Rpr_grammar.recognizes src)

let suite =
  suite
  @ [
      Alcotest.test_case "synthesized schema well-formed" `Quick
        test_synthesized_well_formed;
      Alcotest.test_case "synthesized schema refines hand equations" `Quick
        test_synthesized_refines_hand_equations;
      Alcotest.test_case "synthesized schema refines derived equations" `Quick
        test_synthesized_refines_derived_equations;
      Alcotest.test_case "synthesized agrees with hand schema" `Quick
        test_synthesized_agrees_with_hand_schema;
      Alcotest.test_case "synthesized schema text roundtrips" `Slow
        test_synthesized_schema_text_roundtrip;
    ]

let test_transition_coverage () =
  match Check12.transition_coverage t1 t2 interp ~domain:small_domain with
  | Error e -> Alcotest.fail e
  | Ok (realized, valid) ->
    (* the paper's remark: strictly fewer transitions are realized than
       are valid (e.g. no update jumps from empty to offered+enrolled) *)
    Alcotest.(check bool) "some transitions realized" true (realized > 0);
    Alcotest.(check bool) "not all valid transitions realized" true (realized < valid)

let suite =
  suite
  @ [ Alcotest.test_case "transition coverage gap" `Quick test_transition_coverage ]

(* --- the dynamic-logic route to 2->3 refinement (Sec 5.3, deferred) -- *)

let test_dynamic23_passes () =
  let env = Semantics.env ~domain:small_domain t3 in
  match Dynamic23.check t2 env mapping with
  | Error e -> Alcotest.fail e.Fdbs_kernel.Error.message
  | Ok verdicts ->
    Alcotest.(check int) "all 15 equations translated" 15 (List.length verdicts);
    List.iter
      (fun (vd : Dynamic23.verdict) ->
        Alcotest.(check bool)
          (Fmt.str "%a" Dynamic23.pp_verdict vd)
          true vd.Dynamic23.dyn_holds)
      verdicts

let test_dynamic23_agrees_with_semantic_route () =
  (* the syntactic (dynamic logic) and semantic (Check23) routes agree
     on the broken schema: both blame equation q6 *)
  let env = Semantics.env ~domain:small_domain broken_t3 in
  let mapping = Interp23.canonical_exn t2.Spec.signature broken_t3 in
  (match Dynamic23.check t2 env mapping with
   | Error e -> Alcotest.fail e.Fdbs_kernel.Error.message
   | Ok verdicts ->
     Alcotest.(check bool) "q6 violated via dynamic logic" false
       (List.find (fun (v : Dynamic23.verdict) -> v.Dynamic23.dyn_equation = "q6")
          verdicts)
         .Dynamic23.dyn_holds);
  let semantic = Check23.check t2 env mapping in
  Alcotest.(check bool) "semantic route also fails" false (Check23.ok semantic)

let test_dynamic23_formula_shape () =
  match Dynamic23.of_equation mapping t2.Spec.signature (List.nth t2.Spec.equations 5) with
  | Error e -> Alcotest.fail e
  | Ok f ->
    (* q6's translation quantifies c and contains box and diamond *)
    let rec count_boxes = function
      | Dynamic.Box (_, g) -> 1 + count_boxes g
      | Dynamic.Diamond (_, g) -> count_boxes g
      | Dynamic.Not g | Dynamic.Forall (_, g) | Dynamic.Exists (_, g) -> count_boxes g
      | Dynamic.And (g, h) | Dynamic.Or (g, h) | Dynamic.Imp (g, h)
      | Dynamic.Iff (g, h) -> count_boxes g + count_boxes h
      | Dynamic.Atom _ -> 0
    in
    Alcotest.(check int) "two boxes (positive and negative case)" 2 (count_boxes f)

let suite =
  suite
  @ [
      Alcotest.test_case "dynamic23 validates all equations" `Quick test_dynamic23_passes;
      Alcotest.test_case "dynamic23 agrees with semantic route" `Quick
        test_dynamic23_agrees_with_semantic_route;
      Alcotest.test_case "dynamic23 formula shape" `Quick test_dynamic23_formula_shape;
    ]
