(* A fourth domain: warehouse stock levels, exercising the parts of the
   algebraic formalism the other examples do not touch — interpreted
   (non-constant) parameter operators and integer parameter values.

   Run with:  dune exec examples/inventory.exe

   The quantity sort qty carries the integers 0..3; succ_qty/pred_qty
   are interpreted parameter operators (capped successor/floored
   predecessor). The single query stock(i, q, U) holds iff item i's
   level is exactly q, so the equations thread levels through the
   parameter operators — the paper's "parameter sorts are endowed with
   their own function symbols" in action. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra

let max_level = 3

let qty n = Value.Int n

let signature =
  Asig.make_exn
    ~param_sorts:[ "item"; "qty" ]
    ~param_ops:
      [
        Asig.op "widget" [] "item";
        Asig.op "gadget" [] "item";
        Asig.op "zero" [] "qty";
        Asig.op "max_qty" [] "qty";
        Asig.op "succ_qty" [ "qty" ] "qty";
        Asig.op "pred_qty" [ "qty" ] "qty";
      ]
    ~queries:[ Asig.query "stock" [ "item"; "qty" ] Sort.bool ]
    ~updates:
      [
        Asig.initializer_ "initiate";
        Asig.update "receive" [ "item" ];
        Asig.update "ship" [ "item" ];
      ]

let param_interp =
  let as_int = function Value.Int n -> n | _ -> invalid_arg "qty expected" in
  [
    ("zero", fun _ -> qty 0);
    ("max_qty", fun _ -> qty max_level);
    ("succ_qty", fun args ->
      match args with
      | [ q ] -> qty (min max_level (as_int q + 1))
      | _ -> invalid_arg "succ_qty");
    ("pred_qty", fun args ->
      match args with
      | [ q ] -> qty (max 0 (as_int q - 1))
      | _ -> invalid_arg "pred_qty");
  ]

let base_domain =
  Domain.of_list
    [
      ("item", [ Value.Sym "widget"; Value.Sym "gadget" ]);
      ("qty", List.init (max_level + 1) qty);
    ]

(* The equations, built with the library constructors. *)
let equations =
  let item v = { Term.vname = v; vsort = "item" } in
  let qv v = { Term.vname = v; vsort = "qty" } in
  let i = Aterm.Var (item "i") and i2 = Aterm.Var (item "i2") in
  let q = Aterm.Var (qv "q") in
  let u = Aterm.Var Sdesc.state_var in
  let stock i q st = Aterm.App ("stock", [ i; q; st ]) in
  let zero = Aterm.App ("zero", []) in
  let maxq = Aterm.App ("max_qty", []) in
  let succ t = Aterm.App ("succ_qty", [ t ]) in
  let pred t = Aterm.App ("pred_qty", [ t ]) in
  let receive i st = Aterm.App ("receive", [ i; st ]) in
  let ship i st = Aterm.App ("ship", [ i; st ]) in
  [
    (* initially every item's level is zero *)
    Equation.make "init" (stock i q (Aterm.App ("initiate", []))) (Aterm.eq q zero);
    (* receiving bumps the level, saturating at max_qty *)
    Equation.make "recv_same"
      (stock i q (receive i u))
      (Aterm.or_
         (Aterm.and_ (Aterm.eq q maxq) (stock i maxq u))
         (Aterm.and_ (Aterm.neq q zero) (stock i (pred q) u)));
    Equation.make ~cond:(Aterm.neq i i2) "recv_other"
      (stock i q (receive i2 u))
      (stock i q u);
    (* shipping lowers the level, floored at zero *)
    Equation.make "ship_same"
      (stock i q (ship i u))
      (Aterm.or_
         (Aterm.and_ (Aterm.eq q zero)
            (Aterm.or_ (stock i zero u) (stock i (succ zero) u)))
         (Aterm.conj
            [ Aterm.neq q zero; Aterm.neq q maxq; stock i (succ q) u ]));
    Equation.make ~cond:(Aterm.neq i i2) "ship_other"
      (stock i q (ship i2 u))
      (stock i q u);
  ]

let spec =
  Spec.make_exn ~param_interp ~base_domain ~name:"inventory" ~signature ~equations ()

let level trace item_name =
  (* the unique level q with stock(item, q) true *)
  let hits =
    List.filter
      (fun n ->
        match
          Eval.query_on_trace ~domain:base_domain spec ~q:"stock"
            ~params:[ Value.Sym item_name; qty n ] trace
        with
        | Ok (Value.Bool b) -> b
        | _ -> false)
      (List.init (max_level + 1) Fun.id)
  in
  match hits with
  | [ n ] -> n
  | _ -> invalid_arg (Fmt.str "item %s has %d levels" item_name (List.length hits))

let () =
  Fmt.pr "== Warehouse stock: interpreted parameter operators ==@.@.";
  Fmt.pr "%a@.@." Spec.pp spec;

  Fmt.pr "== Sufficient completeness ==@.";
  let report = Completeness.check ~depth:3 spec in
  Fmt.pr "%a@.@." Completeness.pp_report report;
  if not (Completeness.is_complete report) then exit 1;

  Fmt.pr "== Confluence ==@.";
  (match Confluence.check ~depth:2 spec with
   | Error e -> Fmt.epr "%a@." Eval.pp_error e; exit 1
   | Ok r ->
     Fmt.pr "%a@.@." Confluence.pp_report r;
     if not (Confluence.is_confluent r) then exit 1);

  Fmt.pr "== A stock ledger ==@.";
  let t0 = Strace.init "initiate" in
  let steps =
    [
      ("receive", "widget"); ("receive", "widget"); ("receive", "gadget");
      ("receive", "widget"); ("receive", "widget");  (* saturates at 3 *)
      ("ship", "widget"); ("ship", "gadget"); ("ship", "gadget");  (* floors at 0 *)
    ]
  in
  let final =
    List.fold_left
      (fun tr (u, it) ->
        let tr = Strace.apply u [ Value.Sym it ] tr in
        Fmt.pr "after %s(%s): widget=%d gadget=%d@." u it (level tr "widget")
          (level tr "gadget");
        tr)
      t0 steps
  in
  assert (level final "widget" = 2);
  assert (level final "gadget" = 0);

  Fmt.pr "@.== Reachability over the 2-item domain ==@.";
  let g = Reach.explore_exn spec in
  Fmt.pr "%a@." Reach.pp_stats g;
  (* every item independently at one of 4 levels: 16 states *)
  assert (Reach.num_states g = 16);
  Fmt.pr "observable with the stock query alone: %b@." (Observability.observable g);
  Fmt.pr "inventory: all good.@."
