(* The paper's constructive methodology (Section 4.2): start from
   structured descriptions of the updates — intended effects,
   pre-conditions, side-effects, not-affected — and *derive* the
   conditional equations, correct with respect to the description by
   construction. Then verify sufficient completeness and compare with
   the hand-written equations of the paper.

   Run with:  dune exec examples/derive_by_construction.exe *)

open Fdbs
open Fdbs_kernel
open Fdbs_algebra

let () =
  Fmt.pr "== Structured descriptions (Section 4.2) ==@.@.";
  List.iter (fun d -> Fmt.pr "%a@.@." Sdesc.pp d) University.descriptions;

  Fmt.pr "== Derived conditional equations ==@.@.";
  let sg = University.functions.Spec.signature in
  let eqs = Derive.equations_exn sg University.descriptions in
  List.iter (fun eq -> Fmt.pr "  %a@." Equation.pp eq) eqs;
  Fmt.pr "@.%d equations derived (the paper hand-writes 15; the derived
set is the unsimplified form, one frame equation per query/update pair
plus effect/no-effect pairs guarded by the pre-conditions).@.@."
    (List.length eqs);

  Fmt.pr "== Sufficient completeness of the derived system ==@.";
  let spec = University.derived_functions in
  let report = Completeness.check ~depth:2 spec in
  Fmt.pr "%a@.@." Completeness.pp_report report;
  if not (Completeness.is_complete report) then exit 1;

  Fmt.pr "== Agreement with the paper's equations 1-15 ==@.";
  let domain = University.domain in
  let traces =
    List.concat_map
      (fun d -> Strace.enumerate sg ~domain:University.small_domain ~depth:d)
      [ 0; 1; 2; 3 ]
  in
  let compared = ref 0 in
  let disagreements = ref 0 in
  List.iter
    (fun trace ->
      List.iter
        (fun (q : Asig.op) ->
          let carriers =
            List.map (Domain.carrier University.small_domain) (Asig.param_args q)
          in
          List.iter
            (fun params ->
              incr compared;
              let a =
                Eval.query_on_trace ~domain University.functions ~q:q.Asig.oname
                  ~params trace
              in
              let b =
                Eval.query_on_trace ~domain spec ~q:q.Asig.oname ~params trace
              in
              match (a, b) with
              | Ok va, Ok vb when Value.equal va vb -> ()
              | _ -> incr disagreements)
            (Util.cartesian carriers))
        sg.Asig.queries)
    traces;
  Fmt.pr "%d ground queries compared, %d disagreements@." !compared !disagreements;
  if !disagreements > 0 then exit 1;
  Fmt.pr "derive_by_construction: all good.@."
