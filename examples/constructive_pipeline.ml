(* The whole methodology in one run, on a fresh domain: project
   tracking. Only two artifacts are written by hand — the
   information-level theory (the constraints) and the structured
   descriptions of the updates. Everything else is constructed:

     descriptions --Derive-----> conditional equations   (level 2)
     descriptions --Synthesize-> RPR procedures          (level 3)

   and the bundled design is then verified against the hand-written
   constraints: sufficient completeness, refinement T1->T2 (static +
   transition consistency, reachability), refinement T2->T3, W-grammar
   syntax, cross-level agreement.

   Run with:  dune exec examples/constructive_pipeline.exe *)

open Fdbs
open Fdbs_kernel
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_refine

(* ---------- hand-written artifact 1: the constraints ----------------- *)

let theory_src =
  {|
theory projects
sort project
sort employee
pred active : project
pred archived : project
pred assigned : employee, project

# an employee is assigned only to an active project
axiom assigned_active:
  ~(exists e:employee, p:project. assigned(e, p) & ~active(p))

# active and archived are mutually exclusive
axiom not_both: ~(exists p:project. active(p) & archived(p))

# archiving is irreversible
axiom archived_forever:
  ~(exists p:project. dia (archived(p) & dia ~archived(p)))

# an archived project is never re-activated
axiom archived_inactive:
  ~(exists p:project. dia (archived(p) & dia active(p)))
|}

let info = Tparser.theory_exn theory_src

(* ---------- hand-written artifact 2: the structured descriptions ----- *)

let spec_src =
  {|
spec projects

sort project
sort employee
const apollo : project
const hermes : project
const eva : employee
const finn : employee

query active : project -> bool
query archived : project -> bool
query assigned : employee, project -> bool

update initiate
update launch : project
update archive : project
update assign : employee, project
update unassign : employee, project

describe initiate()
  effect: active(p) := false
  effect: archived(p) := false
  effect: assigned(e, p) := false

describe launch(p: project)
  pre: active(p, U) = false & archived(p, U) = false
  effect: active(p) := true

describe archive(p: project)
  pre: active(p, U) = true & (forall e:employee. assigned(e, p, U) = false)
  effect: active(p) := false
  effect: archived(p) := true

describe assign(e: employee, p: project)
  pre: active(p, U) = true
  effect: assigned(e, p) := true

describe unassign(e: employee, p: project)
  effect: assigned(e, p) := false
|}

let skeleton, descriptions =
  match Aparser.spec_with_descriptions spec_src with
  | Ok pair -> pair
  | Error e -> invalid_arg e

(* ---------- everything else is constructed --------------------------- *)

let functions : Spec.t =
  Spec.make_exn ~name:"projects"
    ~signature:skeleton.Spec.signature
    ~equations:(Derive.equations_exn skeleton.Spec.signature descriptions)
    ()

let representation =
  match Synthesize.schema ~name:"projects" skeleton.Spec.signature descriptions with
  | Ok sc -> sc
  | Error e -> invalid_arg e.Fdbs_kernel.Error.message

let design =
  Design.canonical_exn ~name:"projects" ~info ~functions ~representation

let small_domain =
  Domain.of_list
    [ ("project", [ Value.Sym "apollo" ]); ("employee", [ Value.Sym "eva" ]) ]

let () =
  Fmt.pr "== Derived equations (level 2) ==@.";
  List.iter (fun eq -> Fmt.pr "  %a@." Equation.pp eq) functions.Spec.equations;

  Fmt.pr "@.== Synthesized schema (level 3) ==@.";
  Fmt.pr "%a@.@." Fdbs_rpr.Schema.pp representation;

  Fmt.pr "== W-grammar check of the synthesized schema text ==@.";
  let schema_text = Fmt.str "%a" Fdbs_rpr.Schema.pp representation in
  Fmt.pr "recognized: %b@.@." (Fdbs_wgrammar.Rpr_grammar.recognizes schema_text);

  Fmt.pr "== Verification over 1 project / 1 employee ==@.";
  let v = Design.verify ~domain:small_domain ~depth:2 design in
  Fmt.pr "%a@.@." Design.pp_verification v;
  if not (Design.verified v) then exit 1;

  Fmt.pr "== Verification over the full parameter names (2x2) ==@.";
  let v = Design.verify ~depth:1 design in
  Fmt.pr "%a@.@." Design.pp_verification v;
  if not (Design.verified v) then exit 1;

  Fmt.pr "== The transition-coverage gap (Sec 4.4c remark) ==@.";
  (match
     Check12.transition_coverage info functions design.Design.interp
       ~domain:small_domain
   with
   | Error e -> Fmt.epr "%s@." e; exit 1
   | Ok (realized, valid) ->
     Fmt.pr "single updates realize %d of %d valid transitions@." realized valid);

  Fmt.pr "@.constructive_pipeline: all good.@."
