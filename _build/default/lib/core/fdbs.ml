(** {1 fdbs — formal database specification, an eclectic perspective}

    An executable reconstruction of Casanova, Veloso & Furtado's
    three-level database specification framework (PODS 1984):

    - {!Logic}: many-sorted first-order logic (terms, wffs, finite
      structures, satisfaction, transforms, matching);
    - {!Temporal}: the temporal extension LT with ◇/□ and Kripke
      universes — the {e information level};
    - {!Algebra}: algebraic specifications with conditional equations,
      term rewriting, sufficient completeness, structured descriptions —
      the {e functions level};
    - {!Rpr}: regular programs over relations with relational calculus
      and algebra evaluation and denotational semantics — the
      {e representation level};
    - {!Wgrammar}: W-grammars and the RPR schema grammar — the syntax
      formalism;
    - {!Refine}: the refinement interpretations I and K and the bounded
      checkers for the paper's proof obligations;
    - {!Design}: a bundled three-level design and its verification
      pipeline;
    - {!University}: the paper's running example, fully specified.

    Quickstart:
    {[
      let v = Fdbs.Design.verify Fdbs.University.design in
      assert (Fdbs.Design.verified v)
    ]} *)

module Kernel = Fdbs_kernel
module Logic = Fdbs_logic
module Temporal = Fdbs_temporal
module Algebra = Fdbs_algebra
module Rpr = Fdbs_rpr
module Wgrammar = Fdbs_wgrammar
module Refine = Fdbs_refine
module Design = Design
module University = University
