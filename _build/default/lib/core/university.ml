(** The paper's running example — the university database of courses
    and students — fully specified at all three levels (Sections 3.2,
    4.2 and 5.2), with its structured descriptions, bindings I and K,
    and a default finite domain for verification.

    Use {!design} as the quickest entry point to the framework, or the
    individual pieces to study one level at a time. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_rpr
open Fdbs_refine

(* ------------------------------------------------------------------ *)
(* Level 1: the information level (Section 3.2)                        *)
(* ------------------------------------------------------------------ *)

(** L1: sorts course and student; db-predicates offered<course> and
    takes<student, course>. *)
let signature1 : Signature.t =
  Signature.make
    ~sorts:[ "course"; "student" ]
    ~funcs:[]
    ~preds:
      [
        Signature.db_pred "offered" [ "course" ];
        Signature.db_pred "takes" [ "student"; "course" ];
      ]

(** Axiom (1), static: "a student cannot take a course that is not
    being offered". *)
let static_axiom_src = "~(exists s:student, c:course. takes(s, c) & ~offered(c))"

(** Axiom (2), transition: "the number of courses taken by a student
    cannot drop to zero". *)
let transition_axiom_src =
  "~(exists s:student, c:course. dia (takes(s, c) & dia ~(exists c2:course. takes(s, c2))))"

(** T1 = (L1, A1). *)
let info : Ttheory.t =
  Ttheory.make_exn ~name:"university-information" ~signature:signature1
    ~axioms:
      [
        Ttheory.axiom "static" (Tparser.formula_exn signature1 static_axiom_src);
        Ttheory.axiom "transition" (Tparser.formula_exn signature1 transition_axiom_src);
      ]

(* ------------------------------------------------------------------ *)
(* Level 2: the functions level (Section 4.2)                          *)
(* ------------------------------------------------------------------ *)

(** The algebraic specification source: queries offered/takes, updates
    initiate/offer/cancel/enroll/transfer, and the paper's equations
    1–15 (equation 6 in the biconditional form the paper derives). *)
let functions_src =
  {|
spec university

sort course
sort student

# parameter names: the ground terms generating each parameter sort
const cs101 : course
const cs102 : course
const ana : student
const bob : student

query offered : course -> bool
query takes : student, course -> bool

update initiate
update offer : course
update cancel : course
update enroll : student, course
update transfer : student, course, course

eq q1: offered(c, initiate) = false
eq q2: takes(s, c, initiate) = false
eq q3: offered(c, offer(c, U)) = true
eq q4: c /= c2 => offered(c, offer(c2, U)) = offered(c, U)
eq q5: takes(s, c, offer(c2, U)) = takes(s, c, U)
eq q6: offered(c, cancel(c, U)) = (exists s:student. takes(s, c, U))
eq q7: c /= c2 => offered(c, cancel(c2, U)) = offered(c, U)
eq q8: takes(s, c, cancel(c2, U)) = takes(s, c, U)
eq q9: offered(c, enroll(s, c2, U)) = offered(c, U)
eq q10: takes(s, c, enroll(s, c, U)) = offered(c, U)
eq q11: s /= s2 | c /= c2 => takes(s, c, enroll(s2, c2, U)) = takes(s, c, U)
eq q12: offered(c, transfer(s, c2, c3, U)) = offered(c, U)
eq q13: takes(s, c2, transfer(s, c, c2, U)) =
        ((offered(c2, U) & takes(s, c, U)) | takes(s, c2, U))
eq q14: takes(s, c, transfer(s, c, c2, U)) =
        ((~offered(c2, U) | takes(s, c2, U)) & takes(s, c, U))
eq q15: s /= s2 | (c /= c2 & c /= c3) =>
        takes(s, c, transfer(s2, c2, c3, U)) = takes(s, c, U)
|}

(** T2 = (L2, A2). *)
let functions : Spec.t = Aparser.spec_exn functions_src

(** The default verification domain: two courses, two students. *)
let domain : Domain.t =
  Domain.of_list
    [
      ("course", [ Value.Sym "cs101"; Value.Sym "cs102" ]);
      ("student", [ Value.Sym "ana"; Value.Sym "bob" ]);
    ]

(** A minimal domain for exhaustive checks: one course, one student. *)
let small_domain : Domain.t =
  Domain.of_list
    [ ("course", [ Value.Sym "cs101" ]); ("student", [ Value.Sym "ana" ]) ]

(** The structured descriptions of Section 4.2 from which the equations
    derive constructively ({!Fdbs_algebra.Derive.equations}). *)
let descriptions : Sdesc.t list =
  let var n s : Term.var = { Term.vname = n; vsort = Sort.make s } in
  let av n s = Aterm.Var (var n s) in
  let u_var = Aterm.Var Sdesc.state_var in
  let takes s c st = Aterm.App ("takes", [ s; c; st ]) in
  let offered c st = Aterm.App ("offered", [ c; st ]) in
  [
    Sdesc.make ~update:"initiate" ~params:[]
      ~comment:"the empty database: nothing offered, nobody enrolled"
      ~effects:
        [
          Sdesc.effect_ "offered" [ av "c" "course" ] Aterm.fls;
          Sdesc.effect_ "takes" [ av "s" "student"; av "c" "course" ] Aterm.fls;
        ]
      ();
    Sdesc.make ~update:"offer" ~params:[ var "c" "course" ]
      ~comment:"course c is added as a new course"
      ~effects:[ Sdesc.effect_ "offered" [ av "c" "course" ] Aterm.tru ]
      ();
    Sdesc.make ~update:"cancel" ~params:[ var "c" "course" ]
      ~comment:"course c is cancelled, providing that no student takes it"
      ~pre:
        (Aterm.Forall
           ( var "s" "student",
             Aterm.eq (takes (av "s" "student") (av "c" "course") u_var) Aterm.fls ))
      ~effects:[ Sdesc.effect_ "offered" [ av "c" "course" ] Aterm.fls ]
      ();
    Sdesc.make ~update:"enroll" ~params:[ var "s" "student"; var "c" "course" ]
      ~comment:"student s enrolls in course c, which must be offered"
      ~pre:(Aterm.eq (offered (av "c" "course") u_var) Aterm.tru)
      ~effects:[ Sdesc.effect_ "takes" [ av "s" "student"; av "c" "course" ] Aterm.tru ]
      ();
    Sdesc.make ~update:"transfer"
      ~params:[ var "s" "student"; var "c" "course"; var "c2" "course" ]
      ~comment:"student s moves from course c to offered course c2"
      ~pre:
        (Aterm.conj
           [
             Aterm.eq (takes (av "s" "student") (av "c" "course") u_var) Aterm.tru;
             Aterm.eq (takes (av "s" "student") (av "c2" "course") u_var) Aterm.fls;
             Aterm.eq (offered (av "c2" "course") u_var) Aterm.tru;
           ])
      ~effects:
        [
          Sdesc.effect_ "takes" [ av "s" "student"; av "c" "course" ] Aterm.fls;
          Sdesc.effect_ "takes" [ av "s" "student"; av "c2" "course" ] Aterm.tru;
        ]
      ();
  ]

(** The equations obtained constructively from {!descriptions}: an
    alternative A2, observationally equivalent to {!functions}. *)
let derived_functions : Spec.t =
  Spec.make_exn ~name:"university-derived"
    ~signature:functions.Spec.signature
    ~equations:(Derive.equations_exn functions.Spec.signature descriptions)
    ()

(* ------------------------------------------------------------------ *)
(* Level 3: the representation level (Section 5.2)                     *)
(* ------------------------------------------------------------------ *)

(** The RPR schema of Section 5.2 (the paper's SCL line
    "OFFERED(Students)" is a typographical slip for a set of courses). *)
let representation_src =
  {|
schema university

relation OFFERED(course)
relation TAKES(student, course)

proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})

proc offer(c: course) = insert OFFERED(c)

proc cancel(c: course) =
  if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)

proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)

proc transfer(s: student, c: course, c2: course) =
  if (TAKES(s, c) & ~TAKES(s, c2) & OFFERED(c2))
  then (delete TAKES(s, c) ; insert TAKES(s, c2))

end-schema
|}

(** T3. *)
let representation : Schema.t = Rparser.schema_exn representation_src

(* ------------------------------------------------------------------ *)
(* The bound design                                                    *)
(* ------------------------------------------------------------------ *)

(** I: offered ↦ offered(c, σ), takes ↦ takes(s, c, σ). *)
let interp : Interp12.t = Interp12.canonical_exn signature1 functions.Spec.signature

(** K: offered ↦ OFFERED(c), takes ↦ TAKES(s, c), updates to homonym
    procedures (Section 5.4). *)
let mapping : Interp23.t = Interp23.canonical_exn functions.Spec.signature representation

(** The complete three-level design, ready for {!Design.verify}. *)
let design : Design.t =
  Design.make ~name:"university" ~info ~functions ~representation ~interp ~mapping
