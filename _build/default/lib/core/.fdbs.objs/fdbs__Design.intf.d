lib/core/design.mli: Check12 Check23 Completeness Domain Fdbs_algebra Fdbs_kernel Fdbs_refine Fdbs_rpr Fdbs_temporal Fmt Interp12 Interp23 Spec Trace Ttheory Value
