lib/core/university.mli: Design Domain Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_refine Fdbs_rpr Fdbs_temporal Interp12 Interp23 Sdesc Signature Spec Ttheory
