lib/core/fdbs.ml: Design Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_refine Fdbs_rpr Fdbs_temporal Fdbs_wgrammar University
