(** The paper's running example — the university database of courses
    and students — fully specified at all three levels (Sections 3.2,
    4.2 and 5.2), with its structured descriptions, bindings I and K,
    and default finite domains for verification.

    Use {!design} as the quickest entry point to the framework, or the
    individual pieces to study one level at a time. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_refine

(** L1: sorts course and student; db-predicates offered<course> and
    takes<student, course>. *)
val signature1 : Signature.t

(** Axiom (1), static: "a student cannot take a course that is not
    being offered". *)
val static_axiom_src : string

(** Axiom (2), transition: "the number of courses taken by a student
    cannot drop to zero". *)
val transition_axiom_src : string

(** T1 = (L1, A1). *)
val info : Ttheory.t

(** The functions-level source: queries offered/takes, updates
    initiate/offer/cancel/enroll/transfer, the paper's equations 1–15. *)
val functions_src : string

(** T2 = (L2, A2). *)
val functions : Spec.t

(** The default verification domain: two courses, two students. *)
val domain : Domain.t

(** A minimal domain for exhaustive checks: one course, one student. *)
val small_domain : Domain.t

(** The structured descriptions of Section 4.2 from which the equations
    derive constructively. *)
val descriptions : Sdesc.t list

(** The equations obtained constructively from {!descriptions}: an
    alternative A2, observationally equivalent to {!functions}. *)
val derived_functions : Spec.t

(** The RPR schema source of Section 5.2. *)
val representation_src : string

(** T3. *)
val representation : Fdbs_rpr.Schema.t

(** I: offered ↦ offered(c, σ), takes ↦ takes(s, c, σ). *)
val interp : Interp12.t

(** K: offered ↦ OFFERED(c), takes ↦ TAKES(s, c), updates to homonym
    procedures (Section 5.4). *)
val mapping : Interp23.t

(** The complete three-level design, ready for {!Design.verify}. *)
val design : Design.t
