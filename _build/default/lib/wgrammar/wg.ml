(** W-grammars (van Wijngaarden two-level grammars), the formalism the
    paper uses for the syntax of the representation-level language
    (Section 5.1.1).

    A W-grammar has two levels:

    - {e metarules} form a context-free grammar over {e metanotions}
      (written uppercase) producing {e protonotions} (strings of
      terminal marks, here: token strings);
    - {e hyperrules} are rule schemes over {e hypernotions} (sequences
      of metanotions and protonotion fragments). Substituting a value
      for every metanotion — {e consistently}: every occurrence of the
      same metanotion within one rule takes the same value — yields an
      ordinary production. A metanotion name with a trailing number
      (NAME2) shares the base metanotion's metarules but substitutes
      independently, following the usual vW convention.

    The right-hand side of a hyperrule is a list of alternatives; each
    alternative is a sequence of members, either [Nt h] (a hypernotion
    that instantiates to a nonterminal) or [Mark h] (a hypernotion that
    instantiates to terminal symbols consumed literally). This gives
    W-grammars their context-sensitive power: e.g. the predicate
    hypernotion "NAME isin DECLS", derivable into the empty string
    exactly when NAME's value occurs in DECLS's value, expresses
    declared-before-use. *)

type item =
  | Meta of string  (** a metanotion occurrence *)
  | Proto of string  (** one protonotion mark (a token) *)

type hypernotion = item list

type member =
  | Nt of hypernotion  (** instantiates to a nonterminal *)
  | Mark of hypernotion  (** instantiates to literal terminal tokens *)

type hyperrule = {
  lhs : hypernotion;
  alts : member list list;
}

type t = {
  metarules : (string * item list list) list;
      (** metanotion -> alternatives over items (context-free) *)
  rules : hyperrule list;
  start : hypernotion;  (** must be fully instantiated (no metanotions) *)
}

(** Substitution of token strings for metanotions. *)
type subst = (string * string list) list

(** NAME2 shares NAME's metarules: strip a trailing digit run. *)
let base_meta (m : string) : string =
  let n = String.length m in
  let rec first_digit i =
    if i > 0 && m.[i - 1] >= '0' && m.[i - 1] <= '9' then first_digit (i - 1) else i
  in
  let cut = first_digit n in
  if cut = 0 || cut = n then (if cut = 0 then m else String.sub m 0 cut)
  else String.sub m 0 cut

let rec instantiate (s : subst) (h : hypernotion) : string list option =
  match h with
  | [] -> Some []
  | Proto p :: rest -> Option.map (fun r -> p :: r) (instantiate s rest)
  | Meta m :: rest ->
    (match List.assoc_opt m s with
     | None -> None
     | Some v -> Option.map (fun r -> v @ r) (instantiate s rest))

let free_metas (h : hypernotion) : string list =
  List.filter_map (function Meta m -> Some m | Proto _ -> None) h
  |> List.sort_uniq compare

(** Metanotions occurring in an alternative's members. *)
let alt_metas (alt : member list) : string list =
  List.concat_map (function Nt h | Mark h -> free_metas h) alt |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Level one: derivability of a token string from a metanotion         *)
(* ------------------------------------------------------------------ *)

(** [deriver g] is a memoized test [m w -> true] iff metanotion [m]
    produces the token string [w] through the metarules (CFG
    membership; the memo table persists across calls). *)
let deriver (g : t) : string -> string list -> bool =
  let memo : (string * string list, bool) Hashtbl.t = Hashtbl.create 64 in
  let in_progress : (string * string list, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec meta_derives m w =
    let m = base_meta m in
    let key = (m, w) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
      if Hashtbl.mem in_progress key then false
      else begin
        Hashtbl.add in_progress key ();
        let result =
          match List.assoc_opt m g.metarules with
          | None -> false
          | Some alternatives -> List.exists (fun alt -> items_derive alt w) alternatives
        in
        Hashtbl.remove in_progress key;
        Hashtbl.add memo key result;
        result
      end
  and items_derive items w =
    match items with
    | [] -> w = []
    | Proto p :: rest -> (match w with t :: ts when t = p -> items_derive rest ts | _ -> false)
    | [ Meta m ] -> meta_derives m w
    | Meta m :: rest ->
      (* try every split point *)
      let n = List.length w in
      let rec try_split k =
        if k > n then false
        else
          let prefix = Fdbs_kernel.Util.take k w in
          let suffix = List.filteri (fun i _ -> i >= k) w in
          (meta_derives m prefix && items_derive rest suffix) || try_split (k + 1)
      in
      try_split 0
  in
  meta_derives

let derives (g : t) (meta : string) (w : string list) : bool = deriver g meta w

(* ------------------------------------------------------------------ *)
(* Matching hypernotion patterns against concrete token strings        *)
(* ------------------------------------------------------------------ *)

(** All consistent substitutions under which [pattern] instantiates to
    [tokens], with every assigned metanotion value derivable from its
    metarules ([derives] is typically a memoized {!deriver}). *)
let match_hypernotion ~(derives : string -> string list -> bool)
    (pattern : hypernotion) (tokens : string list) : subst list =
  let rec go (s : subst) pattern tokens : subst list =
    match pattern with
    | [] -> if tokens = [] then [ s ] else []
    | Proto p :: rest ->
      (match tokens with
       | t :: ts when t = p -> go s rest ts
       | _ -> [])
    | Meta m :: rest ->
      (match List.assoc_opt m s with
       | Some v ->
         let lv = List.length v in
         if List.length tokens >= lv && Fdbs_kernel.Util.take lv tokens = v then
           go s rest (List.filteri (fun i _ -> i >= lv) tokens)
         else []
       | None ->
         let n = List.length tokens in
         let rec splits k acc =
           if k > n then acc
           else
             let prefix = Fdbs_kernel.Util.take k tokens in
             let suffix = List.filteri (fun i _ -> i >= k) tokens in
             let acc =
               if derives m prefix then go ((m, prefix) :: s) rest suffix @ acc else acc
             in
             splits (k + 1) acc
         in
         splits 0 [])
  in
  go [] pattern tokens

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

(** Static checks on a grammar: the start hypernotion is instantiated;
    every metanotion mentioned anywhere has metarules. Returns
    human-readable problems. *)
let check (g : t) : string list =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  if free_metas g.start <> [] then err "start hypernotion contains metanotions";
  let known m = List.mem_assoc (base_meta m) g.metarules in
  let check_h where h =
    List.iter (fun m -> if not (known m) then err "%s: unknown metanotion %s" where m)
      (free_metas h)
  in
  List.iteri
    (fun i (r : hyperrule) ->
      let where = Fmt.str "hyperrule %d" i in
      check_h where r.lhs;
      List.iter (List.iter (function Nt h | Mark h -> check_h where h)) r.alts)
    g.rules;
  List.iter
    (fun (m, alternatives) ->
      List.iter
        (List.iter (function
          | Meta m' ->
            if not (known m') then err "metarule %s: unknown metanotion %s" m m'
          | Proto _ -> ()))
        alternatives)
    g.metarules;
  List.rev !errors

let pp_item ppf = function
  | Meta m -> Fmt.pf ppf "%s" m
  | Proto p -> Fmt.pf ppf "'%s'" p

let pp_hypernotion ppf h = Fmt.(list ~sep:(any " ") pp_item) ppf h

let pp ppf (g : t) =
  let pp_metarule ppf (m, alternatives) =
    Fmt.pf ppf "%s :: %a." m
      Fmt.(list ~sep:(any " ; ") pp_hypernotion)
      alternatives
  in
  let pp_member ppf = function
    | Nt h -> pp_hypernotion ppf h
    | Mark h -> Fmt.pf ppf "[%a]" pp_hypernotion h
  in
  let pp_rule ppf (r : hyperrule) =
    Fmt.pf ppf "%a : %a." pp_hypernotion r.lhs
      Fmt.(list ~sep:(any " ; ") (list ~sep:(any ", ") pp_member))
      r.alts
  in
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list ~sep:cut pp_metarule) g.metarules
    Fmt.(list ~sep:cut pp_rule) g.rules
