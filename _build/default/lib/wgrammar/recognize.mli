(** Bounded recognition for W-grammars.

    The generated grammar of a W-grammar is in general infinite and
    recognition undecidable; this engine decides the bounded instances
    that arise in practice. Nonterminals are fully instantiated
    hypernotions; metanotions that occur in an alternative but not in
    the rule's left-hand side ({e free} metanotions) are enumerated
    from a caller-supplied candidate list, filtered by metarule
    derivability — the only source of unboundedness, made explicit.
    Parsing memoizes, per (nonterminal, position), the set of end
    positions the nonterminal can span. *)

type config = {
  candidates : string -> string list list;
      (** candidate values for a free metanotion (base name) *)
  max_expansion : int;  (** safety cap on distinct (nonterminal, pos) expansions *)
}

val default_config : config

exception Budget_exceeded

(** [make_parser g cfg input] returns [parse nt pos] giving every end
    position from which [nt] derives [input[pos..end)]. *)
val make_parser : Wg.t -> config -> string array -> string list -> int -> int list

(** Does the grammar's start hypernotion derive exactly the input?
    Returns [false] when the expansion budget is exceeded. *)
val recognize : ?config:config -> Wg.t -> string list -> bool
