(** Classic W-grammar examples, used by tests and documentation: the
    context-sensitive languages aⁿbⁿcⁿ and "reduplicated names", which
    no context-free grammar captures. *)

(** aⁿbⁿcⁿ (n ≥ 1): the metanotion N counts in unary; the start rule's
    free N is the shared count, consistently substituted into the three
    blocks. Recognition needs candidates for N: unary strings up to the
    input length (see {!an_bn_cn_candidates}). *)
let an_bn_cn : Wg.t =
  let open Wg in
  {
    metarules = [ ("N", [ [ Proto "i" ]; [ Proto "i"; Meta "N" ] ]) ];
    rules =
      [
        {
          lhs = [ Proto "s" ];
          alts =
            [
              [
                Nt [ Proto "as"; Meta "N" ];
                Nt [ Proto "bs"; Meta "N" ];
                Nt [ Proto "cs"; Meta "N" ];
              ];
            ];
        };
        { lhs = [ Proto "as"; Proto "i" ]; alts = [ [ Mark [ Proto "a" ] ] ] };
        {
          lhs = [ Proto "as"; Proto "i"; Meta "N" ];
          alts = [ [ Mark [ Proto "a" ]; Nt [ Proto "as"; Meta "N" ] ] ];
        };
        { lhs = [ Proto "bs"; Proto "i" ]; alts = [ [ Mark [ Proto "b" ] ] ] };
        {
          lhs = [ Proto "bs"; Proto "i"; Meta "N" ];
          alts = [ [ Mark [ Proto "b" ]; Nt [ Proto "bs"; Meta "N" ] ] ];
        };
        { lhs = [ Proto "cs"; Proto "i" ]; alts = [ [ Mark [ Proto "c" ] ] ] };
        {
          lhs = [ Proto "cs"; Proto "i"; Meta "N" ];
          alts = [ [ Mark [ Proto "c" ]; Nt [ Proto "cs"; Meta "N" ] ] ];
        };
      ];
    start = [ Proto "s" ];
  }

(** Candidate values for the free metanotion N when recognizing inputs
    of length [n]: unary strings i, ii, ..., i^n. *)
let an_bn_cn_candidates (n : int) : string -> string list list =
  fun meta ->
    if meta = "N" then List.init n (fun k -> List.init (k + 1) (fun _ -> "i")) else []

(** The "same name twice" language {w w | w a nonempty word over
    {x,y}}: consistent substitution forces both halves equal. *)
let ww : Wg.t =
  let open Wg in
  {
    metarules =
      [
        ( "W",
          [ [ Proto "x" ]; [ Proto "y" ]; [ Proto "x"; Meta "W" ]; [ Proto "y"; Meta "W" ] ] );
      ];
    rules =
      [
        {
          lhs = [ Proto "s" ];
          alts = [ [ Nt [ Proto "half"; Meta "W" ]; Nt [ Proto "half"; Meta "W" ] ] ];
        };
        (* "half W" spells out W literally. *)
        { lhs = [ Proto "half"; Meta "W" ]; alts = [ [ Mark [ Meta "W" ] ] ] };
      ];
    start = [ Proto "s" ];
  }

(** Candidates for W on inputs of length [n]: all words over {x,y} of
    length ≤ n/2 — exponential, so keep n small in tests. *)
let ww_candidates (n : int) : string -> string list list =
  let rec words k =
    if k = 0 then [ [] ]
    else
      let shorter = words (k - 1) in
      shorter
      @ List.concat_map
          (fun w -> if List.length w = k - 1 then [ "x" :: w; "y" :: w ] else [])
          shorter
  in
  fun meta -> if meta = "W" then List.filter (( <> ) []) (words (n / 2)) else []
