(** W-grammars (van Wijngaarden two-level grammars), the formalism the
    paper uses for the syntax of the representation-level language
    (Section 5.1.1).

    A W-grammar has two levels: {e metarules} form a context-free
    grammar over {e metanotions} producing {e protonotions} (token
    strings); {e hyperrules} are rule schemes over {e hypernotions}
    (sequences of metanotions and protonotion fragments). Substituting a
    value for every metanotion — {e consistently}: every occurrence of
    the same metanotion within one rule takes the same value — yields an
    ordinary production. A metanotion name with a trailing number
    (NAME2) shares the base metanotion's metarules but substitutes
    independently, following the usual vW convention. *)

type item =
  | Meta of string  (** a metanotion occurrence *)
  | Proto of string  (** one protonotion mark (a token) *)

type hypernotion = item list

type member =
  | Nt of hypernotion  (** instantiates to a nonterminal *)
  | Mark of hypernotion  (** instantiates to literal terminal tokens *)

type hyperrule = {
  lhs : hypernotion;
  alts : member list list;
}

type t = {
  metarules : (string * item list list) list;
      (** metanotion -> alternatives over items (context-free) *)
  rules : hyperrule list;
  start : hypernotion;  (** must be fully instantiated (no metanotions) *)
}

(** Substitution of token strings for metanotions. *)
type subst = (string * string list) list

(** NAME2 shares NAME's metarules: strip a trailing digit run. *)
val base_meta : string -> string

(** Instantiate a hypernotion; [None] if some metanotion is unbound. *)
val instantiate : subst -> hypernotion -> string list option

(** Metanotions occurring in a hypernotion, deduplicated. *)
val free_metas : hypernotion -> string list

(** Metanotions occurring in an alternative's members. *)
val alt_metas : member list -> string list

(** [deriver g] is a memoized test: does the metanotion produce the
    token string through the metarules? (CFG membership; the memo table
    persists across calls.) *)
val deriver : t -> string -> string list -> bool

val derives : t -> string -> string list -> bool

(** All consistent substitutions under which the pattern instantiates
    to the tokens, with every assigned value derivable from its
    metanotion's rules ([derives] is typically a memoized
    {!deriver}). *)
val match_hypernotion :
  derives:(string -> string list -> bool) -> hypernotion -> string list -> subst list

(** Static checks: the start hypernotion is instantiated; every
    metanotion mentioned anywhere has metarules. *)
val check : t -> string list

val pp_item : item Fmt.t
val pp_hypernotion : hypernotion Fmt.t
val pp : t Fmt.t
