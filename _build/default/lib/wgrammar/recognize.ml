(** Bounded recognition for W-grammars.

    The generated grammar of a W-grammar is in general infinite, and
    recognition is undecidable; this engine decides the bounded
    instances that arise in practice:

    - nonterminals are {e fully instantiated} hypernotions (token
      strings); to expand one, every hyperrule whose left-hand side
      matches it under a consistent substitution contributes its
      instantiated alternatives;
    - metanotions that occur in an alternative but not in the rule's
      left-hand side ({e free} metanotions) are enumerated from a
      caller-supplied candidate list, filtered by metarule
      derivability — the only source of unboundedness, made explicit;
    - parsing memoizes, per (nonterminal, input position), the set of
      end positions the nonterminal can span, which handles ambiguity
      and shared subderivations; cyclic expansions are cut off. *)


type config = {
  candidates : string -> string list list;
      (** candidate values for a free metanotion (base name) *)
  max_expansion : int;  (** safety cap on distinct (nonterminal, pos) expansions *)
}

let default_config =
  { candidates = (fun _ -> []); max_expansion = 200_000 }

exception Budget_exceeded

module Key = struct
  type t = string list * int

  let equal (a1, b1) (a2, b2) = b1 = b2 && List.equal String.equal a1 a2
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

(** [spans g cfg input] returns a function [parse nt pos] giving every
    end position from which [nt] derives [input[pos..end)]. *)
let make_parser (g : Wg.t) (cfg : config) (input : string array) :
  string list -> int -> int list =
  let derives = Wg.deriver g in
  let memo : int list Tbl.t = Tbl.create 512 in
  let in_progress : unit Tbl.t = Tbl.create 64 in
  let expansions = ref 0 in
  let n = Array.length input in
  (* Enumerate assignments for free metanotions of an alternative. *)
  let enumerate_free (s : Wg.subst) (frees : string list) : Wg.subst list =
    List.fold_left
      (fun substs m ->
        let values =
          List.filter (fun v -> derives m v) (cfg.candidates (Wg.base_meta m))
        in
        List.concat_map (fun s -> List.map (fun v -> (m, v) :: s) values) substs)
      [ s ] frees
  in
  let rec parse_nt (nt : string list) (pos : int) : int list =
    let key = (nt, pos) in
    match Tbl.find_opt memo key with
    | Some ends -> ends
    | None ->
      if Tbl.mem in_progress key then []
      else begin
        incr expansions;
        if !expansions > cfg.max_expansion then raise Budget_exceeded;
        Tbl.add in_progress key ();
        let ends = ref [] in
        List.iter
          (fun (r : Wg.hyperrule) ->
            List.iter
              (fun (s : Wg.subst) ->
                List.iter
                  (fun alt ->
                    let bound = List.map fst s in
                    let frees =
                      List.filter (fun m -> not (List.mem m bound)) (Wg.alt_metas alt)
                    in
                    List.iter
                      (fun s' ->
                        List.iter
                          (fun e -> if not (List.mem e !ends) then ends := e :: !ends)
                          (parse_members s' alt pos))
                      (enumerate_free s frees))
                  r.Wg.alts)
              (Wg.match_hypernotion ~derives r.Wg.lhs nt))
          g.Wg.rules;
        Tbl.remove in_progress key;
        let result = List.sort compare !ends in
        Tbl.add memo key result;
        result
      end
  and parse_members (s : Wg.subst) (members : Wg.member list) (pos : int) : int list =
    match members with
    | [] -> [ pos ]
    | m :: rest ->
      let next_positions =
        match m with
        | Wg.Mark h ->
          (match Wg.instantiate s h with
           | None -> []
           | Some tokens ->
             let k = List.length tokens in
             if
               pos + k <= n
               && List.for_all2
                    (fun t i -> String.equal t input.(i))
                    tokens
                    (List.init k (fun i -> pos + i))
             then [ pos + k ]
             else [])
        | Wg.Nt h ->
          (match Wg.instantiate s h with
           | None -> []
           | Some nt -> parse_nt nt pos)
      in
      List.concat_map (parse_members s rest) next_positions
      |> List.sort_uniq compare
  in
  parse_nt

(** Does the grammar's start hypernotion derive exactly the input? *)
let recognize ?(config = default_config) (g : Wg.t) (input : string list) : bool =
  match Wg.instantiate [] g.Wg.start with
  | None -> invalid_arg "Recognize.recognize: start hypernotion is not instantiated"
  | Some start ->
    let arr = Array.of_list input in
    let parse = make_parser g config arr in
    (try List.mem (Array.length arr) (parse start 0) with Budget_exceeded -> false)
