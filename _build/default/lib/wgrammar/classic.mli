(** Classic W-grammar examples, used by tests and documentation: the
    context-sensitive languages aⁿbⁿcⁿ and reduplication, which no
    context-free grammar captures. *)

(** aⁿbⁿcⁿ (n ≥ 1): the metanotion N counts in unary; the start rule's
    free N is the shared count, consistently substituted into the three
    blocks. *)
val an_bn_cn : Wg.t

(** Candidate values for the free metanotion N on inputs of length [n]:
    unary strings i, ii, ..., iⁿ. *)
val an_bn_cn_candidates : int -> string -> string list list

(** The "same word twice" language: ww for nonempty w over [{x, y}];
    consistent substitution forces both halves equal. *)
val ww : Wg.t

(** Candidates for W on inputs of length [n]: all words over [{x, y}]
    of length at most [n/2]. *)
val ww_candidates : int -> string -> string list list
