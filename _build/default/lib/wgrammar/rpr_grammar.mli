(** The W-grammar of RPR schemas (paper Section 5.1.1).

    The grammar generates exactly the well-formed schema texts of
    {!Fdbs_rpr.Rparser}'s concrete syntax, {e including} the
    context-sensitive restriction beyond BNF's reach: every relational
    program variable used in the OPL part has been declared in the SCL
    part. The mechanism is the standard vW one: the start rule carries a
    free metanotion DECLS (the list of declared names); consistent
    substitution forces the DECLS spelled by the declaration section to
    be the same DECLS every use-site checks membership in, through the
    predicate hypernotion "NAME isin DECLS" that derives the empty
    string exactly when NAME's value occurs in DECLS's value. *)

(** Keywords excluded from the NAME metanotion. *)
val keywords : string list

(** Protonotion token stream of a schema source text. *)
val tokens_of_source : string -> string list

(** Identifier tokens of a stream (excluding keywords). *)
val identifiers : string list -> string list

(** Names declared by "relation NAME(...)" in the token stream. *)
val declared_relations : string list -> string list

(** The fixed hyperrule set of the schema grammar. *)
val hyperrules : Wg.hyperrule list

(** Build the grammar instance and recognition configuration for a
    token stream: NAME's metarules enumerate the identifiers occurring
    in the text; candidates supply the free NAMEs and the free DECLS
    (pre-scanned from the SCL part). *)
val instance : string list -> Wg.t * Recognize.config

(** Recognize a schema source text against the W-grammar: the paper's
    "verify that the specification is syntactically correct" step
    (Section 5.4). *)
val recognizes : string -> bool

val check_source : string -> (unit, string) result
