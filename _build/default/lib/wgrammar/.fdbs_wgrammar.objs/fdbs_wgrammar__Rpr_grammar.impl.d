lib/wgrammar/rpr_grammar.ml: Fdbs_kernel Lexer List Recognize String Wg
