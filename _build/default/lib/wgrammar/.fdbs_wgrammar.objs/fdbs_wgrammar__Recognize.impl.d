lib/wgrammar/recognize.ml: Array Hashtbl List String Wg
