lib/wgrammar/classic.mli: Wg
