lib/wgrammar/recognize.mli: Wg
