lib/wgrammar/wg.ml: Fdbs_kernel Fmt Hashtbl List Option String
