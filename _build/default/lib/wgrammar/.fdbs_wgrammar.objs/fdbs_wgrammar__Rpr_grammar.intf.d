lib/wgrammar/rpr_grammar.mli: Recognize Wg
