lib/wgrammar/classic.ml: List Wg
