lib/wgrammar/wg.mli: Fmt
