(** State formulas: the target language of the extended interpretation
    I (paper Section 4.3).

    To map wffs of L1 into L2, the paper extends L2 with a predicate
    symbol F of sort <state, state> standing for the accessibility
    relation of L1's semantics. A state formula is a first-order wff
    whose atoms are Boolean L2 terms and F-atoms, with quantifiers over
    parameter sorts and over the state sort; its semantics is given
    over a reachable quotient graph. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra

type t =
  | True
  | False
  | Holds of Aterm.t
      (** a Boolean L2 term; free state variables are bound by the
          enclosing state quantifiers *)
  | F of Term.var * Term.var  (** reachability between two state variables *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall_param of Term.var * t
  | Exists_param of Term.var * t
  | Forall_state of Term.var * t
  | Exists_state of Term.var * t

val pp : t Fmt.t

exception Eval_error of string

(** Evaluate a state formula over a reachable graph: parameter
    quantifiers range over the graph's exploration domain, state
    quantifiers over its nodes, F over the reachability relation
    (transitively closed when [future], the default). [params] and
    [states] value free variables ([states] by node index). *)
val eval :
  ?future:bool ->
  Reach.graph ->
  Spec.t ->
  ?params:(Term.var * Value.t) list ->
  ?states:(Term.var * int) list ->
  t ->
  bool
