(** The extension of the interpretation I to whole wffs (paper Section
    4.3: "we can extend I to map wffs of L1 into wffs of L2 ... adding a
    predicate symbol F ... which will stand for the reachability
    relation R").

    The translation threads a current-state variable: db-predicate atoms
    become their I-images at that state; ◇/□ quantify a fresh state
    variable related by F. T2 is a correct refinement of T1 iff the
    translation of every axiom holds — checked over the bounded
    reachable model, and shown equivalent to the direct Kripke route in
    the test suite. *)

open Fdbs_logic
open Fdbs_algebra
open Fdbs_temporal

(** L1 terms become algebraic terms verbatim (shared parameter sorts
    and operators). *)
val term_to_aterm : Term.t -> Aterm.t

(** Translate a temporal wff of L1 into a state formula of L2 extended
    with F, with [now] naming the current state. *)
val wff : Interp12.t -> now:Term.var -> Tformula.t -> (Sformula.t, string) result

(** Check every axiom of T1 through the syntactic translation: each
    translated wff, universally closed over the current state, must
    hold in the bounded reachable model. The paper's "I(P) is a theorem
    of T2", decided over the finitely generated model. *)
val check_axioms :
  ?future:bool ->
  Ttheory.t ->
  Spec.t ->
  Interp12.t ->
  Reach.graph ->
  ((string * bool) list, string) result
