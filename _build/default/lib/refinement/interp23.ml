(** Mappings K binding the functions level to the representation level
    (paper Section 5.3).

    K maps each query function symbol of L2 to a wff of L3 with free
    variables for the parameters (requirement (2)) — in the running
    example [K(offered) = OFFERED(c)], [K(takes) = TAKES(s,c)] — and
    each update function symbol to the homonym (or explicitly named)
    procedure of T3 (requirement (1)). Parameter operators map to
    themselves (requirement (4)). *)

open Fdbs_logic
open Fdbs_algebra
open Fdbs_rpr

(** Image of a query: formal parameter variables and an L3 wff over
    them (the state is implicit — the current database). *)
type qimage = {
  qi_args : Term.var list;
  qi_wff : Formula.t;
}

type t = {
  queries : (string * qimage) list;
  updates : (string * string) list;  (** L2 update ↦ T3 procedure name *)
}

let qimage args wff = { qi_args = args; qi_wff = wff }

let make ~queries ~updates = { queries; updates }

(** The canonical mapping when query functions correspond by name to
    relations (case-insensitively, the paper uses OFFERED for offered)
    and updates to homonym procedures. *)
let canonical (sg2 : Asig.t) (schema : Schema.t) : (t, string) result =
  let find_relation name =
    List.find_opt
      (fun (r : Schema.rel_decl) ->
        String.lowercase_ascii r.Schema.rname = String.lowercase_ascii name)
      schema.Schema.relations
  in
  let rec build_queries acc = function
    | [] -> Ok (List.rev acc)
    | (q : Asig.op) :: rest ->
      (match find_relation q.Asig.oname with
       | None -> Error (Fmt.str "query %s has no homonym relation" q.Asig.oname)
       | Some r ->
         let sorts = Asig.param_args q in
         if not (List.equal Fdbs_kernel.Sort.equal sorts r.Schema.rsorts) then
           Error (Fmt.str "query %s and relation %s disagree on sorts" q.Asig.oname
                    r.Schema.rname)
         else
           let args =
             List.mapi
               (fun i srt -> { Term.vname = Fmt.str "x%d" (i + 1); vsort = srt })
               sorts
           in
           let wff =
             Formula.Pred (r.Schema.rname, List.map (fun v -> Term.Var v) args)
           in
           build_queries ((q.Asig.oname, qimage args wff) :: acc) rest)
  in
  let rec build_updates acc = function
    | [] -> Ok (List.rev acc)
    | (u : Asig.op) :: rest ->
      (match Schema.find_proc schema u.Asig.oname with
       | None -> Error (Fmt.str "update %s has no homonym procedure" u.Asig.oname)
       | Some p ->
         let expected = Asig.param_args u in
         let actual = List.map snd p.Schema.pparams in
         if not (List.equal Fdbs_kernel.Sort.equal expected actual) then
           Error (Fmt.str "update %s and procedure %s disagree on parameter sorts"
                    u.Asig.oname p.Schema.pname)
         else build_updates ((u.Asig.oname, p.Schema.pname) :: acc) rest)
  in
  match build_queries [] sg2.Asig.queries with
  | Error _ as e -> e
  | Ok queries ->
    (match build_updates [] sg2.Asig.updates with
     | Error e -> Error e
     | Ok updates -> Ok (make ~queries ~updates))

let canonical_exn sg2 schema =
  match canonical sg2 schema with
  | Ok k -> k
  | Error e -> invalid_arg ("Interp23.canonical_exn: " ^ e)

let find_query (k : t) q = List.assoc_opt q k.queries
let find_update (k : t) u = List.assoc_opt u k.updates

(** Instantiate query [q]'s image on parameter values: the closed L3
    wff to evaluate against the current database. *)
let apply_query (k : t) (q : string) (values : Fdbs_kernel.Value.t list) :
  (Formula.t, string) result =
  match find_query k q with
  | None -> Error (Fmt.str "no image for query %s" q)
  | Some img ->
    if List.length values <> List.length img.qi_args then
      Error (Fmt.str "query %s arity mismatch" q)
    else
      let subst =
        Term.Subst.of_list
          (List.map2 (fun v value -> (v, Term.Lit value)) img.qi_args values)
      in
      Ok (Formula.subst subst img.qi_wff)

(** Like {!apply_query}, but with argument terms (free variables stay
    free — used by the dynamic-logic translation, which quantifies them
    at the logic level). *)
let apply_query_terms (k : t) (q : string) (args : Term.t list) :
  (Formula.t, string) result =
  match find_query k q with
  | None -> Error (Fmt.str "no image for query %s" q)
  | Some img ->
    if List.length args <> List.length img.qi_args then
      Error (Fmt.str "query %s arity mismatch" q)
    else
      let subst = Term.Subst.of_list (List.combine img.qi_args args) in
      Ok (Formula.subst subst img.qi_wff)

(** Sanity checks: every query/update of L2 has an image; wffs are
    well-sorted; procedures exist with matching parameter sorts. *)
let check (k : t) (sg2 : Asig.t) (schema : Schema.t) : string list =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let sg3 = Schema.signature schema in
  List.iter
    (fun (q : Asig.op) ->
      match find_query k q.Asig.oname with
      | None -> err "query %s has no image" q.Asig.oname
      | Some img ->
        (match Formula.check sg3 img.qi_wff with
         | Ok () -> ()
         | Error e -> err "image of query %s: %s" q.Asig.oname e))
    sg2.Asig.queries;
  List.iter
    (fun (u : Asig.op) ->
      match find_update k u.Asig.oname with
      | None -> err "update %s has no procedure" u.Asig.oname
      | Some pname ->
        (match Schema.find_proc schema pname with
         | None -> err "update %s maps to unknown procedure %s" u.Asig.oname pname
         | Some p ->
           if
             not
               (List.equal Fdbs_kernel.Sort.equal (Asig.param_args u)
                  (List.map snd p.Schema.pparams))
           then err "update %s and procedure %s disagree on sorts" u.Asig.oname pname))
    sg2.Asig.updates;
  List.rev !errors
