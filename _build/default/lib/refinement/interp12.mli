(** Interpretations I binding the information level to the functions
    level (paper Section 4.3).

    An interpretation maps each n-ary db-predicate symbol [p] of L1 to a
    Boolean term of L2 with free variables [x1..xn, σ] — in the running
    example, offered ↦ offered(c, σ) and takes ↦ takes(s, c, σ).
    Ordinary function symbols map to themselves. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra

(** Image of one db-predicate: formal argument variables paired with a
    Boolean algebraic term over them and the state variable. *)
type image = {
  img_args : Term.var list;
  img_term : Aterm.t;
}

type t = {
  db_preds : (string * image) list;
  state_var : Term.var;  (** the σ variable used in the images *)
}

(** The default σ variable. *)
val state_var : Term.var

val image : Term.var list -> Aterm.t -> image
val make : ?state_var:Term.var -> (string * image) list -> t

(** The canonical interpretation when db-predicates and query functions
    correspond one-to-one by name (the paper's convenient "coincidence",
    Section 6). *)
val canonical : Signature.t -> Asig.t -> (t, string) result

val canonical_exn : Signature.t -> Asig.t -> t

val find : t -> string -> image option

(** Instantiate db-predicate [p]'s image on parameter values and a
    ground state term: the L2 term that answers "does p(v̄) hold in
    state t?". *)
val apply : t -> string -> Value.t list -> Aterm.t -> (Aterm.t, string) result

(** Like {!apply}, but with algebraic terms as arguments (used by the
    syntactic wff translation). *)
val apply_terms : t -> string -> Aterm.t list -> Aterm.t -> (Aterm.t, string) result

(** Sanity-check an interpretation against the two signatures. *)
val check : t -> Signature.t -> Asig.t -> string list
