lib/refinement/check23.ml: Asig Aterm Atyping Db Domain Equation Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_rpr Fmt Interp23 List Option Schema Semantics Sort Spec Term Util Value
