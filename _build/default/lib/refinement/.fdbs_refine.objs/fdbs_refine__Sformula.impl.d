lib/refinement/sformula.ml: Array Aterm Domain Eval Fdbs_algebra Fdbs_kernel Fdbs_logic Fmt Fun List Reach Spec Term Trace Value
