lib/refinement/translate12.mli: Aterm Fdbs_algebra Fdbs_logic Fdbs_temporal Interp12 Reach Sformula Spec Term Tformula Ttheory
