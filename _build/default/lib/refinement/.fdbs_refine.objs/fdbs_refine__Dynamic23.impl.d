lib/refinement/dynamic23.ml: Asig Aterm Check23 Dynamic Equation Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_rpr Fmt Formula Interp23 List Result Sdesc Semantics Sort Spec Term Util
