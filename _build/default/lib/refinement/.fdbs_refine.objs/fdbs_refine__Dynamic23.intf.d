lib/refinement/dynamic23.mli: Asig Dynamic Equation Fdbs_algebra Fdbs_rpr Fmt Interp23 Semantics Spec
