lib/refinement/interp23.ml: Asig Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_rpr Fmt Formula List Schema String Term
