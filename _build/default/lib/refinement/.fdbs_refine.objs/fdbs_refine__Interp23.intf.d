lib/refinement/interp23.mli: Asig Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_rpr Formula Schema Term Value
