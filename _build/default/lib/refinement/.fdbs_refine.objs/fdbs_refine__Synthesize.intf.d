lib/refinement/synthesize.mli: Asig Fdbs_algebra Fdbs_rpr Schema Sdesc
