lib/refinement/interp12.ml: Asig Aterm Atyping Fdbs_algebra Fdbs_kernel Fdbs_logic Fmt List Signature Term
