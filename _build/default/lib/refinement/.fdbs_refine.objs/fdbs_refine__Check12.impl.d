lib/refinement/check12.ml: Array Check Domain Eval Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_temporal Fmt Interp12 List Reach Signature Spec Structure Tformula Trace Ttheory Universe Util Value
