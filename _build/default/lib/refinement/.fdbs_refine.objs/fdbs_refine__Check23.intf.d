lib/refinement/check23.mli: Asig Db Fdbs_algebra Fdbs_rpr Fmt Interp23 Semantics Spec
