lib/refinement/synthesize.ml: Asig Aterm Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_rpr Fmt Formula List Result Schema Sdesc Sort Stmt String Term Util Value
