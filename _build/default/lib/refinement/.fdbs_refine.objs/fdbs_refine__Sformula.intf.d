lib/refinement/sformula.mli: Aterm Fdbs_algebra Fdbs_kernel Fdbs_logic Fmt Reach Spec Term Value
