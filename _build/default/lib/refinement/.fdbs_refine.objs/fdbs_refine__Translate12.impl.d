lib/refinement/translate12.ml: Aterm Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_temporal Fmt Interp12 List Reach Result Sformula Spec Term Tformula Ttheory
