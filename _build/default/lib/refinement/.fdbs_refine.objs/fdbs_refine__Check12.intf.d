lib/refinement/check12.mli: Check Domain Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_temporal Fmt Interp12 Reach Spec Structure Ttheory Universe
