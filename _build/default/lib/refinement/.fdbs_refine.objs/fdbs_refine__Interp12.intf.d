lib/refinement/interp12.mli: Asig Aterm Fdbs_algebra Fdbs_kernel Fdbs_logic Signature Term Value
