(** The extension of the interpretation I to whole wffs (paper Section
    4.3: "Given an interpretation I, we can extend I to map wffs of L1
    into wffs of L2 ... adding a predicate symbol F of sort
    <state, state> which will stand for the reachability relation R").

    The translation threads a current-state variable: db-predicate
    atoms become their I-images at that state; ◇/□ quantify a fresh
    state variable related by F. A T2 is then a correct refinement of
    T1 iff the translation of every axiom holds — checked over the
    bounded reachable model by {!check_axioms} (and shown equivalent to
    the direct Kripke route in the test suite). *)

open Fdbs_logic
open Fdbs_algebra
open Fdbs_temporal

let ( let* ) = Result.bind

(* L1 terms become algebraic terms verbatim: shared parameter sorts and
   operators (paper: "for each function symbol f, I(f) must be a term";
   the canonical choice is f itself). *)
let rec term_to_aterm : Term.t -> Aterm.t = function
  | Term.Var v -> Aterm.Var v
  | Term.App (f, args) -> Aterm.App (f, List.map term_to_aterm args)
  | Term.Lit (Fdbs_kernel.Value.Int n) ->
    Aterm.Val (Fdbs_kernel.Value.Int n, Fdbs_kernel.Sort.make "int")
  | Term.Lit v -> Aterm.Val (v, Fdbs_kernel.Sort.make "opaque")

let fresh_state_var (used : Term.var list) : Term.var =
  let rec pick i =
    let name = Fmt.str "sigma%d" i in
    let cand = { Term.vname = name; vsort = Fdbs_kernel.Sort.state } in
    if List.exists (Term.var_equal cand) used then pick (i + 1) else cand
  in
  pick 0

(** Translate a temporal wff of L1 into a state formula of L2 extended
    with F, with [now] naming the current state. *)
let wff (interp : Interp12.t) ~(now : Term.var) (f : Tformula.t) :
  (Sformula.t, string) result =
  let rec go now used : Tformula.t -> (Sformula.t, string) result = function
    | Tformula.True -> Ok Sformula.True
    | Tformula.False -> Ok Sformula.False
    | Tformula.Pred (p, args) ->
      let* image =
        Interp12.apply_terms interp p (List.map term_to_aterm args) (Aterm.Var now)
      in
      Ok (Sformula.Holds image)
    | Tformula.Eq (t1, t2) ->
      Ok (Sformula.Holds (Aterm.eq (term_to_aterm t1) (term_to_aterm t2)))
    | Tformula.Not g ->
      let* g' = go now used g in
      Ok (Sformula.Not g')
    | Tformula.And (g, h) ->
      let* g' = go now used g in
      let* h' = go now used h in
      Ok (Sformula.And (g', h'))
    | Tformula.Or (g, h) ->
      let* g' = go now used g in
      let* h' = go now used h in
      Ok (Sformula.Or (g', h'))
    | Tformula.Imp (g, h) ->
      let* g' = go now used g in
      let* h' = go now used h in
      Ok (Sformula.Imp (g', h'))
    | Tformula.Iff (g, h) ->
      let* g' = go now used g in
      let* h' = go now used h in
      Ok (Sformula.Iff (g', h'))
    | Tformula.Forall (v, g) ->
      let* g' = go now (v :: used) g in
      Ok (Sformula.Forall_param (v, g'))
    | Tformula.Exists (v, g) ->
      let* g' = go now (v :: used) g in
      Ok (Sformula.Exists_param (v, g'))
    | Tformula.Possibly g ->
      let s' = fresh_state_var (now :: used) in
      let* g' = go s' (s' :: used) g in
      Ok (Sformula.Exists_state (s', Sformula.And (Sformula.F (now, s'), g')))
    | Tformula.Necessarily g ->
      let s' = fresh_state_var (now :: used) in
      let* g' = go s' (s' :: used) g in
      Ok (Sformula.Forall_state (s', Sformula.Imp (Sformula.F (now, s'), g')))
  in
  go now [ now ] f

(** Check every axiom of T1 through the syntactic translation: each
    translated wff, universally closed over the current state, must
    hold in the bounded reachable model. Returns per-axiom verdicts.
    This is the paper's "I(P) is a theorem of T2", decided over the
    finitely generated model. *)
let check_axioms ?(future = true) (t1 : Ttheory.t) (spec : Spec.t)
    (interp : Interp12.t) (g : Reach.graph) :
  ((string * bool) list, string) result =
  let now = { Term.vname = "sigma"; vsort = Fdbs_kernel.Sort.state } in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (ax : Ttheory.axiom) :: rest ->
      let* translated = wff interp ~now ax.Ttheory.ax_formula in
      let closed = Sformula.Forall_state (now, translated) in
      (match Sformula.eval ~future g spec closed with
       | holds -> go ((ax.Ttheory.ax_name, holds) :: acc) rest
       | exception Sformula.Eval_error e -> Error e)
  in
  go [] t1.Ttheory.axioms
