(** Mappings K binding the functions level to the representation level
    (paper Section 5.3).

    K maps each query function symbol of L2 to a wff of L3 with free
    variables for the parameters (requirement (2)) — in the running
    example K(offered) = OFFERED(c), K(takes) = TAKES(s,c) — and each
    update function symbol to a procedure of T3 (requirement (1)).
    Parameter operators map to themselves (requirement (4)). *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_rpr

(** Image of a query: formal parameter variables and an L3 wff over
    them (the state is implicit — the current database). *)
type qimage = {
  qi_args : Term.var list;
  qi_wff : Formula.t;
}

type t = {
  queries : (string * qimage) list;
  updates : (string * string) list;  (** L2 update ↦ T3 procedure name *)
}

val qimage : Term.var list -> Formula.t -> qimage
val make : queries:(string * qimage) list -> updates:(string * string) list -> t

(** The canonical mapping when query functions correspond by name to
    relations (case-insensitively) and updates to homonym procedures. *)
val canonical : Asig.t -> Schema.t -> (t, string) result

val canonical_exn : Asig.t -> Schema.t -> t

val find_query : t -> string -> qimage option
val find_update : t -> string -> string option

(** Instantiate query [q]'s image on parameter values: the closed L3
    wff to evaluate against the current database. *)
val apply_query : t -> string -> Value.t list -> (Formula.t, string) result

(** Like {!apply_query}, but with argument terms (free variables stay
    free). *)
val apply_query_terms : t -> string -> Term.t list -> (Formula.t, string) result

(** Sanity checks: every query/update of L2 has an image; wffs are
    well-sorted; procedures exist with matching parameter sorts. *)
val check : t -> Asig.t -> Schema.t -> string list
