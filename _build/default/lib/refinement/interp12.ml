(** Interpretations I binding the information level to the functions
    level (paper Section 4.3).

    An interpretation maps each n-ary db-predicate symbol [p] of L1 to a
    Boolean term of L2 with free variables [x1..xn, σ] — in the running
    example, [offered ↦ offered(c, σ)] and [takes ↦ takes(s, c, σ)].
    Ordinary function symbols map to themselves (parameter operators
    shared by both levels). *)

open Fdbs_logic
open Fdbs_algebra

(** Image of one db-predicate: formal argument variables paired with a
    Boolean algebraic term over them and {!state_var}. *)
type image = {
  img_args : Term.var list;
  img_term : Aterm.t;
}

type t = {
  db_preds : (string * image) list;
  state_var : Term.var;  (** the σ variable used in the images *)
}

let state_var : Term.var = { Term.vname = "sigma"; vsort = Fdbs_kernel.Sort.state }

let image args term = { img_args = args; img_term = term }

let make ?(state_var = state_var) db_preds = { db_preds; state_var }

(** The canonical interpretation when db-predicates and query functions
    correspond one-to-one by name (the paper's convenient "coincidence",
    Section 6): each db-predicate [p<s̄>] maps to [p(x̄, σ)]. *)
let canonical (sg1 : Signature.t) (sg2 : Asig.t) : (t, string) result =
  let rec build acc = function
    | [] -> Ok (make (List.rev acc))
    | (p : Signature.pred) :: rest ->
      (match Asig.find_query sg2 p.Signature.pname with
       | None ->
         Error
           (Fmt.str "db-predicate %s has no homonym query function" p.Signature.pname)
       | Some q ->
         let qsorts = Asig.param_args q in
         if not (List.equal Fdbs_kernel.Sort.equal qsorts p.Signature.pargs) then
           Error (Fmt.str "db-predicate %s and query %s disagree on sorts"
                    p.Signature.pname q.Asig.oname)
         else
           let args =
             List.mapi
               (fun i srt -> { Term.vname = Fmt.str "x%d" (i + 1); vsort = srt })
               p.Signature.pargs
           in
           let term =
             Aterm.App
               ( q.Asig.oname,
                 List.map (fun v -> Aterm.Var v) args @ [ Aterm.Var state_var ] )
           in
           build ((p.Signature.pname, image args term) :: acc) rest)
  in
  build [] (Signature.db_preds sg1)

let canonical_exn sg1 sg2 =
  match canonical sg1 sg2 with
  | Ok i -> i
  | Error e -> invalid_arg ("Interp12.canonical_exn: " ^ e)

let find (i : t) p = List.assoc_opt p i.db_preds

(** Instantiate db-predicate [p]'s image on parameter values and a
    ground state term: the L2 term that answers "does p(v̄) hold in
    state t?". *)
let apply (i : t) (p : string) (values : Fdbs_kernel.Value.t list)
    (state_term : Aterm.t) : (Aterm.t, string) result =
  match find i p with
  | None -> Error (Fmt.str "no image for db-predicate %s" p)
  | Some img ->
    if List.length values <> List.length img.img_args then
      Error (Fmt.str "db-predicate %s arity mismatch" p)
    else
      let subst =
        (i.state_var, state_term)
        :: List.map2
             (fun v value -> (v, Aterm.Val (value, v.Term.vsort)))
             img.img_args values
      in
      Ok (Aterm.subst subst img.img_term)

(** Like {!apply}, but with algebraic terms as arguments (used by the
    syntactic wff translation, where arguments are variables or
    parameter terms rather than values). *)
let apply_terms (i : t) (p : string) (args : Aterm.t list) (state_term : Aterm.t) :
  (Aterm.t, string) result =
  match find i p with
  | None -> Error (Fmt.str "no image for db-predicate %s" p)
  | Some img ->
    if List.length args <> List.length img.img_args then
      Error (Fmt.str "db-predicate %s arity mismatch" p)
    else
      let subst =
        (i.state_var, state_term) :: List.combine img.img_args args
      in
      Ok (Aterm.subst subst img.img_term)

(** Sanity-check an interpretation against the two signatures: every
    db-predicate of L1 has an image; images are Boolean and well-sorted
    in L2. *)
let check (i : t) (sg1 : Signature.t) (sg2 : Asig.t) : string list =
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun (p : Signature.pred) ->
      match find i p.Signature.pname with
      | None -> err "db-predicate %s has no image" p.Signature.pname
      | Some img ->
        if
          not
            (List.equal Fdbs_kernel.Sort.equal p.Signature.pargs
               (List.map (fun v -> v.Term.vsort) img.img_args))
        then err "image of %s binds wrong argument sorts" p.Signature.pname;
        (match Atyping.check_bool sg2 img.img_term with
         | Ok () -> ()
         | Error e -> err "image of %s: %s" p.Signature.pname e))
    (Signature.db_preds sg1);
  List.rev !errors
