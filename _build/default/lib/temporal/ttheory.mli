(** Information-level theories T1 = (L1, A1): a temporal language given
    by a first-order signature (db-predicates plus ordinary symbols) and
    a set of named temporal axioms (paper Section 3.1). *)

open Fdbs_logic

type axiom = {
  ax_name : string;
  ax_formula : Tformula.t;
}

type t = {
  name : string;
  signature : Signature.t;
  axioms : axiom list;
}

val axiom : string -> Tformula.t -> axiom

(** Build a theory, checking every axiom is a well-sorted sentence. *)
val make :
  name:string -> signature:Signature.t -> axioms:axiom list -> (t, string) result

val make_exn : name:string -> signature:Signature.t -> axioms:axiom list -> t

val static_axioms : t -> axiom list
val transition_axioms : t -> axiom list

(** Check every axiom at every state of a universe. *)
val check_in : t -> Universe.t -> Check.report list

val pp : t Fmt.t
