(** Universes for a temporal language: U = (S, R) where S is a set of
    structures sharing one domain and R is the accessibility relation
    over S (paper Section 3.1). States are indexed 0..n-1. *)

open Fdbs_logic

type t = {
  states : Structure.t array;
  succ : int list array;  (** adjacency: [succ.(i)] are R-successors of state i *)
}

let make ~(states : Structure.t list) ~(edges : (int * int) list) : t =
  let states = Array.of_list states in
  let n = Array.length states in
  let succ = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg (Fmt.str "Universe.make: edge (%d,%d) out of range" a b);
      if not (List.mem b succ.(a)) then succ.(a) <- b :: succ.(a))
    edges;
  Array.iteri (fun i l -> succ.(i) <- List.sort compare l) succ;
  { states; succ }

let state (u : t) i = u.states.(i)
let num_states (u : t) = Array.length u.states
let successors (u : t) i = u.succ.(i)

let edges (u : t) =
  Array.to_list u.succ
  |> List.mapi (fun i l -> List.map (fun j -> (i, j)) l)
  |> List.concat

(** Replace R by its transitive closure (Floyd–Warshall). Use when
    "future state" is meant transitively rather than as one step. *)
let transitive_closure (u : t) : t =
  let n = num_states u in
  let reach = Array.make_matrix n n false in
  Array.iteri (fun i l -> List.iter (fun j -> reach.(i).(j) <- true) l) u.succ;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let succ =
    Array.init n (fun i ->
        List.filter (fun j -> reach.(i).(j)) (List.init n Fun.id))
  in
  { states = u.states; succ }

(** Also add each state as its own successor. *)
let reflexive (u : t) : t =
  let succ =
    Array.mapi (fun i l -> if List.mem i l then l else List.sort compare (i :: l)) u.succ
  in
  { states = u.states; succ }

(** Generate a universe from an initial state and a step function, with
    states deduplicated by extensional equality; exploration stops after
    [limit] distinct states. Returns the universe and whether the
    exploration was truncated. *)
let generate ~(limit : int) ~(init : Structure.t list)
    ~(step : Structure.t -> Structure.t list) : t * bool =
  let states, truncated =
    Fdbs_kernel.Util.bfs_fixpoint ~eq:Structure.equal_tables ~limit ~step init
  in
  let arr = Array.of_list states in
  let index st =
    let rec go i =
      if i >= Array.length arr then None
      else if Structure.equal_tables arr.(i) st then Some i
      else go (i + 1)
    in
    go 0
  in
  let edges =
    List.concat
      (List.mapi
         (fun i st ->
           List.filter_map index (step st) |> List.map (fun j -> (i, j)))
         states)
  in
  (make ~states ~edges, truncated)
