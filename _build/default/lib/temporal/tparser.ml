(** Concrete syntax for temporal wffs: the first-order syntax of
    {!Fdbs_logic.Parser} extended with the prefix modal operators
    [dia] (◇, synonym [possibly]) and [box] (□, synonym [necessarily]). *)

open Fdbs_kernel
open Fdbs_logic

type env = (string * Sort.t) list

let kw_dia = [ "dia"; "possibly" ]
let kw_box = [ "box"; "necessarily" ]
let reserved = Parser.reserved @ kw_dia @ kw_box

let rec parse_formula (sg : Signature.t) (env : env) st : Tformula.t =
  if Parse.accept_kw st "forall" then quantified sg env st true
  else if Parse.accept_kw st "exists" then quantified sg env st false
  else parse_iff sg env st

and quantified sg env st universal =
  let binders = Parser.parse_binders st in
  List.iter
    (fun (name, _) ->
      if List.mem name reserved then
        Parse.fail st (Fmt.str "reserved word %s used as a variable" name))
    binders;
  Parse.expect_sym st ".";
  let body = parse_formula sg (List.rev binders @ env) st in
  let vars = List.map (fun (n, s) -> { Term.vname = n; vsort = s }) binders in
  if universal then Tformula.forall vars body else Tformula.exists vars body

and parse_iff sg env st =
  let lhs = parse_imp sg env st in
  let rec loop acc =
    if Parse.accept_sym st "<->" || Parse.accept_sym st "<=>" then
      loop (Tformula.Iff (acc, parse_imp sg env st))
    else acc
  in
  loop lhs

and parse_imp sg env st =
  let lhs = parse_or sg env st in
  if Parse.accept_sym st "->" || Parse.accept_sym st "=>" then
    Tformula.Imp (lhs, parse_imp sg env st)
  else lhs

and parse_or sg env st =
  let lhs = parse_and sg env st in
  let rec loop acc =
    if Parse.accept_sym st "|" || Parse.accept_sym st "||" then
      loop (Tformula.Or (acc, parse_and sg env st))
    else acc
  in
  loop lhs

and parse_and sg env st =
  let lhs = parse_unary sg env st in
  let rec loop acc =
    if Parse.accept_sym st "&" || Parse.accept_sym st "&&" then
      loop (Tformula.And (acc, parse_unary sg env st))
    else acc
  in
  loop lhs

and parse_unary sg env st =
  if Parse.accept_sym st "~" || Parse.accept_sym st "!" then
    Tformula.Not (parse_unary sg env st)
  else if List.exists (Parse.accept_kw st) kw_dia then
    Tformula.Possibly (parse_unary sg env st)
  else if List.exists (Parse.accept_kw st) kw_box then
    Tformula.Necessarily (parse_unary sg env st)
  else parse_atom sg env st

and parse_atom sg env st =
  if Parse.accept_kw st "true" then Tformula.True
  else if Parse.accept_kw st "false" then Tformula.False
  else if Parse.accept_sym st "(" then begin
    let f = parse_formula sg env st in
    Parse.expect_sym st ")";
    f
  end
  else
    match Parse.peek st with
    | Lexer.Ident name | Lexer.Uident name
      when (match Signature.find_pred sg name with Some _ -> true | None -> false)
           && not (List.mem_assoc name env) ->
      Parse.advance st;
      let args =
        if Parse.accept_sym st "(" then begin
          let args = Parse.sep_list st ~sep:"," (Parser.parse_term sg env) in
          Parse.expect_sym st ")";
          args
        end
        else []
      in
      Tformula.Pred (name, args)
    | _ ->
      let t1 = Parser.parse_term sg env st in
      if Parse.accept_sym st "=" then Tformula.Eq (t1, Parser.parse_term sg env st)
      else if Parse.accept_sym st "/=" || Parse.accept_sym st "<>" then
        Tformula.Not (Tformula.Eq (t1, Parser.parse_term sg env st))
      else Parse.fail st "expected '=' or '/=' after a term"

(** Parse a temporal wff; [free] declares sorts of free variables. *)
let formula ?(free : env = []) (sg : Signature.t) (src : string) :
  (Tformula.t, string) result =
  Parse.run (fun st -> parse_formula sg free st) src

let formula_exn ?free sg src =
  match formula ?free sg src with
  | Ok f -> f
  | Error e -> invalid_arg ("Tparser.formula_exn: " ^ e)

(* ------------------------------------------------------------------ *)
(* Theory files                                                        *)
(* ------------------------------------------------------------------ *)

(* A theory file declares the information level T1 = (L1, A1):

     theory university
     sort course
     sort student
     pred offered : course            # db-predicates
     pred takes : student, course
     const cs101 : course             # optional individual constants
     axiom static: ~(exists s:student, c:course. takes(s, c) & ~offered(c))
     axiom transition: ~(exists s:student, c:course.
                           dia (takes(s, c) & dia ~(exists c2:course. takes(s, c2))))

   [shared name : sorts] declares an ordinary (non-db) predicate. *)

(** Parse an information-level theory file. *)
let theory (src : string) : (Ttheory.t, string) result =
  let parse st =
    Parse.expect_kw st "theory";
    let name = Parse.ident st in
    let sorts = ref [] in
    let preds = ref [] in
    let consts = ref [] in
    let axioms = ref [] in
    (* First pass collects declarations; axiom formulas are parsed on
       the spot once the signature is complete, so axioms must follow
       the declarations they use (single forward pass, two stages). *)
    let rec decls () =
      if Parse.accept_kw st "sort" then begin
        sorts := Sort.make (Parse.ident st) :: !sorts;
        decls ()
      end
      else if Parse.accept_kw st "pred" then decls_pred true ()
      else if Parse.accept_kw st "shared" then decls_pred false ()
      else if Parse.accept_kw st "const" then begin
        let n = Parse.ident st in
        Parse.expect_sym st ":";
        consts := (n, Sort.make (Parse.ident st)) :: !consts;
        decls ()
      end
      else if Parse.at_eof st then ()
      else axioms_loop ()
    and decls_pred db () =
      let n = Parse.ident st in
      Parse.expect_sym st ":";
      let args = Parse.sep_list st ~sep:"," (fun st -> Sort.make (Parse.ident st)) in
      preds := (n, args, db) :: !preds;
      decls ()
    and axioms_loop () =
      if Parse.accept_kw st "axiom" then begin
        let ax_name = Parse.ident st in
        Parse.expect_sym st ":";
        let sg = signature_of () in
        let f = parse_formula sg [] st in
        axioms := (ax_name, f) :: !axioms;
        axioms_loop ()
      end
      else if Parse.at_eof st then ()
      else Parse.fail st "expected 'axiom' or end of file"
    and signature_of () =
      Signature.make ~sorts:(List.rev !sorts)
        ~funcs:(List.rev_map (fun (n, s) -> Signature.const n s) !consts)
        ~preds:(List.rev_map (fun (n, args, db) -> Signature.pred ~db n args) !preds)
    in
    decls ();
    let sg = signature_of () in
    (name, sg, List.rev !axioms)
  in
  match Parse.run parse src with
  | Error e -> Error e
  | Ok (name, signature, axioms) ->
    Ttheory.make ~name ~signature
      ~axioms:(List.map (fun (n, f) -> Ttheory.axiom n f) axioms)

let theory_exn src =
  match theory src with
  | Ok t -> t
  | Error e -> invalid_arg ("Tparser.theory_exn: " ^ e)
