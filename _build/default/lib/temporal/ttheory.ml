(** Information-level theories T1 = (L1, A1): a temporal language given
    by a first-order signature (db-predicates plus ordinary symbols) and
    a set of named temporal axioms (paper Section 3.1). *)

open Fdbs_logic

type axiom = {
  ax_name : string;
  ax_formula : Tformula.t;
}

type t = {
  name : string;
  signature : Signature.t;
  axioms : axiom list;
}

let axiom name formula = { ax_name = name; ax_formula = formula }

(** Build a theory, checking every axiom is a well-sorted sentence. *)
let make ~name ~signature ~axioms : (t, string) result =
  let rec check = function
    | [] -> Ok { name; signature; axioms }
    | ax :: rest ->
      (match Tformula.check signature ax.ax_formula with
       | Error e -> Error (Fmt.str "axiom %s: %s" ax.ax_name e)
       | Ok () ->
         if not (Tformula.is_closed ax.ax_formula) then
           Error (Fmt.str "axiom %s is not a sentence" ax.ax_name)
         else check rest)
  in
  check axioms

let make_exn ~name ~signature ~axioms =
  match make ~name ~signature ~axioms with
  | Ok t -> t
  | Error e -> invalid_arg ("Ttheory.make_exn: " ^ e)

let static_axioms (t : t) =
  List.filter (fun ax -> Tformula.is_static ax.ax_formula) t.axioms

let transition_axioms (t : t) =
  List.filter (fun ax -> not (Tformula.is_static ax.ax_formula)) t.axioms

(** Axioms failing somewhere in the universe. *)
let check_in (t : t) (u : Universe.t) : Check.report list =
  Check.check_axioms u (List.map (fun ax -> (ax.ax_name, ax.ax_formula)) t.axioms)

let pp ppf (t : t) =
  let pp_ax ppf ax =
    let kind = if Tformula.is_static ax.ax_formula then "static" else "transition" in
    Fmt.pf ppf "@[%s (%s): %a@]" ax.ax_name kind Tformula.pp ax.ax_formula
  in
  Fmt.pf ppf "@[<v>information-level theory %s@,%a@]" t.name
    Fmt.(list ~sep:cut pp_ax) t.axioms
