(** Temporal extension LT of a many-sorted first-order language L
    (paper Section 3.1).

    The syntax is that of L plus the possibility operator [Possibly]
    (the paper's ◇); necessity [Necessarily] (□) is its dual,
    [~◇~P]. Modalities may nest under connectives and quantifiers, as in
    the paper's transition constraint
    [forall s exists c (◇(takes(s,c) & ◇(exists c' takes(s,c'))))]. *)

open Fdbs_logic

type t =
  | True
  | False
  | Pred of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall of Term.var * t
  | Exists of Term.var * t
  | Possibly of t  (** ◇P: some accessible state satisfies P *)
  | Necessarily of t  (** □P, definable as [~◇~P] *)

let possibly f = Possibly f
let necessarily f = Necessarily f

let forall vs f = List.fold_right (fun v acc -> Forall (v, acc)) vs f
let exists vs f = List.fold_right (fun v acc -> Exists (v, acc)) vs f

(** Embed a non-modal first-order wff. *)
let rec of_formula : Formula.t -> t = function
  | Formula.True -> True
  | Formula.False -> False
  | Formula.Pred (p, args) -> Pred (p, args)
  | Formula.Eq (t1, t2) -> Eq (t1, t2)
  | Formula.Not f -> Not (of_formula f)
  | Formula.And (f, g) -> And (of_formula f, of_formula g)
  | Formula.Or (f, g) -> Or (of_formula f, of_formula g)
  | Formula.Imp (f, g) -> Imp (of_formula f, of_formula g)
  | Formula.Iff (f, g) -> Iff (of_formula f, of_formula g)
  | Formula.Forall (v, f) -> Forall (v, of_formula f)
  | Formula.Exists (v, f) -> Exists (v, of_formula f)

(** Project back to a first-order wff; [None] if a modality occurs. *)
let rec to_formula : t -> Formula.t option =
  let open Formula in
  let map2 k f g =
    match (to_formula f, to_formula g) with
    | Some f', Some g' -> Some (k f' g')
    | _, _ -> None
  in
  function
  | True -> Some True
  | False -> Some False
  | Pred (p, args) -> Some (Pred (p, args))
  | Eq (t1, t2) -> Some (Eq (t1, t2))
  | Not f -> Option.map (fun f' -> Not f') (to_formula f)
  | And (f, g) -> map2 (fun a b -> And (a, b)) f g
  | Or (f, g) -> map2 (fun a b -> Or (a, b)) f g
  | Imp (f, g) -> map2 (fun a b -> Imp (a, b)) f g
  | Iff (f, g) -> map2 (fun a b -> Iff (a, b)) f g
  | Forall (v, f) -> Option.map (fun f' -> Forall (v, f')) (to_formula f)
  | Exists (v, f) -> Option.map (fun f' -> Exists (v, f')) (to_formula f)
  | Possibly _ | Necessarily _ -> None

(** A wff is {e static} iff no modal operator occurs in it; otherwise it
    expresses a {e transition constraint} (paper Section 3.1). *)
let rec is_static = function
  | True | False | Pred _ | Eq _ -> true
  | Not f | Forall (_, f) | Exists (_, f) -> is_static f
  | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) -> is_static f && is_static g
  | Possibly _ | Necessarily _ -> false

type kind = Static | Transition

let classify f = if is_static f then Static else Transition

(** Modal depth: maximal nesting of ◇/□. *)
let rec modal_depth = function
  | True | False | Pred _ | Eq _ -> 0
  | Not f | Forall (_, f) | Exists (_, f) -> modal_depth f
  | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) -> max (modal_depth f) (modal_depth g)
  | Possibly f | Necessarily f -> 1 + modal_depth f

(** Free variables in first-occurrence order. *)
let free_vars (f : t) : Term.var list =
  let mem v l = List.exists (Term.var_equal v) l in
  let add_term bound acc t =
    List.fold_left
      (fun acc v -> if mem v bound || mem v acc then acc else v :: acc)
      acc (Term.free_vars t)
  in
  let rec go bound acc = function
    | True | False -> acc
    | Pred (_, args) -> List.fold_left (add_term bound) acc args
    | Eq (t1, t2) -> add_term bound (add_term bound acc t1) t2
    | Not f | Possibly f | Necessarily f -> go bound acc f
    | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) -> go bound (go bound acc f) g
    | Forall (v, f) | Exists (v, f) -> go (v :: bound) acc f
  in
  List.rev (go [] [] f)

let is_closed f = free_vars f = []

(** Well-sortedness against a signature (modalities are transparent). *)
let check (sg : Signature.t) (f : t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let rec go env = function
    | True | False -> Ok ()
    | Pred (p, args) -> Formula.check sg (Formula.Pred (p, args))
    | Eq (t1, t2) -> Formula.check sg (Formula.Eq (t1, t2))
    | Not f | Possibly f | Necessarily f -> go env f
    | And (f, g) | Or (f, g) | Imp (f, g) | Iff (f, g) ->
      let* () = go env f in
      go env g
    | Forall (v, f) | Exists (v, f) ->
      if Signature.has_sort sg v.Term.vsort then go (v :: env) f
      else Error (Fmt.str "quantifier binds variable of undeclared sort %s" v.Term.vsort)
  in
  go [] f

let rec pp_prec prec ppf f =
  let paren p body = if prec > p then Fmt.pf ppf "(%t)" body else body ppf in
  match f with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Pred (p, []) -> Fmt.string ppf p
  | Pred (p, args) -> Fmt.pf ppf "%s(%a)" p Fmt.(list ~sep:(any ", ") Term.pp) args
  | Eq (t1, t2) -> Fmt.pf ppf "%a = %a" Term.pp t1 Term.pp t2
  | Not (Eq (t1, t2)) -> Fmt.pf ppf "%a /= %a" Term.pp t1 Term.pp t2
  | Not f -> paren 5 (fun ppf -> Fmt.pf ppf "~%a" (pp_prec 5) f)
  | Possibly f -> paren 5 (fun ppf -> Fmt.pf ppf "dia %a" (pp_prec 5) f)
  | Necessarily f -> paren 5 (fun ppf -> Fmt.pf ppf "box %a" (pp_prec 5) f)
  | And (f, g) -> paren 4 (fun ppf -> Fmt.pf ppf "%a & %a" (pp_prec 4) f (pp_prec 5) g)
  | Or (f, g) -> paren 3 (fun ppf -> Fmt.pf ppf "%a | %a" (pp_prec 3) f (pp_prec 4) g)
  | Imp (f, g) -> paren 2 (fun ppf -> Fmt.pf ppf "%a -> %a" (pp_prec 3) f (pp_prec 2) g)
  | Iff (f, g) -> paren 1 (fun ppf -> Fmt.pf ppf "%a <-> %a" (pp_prec 2) f (pp_prec 1) g)
  | Forall (v, f) ->
    paren 0 (fun ppf ->
        Fmt.pf ppf "forall %s:%s. %a" v.Term.vname v.Term.vsort (pp_prec 0) f)
  | Exists (v, f) ->
    paren 0 (fun ppf ->
        Fmt.pf ppf "exists %s:%s. %a" v.Term.vname v.Term.vsort (pp_prec 0) f)

let pp = pp_prec 0
let to_string f = Fmt.str "%a" pp f
