(** The time-sorted alternative to modal operators (paper Section 3.1:
    "A different approach could also be taken by selecting a many-sorted
    first-order language with a special sort interpreted as time").

    A temporal wff over L translates into an ordinary first-order wff
    over the time extension of L's signature: every db-predicate gains a
    final argument of sort {!time_sort}, the predicate {!accessible}
    stands for the accessibility relation, and the modalities become
    quantifiers over time points. The translation agrees with the
    Kripke semantics (property-tested). *)

open Fdbs_kernel
open Fdbs_logic

(** The distinguished time sort, ["time"]. *)
val time_sort : Sort.t

(** The accessibility predicate over time points. *)
val accessible : string

(** The time extension of a signature: db-predicates widened with a
    final [time] argument, plus [accessible : <time, time>]. *)
val extend_signature : Signature.t -> Signature.t

(** Translate a temporal wff into a first-order wff over the extended
    signature, with the free time variable [now] as the current point:
    [◇P ↦ exists t'. accessible(now, t') & P(t')] and dually for □. *)
val translate : Signature.t -> now:Term.var -> Tformula.t -> Formula.t

(** Flatten a universe U = (S, R) into one structure of the extended
    signature: the time carrier is [Int 0 .. Int (n-1)]; a widened
    db-predicate holds of [(x̄, t)] iff it held of [x̄] in state t; and
    [accessible(i, j)] iff R(i, j). *)
val structure_of_universe : Signature.t -> Universe.t -> Structure.t

(** Truth of a temporal wff at state [i] via the time-sorted
    translation — equal to {!Check.holds_at}. *)
val holds_at : Signature.t -> Universe.t -> int -> Tformula.t -> bool
