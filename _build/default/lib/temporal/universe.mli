(** Universes for a temporal language: U = (S, R) where S is a set of
    structures sharing one domain and R is the accessibility relation
    over S (paper Section 3.1). States are indexed 0..n-1. *)

open Fdbs_logic

type t

(** Build a universe from a state list and accessibility edges; raises
    [Invalid_argument] on out-of-range edges. *)
val make : states:Structure.t list -> edges:(int * int) list -> t

val state : t -> int -> Structure.t
val num_states : t -> int

(** R-successors of a state, sorted. *)
val successors : t -> int -> int list

val edges : t -> (int * int) list

(** Replace R by its transitive closure. Use when "future state" is
    meant transitively rather than as one step. *)
val transitive_closure : t -> t

(** Also add each state as its own successor. *)
val reflexive : t -> t

(** Generate a universe from initial states and a step function, with
    states deduplicated by extensional equality; exploration stops after
    [limit] distinct states. Returns the universe and whether the
    exploration was truncated. *)
val generate :
  limit:int ->
  init:Structure.t list ->
  step:(Structure.t -> Structure.t list) ->
  t * bool
