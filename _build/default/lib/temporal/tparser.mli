(** Concrete syntax for temporal wffs and information-level theory
    files.

    Formulas use the first-order syntax of {!Fdbs_logic.Parser} extended
    with the prefix modal operators [dia] (◇, synonym [possibly]) and
    [box] (□, synonym [necessarily]).

    A theory file declares the information level T1 = (L1, A1):
    {v
    theory university
    sort course
    sort student
    pred offered : course            # db-predicates
    pred takes : student, course
    axiom static: ~(exists s:student, c:course. takes(s, c) & ~offered(c))
    axiom transition: ~(exists s:student, c:course.
                          dia (takes(s, c) & dia ~(exists c2:course. takes(s, c2))))
    v}
    [shared name : sorts] declares an ordinary (non-db) predicate and
    [const name : sort] an individual constant. *)

open Fdbs_kernel
open Fdbs_logic

type env = (string * Sort.t) list

val reserved : string list

(** The formula sub-parser, exposed for embedding. *)
val parse_formula : Signature.t -> env -> Parse.state -> Tformula.t

(** Parse a temporal wff; [free] declares sorts of free variables. *)
val formula : ?free:env -> Signature.t -> string -> (Tformula.t, string) result

val formula_exn : ?free:env -> Signature.t -> string -> Tformula.t

(** Parse an information-level theory file. *)
val theory : string -> (Ttheory.t, string) result

val theory_exn : string -> Ttheory.t
