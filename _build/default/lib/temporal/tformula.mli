(** Temporal extension LT of a many-sorted first-order language L
    (paper Section 3.1).

    The syntax is that of L plus the possibility operator [Possibly]
    (the paper's ◇); necessity [Necessarily] (□) is its dual, [~◇~P].
    Modalities may nest under connectives and quantifiers. *)

open Fdbs_logic

type t =
  | True
  | False
  | Pred of string * Term.t list
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall of Term.var * t
  | Exists of Term.var * t
  | Possibly of t  (** ◇P: some accessible state satisfies P *)
  | Necessarily of t  (** □P, definable as [~◇~P] *)

val possibly : t -> t
val necessarily : t -> t
val forall : Term.var list -> t -> t
val exists : Term.var list -> t -> t

(** Embed a non-modal first-order wff. *)
val of_formula : Formula.t -> t

(** Project back to a first-order wff; [None] if a modality occurs. *)
val to_formula : t -> Formula.t option

(** A wff is {e static} iff no modal operator occurs in it; otherwise
    it expresses a {e transition constraint} (paper Section 3.1). *)
val is_static : t -> bool

type kind = Static | Transition

val classify : t -> kind

(** Maximal nesting of ◇/□. *)
val modal_depth : t -> int

(** Free variables in first-occurrence order. *)
val free_vars : t -> Term.var list

val is_closed : t -> bool

(** Well-sortedness against a signature (modalities are transparent). *)
val check : Signature.t -> t -> (unit, string) result

val pp : t Fmt.t
val to_string : t -> string
