(** The time-sorted alternative to modal operators (paper Section 3.1:
    "A different approach could also be taken by selecting a many-sorted
    first-order language with a special sort interpreted as time").

    A temporal wff over L translates into an ordinary first-order wff
    over the {e time extension} of L's signature: every db-predicate
    gains a final argument of the distinguished sort {!time_sort}, a
    binary predicate {!accessible} on time points stands for the
    accessibility relation R, and the modalities become quantifiers:

    - [◇P]  ↦  [exists t'. accessible(t, t') & P[t']]
    - [□P]  ↦  [forall t'. accessible(t, t') -> P[t']]

    where [t] is the current time point. A universe U = (S, R) likewise
    flattens into a single structure whose time carrier indexes S; the
    two semantics agree ({!structure_of_universe}, tested by the
    equivalence property in the test suite). *)

open Fdbs_kernel
open Fdbs_logic

let time_sort : Sort.t = "time"
let accessible = "accessible"

(** The time extension of a signature: db-predicates widened with a
    final [time] argument, ordinary symbols untouched, plus the
    [accessible] predicate over time points. *)
let extend_signature (sg : Signature.t) : Signature.t =
  let sorts = time_sort :: Sort.Set.elements sg.Signature.sorts in
  let preds =
    List.map
      (fun (p : Signature.pred) ->
        if p.Signature.db then
          { p with Signature.pargs = p.Signature.pargs @ [ time_sort ] }
        else p)
      sg.Signature.preds
  in
  Signature.make ~sorts ~funcs:sg.Signature.funcs
    ~preds:(preds @ [ Signature.pred accessible [ time_sort; time_sort ] ])

let fresh_time_var (used : Term.var list) : Term.var =
  let rec pick i =
    let name = if i = 0 then "t" else Fmt.str "t%d" i in
    let cand = { Term.vname = name; vsort = time_sort } in
    if List.exists (Term.var_equal cand) used then pick (i + 1) else cand
  in
  pick 0

(** Translate a temporal wff into a first-order wff over the extended
    signature, with the free time variable [now] as the current point
    (db-predicates are the symbols that gain the time argument). *)
let translate (sg : Signature.t) ~(now : Term.var) (f : Tformula.t) : Formula.t =
  let is_db p =
    match Signature.find_pred sg p with Some pd -> pd.Signature.db | None -> false
  in
  let rec go (now : Term.var) (bound : Term.var list) : Tformula.t -> Formula.t =
    function
    | Tformula.True -> Formula.True
    | Tformula.False -> Formula.False
    | Tformula.Pred (p, args) ->
      if is_db p then Formula.Pred (p, args @ [ Term.Var now ])
      else Formula.Pred (p, args)
    | Tformula.Eq (t1, t2) -> Formula.Eq (t1, t2)
    | Tformula.Not g -> Formula.Not (go now bound g)
    | Tformula.And (g, h) -> Formula.And (go now bound g, go now bound h)
    | Tformula.Or (g, h) -> Formula.Or (go now bound g, go now bound h)
    | Tformula.Imp (g, h) -> Formula.Imp (go now bound g, go now bound h)
    | Tformula.Iff (g, h) -> Formula.Iff (go now bound g, go now bound h)
    | Tformula.Forall (v, g) -> Formula.Forall (v, go now (v :: bound) g)
    | Tformula.Exists (v, g) -> Formula.Exists (v, go now (v :: bound) g)
    | Tformula.Possibly g ->
      let t' = fresh_time_var (now :: bound) in
      Formula.Exists
        ( t',
          Formula.And
            ( Formula.Pred (accessible, [ Term.Var now; Term.Var t' ]),
              go t' (t' :: bound) g ) )
    | Tformula.Necessarily g ->
      let t' = fresh_time_var (now :: bound) in
      Formula.Forall
        ( t',
          Formula.Imp
            ( Formula.Pred (accessible, [ Term.Var now; Term.Var t' ]),
              go t' (t' :: bound) g ) )
  in
  go now [ now ] f

(** Flatten a universe U = (S, R) into one structure of the extended
    signature: the time carrier is [Int 0 .. Int (n-1)]; a widened
    db-predicate [p(x̄, t)] holds iff [p(x̄)] holds in state t; and
    [accessible(i, j)] iff R(i, j). Non-db symbols are taken from state
    0 (they are state-independent by assumption). *)
let structure_of_universe (sg : Signature.t) (u : Universe.t) : Structure.t =
  let n = Universe.num_states u in
  let base = Universe.state u 0 in
  let domain =
    Domain.add time_sort (List.init n (fun i -> Value.Int i)) (Structure.domain base)
  in
  let funcs =
    List.filter_map
      (fun (f : Signature.func) ->
        Option.map (fun fi -> (f.Signature.fname, fi)) (Structure.func base f.Signature.fname))
      sg.Signature.funcs
  in
  let state_index args =
    match List.rev args with
    | Value.Int i :: rest when i >= 0 && i < n -> Some (i, List.rev rest)
    | _ -> None
  in
  let preds =
    List.filter_map
      (fun (p : Signature.pred) ->
        if p.Signature.db then
          Some
            ( p.Signature.pname,
              fun args ->
                match state_index args with
                | Some (i, real_args) ->
                  (match Structure.pred (Universe.state u i) p.Signature.pname with
                   | Some pi -> pi real_args
                   | None -> false)
                | None -> false )
        else
          Option.map (fun pi -> (p.Signature.pname, pi))
            (Structure.pred base p.Signature.pname))
      sg.Signature.preds
  in
  let access args =
    match args with
    | [ Value.Int i; Value.Int j ] when i >= 0 && i < n ->
      List.mem j (Universe.successors u i)
    | _ -> false
  in
  Structure.make ~domain ~funcs ~preds:((accessible, access) :: preds) ()

(** Truth of a temporal wff at state [i] of [u], via the time-sorted
    translation — provably equal to {!Check.holds_at} (see the test
    suite's equivalence property). *)
let holds_at (sg : Signature.t) (u : Universe.t) (i : int) (f : Tformula.t) : bool =
  let now = { Term.vname = "now"; vsort = time_sort } in
  let translated = translate sg ~now f in
  let flat = structure_of_universe sg u in
  Eval.formula flat [ (now, Value.Int i) ] translated
