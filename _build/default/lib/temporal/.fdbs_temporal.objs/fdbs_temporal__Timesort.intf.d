lib/temporal/timesort.mli: Fdbs_kernel Fdbs_logic Formula Signature Sort Structure Term Tformula Universe
