lib/temporal/timesort.ml: Domain Eval Fdbs_kernel Fdbs_logic Fmt Formula List Option Signature Sort Structure Term Tformula Universe Value
