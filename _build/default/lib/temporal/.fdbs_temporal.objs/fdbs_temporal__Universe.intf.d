lib/temporal/universe.mli: Fdbs_logic Structure
