lib/temporal/check.ml: Domain Eval Fdbs_kernel Fdbs_logic Fmt Formula Fun List Structure Term Tformula Universe
