lib/temporal/ttheory.mli: Check Fdbs_logic Fmt Signature Tformula Universe
