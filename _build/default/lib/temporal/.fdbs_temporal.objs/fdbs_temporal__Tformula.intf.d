lib/temporal/tformula.mli: Fdbs_logic Fmt Formula Signature Term
