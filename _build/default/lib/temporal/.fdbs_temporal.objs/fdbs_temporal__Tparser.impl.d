lib/temporal/tparser.ml: Fdbs_kernel Fdbs_logic Fmt Lexer List Parse Parser Signature Sort Term Tformula Ttheory
