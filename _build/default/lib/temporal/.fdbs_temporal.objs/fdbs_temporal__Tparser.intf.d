lib/temporal/tparser.mli: Fdbs_kernel Fdbs_logic Parse Signature Sort Tformula Ttheory
