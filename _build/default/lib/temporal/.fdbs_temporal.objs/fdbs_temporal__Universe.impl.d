lib/temporal/universe.ml: Array Fdbs_kernel Fdbs_logic Fmt Fun List Structure
