lib/temporal/ttheory.ml: Check Fdbs_logic Fmt List Signature Tformula Universe
