lib/temporal/tformula.ml: Fdbs_logic Fmt Formula List Option Result Signature Term
