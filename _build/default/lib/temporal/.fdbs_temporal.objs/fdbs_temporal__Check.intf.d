lib/temporal/check.mli: Eval Fdbs_logic Fmt Tformula Universe
