(** First-order matching and unification on terms.

    Matching ([match_term]) instantiates only the pattern's variables and
    is what the conditional rewriting engine of the algebraic level uses;
    unification ([unify]) instantiates both sides and is provided for
    completeness (e.g. critical-pair analysis). *)

let rec occurs (v : Term.var) = function
  | Term.Var v' -> Term.var_equal v v'
  | Term.App (_, args) -> List.exists (occurs v) args
  | Term.Lit _ -> false

(** [match_term pattern term] finds a substitution [s] with
    [Term.subst s pattern = term], instantiating only variables of
    [pattern]; [term] is typically ground. Linear and non-linear
    patterns are both supported (repeated variables must match equal
    subterms). *)
let match_term (pattern : Term.t) (term : Term.t) : Term.Subst.t option =
  let rec go subst pattern term =
    match (pattern, term) with
    | Term.Var v, _ ->
      (match Term.Subst.lookup subst v with
       | Some bound -> if Term.equal bound term then Some subst else None
       | None -> Some (Term.Subst.bind subst v term))
    | Term.Lit v1, Term.Lit v2 -> if Fdbs_kernel.Value.equal v1 v2 then Some subst else None
    | Term.App (f, args1), Term.App (g, args2) when f = g && List.length args1 = List.length args2 ->
      let rec fold subst = function
        | [] -> Some subst
        | (p, t) :: rest ->
          (match go subst p t with None -> None | Some subst -> fold subst rest)
      in
      fold subst (Fdbs_kernel.Util.zip_exn args1 args2)
    | (Term.Lit _ | Term.App _), _ -> None
  in
  go Term.Subst.empty pattern term

(** [match_all pairs] matches a list of (pattern, term) pairs under one
    shared substitution. *)
let match_all (pairs : (Term.t * Term.t) list) : Term.Subst.t option =
  List.fold_left
    (fun acc (p, t) ->
      match acc with
      | None -> None
      | Some subst ->
        (match match_term (Term.subst subst p) t with
         | None -> None
         | Some s' ->
           Some (List.fold_left (fun s (v, tm) -> Term.Subst.bind s v tm)
                   subst (Term.Subst.bindings s'))))
    (Some Term.Subst.empty) pairs

(** Most general unifier of two terms, or [None]. *)
let unify (t1 : Term.t) (t2 : Term.t) : Term.Subst.t option =
  let rec go subst = function
    | [] -> Some subst
    | (t1, t2) :: rest ->
      let t1 = Term.subst subst t1 and t2 = Term.subst subst t2 in
      (match (t1, t2) with
       | _ when Term.equal t1 t2 -> go subst rest
       | Term.Var v, t | t, Term.Var v ->
         if occurs v t then None
         else
           let bind = Term.Subst.of_list [ (v, t) ] in
           let subst' =
             Term.Subst.of_list
               (List.map (fun (v', tm) -> (v', Term.subst bind tm)) (Term.Subst.bindings subst))
           in
           go (Term.Subst.bind subst' v t) rest
       | Term.App (f, args1), Term.App (g, args2)
         when f = g && List.length args1 = List.length args2 ->
         go subst (Fdbs_kernel.Util.zip_exn args1 args2 @ rest)
       | (Term.App _ | Term.Lit _), _ -> None)
  in
  go Term.Subst.empty [ (t1, t2) ]
