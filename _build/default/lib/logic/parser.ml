(** Concrete syntax for first-order terms and formulas.

    Grammar (precedence climbing, loosest first):
    {v
    formula := 'forall' binders '.' formula
             | 'exists' binders '.' formula
             | iff
    binders := name ':' sort (',' name ':' sort)*
    iff     := imp ('<->' imp)*
    imp     := or ('->' imp)?          (right associative)
    or      := and ('|' and)*
    and     := unary ('&' unary)*
    unary   := '~' unary | atom
    atom    := 'true' | 'false' | '(' formula ')'
             | term ('=' | '/=') term
             | predicate-application
    term    := integer | name | name '(' term (',' term)* ')'
    v}

    A bare name is resolved against the bound-variable environment first,
    then against the signature's function symbols; applications are
    resolved as predicates or functions by consulting the signature. *)

open Fdbs_kernel

type env = (string * Sort.t) list

let kw_forall = "forall"
let kw_exists = "exists"
let kw_true = "true"
let kw_false = "false"

let reserved = [ kw_forall; kw_exists; kw_true; kw_false ]

let rec parse_term (sg : Signature.t) (env : env) st : Term.t =
  match Parse.peek st with
  | Lexer.Int n ->
    Parse.advance st;
    Term.Lit (Value.Int n)
  | Lexer.Ident name | Lexer.Uident name ->
    Parse.advance st;
    if Parse.accept_sym st "(" then begin
      let args = Parse.sep_list st ~sep:"," (parse_term sg env) in
      Parse.expect_sym st ")";
      Term.App (name, args)
    end
    else begin
      match List.assoc_opt name env with
      | Some sort -> Term.Var { Term.vname = name; vsort = sort }
      | None ->
        (match Signature.find_func sg name with
         | Some _ -> Term.App (name, [])
         | None -> Parse.fail st (Fmt.str "unknown name %s (not a bound variable or declared constant)" name))
    end
  | other -> Parse.fail st (Fmt.str "expected a term but found %a" Lexer.pp_token other)

let parse_binders st : (string * Sort.t) list =
  let binder st =
    let name = Parse.ident st in
    Parse.expect_sym st ":";
    let sort = Parse.ident st in
    (name, Sort.make sort)
  in
  Parse.sep_list st ~sep:"," binder

let rec parse_formula (sg : Signature.t) (env : env) st : Formula.t =
  if Parse.accept_kw st kw_forall then quantified sg env st true
  else if Parse.accept_kw st kw_exists then quantified sg env st false
  else parse_iff sg env st

and quantified sg env st universal =
  let binders = parse_binders st in
  List.iter
    (fun (name, _) ->
      if List.mem name reserved then
        Parse.fail st (Fmt.str "reserved word %s used as a variable" name))
    binders;
  Parse.expect_sym st ".";
  let body = parse_formula sg (List.rev binders @ env) st in
  let vars = List.map (fun (n, s) -> { Term.vname = n; vsort = s }) binders in
  if universal then Formula.forall vars body else Formula.exists vars body

and parse_iff sg env st =
  let lhs = parse_imp sg env st in
  let rec loop acc =
    if Parse.accept_sym st "<->" || Parse.accept_sym st "<=>" then
      loop (Formula.Iff (acc, parse_imp sg env st))
    else acc
  in
  loop lhs

and parse_imp sg env st =
  let lhs = parse_or sg env st in
  if Parse.accept_sym st "->" || Parse.accept_sym st "=>" then
    Formula.Imp (lhs, parse_imp sg env st)
  else lhs

and parse_or sg env st =
  let lhs = parse_and sg env st in
  let rec loop acc =
    if Parse.accept_sym st "|" || Parse.accept_sym st "||" then
      loop (Formula.Or (acc, parse_and sg env st))
    else acc
  in
  loop lhs

and parse_and sg env st =
  let lhs = parse_unary sg env st in
  let rec loop acc =
    if Parse.accept_sym st "&" || Parse.accept_sym st "&&" then
      loop (Formula.And (acc, parse_unary sg env st))
    else acc
  in
  loop lhs

and parse_unary sg env st =
  if Parse.accept_sym st "~" || Parse.accept_sym st "!" then
    Formula.Not (parse_unary sg env st)
  else parse_atom sg env st

and parse_atom sg env st =
  if Parse.accept_kw st kw_true then Formula.True
  else if Parse.accept_kw st kw_false then Formula.False
  else if Parse.accept_sym st "(" then begin
    let f = parse_formula sg env st in
    Parse.expect_sym st ")";
    f
  end
  else begin
    (* Either a predicate application or a term comparison. Look ahead:
       if the head name is a declared predicate and is applied (or 0-ary),
       and no comparison operator follows, treat it as an atom. *)
    match Parse.peek st with
    | Lexer.Ident name | Lexer.Uident name
      when (match Signature.find_pred sg name with Some _ -> true | None -> false)
           && not (List.mem_assoc name env) ->
      Parse.advance st;
      let args =
        if Parse.accept_sym st "(" then begin
          let args = Parse.sep_list st ~sep:"," (parse_term sg env) in
          Parse.expect_sym st ")";
          args
        end
        else []
      in
      Formula.Pred (name, args)
    | _ ->
      let t1 = parse_term sg env st in
      if Parse.accept_sym st "=" then Formula.Eq (t1, parse_term sg env st)
      else if Parse.accept_sym st "/=" || Parse.accept_sym st "<>" then
        Formula.Not (Formula.Eq (t1, parse_term sg env st))
      else Parse.fail st "expected '=' or '/=' after a term"
  end

(** Parse a formula; [free] declares the sorts of free variables. *)
let formula ?(free : env = []) (sg : Signature.t) (src : string) :
  (Formula.t, string) result =
  Parse.run (fun st -> parse_formula sg free st) src

(** Parse a term; [free] declares the sorts of free variables. *)
let term ?(free : env = []) (sg : Signature.t) (src : string) : (Term.t, string) result =
  Parse.run (fun st -> parse_term sg free st) src

let formula_exn ?free sg src =
  match formula ?free sg src with
  | Ok f -> f
  | Error e -> invalid_arg ("Parser.formula_exn: " ^ e)

let term_exn ?free sg src =
  match term ?free sg src with
  | Ok t -> t
  | Error e -> invalid_arg ("Parser.term_exn: " ^ e)
