lib/logic/structure.mli: Domain Fdbs_kernel Fmt Value
