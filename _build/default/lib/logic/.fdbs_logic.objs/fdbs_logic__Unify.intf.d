lib/logic/unify.mli: Term
