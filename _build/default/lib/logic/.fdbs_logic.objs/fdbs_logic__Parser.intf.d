lib/logic/parser.mli: Fdbs_kernel Formula Parse Signature Sort Term
