lib/logic/unify.ml: Fdbs_kernel List Term
