lib/logic/term.mli: Fdbs_kernel Fmt Signature Sort Value
