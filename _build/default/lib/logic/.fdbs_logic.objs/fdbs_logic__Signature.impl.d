lib/logic/signature.ml: Fdbs_kernel Fmt List Sort
