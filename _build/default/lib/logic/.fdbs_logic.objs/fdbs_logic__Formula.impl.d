lib/logic/formula.ml: Fdbs_kernel Fmt List Result Signature Sort Term
