lib/logic/parser.ml: Fdbs_kernel Fmt Formula Lexer List Parse Signature Sort Term Value
