lib/logic/formula.mli: Fmt Signature Term
