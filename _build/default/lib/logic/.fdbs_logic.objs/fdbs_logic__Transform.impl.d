lib/logic/transform.ml: Fmt Formula List Term
