lib/logic/eval.mli: Fdbs_kernel Formula Structure Term Value
