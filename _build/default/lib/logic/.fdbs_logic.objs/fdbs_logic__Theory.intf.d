lib/logic/theory.mli: Fmt Formula Signature Structure
