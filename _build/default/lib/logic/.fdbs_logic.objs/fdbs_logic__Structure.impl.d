lib/logic/structure.ml: Domain Fdbs_kernel Fmt Hashtbl List Map Stdlib String Value
