lib/logic/term.ml: Fdbs_kernel Fmt List Signature Sort Stdlib Value
