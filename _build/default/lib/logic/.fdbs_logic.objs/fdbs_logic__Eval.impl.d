lib/logic/eval.ml: Domain Fdbs_kernel Fmt Formula List Structure Term Util Value
