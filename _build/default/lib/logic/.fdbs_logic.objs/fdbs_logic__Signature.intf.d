lib/logic/signature.mli: Fdbs_kernel Fmt Sort
