lib/logic/theory.ml: Eval Fmt Formula List Signature String Structure Term
