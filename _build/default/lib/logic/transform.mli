(** Syntactic transformations on formulas: simplification, negation
    normal form and prenex normal form. All preserve truth in every
    structure (property-tested). *)

(** Bottom-up Boolean simplification: unit laws, idempotence on
    syntactically equal subformulas, double negation. *)
val simplify : Formula.t -> Formula.t

(** Negation normal form: negations pushed to atoms; [->] and [<->]
    eliminated. *)
val nnf : Formula.t -> Formula.t

(** Prenex normal form: quantifiers pulled to the front, bound
    variables renamed apart when needed. Normalizes to NNF first. *)
val prenex : Formula.t -> Formula.t

(** Universal closure over the formula's free variables. *)
val universal_closure : Formula.t -> Formula.t

(** Existential closure over the formula's free variables. *)
val existential_closure : Formula.t -> Formula.t

(** Maximal nesting of quantifiers. *)
val quantifier_depth : Formula.t -> int
