(** First-order theories T = (L, A): a language (signature) together
    with a set of named axioms (paper Section 3.1). *)

type axiom = {
  ax_name : string;
  ax_formula : Formula.t;
}

type t = {
  name : string;
  signature : Signature.t;
  axioms : axiom list;
}

val axiom : string -> Formula.t -> axiom

(** Build a theory, checking every axiom is a well-sorted sentence. *)
val make :
  name:string -> signature:Signature.t -> axioms:axiom list -> (t, string) result

val make_exn : name:string -> signature:Signature.t -> axioms:axiom list -> t

(** Axioms falsified by the structure (empty iff it is a model). *)
val failures : t -> Structure.t -> axiom list

val is_model : t -> Structure.t -> bool

val pp : t Fmt.t
