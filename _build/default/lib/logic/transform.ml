(** Syntactic transformations on formulas: simplification, negation
    normal form and prenex normal form. *)


(** One-step boolean simplifications applied bottom-up: unit laws,
    idempotence on syntactically equal subformulas, double negation. *)
let rec simplify (f : Formula.t) : Formula.t =
  let open Formula in
  match f with
  | True | False | Pred _ | Eq _ -> f
  | Not g ->
    (match simplify g with
     | True -> False
     | False -> True
     | Not h -> h
     | g' -> Not g')
  | And (g, h) ->
    (match (simplify g, simplify h) with
     | False, _ | _, False -> False
     | True, h' -> h'
     | g', True -> g'
     | g', h' -> if equal g' h' then g' else And (g', h'))
  | Or (g, h) ->
    (match (simplify g, simplify h) with
     | True, _ | _, True -> True
     | False, h' -> h'
     | g', False -> g'
     | g', h' -> if equal g' h' then g' else Or (g', h'))
  | Imp (g, h) ->
    (match (simplify g, simplify h) with
     | False, _ -> True
     | True, h' -> h'
     | _, True -> True
     | g', False -> simplify (Not g')
     | g', h' -> Imp (g', h'))
  | Iff (g, h) ->
    (match (simplify g, simplify h) with
     | True, h' -> h'
     | g', True -> g'
     | False, h' -> simplify (Not h')
     | g', False -> simplify (Not g')
     | g', h' -> if equal g' h' then True else Iff (g', h'))
  | Forall (v, g) -> Forall (v, simplify g)
  | Exists (v, g) -> Exists (v, simplify g)

(** Negation normal form: negations pushed to atoms; [->] and [<->]
    eliminated. *)
let nnf (f : Formula.t) : Formula.t =
  let open Formula in
  let rec pos = function
    | (True | False | Pred _ | Eq _) as a -> a
    | Not g -> neg g
    | And (g, h) -> And (pos g, pos h)
    | Or (g, h) -> Or (pos g, pos h)
    | Imp (g, h) -> Or (neg g, pos h)
    | Iff (g, h) -> And (Or (neg g, pos h), Or (neg h, pos g))
    | Forall (v, g) -> Forall (v, pos g)
    | Exists (v, g) -> Exists (v, pos g)
  and neg = function
    | True -> False
    | False -> True
    | (Pred _ | Eq _) as a -> Not a
    | Not g -> pos g
    | And (g, h) -> Or (neg g, neg h)
    | Or (g, h) -> And (neg g, neg h)
    | Imp (g, h) -> And (pos g, neg h)
    | Iff (g, h) -> Or (And (pos g, neg h), And (neg g, pos h))
    | Forall (v, g) -> Exists (v, neg g)
    | Exists (v, g) -> Forall (v, neg g)
  in
  pos f

(** Prenex normal form of an NNF formula: quantifiers pulled to the
    front, renaming bound variables apart when needed. *)
let prenex (f : Formula.t) : Formula.t =
  let open Formula in
  let counter = ref 0 in
  let fresh (v : Term.var) used =
    if List.exists (Term.var_equal v) used then begin
      incr counter;
      { v with Term.vname = Fmt.str "%s_%d" v.Term.vname !counter }
    end
    else v
  in
  (* Returns (prefix, matrix); prefix is a list of (quantifier, var). *)
  let rec split used = function
    | Forall (v, g) ->
      let v' = fresh v used in
      let g = if Term.var_equal v v' then g else subst (Term.Subst.of_list [ (v, Term.Var v') ]) g in
      let prefix, matrix = split (v' :: used) g in
      ((`All, v') :: prefix, matrix)
    | Exists (v, g) ->
      let v' = fresh v used in
      let g = if Term.var_equal v v' then g else subst (Term.Subst.of_list [ (v, Term.Var v') ]) g in
      let prefix, matrix = split (v' :: used) g in
      ((`Ex, v') :: prefix, matrix)
    | And (g, h) ->
      let pg, mg = split used g in
      let ph, mh = split (used @ List.map snd pg) h in
      (pg @ ph, And (mg, mh))
    | Or (g, h) ->
      let pg, mg = split used g in
      let ph, mh = split (used @ List.map snd pg) h in
      (pg @ ph, Or (mg, mh))
    | (True | False | Pred _ | Eq _ | Not _) as a -> ([], a)
    | (Imp _ | Iff _) as g ->
      (* not in NNF: normalize first *)
      split used (nnf g)
  in
  let prefix, matrix = split (free_vars f) (nnf f) in
  List.fold_right
    (fun (q, v) acc -> match q with `All -> Forall (v, acc) | `Ex -> Exists (v, acc))
    prefix matrix

(** Universal closure over the formula's free variables. *)
let universal_closure (f : Formula.t) = Formula.forall (Formula.free_vars f) f

(** Existential closure over the formula's free variables. *)
let existential_closure (f : Formula.t) = Formula.exists (Formula.free_vars f) f

(** Quantifier depth: maximal nesting of quantifiers. *)
let rec quantifier_depth (f : Formula.t) : int =
  let open Formula in
  match f with
  | True | False | Pred _ | Eq _ -> 0
  | Not g -> quantifier_depth g
  | And (g, h) | Or (g, h) | Imp (g, h) | Iff (g, h) ->
    max (quantifier_depth g) (quantifier_depth h)
  | Forall (_, g) | Exists (_, g) -> 1 + quantifier_depth g

