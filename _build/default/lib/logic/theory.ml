(** First-order theories T = (L, A): a language (signature) together
    with a set of named axioms (paper Section 3.1). *)

type axiom = {
  ax_name : string;
  ax_formula : Formula.t;
}

type t = {
  name : string;
  signature : Signature.t;
  axioms : axiom list;
}

let axiom name formula = { ax_name = name; ax_formula = formula }

(** Build a theory, checking every axiom is well-sorted and closed. *)
let make ~name ~signature ~axioms : (t, string) result =
  let rec check = function
    | [] -> Ok { name; signature; axioms }
    | ax :: rest ->
      (match Formula.check signature ax.ax_formula with
       | Error e -> Error (Fmt.str "axiom %s: %s" ax.ax_name e)
       | Ok () ->
         if not (Formula.is_closed ax.ax_formula) then
           Error (Fmt.str "axiom %s is not a sentence (free variables: %s)" ax.ax_name
                    (String.concat ", "
                       (List.map (fun v -> v.Term.vname)
                          (Formula.free_vars ax.ax_formula))))
         else check rest)
  in
  check axioms

let make_exn ~name ~signature ~axioms =
  match make ~name ~signature ~axioms with
  | Ok t -> t
  | Error e -> invalid_arg ("Theory.make_exn: " ^ e)

(** Axioms of [t] that [st] falsifies (empty iff [st] is a model). *)
let failures (t : t) (st : Structure.t) : axiom list =
  List.filter (fun ax -> not (Eval.sentence st ax.ax_formula)) t.axioms

(** [st] is a model of the theory iff it satisfies every axiom. *)
let is_model (t : t) (st : Structure.t) : bool = failures t st = []

let pp ppf (t : t) =
  let pp_ax ppf ax = Fmt.pf ppf "@[%s: %a@]" ax.ax_name Formula.pp ax.ax_formula in
  Fmt.pf ppf "@[<v>theory %s@,%a@,axioms:@,%a@]" t.name Signature.pp t.signature
    Fmt.(list ~sep:cut pp_ax) t.axioms
