(** Finite structures (interpretations) of a many-sorted language.

    A structure fixes a finite carrier for each sort and an
    interpretation for each function and predicate symbol. Predicates
    may be given either intensionally (as OCaml functions) or
    extensionally (as tuple tables); extensional structures additionally
    support equality comparison and printing, which the temporal level
    uses to deduplicate database states. *)

open Fdbs_kernel
module SMap = Map.Make (String)

type t = {
  domain : Domain.t;
  funcs : (Value.t list -> Value.t) SMap.t;
  preds : (Value.t list -> bool) SMap.t;
  tables : Value.t list list SMap.t;
      (** extensional content of db-predicates, when known *)
}

let make ~domain ?(funcs = []) ?(preds = []) () =
  {
    domain;
    funcs = SMap.of_seq (List.to_seq funcs);
    preds = SMap.of_seq (List.to_seq preds);
    tables = SMap.empty;
  }

(** Interpret predicate [name] extensionally by the given tuple list. *)
let with_table name tuples (st : t) =
  let index : (Value.t list, unit) Hashtbl.t = Hashtbl.create (List.length tuples + 7) in
  List.iter (fun tu -> Hashtbl.replace index tu ()) tuples;
  let tuples =
    Hashtbl.fold (fun tu () acc -> tu :: acc) index []
    |> List.sort (List.compare Value.compare)
  in
  let member args = Hashtbl.mem index args in
  {
    st with
    preds = SMap.add name member st.preds;
    tables = SMap.add name tuples st.tables;
  }

(** Build a fully extensional structure: constants plus predicate tables. *)
let of_tables ~domain ~(consts : (string * Value.t) list)
    ~(relations : (string * Value.t list list) list) : t =
  let funcs =
    List.map (fun (name, v) -> (name, fun (_ : Value.t list) -> v)) consts
  in
  let base = make ~domain ~funcs () in
  List.fold_left (fun st (name, tuples) -> with_table name tuples st) base relations

let domain (st : t) = st.domain

let func (st : t) name : (Value.t list -> Value.t) option = SMap.find_opt name st.funcs
let pred (st : t) name : (Value.t list -> bool) option = SMap.find_opt name st.preds

let table (st : t) name = SMap.find_opt name st.tables

(** Equality of the extensional parts (tables) of two structures; used to
    identify database states. Tables are kept sorted, so this is a
    linear comparison. Intensional parts are not comparable. *)
let equal_tables (a : t) (b : t) =
  SMap.equal (List.equal (List.equal Value.equal)) a.tables b.tables

let pp ppf (st : t) =
  let pp_rel ppf (name, tuples) =
    let pp_tuple ppf tu = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) tu in
    Fmt.pf ppf "@[%s = {%a}@]" name Fmt.(list ~sep:(any ", ") pp_tuple)
      (List.sort Stdlib.compare tuples)
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_rel) (SMap.bindings st.tables)
