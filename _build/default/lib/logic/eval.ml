(** Satisfaction: evaluating terms and formulas in a finite structure
    under a valuation (paper Section 3.1, the standard Tarskian rules).

    Quantifiers range over the structure's finite carrier of the bound
    variable's sort. *)

open Fdbs_kernel

type valuation = (Term.var * Value.t) list

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let lookup_var (v : Term.var) (rho : valuation) =
  let rec go = function
    | [] -> err "unbound variable %s" v.Term.vname
    | (v', value) :: rest -> if Term.var_equal v v' then value else go rest
  in
  go rho

(** Value of a term in structure [st] under valuation [rho]. *)
let rec term (st : Structure.t) (rho : valuation) : Term.t -> Value.t = function
  | Term.Var v -> lookup_var v rho
  | Term.Lit v -> v
  | Term.App (f, args) ->
    (match Structure.func st f with
     | None -> err "function symbol %s has no interpretation" f
     | Some fi -> fi (List.map (term st rho) args))

(** Truth of a formula in structure [st] under valuation [rho]. *)
let rec formula (st : Structure.t) (rho : valuation) : Formula.t -> bool = function
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Pred (p, args) ->
    (match Structure.pred st p with
     | None -> err "predicate symbol %s has no interpretation" p
     | Some pi -> pi (List.map (term st rho) args))
  | Formula.Eq (t1, t2) -> Value.equal (term st rho t1) (term st rho t2)
  | Formula.Not g -> not (formula st rho g)
  | Formula.And (g, h) -> formula st rho g && formula st rho h
  | Formula.Or (g, h) -> formula st rho g || formula st rho h
  | Formula.Imp (g, h) -> (not (formula st rho g)) || formula st rho h
  | Formula.Iff (g, h) -> formula st rho g = formula st rho h
  | Formula.Forall (v, g) ->
    List.for_all
      (fun value -> formula st ((v, value) :: rho) g)
      (Domain.carrier (Structure.domain st) v.Term.vsort)
  | Formula.Exists (v, g) ->
    List.exists
      (fun value -> formula st ((v, value) :: rho) g)
      (Domain.carrier (Structure.domain st) v.Term.vsort)

(** Truth of a closed formula. *)
let sentence st f = formula st [] f

(** All valuations of [vars] over the structure's domain satisfying [f];
    the finite-model analogue of query answering. *)
let satisfying_valuations (st : Structure.t) (vars : Term.var list) (f : Formula.t) :
  valuation list =
  let carriers =
    List.map (fun v -> Domain.carrier (Structure.domain st) v.Term.vsort) vars
  in
  Util.cartesian carriers
  |> List.filter_map (fun values ->
         let rho = Util.zip_exn vars values in
         if formula st rho f then Some rho else None)
