(** Concrete syntax for first-order terms and formulas.

    Grammar (precedence climbing, loosest first):
    {v
    formula := 'forall' binders '.' formula
             | 'exists' binders '.' formula
             | iff
    binders := name ':' sort (',' name ':' sort)*
    iff     := imp ('<->' imp)*
    imp     := or ('->' imp)?          (right associative)
    or      := and ('|' and)*
    and     := unary ('&' unary)*
    unary   := '~' unary | atom
    atom    := 'true' | 'false' | '(' formula ')'
             | term ('=' | '/=') term
             | predicate-application
    term    := integer | name | name '(' term (',' term)* ')'
    v}

    A bare name is resolved against the bound-variable environment
    first, then against the signature's function symbols; applications
    are resolved as predicates or functions by consulting the
    signature. *)

open Fdbs_kernel

(** Bound/free variable environment: name to sort. *)
type env = (string * Sort.t) list

(** Reserved words that cannot name variables. *)
val reserved : string list

(** Sub-parsers exposed for reuse by the temporal and RPR parsers. *)

val parse_term : Signature.t -> env -> Parse.state -> Term.t
val parse_binders : Parse.state -> (string * Sort.t) list
val parse_formula : Signature.t -> env -> Parse.state -> Formula.t

(** Parse a formula; [free] declares the sorts of free variables. *)
val formula : ?free:env -> Signature.t -> string -> (Formula.t, string) result

(** Parse a term; [free] declares the sorts of free variables. *)
val term : ?free:env -> Signature.t -> string -> (Term.t, string) result

val formula_exn : ?free:env -> Signature.t -> string -> Formula.t
val term_exn : ?free:env -> Signature.t -> string -> Term.t
