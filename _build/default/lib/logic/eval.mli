(** Satisfaction: evaluating terms and formulas in a finite structure
    under a valuation (paper Section 3.1, the standard Tarskian rules).

    Quantifiers range over the structure's finite carrier of the bound
    variable's sort. *)

open Fdbs_kernel

type valuation = (Term.var * Value.t) list

exception Eval_error of string

(** Value of a term in a structure under a valuation. Raises
    {!Eval_error} on unbound variables or uninterpreted symbols. *)
val term : Structure.t -> valuation -> Term.t -> Value.t

(** Truth of a formula in a structure under a valuation. *)
val formula : Structure.t -> valuation -> Formula.t -> bool

(** Truth of a closed formula. *)
val sentence : Structure.t -> Formula.t -> bool

(** All valuations of [vars] over the structure's domain satisfying the
    formula; the finite-model analogue of query answering. *)
val satisfying_valuations :
  Structure.t -> Term.var list -> Formula.t -> valuation list
