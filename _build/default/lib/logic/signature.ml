(** Many-sorted first-order signatures (the non-logical symbols of a
    language L, paper Section 3.1).

    A signature declares the sorts, the function symbols (constants are
    0-ary functions) and the predicate symbols. Predicate symbols
    representing database structures are flagged as {e db-predicates};
    the information-level language distinguishes them because the
    refinement interpretation [I] maps exactly those to query terms. *)

open Fdbs_kernel

type func = {
  fname : string;
  fargs : Sort.t list;
  fres : Sort.t;
}

type pred = {
  pname : string;
  pargs : Sort.t list;
  db : bool;  (** [true] iff this is a db-predicate symbol *)
}

type t = {
  sorts : Sort.Set.t;
  funcs : func list;
  preds : pred list;
}

let empty = { sorts = Sort.Set.singleton Sort.bool; funcs = []; preds = [] }

let find_dup names =
  let rec go = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else go rest
  in
  go names

(** Build a signature; raises [Invalid_argument] on duplicate symbol
    names or on symbols mentioning undeclared sorts. *)
let make ~sorts ~funcs ~preds : t =
  let sorts = Sort.Set.add Sort.bool (Sort.Set.of_list sorts) in
  let check_sort who s =
    if not (Sort.Set.mem s sorts) then
      invalid_arg (Fmt.str "Signature.make: %s uses undeclared sort %s" who s)
  in
  (match find_dup (List.map (fun f -> f.fname) funcs) with
   | Some d -> invalid_arg (Fmt.str "Signature.make: duplicate function symbol %s" d)
   | None -> ());
  (match find_dup (List.map (fun p -> p.pname) preds) with
   | Some d -> invalid_arg (Fmt.str "Signature.make: duplicate predicate symbol %s" d)
   | None -> ());
  List.iter
    (fun f ->
      List.iter (check_sort f.fname) f.fargs;
      check_sort f.fname f.fres)
    funcs;
  List.iter (fun p -> List.iter (check_sort p.pname) p.pargs) preds;
  { sorts; funcs; preds }

let func name args res = { fname = name; fargs = args; fres = res }
let const name sort = { fname = name; fargs = []; fres = sort }
let pred ?(db = false) name args = { pname = name; pargs = args; db }
let db_pred name args = pred ~db:true name args

let find_func (sg : t) name = List.find_opt (fun f -> f.fname = name) sg.funcs
let find_pred (sg : t) name = List.find_opt (fun p -> p.pname = name) sg.preds

let has_sort (sg : t) s = Sort.Set.mem s sg.sorts

let db_preds (sg : t) = List.filter (fun p -> p.db) sg.preds

(** Constants of a given sort, useful for generating ground instances. *)
let constants_of_sort (sg : t) s =
  List.filter (fun f -> f.fargs = [] && Sort.equal f.fres s) sg.funcs

let pp_func ppf f =
  match f.fargs with
  | [] -> Fmt.pf ppf "%s : %a" f.fname Sort.pp f.fres
  | _ ->
    Fmt.pf ppf "%s : %a -> %a" f.fname
      Fmt.(list ~sep:(any " * ") Sort.pp) f.fargs Sort.pp f.fres

let pp_pred ppf p =
  Fmt.pf ppf "%s%s : <%a>" p.pname (if p.db then " (db)" else "")
    Fmt.(list ~sep:(any ", ") Sort.pp) p.pargs

let pp ppf (sg : t) =
  Fmt.pf ppf "@[<v>sorts: %a@,%a@,%a@]"
    Fmt.(list ~sep:(any ", ") Sort.pp) (Sort.Set.elements sg.sorts)
    Fmt.(list ~sep:cut pp_func) sg.funcs
    Fmt.(list ~sep:cut pp_pred) sg.preds
