(** Finite structures (interpretations) of a many-sorted language.

    A structure fixes a finite carrier for each sort and an
    interpretation for each function and predicate symbol. Predicates
    may be given either intensionally (as OCaml functions) or
    extensionally (as tuple tables); extensional structures additionally
    support equality comparison and printing, which the temporal level
    uses to deduplicate database states. *)

open Fdbs_kernel

type t

val make :
  domain:Domain.t ->
  ?funcs:(string * (Value.t list -> Value.t)) list ->
  ?preds:(string * (Value.t list -> bool)) list ->
  unit ->
  t

(** Interpret predicate [name] extensionally by the given tuple list
    (deduplicated, kept sorted; membership is O(1) via an index). *)
val with_table : string -> Value.t list list -> t -> t

(** Build a fully extensional structure: constants plus predicate
    tables. *)
val of_tables :
  domain:Domain.t ->
  consts:(string * Value.t) list ->
  relations:(string * Value.t list list) list ->
  t

val domain : t -> Domain.t

(** Interpretation of a function symbol, if any. *)
val func : t -> string -> (Value.t list -> Value.t) option

(** Interpretation of a predicate symbol, if any. *)
val pred : t -> string -> (Value.t list -> bool) option

(** Extensional table of a predicate, when known (sorted). *)
val table : t -> string -> Value.t list list option

(** Equality of the extensional parts (tables) of two structures; used
    to identify database states. Intensional parts are not
    comparable. *)
val equal_tables : t -> t -> bool

val pp : t Fmt.t
