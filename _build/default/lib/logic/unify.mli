(** First-order matching and unification on terms.

    Matching instantiates only the pattern's variables and is what the
    conditional rewriting engine of the algebraic level uses;
    unification instantiates both sides and supports critical-pair
    analysis. *)

(** Does the variable occur in the term? *)
val occurs : Term.var -> Term.t -> bool

(** [match_term pattern term] finds a substitution [s] with
    [Term.subst s pattern = term], instantiating only variables of
    [pattern]. Non-linear patterns are supported (repeated variables
    must match equal subterms). *)
val match_term : Term.t -> Term.t -> Term.Subst.t option

(** Match a list of (pattern, term) pairs under one shared
    substitution. *)
val match_all : (Term.t * Term.t) list -> Term.Subst.t option

(** Most general unifier of two terms, or [None] (with occurs check). *)
val unify : Term.t -> Term.t -> Term.Subst.t option
