(** Many-sorted first-order signatures (the non-logical symbols of a
    language L, paper Section 3.1).

    A signature declares the sorts, the function symbols (constants are
    0-ary functions) and the predicate symbols. Predicate symbols
    representing database structures are flagged as {e db-predicates};
    the information-level language distinguishes them because the
    refinement interpretation I maps exactly those to query terms. *)

open Fdbs_kernel

type func = {
  fname : string;
  fargs : Sort.t list;
  fres : Sort.t;
}

type pred = {
  pname : string;
  pargs : Sort.t list;
  db : bool;  (** [true] iff this is a db-predicate symbol *)
}

type t = {
  sorts : Sort.Set.t;
  funcs : func list;
  preds : pred list;
}

(** The signature with no symbols (and only the [bool] sort). *)
val empty : t

(** First duplicate in a list of names, if any (shared helper). *)
val find_dup : string list -> string option

(** Build a signature; raises [Invalid_argument] on duplicate symbol
    names or on symbols mentioning undeclared sorts. The [bool] sort is
    always included. *)
val make : sorts:Sort.t list -> funcs:func list -> preds:pred list -> t

val func : string -> Sort.t list -> Sort.t -> func
val const : string -> Sort.t -> func
val pred : ?db:bool -> string -> Sort.t list -> pred
val db_pred : string -> Sort.t list -> pred

val find_func : t -> string -> func option
val find_pred : t -> string -> pred option
val has_sort : t -> Sort.t -> bool

(** The db-predicate symbols, in declaration order. *)
val db_preds : t -> pred list

(** Constants of a given sort, useful for generating ground instances. *)
val constants_of_sort : t -> Sort.t -> func list

val pp_func : func Fmt.t
val pp_pred : pred Fmt.t
val pp : t Fmt.t
