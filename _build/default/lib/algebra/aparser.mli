(** Concrete syntax for algebraic specifications.

    A specification file looks like:
    {v
    spec university

    sort course
    sort student
    const cs101 : course          # optional explicit parameter names

    query offered : course -> bool
    query takes : student, course -> bool

    update initiate
    update offer : course
    update cancel : course

    eq q1: offered(c, initiate) = false
    eq q6: (exists s:student. takes(s, c, U) = true)
           => offered(c, cancel(c, U)) = true

    describe cancel(c: course)
      pre: forall s:student. takes(s, c, U) = false
      effect: offered(c) := false
    v}

    Queries implicitly take a final [state] argument; updates implicitly
    map a final [state] argument to [state] (an update declared with no
    argument sorts is an initializer). Equation variables need not be
    declared: their sorts are inferred from the argument positions in
    which they occur. [=>] separates an equation's condition from its
    conclusion; [->] is Boolean implication inside terms. [describe]
    blocks give structured descriptions (Section 4.2). *)

open Fdbs_kernel

(** Parse a full specification file together with any [describe]
    blocks. *)
val spec_with_descriptions : string -> (Spec.t * Sdesc.t list, string) result

(** Parse a specification file (ignoring any [describe] blocks). *)
val spec : string -> (Spec.t, string) result

val spec_exn : string -> Spec.t

(** Parse a single term against a signature, with optional pre-bound
    variables (name, sort). *)
val term :
  ?vars:(string * Sort.t) list -> Asig.t -> string -> (Aterm.t, string) result

val term_exn : ?vars:(string * Sort.t) list -> Asig.t -> string -> Aterm.t
