(** Conditional equations [P => t = t'] (paper Section 4.1).

    If both sides have sort [state] the axiom is a {e U-equation};
    otherwise it is a {e Q-equation}. Following the paper we read each
    equation as a conditional term-rewriting rule: [t'] is "simpler"
    than [t] and rewriting replaces instances of [t] by [t']. *)

open Fdbs_kernel
open Fdbs_logic

type t = {
  eq_name : string;
  cond : Aterm.t;  (** Boolean; [Aterm.tru] when unconditional *)
  lhs : Aterm.t;
  rhs : Aterm.t;
}

let make ?(cond = Aterm.tru) name lhs rhs = { eq_name = name; cond; lhs; rhs }

type kind = U_equation | Q_equation

let kind (sg : Asig.t) (eq : t) : kind =
  match Atyping.sort_of sg eq.lhs with
  | Ok s when Sort.is_state s -> U_equation
  | Ok _ | Error _ -> Q_equation

(** Sort-check an equation: condition Boolean, sides of equal sort,
    conditions free of state-sorted quantification, and the paper's
    rewriting shape on the left-hand side: [q(params, u(params', U))]
    or [q(params, init)] with [q] a query and [u] an update. *)
let check (sg : Asig.t) (eq : t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let* () = Atyping.check_bool sg eq.cond in
  let* ls = Atyping.sort_of sg eq.lhs in
  let* rs = Atyping.sort_of sg eq.rhs in
  if not (Sort.equal ls rs) then
    Error (Fmt.str "equation %s equates sorts %s and %s" eq.eq_name ls rs)
  else
    (* Variables free in cond/rhs must occur in the lhs, so that a match
       of the lhs determines the whole instance. *)
    let lhs_vars = Aterm.free_vars eq.lhs in
    let escaped =
      List.filter
        (fun v -> not (List.exists (Term.var_equal v) lhs_vars))
        (Aterm.free_vars eq.cond @ Aterm.free_vars eq.rhs)
    in
    match escaped with
    | v :: _ ->
      Error
        (Fmt.str "equation %s: variable %s occurs in the condition or rhs but not in the lhs"
           eq.eq_name v.Term.vname)
    | [] -> Ok ()

(** The head structure of a Q-equation's lhs: the query symbol and the
    head symbol of its state argument (an update or initializer), used
    for coverage analysis. *)
let head_pair (sg : Asig.t) (eq : t) : (string * string) option =
  match eq.lhs with
  | Aterm.App (q, args) when Asig.is_query sg q ->
    (match List.rev args with
     | Aterm.App (u, _) :: _ when Asig.is_update sg u -> Some (q, u)
     | _ -> None)
  | _ -> None

let pp ppf (eq : t) =
  if Aterm.equal eq.cond Aterm.tru then
    Fmt.pf ppf "@[%s: %a = %a@]" eq.eq_name Aterm.pp eq.lhs Aterm.pp eq.rhs
  else
    Fmt.pf ppf "@[%s: %a => %a = %a@]" eq.eq_name Aterm.pp eq.cond Aterm.pp eq.lhs
      Aterm.pp eq.rhs
