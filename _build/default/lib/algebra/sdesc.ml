(** Structured descriptions of update functions (paper Section 4.2):
    intended effects, pre-conditions for state change, side-effects, and
    the convention that all other simple observations are not affected.

    From these, {!Derive} constructs conditional equations that are
    correct with respect to the description by construction. *)

open Fdbs_kernel
open Fdbs_logic

(** One intended effect or side-effect: the simple observation
    [query(args, ·)] takes value [value] in the new state. [args] are
    terms over the update's formal parameters (or wildcard variables);
    [value] is a Boolean/parameter expression over the parameters and
    the old state {!state_var}. *)
type effect_ = {
  eff_query : string;
  eff_args : Aterm.t list;
  eff_value : Aterm.t;
}

type t = {
  sd_update : string;  (** the update being described *)
  sd_params : Term.var list;  (** formal parameters (excluding the state) *)
  sd_pre : Aterm.t;  (** pre-condition for state change, over params and {!state_var} *)
  sd_effects : effect_ list;  (** intended effects and side-effects *)
  sd_comment : string;
}

(** The conventional old-state variable [U] used in descriptions. *)
let state_var : Term.var = { Term.vname = "U"; vsort = Sort.state }

let effect_ query args value = { eff_query = query; eff_args = args; eff_value = value }

let make ?(pre = Aterm.tru) ?(comment = "") ~update ~params ~effects () =
  { sd_update = update; sd_params = params; sd_pre = pre; sd_effects = effects; sd_comment = comment }

(** Sanity-check a description against a signature: the update exists,
    parameter arities/sorts line up, effect queries exist and each
    effect's argument list matches the query's parameter sorts. *)
let check (sg : Asig.t) (d : t) : (unit, string) result =
  let ( let* ) = Result.bind in
  match Asig.find_update sg d.sd_update with
  | None -> Error (Fmt.str "unknown update %s" d.sd_update)
  | Some u ->
    let expected = Asig.param_args u in
    let actual = List.map (fun v -> v.Term.vsort) d.sd_params in
    if not (List.equal Sort.equal expected actual) then
      Error (Fmt.str "description of %s: parameter sorts mismatch" d.sd_update)
    else
      let rec check_effects = function
        | [] -> Ok ()
        | e :: rest ->
          (match Asig.find_query sg e.eff_query with
           | None -> Error (Fmt.str "effect on unknown query %s" e.eff_query)
           | Some q ->
             let sorts = Asig.param_args q in
             if List.length sorts <> List.length e.eff_args then
               Error (Fmt.str "effect on %s: argument arity mismatch" e.eff_query)
             else
               let* () =
                 List.fold_left2
                   (fun acc arg srt ->
                     let* () = acc in
                     match Atyping.sort_of sg arg with
                     | Ok s when Sort.equal s srt -> Ok ()
                     | Ok s ->
                       Error (Fmt.str "effect on %s: argument of sort %s where %s expected"
                                e.eff_query s srt)
                     | Error m -> Error m)
                   (Ok ()) e.eff_args sorts
               in
               check_effects rest)
      in
      check_effects d.sd_effects

let pp ppf (d : t) =
  let pp_eff ppf e =
    Fmt.pf ppf "%s(%a) := %a" e.eff_query
      Fmt.(list ~sep:(any ", ") Aterm.pp) e.eff_args Aterm.pp e.eff_value
  in
  Fmt.pf ppf
    "@[<v>update %s(%a)%s@,pre-condition: %a@,effects:@,  %a@,not-affected: all other queries@]"
    d.sd_update
    Fmt.(list ~sep:(any ", ") (fun ppf v -> Fmt.pf ppf "%s:%s" v.Term.vname v.Term.vsort))
    d.sd_params
    (if d.sd_comment = "" then "" else "  # " ^ d.sd_comment)
    Aterm.pp d.sd_pre
    Fmt.(list ~sep:(any "@,  ") pp_eff) d.sd_effects
