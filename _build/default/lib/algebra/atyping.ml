(** Sort checking for algebraic terms. *)

open Fdbs_kernel
open Fdbs_logic

let ( let* ) = Result.bind

(** Sort of an algebraic term under a signature. Built-in Boolean
    operators are checked structurally; [eq] requires both sides to
    share a sort. *)
let rec sort_of (sg : Asig.t) (t : Aterm.t) : (Sort.t, string) result =
  match t with
  | Aterm.Var v -> Ok v.Term.vsort
  | Aterm.Val (Value.Bool _, s) ->
    if Sort.is_bool s then Ok s else Error "boolean value with non-bool sort tag"
  | Aterm.Val (_, s) -> Ok s
  | Aterm.Exists (v, b) | Aterm.Forall (v, b) ->
    if Sort.is_state v.Term.vsort then
      Error "quantification over sort state is not allowed in L2"
    else
      let* bs = sort_of sg b in
      if Sort.is_bool bs then Ok Sort.bool
      else Error "quantified body must be Boolean"
  | Aterm.App ("true", []) | Aterm.App ("false", []) -> Ok Sort.bool
  | Aterm.App ("not", [ a ]) ->
    let* s = sort_of sg a in
    if Sort.is_bool s then Ok Sort.bool else Error "argument of ~ must be Boolean"
  | Aterm.App (("and" | "or" | "imp" | "iff"), [ a; b ]) ->
    let* sa = sort_of sg a in
    let* sb = sort_of sg b in
    if Sort.is_bool sa && Sort.is_bool sb then Ok Sort.bool
    else Error "connective arguments must be Boolean"
  | Aterm.App ("eq", [ a; b ]) ->
    let* sa = sort_of sg a in
    let* sb = sort_of sg b in
    if Sort.equal sa sb then Ok Sort.bool
    else Error (Fmt.str "equality between distinct sorts %s and %s" sa sb)
  | Aterm.App (f, args) when Aterm.is_builtin f ->
    Error (Fmt.str "built-in operator %s applied to %d arguments" f (List.length args))
  | Aterm.App (f, args) ->
    (match Asig.find sg f with
     | None -> Error (Fmt.str "undeclared operator %s" f)
     | Some (_, o) ->
       if List.length args <> List.length o.Asig.oargs then
         Error (Fmt.str "operator %s expects %d arguments, got %d" f
                  (List.length o.Asig.oargs) (List.length args))
       else
         let rec check_args = function
           | [] -> Ok o.Asig.ores
           | (expected, a) :: rest ->
             let* s = sort_of sg a in
             if Sort.equal s expected then check_args rest
             else
               Error (Fmt.str "argument of %s has sort %s, expected %s" f s expected)
         in
         check_args (Util.zip_exn o.Asig.oargs args))

let check_bool (sg : Asig.t) (t : Aterm.t) : (unit, string) result =
  let* s = sort_of sg t in
  if Sort.is_bool s then Ok ()
  else Error (Fmt.str "expected a Boolean term, got sort %s" s)
