(** The observability condition (paper Section 4.1): L2 must be rich
    enough in queries that states are identified by their simple
    observations.

    The reachable quotient graph is built from full observation tables,
    so distinct nodes are distinguished by construction; the analyses
    here answer the {e ablation} question — which subsets of the query
    repertoire still suffice to identify every state? *)

(** Number of distinct states when only the observations of [queries]
    are kept; equal to the graph's node count iff [queries] identifies
    every state. *)
val quotient_size : Reach.graph -> queries:string list -> int

(** Does the full query set satisfy the observability condition over
    this graph? *)
val observable : Reach.graph -> bool

(** For each query, the quotient size after dropping it: queries whose
    removal shrinks the quotient are load-bearing. *)
val ablation : Spec.t -> Reach.graph -> (string * int) list

(** All minimal subsets of the query repertoire that still identify
    every state (exponential in the number of queries). *)
val minimal_sufficient_sets : Spec.t -> Reach.graph -> string list list

val pp_ablation : (string * int) list Fmt.t
