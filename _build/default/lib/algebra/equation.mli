(** Conditional equations [P => t = t'] (paper Section 4.1).

    If both sides have sort [state] the axiom is a {e U-equation};
    otherwise it is a {e Q-equation}. Following the paper, each equation
    is read as a conditional term-rewriting rule: [t'] is "simpler" than
    [t] and rewriting replaces instances of [t] by [t']. *)

type t = {
  eq_name : string;
  cond : Aterm.t;  (** Boolean; [Aterm.tru] when unconditional *)
  lhs : Aterm.t;
  rhs : Aterm.t;
}

val make : ?cond:Aterm.t -> string -> Aterm.t -> Aterm.t -> t

type kind = U_equation | Q_equation

val kind : Asig.t -> t -> kind

(** Sort-check an equation: condition Boolean, sides of equal sort, and
    every variable free in the condition or right-hand side occurring in
    the left-hand side (so a match determines the instance). *)
val check : Asig.t -> t -> (unit, string) result

(** The head structure of a Q-equation's lhs: the query symbol and the
    head symbol of its state argument (an update or initializer), used
    for coverage analysis. *)
val head_pair : Asig.t -> t -> (string * string) option

val pp : t Fmt.t
