(** The observability condition (paper Section 4.1): L2 must be rich
    enough in queries that states are identified by their simple
    observations — if every simple observation agrees on s and s', then
    s = s'.

    The reachable quotient graph is built from full observation tables,
    so distinct nodes are distinguished by construction; the interesting
    analysis is the {e ablation}: which subsets of the query repertoire
    still suffice to identify every state? Dropping a load-bearing
    query collapses the quotient and silently merges inequivalent
    states — exactly what the paper's condition guards against. *)

(** Number of distinct states when only the observations of [queries]
    are kept. Equal to the graph's node count iff [queries] suffices to
    identify every state. *)
let quotient_size (g : Reach.graph) ~(queries : string list) : int =
  let restrict (n : Reach.node) =
    List.filter
      (fun (o : Observe.observation) -> List.mem o.Observe.obs_query queries)
      n.Reach.obs
  in
  let keys = Hashtbl.create 64 in
  Array.iter
    (fun n ->
      let key =
        Fmt.str "%a" Fmt.(list ~sep:(any "|") Observe.pp_observation) (restrict n)
      in
      Hashtbl.replace keys key ())
    g.Reach.nodes;
  Hashtbl.length keys

(** Does the full query set satisfy the observability condition over
    this graph? True by construction of {!Reach.explore}, kept as an
    executable sanity check. *)
let observable (g : Reach.graph) : bool =
  let all_queries =
    Array.to_list g.Reach.nodes
    |> List.concat_map (fun (n : Reach.node) ->
           List.map (fun (o : Observe.observation) -> o.Observe.obs_query) n.Reach.obs)
    |> List.sort_uniq compare
  in
  quotient_size g ~queries:all_queries = Array.length g.Reach.nodes

(** For each query, the quotient size after dropping it: queries whose
    removal shrinks the quotient are load-bearing for observability. *)
let ablation (spec : Spec.t) (g : Reach.graph) : (string * int) list =
  let queries =
    List.map (fun (q : Asig.op) -> q.Asig.oname) spec.Spec.signature.Asig.queries
  in
  List.map
    (fun q ->
      let kept = List.filter (( <> ) q) queries in
      (q, quotient_size g ~queries:kept))
    queries

(** All minimal subsets of the query repertoire that still identify
    every state (exponential in the number of queries; repertoires are
    small). *)
let minimal_sufficient_sets (spec : Spec.t) (g : Reach.graph) : string list list =
  let queries =
    List.map (fun (q : Asig.op) -> q.Asig.oname) spec.Spec.signature.Asig.queries
  in
  let n = Array.length g.Reach.nodes in
  let rec subsets = function
    | [] -> [ [] ]
    | q :: rest ->
      let smaller = subsets rest in
      smaller @ List.map (fun s -> q :: s) smaller
  in
  let sufficient = List.filter (fun s -> quotient_size g ~queries:s = n) (subsets queries) in
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' ->
             List.length s' < List.length s && List.for_all (fun q -> List.mem q s) s')
           sufficient))
    sufficient

let pp_ablation ppf (rows : (string * int) list) =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut (fun ppf (q, n) -> Fmt.pf ppf "without %-10s -> %d states" q n))
    rows
