lib/algebra/eval.ml: Asig Aterm Domain Equation Fdbs_kernel Fdbs_logic Fmt List Result Sort Spec Term Trace Value
