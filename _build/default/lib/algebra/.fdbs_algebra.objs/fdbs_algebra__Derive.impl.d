lib/algebra/derive.ml: Asig Aterm Equation Fdbs_kernel Fdbs_logic Fmt Fun List Option Result Sdesc String Term
