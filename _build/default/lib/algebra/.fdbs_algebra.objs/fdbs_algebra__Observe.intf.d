lib/algebra/observe.mli: Domain Eval Fdbs_kernel Fmt Spec Trace Value
