lib/algebra/aterm.ml: Fdbs_kernel Fdbs_logic Fmt List Sort Stdlib Term Util Value
