lib/algebra/equation.mli: Asig Aterm Fmt
