lib/algebra/observability.mli: Fmt Reach Spec
