lib/algebra/aparser.ml: Asig Aterm Atyping Equation Fdbs_kernel Fdbs_logic Fmt Lexer List Parse Result Sdesc Sort Spec Term Util Value
