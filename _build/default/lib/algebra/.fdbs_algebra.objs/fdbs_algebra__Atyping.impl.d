lib/algebra/atyping.ml: Asig Aterm Fdbs_kernel Fdbs_logic Fmt List Result Sort Term Util Value
