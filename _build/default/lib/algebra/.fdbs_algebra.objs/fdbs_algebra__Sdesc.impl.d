lib/algebra/sdesc.ml: Asig Aterm Atyping Fdbs_kernel Fdbs_logic Fmt List Result Sort Term
