lib/algebra/completeness.mli: Aterm Eval Fmt Spec
