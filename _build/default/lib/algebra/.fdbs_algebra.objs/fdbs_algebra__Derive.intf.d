lib/algebra/derive.mli: Asig Equation Sdesc
