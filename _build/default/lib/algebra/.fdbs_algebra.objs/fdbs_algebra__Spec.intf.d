lib/algebra/spec.mli: Asig Domain Equation Fdbs_kernel Fmt Value
