lib/algebra/asig.mli: Fdbs_kernel Fmt Sort
