lib/algebra/observability.ml: Array Asig Fmt Hashtbl List Observe Reach Spec
