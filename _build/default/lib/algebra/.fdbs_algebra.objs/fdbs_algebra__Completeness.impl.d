lib/algebra/completeness.ml: Asig Aterm Domain Equation Eval Fdbs_kernel Fmt Fun List Spec Trace Util
