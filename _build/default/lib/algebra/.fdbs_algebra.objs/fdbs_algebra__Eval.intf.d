lib/algebra/eval.mli: Aterm Domain Fdbs_kernel Fmt Spec Trace Value
