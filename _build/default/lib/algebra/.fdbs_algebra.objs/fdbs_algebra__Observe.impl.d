lib/algebra/observe.ml: Asig Domain Eval Fdbs_kernel Fmt List Spec Trace Util Value
