lib/algebra/trace.ml: Asig Aterm Domain Fdbs_kernel Fmt List Option Util Value
