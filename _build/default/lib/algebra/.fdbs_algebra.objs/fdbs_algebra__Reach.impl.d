lib/algebra/reach.ml: Array Asig Domain Eval Fdbs_kernel Fmt Hashtbl List Observe Queue Spec Trace Util Value
