lib/algebra/spec.ml: Asig Domain Equation Fdbs_kernel Fmt List Value
