lib/algebra/aterm.mli: Fdbs_kernel Fdbs_logic Fmt Sort Term Value
