lib/algebra/confluence.mli: Aterm Domain Eval Fdbs_kernel Fdbs_logic Fmt Spec Term Trace Value
