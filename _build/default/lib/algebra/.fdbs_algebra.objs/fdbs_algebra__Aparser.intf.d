lib/algebra/aparser.mli: Asig Aterm Fdbs_kernel Sdesc Sort Spec
