lib/algebra/sdesc.mli: Asig Aterm Fdbs_logic Fmt Term
