lib/algebra/trace.mli: Asig Aterm Domain Fdbs_kernel Fmt Value
