lib/algebra/reach.mli: Domain Eval Fdbs_kernel Fmt Observe Spec Trace Value
