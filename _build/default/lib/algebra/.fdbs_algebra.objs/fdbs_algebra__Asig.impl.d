lib/algebra/asig.ml: Fdbs_kernel Fdbs_logic Fmt List Option Signature Sort
