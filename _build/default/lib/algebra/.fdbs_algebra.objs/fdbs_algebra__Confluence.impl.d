lib/algebra/confluence.ml: Array Aterm Domain Equation Eval Fdbs_kernel Fdbs_logic Fmt Fun List Sort Spec Term Trace Util Value
