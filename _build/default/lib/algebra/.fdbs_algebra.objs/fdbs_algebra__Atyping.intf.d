lib/algebra/atyping.mli: Asig Aterm Fdbs_kernel Sort
