(** Sort checking for algebraic terms. *)

open Fdbs_kernel

(** Sort of an algebraic term under a signature. Built-in Boolean
    operators are checked structurally; [eq] requires both sides to
    share a sort; quantification over [state] is rejected. *)
val sort_of : Asig.t -> Aterm.t -> (Sort.t, string) result

val check_bool : Asig.t -> Aterm.t -> (unit, string) result
