(** Terms of an algebraic specification language L2 (paper Section 4.1).

    The applicative fragment is ordinary many-sorted terms; in addition,
    Boolean-sorted terms may quantify over {e parameter} sorts (the
    paper's conditions such as [exists s (takes(s,c,U) = True)] — never
    over the state sort). The Boolean sort's constants and connectives
    are the built-in operators {!builtin_ops}. *)

open Fdbs_kernel
open Fdbs_logic

type t =
  | Var of Term.var
  | App of string * t list
  | Val of Value.t * Sort.t  (** sorted literal: a parameter name's value *)
  | Exists of Term.var * t  (** Boolean-sorted, over a parameter sort *)
  | Forall of Term.var * t

(** The built-in Boolean operators every L2 is equipped with
    (True, False, ¬ ∨ ∧ ⇒ ≡) plus overloaded equality ["eq"]. *)
val builtin_ops : string list

val is_builtin : string -> bool

val tru : t
val fls : t
val of_bool : bool -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val imp : t -> t -> t
val iff : t -> t -> t
val eq : t -> t -> t
val neq : t -> t -> t

(** Conjunction of a list; {!tru} when empty. *)
val conj : t list -> t

(** Disjunction of a list; {!fls} when empty. *)
val disj : t list -> t

val var : string -> Sort.t -> t
val state_var : string -> t
val sym : string -> Sort.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Free variables in first-occurrence order. *)
val free_vars : t -> Term.var list

val is_ground : t -> bool

(** Substitutions mapping variables to algebraic terms. *)
module Subst : sig
  type aterm = t
  type t = (Term.var * aterm) list

  val empty : t
  val of_list : (Term.var * aterm) list -> t
  val bindings : t -> (Term.var * aterm) list
  val lookup : t -> Term.var -> aterm option
  val bind : t -> Term.var -> aterm -> t
end

(** Apply a substitution; quantified variables shadow the domain. *)
val subst : Subst.t -> t -> t

val size : t -> int

(** [is_subterm s t]: does [s] occur within [t]? *)
val is_subterm : t -> t -> bool

(** First-order matching of the applicative fragment: instantiate the
    pattern's variables so it equals the target (non-linear patterns
    supported; matching under binders is not). *)
val match_term : t -> t -> Subst.t option

(** Rename every variable with a prefix (standardizing rules apart). *)
val rename_vars : string -> t -> t

val occurs : Term.var -> t -> bool

(** Most general unifier of the applicative fragments of two terms
    (quantified subterms must be syntactically equal); used by the
    critical-pair analysis. *)
val unify : t -> t -> Subst.t option

val pp : t Fmt.t
val to_string : t -> string
