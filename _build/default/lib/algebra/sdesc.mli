(** Structured descriptions of update functions (paper Section 4.2):
    intended effects, pre-conditions for state change, side-effects, and
    the convention that all other simple observations are not affected.

    From these, {!Derive} constructs conditional equations and
    {!Fdbs_refine.Synthesize} constructs representation-level
    procedures, both correct with respect to the description by
    construction. *)

open Fdbs_logic

(** One intended effect or side-effect: the simple observation
    [eff_query(eff_args, ·)] takes value [eff_value] in the new state.
    Arguments are terms over the update's formal parameters, or
    wildcard variables matching every tuple component; the value is a
    Boolean/parameter expression over the parameters and the old state
    {!state_var}. *)
type effect_ = {
  eff_query : string;
  eff_args : Aterm.t list;
  eff_value : Aterm.t;
}

type t = {
  sd_update : string;  (** the update being described *)
  sd_params : Term.var list;  (** formal parameters (excluding the state) *)
  sd_pre : Aterm.t;  (** pre-condition for state change, over params and {!state_var} *)
  sd_effects : effect_ list;  (** intended effects and side-effects *)
  sd_comment : string;
}

(** The conventional old-state variable [U] used in descriptions. *)
val state_var : Term.var

val effect_ : string -> Aterm.t list -> Aterm.t -> effect_

val make :
  ?pre:Aterm.t ->
  ?comment:string ->
  update:string ->
  params:Term.var list ->
  effects:effect_ list ->
  unit ->
  t

(** Sanity-check a description against a signature: the update exists,
    parameter arities/sorts line up, effect queries exist with matching
    argument sorts. *)
val check : Asig.t -> t -> (unit, string) result

val pp : t Fmt.t
