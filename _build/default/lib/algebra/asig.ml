(** Signatures of algebraic specifications (paper Section 4.1).

    The set of sorts comprises the Boolean sort, the designated sort
    [state] (sort-of-interest) and the remaining {e parameter} sorts.
    Operators split into: parameter operators (constants and functions
    not involving [state] — they generate the {e parameter names});
    {e query} functions, whose last argument sort is [state] and whose
    result is not [state]; and {e update} functions, whose result sort
    is [state]. By convention [state] is the last domain sort. *)

open Fdbs_kernel
open Fdbs_logic

type op = {
  oname : string;
  oargs : Sort.t list;  (** argument sorts; for queries/updates the last is [state] *)
  ores : Sort.t;
}

type kind = Parameter_op | Query | Update

type t = {
  param_sorts : Sort.t list;
  param_ops : op list;
  queries : op list;
  updates : op list;
}

let op name args res = { oname = name; oargs = args; ores = res }

(** A query [q : s1 * ... * sn * state -> res]; pass the parameter
    sorts only. *)
let query name param_args res = op name (param_args @ [ Sort.state ]) res

(** An update [u : s1 * ... * sn * state -> state]; pass parameter
    sorts only. [initiate]-like initializers are declared with
    {!initializer_} instead. *)
let update name param_args = op name (param_args @ [ Sort.state ]) Sort.state

(** An initializer such as the paper's [initiate : <state>]: a constant
    of sort [state]. *)
let initializer_ name = op name [] Sort.state

let make ~param_sorts ~param_ops ~queries ~updates : (t, string) result =
  let all_sorts = Sort.bool :: Sort.state :: param_sorts in
  let check_op kind o =
    let check_sort s =
      if not (List.exists (Sort.equal s) all_sorts) then
        Error (Fmt.str "operator %s uses undeclared sort %s" o.oname s)
      else Ok ()
    in
    let rec all = function
      | [] -> Ok ()
      | s :: rest -> (match check_sort s with Ok () -> all rest | e -> e)
    in
    match all (o.ores :: o.oargs) with
    | Error _ as e -> e
    | Ok () ->
      (match kind with
       | Parameter_op ->
         if List.exists (Sort.equal Sort.state) (o.ores :: o.oargs) then
           Error (Fmt.str "parameter operator %s must not involve sort state" o.oname)
         else Ok ()
       | Query ->
         (match List.rev o.oargs with
          | last :: _ when Sort.is_state last ->
            if Sort.is_state o.ores then
              Error (Fmt.str "query %s must not return sort state" o.oname)
            else Ok ()
          | _ -> Error (Fmt.str "query %s must take state as its last argument" o.oname))
       | Update ->
         if not (Sort.is_state o.ores) then
           Error (Fmt.str "update %s must return sort state" o.oname)
         else
           (match List.rev o.oargs with
            | [] -> Ok () (* initializer *)
            | last :: _ when Sort.is_state last -> Ok ()
            | _ -> Error (Fmt.str "update %s must take state as its last argument" o.oname)))
  in
  let names =
    List.map (fun o -> o.oname) (param_ops @ queries @ updates)
  in
  match Signature.find_dup names with
  | Some d -> Error (Fmt.str "duplicate operator name %s" d)
  | None ->
    let rec check_all = function
      | [] -> Ok { param_sorts; param_ops; queries; updates }
      | (kind, o) :: rest ->
        (match check_op kind o with Ok () -> check_all rest | Error _ as e -> e)
    in
    check_all
      (List.map (fun o -> (Parameter_op, o)) param_ops
      @ List.map (fun o -> (Query, o)) queries
      @ List.map (fun o -> (Update, o)) updates)

let make_exn ~param_sorts ~param_ops ~queries ~updates =
  match make ~param_sorts ~param_ops ~queries ~updates with
  | Ok t -> t
  | Error e -> invalid_arg ("Asig.make_exn: " ^ e)

let find (sg : t) name : (kind * op) option =
  let find_in kind ops =
    Option.map (fun o -> (kind, o)) (List.find_opt (fun o -> o.oname = name) ops)
  in
  match find_in Query sg.queries with
  | Some _ as r -> r
  | None ->
    (match find_in Update sg.updates with
     | Some _ as r -> r
     | None -> find_in Parameter_op sg.param_ops)

let find_query (sg : t) name = List.find_opt (fun o -> o.oname = name) sg.queries
let find_update (sg : t) name = List.find_opt (fun o -> o.oname = name) sg.updates

let is_query (sg : t) name = find_query sg name <> None
let is_update (sg : t) name = find_update sg name <> None

(** Updates that take no state argument (initializers, e.g. [initiate]):
    the generators of the set of ground state terms. *)
let initializers (sg : t) =
  List.filter (fun o -> not (List.exists Sort.is_state o.oargs)) sg.updates

(** Updates proper: those mapping a state to a new state. *)
let transformers (sg : t) =
  List.filter (fun o -> List.exists Sort.is_state o.oargs) sg.updates

(** Parameter argument sorts of a query/update (the sorts before the
    final [state]). *)
let param_args (o : op) =
  List.filter (fun s -> not (Sort.is_state s)) o.oargs

let pp_op ppf o =
  Fmt.pf ppf "%s : %a -> %a" o.oname
    Fmt.(list ~sep:(any " * ") Sort.pp) o.oargs Sort.pp o.ores

let pp ppf (sg : t) =
  Fmt.pf ppf "@[<v>parameter sorts: %a@,queries:@,  %a@,updates:@,  %a@]"
    Fmt.(list ~sep:(any ", ") Sort.pp) sg.param_sorts
    Fmt.(list ~sep:(any "@,  ") pp_op) sg.queries
    Fmt.(list ~sep:(any "@,  ") pp_op) sg.updates
