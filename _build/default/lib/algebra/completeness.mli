(** Sufficient completeness of an algebraic specification (paper
    Sections 4.1 and 4.4(a)): every ground query term can be proved
    equal to a parameter name.

    Checked in three parts: (i) coverage — every query/update pair has
    an equation; (ii) termination — the paper's "simpler expression"
    discipline, every query in a condition or right-hand side
    interrogates a proper subterm of the state argument being defined;
    (iii) ground probing — every query evaluable on every trace up to a
    depth. *)

type issue =
  | Missing_pair of string * string
      (** no equation defines this query over this update *)
  | Non_decreasing of string * Aterm.t
      (** the named equation applies a query to a state that is not a
          proper subterm of the lhs state argument *)
  | Ground_failure of Aterm.t * Eval.error
      (** a ground query failed to evaluate *)

val pp_issue : issue Fmt.t

type report = {
  issues : issue list;
  pairs_checked : int;
  ground_terms_checked : int;
}

val is_complete : report -> bool

(** Coverage issues, plus the number of pairs examined. *)
val coverage_issues : Spec.t -> issue list * int

(** Violations of the decreasing-state discipline. *)
val termination_issues : Spec.t -> issue list

(** Ground probing to the given trace depth; reports at most
    [max_failures] failures, plus the number of terms checked. *)
val ground_issues : ?max_failures:int -> Spec.t -> depth:int -> issue list * int

(** The full check: coverage + termination + probing. *)
val check : ?depth:int -> ?max_failures:int -> Spec.t -> report

val pp_report : report Fmt.t
