(** Algebraic specifications T2 = (L2, A2) (paper Section 4.1): a
    signature, a set of conditional equations, interpretations for the
    parameter operators, and a base domain supplying the parameter
    names of each parameter sort. *)

open Fdbs_kernel

type t = {
  name : string;
  signature : Asig.t;
  equations : Equation.t list;
  base_domain : Domain.t;
      (** carriers of the parameter sorts: the parameter names *)
  param_interp : (string * (Value.t list -> Value.t)) list;
      (** interpretations of non-constant parameter operators *)
}

(** Build a specification. Every 0-ary parameter operator contributes
    its value to the base domain (the symbolic value of its own name
    unless interpreted in [param_interp]); other parameter operators
    must be interpreted. Equations are sort-checked. *)
val make :
  ?param_interp:(string * (Value.t list -> Value.t)) list ->
  ?base_domain:Domain.t ->
  name:string ->
  signature:Asig.t ->
  equations:Equation.t list ->
  unit ->
  (t, string) result

val make_exn :
  ?param_interp:(string * (Value.t list -> Value.t)) list ->
  ?base_domain:Domain.t ->
  name:string ->
  signature:Asig.t ->
  equations:Equation.t list ->
  unit ->
  t

(** Equations whose lhs queries [query] applied to an [update] state
    argument. *)
val equations_for : t -> query:string -> update:string -> Equation.t list

val q_equations : t -> Equation.t list
val u_equations : t -> Equation.t list

val pp : t Fmt.t
