(** Terms of an algebraic specification language L2 (paper Section 4.1).

    The applicative fragment is ordinary many-sorted terms; in addition,
    Boolean-sorted terms may quantify over {e parameter} sorts (the
    paper's conditions such as [exists s (takes(s,c,U) = True)] — never
    over the state sort). The Boolean sort's constants and connectives
    are the built-in operators {!builtin_ops}. *)

open Fdbs_kernel
open Fdbs_logic

type t =
  | Var of Term.var
  | App of string * t list
  | Val of Value.t * Sort.t  (** sorted literal: a parameter name's value *)
  | Exists of Term.var * t  (** Boolean-sorted, over a parameter sort *)
  | Forall of Term.var * t

(** The built-in Boolean operators every L2 is equipped with
    (paper: True, False, ¬ ∨ ∧ ⇒ ≡) plus overloaded equality "eq". *)
let builtin_ops = [ "true"; "false"; "not"; "and"; "or"; "imp"; "iff"; "eq" ]

let is_builtin name = List.mem name builtin_ops

let tru = App ("true", [])
let fls = App ("false", [])
let of_bool b = if b then tru else fls
let not_ t = App ("not", [ t ])
let and_ t1 t2 = App ("and", [ t1; t2 ])
let or_ t1 t2 = App ("or", [ t1; t2 ])
let imp t1 t2 = App ("imp", [ t1; t2 ])
let iff t1 t2 = App ("iff", [ t1; t2 ])
let eq t1 t2 = App ("eq", [ t1; t2 ])
let neq t1 t2 = not_ (eq t1 t2)

let conj = function [] -> tru | t :: rest -> List.fold_left and_ t rest
let disj = function [] -> fls | t :: rest -> List.fold_left or_ t rest

let var name sort = Var { Term.vname = name; vsort = sort }
let state_var name = var name Sort.state
let sym name sort = Val (Value.Sym name, sort)

let rec equal t1 t2 =
  match (t1, t2) with
  | Var v1, Var v2 -> Term.var_equal v1 v2
  | App (f, a1), App (g, a2) ->
    f = g && List.length a1 = List.length a2 && List.for_all2 equal a1 a2
  | Val (v1, s1), Val (v2, s2) -> Value.equal v1 v2 && Sort.equal s1 s2
  | Exists (v1, b1), Exists (v2, b2) | Forall (v1, b1), Forall (v2, b2) ->
    Term.var_equal v1 v2 && equal b1 b2
  | (Var _ | App _ | Val _ | Exists _ | Forall _), _ -> false

let compare = Stdlib.compare

(** Free variables in first-occurrence order. *)
let free_vars (t : t) : Term.var list =
  let mem v l = List.exists (Term.var_equal v) l in
  let rec go bound acc = function
    | Var v -> if mem v bound || mem v acc then acc else v :: acc
    | App (_, args) -> List.fold_left (go bound) acc args
    | Val _ -> acc
    | Exists (v, b) | Forall (v, b) -> go (v :: bound) acc b
  in
  List.rev (go [] [] t)

let is_ground t = free_vars t = []

(** Substitution (maps variables to algebraic terms). *)
module Subst = struct
  type aterm = t
  type t = (Term.var * aterm) list

  let empty : t = []
  let of_list (l : (Term.var * aterm) list) : t = l
  let bindings (s : t) = s

  let lookup (s : t) v =
    let rec go = function
      | [] -> None
      | (v', t) :: rest -> if Term.var_equal v v' then Some t else go rest
    in
    go s

  let bind (s : t) v t : t = (v, t) :: s
end

(** Apply a substitution; bound variables are assumed distinct from the
    substitution's domain (equations use fresh quantified names). *)
let rec subst (s : Subst.t) = function
  | Var v as t -> (match Subst.lookup s v with Some t' -> t' | None -> t)
  | App (f, args) -> App (f, List.map (subst s) args)
  | Val _ as t -> t
  | Exists (v, b) ->
    let s' = List.filter (fun (v', _) -> not (Term.var_equal v v')) s in
    Exists (v, subst s' b)
  | Forall (v, b) ->
    let s' = List.filter (fun (v', _) -> not (Term.var_equal v v')) s in
    Forall (v, subst s' b)

let rec size = function
  | Var _ | Val _ -> 1
  | App (_, args) -> 1 + Util.sum (List.map size args)
  | Exists (_, b) | Forall (_, b) -> 1 + size b

(** [is_subterm s t]: does [s] occur within [t]? *)
let rec is_subterm s t =
  equal s t
  || match t with
     | App (_, args) -> List.exists (is_subterm s) args
     | Exists (_, b) | Forall (_, b) -> is_subterm s b
     | Var _ | Val _ -> false

(** First-order matching of the applicative fragment: instantiate the
    pattern's variables so it equals [target]. Quantified patterns do
    not occur on equation left-hand sides, so matching under binders is
    unsupported (returns [None]). *)
let match_term (pattern : t) (target : t) : Subst.t option =
  let rec go sub pattern target =
    match (pattern, target) with
    | Var v, _ ->
      (match Subst.lookup sub v with
       | Some bound -> if equal bound target then Some sub else None
       | None -> Some (Subst.bind sub v target))
    | Val (v1, s1), Val (v2, s2) ->
      if Value.equal v1 v2 && Sort.equal s1 s2 then Some sub else None
    | App (f, a1), App (g, a2) when f = g && List.length a1 = List.length a2 ->
      let rec fold sub = function
        | [] -> Some sub
        | (p, t) :: rest ->
          (match go sub p t with None -> None | Some sub -> fold sub rest)
      in
      fold sub (Util.zip_exn a1 a2)
    | (App _ | Val _ | Exists _ | Forall _), _ -> None
  in
  go Subst.empty pattern target

let rec rename_vars (prefix : string) = function
  | Var v -> Var { v with Term.vname = prefix ^ v.Term.vname }
  | App (f, args) -> App (f, List.map (rename_vars prefix) args)
  | Val _ as t -> t
  | Exists (v, b) ->
    Exists ({ v with Term.vname = prefix ^ v.Term.vname }, rename_vars prefix b)
  | Forall (v, b) ->
    Forall ({ v with Term.vname = prefix ^ v.Term.vname }, rename_vars prefix b)

let rec occurs v = function
  | Var v' -> Term.var_equal v v'
  | App (_, args) -> List.exists (occurs v) args
  | Val _ -> false
  | Exists (_, b) | Forall (_, b) -> occurs v b

(** Most general unifier of the applicative fragments of two terms
    (quantified subterms must be syntactically equal); used by the
    critical-pair analysis. *)
let unify (t1 : t) (t2 : t) : Subst.t option =
  let rec go sub = function
    | [] -> Some sub
    | (t1, t2) :: rest ->
      let t1 = subst sub t1 and t2 = subst sub t2 in
      (match (t1, t2) with
       | _ when equal t1 t2 -> go sub rest
       | Var v, t | t, Var v ->
         if occurs v t then None
         else
           let bind = Subst.of_list [ (v, t) ] in
           let sub' =
             Subst.of_list
               (List.map (fun (v', tm) -> (v', subst bind tm)) (Subst.bindings sub))
           in
           go (Subst.bind sub' v t) rest
       | App (f, a1), App (g, a2) when f = g && List.length a1 = List.length a2 ->
         go sub (Util.zip_exn a1 a2 @ rest)
       | (App _ | Val _ | Exists _ | Forall _), _ -> None)
  in
  go Subst.empty [ (t1, t2) ]

let rec pp ppf = function
  | Var v -> Fmt.string ppf v.Term.vname
  | Val (v, _) -> Value.pp ppf v
  | App ("eq", [ a; b ]) -> Fmt.pf ppf "(%a = %a)" pp a pp b
  | App ("not", [ App ("eq", [ a; b ]) ]) -> Fmt.pf ppf "(%a /= %a)" pp a pp b
  | App ("not", [ a ]) -> Fmt.pf ppf "~%a" pp a
  | App ("and", [ a; b ]) -> Fmt.pf ppf "(%a & %a)" pp a pp b
  | App ("or", [ a; b ]) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | App ("imp", [ a; b ]) -> Fmt.pf ppf "(%a -> %a)" pp a pp b
  | App ("iff", [ a; b ]) -> Fmt.pf ppf "(%a <-> %a)" pp a pp b
  | App (f, []) -> Fmt.string ppf f
  | App (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args
  | Exists (v, b) -> Fmt.pf ppf "exists %s:%a. %a" v.Term.vname Sort.pp v.Term.vsort pp b
  | Forall (v, b) -> Fmt.pf ppf "forall %s:%a. %a" v.Term.vname Sort.pp v.Term.vsort pp b

let to_string t = Fmt.str "%a" pp t
