(** Algebraic specifications T2 = (L2, A2) (paper Section 4.1): a
    signature, a set of conditional equations, interpretations for the
    parameter operators, and a base domain supplying the parameter
    names of each parameter sort. *)

open Fdbs_kernel

type t = {
  name : string;
  signature : Asig.t;
  equations : Equation.t list;
  base_domain : Domain.t;
      (** carriers of the parameter sorts: the parameter names *)
  param_interp : (string * (Value.t list -> Value.t)) list;
      (** interpretations of non-constant parameter operators *)
}

(** Build a specification. Every 0-ary parameter operator is
    interpreted as the symbolic value of its own name and contributed to
    the base domain; other parameter operators must be interpreted in
    [param_interp]. Equations are sort-checked. *)
let make ?(param_interp = []) ?(base_domain = Domain.empty) ~name ~signature ~equations () :
  (t, string) result =
  let constants =
    List.filter (fun (o : Asig.op) -> o.Asig.oargs = []) signature.Asig.param_ops
  in
  let base_domain =
    List.fold_left
      (fun d (o : Asig.op) ->
        let value =
          match List.assoc_opt o.Asig.oname param_interp with
          | Some f -> f []
          | None -> Value.Sym o.Asig.oname
        in
        Domain.add o.Asig.ores (value :: Domain.carrier d o.Asig.ores) d)
      base_domain constants
  in
  let missing =
    List.filter
      (fun (o : Asig.op) ->
        o.Asig.oargs <> [] && not (List.mem_assoc o.Asig.oname param_interp))
      signature.Asig.param_ops
  in
  match missing with
  | o :: _ ->
    Error (Fmt.str "parameter operator %s lacks an interpretation" o.Asig.oname)
  | [] ->
    let rec check_eqs = function
      | [] -> Ok { name; signature; equations; base_domain; param_interp }
      | eq :: rest ->
        (match Equation.check signature eq with
         | Ok () -> check_eqs rest
         | Error e -> Error (Fmt.str "equation %s: %s" eq.Equation.eq_name e))
    in
    check_eqs equations

let make_exn ?param_interp ?base_domain ~name ~signature ~equations () =
  match make ?param_interp ?base_domain ~name ~signature ~equations () with
  | Ok t -> t
  | Error e -> invalid_arg ("Spec.make_exn: " ^ e)

(** Equations whose lhs queries [q] applied to an update [u] state
    argument. *)
let equations_for (spec : t) ~query ~update : Equation.t list =
  List.filter
    (fun eq ->
      match Equation.head_pair spec.signature eq with
      | Some (q, u) -> q = query && u = update
      | None -> false)
    spec.equations

let q_equations (spec : t) =
  List.filter (fun eq -> Equation.kind spec.signature eq = Equation.Q_equation) spec.equations

let u_equations (spec : t) =
  List.filter (fun eq -> Equation.kind spec.signature eq = Equation.U_equation) spec.equations

let pp ppf (spec : t) =
  Fmt.pf ppf "@[<v>algebraic specification %s@,%a@,equations:@,  %a@]" spec.name
    Asig.pp spec.signature
    Fmt.(list ~sep:(any "@,  ") Equation.pp) spec.equations
