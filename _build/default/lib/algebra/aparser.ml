(** Concrete syntax for algebraic specifications.

    A specification file looks like:
    {v
    spec university

    sort course
    sort student
    const cs101 : course          # optional explicit parameter names

    query offered : course -> bool
    query takes : student, course -> bool

    update initiate
    update offer : course
    update cancel : course

    eq q1: offered(c, initiate) = false
    eq q6: (exists s:student. takes(s, c, U) = true)
           => offered(c, cancel(c, U)) = true
    v}

    Queries implicitly take a final [state] argument; updates implicitly
    map a final [state] argument to [state] (an update declared with no
    argument sorts, like [initiate], is an initializer). Equation
    variables need not be declared: their sorts are inferred from the
    argument positions in which they occur. [=>] separates an equation's
    condition from its conclusion; [->] is Boolean implication inside
    terms. *)

open Fdbs_kernel
open Fdbs_logic

(* ------------------------------------------------------------------ *)
(* Raw (unsorted) terms                                                *)
(* ------------------------------------------------------------------ *)

type raw =
  | RName of string
  | RApp of string * raw list
  | RInt of int
  | RNot of raw
  | RAnd of raw * raw
  | ROr of raw * raw
  | RImp of raw * raw
  | RIff of raw * raw
  | REq of raw * raw
  | RNeq of raw * raw
  | RQuant of bool * (string * Sort.t) list * raw  (* true = exists *)

let rec parse_raw st : raw = parse_iff st

and parse_iff st =
  let lhs = parse_imp st in
  let rec loop acc =
    if Parse.accept_sym st "<->" || Parse.accept_sym st "<=>" then
      loop (RIff (acc, parse_imp st))
    else acc
  in
  loop lhs

and parse_imp st =
  let lhs = parse_or st in
  if Parse.accept_sym st "->" then RImp (lhs, parse_imp st) else lhs

and parse_or st =
  let lhs = parse_and st in
  let rec loop acc =
    if Parse.accept_sym st "|" || Parse.accept_sym st "||" then
      loop (ROr (acc, parse_and st))
    else acc
  in
  loop lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec loop acc =
    if Parse.accept_sym st "&" || Parse.accept_sym st "&&" then
      loop (RAnd (acc, parse_unary st))
    else acc
  in
  loop lhs

and parse_unary st =
  if Parse.accept_sym st "~" || Parse.accept_sym st "!" then RNot (parse_unary st)
  else if Parse.accept_kw st "exists" then parse_quant st true
  else if Parse.accept_kw st "forall" then parse_quant st false
  else parse_cmp st

and parse_quant st existential =
  let binder st =
    let name = Parse.ident st in
    Parse.expect_sym st ":";
    (name, Sort.make (Parse.ident st))
  in
  let binders = Parse.sep_list st ~sep:"," binder in
  Parse.expect_sym st ".";
  RQuant (existential, binders, parse_raw st)

and parse_cmp st =
  let lhs = parse_app st in
  if Parse.accept_sym st "=" then REq (lhs, parse_app st)
  else if Parse.accept_sym st "/=" || Parse.accept_sym st "<>" then RNeq (lhs, parse_app st)
  else lhs

and parse_app st =
  match Parse.peek st with
  | Lexer.Int n ->
    Parse.advance st;
    RInt n
  | Lexer.Sym "(" ->
    Parse.advance st;
    let t = parse_raw st in
    Parse.expect_sym st ")";
    t
  | Lexer.Ident name | Lexer.Uident name ->
    Parse.advance st;
    if Parse.accept_sym st "(" then begin
      let args = Parse.sep_list st ~sep:"," parse_raw in
      Parse.expect_sym st ")";
      RApp (name, args)
    end
    else RName name
  | other -> Parse.fail st (Fmt.str "expected a term but found %a" Lexer.pp_token other)

(* ------------------------------------------------------------------ *)
(* Sort resolution                                                     *)
(* ------------------------------------------------------------------ *)

exception Resolve_error of string
exception Cannot_infer of string

type env = { mutable vars : (string * Sort.t) list }

let builtin_arity0 = [ "true"; "false" ]

(* Resolve a raw term to an Aterm, inferring variable sorts.
   [expected] is the sort demanded by the context, if known. *)
let rec resolve (sg : Asig.t) (env : env) ~(expected : Sort.t option) (r : raw) : Aterm.t =
  let check_expected actual =
    match expected with
    | Some s when not (Sort.equal s actual) ->
      raise (Resolve_error (Fmt.str "sort %s found where %s expected" actual s))
    | Some _ | None -> ()
  in
  match r with
  | RInt n ->
    let s = match expected with Some s -> s | None -> Sort.make "int" in
    Aterm.Val (Value.Int n, s)
  | RName name when List.mem name builtin_arity0 ->
    check_expected Sort.bool;
    if name = "true" then Aterm.tru else Aterm.fls
  | RName name ->
    (match List.assoc_opt name env.vars with
     | Some s ->
       check_expected s;
       Aterm.var name s
     | None ->
       (match Asig.find sg name with
        | Some (_, o) when o.Asig.oargs = [] ->
          check_expected o.Asig.ores;
          Aterm.App (name, [])
        | Some _ -> raise (Resolve_error (Fmt.str "operator %s needs arguments" name))
        | None ->
          (match expected with
           | Some s ->
             env.vars <- (name, s) :: env.vars;
             Aterm.var name s
           | None -> raise (Cannot_infer name))))
  | RApp (name, args) ->
    (match Asig.find sg name with
     | None -> raise (Resolve_error (Fmt.str "undeclared operator %s" name))
     | Some (_, o) ->
       if List.length args <> List.length o.Asig.oargs then
         raise
           (Resolve_error
              (Fmt.str "operator %s expects %d arguments, got %d" name
                 (List.length o.Asig.oargs) (List.length args)))
       else begin
         check_expected o.Asig.ores;
         let args' =
           List.map2
             (fun a s -> resolve sg env ~expected:(Some s) a)
             args o.Asig.oargs
         in
         Aterm.App (name, args')
       end)
  | RNot a -> Aterm.not_ (resolve_bool sg env a)
  | RAnd (a, b) -> Aterm.and_ (resolve_bool sg env a) (resolve_bool sg env b)
  | ROr (a, b) -> Aterm.or_ (resolve_bool sg env a) (resolve_bool sg env b)
  | RImp (a, b) -> Aterm.imp (resolve_bool sg env a) (resolve_bool sg env b)
  | RIff (a, b) -> Aterm.iff (resolve_bool sg env a) (resolve_bool sg env b)
  | REq (a, b) -> resolve_eq sg env a b false
  | RNeq (a, b) -> resolve_eq sg env a b true
  | RQuant (existential, binders, body) ->
    check_expected Sort.bool;
    let saved = env.vars in
    env.vars <- binders @ env.vars;
    let body' = resolve_bool sg env body in
    env.vars <- saved;
    let vars = List.map (fun (n, s) -> { Term.vname = n; vsort = s }) binders in
    List.fold_right
      (fun v acc -> if existential then Aterm.Exists (v, acc) else Aterm.Forall (v, acc))
      vars body'

and resolve_bool sg env r =
  let t = resolve sg env ~expected:(Some Sort.bool) r in
  t

and resolve_eq sg env a b negate =
  (* Infer the shared sort from whichever side determines it first. *)
  let ta, tb =
    match resolve sg env ~expected:None a with
    | ta ->
      let sa =
        match Atyping.sort_of sg ta with
        | Ok s -> s
        | Error e -> raise (Resolve_error e)
      in
      (ta, resolve sg env ~expected:(Some sa) b)
    | exception Cannot_infer _ ->
      let tb = resolve sg env ~expected:None b in
      let sb =
        match Atyping.sort_of sg tb with
        | Ok s -> s
        | Error e -> raise (Resolve_error e)
      in
      (resolve sg env ~expected:(Some sb) a, tb)
  in
  let eq = Aterm.eq ta tb in
  if negate then Aterm.not_ eq else eq

(* ------------------------------------------------------------------ *)
(* Specification files                                                 *)
(* ------------------------------------------------------------------ *)

type raw_effect = {
  re_query : string;
  re_args : raw list;
  re_value : raw;
}

type raw_desc = {
  rd_update : string;
  rd_params : (string * Sort.t) list;
  rd_pre : raw option;
  rd_effects : raw_effect list;
}

type decl =
  | Dsort of Sort.t
  | Dconst of string * Sort.t
  | Dquery of string * Sort.t list * Sort.t
  | Dupdate of string * Sort.t list
  | Deq of string * raw option * raw * raw  (* name, cond, lhs, rhs *)
  | Ddesc of raw_desc

let parse_decl st : decl =
  if Parse.accept_kw st "sort" then Dsort (Sort.make (Parse.ident st))
  else if Parse.accept_kw st "const" then begin
    let name = Parse.ident st in
    Parse.expect_sym st ":";
    Dconst (name, Sort.make (Parse.ident st))
  end
  else if Parse.accept_kw st "query" then begin
    let name = Parse.ident st in
    Parse.expect_sym st ":";
    let sorts = Parse.sep_list st ~sep:"," (fun st -> Sort.make (Parse.ident st)) in
    if Parse.accept_sym st "->" then Dquery (name, sorts, Sort.make (Parse.ident st))
    else Dquery (name, [], List.hd sorts)
  end
  else if Parse.accept_kw st "update" then begin
    let name = Parse.ident st in
    if Parse.accept_sym st ":" then
      Dupdate (name, Parse.sep_list st ~sep:"," (fun st -> Sort.make (Parse.ident st)))
    else Dupdate (name, [])
  end
  else if Parse.accept_kw st "eq" then begin
    let name = Parse.ident st in
    Parse.expect_sym st ":";
    let first = parse_raw st in
    if Parse.accept_sym st "=>" then begin
      let lhs = parse_app st in
      Parse.expect_sym st "=";
      let rhs = parse_raw st in
      Deq (name, Some first, lhs, rhs)
    end
    else
      (* [first] must be of the shape lhs = rhs. *)
      match first with
      | REq (lhs, rhs) -> Deq (name, None, lhs, rhs)
      | _ -> Parse.fail st (Fmt.str "equation %s must have the form [cond =>] lhs = rhs" name)
  end
  else if Parse.accept_kw st "describe" then begin
    let name = Parse.ident st in
    let params =
      if Parse.accept_sym st "(" then begin
        if Parse.accept_sym st ")" then []
        else begin
          let param st =
            let n = Parse.ident st in
            Parse.expect_sym st ":";
            (n, Sort.make (Parse.ident st))
          in
          let ps = Parse.sep_list st ~sep:"," param in
          Parse.expect_sym st ")";
          ps
        end
      end
      else []
    in
    let pre = ref None in
    let effects = ref [] in
    let rec clauses () =
      if Parse.accept_kw st "pre" then begin
        Parse.expect_sym st ":";
        pre := Some (parse_raw st);
        clauses ()
      end
      else if Parse.accept_kw st "effect" then begin
        Parse.expect_sym st ":";
        let q = Parse.ident st in
        Parse.expect_sym st "(";
        let args =
          if Parse.accept_sym st ")" then []
          else begin
            let args = Parse.sep_list st ~sep:"," parse_raw in
            Parse.expect_sym st ")";
            args
          end
        in
        Parse.expect_sym st ":=";
        let value = parse_raw st in
        effects := { re_query = q; re_args = args; re_value = value } :: !effects;
        clauses ()
      end
    in
    clauses ();
    Ddesc { rd_update = name; rd_params = params; rd_pre = !pre;
            rd_effects = List.rev !effects }
  end
  else Parse.fail st "expected one of: sort, const, query, update, eq, describe"

let parse_spec_file st : string * decl list =
  Parse.expect_kw st "spec";
  let name = Parse.ident st in
  let rec decls acc = if Parse.at_eof st then List.rev acc else decls (parse_decl st :: acc) in
  (name, decls [])

(** Parse a full specification file together with any [describe]
    blocks (structured descriptions, Section 4.2). *)
let spec_with_descriptions (src : string) : (Spec.t * Sdesc.t list, string) result =
  match
    Parse.run parse_spec_file src
  with
  | Error e -> Error e
  | Ok (name, decls) ->
    let sorts = List.filter_map (function Dsort s -> Some s | _ -> None) decls in
    let consts =
      List.filter_map (function Dconst (n, s) -> Some (Asig.op n [] s) | _ -> None) decls
    in
    let queries =
      List.filter_map
        (function Dquery (n, args, res) -> Some (Asig.query n args res) | _ -> None)
        decls
    in
    let updates =
      List.filter_map
        (function
          | Dupdate (n, []) -> Some (Asig.initializer_ n)
          | Dupdate (n, args) -> Some (Asig.update n args)
          | _ -> None)
        decls
    in
    (match Asig.make ~param_sorts:sorts ~param_ops:consts ~queries ~updates with
     | Error e -> Error e
     | Ok sg ->
       let resolve_eq_decl (name, cond, lhs, rhs) =
         let env = { vars = [] } in
         try
           let lhs' = resolve sg env ~expected:None lhs in
           let lhs_sort =
             match Atyping.sort_of sg lhs' with
             | Ok s -> s
             | Error e -> raise (Resolve_error e)
           in
           let rhs' = resolve sg env ~expected:(Some lhs_sort) rhs in
           let cond' =
             match cond with
             | None -> Aterm.tru
             | Some c -> resolve_bool sg env c
           in
           Ok (Equation.make ~cond:cond' name lhs' rhs')
         with
         | Resolve_error e -> Error (Fmt.str "equation %s: %s" name e)
         | Cannot_infer v ->
           Error (Fmt.str "equation %s: cannot infer the sort of variable %s" name v)
       in
       let eqs =
         List.filter_map
           (function Deq (n, c, l, r) -> Some (n, c, l, r) | _ -> None)
           decls
       in
       (match Util.result_all (List.map resolve_eq_decl eqs) with
        | Error e -> Error e
        | Ok equations ->
          (match Spec.make ~name ~signature:sg ~equations () with
           | Error e -> Error e
           | Ok spec ->
             let resolve_desc (rd : raw_desc) : (Sdesc.t, string) result =
               let where = "description of " ^ rd.rd_update in
               let env =
                 { vars = (Sdesc.state_var.Term.vname, Sort.state) :: rd.rd_params }
               in
               try
                 let pre =
                   match rd.rd_pre with
                   | None -> Aterm.tru
                   | Some raw -> resolve_bool sg env raw
                 in
                 let effect (re : raw_effect) : (Sdesc.effect_, string) result =
                   match Asig.find_query sg re.re_query with
                   | None -> Error (Fmt.str "%s: unknown query %s" where re.re_query)
                   | Some q ->
                     let sorts = Asig.param_args q in
                     if List.length sorts <> List.length re.re_args then
                       Error (Fmt.str "%s: effect on %s has wrong arity" where re.re_query)
                     else begin
                       let args =
                         List.map2
                           (fun raw srt -> resolve sg env ~expected:(Some srt) raw)
                           re.re_args sorts
                       in
                       let value =
                         resolve sg env ~expected:(Some q.Asig.ores) re.re_value
                       in
                       Ok (Sdesc.effect_ re.re_query args value)
                     end
                 in
                 match Util.result_all (List.map effect rd.rd_effects) with
                 | Error e -> Error e
                 | Ok effects ->
                   let params =
                     List.map
                       (fun (n, srt) -> { Term.vname = n; vsort = srt })
                       rd.rd_params
                   in
                   let d = Sdesc.make ~pre ~update:rd.rd_update ~params ~effects () in
                   (match Sdesc.check sg d with
                    | Ok () -> Ok d
                    | Error e -> Error (Fmt.str "%s: %s" where e))
               with
               | Resolve_error e -> Error (Fmt.str "%s: %s" where e)
               | Cannot_infer v ->
                 Error (Fmt.str "%s: cannot infer the sort of %s" where v)
             in
             let raw_descs =
               List.filter_map (function Ddesc d -> Some d | _ -> None) decls
             in
             (match Util.result_all (List.map resolve_desc raw_descs) with
              | Error e -> Error e
              | Ok descriptions -> Ok (spec, descriptions)))))

(** Parse a specification file (ignoring any [describe] blocks). *)
let spec (src : string) : (Spec.t, string) result =
  Result.map fst (spec_with_descriptions src)

let spec_exn src =
  match spec src with
  | Ok s -> s
  | Error e -> invalid_arg ("Aparser.spec_exn: " ^ e)

(** Parse a single term against a signature, with optional pre-bound
    variables. *)
let term ?(vars : (string * Sort.t) list = []) (sg : Asig.t) (src : string) :
  (Aterm.t, string) result =
  match
    Parse.run
      (fun st ->
        let raw = parse_raw st in
        let env = { vars } in
        resolve sg env ~expected:None raw)
      src
  with
  | Ok t -> Ok t
  | Error e -> Error e
  | exception Resolve_error e -> Error e
  | exception Cannot_infer v -> Error (Fmt.str "cannot infer the sort of variable %s" v)

let term_exn ?vars sg src =
  match term ?vars sg src with
  | Ok t -> t
  | Error e -> invalid_arg ("Aparser.term_exn: " ^ e)
