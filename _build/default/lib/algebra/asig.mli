(** Signatures of algebraic specifications (paper Section 4.1).

    The set of sorts comprises the Boolean sort, the designated sort
    [state] (sort-of-interest) and the remaining {e parameter} sorts.
    Operators split into: parameter operators (constants and functions
    not involving [state] — they generate the {e parameter names});
    {e query} functions, whose last argument sort is [state] and whose
    result is not [state]; and {e update} functions, whose result sort
    is [state]. By convention [state] is the last domain sort. *)

open Fdbs_kernel

type op = {
  oname : string;
  oargs : Sort.t list;  (** argument sorts; for queries/updates the last is [state] *)
  ores : Sort.t;
}

type kind = Parameter_op | Query | Update

type t = {
  param_sorts : Sort.t list;
  param_ops : op list;
  queries : op list;
  updates : op list;
}

val op : string -> Sort.t list -> Sort.t -> op

(** A query [q : s1 * ... * sn * state -> res]; pass the parameter
    sorts only. *)
val query : string -> Sort.t list -> Sort.t -> op

(** An update [u : s1 * ... * sn * state -> state]; pass parameter
    sorts only. *)
val update : string -> Sort.t list -> op

(** An initializer such as the paper's [initiate : <state>]: a constant
    of sort [state]. *)
val initializer_ : string -> op

val make :
  param_sorts:Sort.t list ->
  param_ops:op list ->
  queries:op list ->
  updates:op list ->
  (t, string) result

val make_exn :
  param_sorts:Sort.t list ->
  param_ops:op list ->
  queries:op list ->
  updates:op list ->
  t

val find : t -> string -> (kind * op) option
val find_query : t -> string -> op option
val find_update : t -> string -> op option
val is_query : t -> string -> bool
val is_update : t -> string -> bool

(** Updates that take no state argument (initializers): the generators
    of the set of ground state terms. *)
val initializers : t -> op list

(** Updates proper: those mapping a state to a new state. *)
val transformers : t -> op list

(** Parameter argument sorts of a query/update (the sorts before the
    final [state]). *)
val param_args : op -> Sort.t list

val pp_op : op Fmt.t
val pp : t Fmt.t
