(** Constructive derivation of conditional equations from structured
    descriptions (paper Section 4.2).

    For every query [q] and every update [u] with description [d], the
    method emits: for each effect, the equation giving the intended
    value — guarded by the pre-condition, with a no-change twin for the
    [~pre] case when the pre-condition is nontrivial; and a frame
    equation on fresh variables capturing the not-affected part. The
    equations are correct with respect to the description by
    construction; sufficient completeness is verified afterwards
    ({!Completeness.check}). *)

(** Derive the full equation set from one description per update.
    Errors if an update lacks a description, a description is
    ill-formed, or an initializer carries a pre-condition. *)
val equations : Asig.t -> Sdesc.t list -> (Equation.t list, string) result

val equations_exn : Asig.t -> Sdesc.t list -> Equation.t list
