(** Constructive derivation of conditional equations from structured
    descriptions (paper Section 4.2).

    For every query [q] and every update [u] with description [d], the
    method emits:

    - for each effect [q(ā, ·) := w] of [d]: if the pre-condition is
      trivial, the equation [q(ā, u(p̄,U)) = w]; otherwise the pair
      [pre => q(ā, u(p̄,U)) = w] and [~pre => q(ā, u(p̄,U)) = q(ā, U)]
      ("if the pre-condition holds we have the intended effect,
      otherwise the value remains unchanged");
    - a frame equation on fresh variables x̄,
      [(x̄ ≠ ā for every effect) => q(x̄, u(p̄,U)) = q(x̄, U)],
      capturing the not-affected part of the description.

    The equations are correct with respect to the description by
    construction; sufficient completeness is verified afterwards
    ({!Completeness.check}). *)

open Fdbs_logic

let ( let* ) = Result.bind

(* Fresh frame variables x1..xk of the query's parameter sorts, avoiding
   the description's parameter names. *)
let frame_vars (taken : string list) (sorts : Fdbs_kernel.Sort.t list) : Term.var list =
  List.mapi
    (fun i srt ->
      let rec pick n =
        let name = Fmt.str "x%d%s" (i + 1) (String.concat "" (List.init n (fun _ -> "'"))) in
        if List.mem name taken then pick (n + 1) else name
      in
      { Term.vname = pick 0; vsort = srt })
    sorts

(* Is this effect argument a wildcard (a variable that is not one of the
   update's formal parameters)? Wildcards match any tuple component. *)
let is_wildcard (params : Term.var list) = function
  | Aterm.Var v -> not (List.exists (Term.var_equal v) params)
  | Aterm.App _ | Aterm.Val _ | Aterm.Exists _ | Aterm.Forall _ -> false

(* Equations for query [q] over the update described by [d]. *)
let equations_for_query (sg : Asig.t) (d : Sdesc.t) (q : Asig.op) :
  (Equation.t list, string) result =
  let u_op =
    match Asig.find_update sg d.Sdesc.sd_update with
    | Some o -> o
    | None -> invalid_arg "Derive: unknown update"
  in
  let is_initializer = not (List.exists Fdbs_kernel.Sort.is_state u_op.Asig.oargs) in
  let params = d.Sdesc.sd_params in
  let param_terms = List.map (fun v -> Aterm.Var v) params in
  let state_var = Sdesc.state_var in
  let new_state =
    if is_initializer then Aterm.App (d.Sdesc.sd_update, param_terms)
    else Aterm.App (d.Sdesc.sd_update, param_terms @ [ Aterm.Var state_var ])
  in
  let effects =
    List.filter (fun e -> e.Sdesc.eff_query = q.Asig.oname) d.Sdesc.sd_effects
  in
  let trivial_pre = Aterm.equal d.Sdesc.sd_pre Aterm.tru in
  let* () =
    if is_initializer && not trivial_pre then
      Error (Fmt.str "initializer %s cannot have a pre-condition" d.Sdesc.sd_update)
    else Ok ()
  in
  (* Effect equations. *)
  let effect_eqs =
    List.concat
      (List.mapi
         (fun i (e : Sdesc.effect_) ->
           let lhs = Aterm.App (q.Asig.oname, e.Sdesc.eff_args @ [ new_state ]) in
           let base = Fmt.str "%s_%s_eff%d" d.Sdesc.sd_update q.Asig.oname (i + 1) in
           if trivial_pre then [ Equation.make base lhs e.Sdesc.eff_value ]
           else
             let unchanged =
               Aterm.App (q.Asig.oname, e.Sdesc.eff_args @ [ Aterm.Var state_var ])
             in
             [ Equation.make ~cond:d.Sdesc.sd_pre base lhs e.Sdesc.eff_value;
               Equation.make ~cond:(Aterm.not_ d.Sdesc.sd_pre) (base ^ "_nop") lhs unchanged
             ])
         effects)
  in
  (* Frame equation: applies to tuples different from every effect's
     non-wildcard argument pattern. *)
  let frame_eq =
    if is_initializer then
      (* An initializer determines all queries through its effects; there
         is no previous state to fall back on. *)
      []
    else begin
      let xs = frame_vars (List.map (fun v -> v.Term.vname) params) (Asig.param_args q) in
      let x_terms = List.map (fun v -> Aterm.Var v) xs in
      let diseq_for_effect (e : Sdesc.effect_) : Aterm.t option =
        let diseqs =
          List.concat
            (List.map2
               (fun x a -> if is_wildcard params a then [] else [ Aterm.neq x a ])
               x_terms e.Sdesc.eff_args)
        in
        match diseqs with
        | [] -> None (* effect covers every tuple: no frame instance exists *)
        | ds -> Some (Aterm.disj ds)
      in
      let conds = List.map diseq_for_effect effects in
      if List.exists Option.is_none conds then []
      else
        let cond = Aterm.conj (List.filter_map Fun.id conds) in
        let lhs = Aterm.App (q.Asig.oname, x_terms @ [ new_state ]) in
        let rhs = Aterm.App (q.Asig.oname, x_terms @ [ Aterm.Var state_var ]) in
        let name = Fmt.str "%s_%s_frame" d.Sdesc.sd_update q.Asig.oname in
        [ Equation.make ~cond name lhs rhs ]
    end
  in
  Ok (effect_eqs @ frame_eq)

(** Derive the full equation set from one description per update.
    Returns an error if an update lacks a description, a description is
    ill-formed, or an initializer leaves some query undetermined. *)
let equations (sg : Asig.t) (descriptions : Sdesc.t list) :
  (Equation.t list, string) result =
  let* () =
    let described = List.map (fun d -> d.Sdesc.sd_update) descriptions in
    match
      List.find_opt
        (fun (u : Asig.op) -> not (List.mem u.Asig.oname described))
        sg.Asig.updates
    with
    | Some u -> Error (Fmt.str "update %s has no structured description" u.Asig.oname)
    | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc d ->
        let* () = acc in
        Sdesc.check sg d)
      (Ok ()) descriptions
  in
  let* per_desc =
    Fdbs_kernel.Util.result_all
      (List.map
         (fun d ->
           Fdbs_kernel.Util.result_all
             (List.map (fun q -> equations_for_query sg d q) sg.Asig.queries))
         descriptions)
  in
  Ok (List.concat (List.concat per_desc))

let equations_exn sg descriptions =
  match equations sg descriptions with
  | Ok eqs -> eqs
  | Error e -> invalid_arg ("Derive.equations_exn: " ^ e)
