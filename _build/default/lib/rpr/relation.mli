(** Finite relations: sets of equal-length value tuples, the data
    structures of the relational model that RPR programs manipulate
    (paper Section 5.1). *)

open Fdbs_kernel

module Tuple : sig
  type t = Value.t list

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : t Fmt.t
end

module Tuple_set : Set.S with type elt = Tuple.t

type t = {
  sorts : Sort.t list;  (** column sorts; the arity is their length *)
  tuples : Tuple_set.t;
}

val empty : Sort.t list -> t
val arity : t -> int

(** Raises [Invalid_argument] on arity mismatch. *)
val add : Tuple.t -> t -> t

val remove : Tuple.t -> t -> t
val mem : Tuple.t -> t -> bool

val of_list : Sort.t list -> Tuple.t list -> t
val to_list : t -> Tuple.t list

val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val filter : (Tuple.t -> bool) -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool

val equal : t -> t -> bool

(** Values appearing in each column, keyed by the column's sort: the
    relation's contribution to the active domain. *)
val active_domain : t -> Domain.t

val pp : t Fmt.t
