(** Finite relations: sets of equal-length value tuples, the data
    structures of the relational model that RPR programs manipulate
    (paper Section 5.1). *)

open Fdbs_kernel

module Tuple = struct
  type t = Value.t list

  let compare = List.compare Value.compare
  let equal a b = compare a b = 0
  let pp ppf tu = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) tu
end

module Tuple_set = Set.Make (Tuple)

type t = {
  sorts : Sort.t list;  (** column sorts; the relation's arity is their length *)
  tuples : Tuple_set.t;
}

let empty sorts = { sorts; tuples = Tuple_set.empty }

let arity (r : t) = List.length r.sorts

let check_tuple (r : t) (tu : Tuple.t) =
  if List.length tu <> arity r then
    invalid_arg
      (Fmt.str "Relation: tuple of arity %d in relation of arity %d" (List.length tu)
         (arity r))

let add tu (r : t) =
  check_tuple r tu;
  { r with tuples = Tuple_set.add tu r.tuples }

let remove tu (r : t) =
  check_tuple r tu;
  { r with tuples = Tuple_set.remove tu r.tuples }

let mem tu (r : t) = Tuple_set.mem tu r.tuples

let of_list sorts tuples = List.fold_left (fun r tu -> add tu r) (empty sorts) tuples
let to_list (r : t) = Tuple_set.elements r.tuples

let cardinal (r : t) = Tuple_set.cardinal r.tuples
let is_empty (r : t) = Tuple_set.is_empty r.tuples

let union (a : t) (b : t) = { a with tuples = Tuple_set.union a.tuples b.tuples }
let inter (a : t) (b : t) = { a with tuples = Tuple_set.inter a.tuples b.tuples }
let diff (a : t) (b : t) = { a with tuples = Tuple_set.diff a.tuples b.tuples }

let filter f (r : t) = { r with tuples = Tuple_set.filter f r.tuples }

let fold f (r : t) acc = Tuple_set.fold f r.tuples acc
let iter f (r : t) = Tuple_set.iter f r.tuples
let exists f (r : t) = Tuple_set.exists f r.tuples
let for_all f (r : t) = Tuple_set.for_all f r.tuples

let equal (a : t) (b : t) =
  List.equal Sort.equal a.sorts b.sorts && Tuple_set.equal a.tuples b.tuples

(** Values appearing in each column, keyed by the column's sort: the
    relation's contribution to the active domain. *)
let active_domain (r : t) : Domain.t =
  fold
    (fun tu acc ->
      List.fold_left2
        (fun acc v srt -> Domain.add srt (v :: Domain.carrier acc srt) acc)
        acc tu r.sorts)
    r Domain.empty

let pp ppf (r : t) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Tuple.pp) (to_list r)
