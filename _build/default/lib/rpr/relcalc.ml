(** Evaluation of wffs and relational terms over a database state — the
    "set-oriented" heart of the representation level.

    A database state plus a finite domain induces a first-order
    structure: relation names become predicates and scalar program
    variables and declared constants become 0-ary functions. Relational
    terms [{(x̄) | P}] are evaluated naively here, by enumerating the
    carrier of each bound variable; {!Relalg} provides the compiled
    alternative. *)

open Fdbs_kernel
open Fdbs_logic

(** The structure induced by [db]: predicates from relations; constants
    from the scalars of [db] and the extra [consts] (a declared constant
    [c] defaults to the symbolic value [Sym c]). *)
let structure_of_db ~(domain : Domain.t) ?(consts : (string * Value.t) list = [])
    (db : Db.t) : Structure.t =
  let base =
    Structure.make ~domain
      ~funcs:
        (List.map (fun (n, v) -> (n, fun (_ : Value.t list) -> v)) consts
        @ List.map
            (fun (n, v) -> (n, fun (_ : Value.t list) -> v))
            (Db.scalars db))
      ()
  in
  List.fold_left
    (fun st (name, rel) -> Structure.with_table name (Relation.to_list rel) st)
    base (Db.relations db)

(** Truth of a closed wff in the state [db]. *)
let holds ~domain ?consts (db : Db.t) (f : Formula.t) : bool =
  Eval.sentence (structure_of_db ~domain ?consts db) f

(** Value of a variable-free term in the state [db]. Literals and bare
    scalar/constant names take a fast path that avoids building the
    induced structure. *)
let eval_term ~domain ?consts (db : Db.t) (t : Term.t) : Value.t =
  match t with
  | Term.Lit value -> value
  | Term.App (name, []) ->
    (match Db.scalar db name with
     | Some value -> value
     | None ->
       (match Option.bind consts (List.assoc_opt name) with
        | Some value -> value
        | None -> Eval.term (structure_of_db ~domain ?consts db) [] t))
  | Term.Var _ | Term.App _ -> Eval.term (structure_of_db ~domain ?consts db) [] t

(** Naive evaluation of a relational term: enumerate all tuples over the
    bound variables' carriers and keep those satisfying the body. *)
let eval_rterm_naive ~domain ?consts (db : Db.t) (rt : Stmt.rterm) : Relation.t =
  let st = structure_of_db ~domain ?consts db in
  let sorts = List.map (fun v -> v.Term.vsort) rt.Stmt.rt_vars in
  let carriers = List.map (Domain.carrier domain) sorts in
  let tuples =
    List.filter
      (fun values ->
        Eval.formula st (Util.zip_exn rt.Stmt.rt_vars values) rt.Stmt.rt_body)
      (Util.cartesian carriers)
  in
  Relation.of_list sorts tuples
