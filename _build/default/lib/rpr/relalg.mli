(** A relational algebra engine and a compiler from the safe,
    quantifier-free fragment of the relational calculus into it.

    The naive evaluator of {!Relcalc} enumerates the full cartesian
    product of the bound variables' carriers; for range-restricted
    bodies (such as those produced by desugaring [insert]/[delete]) the
    algebra evaluates in time proportional to the relations' contents
    instead (experiment E10). *)

open Fdbs_kernel
open Fdbs_logic

(** An argument of a selection or membership test: a column of the
    current row or a variable-free term. *)
type arg =
  | Acol of int
  | Aterm of Term.t

type col_pred =
  | Eq of arg * arg
  | Neq of arg * arg

(** Algebra expressions; columns are positional. *)
type expr =
  | Rel of string  (** contents of a database relation *)
  | Singleton of Term.t list * Sort.t list  (** one tuple of evaluated terms *)
  | Empty of Sort.t list
  | Select of col_pred list * expr
  | Project of int list * expr  (** also permutes/duplicates columns *)
  | Product of expr * expr
  | Union of expr * expr
  | Antijoin of expr * string * arg list
      (** keep rows whose [arg] tuple is {e not} in the named relation *)

val pp : expr Fmt.t

(** Column sorts of an expression, given the schema's relation sorts. *)
val sorts_of : rel_sorts:(string -> Sort.t list) -> expr -> Sort.t list

(** Evaluate an algebra expression against a database state. *)
val eval :
  domain:Domain.t -> ?consts:(string * Value.t) list -> Db.t -> expr -> Relation.t

(** Compile a relational term into an algebra expression; [None] when
    the body falls outside the supported fragment (quantifiers, or a
    head variable not range-restricted). *)
val compile : Stmt.rterm -> expr option

(** Evaluate a relational term: [`Compiled] requires compilability,
    [`Auto] (default) falls back to the naive evaluator. *)
val eval_rterm :
  ?strategy:[ `Naive | `Compiled | `Auto ] ->
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  Stmt.rterm ->
  Relation.t
