(** Statements of RPR — regular programs over relations (paper Section
    5.1.1).

    Core statements are scalar assignment, relational assignment of a
    relational term [{(x̄) | P}], test [P?], union, composition and
    iteration. The familiar constructs if-then(-else), while, insert
    and delete are {e derived}: they are kept as constructors for the
    tuple-oriented programming style the paper discusses, and
    {!desugar} rewrites them into the core. *)

open Fdbs_kernel
open Fdbs_logic

(** A relational term [{(x1,...,xn) | P}] of sort <s1,...,sn>. *)
type rterm = {
  rt_vars : Term.var list;
  rt_body : Formula.t;  (** free variables ⊆ [rt_vars] ∪ scalar program variables *)
}

type t =
  | Skip
  | Scalar_assign of string * Term.t  (** [x := t], [t] variable-free *)
  | Rel_assign of string * rterm  (** [R := {(x̄) | P}] *)
  | Test of Formula.t  (** [P?]: continue iff P holds *)
  | Union of t * t  (** nondeterministic choice [(p ∪ q)] *)
  | Seq of t * t  (** composition [(p ; q)] *)
  | Star of t  (** iteration: reflexive-transitive closure *)
  | If of Formula.t * t * t  (** derived; else branch may be [Skip] *)
  | While of Formula.t * t  (** derived *)
  | Insert of string * Term.t list  (** derived: [insert R(t̄)] *)
  | Delete of string * Term.t list  (** derived: [delete R(t̄)] *)

(** Left-associated composition of a list; [Skip] when empty. *)
val seq : t list -> t

(** Rewrite derived constructs into the core language:
    if-then-else into guarded union, while into star, insert/delete
    into relational assignments. [sorts_of] supplies each relation's
    column sorts. *)
val desugar : sorts_of:(string -> Sort.t list) -> t -> t

(** Statements built only from assignments and derived deterministic
    constructs have exactly one outcome. *)
val is_deterministic : t -> bool

(** Relation names assigned (written) by a statement. *)
val writes : t -> string list

(** Relation names read anywhere in the statement. *)
val reads : t -> string list

val pp_rterm : rterm Fmt.t
val pp : t Fmt.t
