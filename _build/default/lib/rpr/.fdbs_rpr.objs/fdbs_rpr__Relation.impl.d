lib/rpr/relation.ml: Domain Fdbs_kernel Fmt List Set Sort Value
