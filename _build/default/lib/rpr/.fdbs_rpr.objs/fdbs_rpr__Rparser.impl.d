lib/rpr/rparser.ml: Fdbs_kernel Fdbs_logic Formula List Parse Parser Schema Sort Stmt String Term
