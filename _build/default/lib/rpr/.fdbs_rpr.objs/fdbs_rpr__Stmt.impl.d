lib/rpr/stmt.ml: Fdbs_kernel Fdbs_logic Fmt Formula List Sort Term
