lib/rpr/schema.ml: Db Fdbs_kernel Fdbs_logic Fmt Formula List Relation Signature Sort Stmt Term
