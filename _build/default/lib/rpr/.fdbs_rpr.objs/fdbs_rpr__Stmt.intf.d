lib/rpr/stmt.mli: Fdbs_kernel Fdbs_logic Fmt Formula Sort Term
