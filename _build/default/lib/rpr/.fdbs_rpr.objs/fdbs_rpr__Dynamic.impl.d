lib/rpr/dynamic.ml: Db Domain Fdbs_kernel Fdbs_logic Fmt Formula List Relcalc Schema Semantics Stmt Term Value
