lib/rpr/denote.mli: Db Domain Fdbs_kernel Schema Semantics Stmt
