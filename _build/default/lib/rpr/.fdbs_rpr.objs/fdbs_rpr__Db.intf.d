lib/rpr/db.mli: Domain Fdbs_kernel Fmt Map Relation Value
