lib/rpr/relalg.mli: Db Domain Fdbs_kernel Fdbs_logic Fmt Relation Sort Stmt Term Value
