lib/rpr/semantics.ml: Db Domain Fdbs_kernel Fdbs_logic Fmt Formula List Relalg Relation Relcalc Schema Stmt Util Value
