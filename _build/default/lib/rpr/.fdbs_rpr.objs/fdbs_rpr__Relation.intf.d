lib/rpr/relation.mli: Domain Fdbs_kernel Fmt Set Sort Value
