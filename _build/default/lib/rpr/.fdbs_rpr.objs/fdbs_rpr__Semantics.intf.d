lib/rpr/semantics.mli: Db Domain Fdbs_kernel Fdbs_logic Formula Schema Stmt Value
