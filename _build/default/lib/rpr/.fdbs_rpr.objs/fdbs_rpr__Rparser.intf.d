lib/rpr/rparser.mli: Fdbs_kernel Fdbs_logic Formula Schema Sort Stmt
