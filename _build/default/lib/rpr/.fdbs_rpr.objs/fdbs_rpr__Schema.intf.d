lib/rpr/schema.mli: Db Fdbs_kernel Fdbs_logic Fmt Signature Sort Stmt
