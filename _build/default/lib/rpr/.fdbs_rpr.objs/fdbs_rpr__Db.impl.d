lib/rpr/db.ml: Domain Fdbs_kernel Fmt Map Relation String Value
