lib/rpr/dynamic.mli: Db Fdbs_kernel Fdbs_logic Fmt Formula Semantics Stmt Term
