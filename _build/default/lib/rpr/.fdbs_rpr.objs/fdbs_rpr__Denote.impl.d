lib/rpr/denote.ml: Array Db Domain Fdbs_kernel List Option Relation Schema Semantics Stmt Util
