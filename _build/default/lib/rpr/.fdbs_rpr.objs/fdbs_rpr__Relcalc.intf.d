lib/rpr/relcalc.mli: Db Domain Fdbs_kernel Fdbs_logic Formula Relation Stmt Structure Term Value
