lib/rpr/relalg.ml: Array Db Fdbs_kernel Fdbs_logic Fmt Formula List Relation Relcalc Sort Stmt Term Value
