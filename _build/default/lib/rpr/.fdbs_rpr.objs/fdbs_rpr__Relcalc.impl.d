lib/rpr/relcalc.ml: Db Domain Eval Fdbs_kernel Fdbs_logic Formula List Option Relation Stmt Structure Term Util Value
