(** Evaluation of wffs and relational terms over a database state — the
    "set-oriented" heart of the representation level.

    A database state plus a finite domain induces a first-order
    structure: relation names become predicates and scalar program
    variables and declared constants become 0-ary functions. Relational
    terms [{(x̄) | P}] are evaluated naively here, by enumerating the
    carrier of each bound variable; {!Relalg} provides the compiled
    alternative. *)

open Fdbs_kernel
open Fdbs_logic

(** The structure induced by a database state (a declared constant [c]
    defaults to the symbolic value [Sym c]). *)
val structure_of_db :
  domain:Domain.t -> ?consts:(string * Value.t) list -> Db.t -> Structure.t

(** Truth of a closed wff in a state. *)
val holds :
  domain:Domain.t -> ?consts:(string * Value.t) list -> Db.t -> Formula.t -> bool

(** Value of a variable-free term in a state; literals and bare
    scalar/constant names take a fast path. *)
val eval_term :
  domain:Domain.t -> ?consts:(string * Value.t) list -> Db.t -> Term.t -> Value.t

(** Naive evaluation of a relational term: enumerate all tuples over the
    bound variables' carriers and keep those satisfying the body. *)
val eval_rterm_naive :
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  Stmt.rterm ->
  Relation.t
