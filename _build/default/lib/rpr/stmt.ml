(** Statements of RPR — regular programs over relations (paper Section
    5.1.1).

    Core statements are scalar assignment, relational assignment of a
    relational term [{(x̄) | P}], test [P?], union, composition and
    iteration. The familiar constructs if-then(-else), while, insert
    and delete are {e derived}: they are kept as constructors for the
    tuple-oriented programming style the paper discusses, and
    {!desugar} rewrites them into the core. *)

open Fdbs_kernel
open Fdbs_logic

(** A relational term [{(x1,...,xn) | P}] of sort <s1,...,sn>. *)
type rterm = {
  rt_vars : Term.var list;
  rt_body : Formula.t;  (** free variables ⊆ [rt_vars] ∪ scalar program variables *)
}

type t =
  | Skip
  | Scalar_assign of string * Term.t  (** [x := t], [t] variable-free *)
  | Rel_assign of string * rterm  (** [R := {(x̄) | P}] *)
  | Test of Formula.t  (** [P?]: continue iff P holds *)
  | Union of t * t  (** nondeterministic choice [(p ∪ q)] *)
  | Seq of t * t  (** composition [(p ; q)] *)
  | Star of t  (** iteration [p*]: reflexive-transitive closure *)
  (* Derived constructs (definable; see {!desugar}): *)
  | If of Formula.t * t * t  (** if-then-else; else branch may be [Skip] *)
  | While of Formula.t * t
  | Insert of string * Term.t list  (** [insert R(t̄)] *)
  | Delete of string * Term.t list  (** [delete R(t̄)] *)

let seq = function [] -> Skip | s :: rest -> List.fold_left (fun a b -> Seq (a, b)) s rest

(* Fresh variables x̄ for a relation's columns, used by desugaring. *)
let column_vars (sorts : Sort.t list) : Term.var list =
  List.mapi (fun i srt -> { Term.vname = Fmt.str "_col%d" (i + 1); vsort = srt }) sorts

(** Rewrite derived constructs into the core language:
    - [if P then p else q]  ⇒  [(P?; p) ∪ ((~P)?; q)]
    - [while P do p]        ⇒  [((P?; p))* ; (~P)?]
    - [insert R(t̄)]        ⇒  [R := {(x̄) | R(x̄) ∨ x̄ = t̄}]
    - [delete R(t̄)]        ⇒  [R := {(x̄) | R(x̄) ∧ x̄ ≠ t̄}]
    - [skip]                ⇒  [true?]

    [sorts_of] supplies each relation's column sorts. *)
let rec desugar ~(sorts_of : string -> Sort.t list) (s : t) : t =
  match s with
  | Skip -> Test Formula.True
  | Scalar_assign _ | Rel_assign _ | Test _ -> s
  | Union (p, q) -> Union (desugar ~sorts_of p, desugar ~sorts_of q)
  | Seq (p, q) -> Seq (desugar ~sorts_of p, desugar ~sorts_of q)
  | Star p -> Star (desugar ~sorts_of p)
  | If (c, p, q) ->
    Union
      (Seq (Test c, desugar ~sorts_of p), Seq (Test (Formula.Not c), desugar ~sorts_of q))
  | While (c, p) -> Seq (Star (Seq (Test c, desugar ~sorts_of p)), Test (Formula.Not c))
  | Insert (r, ts) ->
    let xs = column_vars (sorts_of r) in
    let eqs =
      Formula.conj (List.map2 (fun x t -> Formula.Eq (Term.Var x, t)) xs ts)
    in
    let member = Formula.Pred (r, List.map (fun x -> Term.Var x) xs) in
    Rel_assign (r, { rt_vars = xs; rt_body = Formula.Or (member, eqs) })
  | Delete (r, ts) ->
    let xs = column_vars (sorts_of r) in
    let eqs =
      Formula.conj (List.map2 (fun x t -> Formula.Eq (Term.Var x, t)) xs ts)
    in
    let member = Formula.Pred (r, List.map (fun x -> Term.Var x) xs) in
    Rel_assign (r, { rt_vars = xs; rt_body = Formula.And (member, Formula.Not eqs) })

(** Statements built only from assignments and derived deterministic
    constructs have exactly one outcome (paper: "deterministic"). *)
let rec is_deterministic = function
  | Skip | Scalar_assign _ | Rel_assign _ | Insert _ | Delete _ -> true
  | If (_, p, q) -> is_deterministic p && is_deterministic q
  | While (_, p) -> is_deterministic p
  | Seq (p, q) -> is_deterministic p && is_deterministic q
  | Test _ | Union _ | Star _ -> false

(** Relation names assigned (written) by a statement. *)
let rec writes = function
  | Skip | Scalar_assign _ | Test _ -> []
  | Rel_assign (r, _) | Insert (r, _) | Delete (r, _) -> [ r ]
  | Union (p, q) | Seq (p, q) -> writes p @ writes q
  | Star p -> writes p
  | If (_, p, q) -> writes p @ writes q
  | While (_, p) -> writes p

(** Relation names read anywhere in the statement (tests, relational
    terms, derived constructs). *)
let reads (s : t) : string list =
  let rec preds_of_formula acc = function
    | Formula.True | Formula.False -> acc
    | Formula.Pred (p, _) -> if List.mem p acc then acc else p :: acc
    | Formula.Eq _ -> acc
    | Formula.Not f -> preds_of_formula acc f
    | Formula.And (f, g) | Formula.Or (f, g) | Formula.Imp (f, g) | Formula.Iff (f, g) ->
      preds_of_formula (preds_of_formula acc f) g
    | Formula.Forall (_, f) | Formula.Exists (_, f) -> preds_of_formula acc f
  in
  let rec go acc = function
    | Skip | Scalar_assign _ -> acc
    | Rel_assign (_, rt) -> preds_of_formula acc rt.rt_body
    | Test f -> preds_of_formula acc f
    | Insert (r, _) | Delete (r, _) -> if List.mem r acc then acc else r :: acc
    | Union (p, q) | Seq (p, q) -> go (go acc p) q
    | Star p -> go acc p
    | If (c, p, q) -> go (go (preds_of_formula acc c) p) q
    | While (c, p) -> go (preds_of_formula acc c) p
  in
  List.rev (go [] s)

let pp_rterm ppf (rt : rterm) =
  Fmt.pf ppf "{(%a) | %a}"
    Fmt.(list ~sep:(any ", ") (fun ppf v -> Fmt.pf ppf "%s:%s" v.Term.vname v.Term.vsort))
    rt.rt_vars Formula.pp rt.rt_body

let rec pp ppf = function
  | Skip -> Fmt.string ppf "skip"
  | Scalar_assign (x, t) -> Fmt.pf ppf "%s := %a" x Term.pp t
  | Rel_assign (r, rt) -> Fmt.pf ppf "%s := %a" r pp_rterm rt
  | Test f -> Fmt.pf ppf "test (%a)" Formula.pp f
  | Union (p, q) -> Fmt.pf ppf "(%a u %a)" pp p pp q
  | Seq (p, q) -> Fmt.pf ppf "(%a; %a)" pp p pp q
  | Star p -> Fmt.pf ppf "(%a)*" pp p
  | If (c, p, Skip) -> Fmt.pf ppf "if (%a) then %a" Formula.pp c pp p
  | If (c, p, q) -> Fmt.pf ppf "if (%a) then %a else %a" Formula.pp c pp p pp q
  | While (c, p) -> Fmt.pf ppf "while (%a) do %a" Formula.pp c pp p
  | Insert (r, ts) -> Fmt.pf ppf "insert %s(%a)" r Fmt.(list ~sep:(any ", ") Term.pp) ts
  | Delete (r, ts) -> Fmt.pf ppf "delete %s(%a)" r Fmt.(list ~sep:(any ", ") Term.pp) ts
