(** First-order dynamic logic over RPR programs (paper Section 5.3: "we
    would need a full programming logic, such as Dynamic Logic (a
    separate paper will explore this possibility)" — implemented here).

    Formulas extend the first-order wffs of L3 with the program
    modalities ⟨p⟩φ (some outcome of p satisfies φ) and [p]φ (every
    outcome does), where programs are RPR statements or procedure
    calls; semantics is Harel-style relational semantics over database
    states. The standard laws — duality ⟨p⟩φ ≡ ¬[p]¬φ, the test law
    [P?]φ ≡ P→φ, composition [p;q]φ ≡ [p][q]φ — are property-tested. *)

open Fdbs_logic

type program =
  | Prim of Stmt.t  (** an RPR statement *)
  | Call of string * Term.t list  (** a declared procedure on argument terms *)
  | Pseq of program * program  (** program composition at the logic level *)

type t =
  | Atom of Formula.t  (** an L3 wff evaluated at the current state *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall of Term.var * t  (** over the environment's domain *)
  | Exists of Term.var * t
  | Box of program * t  (** [p]φ: φ holds after every outcome of p *)
  | Diamond of program * t  (** ⟨p⟩φ: some outcome of p satisfies φ *)

val pp_program : program Fmt.t
val pp : t Fmt.t

exception Dyn_error of string

(** Outcome states of a program at a database state. *)
val run : Semantics.env -> Db.t -> program -> Db.t list

(** Substitute a value for a variable in every atom and every program
    argument term. *)
val subst_var : Term.var -> Fdbs_kernel.Value.t -> t -> t

(** Truth of a closed dynamic-logic formula at a database state. *)
val holds : Semantics.env -> Db.t -> t -> bool

val box : program -> t -> t
val diamond : program -> t -> t
