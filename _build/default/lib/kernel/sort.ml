(** Sort names for many-sorted languages.

    A sort is identified by its name. Two names are distinguished across
    the whole framework: {!bool}, the sort of truth values present in
    every language, and {!state}, the sort-of-interest of algebraic
    specifications (the paper's designated sort [state], Section 4.1). *)

type t = string

let make (name : string) : t =
  if name = "" then invalid_arg "Sort.make: empty sort name";
  name

let name (s : t) = s

(* The two distinguished sorts of the paper. *)
let bool : t = "bool"
let state : t = "state"

let equal = String.equal
let compare = String.compare
let pp = Fmt.string

let is_bool s = equal s bool
let is_state s = equal s state

module Map = Map.Make (String)
module Set = Set.Make (String)
