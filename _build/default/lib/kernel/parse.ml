(** Recursive-descent parsing support over {!Lexer} token streams.

    Each language parser builds on this mutable cursor; errors carry the
    source offset and are rendered with a caret line by {!error_to_string}. *)

type state = {
  src : string;
  toks : Lexer.located array;
  mutable pos : int;
}

exception Error of string * int

let of_string src =
  match Lexer.tokenize src with
  | toks -> { src; toks = Array.of_list toks; pos = 0 }
  | exception Lexer.Lex_error (msg, off) -> raise (Error (msg, off))

let peek st : Lexer.token = st.toks.(st.pos).tok

let peek2 st : Lexer.token =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok
  else Lexer.Eof

let offset st = st.toks.(st.pos).offset

let advance st = if st.pos + 1 < Array.length st.toks then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let fail st msg = raise (Error (msg, offset st))

let expect st (tok : Lexer.token) =
  if Lexer.token_equal (peek st) tok then advance st
  else fail st (Fmt.str "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token (peek st))

let expect_sym st s = expect st (Lexer.Sym s)

(** Accept token [tok] if present; report whether it was consumed. *)
let accept st (tok : Lexer.token) =
  if Lexer.token_equal (peek st) tok then (advance st; true) else false

let accept_sym st s = accept st (Lexer.Sym s)

(** Accept a specific keyword (an [Ident] with the given spelling). *)
let accept_kw st kw = accept st (Lexer.Ident kw)

let expect_kw st kw =
  if not (accept_kw st kw) then
    fail st (Fmt.str "expected keyword %S but found %a" kw Lexer.pp_token (peek st))

(** Parse any identifier (lower- or uppercase). *)
let ident st =
  match peek st with
  | Lexer.Ident s | Lexer.Uident s ->
    advance st;
    s
  | other -> fail st (Fmt.str "expected an identifier but found %a" Lexer.pp_token other)

let int st =
  match peek st with
  | Lexer.Int n ->
    advance st;
    n
  | other -> fail st (Fmt.str "expected an integer but found %a" Lexer.pp_token other)

let at_eof st = Lexer.token_equal (peek st) Lexer.Eof

(** [sep_list st ~sep item] parses [item (sep item)*]. *)
let sep_list st ~sep item =
  let first = item st in
  let rec rest acc = if accept_sym st sep then rest (item st :: acc) else List.rev acc in
  rest [ first ]

let error_to_string src (msg, off) =
  let line_start =
    match String.rindex_from_opt src (max 0 (min off (String.length src) - 1)) '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  let line_end =
    match String.index_from_opt src line_start '\n' with
    | Some i -> i
    | None -> String.length src
  in
  let line = String.sub src line_start (line_end - line_start) in
  let caret = String.make (max 0 (off - line_start)) ' ' ^ "^" in
  Fmt.str "parse error at offset %d: %s@.%s@.%s" off msg line caret

(** Run a parser on a whole string, requiring all input to be consumed. *)
let run (p : state -> 'a) (src : string) : ('a, string) result =
  match
    let st = of_string src in
    let v = p st in
    if at_eof st then Ok v
    else Error (Fmt.str "trailing input: %a" Lexer.pp_token (peek st), offset st)
  with
  | Ok v -> Ok v
  | Error err -> Result.Error (error_to_string src err)
  | exception Error (msg, off) -> Result.Error (error_to_string src (msg, off))
