lib/kernel/lexer.mli: Fmt
