lib/kernel/value.ml: Fmt Hashtbl Stdlib
