lib/kernel/util.ml: Fmt List
