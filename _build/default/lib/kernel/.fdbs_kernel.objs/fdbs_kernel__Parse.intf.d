lib/kernel/parse.mli: Lexer
