lib/kernel/parse.ml: Array Fmt Lexer List Result String
