lib/kernel/value.mli: Fmt
