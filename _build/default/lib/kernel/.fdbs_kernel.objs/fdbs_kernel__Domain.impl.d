lib/kernel/domain.ml: Fmt List Sort Value
