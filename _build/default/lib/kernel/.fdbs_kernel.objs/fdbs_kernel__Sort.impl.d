lib/kernel/sort.ml: Fmt Map Set String
