lib/kernel/domain.mli: Fmt Sort Value
