lib/kernel/lexer.ml: Buffer Fmt List String
