lib/kernel/util.mli: Fmt
