lib/kernel/sort.mli: Fmt Map Set
