(** Small general-purpose helpers used across the framework. *)

(** [cartesian [l1; ...; ln]] is the list of all [[x1; ...; xn]] with
    [xi] drawn from [li], in lexicographic order. [cartesian [] = [[]]]. *)
let cartesian (lists : 'a list list) : 'a list list =
  let add_layer layer acc =
    List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) layer
  in
  List.fold_right add_layer lists [ [] ]

(** All length-[n] tuples over [xs]. *)
let tuples xs n = cartesian (List.init n (fun _ -> xs))

let rec dedup ?(eq = ( = )) = function
  | [] -> []
  | x :: rest ->
    x :: dedup ~eq (List.filter (fun y -> not (eq x y)) rest)

(** [zip_exn xs ys] pairs two lists of equal length. *)
let zip_exn xs ys =
  try List.combine xs ys
  with Invalid_argument _ -> invalid_arg "Util.zip_exn: length mismatch"

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let sum = List.fold_left ( + ) 0

(** Fixpoint of a monotone set-expansion step: repeatedly apply [step]
    to the frontier, accumulating states distinct under [eq], until no
    new element appears or [limit] elements have been accumulated. *)
let bfs_fixpoint ~eq ~limit ~(step : 'a -> 'a list) (starts : 'a list) :
  'a list * bool (* truncated? *) =
  let seen = ref [] in
  let mem x = List.exists (eq x) !seen in
  let truncated = ref false in
  let rec loop frontier =
    match frontier with
    | [] -> ()
    | _ when List.length !seen >= limit -> truncated := true
    | _ ->
      let next =
        List.concat_map step frontier
        |> List.filter (fun x -> not (mem x))
        |> dedup ~eq
      in
      let room = limit - List.length !seen in
      let next = if List.length next > room then (truncated := true; take room next) else next in
      seen := !seen @ next;
      loop next
  in
  let starts = dedup ~eq starts in
  seen := starts;
  loop starts;
  (!seen, !truncated)

let result_all (results : ('a, 'e) result list) : ('a list, 'e) result =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Ok x :: rest -> go (x :: acc) rest
    | Error e :: _ -> Error e
  in
  go [] results

let pp_comma_list pp ppf xs = Fmt.(list ~sep:(any ", ") pp) ppf xs
