(** Runtime values shared by all levels of specification.

    Elements of every sort's carrier are drawn from this single universal
    value type: booleans (the carrier of the distinguished [Boolean] sort),
    integers (for ordered parameter sorts such as grades or amounts) and
    symbolic constants (named individuals such as courses or students). *)

type t =
  | Bool of bool
  | Int of int
  | Sym of string  (** a named individual, e.g. [Sym "cs101"] *)

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let vtrue = Bool true
let vfalse = Bool false

let of_bool b = Bool b

let to_bool = function
  | Bool b -> Some b
  | Int _ | Sym _ -> None

let to_int = function
  | Int n -> Some n
  | Bool _ | Sym _ -> None

let pp ppf = function
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Sym s -> Fmt.string ppf s

let to_string v = Fmt.str "%a" pp v

let hash (v : t) = Hashtbl.hash v
