(** Sort names for many-sorted languages.

    A sort is identified by its name; the type is transparently
    [string] so that sorts can be written literally. Two names are
    distinguished across the whole framework: {!bool}, the sort of
    truth values present in every language, and {!state}, the
    sort-of-interest of algebraic specifications (the paper's
    designated sort [state], Section 4.1). *)

type t = string

(** [make name] checks the name is non-empty. *)
val make : string -> t

val name : t -> string

(** The Boolean sort, ["bool"]. *)
val bool : t

(** The designated state sort, ["state"]. *)
val state : t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val is_bool : t -> bool
val is_state : t -> bool

module Map : Map.S with type key = string
module Set : Set.S with type elt = string
