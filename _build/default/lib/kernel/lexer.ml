(** A shared tokenizer for the concrete syntaxes of all four languages
    (first-order wffs, temporal wffs, algebraic specifications and RPR
    schemas).

    The token alphabet is the union of what the surface syntaxes need;
    each parser interprets identifiers as keywords on its own. Comments
    run from ['#'] to end of line. *)

type token =
  | Ident of string  (** identifier starting with a lowercase letter *)
  | Uident of string  (** identifier starting with an uppercase letter *)
  | Int of int
  | Str of string  (** double-quoted string literal *)
  | Sym of string  (** operator or punctuation, e.g. ["->"], ["("] *)
  | Eof

type located = { tok : token; offset : int }

exception Lex_error of string * int

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Uident s -> Fmt.pf ppf "identifier %S" s
  | Int n -> Fmt.pf ppf "integer %d" n
  | Str s -> Fmt.pf ppf "string %S" s
  | Sym s -> Fmt.pf ppf "%S" s
  | Eof -> Fmt.string ppf "end of input"

let token_equal (a : token) (b : token) = a = b

(* Multi-character symbols, longest first so that the scan is greedy. *)
let symbols =
  [ "<=>"; "<->"; ":="; "->"; "=>"; "<>"; "<="; ">="; "/="; "||"; "&&";
    "["; "]"; "{"; "}"; "("; ")"; ","; ";"; ":"; "."; "="; "<"; ">"; "|";
    "&"; "~"; "*"; "?"; "!"; "/"; "+"; "-"; "@" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : located list =
  let n = String.length src in
  let out = ref [] in
  let emit tok offset = out := { tok; offset } :: !out in
  let rec skip_line i = if i < n && src.[i] <> '\n' then skip_line (i + 1) else i in
  let rec scan i =
    if i >= n then emit Eof n
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then scan (i + 1)
      else if c = '#' then scan (skip_line i)
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do incr j done;
        emit (Int (int_of_string (String.sub src i (!j - i)))) i;
        scan !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let s = String.sub src i (!j - i) in
        let tok = if c >= 'A' && c <= 'Z' then Uident s else Ident s in
        emit tok i;
        scan !j
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error ("unterminated string literal", i))
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf src.[j + 1];
            str (j + 2)
          end
          else begin
            Buffer.add_char buf src.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        emit (Str (Buffer.contents buf)) i;
        scan j
      end
      else
        let matching =
          List.find_opt
            (fun sym ->
              let l = String.length sym in
              i + l <= n && String.sub src i l = sym)
            symbols
        in
        match matching with
        | Some sym ->
          emit (Sym sym) i;
          scan (i + String.length sym)
        | None -> raise (Lex_error (Fmt.str "unexpected character %C" c, i))
  in
  scan 0;
  List.rev !out
