(** Finite carriers for sorts.

    Quantifiers are evaluated over finite domains: a [Domain.t] assigns
    to each sort the (finite) list of values inhabiting it. The [bool]
    sort always has carrier [{false, true}], supplied implicitly. *)

type t

(** The domain assigning an empty carrier to every sort (except
    [bool]). *)
val empty : t

(** [add sort values d] replaces [sort]'s carrier by the deduplicated
    [values]. *)
val add : Sort.t -> Value.t list -> t -> t

val of_list : (Sort.t * Value.t list) list -> t

(** [carrier d sort] is the carrier of [sort] — [{false, true}] for
    [bool], [[]] for unknown sorts. *)
val carrier : t -> Sort.t -> Value.t list

val mem : t -> Sort.t -> Value.t -> bool

(** Sorts with explicitly assigned carriers. *)
val sorts : t -> Sort.t list

val size : t -> Sort.t -> int

(** [union d1 d2] joins the carriers sort-wise. *)
val union : t -> t -> t

val pp : t Fmt.t
