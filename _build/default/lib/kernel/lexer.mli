(** A shared tokenizer for the concrete syntaxes of all four languages
    (first-order wffs, temporal wffs, algebraic specifications and RPR
    schemas).

    The token alphabet is the union of what the surface syntaxes need;
    each parser interprets identifiers as keywords on its own. Comments
    run from ['#'] to end of line. *)

type token =
  | Ident of string  (** identifier starting with a lowercase letter *)
  | Uident of string  (** identifier starting with an uppercase letter *)
  | Int of int
  | Str of string  (** double-quoted string literal *)
  | Sym of string  (** operator or punctuation, e.g. ["->"], ["("] *)
  | Eof

type located = {
  tok : token;
  offset : int;  (** byte offset of the token in the source *)
}

exception Lex_error of string * int

val pp_token : token Fmt.t
val token_equal : token -> token -> bool

(** Tokenize a whole source string; the result always ends with {!Eof}.
    Raises {!Lex_error} with the offending offset on unknown
    characters or unterminated strings. *)
val tokenize : string -> located list
