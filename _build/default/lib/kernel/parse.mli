(** Recursive-descent parsing support over {!Lexer} token streams.

    Each language parser builds on this mutable cursor; errors carry the
    source offset and are rendered with a caret line by {!run}. *)

type state

exception Error of string * int
(** message and source offset *)

(** Tokenize a source string into a fresh cursor. Raises {!Error} on
    lexical problems. *)
val of_string : string -> state

val peek : state -> Lexer.token
val peek2 : state -> Lexer.token

(** Offset of the current token in the source. *)
val offset : state -> int

val advance : state -> unit
val next : state -> Lexer.token

(** Fail at the current position. *)
val fail : state -> string -> 'a

val expect : state -> Lexer.token -> unit
val expect_sym : state -> string -> unit

(** Consume the token if it is the expected one; report whether it was
    consumed. *)
val accept : state -> Lexer.token -> bool

val accept_sym : state -> string -> bool

(** Accept a specific keyword (an [Ident] with the given spelling). *)
val accept_kw : state -> string -> bool

val expect_kw : state -> string -> unit

(** Any identifier (lower- or uppercase). *)
val ident : state -> string

val int : state -> int
val at_eof : state -> bool

(** [sep_list st ~sep item] parses [item (sep item)*]. *)
val sep_list : state -> sep:string -> (state -> 'a) -> 'a list

val error_to_string : string -> string * int -> string

(** Run a parser on a whole string, requiring all input to be consumed;
    errors are rendered with the offending line and a caret. *)
val run : (state -> 'a) -> string -> ('a, string) result
