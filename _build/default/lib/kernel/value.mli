(** Runtime values shared by all levels of specification.

    Elements of every sort's carrier are drawn from this single
    universal value type: booleans (the carrier of the distinguished
    [Boolean] sort), integers (for ordered parameter sorts such as
    stock levels) and symbolic constants (named individuals such as
    courses or students). *)

type t =
  | Bool of bool
  | Int of int
  | Sym of string  (** a named individual, e.g. [Sym "cs101"] *)

val compare : t -> t -> int
val equal : t -> t -> bool

val vtrue : t
val vfalse : t

val of_bool : bool -> t

(** [to_bool v] is [Some b] iff [v] is [Bool b]. *)
val to_bool : t -> bool option

(** [to_int v] is [Some n] iff [v] is [Int n]. *)
val to_int : t -> int option

val pp : t Fmt.t
val to_string : t -> string
val hash : t -> int
