(** Finite carriers for sorts.

    Quantifiers are evaluated over finite domains: a [Domain.t] assigns to
    each sort the (finite) list of values inhabiting it. The [bool] sort
    always has carrier [{true, false}], supplied implicitly. *)

type t = Value.t list Sort.Map.t

let empty : t = Sort.Map.empty

let add sort values (d : t) : t =
  let dedup =
    List.sort_uniq Value.compare values
  in
  Sort.Map.add sort dedup d

let of_list bindings =
  List.fold_left (fun d (s, vs) -> add s vs d) empty bindings

let carrier (d : t) sort =
  if Sort.is_bool sort then [ Value.Bool false; Value.Bool true ]
  else match Sort.Map.find_opt sort d with
    | Some vs -> vs
    | None -> []

let mem (d : t) sort v = List.exists (Value.equal v) (carrier d sort)

let sorts (d : t) = List.map fst (Sort.Map.bindings d)

let size (d : t) sort = List.length (carrier d sort)

(** [union d1 d2] joins the carriers sort-wise. *)
let union (d1 : t) (d2 : t) : t =
  Sort.Map.union
    (fun _ vs1 vs2 -> Some (List.sort_uniq Value.compare (vs1 @ vs2)))
    d1 d2

let pp ppf (d : t) =
  let pp_binding ppf (s, vs) =
    Fmt.pf ppf "@[%a = {%a}@]" Sort.pp s Fmt.(list ~sep:(any ", ") Value.pp) vs
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_binding) (Sort.Map.bindings d)
