(* Tests for the shared kernel: values, sorts, domains, utilities,
   lexing and parse-support. *)

open Fdbs_kernel

let test_value_equal () =
  Alcotest.(check bool) "bool equal" true (Value.equal (Value.Bool true) (Value.Bool true));
  Alcotest.(check bool) "sym differs" false (Value.equal (Value.Sym "a") (Value.Sym "b"));
  Alcotest.(check bool) "int vs sym" false (Value.equal (Value.Int 1) (Value.Sym "1"))

let test_value_conversions () =
  Alcotest.(check (option bool)) "to_bool" (Some true) (Value.to_bool (Value.Bool true));
  Alcotest.(check (option bool)) "to_bool of int" None (Value.to_bool (Value.Int 3));
  Alcotest.(check (option int)) "to_int" (Some 42) (Value.to_int (Value.Int 42));
  Alcotest.(check string) "to_string" "x" (Value.to_string (Value.Sym "x"))

let test_domain_carrier () =
  let d = Domain.of_list [ ("course", [ Value.Sym "a"; Value.Sym "b"; Value.Sym "a" ]) ] in
  Alcotest.(check int) "deduplicated" 2 (Domain.size d "course");
  Alcotest.(check int) "bool carrier implicit" 2 (Domain.size d Sort.bool);
  Alcotest.(check int) "unknown sort empty" 0 (Domain.size d "nope")

let test_domain_union () =
  let d1 = Domain.of_list [ ("s", [ Value.Int 1 ]) ] in
  let d2 = Domain.of_list [ ("s", [ Value.Int 2 ]); ("t", [ Value.Int 3 ]) ] in
  let u = Domain.union d1 d2 in
  Alcotest.(check int) "merged carrier" 2 (Domain.size u "s");
  Alcotest.(check int) "other sort kept" 1 (Domain.size u "t")

let test_cartesian () =
  Alcotest.(check (list (list int))) "empty product" [ [] ] (Util.cartesian []);
  Alcotest.(check int) "2x3 product" 6 (List.length (Util.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ]));
  Alcotest.(check (list (list int)))
    "order" [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Util.cartesian [ [ 1; 2 ]; [ 3; 4 ] ])

let test_tuples () =
  Alcotest.(check int) "3^2 tuples" 9 (List.length (Util.tuples [ 1; 2; 3 ] 2));
  Alcotest.(check (list (list int))) "0-tuples" [ [] ] (Util.tuples [ 1 ] 0)

let test_bfs_fixpoint () =
  (* successors mod 10: reach all residues from 0 *)
  let step x = [ (x + 3) mod 10 ] in
  let states, truncated = Util.bfs_fixpoint ~eq:( = ) ~limit:100 ~step [ 0 ] in
  Alcotest.(check int) "cycle of 10" 10 (List.length states);
  Alcotest.(check bool) "not truncated" false truncated;
  let _, truncated = Util.bfs_fixpoint ~eq:( = ) ~limit:5 ~step [ 0 ] in
  Alcotest.(check bool) "truncated at limit" true truncated

let test_lexer_basic () =
  let toks = Lexer.tokenize "foo(Bar, 42) # comment\n= \"str\"" in
  let kinds = List.map (fun (l : Lexer.located) -> l.Lexer.tok) toks in
  Alcotest.(check int) "token count" 9 (List.length kinds);
  (match kinds with
   | [ Lexer.Ident "foo"; Lexer.Sym "("; Lexer.Uident "Bar"; Lexer.Sym ",";
       Lexer.Int 42; Lexer.Sym ")"; Lexer.Sym "="; Lexer.Str "str"; Lexer.Eof ] -> ()
   | _ -> Alcotest.fail "unexpected token stream")

let test_lexer_symbols () =
  let toks = Lexer.tokenize ":= -> <-> /= <= >=" in
  let syms =
    List.filter_map
      (fun (l : Lexer.located) ->
        match l.Lexer.tok with Lexer.Sym s -> Some s | _ -> None)
      toks
  in
  Alcotest.(check (list string)) "greedy multi-char" [ ":="; "->"; "<->"; "/="; "<="; ">=" ] syms

let test_lexer_error () =
  match Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error (_, off) -> Alcotest.(check int) "error offset" 2 off

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_parse_error_rendering () =
  match Parse.run (fun st -> Parse.expect_sym st "(") "xyz" with
  | Ok () -> Alcotest.fail "expected parse failure"
  | Error msg ->
    Alcotest.(check bool) "mentions offset" true (contains_substring msg "offset")

let suite =
  [
    Alcotest.test_case "value equality" `Quick test_value_equal;
    Alcotest.test_case "value conversions" `Quick test_value_conversions;
    Alcotest.test_case "domain carrier" `Quick test_domain_carrier;
    Alcotest.test_case "domain union" `Quick test_domain_union;
    Alcotest.test_case "cartesian product" `Quick test_cartesian;
    Alcotest.test_case "tuples" `Quick test_tuples;
    Alcotest.test_case "bfs fixpoint" `Quick test_bfs_fixpoint;
    Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer symbols" `Quick test_lexer_symbols;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parse error rendering" `Quick test_parse_error_rendering;
  ]
