(* Tests for the W-grammar level: metarule derivability, hypernotion
   matching, consistent substitution, the classic context-sensitive
   examples, and the RPR schema grammar with its declared-before-use
   check (paper Section 5.1.1). *)

open Fdbs_wgrammar

let test_base_meta () =
  Alcotest.(check string) "NAME2 -> NAME" "NAME" (Wg.base_meta "NAME2");
  Alcotest.(check string) "NAME -> NAME" "NAME" (Wg.base_meta "NAME");
  Alcotest.(check string) "N12 -> N" "N" (Wg.base_meta "N12")

let test_derives () =
  let g = Classic.an_bn_cn in
  Alcotest.(check bool) "N derives i" true (Wg.derives g "N" [ "i" ]);
  Alcotest.(check bool) "N derives iii" true (Wg.derives g "N" [ "i"; "i"; "i" ]);
  Alcotest.(check bool) "N rejects empty" false (Wg.derives g "N" []);
  Alcotest.(check bool) "N rejects a" false (Wg.derives g "N" [ "a" ]);
  Alcotest.(check bool) "N2 shares N's rules" true (Wg.derives g "N2" [ "i"; "i" ])

let test_match_hypernotion () =
  let g = Classic.an_bn_cn in
  let derives = Wg.deriver g in
  let pattern = [ Wg.Proto "as"; Wg.Meta "N" ] in
  let substs = Wg.match_hypernotion ~derives pattern [ "as"; "i"; "i" ] in
  Alcotest.(check int) "single match" 1 (List.length substs);
  (match substs with
   | [ s ] -> Alcotest.(check (list string)) "N = ii" [ "i"; "i" ] (List.assoc "N" s)
   | _ -> ());
  Alcotest.(check int) "no match against bs" 0
    (List.length (Wg.match_hypernotion ~derives pattern [ "bs"; "i" ]))

let test_consistency () =
  (* within one rule the same metanotion must take one value: matching
     [N ... N] against unequal segments fails *)
  let g = Classic.an_bn_cn in
  let derives = Wg.deriver g in
  let pattern = [ Wg.Meta "N"; Wg.Proto "/"; Wg.Meta "N" ] in
  Alcotest.(check int) "equal halves" 1
    (List.length (Wg.match_hypernotion ~derives pattern [ "i"; "/"; "i" ]));
  Alcotest.(check int) "unequal halves rejected" 0
    (List.length (Wg.match_hypernotion ~derives pattern [ "i"; "/"; "i"; "i" ]))

let recognize_abc input =
  let config =
    {
      Recognize.default_config with
      Recognize.candidates = Classic.an_bn_cn_candidates (List.length input);
    }
  in
  Recognize.recognize ~config Classic.an_bn_cn input

let test_an_bn_cn () =
  Alcotest.(check bool) "abc" true (recognize_abc [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "aabbcc" true (recognize_abc [ "a"; "a"; "b"; "b"; "c"; "c" ]);
  Alcotest.(check bool) "aaabbbccc" true
    (recognize_abc [ "a"; "a"; "a"; "b"; "b"; "b"; "c"; "c"; "c" ]);
  Alcotest.(check bool) "empty rejected" false (recognize_abc []);
  Alcotest.(check bool) "aabbc rejected" false (recognize_abc [ "a"; "a"; "b"; "b"; "c" ]);
  Alcotest.(check bool) "abcc rejected" false (recognize_abc [ "a"; "b"; "c"; "c" ]);
  Alcotest.(check bool) "acb rejected" false (recognize_abc [ "a"; "c"; "b" ])

let recognize_ww input =
  let config =
    {
      Recognize.default_config with
      Recognize.candidates = Classic.ww_candidates (List.length input);
    }
  in
  Recognize.recognize ~config Classic.ww input

let test_ww () =
  Alcotest.(check bool) "xx" true (recognize_ww [ "x"; "x" ]);
  Alcotest.(check bool) "xyxy" true (recognize_ww [ "x"; "y"; "x"; "y" ]);
  Alcotest.(check bool) "xyyx rejected" false (recognize_ww [ "x"; "y"; "y"; "x" ]);
  Alcotest.(check bool) "odd length rejected" false (recognize_ww [ "x"; "y"; "x" ])

let test_grammar_check () =
  Alcotest.(check (list string)) "abc grammar clean" [] (Wg.check Classic.an_bn_cn);
  let bad =
    {
      Wg.metarules = [];
      rules = [ { Wg.lhs = [ Wg.Meta "GHOST" ]; alts = [ [] ] } ];
      start = [ Wg.Meta "GHOST" ];
    }
  in
  Alcotest.(check bool) "ghost metanotion flagged" true (Wg.check bad <> [])

(* --- the RPR schema grammar ----------------------------------------- *)

let university_src =
  {|
schema university
relation OFFERED(course)
relation TAKES(student, course)
proc initiate() =
  (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})
proc offer(c: course) = insert OFFERED(c)
proc cancel(c: course) =
  if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)
proc enroll(s: student, c: course) =
  if (OFFERED(c)) then insert TAKES(s, c)
proc transfer(s: student, c: course, c2: course) =
  if (TAKES(s, c) & ~TAKES(s, c2) & OFFERED(c2))
  then (delete TAKES(s, c) ; insert TAKES(s, c2))
end-schema
|}

let test_rpr_accepts_university () =
  Alcotest.(check bool) "university schema recognized" true
    (Rpr_grammar.recognizes university_src)

let test_rpr_rejects_undeclared () =
  let bad =
    {|
schema bad
relation OFFERED(course)
proc offer(c: course) = insert TAKES(c)
end-schema
|}
  in
  Alcotest.(check bool) "undeclared use rejected" false (Rpr_grammar.recognizes bad)

let test_rpr_rejects_malformed () =
  let bad = {|
schema bad
relation R(course)
proc p(c: course) = insert R(c
end-schema
|} in
  Alcotest.(check bool) "unbalanced parens rejected" false (Rpr_grammar.recognizes bad);
  Alcotest.(check bool) "empty text rejected" false (Rpr_grammar.recognizes "")

let test_rpr_small_schema () =
  let ok = {|
schema tiny
relation R(thing)
proc init() = R := {(x:thing) | false}
proc add(x: thing) = insert R(x)
end
|} in
  Alcotest.(check bool) "tiny schema recognized" true (Rpr_grammar.recognizes ok)

let test_declared_relations_prescan () =
  let tokens = Rpr_grammar.tokens_of_source university_src in
  Alcotest.(check (list string)) "prescan finds SCL" [ "OFFERED"; "TAKES" ]
    (Rpr_grammar.declared_relations tokens)

let suite =
  [
    Alcotest.test_case "base metanotion names" `Quick test_base_meta;
    Alcotest.test_case "metarule derivability" `Quick test_derives;
    Alcotest.test_case "hypernotion matching" `Quick test_match_hypernotion;
    Alcotest.test_case "consistent substitution" `Quick test_consistency;
    Alcotest.test_case "a^n b^n c^n" `Quick test_an_bn_cn;
    Alcotest.test_case "ww reduplication" `Quick test_ww;
    Alcotest.test_case "grammar validation" `Quick test_grammar_check;
    Alcotest.test_case "RPR grammar accepts university" `Slow test_rpr_accepts_university;
    Alcotest.test_case "RPR grammar rejects undeclared" `Quick test_rpr_rejects_undeclared;
    Alcotest.test_case "RPR grammar rejects malformed" `Quick test_rpr_rejects_malformed;
    Alcotest.test_case "RPR grammar small schema" `Quick test_rpr_small_schema;
    Alcotest.test_case "declared-relations prescan" `Quick test_declared_relations_prescan;
  ]

(* --- property test: W-grammar recognition vs an oracle --------------- *)

(* random words over {a,b,c} up to length 9; the a^n b^n c^n grammar
   must agree with the obvious oracle *)
let random_abc_word =
  QCheck.Gen.(list_size (int_range 0 9) (oneofl [ "a"; "b"; "c" ]))

let abc_oracle (w : string list) : bool =
  let n = List.length w in
  n > 0 && n mod 3 = 0
  &&
  let k = n / 3 in
  List.for_all2 ( = ) w
    (List.init n (fun i -> if i < k then "a" else if i < 2 * k then "b" else "c"))

let prop_abc_matches_oracle =
  QCheck.Test.make ~name:"a^n b^n c^n recognition matches oracle" ~count:300
    (QCheck.make ~print:(String.concat " ") random_abc_word)
    (fun w -> recognize_abc w = abc_oracle w)

(* describe-block parsing produces checkable descriptions *)
let test_describe_parsing () =
  let src =
    {|
spec tiny
sort thing
query present : thing -> bool
update initiate
update put : thing
describe initiate()
  effect: present(x) := false
describe put(x: thing)
  pre: present(x, U) = false
  effect: present(x) := true
|}
  in
  match Fdbs_algebra.Aparser.spec_with_descriptions src with
  | Error e -> Alcotest.fail e
  | Ok (spec, descs) ->
    Alcotest.(check int) "two descriptions" 2 (List.length descs);
    (match Fdbs_algebra.Derive.equations spec.Fdbs_algebra.Spec.signature descs with
     | Error e -> Alcotest.fail e
     | Ok eqs -> Alcotest.(check bool) "equations derived" true (List.length eqs >= 4))

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_abc_matches_oracle;
      Alcotest.test_case "describe-block parsing" `Quick test_describe_parsing;
    ]
