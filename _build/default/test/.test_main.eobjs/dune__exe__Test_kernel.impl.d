test/test_kernel.ml: Alcotest Domain Fdbs_kernel Lexer List Parse Sort String Util Value
