test/test_wgrammar.ml: Alcotest Classic Fdbs_algebra Fdbs_wgrammar List QCheck QCheck_alcotest Recognize Rpr_grammar String Wg
