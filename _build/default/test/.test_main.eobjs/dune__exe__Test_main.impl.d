test/test_main.ml: Alcotest Test_algebra Test_core Test_kernel Test_logic Test_props Test_refinement Test_rpr Test_temporal Test_wgrammar
