test/test_core.ml: Alcotest Design Fdbs Fdbs_wgrammar Fmt List University
