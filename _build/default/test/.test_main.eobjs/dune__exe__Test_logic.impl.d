test/test_logic.ml: Alcotest Domain Eval Fdbs_kernel Fdbs_logic Formula List Option Parser QCheck QCheck_alcotest Result Signature Structure Term Theory Transform Unify Value
