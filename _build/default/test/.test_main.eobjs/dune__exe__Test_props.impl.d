test/test_props.ml: Db Domain Eval Fdbs Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_refine Fdbs_rpr Fmt Formula List Observe QCheck QCheck_alcotest Relation Schema Semantics Spec Stmt Term Trace Value
