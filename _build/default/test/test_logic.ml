(* Tests for the first-order level: terms, formulas, structures,
   satisfaction, transforms, matching/unification and the parser. *)

open Fdbs_kernel
open Fdbs_logic

(* The paper's information-level signature (Section 3.2): sorts course
   and student; db-predicates offered<course> and takes<student,course>. *)
let sg =
  Signature.make
    ~sorts:[ "course"; "student" ]
    ~funcs:
      [
        Signature.const "cs101" "course";
        Signature.const "cs102" "course";
        Signature.const "ana" "student";
        Signature.const "bob" "student";
      ]
    ~preds:
      [
        Signature.db_pred "offered" [ "course" ];
        Signature.db_pred "takes" [ "student"; "course" ];
      ]

let domain =
  Domain.of_list
    [
      ("course", [ Value.Sym "cs101"; Value.Sym "cs102" ]);
      ("student", [ Value.Sym "ana"; Value.Sym "bob" ]);
    ]

(* A structure in which cs101 is offered and ana takes cs101. *)
let st_consistent =
  Structure.of_tables ~domain
    ~consts:
      [
        ("cs101", Value.Sym "cs101");
        ("cs102", Value.Sym "cs102");
        ("ana", Value.Sym "ana");
        ("bob", Value.Sym "bob");
      ]
    ~relations:
      [
        ("offered", [ [ Value.Sym "cs101" ] ]);
        ("takes", [ [ Value.Sym "ana"; Value.Sym "cs101" ] ]);
      ]

(* Inconsistent: bob takes cs102 which is not offered. *)
let st_inconsistent =
  Structure.of_tables ~domain
    ~consts:
      [
        ("cs101", Value.Sym "cs101");
        ("cs102", Value.Sym "cs102");
        ("ana", Value.Sym "ana");
        ("bob", Value.Sym "bob");
      ]
    ~relations:
      [
        ("offered", [ [ Value.Sym "cs101" ] ]);
        ("takes", [ [ Value.Sym "bob"; Value.Sym "cs102" ] ]);
      ]

(* Section 3.2 axiom (1): no student takes a course that is not offered,
   written as its universal equivalent. *)
let static_axiom =
  Parser.formula_exn sg "forall s:student, c:course. takes(s, c) -> offered(c)"

let test_parser_roundtrip () =
  let f = static_axiom in
  let printed = Formula.to_string f in
  let reparsed = Parser.formula_exn sg printed in
  Alcotest.(check bool) "print/parse roundtrip" true (Formula.equal f reparsed)

let test_parser_errors () =
  (match Parser.formula sg "takes(s, c)" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unbound variable should fail");
  (match Parser.formula sg "forall s:student. nonsense(s)" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown predicate should fail")

let test_satisfaction () =
  Alcotest.(check bool) "consistent state satisfies axiom" true
    (Eval.sentence st_consistent static_axiom);
  Alcotest.(check bool) "inconsistent state falsifies axiom" false
    (Eval.sentence st_inconsistent static_axiom)

let test_quantifiers () =
  let f = Parser.formula_exn sg "exists c:course. offered(c)" in
  Alcotest.(check bool) "existential true" true (Eval.sentence st_consistent f);
  let g = Parser.formula_exn sg "forall c:course. offered(c)" in
  Alcotest.(check bool) "universal false" false (Eval.sentence st_consistent g)

let test_equality_atoms () =
  let f = Parser.formula_exn sg "cs101 = cs101" in
  Alcotest.(check bool) "reflexive equality" true (Eval.sentence st_consistent f);
  let g = Parser.formula_exn sg "cs101 /= cs102" in
  Alcotest.(check bool) "distinct constants" true (Eval.sentence st_consistent g)

let test_satisfying_valuations () =
  let v = { Term.vname = "c"; vsort = "course" } in
  let f = Parser.formula_exn ~free:[ ("c", "course") ] sg "offered(c)" in
  let sols = Eval.satisfying_valuations st_consistent [ v ] f in
  Alcotest.(check int) "one offered course" 1 (List.length sols)

let test_formula_check () =
  (* takes with swapped argument sorts must fail the sort check *)
  let bad =
    Formula.Pred ("takes", [ Term.const "cs101"; Term.const "ana" ])
  in
  (match Formula.check sg bad with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "ill-sorted atom accepted");
  Alcotest.(check bool) "well-sorted accepted" true
    (Result.is_ok (Formula.check sg static_axiom))

let test_free_vars_subst () =
  let f = Parser.formula_exn ~free:[ ("c", "course") ] sg "offered(c)" in
  let fv = Formula.free_vars f in
  Alcotest.(check int) "one free var" 1 (List.length fv);
  let s = Term.Subst.of_list [ (List.hd fv, Term.const "cs101") ] in
  let f' = Formula.subst s f in
  Alcotest.(check bool) "closed after subst" true (Formula.is_closed f')

let test_capture_avoidance () =
  (* substituting a term containing c for x under a binder on c must rename *)
  let x = { Term.vname = "x"; vsort = "course" } in
  let c = { Term.vname = "c"; vsort = "course" } in
  let inner = Formula.Exists (c, Formula.Pred ("offered", [ Term.Var c ])) in
  let f = Formula.And (Formula.Pred ("offered", [ Term.Var x ]), inner) in
  let f' = Formula.subst (Term.Subst.of_list [ (x, Term.Var c) ]) f in
  (* the free c must not be captured by the existential *)
  let fv = Formula.free_vars f' in
  Alcotest.(check int) "c remains free" 1 (List.length fv)

let test_nnf () =
  let f = Parser.formula_exn sg "~(exists c:course. offered(c))" in
  let n = Transform.nnf f in
  (match n with
   | Formula.Forall (_, Formula.Not _) -> ()
   | _ -> Alcotest.failf "unexpected NNF: %a" Formula.pp n);
  (* NNF preserves truth *)
  Alcotest.(check bool) "nnf equisatisfiable" (Eval.sentence st_consistent f)
    (Eval.sentence st_consistent n)

let test_prenex () =
  let f =
    Parser.formula_exn sg
      "(forall c:course. offered(c)) -> (exists c:course. offered(c))"
  in
  let p = Transform.prenex f in
  (* prefix of quantifiers followed by a quantifier-free matrix *)
  let rec strip = function
    | Formula.Forall (_, g) | Formula.Exists (_, g) -> strip g
    | g -> g
  in
  Alcotest.(check int) "matrix has no quantifiers" 0
    (Transform.quantifier_depth (strip p));
  Alcotest.(check bool) "prenex preserves truth" (Eval.sentence st_consistent f)
    (Eval.sentence st_consistent p)

let test_simplify () =
  let open Formula in
  Alcotest.(check bool) "P & true = P" true
    (equal (Transform.simplify (And (Pred ("offered", [ Term.const "cs101" ]), True)))
       (Pred ("offered", [ Term.const "cs101" ])));
  Alcotest.(check bool) "~~P = P" true
    (equal (Transform.simplify (Not (Not (Pred ("offered", [ Term.const "cs101" ])))))
       (Pred ("offered", [ Term.const "cs101" ])))

let test_matching () =
  let c = { Term.vname = "c"; vsort = "course" } in
  let pattern = Term.app "f" [ Term.Var c; Term.Var c ] in
  let target_ok = Term.app "f" [ Term.const "cs101"; Term.const "cs101" ] in
  let target_bad = Term.app "f" [ Term.const "cs101"; Term.const "cs102" ] in
  Alcotest.(check bool) "non-linear match succeeds" true
    (Option.is_some (Unify.match_term pattern target_ok));
  Alcotest.(check bool) "non-linear mismatch fails" false
    (Option.is_some (Unify.match_term pattern target_bad))

let test_unification () =
  let x = { Term.vname = "x"; vsort = "course" } in
  let y = { Term.vname = "y"; vsort = "course" } in
  let t1 = Term.app "f" [ Term.Var x; Term.const "cs101" ] in
  let t2 = Term.app "f" [ Term.const "cs102"; Term.Var y ] in
  (match Unify.unify t1 t2 with
   | None -> Alcotest.fail "unification should succeed"
   | Some s ->
     Alcotest.(check bool) "substitution unifies" true
       (Term.equal (Term.subst s t1) (Term.subst s t2)));
  (* occurs check *)
  let t3 = Term.Var x in
  let t4 = Term.app "f" [ Term.Var x; Term.const "cs101" ] in
  Alcotest.(check bool) "occurs check" false (Option.is_some (Unify.unify t3 t4))

let test_theory_models () =
  let theory =
    Theory.make_exn ~name:"university-static" ~signature:sg
      ~axioms:[ Theory.axiom "static" static_axiom ]
  in
  Alcotest.(check bool) "consistent is model" true (Theory.is_model theory st_consistent);
  Alcotest.(check int) "inconsistent fails one axiom" 1
    (List.length (Theory.failures theory st_inconsistent))

(* Property tests: NNF and prenex preserve truth on random formulas. *)
let random_formula_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        return (Formula.Pred ("offered", [ Term.const "cs101" ]));
        return (Formula.Pred ("offered", [ Term.const "cs102" ]));
        return (Formula.Pred ("takes", [ Term.const "ana"; Term.const "cs101" ]));
        return Formula.True;
        return Formula.False;
      ]
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [
          (2, atom);
          (1, map (fun f -> Formula.Not f) (gen (n - 1)));
          (1, map2 (fun f g -> Formula.And (f, g)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun f g -> Formula.Or (f, g)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun f g -> Formula.Imp (f, g)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun f g -> Formula.Iff (f, g)) (gen (n / 2)) (gen (n / 2)));
          ( 1,
            map
              (fun f ->
                Formula.Exists ({ Term.vname = "c"; vsort = "course" }, f))
              (gen (n - 1)) );
        ]
  in
  gen 8

let arbitrary_formula =
  QCheck.make ~print:Formula.to_string random_formula_gen

let prop_nnf_preserves_truth =
  QCheck.Test.make ~name:"nnf preserves truth" ~count:200 arbitrary_formula (fun f ->
      Eval.sentence st_consistent f = Eval.sentence st_consistent (Transform.nnf f))

let prop_prenex_preserves_truth =
  QCheck.Test.make ~name:"prenex preserves truth" ~count:200 arbitrary_formula (fun f ->
      Eval.sentence st_consistent f = Eval.sentence st_consistent (Transform.prenex f))

let prop_simplify_preserves_truth =
  QCheck.Test.make ~name:"simplify preserves truth" ~count:200 arbitrary_formula
    (fun f ->
      Eval.sentence st_consistent f = Eval.sentence st_consistent (Transform.simplify f))

let suite =
  [
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "satisfaction" `Quick test_satisfaction;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "equality atoms" `Quick test_equality_atoms;
    Alcotest.test_case "satisfying valuations" `Quick test_satisfying_valuations;
    Alcotest.test_case "formula sort check" `Quick test_formula_check;
    Alcotest.test_case "free vars and subst" `Quick test_free_vars_subst;
    Alcotest.test_case "capture avoidance" `Quick test_capture_avoidance;
    Alcotest.test_case "nnf" `Quick test_nnf;
    Alcotest.test_case "prenex" `Quick test_prenex;
    Alcotest.test_case "simplify" `Quick test_simplify;
    Alcotest.test_case "matching" `Quick test_matching;
    Alcotest.test_case "unification" `Quick test_unification;
    Alcotest.test_case "theory models" `Quick test_theory_models;
    QCheck_alcotest.to_alcotest prop_nnf_preserves_truth;
    QCheck_alcotest.to_alcotest prop_prenex_preserves_truth;
    QCheck_alcotest.to_alcotest prop_simplify_preserves_truth;
  ]
