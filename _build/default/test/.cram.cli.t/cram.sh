  $ fds verify --small --depth 1
  $ fds verify-files university.theory university.spec university.schema --depth 1
  $ fds eval university.spec 'offered(cs101, offer(cs101, initiate))'
  $ fds eval university.spec 'offered(cs101, cancel(cs101, enroll(ana, cs101, offer(cs101, initiate))))'
  $ fds eval university.spec 'offered(cs101, cancel(cs101, offer(cs101, initiate)))'
  $ fds run university.schema -c 'initiate()' -c 'offer(cs101)' -c 'enroll(ana, cs101)'
  $ fds grammar university.schema
  $ cat > bad.schema <<'EOF'
  > schema bad
  > relation OFFERED(course)
  > proc offer(c: course) = insert TAKES(c)
  > end-schema
  > EOF
  $ fds grammar bad.schema
  $ fds analyze university.spec --depth 1 | head -6
  $ fds derive university.desc | head -8
  $ fds synthesize university.desc
  $ fds synthesize university.desc > synth.schema
  $ fds grammar synth.schema
  $ fds eval university.spec 'offered(cs101, cancel(cs101, enroll(ana, cs101, offer(cs101, initiate))))' --trace
