(* Minimal substring replacement helper for test fixtures. *)

let replace (haystack : string) (needle : string) (replacement : string) : string =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then haystack
  else begin
    let buf = Buffer.create hl in
    let i = ref 0 in
    let found = ref false in
    while !i <= hl - nl do
      if String.sub haystack !i nl = needle then begin
        Buffer.add_string buf replacement;
        i := !i + nl;
        found := true
      end
      else begin
        Buffer.add_char buf haystack.[!i];
        incr i
      end
    done;
    Buffer.add_substring buf haystack !i (hl - !i);
    if not !found then invalid_arg "Str_replace.replace: needle not found";
    Buffer.contents buf
  end
