(* Tests for the temporal level: modal formulas, universes, Kripke
   satisfaction, the paper's Section 3.2 axioms, and the parser. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal

let sg =
  Signature.make
    ~sorts:[ "course"; "student" ]
    ~funcs:
      [
        Signature.const "cs101" "course";
        Signature.const "ana" "student";
      ]
    ~preds:
      [
        Signature.db_pred "offered" [ "course" ];
        Signature.db_pred "takes" [ "student"; "course" ];
      ]

let domain =
  Domain.of_list
    [ ("course", [ Value.Sym "cs101" ]); ("student", [ Value.Sym "ana" ]) ]

let state ~offered ~takes =
  Structure.of_tables ~domain
    ~consts:[ ("cs101", Value.Sym "cs101"); ("ana", Value.Sym "ana") ]
    ~relations:
      [
        ("offered", if offered then [ [ Value.Sym "cs101" ] ] else []);
        ("takes", if takes then [ [ Value.Sym "ana"; Value.Sym "cs101" ] ] else []);
      ]

(* Three states: empty; offered; offered+enrolled. Edges follow the
   university updates: 0->1 (offer), 1->0 (cancel), 1->2 (enroll),
   2->2 (transfer to self / no-ops), plus self loops for no-op updates. *)
let universe =
  Universe.make
    ~states:
      [ state ~offered:false ~takes:false;
        state ~offered:true ~takes:false;
        state ~offered:true ~takes:true ]
    ~edges:[ (0, 1); (1, 0); (1, 2); (0, 0); (1, 1); (2, 2) ]

(* Section 3.2 axiom (1), static:
   ~exists s,c (takes(s,c) & ~offered(c)) *)
let axiom1 =
  Tparser.formula_exn sg
    "~(exists s:student, c:course. takes(s, c) & ~offered(c))"

(* Section 3.2 axiom (2), transition:
   forall s (exists c (~(dia (takes(s,c) & dia ~(exists c2 takes(s,c2)))))) *)
let axiom2 =
  Tparser.formula_exn sg
    "~(exists s:student, c:course. dia (takes(s, c) & dia ~(exists c2:course. takes(s, c2))))"

let test_classify () =
  Alcotest.(check bool) "axiom1 static" true (Tformula.is_static axiom1);
  Alcotest.(check bool) "axiom2 transition" false (Tformula.is_static axiom2);
  Alcotest.(check int) "modal depth 2" 2 (Tformula.modal_depth axiom2)

let test_static_holds () =
  Alcotest.(check (list int)) "axiom1 everywhere" []
    (Check.failing_states universe axiom1)

let test_transition_holds () =
  (* From state 2 (ana takes cs101) the only successor is 2 itself, so
     the enrollment count never drops to zero. *)
  Alcotest.(check (list int)) "axiom2 everywhere" []
    (Check.failing_states universe axiom2)

let test_transition_violated () =
  (* Adding an edge 2 -> 0 (dropping the enrollment) violates axiom 2
     at the states from which the bad transition is reachable. *)
  let bad =
    Universe.make
      ~states:
        [ state ~offered:false ~takes:false;
          state ~offered:true ~takes:false;
          state ~offered:true ~takes:true ]
      ~edges:[ (0, 1); (1, 2); (2, 0) ]
  in
  Alcotest.(check bool) "axiom2 fails somewhere" true
    (Check.failing_states bad axiom2 <> [])

let test_possibility_semantics () =
  let offered_f = Tparser.formula_exn sg "offered(cs101)" in
  (* state 0 does not satisfy offered, but can reach a state that does *)
  Alcotest.(check bool) "dia offered at 0" true
    (Check.holds_at universe 0 (Tformula.Possibly offered_f));
  Alcotest.(check bool) "box offered at 0" false
    (Check.holds_at universe 0 (Tformula.Necessarily offered_f))

let test_box_dual () =
  (* box P <-> ~dia ~P at every state, for a sample P *)
  let p = Tparser.formula_exn sg "takes(ana, cs101)" in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Fmt.str "duality at state %d" i)
        (Check.holds_at universe i (Tformula.Necessarily p))
        (Check.holds_at universe i
           (Tformula.Not (Tformula.Possibly (Tformula.Not p)))))
    [ 0; 1; 2 ]

let test_consistent_states () =
  (* a universe containing an inconsistent state *)
  let inconsistent =
    Structure.of_tables ~domain
      ~consts:[ ("cs101", Value.Sym "cs101"); ("ana", Value.Sym "ana") ]
      ~relations:
        [ ("offered", []); ("takes", [ [ Value.Sym "ana"; Value.Sym "cs101" ] ]) ]
  in
  let u =
    Universe.make
      ~states:[ state ~offered:true ~takes:true; inconsistent ]
      ~edges:[ (0, 1) ]
  in
  Alcotest.(check (list int)) "only state 0 consistent" [ 0 ]
    (Check.consistent_states u [ axiom1 ])

let test_transitive_closure () =
  let u =
    Universe.make
      ~states:
        [ state ~offered:false ~takes:false;
          state ~offered:true ~takes:false;
          state ~offered:true ~takes:true ]
      ~edges:[ (0, 1); (1, 2) ]
  in
  let tc = Universe.transitive_closure u in
  Alcotest.(check (list int)) "0 reaches 1 and 2" [ 1; 2 ] (Universe.successors tc 0);
  let r = Universe.reflexive tc in
  Alcotest.(check (list int)) "reflexive adds self" [ 0; 1; 2 ] (Universe.successors r 0)

let test_generate () =
  (* generate from the empty state: toggling offered on/off *)
  let toggle st =
    match Structure.table st "offered" with
    | Some [] -> [ state ~offered:true ~takes:false ]
    | Some _ -> [ state ~offered:false ~takes:false ]
    | None -> []
  in
  let u, truncated =
    Universe.generate ~limit:10 ~init:[ state ~offered:false ~takes:false ] ~step:toggle
  in
  Alcotest.(check int) "two states" 2 (Universe.num_states u);
  Alcotest.(check bool) "not truncated" false truncated;
  Alcotest.(check int) "two edges" 2 (List.length (Universe.edges u))

let test_ttheory () =
  let theory =
    Ttheory.make_exn ~name:"university-info" ~signature:sg
      ~axioms:[ Ttheory.axiom "static" axiom1; Ttheory.axiom "transition" axiom2 ]
  in
  Alcotest.(check int) "one static axiom" 1 (List.length (Ttheory.static_axioms theory));
  Alcotest.(check int) "one transition axiom" 1
    (List.length (Ttheory.transition_axioms theory));
  let reports = Ttheory.check_in theory universe in
  Alcotest.(check bool) "all pass" true (Check.all_pass reports)

let test_parser_roundtrip () =
  let printed = Tformula.to_string axiom2 in
  let reparsed = Tparser.formula_exn sg printed in
  (* pp prints dia/box with the same syntax the parser accepts *)
  Alcotest.(check string) "roundtrip" printed (Tformula.to_string reparsed)

let test_to_of_formula () =
  (match Tformula.to_formula axiom1 with
   | Some f ->
     Alcotest.(check bool) "embeds back" true
       (Tformula.is_static (Tformula.of_formula f))
   | None -> Alcotest.fail "static axiom must project");
  Alcotest.(check bool) "modal does not project" true
    (Tformula.to_formula axiom2 = None)

let suite =
  [
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "static axiom holds" `Quick test_static_holds;
    Alcotest.test_case "transition axiom holds" `Quick test_transition_holds;
    Alcotest.test_case "transition axiom violated" `Quick test_transition_violated;
    Alcotest.test_case "possibility semantics" `Quick test_possibility_semantics;
    Alcotest.test_case "box is dual of dia" `Quick test_box_dual;
    Alcotest.test_case "consistent states" `Quick test_consistent_states;
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "universe generation" `Quick test_generate;
    Alcotest.test_case "information-level theory" `Quick test_ttheory;
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "projection to FOL" `Quick test_to_of_formula;
  ]

(* --- the time-sorted alternative (Section 3.1) --------------------- *)

let test_timesort_translation_shape () =
  let now = { Term.vname = "now"; vsort = Timesort.time_sort } in
  let f = Timesort.translate sg ~now axiom2 in
  (* no modalities remain: it is an ordinary first-order wff *)
  let esg = Timesort.extend_signature sg in
  (match Formula.check esg f with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "static axiom gains time argument" true
    (match Timesort.translate sg ~now axiom1 with
     | Formula.Not (Formula.Exists (_, _)) -> true
     | _ -> false)

let test_timesort_agrees_with_kripke () =
  List.iter
    (fun f ->
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (Fmt.str "state %d: %s" i (Tformula.to_string f))
            (Check.holds_at universe i f)
            (Timesort.holds_at sg universe i f))
        [ 0; 1; 2 ])
    [
      axiom1;
      axiom2;
      Tparser.formula_exn sg "dia offered(cs101)";
      Tparser.formula_exn sg "box takes(ana, cs101)";
      Tparser.formula_exn sg "dia (box (exists c:course. takes(ana, c)))";
      Tparser.formula_exn sg "forall c:course. dia offered(c)";
    ]

(* random temporal formulas for the equivalence property *)
let random_tformula_gen =
  let open QCheck.Gen in
  let atom =
    oneofl
      [
        Tformula.Pred ("offered", [ Term.const "cs101" ]);
        Tformula.Pred ("takes", [ Term.const "ana"; Term.const "cs101" ]);
        Tformula.True;
      ]
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [
          (2, atom);
          (1, map (fun f -> Tformula.Not f) (gen (n - 1)));
          (1, map2 (fun f g -> Tformula.And (f, g)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun f g -> Tformula.Or (f, g)) (gen (n / 2)) (gen (n / 2)));
          (1, map (fun f -> Tformula.Possibly f) (gen (n - 1)));
          (1, map (fun f -> Tformula.Necessarily f) (gen (n - 1)));
          ( 1,
            map
              (fun f -> Tformula.Exists ({ Term.vname = "c"; vsort = "course" }, f))
              (gen (n - 1)) );
        ]
  in
  gen 8

let prop_timesort_equivalent =
  QCheck.Test.make ~name:"time-sorted translation agrees with Kripke semantics"
    ~count:200
    (QCheck.make ~print:Tformula.to_string random_tformula_gen)
    (fun f ->
      List.for_all
        (fun i -> Check.holds_at universe i f = Timesort.holds_at sg universe i f)
        [ 0; 1; 2 ])

let suite =
  suite
  @ [
      Alcotest.test_case "timesort translation shape" `Quick test_timesort_translation_shape;
      Alcotest.test_case "timesort agrees with Kripke" `Quick test_timesort_agrees_with_kripke;
      QCheck_alcotest.to_alcotest prop_timesort_equivalent;
    ]

(* --- theory files ---------------------------------------------------- *)

let theory_src =
  {|
theory library
sort book
sort member
pred catalogued : book
pred loaned : book, member
shared special : book
const hobbit : book
axiom static: ~(exists b:book, m:member. loaned(b, m) & ~catalogued(b))
axiom transition: ~(exists b:book. dia (catalogued(b) & dia false))
|}

let test_theory_parse () =
  match Tparser.theory theory_src with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check string) "name" "library" t.Ttheory.name;
    Alcotest.(check int) "two axioms" 2 (List.length t.Ttheory.axioms);
    Alcotest.(check int) "one static" 1 (List.length (Ttheory.static_axioms t));
    (* pred declarations are db, shared ones are not *)
    Alcotest.(check int) "two db-predicates" 2
      (List.length (Signature.db_preds t.Ttheory.signature));
    Alcotest.(check bool) "constant declared" true
      (Option.is_some (Signature.find_func t.Ttheory.signature "hobbit"))

let test_theory_parse_errors () =
  (match Tparser.theory "theory t\naxiom a: ghost(x)" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "undeclared predicate accepted");
  (match Tparser.theory "sort s" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "missing theory header accepted")

(* box/dia duality as a property over random formulas *)
let prop_box_dia_duality =
  QCheck.Test.make ~name:"box P <-> ~dia ~P on random formulas" ~count:200
    (QCheck.make ~print:Tformula.to_string random_tformula_gen)
    (fun f ->
      List.for_all
        (fun i ->
          Check.holds_at universe i (Tformula.Necessarily f)
          = Check.holds_at universe i
              (Tformula.Not (Tformula.Possibly (Tformula.Not f))))
        [ 0; 1; 2 ])

(* static formulas are insensitive to the accessibility relation *)
let prop_static_ignores_edges =
  QCheck.Test.make ~name:"static wffs ignore accessibility" ~count:200
    (QCheck.make ~print:Tformula.to_string random_tformula_gen)
    (fun f ->
      QCheck.assume (Tformula.is_static f);
      let u2 =
        Universe.make
          ~states:
            [ state ~offered:false ~takes:false;
              state ~offered:true ~takes:false;
              state ~offered:true ~takes:true ]
          ~edges:[ (2, 0); (0, 2) ]
      in
      List.for_all
        (fun i -> Check.holds_at universe i f = Check.holds_at u2 i f)
        [ 0; 1; 2 ])

let suite =
  suite
  @ [
      Alcotest.test_case "theory file parsing" `Quick test_theory_parse;
      Alcotest.test_case "theory file errors" `Quick test_theory_parse_errors;
      QCheck_alcotest.to_alcotest prop_box_dia_duality;
      QCheck_alcotest.to_alcotest prop_static_ignores_edges;
    ]
