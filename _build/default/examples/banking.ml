(* A third domain: bank accounts with an irreversible closure.

   Run with:  dune exec examples/banking.exe

   Accounts are opened, held by customers, and closed; closure is
   irreversible (a transition constraint), an account must be open to be
   held (a static constraint), and closing requires releasing every
   holder first — the same guard discipline as the paper's cancel. *)

open Fdbs
open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_rpr

let sg1 =
  Signature.make
    ~sorts:[ "account"; "customer" ]
    ~funcs:[]
    ~preds:
      [
        Signature.db_pred "open_acct" [ "account" ];
        Signature.db_pred "closed" [ "account" ];
        Signature.db_pred "holds" [ "customer"; "account" ];
      ]

let info =
  Ttheory.make_exn ~name:"banking-information" ~signature:sg1
    ~axioms:
      [
        Ttheory.axiom "holder-open"
          (Tparser.formula_exn sg1
             "~(exists c:customer, a:account. holds(c, a) & ~open_acct(a))");
        Ttheory.axiom "open-xor-closed"
          (Tparser.formula_exn sg1 "~(exists a:account. open_acct(a) & closed(a))");
        Ttheory.axiom "closed-forever"
          (Tparser.formula_exn sg1
             "~(exists a:account. dia (closed(a) & dia ~closed(a)))");
        Ttheory.axiom "closed-never-reopened"
          (Tparser.formula_exn sg1
             "~(exists a:account. dia (closed(a) & dia open_acct(a)))");
      ]

let functions_src =
  {|
spec banking

sort account
sort customer
const acc1 : account
const acc2 : account
const carol : customer
const dave : customer

query open_acct : account -> bool
query closed : account -> bool
query holds : customer, account -> bool

update initiate
update open_account : account
update close_account : account
update add_holder : customer, account
update remove_holder : customer, account

eq i1: open_acct(a, initiate) = false
eq i2: closed(a, initiate) = false
eq i3: holds(c, a, initiate) = false

# opening: only an account that is neither open nor closed
eq o1: open_acct(a, open_account(a, U)) = (open_acct(a, U) | ~closed(a, U))
eq o2: a /= a2 => open_acct(a, open_account(a2, U)) = open_acct(a, U)
eq o3: closed(a, open_account(a2, U)) = closed(a, U)
eq o4: holds(c, a, open_account(a2, U)) = holds(c, a, U)

# closing: only an open account with no holders; irreversible
eq c1: open_acct(a, close_account(a, U)) =
       (open_acct(a, U) & (exists c:customer. holds(c, a, U)))
eq c2: a /= a2 => open_acct(a, close_account(a2, U)) = open_acct(a, U)
eq c3: closed(a, close_account(a, U)) =
       (closed(a, U) | (open_acct(a, U) & ~(exists c:customer. holds(c, a, U))))
eq c4: a /= a2 => closed(a, close_account(a2, U)) = closed(a, U)
eq c5: holds(c, a, close_account(a2, U)) = holds(c, a, U)

# holders
eq h1: open_acct(a, add_holder(c, a2, U)) = open_acct(a, U)
eq h2: closed(a, add_holder(c, a2, U)) = closed(a, U)
eq h3: holds(c, a, add_holder(c, a, U)) = open_acct(a, U)
eq h4: c /= c2 | a /= a2 => holds(c, a, add_holder(c2, a2, U)) = holds(c, a, U)

eq r1: open_acct(a, remove_holder(c, a2, U)) = open_acct(a, U)
eq r2: closed(a, remove_holder(c, a2, U)) = closed(a, U)
eq r3: holds(c, a, remove_holder(c, a, U)) = false
eq r4: c /= c2 | a /= a2 => holds(c, a, remove_holder(c2, a2, U)) = holds(c, a, U)
|}

let functions = Aparser.spec_exn functions_src

let representation_src =
  {|
schema banking

relation OPEN_ACCT(account)
relation CLOSED(account)
relation HOLDS(customer, account)

proc initiate() =
  (OPEN_ACCT := {(a:account) | false} ;
   (CLOSED := {(a:account) | false} ;
    HOLDS := {(c:customer, a:account) | false}))

proc open_account(a: account) =
  if (~OPEN_ACCT(a) & ~CLOSED(a)) then insert OPEN_ACCT(a)

proc close_account(a: account) =
  if (OPEN_ACCT(a) & ~(exists c:customer. HOLDS(c, a)))
  then (delete OPEN_ACCT(a) ; insert CLOSED(a))

proc add_holder(c: customer, a: account) =
  if (OPEN_ACCT(a)) then insert HOLDS(c, a)

proc remove_holder(c: customer, a: account) =
  delete HOLDS(c, a)

end-schema
|}

let representation = Rparser.schema_exn representation_src

(* The canonical mapping matches open_acct <-> OPEN_ACCT etc. by name. *)
let design = Design.canonical_exn ~name:"banking" ~info ~functions ~representation

let small_domain =
  Domain.of_list
    [ ("account", [ Value.Sym "acc1" ]); ("customer", [ Value.Sym "carol" ]) ]

let domain =
  Domain.of_list
    [
      ("account", [ Value.Sym "acc1"; Value.Sym "acc2" ]);
      ("customer", [ Value.Sym "carol"; Value.Sym "dave" ]);
    ]

let () =
  Fmt.pr "== Banking, specified at three levels ==@.@.";
  Fmt.pr "%a@.@." Ttheory.pp info;

  Fmt.pr "== Verification over 1 account / 1 customer ==@.";
  let v = Design.verify ~domain:small_domain ~depth:2 design in
  Fmt.pr "%a@.@." Design.pp_verification v;
  if not (Design.verified v) then exit 1;

  Fmt.pr "== Verification over 2 accounts / 2 customers ==@.";
  let v = Design.verify ~domain ~depth:1 design in
  Fmt.pr "%a@.@." Design.pp_verification v;
  if not (Design.verified v) then exit 1;

  Fmt.pr "== A banking session ==@.";
  let env = Semantics.env ~domain representation in
  let s x = Value.Sym x in
  let db = Schema.empty_db representation in
  let step name args db =
    let db = Semantics.call_det_exn env name args db in
    Fmt.pr "after %s(%a): %d tuples@." name
      Fmt.(list ~sep:(any ", ") Value.pp)
      args (Db.size db);
    db
  in
  let db = step "initiate" [] db in
  let db = step "open_account" [ s "acc1" ] db in
  let db = step "add_holder" [ s "carol"; s "acc1" ] db in
  (* closing is blocked while carol holds the account *)
  let db = step "close_account" [ s "acc1" ] db in
  let still_open =
    Semantics.query env db (Formula.Pred ("OPEN_ACCT", [ Term.Lit (s "acc1") ]))
  in
  Fmt.pr "acc1 still open under a holder: %b (expected true)@." still_open;
  assert still_open;
  let db = step "remove_holder" [ s "carol"; s "acc1" ] db in
  let db = step "close_account" [ s "acc1" ] db in
  (* reopening a closed account is refused *)
  let db = step "open_account" [ s "acc1" ] db in
  let reopened =
    Semantics.query env db (Formula.Pred ("OPEN_ACCT", [ Term.Lit (s "acc1") ]))
  in
  Fmt.pr "closed acc1 reopened: %b (expected false)@." reopened;
  assert (not reopened);
  Fmt.pr "banking: all good.@."
