(* A tour of the W-grammar engine (Section 5.1.1): the two-level
   mechanism on classic context-sensitive languages, and the RPR schema
   grammar enforcing declared-before-use.

   Run with:  dune exec examples/wgrammar_tour.exe *)

open Fdbs_wgrammar

let show_abc input =
  let config =
    {
      Recognize.default_config with
      Recognize.candidates = Classic.an_bn_cn_candidates (List.length input);
    }
  in
  Fmt.pr "  %-30s %b@."
    (String.concat " " input)
    (Recognize.recognize ~config Classic.an_bn_cn input)

let () =
  Fmt.pr "== The a^n b^n c^n W-grammar ==@.@.";
  Fmt.pr "%a@.@." Wg.pp Classic.an_bn_cn;
  Fmt.pr "recognition (beyond context-free power):@.";
  show_abc [ "a"; "b"; "c" ];
  show_abc [ "a"; "a"; "b"; "b"; "c"; "c" ];
  show_abc [ "a"; "a"; "b"; "c" ];
  show_abc [ "a"; "b"; "c"; "c" ];

  Fmt.pr "@.== The ww (reduplication) W-grammar ==@.@.";
  let show_ww input =
    let config =
      {
        Recognize.default_config with
        Recognize.candidates = Classic.ww_candidates (List.length input);
      }
    in
    Fmt.pr "  %-30s %b@."
      (String.concat " " input)
      (Recognize.recognize ~config Classic.ww input)
  in
  show_ww [ "x"; "y"; "x"; "y" ];
  show_ww [ "x"; "y"; "y"; "x" ];

  Fmt.pr "@.== The RPR schema W-grammar ==@.@.";
  let good = Fdbs.University.representation_src in
  Fmt.pr "the paper's university schema recognized: %b@." (Rpr_grammar.recognizes good);

  let bad =
    {|
schema bad
relation OFFERED(course)
proc offer(c: course) = insert TAKES(c)
end-schema
|}
  in
  Fmt.pr "schema using undeclared TAKES recognized: %b (expected false)@."
    (Rpr_grammar.recognizes bad);
  Fmt.pr "@.This is the context-sensitive restriction BNF cannot express:
the free metanotion DECLS is substituted consistently into both the
declaration section and every use site's \"NAME isin DECLS\" predicate
hypernotion (paper Section 5.1.1).@."
