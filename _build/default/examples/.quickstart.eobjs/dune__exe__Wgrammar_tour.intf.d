examples/wgrammar_tour.mli:
