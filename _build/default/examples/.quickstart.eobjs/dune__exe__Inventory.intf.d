examples/inventory.mli:
