examples/library_loans.mli:
