examples/library_loans.ml: Aparser Db Design Domain Fdbs Fdbs_algebra Fdbs_kernel Fdbs_logic Fdbs_rpr Fdbs_temporal Fmt Formula Rparser Schema Semantics Signature Term Tparser Ttheory Value
