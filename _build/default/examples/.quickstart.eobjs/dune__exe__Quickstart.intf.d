examples/quickstart.mli:
