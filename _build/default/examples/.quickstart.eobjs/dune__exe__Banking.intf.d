examples/banking.mli:
