examples/derive_by_construction.mli:
