examples/inventory.ml: Asig Aterm Completeness Confluence Domain Equation Eval Fdbs_algebra Fdbs_kernel Fdbs_logic Fmt Fun List Observability Reach Sdesc Sort Spec Term Trace Value
