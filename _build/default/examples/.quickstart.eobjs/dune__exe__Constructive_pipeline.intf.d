examples/constructive_pipeline.mli:
