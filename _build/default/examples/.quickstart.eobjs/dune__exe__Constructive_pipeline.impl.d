examples/constructive_pipeline.ml: Aparser Check12 Derive Design Domain Equation Fdbs Fdbs_algebra Fdbs_kernel Fdbs_refine Fdbs_rpr Fdbs_temporal Fdbs_wgrammar Fmt List Spec Synthesize Tparser Value
