examples/quickstart.ml: Db Design Fdbs Fdbs_algebra Fdbs_kernel Fdbs_rpr Fdbs_temporal Fdbs_wgrammar Fmt Schema Semantics University Value
