examples/derive_by_construction.ml: Asig Completeness Derive Domain Equation Eval Fdbs Fdbs_algebra Fdbs_kernel Fmt List Sdesc Spec Trace University Util Value
