examples/wgrammar_tour.ml: Classic Fdbs Fdbs_wgrammar Fmt List Recognize Rpr_grammar String Wg
