(* A second domain built with the public API: a lending library.

   Run with:  dune exec examples/library_loans.exe

   Books are catalogued, loaned to members (one member at a time — a
   static constraint using equality), and may be retired; a retired book
   is never catalogued again (a transition constraint with nested
   modalities). All three levels are specified and verified. *)

open Fdbs
open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_rpr

(* ---------- Level 1: information ----------------------------------- *)

let sg1 =
  Signature.make
    ~sorts:[ "book"; "member" ]
    ~funcs:[]
    ~preds:
      [
        Signature.db_pred "catalogued" [ "book" ];
        Signature.db_pred "loaned" [ "book"; "member" ];
        Signature.db_pred "retired" [ "book" ];
      ]

let info =
  Ttheory.make_exn ~name:"library-information" ~signature:sg1
    ~axioms:
      [
        (* a loaned book is catalogued *)
        Ttheory.axiom "loaned-catalogued"
          (Tparser.formula_exn sg1
             "~(exists b:book, m:member. loaned(b, m) & ~catalogued(b))");
        (* a book is loaned to at most one member *)
        Ttheory.axiom "one-borrower"
          (Tparser.formula_exn sg1
             "forall b:book, m:member, m2:member. loaned(b, m) & loaned(b, m2) -> m = m2");
        (* catalogued and retired are mutually exclusive *)
        Ttheory.axiom "not-both"
          (Tparser.formula_exn sg1 "~(exists b:book. catalogued(b) & retired(b))");
        (* once retired, a book never comes back *)
        Ttheory.axiom "retired-forever"
          (Tparser.formula_exn sg1
             "~(exists b:book. dia (retired(b) & dia ~retired(b)))");
      ]

(* ---------- Level 2: functions ------------------------------------- *)

let functions_src =
  {|
spec library

sort book
sort member
const hobbit : book
const dune_novel : book
const alice : member
const bea : member

query catalogued : book -> bool
query loaned : book, member -> bool
query retired : book -> bool

update initiate
update acquire : book
update retire : book
update loan : book, member
update return_loan : book, member

eq c1: catalogued(b, initiate) = false
eq c2: loaned(b, m, initiate) = false
eq c3: retired(b, initiate) = false

# acquire: catalogue a book unless it was retired (or already there)
eq a1: catalogued(b, acquire(b, U)) = (catalogued(b, U) | ~retired(b, U))
eq a2: b /= b2 => catalogued(b, acquire(b2, U)) = catalogued(b, U)
eq a3: loaned(b, m, acquire(b2, U)) = loaned(b, m, U)
eq a4: retired(b, acquire(b2, U)) = retired(b, U)

# retire: only a catalogued book nobody borrows
eq r1: catalogued(b, retire(b, U)) =
       (catalogued(b, U) & (exists m:member. loaned(b, m, U)))
eq r2: b /= b2 => catalogued(b, retire(b2, U)) = catalogued(b, U)
eq r3: loaned(b, m, retire(b2, U)) = loaned(b, m, U)
eq r4: retired(b, retire(b, U)) =
       (retired(b, U) | (catalogued(b, U) & ~(exists m:member. loaned(b, m, U))))
eq r5: b /= b2 => retired(b, retire(b2, U)) = retired(b, U)

# loan: catalogued and not loaned to anyone
eq l1: catalogued(b, loan(b2, m, U)) = catalogued(b, U)
eq l2: loaned(b, m, loan(b, m, U)) =
       (loaned(b, m, U) | (catalogued(b, U) & ~(exists m2:member. loaned(b, m2, U))))
eq l3: b /= b2 | m /= m2 => loaned(b, m, loan(b2, m2, U)) = loaned(b, m, U)
eq l4: retired(b, loan(b2, m, U)) = retired(b, U)

# return: the named member returns the book
eq t1: catalogued(b, return_loan(b2, m, U)) = catalogued(b, U)
eq t2: loaned(b, m, return_loan(b, m, U)) = false
eq t3: b /= b2 | m /= m2 => loaned(b, m, return_loan(b2, m2, U)) = loaned(b, m, U)
eq t4: retired(b, return_loan(b2, m, U)) = retired(b, U)
|}

let functions = Aparser.spec_exn functions_src

(* ---------- Level 3: representation -------------------------------- *)

let representation_src =
  {|
schema library

relation CATALOGUED(book)
relation LOANED(book, member)
relation RETIRED(book)

proc initiate() =
  (CATALOGUED := {(b:book) | false} ;
   (LOANED := {(b:book, m:member) | false} ;
    RETIRED := {(b:book) | false}))

proc acquire(b: book) =
  if (~RETIRED(b)) then insert CATALOGUED(b)

proc retire(b: book) =
  if (CATALOGUED(b) & ~(exists m:member. LOANED(b, m)))
  then (delete CATALOGUED(b) ; insert RETIRED(b))

proc loan(b: book, m: member) =
  if (CATALOGUED(b) & ~(exists m2:member. LOANED(b, m2)))
  then insert LOANED(b, m)

proc return_loan(b: book, m: member) =
  delete LOANED(b, m)

end-schema
|}

let representation = Rparser.schema_exn representation_src

(* ---------- Binding and verification -------------------------------- *)

let design =
  Design.canonical_exn ~name:"library" ~info ~functions ~representation

let domain =
  Domain.of_list
    [
      ("book", [ Value.Sym "hobbit"; Value.Sym "dune_novel" ]);
      ("member", [ Value.Sym "alice"; Value.Sym "bea" ]);
    ]

let small_domain =
  Domain.of_list
    [ ("book", [ Value.Sym "hobbit" ]); ("member", [ Value.Sym "alice" ]) ]

let () =
  Fmt.pr "== The lending library, specified at three levels ==@.@.";
  Fmt.pr "%a@.@." Ttheory.pp info;

  Fmt.pr "== Verification over a 1-book / 1-member domain ==@.";
  let v = Design.verify ~domain:small_domain ~depth:2 design in
  Fmt.pr "%a@.@." Design.pp_verification v;
  if not (Design.verified v) then exit 1;

  Fmt.pr "== Verification over a 2-book / 2-member domain ==@.";
  let v = Design.verify ~domain ~depth:2 design in
  Fmt.pr "%a@.@." Design.pp_verification v;
  if not (Design.verified v) then exit 1;

  (* a session *)
  Fmt.pr "== A library session ==@.";
  let env = Semantics.env ~domain representation in
  let b s = Value.Sym s in
  let db = Schema.empty_db representation in
  let step name args db =
    let db = Semantics.call_det_exn env name args db in
    Fmt.pr "after %s(%a): %d tuples@." name
      Fmt.(list ~sep:(any ", ") Value.pp)
      args (Db.size db);
    db
  in
  let db = step "initiate" [] db in
  let db = step "acquire" [ b "hobbit" ] db in
  let db = step "loan" [ b "hobbit"; b "alice" ] db in
  (* loan to bea is blocked: one borrower at a time *)
  let db = step "loan" [ b "hobbit"; b "bea" ] db in
  let bea_has_it =
    Semantics.query env db
      (Formula.Pred ("LOANED", [ Term.Lit (b "hobbit"); Term.Lit (b "bea") ]))
  in
  Fmt.pr "bea borrowed the already-loaned hobbit: %b (expected false)@." bea_has_it;
  assert (not bea_has_it);
  let db = step "return_loan" [ b "hobbit"; b "alice" ] db in
  let db = step "retire" [ b "hobbit" ] db in
  (* acquiring a retired book is refused *)
  let db = step "acquire" [ b "hobbit" ] db in
  let catalogued =
    Semantics.query env db
      (Formula.Pred ("CATALOGUED", [ Term.Lit (b "hobbit") ]))
  in
  Fmt.pr "hobbit catalogued after retire + acquire: %b (expected false)@." catalogued;
  assert (not catalogued);
  Fmt.pr "library_loans: all good.@."
