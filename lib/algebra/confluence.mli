(** Critical-pair analysis of the conditional rewriting system.

    Two rules whose left-hand sides overlap can threaten the
    well-definedness of query values: if both apply to one ground
    instance with their conditions true, their right-hand sides must
    agree. Equation left-hand sides are flat, so overlaps occur only at
    the root; this module computes those {e conditional critical pairs}
    and decides their joinability on bounded ground instances
    (complementing the runtime conflict detection of the evaluator). *)

module Aeval = Eval (* the sibling evaluator, before Fdbs_logic shadows it *)
open Fdbs_kernel
open Fdbs_logic

type pair = {
  cp_eq1 : string;
  cp_eq2 : string;
  cp_cond : Aterm.t;  (** conjunction of both instantiated conditions *)
  cp_left : Aterm.t;  (** instantiated rhs of the first rule *)
  cp_right : Aterm.t;  (** instantiated rhs of the second rule *)
}

val pp_pair : pair Fmt.t

(** All root overlaps between distinct rules (unordered pairs). *)
val critical_pairs : Spec.t -> pair list

type verdict =
  | Joinable of int
      (** instances where both conditions held and the sides agreed *)
  | Vacuous  (** no bounded instance satisfies both conditions *)
  | Diverging of (Term.var * Value.t) list * Strace.t list
      (** a ground instance on which the sides disagree *)

val pp_verdict : verdict Fmt.t

(** Decide a critical pair on ground instances: parameter variables
    range over [domain] (default: the spec's base domain), state
    variables over all traces of length up to [depth]. *)
val check_pair :
  ?domain:Domain.t -> ?depth:int -> Spec.t -> pair -> (verdict, Aeval.error) result

type report = {
  pairs : (pair * verdict) list;
  diverging : int;
}

(** Full analysis: compute all root critical pairs and decide each. *)
val check : ?domain:Domain.t -> ?depth:int -> Spec.t -> (report, Aeval.error) result

val is_confluent : report -> bool
val pp_report : report Fmt.t
