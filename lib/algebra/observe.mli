(** Simple observations and observational equivalence (paper Section
    4.1: L2 is rich enough in queries that states are identified by
    their simple observations — the {e observability} condition). *)

open Fdbs_kernel

type observation = {
  obs_query : string;
  obs_params : Value.t list;
  obs_result : Value.t;
}

val pp_observation : observation Fmt.t

(** All simple observations of the state denoted by [trace], for every
    query and every tuple of parameter values from [domain] (defaults
    to the spec's base domain joined with the trace's active domain).
    Observations come in a fixed (query, tuple) order. *)
val observations :
  ?domain:Domain.t -> Spec.t -> Strace.t -> (observation list, Eval.error) result

val observations_exn : ?domain:Domain.t -> Spec.t -> Strace.t -> observation list

val equal_observations : observation list -> observation list -> bool

(** Observational equivalence of two states: equal results for every
    simple observation over the union of both active domains and the
    base domain. Raises on evaluation failure. *)
val equiv : ?domain:Domain.t -> Spec.t -> Strace.t -> Strace.t -> bool

(** The observation pairs that distinguish two states (empty iff
    equivalent over the given domain). *)
val distinguishing :
  ?domain:Domain.t -> Spec.t -> Strace.t -> Strace.t -> (observation * observation) list
