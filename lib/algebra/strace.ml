(** Ground terms of sort [state]: traces of update applications
    starting from an initializer (paper: the set T of ground terms of
    sort state is the smallest set containing [initiate] and closed
    under symbolic application of the other update functions).

    Since the application is encapsulated by its queries and updates,
    the current state {e is} the trace of operations applied so far
    (paper Section 5.4). *)

open Fdbs_kernel

type t =
  | Init of string  (** initializer name, e.g. [initiate] *)
  | Apply of string * Value.t list * t
      (** [Apply (u, params, s)]: update [u] with parameter values
          applied to state [s] *)

let init name = Init name
let apply name params trace = Apply (name, params, trace)

let rec length = function
  | Init _ -> 0
  | Apply (_, _, s) -> 1 + length s

let rec equal a b =
  match (a, b) with
  | Init n1, Init n2 -> n1 = n2
  | Apply (u1, p1, s1), Apply (u2, p2, s2) ->
    u1 = u2 && List.length p1 = List.length p2
    && List.for_all2 Value.equal p1 p2 && equal s1 s2
  | (Init _ | Apply _), _ -> false

(** The trace as an algebraic term; parameter values are tagged with
    the sorts declared for the update. *)
let rec to_aterm (sg : Asig.t) : t -> Aterm.t = function
  | Init name -> Aterm.App (name, [])
  | Apply (u, params, s) ->
    (match Asig.find_update sg u with
     | None -> invalid_arg (Fmt.str "Strace.to_aterm: unknown update %s" u)
     | Some o ->
       let param_sorts = Asig.param_args o in
       if List.length params <> List.length param_sorts then
         invalid_arg (Fmt.str "Strace.to_aterm: %s applied to %d parameters, expected %d"
                        u (List.length params) (List.length param_sorts))
       else
         let args =
           List.map2 (fun v srt -> Aterm.Val (v, srt)) params param_sorts
         in
         Aterm.App (u, args @ [ to_aterm sg s ]))

(** Parse a ground state term back into a trace; [None] if the term is
    not of the canonical shape. *)
let rec of_aterm (sg : Asig.t) (t : Aterm.t) : t option =
  match t with
  | Aterm.App (name, []) when Asig.is_update sg name -> Some (Init name)
  | Aterm.App (u, args) when Asig.is_update sg u ->
    (match List.rev args with
     | state_arg :: rev_params ->
       let params =
         List.rev_map (function Aterm.Val (v, _) -> Some v | _ -> None) rev_params
       in
       if List.for_all Option.is_some params then
         Option.map
           (fun s -> Apply (u, List.map Option.get params, s))
           (of_aterm sg state_arg)
       else None
     | [] -> None)
  | Aterm.Var _ | Aterm.Val _ | Aterm.App _ | Aterm.Exists _ | Aterm.Forall _ -> None

(** Values of each parameter sort mentioned in the trace: the trace's
    active domain. *)
let active_domain (sg : Asig.t) (trace : t) : Domain.t =
  let rec go acc = function
    | Init _ -> acc
    | Apply (u, params, s) ->
      let acc =
        match Asig.find_update sg u with
        | None -> acc
        | Some o ->
          List.fold_left2
            (fun acc v srt -> Domain.add srt (v :: Domain.carrier acc srt) acc)
            acc params (Asig.param_args o)
      in
      go acc s
  in
  go Domain.empty trace

(** All traces of exactly [depth] updates over parameter values drawn
    from [domain], rooted at each initializer. *)
let enumerate (sg : Asig.t) ~(domain : Domain.t) ~(depth : int) : t list =
  let inits = List.map (fun (o : Asig.op) -> Init o.Asig.oname) (Asig.initializers sg) in
  let extend trace =
    List.concat_map
      (fun (o : Asig.op) ->
        let carriers = List.map (Domain.carrier domain) (Asig.param_args o) in
        List.map (fun params -> Apply (o.Asig.oname, params, trace)) (Util.cartesian carriers))
      (Asig.transformers sg)
  in
  let rec go level acc =
    if level = 0 then acc else go (level - 1) (List.concat_map extend acc)
  in
  go depth inits

let rec pp ppf = function
  | Init name -> Fmt.string ppf name
  | Apply (u, [], s) -> Fmt.pf ppf "%s(%a)" u pp s
  | Apply (u, params, s) ->
    Fmt.pf ppf "%s(%a, %a)" u Fmt.(list ~sep:(any ", ") Value.pp) params pp s

let to_string t = Fmt.str "%a" pp t
