(** Sufficient completeness of an algebraic specification (paper
    Sections 4.1 and 4.4(a)).

    A specification is sufficiently complete iff every ground query term
    can be proved equal to a parameter name. Viewing the Q-equations as
    a system of mutually recursive definitions, this amounts to (i)
    every query/update pair being covered by some equation, (ii)
    termination of the rewriting system — checked here through the
    paper's "simpler expression" discipline: each query occurring in a
    condition or right-hand side must interrogate a proper subterm of
    the state argument being defined — and (iii) exhaustiveness of the
    conditions, which we probe by ground evaluation over enumerated
    traces. *)

open Fdbs_kernel

type issue =
  | Missing_pair of string * string
      (** no equation defines query [q] over update [u] *)
  | Non_decreasing of string * Aterm.t
      (** equation [name] applies a query to a state that is not a
          proper subterm of the lhs state argument *)
  | Ground_failure of Aterm.t * Eval.error
      (** a ground query failed to evaluate *)

let pp_issue ppf = function
  | Missing_pair (q, u) -> Fmt.pf ppf "no equation for query %s over update %s" q u
  | Non_decreasing (name, t) ->
    Fmt.pf ppf "equation %s: query application %a does not decrease the state argument"
      name Aterm.pp t
  | Ground_failure (t, e) ->
    Fmt.pf ppf "ground term %a failed to evaluate: %a" Aterm.pp t Eval.pp_error e

type report = {
  issues : issue list;
  pairs_checked : int;
  ground_terms_checked : int;
}

let is_complete (r : report) = r.issues = []

(** (i) Coverage: every (query, update) pair has at least one equation. *)
let coverage_issues (spec : Spec.t) : issue list * int =
  let sg = spec.Spec.signature in
  let pairs =
    List.concat_map
      (fun (q : Asig.op) ->
        List.map (fun (u : Asig.op) -> (q.Asig.oname, u.Asig.oname)) sg.Asig.updates)
      sg.Asig.queries
  in
  let missing =
    List.filter
      (fun (q, u) -> Spec.equations_for spec ~query:q ~update:u = [])
      pairs
  in
  (List.map (fun (q, u) -> Missing_pair (q, u)) missing, List.length pairs)

(** (ii) Termination through the decreasing-state discipline. For each
    equation whose lhs is [q(p̄, u(p̄', S))], every query application in
    the condition and the right-hand side must have a state argument
    that is a proper subterm of [u(p̄', S)] (typically the variable [S]
    itself). *)
let termination_issues (spec : Spec.t) : issue list =
  let sg = spec.Spec.signature in
  let lhs_state_arg (eq : Equation.t) : Aterm.t option =
    match eq.Equation.lhs with
    | Aterm.App (q, args) when Asig.is_query sg q ->
      (match List.rev args with st :: _ -> Some st | [] -> None)
    | _ -> None
  in
  let rec query_apps acc (t : Aterm.t) =
    match t with
    | Aterm.App (q, args) when Asig.is_query sg q ->
      List.fold_left query_apps (t :: acc) args
    | Aterm.App (_, args) -> List.fold_left query_apps acc args
    | Aterm.Exists (_, b) | Aterm.Forall (_, b) -> query_apps acc b
    | Aterm.Var _ | Aterm.Val _ -> acc
  in
  List.concat_map
    (fun (eq : Equation.t) ->
      match lhs_state_arg eq with
      | None -> []
      | Some lhs_state ->
        let apps = query_apps [] eq.Equation.cond @ query_apps [] eq.Equation.rhs in
        List.filter_map
          (fun app ->
            match app with
            | Aterm.App (_, args) ->
              (match List.rev args with
               | st :: _ ->
                 let decreasing =
                   Aterm.is_subterm st lhs_state && not (Aterm.equal st lhs_state)
                 in
                 if decreasing then None else Some (Non_decreasing (eq.Equation.eq_name, app))
               | [] -> Some (Non_decreasing (eq.Equation.eq_name, app)))
            | _ -> None)
          apps)
    spec.Spec.equations

(** (iii) Ground probing: evaluate every query on every parameter tuple
    for every trace of length [<= depth] over the spec's base domain.
    Reports the first [max_failures] failures. *)
let ground_issues ?(max_failures = 10) (spec : Spec.t) ~(depth : int) : issue list * int =
  let sg = spec.Spec.signature in
  let domain = spec.Spec.base_domain in
  let traces =
    List.concat_map
      (fun d -> Strace.enumerate sg ~domain ~depth:d)
      (List.init (depth + 1) Fun.id)
  in
  let checked = ref 0 in
  let failures = ref [] in
  List.iter
    (fun trace ->
      List.iter
        (fun (q : Asig.op) ->
          let carriers = List.map (Domain.carrier domain) (Asig.param_args q) in
          List.iter
            (fun params ->
              if List.length !failures < max_failures then begin
                incr checked;
                match
                  Eval.query_on_trace ~domain spec ~q:q.Asig.oname ~params trace
                with
                | Ok _ -> ()
                | Error e ->
                  let args = List.map2 (fun v s -> Aterm.Val (v, s)) params (Asig.param_args q) in
                  let t = Aterm.App (q.Asig.oname, args @ [ Strace.to_aterm sg trace ]) in
                  failures := Ground_failure (t, e) :: !failures
              end)
            (Util.cartesian carriers))
        sg.Asig.queries)
    traces;
  (List.rev !failures, !checked)

(** Full sufficient-completeness check: coverage + termination +
    ground probing to [depth]. *)
let check ?(depth = 3) ?max_failures (spec : Spec.t) : report =
  let cov, pairs = coverage_issues spec in
  let term = termination_issues spec in
  let ground, checked = ground_issues ?max_failures spec ~depth in
  { issues = cov @ term @ ground; pairs_checked = pairs; ground_terms_checked = checked }

let pp_report ppf (r : report) =
  if is_complete r then
    Fmt.pf ppf "sufficiently complete (%d query/update pairs, %d ground terms checked)"
      r.pairs_checked r.ground_terms_checked
  else
    Fmt.pf ppf "@[<v>NOT sufficiently complete:@,%a@]"
      Fmt.(list ~sep:cut pp_issue) r.issues
