(** Critical-pair analysis of the conditional rewriting system.

    The paper reads the equations as conditional term-rewriting rules
    and relies on every ground query having one well-defined value. Two
    rules whose left-hand sides overlap can threaten this: if both apply
    to the same ground instance with their conditions true, their
    right-hand sides must agree. Because equation left-hand sides are
    flat — [q(p̄, u(p̄', U))] with variable arguments — overlaps occur
    only at the root, between rules for the same query/update pair; this
    module computes those {e conditional critical pairs} and decides
    their joinability on bounded ground instances (complementing the
    runtime conflict detection of the evaluator). *)

module Aeval = Eval (* the sibling evaluator, before Fdbs_logic shadows it *)
open Fdbs_kernel
open Fdbs_logic

type pair = {
  cp_eq1 : string;
  cp_eq2 : string;
  cp_cond : Aterm.t;  (** conjunction of both instantiated conditions *)
  cp_left : Aterm.t;  (** instantiated rhs of the first rule *)
  cp_right : Aterm.t;  (** instantiated rhs of the second rule *)
}

let pp_pair ppf (p : pair) =
  Fmt.pf ppf "@[%s vs %s: %a => %a =? %a@]" p.cp_eq1 p.cp_eq2 Aterm.pp p.cp_cond
    Aterm.pp p.cp_left Aterm.pp p.cp_right

(** All root overlaps between distinct rules (pairs are unordered). *)
let critical_pairs (spec : Spec.t) : pair list =
  let eqs = Array.of_list spec.Spec.equations in
  let pairs = ref [] in
  for i = 0 to Array.length eqs - 1 do
    for j = i + 1 to Array.length eqs - 1 do
      let e1 = eqs.(i) in
      let e2 = eqs.(j) in
      (* standardize apart *)
      let l2 = Aterm.rename_vars "r_" e2.Equation.lhs in
      match Aterm.unify e1.Equation.lhs l2 with
      | None -> ()
      | Some mgu ->
        let inst t = Aterm.subst mgu t in
        pairs :=
          {
            cp_eq1 = e1.Equation.eq_name;
            cp_eq2 = e2.Equation.eq_name;
            cp_cond =
              Aterm.and_ (inst e1.Equation.cond)
                (inst (Aterm.rename_vars "r_" e2.Equation.cond));
            cp_left = inst e1.Equation.rhs;
            cp_right = inst (Aterm.rename_vars "r_" e2.Equation.rhs);
          }
          :: !pairs
    done
  done;
  List.rev !pairs

type verdict =
  | Joinable of int  (** instances where both conditions held and the sides agreed *)
  | Vacuous  (** no bounded instance satisfies both conditions *)
  | Diverging of (Term.var * Value.t) list * Strace.t list
      (** a ground instance on which the sides disagree *)

let pp_verdict ppf = function
  | Joinable n -> Fmt.pf ppf "joinable (%d live instances)" n
  | Vacuous -> Fmt.string ppf "vacuous (conditions never jointly satisfiable)"
  | Diverging (rho, _) ->
    Fmt.pf ppf "DIVERGING at [%a]"
      Fmt.(list ~sep:(any ", ")
             (fun ppf ((v : Term.var), value) ->
               Fmt.pf ppf "%s=%a" v.Term.vname Value.pp value))
      rho

(** Decide a critical pair on ground instances: parameter variables
    range over [domain] (default: the spec's base domain), state
    variables over all traces of length [<= depth]. *)
let check_pair ?domain ?(depth = 2) (spec : Spec.t) (p : pair) : (verdict, Aeval.error) result =
  let sg = spec.Spec.signature in
  let domain = match domain with Some d -> d | None -> spec.Spec.base_domain in
  let vars =
    Util.dedup ~eq:Term.var_equal
      (Aterm.free_vars p.cp_cond @ Aterm.free_vars p.cp_left @ Aterm.free_vars p.cp_right)
  in
  let param_vars, state_vars =
    List.partition (fun v -> not (Sort.is_state v.Term.vsort)) vars
  in
  let traces =
    List.concat_map (fun d -> Strace.enumerate sg ~domain ~depth:d) (List.init (depth + 1) Fun.id)
  in
  let param_choices =
    Util.cartesian (List.map (fun v -> Domain.carrier domain v.Term.vsort) param_vars)
  in
  let state_choices = Util.cartesian (List.map (fun _ -> traces) state_vars) in
  let live = ref 0 in
  let exception Found of (Term.var * Value.t) list * Strace.t list in
  let exception Eval_err of Aeval.error in
  match
    List.iter
      (fun param_values ->
        let rho = Util.zip_exn param_vars param_values in
        List.iter
          (fun trace_values ->
            let sigma = Util.zip_exn state_vars trace_values in
            let sub =
              List.map (fun (v, value) -> (v, Aterm.Val (value, v.Term.vsort))) rho
              @ List.map (fun (v, tr) -> (v, Strace.to_aterm sg tr)) sigma
            in
            let eval t =
              match Aeval.query ~domain spec (Aterm.subst sub t) with
              | Ok v -> v
              | Error e -> raise (Eval_err e)
            in
            match Value.to_bool (eval p.cp_cond) with
            | Some true ->
              incr live;
              if not (Value.equal (eval p.cp_left) (eval p.cp_right)) then
                raise (Found (rho, trace_values))
            | Some false | None -> ())
          state_choices)
      param_choices
  with
  | () -> Ok (if !live = 0 then Vacuous else Joinable !live)
  | exception Found (rho, traces) -> Ok (Diverging (rho, traces))
  | exception Eval_err e -> Error e

type report = {
  pairs : (pair * verdict) list;
  diverging : int;
}

(** Full analysis: compute all root critical pairs and decide each. *)
let check ?domain ?depth (spec : Spec.t) : (report, Aeval.error) result =
  let rec go acc diverging = function
    | [] -> Ok { pairs = List.rev acc; diverging }
    | p :: rest ->
      (match check_pair ?domain ?depth spec p with
       | Error e -> Error e
       | Ok v ->
         let diverging =
           match v with Diverging _ -> diverging + 1 | Joinable _ | Vacuous -> diverging
         in
         go ((p, v) :: acc) diverging rest)
  in
  go [] 0 (critical_pairs spec)

let is_confluent (r : report) = r.diverging = 0

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>%d critical pairs, %d diverging@,%a@]" (List.length r.pairs)
    r.diverging
    Fmt.(list ~sep:cut (fun ppf (p, v) -> Fmt.pf ppf "%a: %a" pp_pair p pp_verdict v))
    (List.filter (fun (_, v) -> match v with Diverging _ -> true | _ -> false) r.pairs)
