(** Ground terms of sort [state]: traces of update applications
    starting from an initializer (paper: the set T of ground terms of
    sort state is the smallest set containing [initiate] and closed
    under symbolic application of the other update functions).

    Since the application is encapsulated by its queries and updates,
    the current state {e is} the trace of operations applied so far
    (paper Section 5.4). *)

open Fdbs_kernel

type t =
  | Init of string  (** initializer name, e.g. [initiate] *)
  | Apply of string * Value.t list * t
      (** [Apply (u, params, s)]: update [u] with parameter values
          applied to state [s] *)

val init : string -> t
val apply : string -> Value.t list -> t -> t

(** Number of updates applied after the initializer. *)
val length : t -> int

val equal : t -> t -> bool

(** The trace as an algebraic term; parameter values are tagged with
    the sorts declared for the update. Raises [Invalid_argument] on
    unknown updates or arity mismatches. *)
val to_aterm : Asig.t -> t -> Aterm.t

(** Parse a ground state term back into a trace; [None] if the term is
    not of the canonical shape. *)
val of_aterm : Asig.t -> Aterm.t -> t option

(** Values of each parameter sort mentioned in the trace: the trace's
    active domain. *)
val active_domain : Asig.t -> t -> Domain.t

(** All traces of exactly [depth] updates over parameter values drawn
    from [domain], rooted at each initializer. *)
val enumerate : Asig.t -> domain:Domain.t -> depth:int -> t list

val pp : t Fmt.t
val to_string : t -> string
