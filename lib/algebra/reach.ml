(** Reachable-state exploration (paper Section 4.4: the set G of
    reachable states is the least set containing [initiate] and closed
    under the update functions).

    States are explored as traces over a fixed parameter domain and
    deduplicated by their simple observations, so the result is a finite
    quotient transition graph — the concrete universe the refinement
    checks and the temporal level operate on. *)

open Fdbs_kernel

type node = {
  trace : Strace.t;  (** a representative trace denoting this state *)
  obs : Observe.observation list;  (** its simple observations over the domain *)
}

type edge = {
  src : int;
  update : string;
  args : Value.t list;
  dst : int;
}

type graph = {
  nodes : node array;
  edges : edge list;
  domain : Domain.t;  (** the exploration domain *)
  truncated : bool;  (** true if [limit] stopped the exploration *)
}

(* A canonical key for a state's observation table. Observations are
   produced in a fixed (query, tuple) order, so the rendered string is
   canonical. *)
let obs_key (obs : Observe.observation list) : string =
  Fmt.str "%a" Fmt.(list ~sep:(any "|") Observe.pp_observation) obs

(** Explore the reachable quotient graph up to [limit] distinct states
    (distinct = differing in some observation over [domain]). [domain]
    defaults to the spec's base domain. *)
let explore ?(limit = 10_000) ?domain (spec : Spec.t) : (graph, Eval.error) result =
  let sg = spec.Spec.signature in
  let domain = match domain with Some d -> d | None -> spec.Spec.base_domain in
  let exception Stop of Eval.error in
  try
    let index : (string, int) Hashtbl.t = Hashtbl.create 256 in
    let rev_nodes : node list ref = ref [] in
    let count = ref 0 in
    let edges : edge list ref = ref [] in
    let truncated = ref false in
    let observe trace =
      match Observe.observations ~domain spec trace with
      | Ok obs -> obs
      | Error e -> raise (Stop e)
    in
    let add trace obs key =
      let i = !count in
      rev_nodes := { trace; obs } :: !rev_nodes;
      incr count;
      Hashtbl.add index key i;
      i
    in
    let successors trace =
      List.concat_map
        (fun (o : Asig.op) ->
          let carriers = List.map (Domain.carrier domain) (Asig.param_args o) in
          List.map
            (fun params ->
              (o.Asig.oname, params, Strace.Apply (o.Asig.oname, params, trace)))
            (Util.cartesian carriers))
        (Asig.transformers sg)
    in
    let queue = Queue.create () in
    List.iter
      (fun (o : Asig.op) ->
        let trace = Strace.Init o.Asig.oname in
        let obs = observe trace in
        let key = obs_key obs in
        if not (Hashtbl.mem index key) then Queue.add (add trace obs key, trace) queue)
      (Asig.initializers sg);
    while not (Queue.is_empty queue) do
      let i, trace = Queue.pop queue in
      List.iter
        (fun (u, params, trace') ->
          let obs' = observe trace' in
          let key = obs_key obs' in
          match Hashtbl.find_opt index key with
          | Some j -> edges := { src = i; update = u; args = params; dst = j } :: !edges
          | None ->
            if !count >= limit then truncated := true
            else begin
              let j = add trace' obs' key in
              edges := { src = i; update = u; args = params; dst = j } :: !edges;
              Queue.add (j, trace') queue
            end)
        (successors trace)
    done;
    Ok
      {
        nodes = Array.of_list (List.rev !rev_nodes);
        edges = List.rev !edges;
        domain;
        truncated = !truncated;
      }
  with Stop e -> Error e

let explore_exn ?limit ?domain spec =
  match explore ?limit ?domain spec with
  | Ok g -> g
  | Error e -> invalid_arg (Fmt.str "Reach.explore_exn: %a" Eval.pp_error e)

(** Successor state indices of node [i]. *)
let successors (g : graph) i =
  List.filter_map (fun e -> if e.src = i then Some e.dst else None) g.edges
  |> List.sort_uniq compare

let num_states (g : graph) = Array.length g.nodes

let pp_stats ppf (g : graph) =
  Fmt.pf ppf "%d states, %d transitions%s" (num_states g) (List.length g.edges)
    (if g.truncated then " (truncated)" else "")
