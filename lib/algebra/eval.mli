(** Ground query evaluation by conditional term rewriting (paper
    Section 4.2): to answer [q(p̄, t)] for a ground state term [t], find
    the conditional equations whose left-hand side matches, check their
    conditions (recursively evaluating queries), and rewrite to the
    right-hand side — which, by the "simpler expression" discipline,
    interrogates an earlier state of the trace.

    Quantified conditions enumerate the evaluation domain: the
    specification's parameter names joined with the active domain of
    the term under evaluation. *)

open Fdbs_kernel

type error =
  | No_applicable_equation of Aterm.t
      (** no equation's lhs+condition covers this ground query *)
  | Conflicting_equations of Aterm.t * string list
      (** distinct applicable equations produced distinct values *)
  | Fuel_exhausted
      (** rewriting did not terminate within the step budget *)
  | Ill_formed of string

val pp_error : error Fmt.t

exception Error of error

val default_fuel : int

(** Evaluation domain for a ground term: base domain of the spec joined
    with the term's active domain. *)
val evaluation_domain : Spec.t -> Aterm.t -> Domain.t

(** Evaluate a ground non-state term to a value. [domain] supplies the
    quantifier ranges (defaults to {!evaluation_domain}); [fuel] bounds
    the number of query unfoldings; [on_step] observes each successful
    query rewrite (target, equation name, value). *)
val query :
  ?fuel:int ->
  ?domain:Domain.t ->
  ?on_step:(Aterm.t -> string -> Value.t -> unit) ->
  Spec.t ->
  Aterm.t ->
  (Value.t, error) result

val query_exn : ?fuel:int -> ?domain:Domain.t -> Spec.t -> Aterm.t -> Value.t

(** One rewriting step of a derivation: the ground query [step_target]
    was answered [step_value] through equation [step_via]. *)
type step = {
  step_target : Aterm.t;
  step_via : string;
  step_value : Value.t;
}

val pp_step : step Fmt.t

(** Evaluate and return the derivation: every query rewrite performed,
    innermost first. *)
val explain :
  ?fuel:int -> ?domain:Domain.t -> Spec.t -> Aterm.t ->
  (Value.t * step list, error) result

(** Evaluate query symbol [q] on parameter values [params] in the state
    denoted by [trace]. *)
val query_on_trace :
  ?fuel:int ->
  ?domain:Domain.t ->
  Spec.t ->
  q:string ->
  params:Value.t list ->
  Strace.t ->
  (Value.t, error) result

(** Evaluate a Boolean ground term to an OCaml bool. *)
val holds : ?fuel:int -> ?domain:Domain.t -> Spec.t -> Aterm.t -> (bool, error) result
