(** Ground query evaluation by conditional term rewriting (paper
    Section 4.2): to answer [q(p̄, t)] for a ground state term [t], find
    the conditional equations whose left-hand side matches, check their
    conditions (recursively evaluating queries), and rewrite to the
    right-hand side — which, by the "simpler expression" discipline,
    interrogates an earlier state of the trace.

    Quantified conditions such as [exists s (takes(s,c,U) = True)]
    enumerate the evaluation domain: the specification's parameter names
    joined with the active domain of the term under evaluation. *)

open Fdbs_kernel
open Fdbs_logic

type error =
  | No_applicable_equation of Aterm.t
      (** no equation's lhs+condition covers this ground query *)
  | Conflicting_equations of Aterm.t * string list
      (** distinct applicable equations produced distinct values *)
  | Fuel_exhausted
      (** rewriting did not terminate within the step budget *)
  | Ill_formed of string

let pp_error ppf = function
  | No_applicable_equation t ->
    Fmt.pf ppf "no applicable equation for %a (specification not sufficiently complete?)"
      Aterm.pp t
  | Conflicting_equations (t, eqs) ->
    Fmt.pf ppf "equations [%a] give conflicting values for %a"
      Fmt.(list ~sep:(any ", ") string) eqs Aterm.pp t
  | Fuel_exhausted -> Fmt.string ppf "rewriting step budget exhausted (circular equations?)"
  | Ill_formed msg -> Fmt.pf ppf "ill-formed term: %s" msg

exception Error of error

let default_fuel = 100_000

(* Collect the values occurring in a ground term, sort-wise. *)
let rec term_active_domain (acc : Domain.t) : Aterm.t -> Domain.t = function
  | Aterm.Val (v, s) ->
    if Sort.is_bool s then acc else Domain.add s (v :: Domain.carrier acc s) acc
  | Aterm.App (_, args) -> List.fold_left term_active_domain acc args
  | Aterm.Exists (_, b) | Aterm.Forall (_, b) -> term_active_domain acc b
  | Aterm.Var _ -> acc

(** Evaluation domain for a ground term: base domain of the spec joined
    with the term's active domain. *)
let evaluation_domain (spec : Spec.t) (t : Aterm.t) : Domain.t =
  term_active_domain spec.Spec.base_domain t

let interp_param (spec : Spec.t) name (args : Value.t list) : Value.t =
  match List.assoc_opt name spec.Spec.param_interp with
  | Some f -> f args
  | None ->
    if args = [] then Value.Sym name
    else raise (Error (Ill_formed (Fmt.str "parameter operator %s has no interpretation" name)))

(** Evaluate a ground non-state term to a value. [domain] supplies the
    quantifier ranges (defaults to {!evaluation_domain}); [fuel] bounds
    the number of query unfoldings; [on_step] observes each successful
    query rewrite (target, equation name, value) — the raw material of
    {!explain}. *)
let query ?(fuel = default_fuel) ?domain ?(on_step = fun _ _ _ -> ())
    (spec : Spec.t) (t : Aterm.t) : (Value.t, error) result =
  let sg = spec.Spec.signature in
  let domain = match domain with Some d -> d | None -> evaluation_domain spec t in
  let fuel = ref fuel in
  let val_of_bool b = if b then Value.Bool true else Value.Bool false in
  let as_bool = function
    | Value.Bool b -> b
    | v -> raise (Error (Ill_formed (Fmt.str "expected a Boolean, got %a" Value.pp v)))
  in
  (* Normalize a ground state term: evaluate the parameter arguments of
     each update application to values. *)
  let rec normalize_state (t : Aterm.t) : Aterm.t =
    match t with
    | Aterm.App (u, args) when Asig.is_update sg u ->
      (match Asig.find_update sg u with
       | None -> assert false
       | Some o ->
         let rec split sorts args =
           match (sorts, args) with
           | [], [ st ] -> ([], Some st)
           | [], [] -> ([], None)
           | srt :: sorts, a :: args ->
             let vals, st = split sorts args in
             (Aterm.Val (eval a, srt) :: vals, st)
           | _ ->
             raise (Error (Ill_formed (Fmt.str "update %s applied to wrong arity" u)))
         in
         let vals, st = split (Asig.param_args o) args in
         (match st with
          | None -> Aterm.App (u, vals)
          | Some st -> Aterm.App (u, vals @ [ normalize_state st ])))
    | Aterm.Var _ -> raise (Error (Ill_formed "state term contains a variable"))
    | _ ->
      raise
        (Error (Ill_formed (Fmt.str "expected a ground state term, got %a" Aterm.pp t)))
  (* Evaluate a ground term of non-state sort. *)
  and eval (t : Aterm.t) : Value.t =
    match t with
    | Aterm.Val (v, _) -> v
    | Aterm.Var v ->
      raise (Error (Ill_formed (Fmt.str "free variable %s" v.Term.vname)))
    | Aterm.App ("true", []) -> Value.Bool true
    | Aterm.App ("false", []) -> Value.Bool false
    | Aterm.App ("not", [ a ]) -> val_of_bool (not (as_bool (eval a)))
    | Aterm.App ("and", [ a; b ]) -> val_of_bool (as_bool (eval a) && as_bool (eval b))
    | Aterm.App ("or", [ a; b ]) -> val_of_bool (as_bool (eval a) || as_bool (eval b))
    | Aterm.App ("imp", [ a; b ]) ->
      val_of_bool ((not (as_bool (eval a))) || as_bool (eval b))
    | Aterm.App ("iff", [ a; b ]) -> val_of_bool (as_bool (eval a) = as_bool (eval b))
    | Aterm.App ("eq", [ a; b ]) -> val_of_bool (Value.equal (eval a) (eval b))
    | Aterm.Exists (v, body) ->
      val_of_bool
        (List.exists
           (fun value ->
             as_bool
               (eval (Aterm.subst [ (v, Aterm.Val (value, v.Term.vsort)) ] body)))
           (Domain.carrier domain v.Term.vsort))
    | Aterm.Forall (v, body) ->
      val_of_bool
        (List.for_all
           (fun value ->
             as_bool
               (eval (Aterm.subst [ (v, Aterm.Val (value, v.Term.vsort)) ] body)))
           (Domain.carrier domain v.Term.vsort))
    | Aterm.App (q, args) when Asig.is_query sg q -> eval_query q args
    | Aterm.App (u, _) when Asig.is_update sg u ->
      raise (Error (Ill_formed (Fmt.str "state term %s in value position" u)))
    | Aterm.App (f, args) -> interp_param spec f (List.map eval args)
  and eval_query q args =
    Fault.hit "algebra.eval";
    if !fuel <= 0 then raise (Error Fuel_exhausted);
    decr fuel;
    match Asig.find_query sg q with
    | None -> assert false
    | Some o ->
      let rec split sorts args =
        match (sorts, args) with
        | [], [ st ] -> ([], st)
        | srt :: sorts, a :: args ->
          let vals, st = split sorts args in
          (Aterm.Val (eval a, srt) :: vals, st)
        | _ -> raise (Error (Ill_formed (Fmt.str "query %s applied to wrong arity" q)))
      in
      let vals, st = split (Asig.param_args o) args in
      let st = normalize_state st in
      let target = Aterm.App (q, vals @ [ st ]) in
      let applicable =
        List.filter_map
          (fun (eq : Equation.t) ->
            match Aterm.match_term eq.Equation.lhs target with
            | None -> None
            | Some sub ->
              if as_bool (eval (Aterm.subst sub eq.Equation.cond)) then
                Some (eq.Equation.eq_name, eval (Aterm.subst sub eq.Equation.rhs))
              else None)
          spec.Spec.equations
      in
      (match applicable with
       | [] -> raise (Error (No_applicable_equation target))
       | (eq_name, v) :: rest ->
         if List.for_all (fun (_, v') -> Value.equal v v') rest then begin
           on_step target eq_name v;
           v
         end
         else
           raise
             (Error (Conflicting_equations (target, List.map fst applicable))))
  in
  match eval t with v -> Ok v | exception Error e -> Result.Error e

let query_exn ?fuel ?domain spec t =
  match query ?fuel ?domain spec t with
  | Ok v -> v
  | Error e -> invalid_arg (Fmt.str "Eval.query_exn: %a" pp_error e)

(** One rewriting step of a derivation: the ground query [target] was
    answered [value] through [via]. *)
type step = {
  step_target : Aterm.t;
  step_via : string;  (** the equation applied *)
  step_value : Value.t;
}

let pp_step ppf (s : step) =
  Fmt.pf ppf "%a = %a  [by %s]" Aterm.pp s.step_target Value.pp s.step_value s.step_via

(** Evaluate and return the derivation: every query rewrite performed,
    innermost first — the executable counterpart of the paper's
    "reducing the problem ... to a problem somewhat simpler than the
    original one". *)
let explain ?fuel ?domain (spec : Spec.t) (t : Aterm.t) :
  (Value.t * step list, error) result =
  let steps = ref [] in
  let on_step target via value =
    steps := { step_target = target; step_via = via; step_value = value } :: !steps
  in
  match query ?fuel ?domain ~on_step spec t with
  | Ok v -> Ok (v, List.rev !steps)
  | Error _ as e -> (match e with Error err -> Error err | Ok _ -> assert false)

(** Evaluate query symbol [q] on parameter values [params] in the state
    denoted by [trace]. *)
let query_on_trace ?fuel ?domain (spec : Spec.t) ~(q : string) ~(params : Value.t list)
    (trace : Strace.t) : (Value.t, error) result =
  let sg = spec.Spec.signature in
  match Asig.find_query sg q with
  | None -> Result.Error (Ill_formed (Fmt.str "unknown query %s" q))
  | Some o ->
    let sorts = Asig.param_args o in
    if List.length sorts <> List.length params then
      Result.Error (Ill_formed (Fmt.str "query %s arity mismatch" q))
    else
      let args = List.map2 (fun v s -> Aterm.Val (v, s)) params sorts in
      let t = Aterm.App (q, args @ [ Strace.to_aterm sg trace ]) in
      query ?fuel ?domain spec t

(** Evaluate a Boolean ground term to an OCaml bool. *)
let holds ?fuel ?domain (spec : Spec.t) (t : Aterm.t) : (bool, error) result =
  match query ?fuel ?domain spec t with
  | Ok (Value.Bool b) -> Ok b
  | Ok v -> Result.Error (Ill_formed (Fmt.str "expected Boolean result, got %a" Value.pp v))
  | Error _ as e -> e
