(** Simple observations and observational equivalence (paper Section
    4.1: L2 is rich enough in queries that states are identified by
    their simple observations — the {e observability} condition). *)

open Fdbs_kernel

type observation = {
  obs_query : string;
  obs_params : Value.t list;
  obs_result : Value.t;
}

let pp_observation ppf o =
  Fmt.pf ppf "%s(%a) = %a" o.obs_query
    Fmt.(list ~sep:(any ", ") Value.pp) o.obs_params Value.pp o.obs_result

(** All simple observations of the state denoted by [trace], for every
    query and every tuple of parameter values from [domain] (defaults to
    the spec's base domain joined with the trace's active domain). *)
let observations ?(domain : Domain.t option) (spec : Spec.t) (trace : Strace.t) :
  (observation list, Eval.error) result =
  let sg = spec.Spec.signature in
  let domain =
    match domain with
    | Some d -> d
    | None -> Domain.union spec.Spec.base_domain (Strace.active_domain sg trace)
  in
  let observe_query (o : Asig.op) =
    let carriers = List.map (Domain.carrier domain) (Asig.param_args o) in
    List.map
      (fun params ->
        match Eval.query_on_trace ~domain spec ~q:o.Asig.oname ~params trace with
        | Ok v -> Ok { obs_query = o.Asig.oname; obs_params = params; obs_result = v }
        | Error e -> Error e)
      (Util.cartesian carriers)
  in
  Util.result_all (List.concat_map observe_query sg.Asig.queries)

let observations_exn ?domain spec trace =
  match observations ?domain spec trace with
  | Ok obs -> obs
  | Error e -> invalid_arg (Fmt.str "Observe.observations_exn: %a" Eval.pp_error e)

let equal_observations (a : observation list) (b : observation list) =
  let eq o1 o2 =
    o1.obs_query = o2.obs_query
    && List.equal Value.equal o1.obs_params o2.obs_params
    && Value.equal o1.obs_result o2.obs_result
  in
  List.length a = List.length b && List.for_all2 eq a b

(** Observational equivalence of two states: equal results for every
    simple observation over the union of both active domains and the
    base domain. Raises on evaluation failure. *)
let equiv ?domain (spec : Spec.t) (t1 : Strace.t) (t2 : Strace.t) : bool =
  let sg = spec.Spec.signature in
  let domain =
    match domain with
    | Some d -> d
    | None ->
      Domain.union spec.Spec.base_domain
        (Domain.union (Strace.active_domain sg t1) (Strace.active_domain sg t2))
  in
  equal_observations
    (observations_exn ~domain spec t1)
    (observations_exn ~domain spec t2)

(** The observations that distinguish two states (empty iff equivalent
    over the given domain). *)
let distinguishing ?domain (spec : Spec.t) (t1 : Strace.t) (t2 : Strace.t) :
  (observation * observation) list =
  let sg = spec.Spec.signature in
  let domain =
    match domain with
    | Some d -> d
    | None ->
      Domain.union spec.Spec.base_domain
        (Domain.union (Strace.active_domain sg t1) (Strace.active_domain sg t2))
  in
  let o1 = observations_exn ~domain spec t1 in
  let o2 = observations_exn ~domain spec t2 in
  List.filter
    (fun (a, b) -> not (Value.equal a.obs_result b.obs_result))
    (Util.zip_exn o1 o2)
