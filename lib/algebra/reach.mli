(** Reachable-state exploration (paper Section 4.4: the set G of
    reachable states is the least set containing [initiate] and closed
    under the update functions).

    States are explored as traces over a fixed parameter domain and
    deduplicated by their simple observations, so the result is a finite
    quotient transition graph — the concrete universe the refinement
    checks and the temporal level operate on. *)

open Fdbs_kernel

type node = {
  trace : Strace.t;  (** a representative trace denoting this state *)
  obs : Observe.observation list;  (** its simple observations over the domain *)
}

type edge = {
  src : int;
  update : string;
  args : Value.t list;
  dst : int;
}

type graph = {
  nodes : node array;
  edges : edge list;
  domain : Domain.t;  (** the exploration domain *)
  truncated : bool;  (** true if [limit] stopped the exploration *)
}

(** Explore the reachable quotient graph up to [limit] distinct states
    (distinct = differing in some observation over [domain], which
    defaults to the spec's base domain). *)
val explore : ?limit:int -> ?domain:Domain.t -> Spec.t -> (graph, Eval.error) result

val explore_exn : ?limit:int -> ?domain:Domain.t -> Spec.t -> graph

(** Successor state indices of a node. *)
val successors : graph -> int -> int list

val num_states : graph -> int
val pp_stats : graph Fmt.t
