(** Correctness of a first-to-second level refinement (paper Sections
    4.3–4.4), checked by bounded model exploration.

    Given the information-level theory T1, the algebraic specification
    T2 and an interpretation I, the checker:

    - explores the reachable quotient graph of T2's updates over a
      finite parameter domain ({!Fdbs_algebra.Reach});
    - turns it into a temporal universe: each reachable state becomes an
      L1 structure whose db-predicate extensions are computed through I,
      and the accessibility relation is the (transitively closed) update
      relation;
    - checks every axiom of T1 at every reachable state — static axioms
      give property (b) "every reachable state is valid", modal axioms
      give property (d) "transition consistency";
    - enumerates all valid states over the domain (structures satisfying
      the static axioms) and searches each among the reachable ones —
      property (c) "every valid state is reachable". *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_temporal

(* Each proof obligation of the refinement check is a [refine] span
   when tracing is on; spans sit outside the {!Pool} sweeps, so the
   span tree is independent of the job count. *)
let span ?args name f =
  if Trace.enabled () then Trace.with_span ~cat:"refine" ?args name f else f ()

type report = {
  states : int;  (** reachable states explored *)
  truncated : bool;
  interp_errors : string list;
  axiom_reports : Check.report list;
      (** per-axiom failures over the reachable universe *)
  unreachable_valid : Structure.t list;
      (** valid states (over the domain) not reached by any update trace *)
  eval_error : string option;  (** evaluation failure, if exploration aborted *)
}

let ok (r : report) =
  r.interp_errors = []
  && Check.all_pass r.axiom_reports
  && r.unreachable_valid = []
  && r.eval_error = None

let pp_report ppf (r : report) =
  if ok r then
    Fmt.pf ppf "refinement correct on %d reachable states%s" r.states
      (if r.truncated then " (truncated!)" else "")
  else
    Fmt.pf ppf "@[<v>refinement check FAILED:@,%a%a%a%a@]"
      Fmt.(list ~sep:cut string)
      r.interp_errors
      Fmt.(list ~sep:cut Check.pp_report)
      (List.filter (fun (rep : Check.report) -> rep.Check.failures <> []) r.axiom_reports)
      Fmt.(list ~sep:cut (fun ppf st -> Fmt.pf ppf "valid but unreachable: %a" Structure.pp st))
      r.unreachable_valid
      Fmt.(option (fun ppf e -> Fmt.pf ppf "evaluation error: %s" e))
      r.eval_error

(* The L1 structure induced by a reachable state: db-predicate
   extensions computed through I by evaluating the images on the node's
   trace; constants of L1 interpreted as their symbolic values. *)
let structure_of_node (t1 : Ttheory.t) (spec : Spec.t) (interp : Interp12.t)
    ~(domain : Domain.t) (node : Reach.node) : (Structure.t, string) result =
  let consts =
    List.filter_map
      (fun (f : Signature.func) ->
        if f.Signature.fargs = [] then Some (f.Signature.fname, Value.Sym f.Signature.fname)
        else None)
      t1.Ttheory.signature.Signature.funcs
  in
  let state_term = Strace.to_aterm spec.Spec.signature node.Reach.trace in
  let rec build_tables acc = function
    | [] -> Ok acc
    | (p : Signature.pred) :: rest ->
      let carriers = List.map (Domain.carrier domain) p.Signature.pargs in
      let rec tuples acc_t = function
        | [] -> Ok (List.rev acc_t)
        | values :: more ->
          (match Interp12.apply interp p.Signature.pname values state_term with
           | Error e -> Error e
           | Ok term ->
             (match Eval.holds ~domain spec term with
              | Ok true -> tuples (values :: acc_t) more
              | Ok false -> tuples acc_t more
              | Error e -> Error (Fmt.str "%a" Eval.pp_error e)))
      in
      (match tuples [] (Util.cartesian carriers) with
       | Error e -> Error e
       | Ok tuples -> build_tables ((p.Signature.pname, tuples) :: acc) rest)
  in
  match build_tables [] (Signature.db_preds t1.Ttheory.signature) with
  | Error e -> Error e
  | Ok relations -> Ok (Structure.of_tables ~domain ~consts ~relations)

(** The temporal universe induced by the reachable graph: one structure
    per node; accessibility = update edges, transitively closed when
    [future] is [true] (the default — the paper reads R(A,B) as "B is a
    future state of A"). *)
let universe_of_graph ?(future = true) ?jobs (t1 : Ttheory.t) (spec : Spec.t)
    (interp : Interp12.t) (g : Reach.graph) : (Universe.t, string) result =
  (* Each node's structure is independent; build them across domains
     and keep the first error in node order — exactly what the
     sequential scan reported. *)
  let results =
    Pool.map ?jobs
      (structure_of_node t1 spec interp ~domain:g.Reach.domain)
      (Array.to_list g.Reach.nodes)
  in
  match Util.result_all results with
  | Error e -> Error e
  | Ok states ->
    let edges = List.map (fun (e : Reach.edge) -> (e.Reach.src, e.Reach.dst)) g.Reach.edges in
    let u = Universe.make ~states ~edges in
    Ok (if future then Universe.transitive_closure u else u)

(** All structures over [domain] satisfying T1's static axioms: the set
    V of valid states (paper Section 4.4(b)). Exponential in the domain;
    keep domains small. *)
let valid_states ?jobs (t1 : Ttheory.t) ~(domain : Domain.t) : Structure.t list =
  let consts =
    List.filter_map
      (fun (f : Signature.func) ->
        if f.Signature.fargs = [] then Some (f.Signature.fname, Value.Sym f.Signature.fname)
        else None)
      t1.Ttheory.signature.Signature.funcs
  in
  let rec powerset = function
    | [] -> [ [] ]
    | x :: rest ->
      let smaller = powerset rest in
      smaller @ List.map (fun s -> x :: s) smaller
  in
  let db_preds = Signature.db_preds t1.Ttheory.signature in
  let choices =
    List.map
      (fun (p : Signature.pred) ->
        let tuples = Util.cartesian (List.map (Domain.carrier domain) p.Signature.pargs) in
        List.map (fun sub -> (p.Signature.pname, sub)) (powerset tuples))
      db_preds
  in
  (* The static axioms are closed wffs over the db-predicates, checked
     once per candidate state — a constraint-checking workload. Route it
     through the planner: a pseudo-schema made of the db-predicates lets
     each safe axiom compile once (into the shared plan cache) and run
     as an emptiness test on each candidate, instead of re-entering
     [Eval] recursion over the carriers 2^|tuples| times. Axioms outside
     the safe fragment fall back to [Eval] unchanged. *)
  let pseudo_schema : Fdbs_rpr.Schema.t =
    {
      Fdbs_rpr.Schema.name = "valid-states";
      relations =
        List.map
          (fun (p : Signature.pred) ->
            Fdbs_rpr.Schema.rel_decl p.Signature.pname p.Signature.pargs)
          db_preds;
      consts = [];
      constraints = [];
      procs = [];
    }
  in
  let sorts_of =
    let tbl = List.map (fun (p : Signature.pred) -> (p.Signature.pname, p.Signature.pargs)) db_preds in
    fun name -> List.assoc name tbl
  in
  (* Only the static axioms constrain a single state; the modal ones
     are checked over the universe by {!check}. Project through
     {!Check.static_projections} — a mixed axiom whose modal part makes
     it non-static is skipped {e by name}, never silently: the skipped
     names land on the enclosing trace span so a "valid states" count
     can always be audited against the axioms it actually used. *)
  let statics, skipped_modal =
    Check.static_projections
      (List.map
         (fun (ax : Ttheory.axiom) -> (ax.Ttheory.ax_name, ax.Ttheory.ax_formula))
         t1.Ttheory.axioms)
  in
  if skipped_modal <> [] && Trace.enabled () then
    Trace.add_attr "skipped-modal-axioms" (String.concat "," skipped_modal);
  let statics = List.map snd statics in
  (* The candidate structures are independent; filter them in parallel,
     keeping the enumeration order. *)
  Pool.map ?jobs
    (fun relations ->
      let db =
        List.fold_left
          (fun db (name, tuples) ->
            Fdbs_rpr.Db.with_relation name
              (Fdbs_rpr.Relation.of_list (sorts_of name) tuples)
              db)
          Fdbs_rpr.Db.empty relations
      in
      let valid =
        List.for_all
          (fun f -> Fdbs_rpr.Planner.holds ~schema:pseudo_schema ~domain ~consts db f)
          statics
      in
      if valid then Some (Structure.of_tables ~domain ~consts ~relations) else None)
    (Util.cartesian choices)
  |> List.filter_map Fun.id

(** The paper's closing remark on property (c): "by contrast not all
    valid transitions will be realized by our repertoire of update
    functions". This analysis quantifies that gap: among ordered pairs
    of valid states satisfying every transition axiom when read as a
    one-step constraint, how many are realized by a single update?
    Returns (realized, valid-transitions). Meant for small domains. *)
let transition_coverage (t1 : Ttheory.t) (spec : Spec.t) (interp : Interp12.t)
    ~(domain : Domain.t) : (int * int, string) result =
  match Reach.explore ~domain spec with
  | Error e -> Error (Fmt.str "%a" Eval.pp_error e)
  | Ok g ->
    (match universe_of_graph ~future:false t1 spec interp g with
     | Error e -> Error e
     | Ok u ->
       let n = Universe.num_states u in
       let single_step = Universe.edges u in
       (* A candidate transition (i, j) is valid iff every transition
          axiom holds in the two-state universe {i -> j} closed
          transitively — the one-step reading of the modal axioms. *)
       let transition_axioms = Ttheory.transition_axioms t1 in
       let valid_transition i j =
         let pair =
           Universe.make
             ~states:[ Universe.state u i; Universe.state u j ]
             ~edges:[ (0, 1) ]
         in
         List.for_all
           (fun (ax : Ttheory.axiom) -> Check.holds_at pair 0 ax.Ttheory.ax_formula)
           transition_axioms
       in
       let realized = ref 0 in
       let valid = ref 0 in
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if i <> j && valid_transition i j then begin
             incr valid;
             if List.mem (i, j) single_step then incr realized
           end
         done
       done;
       Ok (!realized, !valid))

(** Run the full first-to-second level refinement check over [domain]
    (defaults to the spec's base domain). Structure building, valid-state
    enumeration and the reachability search are swept in parallel over
    [config]'s job count; the report is independent of it. *)
let check ?(limit = 10_000) ?domain ?(future = true) ?config (t1 : Ttheory.t)
    (spec : Spec.t) (interp : Interp12.t) : report =
  let jobs = Option.bind config (fun (c : Config.t) -> c.Config.jobs) in
  let domain = match domain with Some d -> d | None -> spec.Spec.base_domain in
  let interp_errors = Interp12.check interp t1.Ttheory.signature spec.Spec.signature in
  let empty_report =
    {
      states = 0;
      truncated = false;
      interp_errors;
      axiom_reports = [];
      unreachable_valid = [];
      eval_error = None;
    }
  in
  if interp_errors <> [] then empty_report
  else
    match span "check12.explore" (fun () -> Reach.explore ~limit ~domain spec) with
    | Error e -> { empty_report with eval_error = Some (Fmt.str "%a" Eval.pp_error e) }
    | Ok g ->
      (match
         span "check12.universe" (fun () ->
             universe_of_graph ~future ?jobs t1 spec interp g)
       with
       | Error e -> { empty_report with eval_error = Some e }
       | Ok u ->
         (* (b)/(d): one obligation per axiom over the universe *)
         let axiom_reports =
           List.map
             (fun (ax : Ttheory.axiom) ->
               span
                 ~args:[ ("axiom", ax.Ttheory.ax_name) ]
                 "check12.axiom"
                 (fun () ->
                   List.hd
                     (Check.check_axioms u
                        [ (ax.Ttheory.ax_name, ax.Ttheory.ax_formula) ])))
             t1.Ttheory.axioms
         in
         (* (c) every valid state is reachable *)
         let reachable_structures =
           List.init (Universe.num_states u) (Universe.state u)
         in
         let unreachable_valid =
           span "check12.reachability" (fun () ->
               Pool.map ?jobs
                 (fun valid ->
                   if List.exists (Structure.equal_tables valid) reachable_structures
                   then None
                   else Some valid)
                 (span "check12.valid-states" (fun () ->
                      valid_states ?jobs t1 ~domain))
               |> List.filter_map Fun.id)
         in
         {
           states = Reach.num_states g;
           truncated = g.Reach.truncated;
           interp_errors = [];
           axiom_reports;
           unreachable_valid;
           eval_error = None;
         })
