(** The syntactic route to second-to-third level refinement through
    dynamic logic — the possibility the paper defers to "a separate
    paper" (Section 5.3) and {!Fdbs_rpr.Dynamic} supplies.

    Each Q-equation [cond => q(ā, u(p̄, U)) = rhs] translates into a
    dynamic-logic sentence over the current database standing for U:

    {v  ∀vars. K(cond) -> ( ⟨u(p̄)⟩true
                          & (K(rhs)  -> [u(p̄)] K(q)(ā))
                          & (~K(rhs) -> [u(p̄)] ~K(q)(ā)) )  v}

    — the value of q after running the procedure equals the value of
    [rhs] before it, and the procedure is defined (the diamond rules
    out a vacuous box). T3 refines T2 iff every translated sentence
    holds at every reachable database; by construction this agrees with
    the semantic route of {!Check23} (tested on passing and failing
    designs). *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_rpr

let ( let* ) = Result.bind

(* The applicative fragment of an algebraic term as an L3 term:
   variables stay free (quantified at the logic level). *)
let rec term_of_aterm : Aterm.t -> (Term.t, string) result = function
  | Aterm.Var v ->
    if Sort.is_state v.Term.vsort then Error "state variable in parameter position"
    else Ok (Term.Var v)
  | Aterm.Val (value, _) -> Ok (Term.Lit value)
  | Aterm.App (f, args) ->
    let* args' = Util.result_all (List.map term_of_aterm args) in
    Ok (Term.App (f, args'))
  | Aterm.Exists _ | Aterm.Forall _ -> Error "quantifier in parameter position"

(* A Boolean algebraic term over queries at the state variable [u_var]
   as an L3 wff through K (queries become their images). *)
let rec wff_of_aterm (k : Interp23.t) (sg2 : Asig.t) (u_var : Term.var) :
  Aterm.t -> (Formula.t, string) result = function
  | Aterm.App ("true", []) -> Ok Formula.True
  | Aterm.App ("false", []) -> Ok Formula.False
  | Aterm.App ("not", [ a ]) ->
    let* a' = wff_of_aterm k sg2 u_var a in
    Ok (Formula.Not a')
  | Aterm.App ("and", [ a; b ]) ->
    let* a' = wff_of_aterm k sg2 u_var a in
    let* b' = wff_of_aterm k sg2 u_var b in
    Ok (Formula.And (a', b'))
  | Aterm.App ("or", [ a; b ]) ->
    let* a' = wff_of_aterm k sg2 u_var a in
    let* b' = wff_of_aterm k sg2 u_var b in
    Ok (Formula.Or (a', b'))
  | Aterm.App ("imp", [ a; b ]) ->
    let* a' = wff_of_aterm k sg2 u_var a in
    let* b' = wff_of_aterm k sg2 u_var b in
    Ok (Formula.Imp (a', b'))
  | Aterm.App ("iff", [ a; b ]) ->
    let* a' = wff_of_aterm k sg2 u_var a in
    let* b' = wff_of_aterm k sg2 u_var b in
    Ok (Formula.Iff (a', b'))
  | Aterm.Exists (v, b) ->
    let* b' = wff_of_aterm k sg2 u_var b in
    Ok (Formula.Exists (v, b'))
  | Aterm.Forall (v, b) ->
    let* b' = wff_of_aterm k sg2 u_var b in
    Ok (Formula.Forall (v, b'))
  | Aterm.App (q, args) when Asig.is_query sg2 q ->
    (match List.rev args with
     | Aterm.Var sv :: rev_params when Term.var_equal sv u_var ->
       let* args' = Util.result_all (List.map term_of_aterm (List.rev rev_params)) in
       Interp23.apply_query_terms k q args'
     | _ -> Error (Fmt.str "query %s not applied to the equation's state variable" q))
  | Aterm.App ("eq", [ a; b ]) ->
    (* Boolean equality becomes iff when either side is a wff; otherwise
       term equality. *)
    (match (wff_of_aterm k sg2 u_var a, wff_of_aterm k sg2 u_var b) with
     | Ok a', Ok b' -> Ok (Formula.Iff (a', b'))
     | _ ->
       let* a' = term_of_aterm a in
       let* b' = term_of_aterm b in
       Ok (Formula.Eq (a', b')))
  | t -> Error (Fmt.str "cannot translate %a into an L3 wff" Aterm.pp t)

(** Translate one Q-equation into a closed dynamic-logic sentence; the
    lhs must have the standard shape [q(ā, u(p̄, U))] with [u] a proper
    update (initializer-headed equations translate with the initializer
    called on the current database, which resets it). *)
let of_equation (k : Interp23.t) (sg2 : Asig.t) (eq : Equation.t) :
  (Dynamic.t, string) result =
  match eq.Equation.lhs with
  | Aterm.App (q, args) when Asig.is_query sg2 q ->
    (match List.rev args with
     | state_term :: rev_qparams ->
       let* proc_name, proc_args, u_var =
         match state_term with
         | Aterm.App (u, uargs) when Asig.is_update sg2 u ->
           let* proc =
             match Interp23.find_update k u with
             | Some p -> Ok p
             | None -> Error (Fmt.str "update %s has no procedure" u)
           in
           (match List.rev uargs with
            | Aterm.Var sv :: rev_params when Sort.is_state sv.Term.vsort ->
              let* args' =
                Util.result_all (List.map term_of_aterm (List.rev rev_params))
              in
              Ok (proc, args', sv)
            | [] | _ ->
              (* initializer: no state argument *)
              let* args' = Util.result_all (List.map term_of_aterm uargs) in
              Ok (proc, args', Sdesc.state_var))
         | _ -> Error "lhs state argument is not an update application"
       in
       let program = Dynamic.Call (proc_name, proc_args) in
       let* q_args = Util.result_all (List.map term_of_aterm (List.rev rev_qparams)) in
       let* q_after = Interp23.apply_query_terms k q q_args in
       let* cond' = wff_of_aterm k sg2 u_var eq.Equation.cond in
       let* rhs' = wff_of_aterm k sg2 u_var eq.Equation.rhs in
       let body =
         Dynamic.Imp
           ( Dynamic.Atom cond',
             Dynamic.And
               ( Dynamic.Diamond (program, Dynamic.Atom Formula.True),
                 Dynamic.And
                   ( Dynamic.Imp
                       (Dynamic.Atom rhs', Dynamic.Box (program, Dynamic.Atom q_after)),
                     Dynamic.Imp
                       ( Dynamic.Not (Dynamic.Atom rhs'),
                         Dynamic.Box (program, Dynamic.Not (Dynamic.Atom q_after)) ) ) ) )
       in
       (* quantify the parameter variables (the state variable is the
          implicit current database) *)
       let vars =
         Util.dedup ~eq:Term.var_equal
           (List.filter
              (fun v -> not (Sort.is_state v.Term.vsort))
              (Aterm.free_vars eq.Equation.lhs
              @ Aterm.free_vars eq.Equation.cond
              @ Aterm.free_vars eq.Equation.rhs))
       in
       Ok (List.fold_right (fun v acc -> Dynamic.Forall (v, acc)) vars body)
     | [] -> Error "query with no arguments")
  | _ -> Error "lhs is not a query application (U-equations are not supported)"

type verdict = {
  dyn_equation : string;
  dyn_formula : Dynamic.t;
  dyn_holds : bool;
}

(** Check every Q-equation's dynamic-logic translation at every
    reachable database: the syntactic counterpart of {!Check23.check}.
    The per-database checks of each equation run in parallel over
    [config]'s job count; the verdicts are independent of it. Failures
    come back as structured {!Fdbs_kernel.Error.t} values whose message
    carries the classic string. *)
let check ?(limit = 2_000) ?config (spec : Spec.t) (env : Semantics.env)
    (k : Interp23.t) : (verdict list, Error.t) result =
  let jobs = Option.bind config (fun (c : Config.t) -> c.Config.jobs) in
  let fail m = Result.Error (Error.make Error.Exec Error.Exec_failure m) in
  let env =
    match Option.bind config Config.budget with
    | Some b -> Semantics.with_budget b env
    | None -> env
  in
  let sg2 = spec.Spec.signature in
  match Check23.reachable_dbs env k sg2 ~limit with
  | exception Invalid_argument e -> fail e
  | dbs, _truncated ->
    (* Shared-snapshot prewarm, as in {!Check23.check}: publish each
       reachable state's relation indexes once before the per-equation
       parallel sweeps repeatedly probe them across domains. *)
    let eff_jobs =
      match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
    in
    if eff_jobs > 1 then List.iter Db.warm dbs;
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (eq : Equation.t) :: rest ->
        (match of_equation k sg2 eq with
         | Error e -> fail (Fmt.str "equation %s: %s" eq.Equation.eq_name e)
         | Ok formula ->
           (* one obligation per equation: its translated sentence over
              every reachable database *)
           let sweep () =
             try
               Pool.map ?jobs (fun db -> Dynamic.holds env db formula) dbs
               |> List.for_all Fun.id
             with Dynamic.Dyn_error e -> invalid_arg e
           in
           let holds =
             if Trace.enabled () then
               Trace.with_span ~cat:"refine"
                 ~args:[ ("equation", eq.Equation.eq_name) ]
                 "dynamic23.obligation"
                 (fun () ->
                   let v = sweep () in
                   Trace.add_attr "verdict" (string_of_bool v);
                   v)
             else sweep ()
           in
           go
             ({ dyn_equation = eq.Equation.eq_name; dyn_formula = formula; dyn_holds = holds }
             :: acc)
             rest)
    in
    go [] spec.Spec.equations

let all_hold (verdicts : verdict list) = List.for_all (fun v -> v.dyn_holds) verdicts

let pp_verdict ppf (v : verdict) =
  Fmt.pf ppf "%s: %s@,  %a" v.dyn_equation
    (if v.dyn_holds then "valid" else "VIOLATED")
    Dynamic.pp v.dyn_formula
