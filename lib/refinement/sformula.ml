(** State formulas: the target language of the extended interpretation
    I (paper Section 4.3).

    To map wffs of L1 into L2, the paper extends L2 with a predicate
    symbol F of sort <state, state> standing for the accessibility
    relation of L1's semantics. A state formula is a first-order wff
    whose atoms are Boolean L2 terms (possibly mentioning state
    variables) and F-atoms, with quantifiers over parameter sorts and
    over the state sort. Their semantics is given over a reachable
    quotient graph ({!Fdbs_algebra.Reach.graph}): state variables range
    over the graph's nodes and F over its (transitively closed) edges. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra

type t =
  | True
  | False
  | Holds of Aterm.t
      (** a Boolean L2 term; its free state variables are bound by the
          enclosing state quantifiers *)
  | F of Term.var * Term.var  (** reachability between two state variables *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall_param of Term.var * t
  | Exists_param of Term.var * t
  | Forall_state of Term.var * t
  | Exists_state of Term.var * t

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Holds t -> Aterm.pp ppf t
  | F (a, b) -> Fmt.pf ppf "F(%s, %s)" a.Term.vname b.Term.vname
  | Not f -> Fmt.pf ppf "~%a" pp f
  | And (f, g) -> Fmt.pf ppf "(%a & %a)" pp f pp g
  | Or (f, g) -> Fmt.pf ppf "(%a | %a)" pp f pp g
  | Imp (f, g) -> Fmt.pf ppf "(%a -> %a)" pp f pp g
  | Iff (f, g) -> Fmt.pf ppf "(%a <-> %a)" pp f pp g
  | Forall_param (v, f) ->
    Fmt.pf ppf "forall %s:%s. %a" v.Term.vname v.Term.vsort pp f
  | Exists_param (v, f) ->
    Fmt.pf ppf "exists %s:%s. %a" v.Term.vname v.Term.vsort pp f
  | Forall_state (v, f) -> Fmt.pf ppf "forall %s:state. %a" v.Term.vname pp f
  | Exists_state (v, f) -> Fmt.pf ppf "exists %s:state. %a" v.Term.vname pp f

exception Eval_error of string

(** Evaluate a state formula over a reachable graph: parameter
    quantifiers range over the graph's exploration domain, state
    quantifiers over its nodes, F over the reachability relation
    (transitively closed when [future], the default). [params] and
    [states] value the free variables ([states] by node index). *)
let eval ?(future = true) (g : Reach.graph) (spec : Spec.t)
    ?(params : (Term.var * Value.t) list = [])
    ?(states : (Term.var * int) list = []) (f : t) : bool =
  let n = Array.length g.Reach.nodes in
  let reach = Array.make_matrix n n false in
  List.iter (fun (e : Reach.edge) -> reach.(e.Reach.src).(e.Reach.dst) <- true) g.Reach.edges;
  if future then
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if reach.(i).(k) then
          for j = 0 to n - 1 do
            if reach.(k).(j) then reach.(i).(j) <- true
          done
      done
    done;
  let domain = g.Reach.domain in
  let lookup_state sigma v =
    match List.find_opt (fun (v', _) -> Term.var_equal v v') sigma with
    | Some (_, i) -> i
    | None -> raise (Eval_error (Fmt.str "unbound state variable %s" v.Term.vname))
  in
  let rec go rho sigma = function
    | True -> true
    | False -> false
    | F (a, b) -> reach.(lookup_state sigma a).(lookup_state sigma b)
    | Holds term ->
      (* substitute parameter values and state traces into the term *)
      let subst =
        List.map (fun (v, value) -> (v, Aterm.Val (value, v.Term.vsort))) rho
        @ List.map
            (fun ((v : Term.var), i) ->
              (v, Strace.to_aterm spec.Spec.signature g.Reach.nodes.(i).Reach.trace))
            sigma
      in
      (match Eval.holds ~domain spec (Aterm.subst subst term) with
       | Ok b -> b
       | Error e -> raise (Eval_error (Fmt.str "%a" Eval.pp_error e)))
    | Not f -> not (go rho sigma f)
    | And (f, g') -> go rho sigma f && go rho sigma g'
    | Or (f, g') -> go rho sigma f || go rho sigma g'
    | Imp (f, g') -> (not (go rho sigma f)) || go rho sigma g'
    | Iff (f, g') -> go rho sigma f = go rho sigma g'
    | Forall_param (v, f) ->
      List.for_all
        (fun value -> go ((v, value) :: rho) sigma f)
        (Domain.carrier domain v.Term.vsort)
    | Exists_param (v, f) ->
      List.exists
        (fun value -> go ((v, value) :: rho) sigma f)
        (Domain.carrier domain v.Term.vsort)
    | Forall_state (v, f) ->
      List.for_all (fun i -> go rho ((v, i) :: sigma) f) (List.init n Fun.id)
    | Exists_state (v, f) ->
      List.exists (fun i -> go rho ((v, i) :: sigma) f) (List.init n Fun.id)
  in
  go params states f
