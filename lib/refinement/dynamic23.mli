(** The syntactic route to second-to-third level refinement through
    dynamic logic — the possibility the paper defers to "a separate
    paper" (Section 5.3) and {!Fdbs_rpr.Dynamic} supplies.

    Each Q-equation [cond => q(ā, u(p̄, U)) = rhs] translates into the
    dynamic-logic sentence

    {v ∀vars. K(cond) -> ( ⟨u(p̄)⟩true
                         & (K(rhs)  -> \[u(p̄)\] K(q)(ā))
                         & (~K(rhs) -> \[u(p̄)\] ~K(q)(ā)) ) v}

    and T3 refines T2 iff every sentence holds at every reachable
    database — agreeing with the semantic route of {!Check23} (tested on
    passing and failing designs). *)

open Fdbs_algebra
open Fdbs_rpr

(** Translate one Q-equation into a closed dynamic-logic sentence. The
    lhs must have the standard shape [q(ā, u(p̄, U))]; U-equations are
    not supported. *)
val of_equation : Interp23.t -> Asig.t -> Equation.t -> (Dynamic.t, string) result

type verdict = {
  dyn_equation : string;
  dyn_formula : Dynamic.t;
  dyn_holds : bool;
}

(** Check every Q-equation's translation at every reachable database:
    the syntactic counterpart of {!Check23.check}. [config] supplies
    the parallel sweep width (default
    {!Fdbs_kernel.Pool.default_jobs}) and an optional fresh per-call
    budget; the verdicts are independent of the job count. Failures
    come back as structured {!Fdbs_kernel.Error.t} values. *)
val check :
  ?limit:int ->
  ?config:Fdbs_kernel.Config.t ->
  Spec.t ->
  Semantics.env ->
  Interp23.t ->
  (verdict list, Fdbs_kernel.Error.t) result

val all_hold : verdict list -> bool
val pp_verdict : verdict Fmt.t
