(** Constructive synthesis of representation-level procedures from
    structured descriptions (paper Section 5.2: "In order to obtain in a
    constructive manner procedures that implement the desired update
    functions, we first correlate the four parts of our structured
    description with the semantics of the statements ... an update
    function f will follow the pattern

    {v proc f(x) = (pre-conditions?; effects; side-effects) u ~pre-conditions? v}

    which can also be written using the if-then construct").

    Every effect [q(ā) := true/false] becomes an [insert]/[delete] on
    the relation implementing [q]; the pre-condition aterm becomes an L3
    wff through the query-to-relation correspondence. The result closes
    the constructive loop: information-level constraints → structured
    descriptions → derived equations (level 2, {!Fdbs_algebra.Derive})
    {e and} synthesized procedures (level 3, this module), with the
    refinement checkers validating both. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_rpr

let ( let* ) = Result.bind

(* Translate the applicative fragment of an algebraic term into an L3
   term. The description's formal parameters become scalar program
   variables (0-ary constants, as RPR procedure semantics values them);
   variables bound by quantifiers inside the formula stay variables. *)
let rec aterm_to_term ~(params : Term.var list) : Aterm.t -> (Term.t, string) result =
  function
  | Aterm.Var v ->
    if Sort.is_state v.Term.vsort then Error "state variable in a parameter position"
    else if List.exists (Term.var_equal v) params then Ok (Term.App (v.Term.vname, []))
    else Ok (Term.Var v)
  | Aterm.Val (value, _) -> Ok (Term.Lit value)
  | Aterm.App (f, []) -> Ok (Term.App (f, []))
  | Aterm.App (f, args) ->
    let* args' = Util.result_all (List.map (aterm_to_term ~params) args) in
    Ok (Term.App (f, args'))
  | Aterm.Exists _ | Aterm.Forall _ -> Error "quantifier in a parameter position"

(* Translate a Boolean algebraic term over queries-at-U into an L3 wff,
   mapping each query application to its relation through [rel_of]. *)
let rec aterm_to_wff ~params (sg2 : Asig.t)
    (rel_of : string -> (string, string) result) :
  Aterm.t -> (Formula.t, string) result = function
  | Aterm.App ("true", []) -> Ok Formula.True
  | Aterm.App ("false", []) -> Ok Formula.False
  | Aterm.App ("not", [ a ]) ->
    let* a' = aterm_to_wff ~params sg2 rel_of a in
    Ok (Formula.Not a')
  | Aterm.App ("and", [ a; b ]) ->
    let* a' = aterm_to_wff ~params sg2 rel_of a in
    let* b' = aterm_to_wff ~params sg2 rel_of b in
    Ok (Formula.And (a', b'))
  | Aterm.App ("or", [ a; b ]) ->
    let* a' = aterm_to_wff ~params sg2 rel_of a in
    let* b' = aterm_to_wff ~params sg2 rel_of b in
    Ok (Formula.Or (a', b'))
  | Aterm.App ("imp", [ a; b ]) ->
    let* a' = aterm_to_wff ~params sg2 rel_of a in
    let* b' = aterm_to_wff ~params sg2 rel_of b in
    Ok (Formula.Imp (a', b'))
  | Aterm.App ("iff", [ a; b ]) ->
    let* a' = aterm_to_wff ~params sg2 rel_of a in
    let* b' = aterm_to_wff ~params sg2 rel_of b in
    Ok (Formula.Iff (a', b'))
  | Aterm.Exists (v, b) ->
    let* b' = aterm_to_wff ~params sg2 rel_of b in
    Ok (Formula.Exists (v, b'))
  | Aterm.Forall (v, b) ->
    let* b' = aterm_to_wff ~params sg2 rel_of b in
    Ok (Formula.Forall (v, b'))
  | Aterm.App ("eq", [ a; b ]) ->
    (* query-at-U compared to a Boolean constant, or parameter equality *)
    let as_query = function
      | Aterm.App (q, args) when Asig.is_query sg2 q ->
        (match List.rev args with
         | Aterm.Var sv :: rev_params when Sort.is_state sv.Term.vsort ->
           Some (q, List.rev rev_params)
         | _ -> None)
      | _ -> None
    in
    let as_bool = function
      | Aterm.App ("true", []) -> Some true
      | Aterm.App ("false", []) -> Some false
      | Aterm.Val (Value.Bool b, _) -> Some b
      | _ -> None
    in
    (match (as_query a, as_bool b, as_bool a, as_query b) with
     | Some (q, qargs), Some b, _, _ | _, _, Some b, Some (q, qargs) ->
       let* rel = rel_of q in
       let* args = Util.result_all (List.map (aterm_to_term ~params) qargs) in
       let atom = Formula.Pred (rel, args) in
       Ok (if b then atom else Formula.Not atom)
     | _ ->
       let* a' = aterm_to_term ~params a in
       let* b' = aterm_to_term ~params b in
       Ok (Formula.Eq (a', b')))
  | Aterm.App (q, args) when Asig.is_query sg2 q ->
    (* bare Boolean query application *)
    (match List.rev args with
     | Aterm.Var sv :: rev_params when Sort.is_state sv.Term.vsort ->
       let* rel = rel_of q in
       let* args =
         Util.result_all (List.map (aterm_to_term ~params) (List.rev rev_params))
       in
       Ok (Formula.Pred (rel, args))
     | _ -> Error (Fmt.str "query %s not applied to the description's state variable" q))
  | t -> Error (Fmt.str "cannot translate %a into a wff" Aterm.pp t)

(* One effect becomes insert or delete on the implementing relation. *)
let effect_to_stmt ~params (sg2 : Asig.t)
    (rel_of : string -> (string, string) result) (e : Sdesc.effect_) :
  (Stmt.t, string) result =
  let* rel = rel_of e.Sdesc.eff_query in
  let* args = Util.result_all (List.map (aterm_to_term ~params) e.Sdesc.eff_args) in
  match e.Sdesc.eff_value with
  | Aterm.App ("true", []) -> Ok (Stmt.Insert (rel, args))
  | Aterm.App ("false", []) -> Ok (Stmt.Delete (rel, args))
  | other ->
    ignore sg2;
    Error
      (Fmt.str "effect value %a is not a Boolean constant (only simple effects synthesize)"
         Aterm.pp other)

(** Synthesize the procedure implementing one structured description,
    following the paper's pattern (rendered with [if-then], as the paper
    notes is equivalent). Wildcard effect arguments (initializers
    clearing a whole relation) become relational assignments to the
    empty relational term. *)
let procedure (sg2 : Asig.t) (schema_rels : Schema.rel_decl list)
    (rel_of : string -> (string, string) result) (d : Sdesc.t) :
  (Schema.proc, string) result =
  let params = List.map (fun v -> (v.Term.vname, v.Term.vsort)) d.Sdesc.sd_params in
  let pvars = d.Sdesc.sd_params in
  let is_wildcard = function
    | Aterm.Var v -> not (List.exists (Term.var_equal v) d.Sdesc.sd_params)
    | _ -> false
  in
  let* effect_stmts =
    Util.result_all
      (List.map
         (fun (e : Sdesc.effect_) ->
           if List.exists is_wildcard e.Sdesc.eff_args then begin
             (* a wildcard effect sets the whole relation: only the
                clearing form (:= false) is synthesizable *)
             match e.Sdesc.eff_value with
             | Aterm.App ("false", []) ->
               let* rel = rel_of e.Sdesc.eff_query in
               (match List.find_opt (fun (r : Schema.rel_decl) -> r.Schema.rname = rel)
                        schema_rels
                with
                | None -> Error (Fmt.str "unknown relation %s" rel)
                | Some rd ->
                  let vars =
                    List.mapi
                      (fun i srt ->
                        { Term.vname = Fmt.str "x%d" (i + 1); vsort = srt })
                      rd.Schema.rsorts
                  in
                  Ok (Stmt.Rel_assign (rel, { Stmt.rt_vars = vars; rt_body = Formula.False })))
             | _ -> Error "wildcard effects must clear (value false)"
           end
           else effect_to_stmt ~params:pvars sg2 rel_of e)
         d.Sdesc.sd_effects)
  in
  let body_effects = Stmt.seq effect_stmts in
  let* body =
    if Aterm.equal d.Sdesc.sd_pre Aterm.tru then Ok body_effects
    else
      let* pre = aterm_to_wff ~params:pvars sg2 rel_of d.Sdesc.sd_pre in
      Ok (Stmt.If (pre, body_effects, Stmt.Skip))
  in
  Ok (Schema.proc d.Sdesc.sd_update params body)

(** Synthesize a whole schema from a specification signature and its
    structured descriptions: one relation per query (uppercased name),
    one procedure per description. The result is ready for
    {!Check23.check} against the derived (or hand-written) equations.
    Failures are structured {!Fdbs_kernel.Error.t} values whose message
    carries the classic string. *)
let schema ~(name : string) (sg2 : Asig.t) (descriptions : Sdesc.t list) :
  (Schema.t, Error.t) result =
  let fail m = Result.Error (Error.make Error.Exec Error.Exec_failure m) in
  let relations =
    List.map
      (fun (q : Asig.op) ->
        Schema.rel_decl (String.uppercase_ascii q.Asig.oname) (Asig.param_args q))
      sg2.Asig.queries
  in
  let rel_of q =
    if Asig.is_query sg2 q then Ok (String.uppercase_ascii q)
    else Error (Fmt.str "unknown query %s" q)
  in
  match Util.result_all (List.map (procedure sg2 relations rel_of) descriptions) with
  | Error e -> fail e
  | Ok procs ->
    let sc = { Schema.name; relations; consts = []; constraints = []; procs } in
    (match Schema.check sc with
     | [] -> Ok sc
     | errs -> fail (String.concat "; " errs))
