(** Constructive synthesis of representation-level procedures from
    structured descriptions (paper Section 5.2: an update function [f]
    follows the pattern
    [(pre-conditions?; effects; side-effects) u ~pre-conditions?],
    rendered with the equivalent if-then construct).

    Every effect [q(ā) := true/false] becomes an insert/delete on the
    relation implementing [q]; the pre-condition becomes an L3 wff
    through the query-to-relation correspondence. Together with
    {!Fdbs_algebra.Derive}, this closes the constructive loop:
    structured descriptions yield both the derived equations (level 2)
    and the synthesized procedures (level 3), with the refinement
    checkers validating the pair. *)

open Fdbs_algebra
open Fdbs_rpr

(** Synthesize the procedure implementing one structured description.
    [rel_of] maps query names to relation names; wildcard effect
    arguments (initializers clearing a whole relation) become
    assignments of the empty relational term. *)
val procedure :
  Asig.t ->
  Schema.rel_decl list ->
  (string -> (string, string) result) ->
  Sdesc.t ->
  (Schema.proc, string) result

(** Synthesize a whole schema from a specification signature and its
    structured descriptions: one relation per query (uppercased name),
    one procedure per description. The result passes
    {!Fdbs_rpr.Schema.check} and is ready for {!Check23.check}.
    Failures are structured {!Fdbs_kernel.Error.t} values whose message
    carries the classic string. *)
val schema :
  name:string -> Asig.t -> Sdesc.t list -> (Schema.t, Fdbs_kernel.Error.t) result
