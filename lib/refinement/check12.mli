(** Correctness of a first-to-second level refinement (paper Sections
    4.3–4.4), checked by bounded model exploration.

    The checker explores the reachable quotient graph of T2's updates
    over a finite parameter domain, turns it into a temporal universe
    through I, checks every axiom of T1 at every reachable state —
    static axioms give property (b) "every reachable state is valid",
    modal axioms property (d) "transition consistency" — and enumerates
    all valid states to establish property (c) "every valid state is
    reachable". *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_algebra
open Fdbs_temporal

type report = {
  states : int;  (** reachable states explored *)
  truncated : bool;
  interp_errors : string list;
  axiom_reports : Check.report list;
      (** per-axiom failures over the reachable universe *)
  unreachable_valid : Structure.t list;
      (** valid states (over the domain) not reached by any update trace *)
  eval_error : string option;  (** evaluation failure, if exploration aborted *)
}

val ok : report -> bool
val pp_report : report Fmt.t

(** The L1 structure induced by a reachable state: db-predicate
    extensions computed through I by evaluating the images on the
    node's trace. *)
val structure_of_node :
  Ttheory.t ->
  Spec.t ->
  Interp12.t ->
  domain:Domain.t ->
  Reach.node ->
  (Structure.t, string) result

(** The temporal universe induced by the reachable graph: one structure
    per node; accessibility = update edges, transitively closed when
    [future] (the default — the paper reads R(A,B) as "B is a future
    state of A"). *)
val universe_of_graph :
  ?future:bool ->
  ?jobs:int ->
  Ttheory.t ->
  Spec.t ->
  Interp12.t ->
  Reach.graph ->
  (Universe.t, string) result

(** All structures over the domain satisfying T1's static axioms: the
    set V of valid states (paper Section 4.4(b)). Exponential in the
    domain; keep domains small. *)
val valid_states : ?jobs:int -> Ttheory.t -> domain:Domain.t -> Structure.t list

(** Run the full first-to-second level refinement check over [domain]
    (defaults to the spec's base domain). Structure building,
    valid-state enumeration and the reachability search are swept in
    parallel over [config]'s job count (default
    {!Fdbs_kernel.Pool.default_jobs}); the report is independent of
    it. *)
val check :
  ?limit:int ->
  ?domain:Domain.t ->
  ?future:bool ->
  ?config:Config.t ->
  Ttheory.t ->
  Spec.t ->
  Interp12.t ->
  report

(** The paper's closing remark on property (c): "not all valid
    transitions will be realized by our repertoire of update
    functions". Among ordered pairs of distinct valid states satisfying
    every transition axiom read as a one-step constraint, how many are
    realized by a single update? Returns (realized, valid-transitions);
    meant for small domains. *)
val transition_coverage :
  Ttheory.t -> Spec.t -> Interp12.t -> domain:Domain.t -> (int * int, string) result
