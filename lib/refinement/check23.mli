(** Correctness of a second-to-third level refinement (paper Sections
    5.3–5.4), checked semantically.

    Following the paper, K induces a mapping N from universes of L3 into
    finitely generated structures of L2: the state carrier is generated
    by the update terms, each denoting the database reached by running
    the corresponding procedures from the initializer. T3 correctly
    refines T2 iff N(U) is a model of T2 — every conditional equation of
    A2 is valid. The checker verifies this over all reachable databases
    for all parameter values from a finite domain, mirroring the paper's
    induction on the length of the generating term. *)

open Fdbs_algebra
open Fdbs_rpr

type violation = {
  equation : string;
  valuation : (string * string) list;  (** variable ↦ value/db rendering *)
  detail : string;
}

type report = {
  databases : int;  (** distinct reachable databases *)
  truncated : bool;
  mapping_errors : string list;
  violations : violation list;
  checked : int;  (** equation instances checked *)
  exec_error : string option;
}

val ok : report -> bool
val pp_violation : violation Fmt.t
val pp_report : report Fmt.t

(** All databases reachable from the initializers by procedure calls
    with parameters from the environment's domain, deduplicated; the
    finitely generated state carrier of the induced model N(U). Raises
    [Invalid_argument] on execution errors. *)
val reachable_dbs :
  Semantics.env -> Interp23.t -> Asig.t -> limit:int -> Db.t list * bool

(** Run the full second-to-third level refinement check: every equation
    of T2, over every reachable database and all parameter values from
    the environment's domain. [config] supplies the parallel sweep
    width (default {!Fdbs_kernel.Pool.default_jobs}) and an optional
    fresh per-call budget; the report is deterministic and independent
    of the job count. *)
val check :
  ?limit:int ->
  ?config:Fdbs_kernel.Config.t ->
  Spec.t ->
  Semantics.env ->
  Interp23.t ->
  report
