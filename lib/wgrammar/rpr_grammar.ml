(** The W-grammar of RPR schemas (paper Section 5.1.1).

    The grammar generates exactly the well-formed schema texts of
    {!Fdbs_rpr.Rparser}'s concrete syntax, {e including} the
    context-sensitive restriction beyond BNF's reach: every relational
    program variable used in the OPL part has been declared in the SCL
    part. The mechanism is the standard vW one: the start rule carries a
    free metanotion DECLS (the list of declared names); consistent
    substitution forces the DECLS spelled by the declaration section to
    be the same DECLS every use-site checks membership in, through the
    predicate hypernotion "NAME isin DECLS" that derives the empty
    string exactly when NAME's value occurs in DECLS's value.

    Two instance-dependent ingredients are computed from the input
    token stream, as the recognition engine requires: the NAME
    metarules (one production per identifier occurring in the text) and
    the candidate values for the free metanotions NAME and DECLS. *)

open Fdbs_kernel

let p s = Wg.Proto s
let m s = Wg.Meta s
let nt l = Wg.Nt l
let mk l = Wg.Mark l
let rule lhs alts = { Wg.lhs; alts }

let keywords =
  [
    "schema"; "relation"; "const"; "constraint"; "proc"; "end"; "if"; "then";
    "else"; "while"; "do"; "test"; "insert"; "delete"; "skip"; "u"; "forall";
    "exists"; "true"; "false"; "isin";
  ]

(** Protonotion token stream of a schema source text. *)
let tokens_of_source (src : string) : string list =
  Lexer.tokenize src
  |> List.filter_map (fun (l : Lexer.located) ->
         match l.Lexer.tok with
         | Lexer.Ident s | Lexer.Uident s -> Some s
         | Lexer.Int n -> Some (string_of_int n)
         | Lexer.Str s -> Some s
         | Lexer.Sym s -> Some s
         | Lexer.Eof -> None)

let identifiers (tokens : string list) : string list =
  tokens
  |> List.filter (fun t ->
         String.length t > 0
         && (let c = t.[0] in
             (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
         && not (List.mem t keywords))
  |> List.sort_uniq compare

(** Names declared by "relation NAME(...)" in the token stream. *)
let declared_relations (tokens : string list) : string list =
  let rec go acc = function
    | "relation" :: name :: rest -> go (name :: acc) rest
    | _ :: rest -> go acc rest
    | [] -> List.rev acc
  in
  go [] tokens

(* The fixed rule set, parameterized only through the metarules. *)
let hyperrules : Wg.hyperrule list =
  let d = m "DECLS" in
  let wff = [ p "wff"; d ] in
  [
    (* schema NAME <scl> <consts> <constraints> <opl> end[-schema] *)
    rule [ p "start" ]
      [
        [
          mk [ p "schema" ];
          mk [ m "NAME" ];
          nt [ p "scl"; d ];
          nt [ p "consts" ];
          nt [ p "constraints"; d ];
          nt [ p "opl"; d ];
          nt [ p "epilogue" ];
        ];
      ];
    (* optional integrity constraints, each a closed wff over DECLS *)
    rule [ p "constraints"; d ]
      [
        [];
        [
          mk [ p "constraint" ]; mk [ m "NAME" ]; mk [ p ":" ]; nt wff;
          nt [ p "constraints"; d ];
        ];
      ];
    rule [ p "epilogue" ]
      [ [ mk [ p "end" ] ]; [ mk [ p "end" ]; mk [ p "-" ]; mk [ p "schema" ] ] ];
    (* SCL: the declarations spell out DECLS, name by name. *)
    rule
      [ p "scl"; m "NAME" ]
      [ [ nt [ p "reldecl"; m "NAME" ] ] ];
    rule
      [ p "scl"; m "NAME"; m "DECLS" ]
      [ [ nt [ p "reldecl"; m "NAME" ]; nt [ p "scl"; m "DECLS" ] ] ];
    rule
      [ p "reldecl"; m "NAME" ]
      [
        [
          mk [ p "relation" ];
          mk [ m "NAME" ];
          mk [ p "(" ];
          nt [ p "sorts" ];
          mk [ p ")" ];
        ];
      ];
    rule [ p "sorts" ]
      [
        [ mk [ m "NAME" ] ];
        [ mk [ m "NAME" ]; mk [ p "," ]; nt [ p "sorts" ] ];
      ];
    (* optional constant declarations *)
    rule [ p "consts" ]
      [
        [];
        [
          mk [ p "const" ]; mk [ m "NAME" ]; mk [ p ":" ]; mk [ m "NAME2" ];
          nt [ p "consts" ];
        ];
      ];
    (* OPL: one or more procedures, each carrying DECLS. *)
    rule [ p "opl"; d ]
      [ [ nt [ p "proc"; d ] ]; [ nt [ p "proc"; d ]; nt [ p "opl"; d ] ] ];
    rule [ p "proc"; d ]
      [
        [
          mk [ p "proc" ];
          mk [ m "NAME" ];
          mk [ p "(" ];
          nt [ p "formals" ];
          mk [ p ")" ];
          mk [ p "=" ];
          nt [ p "stmt"; d ];
        ];
      ];
    rule [ p "formals" ] [ []; [ nt [ p "formallist" ] ] ];
    rule [ p "formallist" ]
      [
        [ mk [ m "NAME" ]; mk [ p ":" ]; mk [ m "NAME2" ] ];
        [
          mk [ m "NAME" ]; mk [ p ":" ]; mk [ m "NAME2" ]; mk [ p "," ];
          nt [ p "formallist" ];
        ];
      ];
    (* membership predicate: "NAME isin DECLS" derives ε iff member *)
    rule [ m "NAME"; p "isin"; m "NAME" ] [ [] ];
    rule [ m "NAME"; p "isin"; m "NAME"; m "DECLS" ] [ [] ];
    rule
      [ m "NAME"; p "isin"; m "NAME2"; m "DECLS" ]
      [ [ nt [ m "NAME"; p "isin"; m "DECLS" ] ] ];
    (* statements *)
    rule [ p "stmt"; d ]
      [
        [ nt [ p "seq"; d ] ];
        [ nt [ p "seq"; d ]; mk [ p "u" ]; nt [ p "stmt"; d ] ];
      ];
    rule [ p "seq"; d ]
      [
        [ nt [ p "prim"; d ] ];
        [ nt [ p "prim"; d ]; mk [ p ";" ]; nt [ p "seq"; d ] ];
      ];
    rule [ p "prim"; d ]
      [
        [ mk [ p "(" ]; nt [ p "stmt"; d ]; mk [ p ")" ] ];
        [ mk [ p "(" ]; nt [ p "stmt"; d ]; mk [ p ")" ]; mk [ p "*" ] ];
        [ mk [ p "skip" ] ];
        [ mk [ p "insert" ]; nt [ p "relapp"; d ] ];
        [ mk [ p "delete" ]; nt [ p "relapp"; d ] ];
        [ mk [ p "test" ]; mk [ p "(" ]; nt wff; mk [ p ")" ] ];
        [
          mk [ p "if" ]; mk [ p "(" ]; nt wff; mk [ p ")" ]; mk [ p "then" ];
          nt [ p "prim"; d ];
        ];
        [
          mk [ p "if" ]; mk [ p "(" ]; nt wff; mk [ p ")" ]; mk [ p "then" ];
          nt [ p "prim"; d ]; mk [ p "else" ]; nt [ p "prim"; d ];
        ];
        [
          mk [ p "while" ]; mk [ p "(" ]; nt wff; mk [ p ")" ]; mk [ p "do" ];
          nt [ p "prim"; d ];
        ];
        (* relational assignment, with the declaredness check *)
        [
          mk [ m "NAME" ];
          nt [ m "NAME"; p "isin"; m "DECLS" ];
          mk [ p ":=" ];
          mk [ p "{" ];
          mk [ p "(" ];
          nt [ p "binders" ];
          mk [ p ")" ];
          mk [ p "|" ];
          nt wff;
          mk [ p "}" ];
        ];
        (* scalar assignment *)
        [ mk [ m "NAME" ]; mk [ p ":=" ]; nt [ p "trm" ] ];
      ];
    (* relation application R(t̄), declared-check included *)
    rule [ p "relapp"; d ]
      [
        [
          mk [ m "NAME" ];
          nt [ m "NAME"; p "isin"; m "DECLS" ];
          mk [ p "(" ];
          nt [ p "args" ];
          mk [ p ")" ];
        ];
      ];
    rule [ p "args" ]
      [ [ nt [ p "trm" ] ]; [ nt [ p "trm" ]; mk [ p "," ]; nt [ p "args" ] ] ];
    rule [ p "trm" ] [ [ mk [ m "NAME" ] ] ];
    rule [ p "binders" ]
      [
        [ mk [ m "NAME" ]; mk [ p ":" ]; mk [ m "NAME2" ] ];
        [
          mk [ m "NAME" ]; mk [ p ":" ]; mk [ m "NAME2" ]; mk [ p "," ];
          nt [ p "binders" ];
        ];
      ];
    (* wff precedence chain, every level carrying DECLS *)
    rule [ p "wff"; d ]
      [
        [ nt [ p "imp"; d ] ];
        [ nt [ p "imp"; d ]; mk [ p "<->" ]; nt [ p "wff"; d ] ];
      ];
    rule [ p "imp"; d ]
      [
        [ nt [ p "or"; d ] ];
        [ nt [ p "or"; d ]; mk [ p "->" ]; nt [ p "imp"; d ] ];
      ];
    rule [ p "or"; d ]
      [
        [ nt [ p "and"; d ] ];
        [ nt [ p "and"; d ]; mk [ p "|" ]; nt [ p "or"; d ] ];
      ];
    rule [ p "and"; d ]
      [
        [ nt [ p "un"; d ] ];
        [ nt [ p "un"; d ]; mk [ p "&" ]; nt [ p "and"; d ] ];
      ];
    rule [ p "un"; d ]
      [
        [ mk [ p "~" ]; nt [ p "un"; d ] ];
        [ mk [ p "forall" ]; nt [ p "binders" ]; mk [ p "." ]; nt [ p "un"; d ] ];
        [ mk [ p "exists" ]; nt [ p "binders" ]; mk [ p "." ]; nt [ p "un"; d ] ];
        [ nt [ p "atom"; d ] ];
      ];
    rule [ p "atom"; d ]
      [
        [ mk [ p "true" ] ];
        [ mk [ p "false" ] ];
        [ mk [ p "(" ]; nt wff; mk [ p ")" ] ];
        [ nt [ p "relapp"; d ] ];
        [ nt [ p "trm" ]; mk [ p "=" ]; nt [ p "trm" ] ];
        [ nt [ p "trm" ]; mk [ p "/=" ]; nt [ p "trm" ] ];
      ];
  ]

(** Build the grammar instance and recognition configuration for a
    token stream: NAME's metarules enumerate the identifiers occurring
    in the text; candidates supply the free NAMEs (any identifier) and
    the free DECLS (the relation list pre-scanned from the SCL part). *)
let instance (tokens : string list) : Wg.t * Recognize.config =
  let ids = identifiers tokens in
  let grammar : Wg.t =
    {
      metarules =
        [
          ("NAME", List.map (fun id -> [ p id ]) ids);
          ("DECLS", [ [ m "NAME" ]; [ m "NAME"; m "DECLS" ] ]);
        ];
      rules = hyperrules;
      start = [ p "start" ];
    }
  in
  let decls = declared_relations tokens in
  let config =
    {
      Recognize.candidates =
        (fun meta ->
          match meta with
          | "NAME" -> List.map (fun id -> [ id ]) ids
          | "DECLS" -> if decls = [] then [] else [ decls ]
          | _ -> []);
      max_expansion = 2_000_000;
    }
  in
  (grammar, config)

(** Recognize a schema source text against the W-grammar: the paper's
    "verify that the specification is syntactically correct" step
    (Section 5.4). *)
let recognizes (src : string) : bool =
  let tokens = tokens_of_source src in
  let grammar, config = instance tokens in
  Recognize.recognize ~config grammar tokens

let check_source (src : string) : (unit, string) result =
  if recognizes src then Ok ()
  else Error "schema text is not generated by the RPR W-grammar"
