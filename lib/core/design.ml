(** A complete three-level database application design (paper Section
    2): the information-level theory T1, the functions-level algebraic
    specification T2, the representation-level schema T3, and the
    refinement bindings I (T1→T2) and K (T2→T3) — plus the verification
    pipeline that discharges every obligation the paper states.

    This is the top of the framework: build one {!t} and call
    {!verify}. *)

open Fdbs_kernel
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_rpr
open Fdbs_refine

type t = {
  name : string;
  info : Ttheory.t;  (** T1 = (L1, A1), temporal theory *)
  functions : Spec.t;  (** T2 = (L2, A2), algebraic specification *)
  representation : Schema.t;  (** T3, RPR schema *)
  interp : Interp12.t;  (** interpretation I *)
  mapping : Interp23.t;  (** mapping K *)
}

(** Assemble a design with explicit bindings. *)
let make ~name ~info ~functions ~representation ~interp ~mapping =
  { name; info; functions; representation; interp; mapping }

(** Assemble a design using the canonical one-to-one correspondence of
    db-predicates, query functions and relation names (paper Section 6:
    the "coincidence" that "proved to be convenient"). *)
let canonical ~name ~(info : Ttheory.t) ~(functions : Spec.t)
    ~(representation : Schema.t) : (t, Error.t) result =
  let fail m = Result.Error (Error.make Error.Exec Error.Exec_failure m) in
  match Interp12.canonical info.Ttheory.signature functions.Spec.signature with
  | Error e -> fail ("interpretation I: " ^ e)
  | Ok interp ->
    (match Interp23.canonical functions.Spec.signature representation with
     | Error e -> fail ("mapping K: " ^ e)
     | Ok mapping ->
       Ok { name; info; functions; representation; interp; mapping })

let canonical_exn ~name ~info ~functions ~representation =
  match canonical ~name ~info ~functions ~representation with
  | Ok d -> d
  | Error e -> invalid_arg ("Design.canonical_exn: " ^ e.Error.message)

(* ------------------------------------------------------------------ *)
(* Cross-level agreement                                               *)
(* ------------------------------------------------------------------ *)

type mismatch = {
  mis_query : string;
  mis_params : Value.t list;
  mis_trace : Strace.t;
  mis_level2 : Value.t;
  mis_level3 : Value.t;
}

let pp_mismatch ppf (m : mismatch) =
  Fmt.pf ppf "%s(%a) on %a: level 2 says %a, level 3 says %a" m.mis_query
    Fmt.(list ~sep:(any ", ") Value.pp)
    m.mis_params Strace.pp m.mis_trace Value.pp m.mis_level2 Value.pp m.mis_level3

exception Agreement_error of string

(** Answer every query at both the functions level (conditional
    rewriting over the trace) and the representation level (running the
    procedures, then evaluating K's wff) on every trace up to [depth];
    return the number of comparisons and any disagreements. This is the
    executable form of the paper's Section 6 observation that the same
    information is recoverable at every level. *)
let agreement ?domain ~(depth : int) (d : t) : int * mismatch list =
  let spec = d.functions in
  let sg2 = spec.Spec.signature in
  let domain = match domain with Some dm -> dm | None -> spec.Spec.base_domain in
  let env = Semantics.env ~domain d.representation in
  let run_trace trace =
    let rec db_of = function
      | Strace.Init u ->
        (match Interp23.find_update d.mapping u with
         | None -> raise (Agreement_error (Fmt.str "no procedure for %s" u))
         | Some p ->
           (match Semantics.call_det env p [] (Schema.empty_db d.representation) with
            | Ok db -> db
            | Error e -> raise (Agreement_error e.Error.message)))
      | Strace.Apply (u, args, rest) ->
        let db = db_of rest in
        (match Interp23.find_update d.mapping u with
         | None -> raise (Agreement_error (Fmt.str "no procedure for %s" u))
         | Some p ->
           (match Semantics.call_det env p args db with
            | Ok db -> db
            | Error e -> raise (Agreement_error e.Error.message)))
    in
    db_of trace
  in
  let count = ref 0 in
  let mismatches = ref [] in
  let traces =
    List.concat_map
      (fun k -> Strace.enumerate sg2 ~domain ~depth:k)
      (List.init (depth + 1) Fun.id)
  in
  List.iter
    (fun trace ->
      let db = run_trace trace in
      List.iter
        (fun (q : Asig.op) ->
          let carriers = List.map (Domain.carrier domain) (Asig.param_args q) in
          List.iter
            (fun params ->
              incr count;
              let level2 =
                match Eval.query_on_trace ~domain spec ~q:q.Asig.oname ~params trace with
                | Ok v -> v
                | Error e -> raise (Agreement_error (Fmt.str "%a" Eval.pp_error e))
              in
              let level3 =
                match Interp23.apply_query d.mapping q.Asig.oname params with
                | Error e -> raise (Agreement_error e)
                | Ok wff -> Value.Bool (Semantics.query env db wff)
              in
              if not (Value.equal level2 level3) then
                mismatches :=
                  {
                    mis_query = q.Asig.oname;
                    mis_params = params;
                    mis_trace = trace;
                    mis_level2 = level2;
                    mis_level3 = level3;
                  }
                  :: !mismatches)
            (Util.cartesian carriers))
        sg2.Asig.queries)
    traces;
  (!count, List.rev !mismatches)

(* ------------------------------------------------------------------ *)
(* The verification pipeline                                           *)
(* ------------------------------------------------------------------ *)

type verification = {
  schema_errors : string list;  (** T3 well-formedness (context-sensitive) *)
  completeness : Completeness.report;  (** 4.4(a) sufficient completeness *)
  refinement12 : Check12.report;  (** 4.4(b)-(d) over a bounded domain *)
  refinement23 : Check23.report;  (** 5.4: A2 valid in the induced model *)
  agreement_checked : int;  (** cross-level query comparisons *)
  agreement_mismatches : mismatch list;
}

let verified (v : verification) =
  v.schema_errors = []
  && Completeness.is_complete v.completeness
  && Check12.ok v.refinement12
  && Check23.ok v.refinement23
  && v.agreement_mismatches = []

(** Run every check of the paper over a bounded domain ([domain]
    defaults to T2's base domain; [depth] bounds ground probing and the
    cross-level agreement sweep; [jobs] spreads the refinement sweeps
    over that many domains, defaulting to
    {!Fdbs_kernel.Pool.default_jobs}, without changing any result). *)
(* Each pipeline phase is a [design] span when tracing is on; the
   explicit lets fix the phase order (record-field evaluation order is
   unspecified), so the span tree is deterministic. *)
let phase name f =
  if Trace.enabled () then Trace.with_span ~cat:"design" name f else f ()

let verify ?domain ?(depth = 2) ?config (d : t) : verification =
  let domain =
    match domain with Some dm -> dm | None -> d.functions.Spec.base_domain
  in
  let env = Semantics.env ~domain d.representation in
  let agreement_checked, agreement_mismatches =
    phase "design.agreement" (fun () ->
        try agreement ~domain ~depth d with Agreement_error e ->
          (0, [ { mis_query = "<error: " ^ e ^ ">";
                  mis_params = []; mis_trace = Strace.Init "?";
                  mis_level2 = Value.Bool false; mis_level3 = Value.Bool false } ]))
  in
  let schema_errors = phase "design.schema" (fun () -> Schema.check d.representation) in
  let completeness =
    phase "design.completeness" (fun () -> Completeness.check ~depth d.functions)
  in
  let refinement12 =
    phase "design.check12" (fun () ->
        Check12.check ~domain ?config d.info d.functions d.interp)
  in
  let refinement23 =
    phase "design.check23" (fun () -> Check23.check ?config d.functions env d.mapping)
  in
  {
    schema_errors;
    completeness;
    refinement12;
    refinement23;
    agreement_checked;
    agreement_mismatches;
  }

let pp_verification ppf (v : verification) =
  Fmt.pf ppf
    "@[<v>schema well-formedness: %s@,sufficient completeness: %a@,refinement T1->T2: %a@,refinement T2->T3: %a@,cross-level agreement: %s@]"
    (match v.schema_errors with
     | [] -> "ok"
     | errs -> String.concat "; " errs)
    Completeness.pp_report v.completeness Check12.pp_report v.refinement12
    Check23.pp_report v.refinement23
    (if v.agreement_mismatches = [] then
       Fmt.str "ok (%d comparisons)" v.agreement_checked
     else
       Fmt.str "%d MISMATCHES out of %d" (List.length v.agreement_mismatches)
         v.agreement_checked)
