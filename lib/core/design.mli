(** A complete three-level database application design (paper Section
    2): the information-level theory T1, the functions-level algebraic
    specification T2, the representation-level schema T3, and the
    refinement bindings I (T1→T2) and K (T2→T3) — plus the verification
    pipeline that discharges every obligation the paper states.

    This is the top of the framework: build one {!t} (usually with
    {!canonical}) and call {!verify}. *)

open Fdbs_kernel
open Fdbs_temporal
open Fdbs_algebra
open Fdbs_refine

type t = {
  name : string;
  info : Ttheory.t;  (** T1 = (L1, A1), temporal theory *)
  functions : Spec.t;  (** T2 = (L2, A2), algebraic specification *)
  representation : Fdbs_rpr.Schema.t;  (** T3, RPR schema *)
  interp : Interp12.t;  (** interpretation I *)
  mapping : Interp23.t;  (** mapping K *)
}

(** Assemble a design with explicit bindings. *)
val make :
  name:string ->
  info:Ttheory.t ->
  functions:Spec.t ->
  representation:Fdbs_rpr.Schema.t ->
  interp:Interp12.t ->
  mapping:Interp23.t ->
  t

(** Assemble a design using the canonical one-to-one correspondence of
    db-predicates, query functions and relation names (paper Section 6:
    the "coincidence" that "proved to be convenient"). *)
val canonical :
  name:string ->
  info:Ttheory.t ->
  functions:Spec.t ->
  representation:Fdbs_rpr.Schema.t ->
  (t, Fdbs_kernel.Error.t) result

val canonical_exn :
  name:string ->
  info:Ttheory.t ->
  functions:Spec.t ->
  representation:Fdbs_rpr.Schema.t ->
  t

(** A query answered differently by levels 2 and 3. *)
type mismatch = {
  mis_query : string;
  mis_params : Value.t list;
  mis_trace : Strace.t;
  mis_level2 : Value.t;
  mis_level3 : Value.t;
}

val pp_mismatch : mismatch Fmt.t

exception Agreement_error of string

(** Answer every query at both the functions level (conditional
    rewriting over the trace) and the representation level (running
    the procedures, then evaluating K's wff) on every trace up to
    [depth]; return the number of comparisons and any disagreements —
    the executable form of the paper's Section 6 observation that the
    same information is recoverable at every level. *)
val agreement : ?domain:Domain.t -> depth:int -> t -> int * mismatch list

type verification = {
  schema_errors : string list;  (** T3 well-formedness (context-sensitive) *)
  completeness : Completeness.report;  (** 4.4(a) sufficient completeness *)
  refinement12 : Check12.report;  (** 4.4(b)-(d) over a bounded domain *)
  refinement23 : Check23.report;  (** 5.4: A2 valid in the induced model *)
  agreement_checked : int;  (** cross-level query comparisons *)
  agreement_mismatches : mismatch list;
}

val verified : verification -> bool

(** Run every check of the paper over a bounded domain ([domain]
    defaults to T2's base domain; [depth] bounds ground probing and the
    cross-level agreement sweep; [config] spreads the refinement sweeps
    over its job count — default
    {!Fdbs_kernel.Pool.default_jobs} — without changing any result,
    and may impose a per-check budget). *)
val verify :
  ?domain:Domain.t -> ?depth:int -> ?config:Fdbs_kernel.Config.t -> t -> verification

val pp_verification : verification Fmt.t
