(** The cost-based query planner: compile once, optimize, cache, and
    evaluate against live database states.

    Plans are cached under a structural hash of the relational term or
    wff, keyed per schema via {!Schema.fingerprint}; negative results
    (bodies outside the safe fragment) are cached too, so the naive
    fallback never pays repeated compilation attempts. The cache is a
    process-wide table behind a mutex — cheap relative to planning, and
    safe across {!Fdbs_kernel.Pool} domains, which share the process. *)

open Fdbs_kernel
open Fdbs_logic

(* A cached entry retains what was planned so hash collisions resolve
   by structural comparison, never by trusting the hash. *)
type slot =
  | Srterm of Stmt.rterm * Relalg.expr option
  | Swff of Formula.t * Relalg.expr option

let table : (int, slot list) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()
let hits = Atomic.make 0
let misses = Atomic.make 0

(* Bound the table so a long-running process interleaving many schemas
   cannot grow it without limit; resetting just re-plans. *)
let max_entries = 1024

let stats () = (Atomic.get hits, Atomic.get misses)

let clear () =
  Mutex.protect lock (fun () -> Hashtbl.reset table);
  Atomic.set hits 0;
  Atomic.set misses 0

let mix h x = (h * 16777619) lxor x

let rterm_key (sc : Schema.t) (rt : Stmt.rterm) =
  let h = mix (Schema.fingerprint sc) 59 in
  let h = List.fold_left (fun h v -> mix h (Term.var_hash v)) h rt.Stmt.rt_vars in
  mix h (Formula.hash rt.Stmt.rt_body)

let wff_key (sc : Schema.t) (f : Formula.t) =
  mix (mix (Schema.fingerprint sc) 61) (Formula.hash f)

let rterm_equal (a : Stmt.rterm) (b : Stmt.rterm) =
  List.equal Term.var_equal a.Stmt.rt_vars b.Stmt.rt_vars
  && Formula.equal a.Stmt.rt_body b.Stmt.rt_body

let lookup key match_slot =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table key with
      | None -> None
      | Some slots -> List.find_map match_slot slots)

let store key slot =
  Mutex.protect lock (fun () ->
      if Hashtbl.length table >= max_entries then Hashtbl.reset table;
      let slots = Option.value ~default:[] (Hashtbl.find_opt table key) in
      Hashtbl.replace table key (slot :: slots))

let optimize (sc : Schema.t) e =
  Relalg.optimize ~rel_arity:(fun r -> List.length (Schema.sorts_of sc r)) e

(** The optimized plan of a relational term under a schema, from the
    cache when warm; [None] when the body is outside the safe
    fragment. *)
let plan_rterm (sc : Schema.t) (rt : Stmt.rterm) : Relalg.expr option =
  let key = rterm_key sc rt in
  let cached =
    lookup key (function
      | Srterm (rt', plan) when rterm_equal rt rt' -> Some plan
      | Srterm _ | Swff _ -> None)
  in
  match cached with
  | Some plan ->
    Atomic.incr hits;
    plan
  | None ->
    Atomic.incr misses;
    let plan = Option.map (optimize sc) (Relalg.compile rt) in
    store key (Srterm (rt, plan));
    plan

(** The optimized 0-ary plan of a closed wff; [None] when open or
    unsafe. *)
let plan_wff (sc : Schema.t) (f : Formula.t) : Relalg.expr option =
  let key = wff_key sc f in
  let cached =
    lookup key (function
      | Swff (f', plan) when Formula.equal f f' -> Some plan
      | Srterm _ | Swff _ -> None)
  in
  match cached with
  | Some plan ->
    Atomic.incr hits;
    plan
  | None ->
    Atomic.incr misses;
    let plan = Option.map (optimize sc) (Relalg.compile_wff f) in
    store key (Swff (f, plan));
    plan

let not_compilable_error what offender =
  Error.raise_error Error.Exec
    (Error.Not_compilable (Formula.to_string offender))
    (Fmt.str "%s not compilable: %a falls outside the safe fragment" what
       Formula.pp offender)

(** Evaluate a relational term through the plan cache. [`Compiled]
    raises a structured {!Error.Error} outside the safe fragment;
    [`Auto] (default) falls back to the naive evaluator. *)
let eval_rterm ?(strategy = `Auto) ~(schema : Schema.t) ~domain ?consts (db : Db.t)
  (rt : Stmt.rterm) : Relation.t =
  Fault.hit "relalg.eval";
  let naive () = Relcalc.eval_rterm_naive ~domain ?consts db rt in
  match strategy with
  | `Naive -> naive ()
  | `Compiled ->
    (match plan_rterm schema rt with
     | Some e -> Relalg.eval ~domain ?consts db e
     | None ->
       (match Relalg.compile_explain rt with
        | Ok _ -> assert false
        | Error offender -> not_compilable_error "body" offender))
  | `Auto ->
    (match plan_rterm schema rt with
     | Some e -> Relalg.eval ~domain ?consts db e
     | None -> naive ())

(** Truth of a closed wff through the plan cache: an emptiness test on
    the compiled 0-ary plan. [`Auto] (default) falls back to
    {!Relcalc.holds} when the wff is outside the safe fragment;
    [`Compiled] raises the structured error instead. *)
let holds ?(strategy = `Auto) ~(schema : Schema.t) ~domain ?consts (db : Db.t)
  (f : Formula.t) : bool =
  let naive () = Relcalc.holds ~domain ?consts db f in
  match strategy with
  | `Naive -> naive ()
  | `Compiled ->
    (match plan_wff schema f with
     | Some e -> not (Relation.is_empty (Relalg.eval ~domain ?consts db e))
     | None ->
       (match Relalg.compile_wff_explain f with
        | Ok _ -> assert false
        | Error offender -> not_compilable_error "wff" offender))
  | `Auto ->
    (match plan_wff schema f with
     | Some e -> not (Relation.is_empty (Relalg.eval ~domain ?consts db e))
     | None -> naive ())
