(** The cost-based query planner: compile once, optimize, cache, and
    evaluate against live database states.

    Plans are cached under a structural hash of the relational term or
    wff, keyed per schema via {!Schema.fingerprint}; negative results
    (bodies outside the safe fragment) are cached too, so the naive
    fallback never pays repeated compilation attempts. The cache is a
    process-wide table behind a mutex — cheap relative to planning, and
    safe across {!Fdbs_kernel.Pool} domains, which share the process. *)

open Fdbs_kernel
open Fdbs_logic

(* A cached entry retains the schema and the term that were planned,
   so a key collision resolves by structural comparison — never by
   trusting the hash. Earlier versions compared only the formula: two
   different schemas whose fingerprints collide on a shared body would
   silently exchange plans (optimized for the wrong relation arities,
   hence wrong results, not just wrong costs). *)
type slot =
  | Srterm of Schema.t * Stmt.rterm * Relalg.expr option
  | Swff of Schema.t * Formula.t * Relalg.expr option

let table : (int, slot list) Hashtbl.t = Hashtbl.create 256
let lock = Mutex.create ()
let c_hits = Metrics.counter "planner.cache.hit"
let c_misses = Metrics.counter "planner.cache.miss"
let h_plan_us = Metrics.histogram "planner.plan_us"

(* Bound the table so a long-running process interleaving many schemas
   cannot grow it without limit; resetting just re-plans. *)
let max_entries = 1024

let stats () = (Metrics.value c_hits, Metrics.value c_misses)

(* Materialized constraint plans (the differential layer below) live
   in their own table; clear() resets both. *)
type mat = {
  m_schema : Schema.t;
  m_wff : Formula.t;
  m_state : Db.t;
      (* the committed state [m_node] reflects, compared by reference:
         consecutive commits on a store rebind the same Db.t value, so
         physical equality is exact and O(1) *)
  m_node : Delta.node option;
      (* [None] marks a wff outside the safe fragment: nothing to
         materialize, every commit re-evaluates naively (the
         non-incremental analogue of a cached [Not_compilable]) *)
  m_verdict : bool;
}

let mat_table : (int, mat list) Hashtbl.t = Hashtbl.create 64
let mat_lock = Mutex.create ()
let c_delta_hits = Metrics.counter "planner.delta_hit"
let c_delta_fallback = Metrics.counter "planner.delta_fallback"
let c_delta_miss = Metrics.counter "planner.delta_miss"

(* Differential maintenance is on by default; `Naive strategy, bench
   comparisons, and tests can turn it off process-wide. *)
let materialization = Atomic.make true
let set_materialization b = Atomic.set materialization b
let materialization_active () = Atomic.get materialization

let delta_stats () =
  ( Metrics.value c_delta_hits,
    Metrics.value c_delta_fallback,
    Metrics.value c_delta_miss )

let clear () =
  Mutex.protect lock (fun () -> Hashtbl.reset table);
  Mutex.protect mat_lock (fun () -> Hashtbl.reset mat_table);
  Metrics.set c_hits 0;
  Metrics.set c_misses 0;
  Metrics.set c_delta_hits 0;
  Metrics.set c_delta_fallback 0;
  Metrics.set c_delta_miss 0

let mix h x = (h * 16777619) lxor x

(* Test hook: masking keys down to a few bits forces collisions, so
   the regression suite can exercise the structural slot comparison
   without birthday-searching a 63-bit hash. All bits in production. *)
let key_mask = ref (-1)
let set_key_mask m = key_mask := (match m with Some m -> m | None -> -1)

let rterm_key (sc : Schema.t) (rt : Stmt.rterm) =
  let h = mix (Schema.fingerprint sc) 59 in
  let h = List.fold_left (fun h v -> mix h (Term.var_hash v)) h rt.Stmt.rt_vars in
  mix h (Formula.hash rt.Stmt.rt_body) land !key_mask

let wff_key (sc : Schema.t) (f : Formula.t) =
  mix (mix (Schema.fingerprint sc) 61) (Formula.hash f) land !key_mask

let rterm_equal (a : Stmt.rterm) (b : Stmt.rterm) =
  List.equal Term.var_equal a.Stmt.rt_vars b.Stmt.rt_vars
  && Formula.equal a.Stmt.rt_body b.Stmt.rt_body

let optimize (sc : Schema.t) e =
  Relalg.optimize ~rel_arity:(fun r -> List.length (Schema.sorts_of sc r)) e

(* Look up and, on a miss, plan — all under the lock. The first caller
   to miss a key plans and stores; a concurrent caller for the same
   key blocks briefly and then hits. Planning is cheap relative to the
   sweeps it serves, and this keeps hit/miss counts deterministic for
   any job count while never compiling the same body twice. *)
let with_cache key find make_slot compile =
  Mutex.protect lock (fun () ->
      let slots = Option.value ~default:[] (Hashtbl.find_opt table key) in
      match List.find_map find slots with
      | Some plan ->
        Metrics.incr c_hits;
        plan
      | None ->
        Metrics.incr c_misses;
        let t0 = Mclock.now_us () in
        let plan = compile () in
        Metrics.observe_us h_plan_us (Mclock.now_us () -. t0);
        let slots =
          if Hashtbl.length table >= max_entries then begin
            Hashtbl.reset table;
            []
          end
          else slots
        in
        Hashtbl.replace table key (make_slot plan :: slots);
        plan)

(** The optimized plan of a relational term under a schema, from the
    cache when warm; [None] when the body is outside the safe
    fragment. *)
let plan_rterm (sc : Schema.t) (rt : Stmt.rterm) : Relalg.expr option =
  with_cache (rterm_key sc rt)
    (function
      | Srterm (sc', rt', plan)
        when Schema.plan_equal sc sc' && rterm_equal rt rt' -> Some plan
      | Srterm _ | Swff _ -> None)
    (fun plan -> Srterm (sc, rt, plan))
    (fun () -> Option.map (optimize sc) (Relalg.compile rt))

(** The optimized 0-ary plan of a closed wff; [None] when open or
    unsafe. *)
let plan_wff (sc : Schema.t) (f : Formula.t) : Relalg.expr option =
  with_cache (wff_key sc f)
    (function
      | Swff (sc', f', plan)
        when Schema.plan_equal sc sc' && Formula.equal f f' -> Some plan
      | Srterm _ | Swff _ -> None)
    (fun plan -> Swff (sc, f, plan))
    (fun () -> Option.map (optimize sc) (Relalg.compile_wff f))

let not_compilable_error what offender =
  Error.raise_error Error.Exec
    (Error.Not_compilable (Formula.to_string offender))
    (Fmt.str "%s not compilable: %a falls outside the safe fragment" what
       Formula.pp offender)

let strategy_name = function
  | `Naive -> "naive"
  | `Compiled -> "compiled"
  | `Auto -> "auto"

(** Evaluate a relational term through the plan cache. [`Compiled]
    raises a structured {!Error.Error} outside the safe fragment;
    [`Auto] (default) falls back to the naive evaluator.

    Traced as a [planner.eval] span carrying the strategy and the
    result cardinality. The span is emitted per {e evaluation} (a
    cache-independent event), so span trees stay identical for any
    [--jobs N] even though which domain pays a given cache miss is
    scheduling-dependent; planning work shows up in the
    [planner.cache.*] counters and the [planner.plan_us] histogram
    instead. *)
let eval_rterm ?(strategy = `Auto) ~(schema : Schema.t) ~domain ?consts (db : Db.t)
  (rt : Stmt.rterm) : Relation.t =
  Fault.hit "relalg.eval";
  let eval () =
    let naive () = Relcalc.eval_rterm_naive ~domain ?consts db rt in
    match strategy with
    | `Naive -> naive ()
    | `Compiled ->
      (match plan_rterm schema rt with
       | Some e -> Relalg.eval ~domain ?consts db e
       | None ->
         (match Relalg.compile_explain rt with
          | Ok _ -> assert false
          | Error offender -> not_compilable_error "body" offender))
    | `Auto ->
      (match plan_rterm schema rt with
       | Some e -> Relalg.eval ~domain ?consts db e
       | None -> naive ())
  in
  if Trace.enabled () then
    Trace.with_span ~cat:"planner"
      ~args:[ ("strategy", strategy_name strategy) ]
      "planner.eval"
      (fun () ->
        let r = eval () in
        Trace.add_attr "cardinality" (string_of_int (Relation.cardinal r));
        r)
  else eval ()

(** Truth of a closed wff through the plan cache: an emptiness test on
    the compiled 0-ary plan. [`Auto] (default) falls back to
    {!Relcalc.holds} when the wff is outside the safe fragment;
    [`Compiled] raises the structured error instead. *)
let holds ?(strategy = `Auto) ~(schema : Schema.t) ~domain ?consts (db : Db.t)
  (f : Formula.t) : bool =
  let eval () =
    let naive () = Relcalc.holds ~domain ?consts db f in
    match strategy with
    | `Naive -> naive ()
    | `Compiled ->
      (match plan_wff schema f with
       | Some e -> not (Relation.is_empty (Relalg.eval ~domain ?consts db e))
       | None ->
         (match Relalg.compile_wff_explain f with
          | Ok _ -> assert false
          | Error offender -> not_compilable_error "wff" offender))
    | `Auto ->
      (match plan_wff schema f with
       | Some e -> not (Relation.is_empty (Relalg.eval ~domain ?consts db e))
       | None -> naive ())
  in
  if Trace.enabled () then
    Trace.with_span ~cat:"planner"
      ~args:[ ("strategy", strategy_name strategy) ]
      "planner.holds"
      (fun () ->
        let v = eval () in
        Trace.add_attr "verdict" (string_of_bool v);
        v)
  else eval ()

(* ------------------------------------------------------------------ *)
(* Differentially maintained constraint checks                         *)
(* ------------------------------------------------------------------ *)

let mat_find key schema f =
  Mutex.protect mat_lock (fun () ->
      Hashtbl.find_opt mat_table key
      |> Option.value ~default:[]
      |> List.find_opt (fun m ->
             Schema.plan_equal schema m.m_schema && Formula.equal f m.m_wff))

let mat_publish key (m : mat) =
  Mutex.protect mat_lock (fun () ->
      let slots =
        Hashtbl.find_opt mat_table key
        |> Option.value ~default:[]
        |> List.filter (fun m' ->
               not
                 (Schema.plan_equal m.m_schema m'.m_schema
                 && Formula.equal m.m_wff m'.m_wff))
      in
      let slots =
        if Hashtbl.length mat_table >= max_entries && not (Hashtbl.mem mat_table key)
        then begin
          Hashtbl.reset mat_table;
          []
        end
        else slots
      in
      Hashtbl.replace mat_table key (m :: slots))

(** Truth of a closed wff against [after], maintained differentially.

    The caller supplies the committed state the last verdict was
    published against ([before]) and the exact [delta] taking it to
    [after]. On a warm materialization for (schema, wff) whose state is
    [before] — physical equality, exact because commits rebind shared
    state values — the delta is pushed through the per-operator rules
    ([planner.delta_hit], a [delta.apply] span) instead of
    re-evaluating the plan. Anything else — cold cache
    ([planner.delta_miss]), stale state, a delta rule that does not
    apply, or a wff outside the safe fragment
    ([planner.delta_fallback]) — re-evaluates in full, against the
    plan when one exists and naively otherwise.

    Returns the verdict and a {e publish} thunk. The materialization
    cache is only updated when the caller invokes the thunk — [Txn.run]
    does so after the commit (and its journal append) succeeded, so a
    rolled-back transaction leaves the cache reflecting the committed
    state it last published, never the discarded one.

    [shared:false] (ad-hoc constraints, e.g. [Txn] extras) bypasses the
    shared per-schema materialization cache entirely — same verdict,
    no reads from or writes to the cache. [`Naive] strategy, and
    {!set_materialization}[ false], likewise evaluate directly. *)
let holds_delta ?(strategy = `Auto) ~(schema : Schema.t) ~domain ?consts
    ~(before : Db.t) ~(delta : Delta.t) ?(shared = true) (after : Db.t)
    (f : Formula.t) : bool * (unit -> unit) =
  let nop () = () in
  let direct () = (holds ~strategy ~schema ~domain ?consts after f, nop) in
  match strategy with
  | `Naive -> direct ()
  | (`Auto | `Compiled) when not (shared && materialization_active ()) ->
    direct ()
  | (`Auto | `Compiled) as strategy -> begin
    let key = wff_key schema f in
    let publish node verdict () =
      mat_publish key
        { m_schema = schema; m_wff = f; m_state = after; m_node = node;
          m_verdict = verdict }
    in
    match plan_wff schema f with
    | None ->
      (* Outside the safe fragment: nothing to materialize. `Compiled
         keeps its structured error; `Auto re-evaluates naively every
         commit and caches the non-incremental marker. *)
      if strategy = `Compiled then direct ()
      else begin
        Metrics.incr c_delta_fallback;
        let v = Relcalc.holds ~domain ?consts after f in
        (v, publish None v)
      end
    | Some plan ->
      let rebuild () =
        let node = Delta.materialize ~domain ?consts after plan in
        let v = not (Relation.is_empty node.Delta.out) in
        (v, publish (Some node) v)
      in
      match mat_find key schema f with
      | Some { m_state; m_node = Some node; _ } when m_state == before -> begin
        let apply () = Delta.advance ~domain ?consts ~after delta plan node in
        let traced () =
          if Trace.enabled () then
            Trace.with_span ~cat:"planner"
              ~args:[ ("delta", string_of_int (Delta.cardinal delta)) ]
              "delta.apply" apply
          else apply ()
        in
        match traced () with
        | node', _ins, _del ->
          Metrics.incr c_delta_hits;
          let v = not (Relation.is_empty node'.Delta.out) in
          (v, publish (Some node') v)
        | exception Delta.Not_incremental ->
          Metrics.incr c_delta_fallback;
          rebuild ()
      end
      | Some _ ->
        (* stale (another store or an uncommitted branch published in
           between) or previously non-compilable: rebuild from [after] *)
        Metrics.incr c_delta_fallback;
        rebuild ()
      | None ->
        Metrics.incr c_delta_miss;
        rebuild ()
  end
