(** Database states: a value for every relational program variable
    (relation name) and every scalar program variable. Two states of a
    universe differ only in these values (paper Section 5.1.2). *)

open Fdbs_kernel

module SMap : Map.S with type key = string

type t = {
  relations : Relation.t SMap.t;
  scalars : Value.t SMap.t;
}

val empty : t

val with_relation : string -> Relation.t -> t -> t
val with_scalar : string -> Value.t -> t -> t

val relation : t -> string -> Relation.t option
val scalar : t -> string -> Value.t option

(** Raises [Invalid_argument] on undeclared relations. *)
val relation_exn : t -> string -> Relation.t

val relations : t -> (string * Relation.t) list
val scalars : t -> (string * Value.t) list

val equal : t -> t -> bool

(** A structural hash consistent with {!equal}, built from the cached
    per-relation hashes; cheap enough to key visited-state tables in
    fixpoint exploration. *)
val hash : t -> int

(** Union of every relation's active domain. *)
val active_domain : t -> Domain.t

(** Total number of tuples across all relations. *)
val size : t -> int

(** Warm every relation's lazy caches ({!Relation.warm}). States are
    immutable, so a warmed state is a shared snapshot: parallel readers
    take it by reference and probe published indexes instead of
    rebuilding them per worker domain. *)
val warm : t -> unit

val pp : t Fmt.t

(** A canonical digest for deduplication in state-space exploration. *)
val key : t -> string
