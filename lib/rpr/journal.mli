(** A write-ahead journal of committed transactions: line-oriented,
    append-only, one entry (the calls plus a [commit] marker) per
    committed transaction. A transaction interrupted mid-write leaves a
    torn tail that {!load} drops — recovery keeps every complete
    record.

    Replication extends the format with two marker lines that plain
    journals never contain: [epoch N] stamps a leadership term over the
    entries that follow it, and [base N] (first line only, written by
    {!truncate}) records that the first [N] entries of the history live
    in the snapshot next to the journal.

    Durability: {!append} flushes, so a committed entry survives a
    process crash; [~fsync:true] additionally syncs the file
    descriptor, so it survives an OS crash or power loss — the mode
    replication leaders (and [--fsync]) run in. *)

open Fdbs_kernel

type call = string * Value.t list

type entry = { calls : call list }

(** An entry stamped with its replication coordinates: [offset] is its
    1-based absolute position in the full history (entries hidden
    behind a [base] marker still count), [ep] the epoch it was
    committed in (0 in unreplicated journals). *)
type stamped = { offset : int; ep : int; entry : entry }

(** A loaded journal, replication view: the first [base] entries of the
    history live in the snapshot (0 for ordinary journals), [epoch] is
    the highest stamped epoch, [stamped] are the entries present in the
    file in commit order with offsets [base+1 ..], [torn] describes a
    dropped torn tail. *)
type log = {
  base : int;
  epoch : int;
  stamped : stamped list;
  torn : string option;
}

val pp_call : call Fmt.t
val pp_entry : entry Fmt.t

(** The CLI serialization heuristic for call arguments: integer
    literals and the Booleans parse to themselves, anything else is a
    symbolic constant. *)
val value_of_string : string -> Value.t

(** One parsed journal line — the grammar incremental readers
    ({!Replication.refresh}) share with {!load_log}. *)
type line =
  | L_call of call
  | L_commit
  | L_epoch of int
  | L_base of int
  | L_blank
  | L_malformed

val parse_line : string -> line

(** Append one committed entry, creating the file if needed; flushed
    before returning (the entry survives a process crash). With
    [~fsync:true] (default false) the file descriptor is also synced,
    so the entry survives an OS crash or power loss. *)
val append : ?fsync:bool -> string -> entry -> (unit, Error.t) result

(** Append an [epoch n] marker: every entry after it belongs to
    leadership term [n]. Appended (fsynced) at leader boot. *)
val append_epoch : ?fsync:bool -> string -> int -> (unit, Error.t) result

(** Load every committed entry. The second component describes the
    torn tail, if any — a truncated final line, a malformed final
    line, or uncommitted trailing calls; all of them are dropped and
    recovery proceeds ([fds replay] prints the description as a
    warning and exits 0). Malformed lines before the tail are
    corruption and yield [Error], naming the 1-based line number and
    byte offset ([line]/[byte] context entries). A journal truncated
    behind a snapshot ([base > 0]) is also an error here: replaying it
    alone from the empty instance would silently skip history — use
    {!load_log} or the snapshot-aware [fds replay]. *)
val load : string -> (entry list * string option, Error.t) result

(** {!load}'s underlying replication view: entries with offsets and
    epochs, plus the snapshot [base]. Same torn-tail tolerance and
    corruption errors. *)
val load_log : string -> (log, Error.t) result

(** [truncate path ~base ~epoch tail] rewrites the journal to carry
    only [tail] (offsets [base+1 ..]) behind a [base] marker, stamping
    [epoch]. Temp file + fsync + atomic rename; the caller must have
    made the snapshot covering offsets [1..base] durable {e first} —
    under that ordering a crash anywhere leaves either the old journal
    or the new one, never a history gap. *)
val truncate :
  string -> base:int -> epoch:int -> stamped list -> (unit, Error.t) result
