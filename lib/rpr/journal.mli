(** A write-ahead journal of committed transactions: line-oriented,
    append-only, one entry (the calls plus a [commit] marker) per
    committed transaction. A transaction interrupted mid-write leaves a
    torn tail that {!load} drops — recovery keeps every complete
    record. *)

open Fdbs_kernel

type call = string * Value.t list

type entry = { calls : call list }

val pp_call : call Fmt.t
val pp_entry : entry Fmt.t

(** Append one committed entry, creating the file if needed; flushed
    before returning. *)
val append : string -> entry -> (unit, Error.t) result

(** Load every committed entry. The second component describes the
    torn tail, if any — a truncated final line, a malformed final
    line, or uncommitted trailing calls; all of them are dropped and
    recovery proceeds ([fds replay] prints the description as a
    warning and exits 0). Malformed lines before the tail are
    corruption and yield [Error]. *)
val load : string -> (entry list * string option, Error.t) result
