(** A write-ahead journal of committed transactions: line-oriented,
    append-only, one entry (the calls plus a [commit] marker) per
    committed transaction. Calls after the last [commit] marker — a
    transaction interrupted mid-write — are ignored by {!load}. *)

open Fdbs_kernel

type call = string * Value.t list

type entry = { calls : call list }

val pp_call : call Fmt.t
val pp_entry : entry Fmt.t

(** Append one committed entry, creating the file if needed; flushed
    before returning. *)
val append : string -> entry -> (unit, Error.t) result

(** Load every committed entry. *)
val load : string -> (entry list, Error.t) result
