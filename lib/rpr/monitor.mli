(** Streaming temporal monitors: the information level's transition
    constraints (◇/□ wffs, paper Section 3.1) compiled into incremental
    checks that run on the live commit stream.

    Offline, a transition constraint is checked by building the whole
    universe of states and asking {!Fdbs_temporal.Check.check_axioms}.
    Online we never have the universe — only the current commit taking
    [before] to [after]. A monitor closes that gap with the paper's own
    alternative semantics: the time-sorted translation
    ({!Fdbs_temporal.Timesort}). Each axiom is translated into an
    ordinary first-order wff over a {e monitor schema} whose relations
    carry a trailing [time] column plus an [accessible] relation; the
    one-step universe of a commit is the two-state database
    [widen(before, 0) ∪ widen(after, 1)] with [accessible = {(0,1)}].
    The translated wff is closed by fixing the free time variable [now]
    to a literal time point, so the {!Planner} compiles it into a plan
    like any other constraint — and the {!Delta} rules advance a
    materialization of that plan from commit to commit: the monitor
    database's delta between consecutive commits is exactly the
    previous commit's delta tagged with time 0 plus the current one
    tagged with time 1 (because [before'] = [after]).

    Verdict timing follows modal depth. A static axiom (depth 0) is
    checked on the post-commit state; a one-step transition axiom
    (depth 1) yields a verdict about the {e pre}-commit state as soon
    as its successor exists; an axiom of depth d nests d commits deep,
    so its verdict about state [k - d] is only emitted at commit [k] —
    such monitors keep a sliding window of the last [d + 1] states and
    re-evaluate their (still compiled) plan over it.

    Monitors follow the transactional publish discipline: {!check}
    computes prospective verdicts without mutating anything and returns
    a publish thunk; {!Txn.run}'s [on_commit] hook fires the thunk only
    after the journal append succeeded. A follower replays the same
    commits through the same path, so attaching monitors to a replica
    costs the leader nothing. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal

type event = {
  ev_axiom : string;  (** the violated axiom's name *)
  ev_kind : Tformula.kind;
  ev_state : int;
      (** index (commits since {!attach}) of the state the verdict is
          about; lags the current commit by the axiom's modal depth *)
}

(** One compiled axiom. *)
type compiled = private {
  m_name : string;
  m_kind : Tformula.kind;
  m_depth : int;  (** modal depth; window size is [m_depth + 1] *)
  m_wff : Formula.t;
      (** the closed time-sorted translation the planner evaluates *)
  m_compiled : bool;  (** [false] = outside the safe fragment, naive *)
  mutable m_violations : int;
}

type t

(** Compile a theory's axioms against a schema. Db-predicates bind to
    relations by the canonical name correspondence (case-insensitive,
    as in {!Fdbs_refinement.Interp23}); a db-predicate with no homonym
    relation, or disagreeing on sorts, is an error. Axioms that cannot
    be monitored (e.g. they mention a [shared] predicate with no
    relation behind it) are never silently dropped: they land in
    {!skipped} with a reason. *)
val compile :
  ?consts:(string * Value.t) list ->
  schema:Schema.t ->
  Ttheory.t ->
  (t, Error.t) result

(** Parse a theory file ({!Fdbs_temporal.Tparser.theory}) and compile
    it. *)
val of_file :
  ?consts:(string * Value.t) list ->
  schema:Schema.t ->
  string ->
  (t, Error.t) result

val name : t -> string
val monitors : t -> compiled list

(** Axioms that could not be monitored, with reasons. *)
val skipped : t -> (string * string) list

(** Commits observed since {!attach}. *)
val commits : t -> int

val violations : t -> int

(** Seed the monitor with the current committed state (state 0). *)
val attach : t -> Db.t -> unit

(** Evaluate every monitor against the commit [before → after] without
    mutating monitor state. Returns the violation events (empty when
    every axiom holds) and the publish thunk that advances the monitor
    to [after]; fire it only once the commit is durable. If [before]
    is not the state last published (a monitor attached mid-stream, or
    a commit raced past), the monitor resynchronizes — counted by the
    [monitor.resync] metric — rather than reporting nonsense. *)
val check :
  t ->
  domain:Domain.t ->
  before:Db.t ->
  after:Db.t ->
  event list * (unit -> unit)

(** {!check} + publish in one step, for replay/test paths that do not
    stage commits. *)
val advance : t -> domain:Domain.t -> before:Db.t -> after:Db.t -> event list

(** The error a violation event maps to on an enforcing commit path:
    code {!Error.Monitor_violation}, phase [Commit]. *)
val error_of_event : event -> Error.t

val pp_event : event Fmt.t
