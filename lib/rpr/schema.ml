(** Database schemas (paper Section 5.1.1):
    [schema SCL ; OPL end-schema] — a list of relation declarations and
    a list of operation (procedure) declarations. *)

open Fdbs_kernel
open Fdbs_logic

type rel_decl = {
  rname : string;
  rsorts : Sort.t list;  (** the unary predicate symbols A1..An, read as sorts *)
}

type proc = {
  pname : string;
  pparams : (string * Sort.t) list;  (** scalar formal parameters Y1..Yn *)
  body : Stmt.t;
}

type t = {
  name : string;
  relations : rel_decl list;
  consts : (string * Sort.t) list;  (** declared individual constants *)
  constraints : (string * Formula.t) list;
      (** named static integrity constraints: closed wffs every
          committed state must satisfy *)
  procs : proc list;
}

let rel_decl name sorts = { rname = name; rsorts = sorts }
let proc name params body = { pname = name; pparams = params; body }

let find_relation (sc : t) name = List.find_opt (fun r -> r.rname = name) sc.relations
let find_proc (sc : t) name = List.find_opt (fun p -> p.pname = name) sc.procs
let find_constraint (sc : t) name = List.assoc_opt name sc.constraints

let sorts_of (sc : t) name =
  match find_relation sc name with
  | Some r -> r.rsorts
  | None -> invalid_arg (Fmt.str "Schema: undeclared relation %s" name)

(** A structural fingerprint of the relation declarations — the part of
    the schema a compiled plan depends on. Used to key the plan cache
    per schema, so two schemas sharing a formula never share a plan. *)
let fingerprint (sc : t) : int =
  let mix h x = (h * 16777619) lxor x in
  let mix_string h s =
    String.fold_left (fun h c -> mix h (Char.code c)) h s
  in
  List.fold_left
    (fun h r -> List.fold_left mix_string (mix_string (mix h 53) r.rname) r.rsorts)
    (mix_string 2166136261 sc.name)
    sc.relations

(** Structural equality of exactly the footprint {!fingerprint} hashes:
    the schema name and the relation declarations. The plan cache
    compares slots with this on every hit, so a fingerprint collision
    between two different schemas can never smuggle a plan across. *)
let plan_equal (a : t) (b : t) : bool =
  String.equal a.name b.name
  && List.equal
       (fun r1 r2 ->
         String.equal r1.rname r2.rname
         && List.equal Sort.equal r1.rsorts r2.rsorts)
       a.relations b.relations

(** All sorts mentioned by relations, constants and parameters. *)
let sorts (sc : t) : Sort.t list =
  let of_rels = List.concat_map (fun r -> r.rsorts) sc.relations in
  let of_consts = List.map snd sc.consts in
  let of_params = List.concat_map (fun p -> List.map snd p.pparams) sc.procs in
  List.sort_uniq Sort.compare (of_rels @ of_consts @ of_params)

(** The first-order signature underlying the schema's wffs: relation
    names as db-predicates; declared constants and, per procedure,
    formal parameters as 0-ary function symbols (scalar program
    variables are distinguished constants, paper Section 5.1.1). *)
let signature ?(params : (string * Sort.t) list = []) (sc : t) : Signature.t =
  Signature.make ~sorts:(sorts sc)
    ~funcs:(List.map (fun (n, s) -> Signature.const n s) (sc.consts @ params))
    ~preds:(List.map (fun r -> Signature.db_pred r.rname r.rsorts) sc.relations)

(** The empty instance: every declared relation empty, no scalars. *)
let empty_db (sc : t) : Db.t =
  List.fold_left
    (fun db r -> Db.with_relation r.rname (Relation.empty r.rsorts) db)
    Db.empty sc.relations

(** Context-sensitive well-formedness, the property the paper's
    W-grammar enforces: every relation used in the OPL part (read or
    written) is declared in the SCL part, every write has the declared
    arity, and every wff is well-sorted w.r.t. the schema's signature.
    Returns the list of violations. *)
let check (sc : t) : string list =
  let declared = List.map (fun r -> r.rname) sc.relations in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  let check_formula sg' where f =
    match Formula.check sg' f with
    | Ok () -> ()
    | Error e -> err "%s: %s" where e
  in
  List.iter
    (fun (p : proc) ->
      let sg' = signature ~params:p.pparams sc in
      let where = Fmt.str "procedure %s" p.pname in
      List.iter
        (fun r ->
          if not (List.mem r declared) then
            err "%s uses undeclared relation %s" where r)
        (Stmt.reads p.body @ Stmt.writes p.body);
      let rec go : Stmt.t -> unit = function
        | Stmt.Skip -> ()
        | Stmt.Scalar_assign (_, t) ->
          (match Term.sort_of sg' t with
           | Ok _ -> ()
           | Error e -> err "%s: %s" where e)
        | Stmt.Rel_assign (r, rt) ->
          (match find_relation sc r with
           | None -> () (* already reported above *)
           | Some rd ->
             let given = List.map (fun v -> v.Term.vsort) rt.Stmt.rt_vars in
             if not (List.equal Sort.equal rd.rsorts given) then
               err "%s: relational term for %s has sorts (%a), declared (%a)" where r
                 Fmt.(list ~sep:(any ", ") Sort.pp) given
                 Fmt.(list ~sep:(any ", ") Sort.pp) rd.rsorts;
             let free = Formula.free_vars rt.Stmt.rt_body in
             let bound = rt.Stmt.rt_vars in
             List.iter
               (fun v ->
                 if not (List.exists (Term.var_equal v) bound) then
                   err "%s: relational term for %s has stray free variable %s" where r
                     v.Term.vname)
               free;
             check_formula sg' where
               (Formula.exists bound rt.Stmt.rt_body))
        | Stmt.Test f -> check_formula sg' where f
        | Stmt.Union (p1, p2) | Stmt.Seq (p1, p2) ->
          go p1;
          go p2
        | Stmt.Star p1 -> go p1
        | Stmt.If (c, p1, p2) ->
          check_formula sg' where c;
          go p1;
          go p2
        | Stmt.While (c, p1) ->
          check_formula sg' where c;
          go p1
        | Stmt.Insert (r, ts) | Stmt.Delete (r, ts) ->
          (match find_relation sc r with
           | None -> ()
           | Some rd ->
             if List.length ts <> List.length rd.rsorts then
               err "%s: %s expects %d arguments, got %d" where r (List.length rd.rsorts)
                 (List.length ts)
             else
               List.iter2
                 (fun t srt ->
                   match Term.sort_of sg' t with
                   | Ok s when Sort.equal s srt -> ()
                   | Ok s -> err "%s: argument of %s has sort %s, expected %s" where r s srt
                   | Error e -> err "%s: %s" where e)
                 ts rd.rsorts)
      in
      go p.body)
    sc.procs;
  let sg = signature sc in
  List.iter
    (fun (cname, f) ->
      let where = Fmt.str "constraint %s" cname in
      match Formula.free_vars f with
      | [] -> check_formula sg where f
      | v :: _ -> err "%s is not closed (free variable %s)" where v.Term.vname)
    sc.constraints;
  (match Signature.find_dup (List.map (fun (p : proc) -> p.pname) sc.procs) with
   | Some d -> err "duplicate procedure %s" d
   | None -> ());
  (match Signature.find_dup declared with
   | Some d -> err "duplicate relation %s" d
   | None -> ());
  (match Signature.find_dup (List.map fst sc.constraints) with
   | Some d -> err "duplicate constraint %s" d
   | None -> ());
  List.rev !errors

let is_well_formed (sc : t) = check sc = []

let pp ppf (sc : t) =
  let pp_rel ppf r =
    Fmt.pf ppf "relation %s(%a)" r.rname Fmt.(list ~sep:(any ", ") Sort.pp) r.rsorts
  in
  let pp_proc ppf (p : proc) =
    Fmt.pf ppf "@[<v 2>proc %s(%a) =@,%a@]" p.pname
      Fmt.(list ~sep:(any ", ") (fun ppf (n, s) -> Fmt.pf ppf "%s:%a" n Sort.pp s))
      p.pparams Stmt.pp p.body
  in
  let pp_constraint ppf (n, f) = Fmt.pf ppf "constraint %s: %a@," n Formula.pp f in
  Fmt.pf ppf "@[<v>schema %s@,%a@,%a%a@,end-schema@]" sc.name
    Fmt.(list ~sep:cut pp_rel) sc.relations
    Fmt.(list ~sep:nop pp_constraint) sc.constraints
    Fmt.(list ~sep:cut pp_proc) sc.procs
