(** Database states: a value for every relational program variable
    (relation name) and every scalar program variable. Two states of a
    universe differ only in these values (paper Section 5.1.2). *)

open Fdbs_kernel
module SMap = Map.Make (String)

type t = {
  relations : Relation.t SMap.t;
  scalars : Value.t SMap.t;
}

let empty = { relations = SMap.empty; scalars = SMap.empty }

let with_relation name rel (db : t) = { db with relations = SMap.add name rel db.relations }
let with_scalar name v (db : t) = { db with scalars = SMap.add name v db.scalars }

let relation (db : t) name = SMap.find_opt name db.relations
let scalar (db : t) name = SMap.find_opt name db.scalars

let relation_exn (db : t) name =
  match relation db name with
  | Some r -> r
  | None -> invalid_arg (Fmt.str "Db: undeclared relation %s" name)

let relations (db : t) = SMap.bindings db.relations
let scalars (db : t) = SMap.bindings db.scalars

let equal (a : t) (b : t) =
  SMap.equal Relation.equal a.relations b.relations
  && SMap.equal Value.equal a.scalars b.scalars

(** A structural hash consistent with {!equal}: folds the (cached)
    relation hashes and scalar values in canonical name order. Makes
    visited-state membership in fixpoint sweeps O(1) expected instead
    of a pairwise [equal] scan. *)
let hash (db : t) : int =
  let h = ref 17 in
  let mix n = h := (!h * 33) + n in
  SMap.iter
    (fun name rel ->
      mix (Hashtbl.hash name);
      mix (Relation.hash rel))
    db.relations;
  SMap.iter
    (fun name v ->
      mix (Hashtbl.hash name);
      mix (Value.hash v))
    db.scalars;
  !h land max_int

(** Union of every relation's active domain plus the scalar values
    (each scalar keyed under its value's... relations only carry sorts,
    so scalars are contributed by the caller when needed). *)
let active_domain (db : t) : Domain.t =
  SMap.fold (fun _ rel acc -> Domain.union acc (Relation.active_domain rel)) db.relations
    Domain.empty

(** Total number of tuples across all relations. *)
let size (db : t) = SMap.fold (fun _ rel n -> n + Relation.cardinal rel) db.relations 0

(** Warm every relation's lazy caches ({!Relation.warm}). Databases are
    immutable, so a warmed state is a {e shared snapshot}: parallel
    readers take it by reference and probe the published indexes
    instead of rebuilding them per worker domain. *)
let warm (db : t) = SMap.iter (fun _ rel -> Relation.warm rel) db.relations

let pp ppf (db : t) =
  let pp_rel ppf (name, rel) = Fmt.pf ppf "@[%s = %a@]" name Relation.pp rel in
  let pp_scalar ppf (name, v) = Fmt.pf ppf "@[%s := %a@]" name Value.pp v in
  Fmt.pf ppf "@[<v>%a%a@]"
    Fmt.(list ~sep:cut pp_rel) (relations db)
    Fmt.(list ~sep:cut pp_scalar) (scalars db)

(** A canonical digest for deduplication in state-space exploration. *)
let key (db : t) : string = Fmt.str "%a" pp db
