(** Concrete syntax for RPR schemas (paper Section 5.1.1).

    {v
    schema university

    relation OFFERED(course)
    relation TAKES(student, course)

    proc initiate() =
      (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})
    proc offer(c: course) = insert OFFERED(c)
    proc cancel(c: course) =
      if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)

    end-schema
    v}

    Statement grammar: [;] composes (binds tighter), [u] is
    nondeterministic union, postfix [*] iterates a parenthesized
    statement, and [if]/[while]/[test] take parenthesized wffs. Wffs use
    the first-order syntax of {!Fdbs_logic.Parser} with relation names
    as predicates and procedure parameters as constants. *)

open Fdbs_kernel
open Fdbs_logic

let parse_sort st = Sort.make (Parse.ident st)

let parse_rel_decl st : Schema.rel_decl =
  let name = Parse.ident st in
  Parse.expect_sym st "(";
  let sorts = Parse.sep_list st ~sep:"," parse_sort in
  Parse.expect_sym st ")";
  Schema.rel_decl name sorts

let parse_params st : (string * Sort.t) list =
  Parse.expect_sym st "(";
  if Parse.accept_sym st ")" then []
  else begin
    let param st =
      let n = Parse.ident st in
      Parse.expect_sym st ":";
      (n, parse_sort st)
    in
    let ps = Parse.sep_list st ~sep:"," param in
    Parse.expect_sym st ")";
    ps
  end

let parse_wff sg st : Formula.t = Parser.parse_formula sg [] st

let parse_paren_wff sg st : Formula.t =
  Parse.expect_sym st "(";
  let f = parse_wff sg st in
  Parse.expect_sym st ")";
  f

let parse_rterm sg st : Stmt.rterm =
  (* '{' already consumed *)
  Parse.expect_sym st "(";
  let binder st =
    let n = Parse.ident st in
    Parse.expect_sym st ":";
    (n, parse_sort st)
  in
  let binders = Parse.sep_list st ~sep:"," binder in
  Parse.expect_sym st ")";
  Parse.expect_sym st "|";
  let body = Parser.parse_formula sg binders st in
  Parse.expect_sym st "}";
  {
    Stmt.rt_vars = List.map (fun (n, s) -> { Term.vname = n; vsort = s }) binders;
    rt_body = body;
  }

let rec parse_stmt sg st : Stmt.t =
  let lhs = parse_seq sg st in
  let rec loop acc =
    if Parse.accept_kw st "u" then loop (Stmt.Union (acc, parse_seq sg st)) else acc
  in
  loop lhs

and parse_seq sg st =
  let lhs = parse_prim sg st in
  let rec loop acc =
    if Parse.accept_sym st ";" then loop (Stmt.Seq (acc, parse_prim sg st)) else acc
  in
  loop lhs

and parse_prim sg st =
  let atom =
    if Parse.accept_sym st "(" then begin
      let s = parse_stmt sg st in
      Parse.expect_sym st ")";
      s
    end
    else if Parse.accept_kw st "skip" then Stmt.Skip
    else if Parse.accept_kw st "insert" then parse_tuple_op sg st (fun r ts -> Stmt.Insert (r, ts))
    else if Parse.accept_kw st "delete" then parse_tuple_op sg st (fun r ts -> Stmt.Delete (r, ts))
    else if Parse.accept_kw st "test" then Stmt.Test (parse_paren_wff sg st)
    else if Parse.accept_kw st "if" then begin
      let c = parse_paren_wff sg st in
      Parse.expect_kw st "then";
      let p = parse_prim sg st in
      if Parse.accept_kw st "else" then Stmt.If (c, p, parse_prim sg st)
      else Stmt.If (c, p, Stmt.Skip)
    end
    else if Parse.accept_kw st "while" then begin
      let c = parse_paren_wff sg st in
      Parse.expect_kw st "do";
      Stmt.While (c, parse_prim sg st)
    end
    else begin
      (* assignment: name := relterm-or-term *)
      let name = Parse.ident st in
      Parse.expect_sym st ":=";
      if Parse.accept_sym st "{" then Stmt.Rel_assign (name, parse_rterm sg st)
      else Stmt.Scalar_assign (name, Parser.parse_term sg [] st)
    end
  in
  if Parse.accept_sym st "*" then Stmt.Star atom else atom

and parse_tuple_op sg st build =
  let r = Parse.ident st in
  Parse.expect_sym st "(";
  let ts = Parse.sep_list st ~sep:"," (Parser.parse_term sg []) in
  Parse.expect_sym st ")";
  build r ts

(** Parse a full schema file. *)
let schema (src : string) : (Schema.t, Error.t) result =
  let parse st =
    Parse.expect_kw st "schema";
    let name = Parse.ident st in
    let rels = ref [] in
    let consts = ref [] in
    let constraints = ref [] in
    let procs = ref [] in
    let rec decls () =
      if Parse.accept_kw st "relation" then begin
        rels := parse_rel_decl st :: !rels;
        decls ()
      end
      else if Parse.accept_kw st "const" then begin
        let n = Parse.ident st in
        Parse.expect_sym st ":";
        consts := (n, parse_sort st) :: !consts;
        decls ()
      end
      else if Parse.accept_kw st "constraint" then begin
        let n = Parse.ident st in
        Parse.expect_sym st ":";
        (* constraints are closed wffs over the relations and constants
           declared so far; no procedure parameters in scope *)
        let partial : Schema.t =
          {
            Schema.name;
            relations = List.rev !rels;
            consts = List.rev !consts;
            constraints = [];
            procs = [];
          }
        in
        let sg = Schema.signature partial in
        constraints := (n, parse_wff sg st) :: !constraints;
        decls ()
      end
      else if Parse.accept_kw st "proc" then begin
        let pname = Parse.ident st in
        let params = parse_params st in
        Parse.expect_sym st "=";
        (* Build the wff signature now that relations/consts are known;
           procs may only reference relations declared before them plus
           any declared constants, matching the paper's SCL-then-OPL
           layout. *)
        let partial : Schema.t =
          {
            Schema.name;
            relations = List.rev !rels;
            consts = List.rev !consts;
            constraints = [];
            procs = [];
          }
        in
        let sg = Schema.signature ~params partial in
        let body = parse_stmt sg st in
        procs := Schema.proc pname params body :: !procs;
        decls ()
      end
      else begin
        Parse.expect_kw st "end";
        if Parse.accept_sym st "-" then Parse.expect_kw st "schema"
      end
    in
    decls ();
    {
      Schema.name;
      relations = List.rev !rels;
      consts = List.rev !consts;
      constraints = List.rev !constraints;
      procs = List.rev !procs;
    }
  in
  (* the message carries the classic parser string; the structured
     phase/code let callers dispatch without parsing it *)
  let parse_error m = Error.make Error.Parse Error.Exec_failure m in
  match Parse.run parse src with
  | Ok sc ->
    (match Schema.check sc with
     | [] -> Ok sc
     | errs -> Result.Error (parse_error (String.concat "; " errs)))
  | Result.Error e -> Result.Error (parse_error e)

let schema_exn src =
  match schema src with
  | Ok sc -> sc
  | Result.Error e -> invalid_arg ("Rparser.schema_exn: " ^ e.Error.message)

(** Parse a statement against a schema (for tests and the CLI);
    [params] supplies extra scalar constants. *)
let stmt ?(params = []) (sc : Schema.t) (src : string) :
  (Stmt.t, Error.t) result =
  let sg = Schema.signature ~params sc in
  Result.map_error
    (fun e -> Error.make Error.Parse Error.Exec_failure e)
    (Parse.run (fun st -> parse_stmt sg st) src)

(** Parse a closed wff against a schema. *)
let wff ?(params = []) (sc : Schema.t) (src : string) :
  (Formula.t, Error.t) result =
  let sg = Schema.signature ~params sc in
  Result.map_error
    (fun e -> Error.make Error.Parse Error.Exec_failure e)
    (Parse.run (fun st -> parse_wff sg st) src)

let wff_exn ?params sc src =
  match wff ?params sc src with
  | Ok f -> f
  | Result.Error e -> invalid_arg ("Rparser.wff_exn: " ^ e.Error.message)
