(** The meaning functions of RPR (paper Section 5.1.2).

    [m] assigns to each statement a binary relation over the universe of
    database states; realized operationally as the set-of-outcomes
    function {!exec} — m(s) = {(A,B) | B ∈ exec s A}. Iteration is the
    reflexive-transitive closure, computed as a fixpoint with a state
    cap. [k] gives a procedure's meaning ({!call}): the body's meaning
    in the state where the formal parameters hold the actual values
    (paper rule (7)); the parameters' previous values are restored
    afterwards. *)

open Fdbs_kernel
open Fdbs_logic

type env = {
  schema : Schema.t;
  domain : Domain.t;  (** carriers for quantifiers and naive relational terms *)
  consts : (string * Value.t) list;  (** declared constants' values *)
  strategy : [ `Naive | `Compiled | `Auto ];  (** relational-term evaluation *)
  star_limit : int;  (** cap on distinct states explored by iteration/while *)
  budget : Budget.t;  (** resource account every statement spends against *)
}

(** Build an execution environment; declared constants default to their
    symbolic values, the budget to unlimited. Execution spends one step
    of the budget per statement and caps fixpoint explorations by its
    distinct-state allowance (tightening [star_limit]); exhaustion
    raises {!Fdbs_kernel.Budget.Exhausted}. *)
val env :
  ?consts:(string * Value.t) list ->
  ?strategy:[ `Naive | `Compiled | `Auto ] ->
  ?star_limit:int ->
  ?budget:Budget.t ->
  domain:Domain.t ->
  Schema.t ->
  env

(** The same environment charged against a different budget. *)
val with_budget : Budget.t -> env -> env

exception Exec_error of string

(** Operational form of the meaning function m: all outcome states of
    running the statement. An empty list means the statement is blocked
    (its tests admit no outcome). Raises {!Exec_error} on undeclared
    relations or exceeded iteration limits. *)
val exec : env -> Stmt.t -> Db.t -> Db.t list

(** {!exec} with explicit write sets: every outcome paired with the
    exact {!Delta.t} taking the input state to it. O(changed relations)
    per outcome thanks to structure sharing. *)
val exec_delta : env -> Stmt.t -> Db.t -> (Db.t * Delta.t) list

(** Procedure meaning k (paper rule (7)): run the body with the formal
    parameters bound to the arguments; restore the parameters' previous
    scalar values in every outcome. *)
val call : env -> Schema.proc -> Value.t list -> Db.t -> Db.t list

(** Call a procedure by name, requiring a single (deterministic)
    outcome. Execution-level failures come back as a structured
    {!Fdbs_kernel.Error.t} whose message carries the classic string;
    budget exhaustion and injected faults still raise, as for
    {!call}. *)
val call_det :
  env -> string -> Value.t list -> Db.t -> (Db.t, Fdbs_kernel.Error.t) result

val call_det_exn : env -> string -> Value.t list -> Db.t -> Db.t

(** Truth of a closed wff in a state — the query side of the DML
    (paper Section 5.2: expressions [R(t̄)] yield True iff t̄ ∈ R). *)
val query : env -> Db.t -> Formula.t -> bool

(** Like {!query}, maintained differentially through the planner's
    materialization cache ({!Planner.holds_delta}): [before] is the
    state the cache last published against, [delta] the exact
    difference to the queried state. Returns the verdict and a publish
    thunk to run once the surrounding commit succeeded; [shared:false]
    keeps ad-hoc wffs out of the shared per-schema cache. *)
val query_delta :
  env ->
  before:Db.t ->
  delta:Delta.t ->
  ?shared:bool ->
  Db.t ->
  Formula.t ->
  bool * (unit -> unit)
