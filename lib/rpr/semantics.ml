(** The meaning functions of RPR (paper Section 5.1.2).

    [m] assigns to each statement a binary relation over the universe of
    database states; we realize it operationally as a set-of-outcomes
    function [exec : stmt -> db -> db list] — [m(s) = {(A,B) | B ∈ exec
    s A}]. Iteration [p*] is the reflexive-transitive closure, computed
    as a fixpoint with a state cap. [k] gives a procedure's meaning: the
    body's meaning in the state where the formal parameters hold the
    actual values (paper rule (7): [(A[c̄/Ȳ], B) ∈ m(S)]); the
    parameters' previous values are restored afterwards so a call leaves
    no trace beyond its effects on the database. *)

open Fdbs_kernel
open Fdbs_logic

type env = {
  schema : Schema.t;
  domain : Domain.t;  (** carriers for quantifiers and naive relational terms *)
  consts : (string * Value.t) list;  (** declared constants' values *)
  strategy : [ `Naive | `Compiled | `Auto ];  (** relational-term evaluation *)
  star_limit : int;  (** cap on distinct states explored by [p*] / [while] *)
  budget : Budget.t;  (** resource account every statement spends against *)
}

let env ?(consts = []) ?(strategy = `Auto) ?(star_limit = 10_000) ?budget ~domain
    schema =
  let default_consts =
    List.map (fun (n, _) -> (n, Value.Sym n)) schema.Schema.consts
  in
  let consts =
    consts @ List.filter (fun (n, _) -> not (List.mem_assoc n consts)) default_consts
  in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  { schema; domain; consts; strategy; star_limit; budget }

let with_budget budget env = { env with budget }

exception Exec_error of string

let err fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

let dedup_states (dbs : Db.t list) : Db.t list =
  Util.dedup_hashed ~eq:Db.equal ~hash:Db.hash dbs

(* The distinct-state allowance for one fixpoint exploration: the
   ad-hoc [star_limit], tightened by the budget's state cap. *)
let iter_limit (env : env) = Budget.cap_states env.budget env.star_limit

(* Report a truncated fixpoint: budget exhaustion when the budget's cap
   was the binding constraint, the classic [Exec_error] otherwise. *)
let truncated_fixpoint (env : env) what =
  if iter_limit env < env.star_limit then raise (Budget.Exhausted Budget.States)
  else err "%s exceeded the %d-state limit" what env.star_limit

(* Closed-wff truth under the environment's strategy: compiled plans
   (via the planner's cache) where the wff is safe, naive [Logic.Eval]
   recursion otherwise. Tests, conditionals, loop guards, constraint
   checks and [query] all route through here. *)
let holds (env : env) (db : Db.t) (f : Formula.t) : bool =
  Planner.holds ~strategy:env.strategy ~schema:env.schema ~domain:env.domain
    ~consts:env.consts db f

let c_statements = Metrics.counter "semantics.statements"

let stmt_label = function
  | Stmt.Skip -> "stmt.skip"
  | Stmt.Scalar_assign _ -> "stmt.scalar-assign"
  | Stmt.Rel_assign _ -> "stmt.rel-assign"
  | Stmt.Test _ -> "stmt.test"
  | Stmt.Union _ -> "stmt.union"
  | Stmt.Seq _ -> "stmt.seq"
  | Stmt.Star _ -> "stmt.star"
  | Stmt.If _ -> "stmt.if"
  | Stmt.While _ -> "stmt.while"
  | Stmt.Insert _ -> "stmt.insert"
  | Stmt.Delete _ -> "stmt.delete"

(** Operational form of the meaning function [m]: all outcome states of
    running [stmt] in [db]. An empty list means the statement is
    blocked (its tests admit no outcome).

    Every statement is a [semantics] span when tracing is on (nested
    statements nest their spans), and counts into the
    [semantics.statements] metric always. *)
let rec exec (env : env) (stmt : Stmt.t) (db : Db.t) : Db.t list =
  if Trace.enabled () then
    Trace.with_span ~cat:"semantics" (stmt_label stmt) (fun () ->
        let outs = exec_raw env stmt db in
        Trace.add_attr "outcomes" (string_of_int (List.length outs));
        outs)
  else exec_raw env stmt db

and exec_raw (env : env) (stmt : Stmt.t) (db : Db.t) : Db.t list =
  Budget.spend_step env.budget;
  Fault.hit "semantics.exec";
  Metrics.incr c_statements;
  match stmt with
  | Stmt.Skip -> [ db ]
  | Stmt.Scalar_assign (x, t) ->
    let v = Relcalc.eval_term ~domain:env.domain ~consts:env.consts db t in
    [ Db.with_scalar x v db ]
  | Stmt.Rel_assign (r, rt) ->
    (match Schema.find_relation env.schema r with
     | None -> err "assignment to undeclared relation %s" r
     | Some _ ->
       let rel =
         Planner.eval_rterm ~strategy:env.strategy ~schema:env.schema
           ~domain:env.domain ~consts:env.consts db rt
       in
       [ Db.with_relation r rel db ])
  | Stmt.Test f ->
    if holds env db f then [ db ] else []
  | Stmt.Union (p, q) -> dedup_states (exec env p db @ exec env q db)
  | Stmt.Seq (p, q) ->
    dedup_states (List.concat_map (exec env q) (exec env p db))
  | Stmt.Star p ->
    let states, truncated =
      Util.bfs_fixpoint ~eq:Db.equal ~hash:Db.hash ~limit:(iter_limit env)
        ~step:(exec env p) [ db ]
    in
    if truncated then truncated_fixpoint env "iteration" else states
  | Stmt.If (c, p, q) -> if holds env db c then exec env p db else exec env q db
  | Stmt.While (c, p) ->
    (* The desugaring [((c?; p))*; (~c)?] made operational: explore the
       c-states reachable through p with a visited set, so the state cap
       bounds total distinct states — a nondeterministic body that
       revisits states no longer re-explores them (and no longer burns
       fuel exponentially); outcomes are the explored states where c
       fails. *)
    let holds db = holds env db c in
    let step db = if holds db then exec env p db else [] in
    let states, truncated =
      Util.bfs_fixpoint ~eq:Db.equal ~hash:Db.hash ~limit:(iter_limit env) ~step [ db ]
    in
    if truncated then truncated_fixpoint env "while loop"
    else List.filter (fun db -> not (holds db)) states
  | Stmt.Insert (r, ts) ->
    let tu = List.map (Relcalc.eval_term ~domain:env.domain ~consts:env.consts db) ts in
    [ Db.with_relation r (Relation.add tu (Db.relation_exn db r)) db ]
  | Stmt.Delete (r, ts) ->
    let tu = List.map (Relcalc.eval_term ~domain:env.domain ~consts:env.consts db) ts in
    [ Db.with_relation r (Relation.remove tu (Db.relation_exn db r)) db ]

(** Procedure meaning [k] (paper rule (7)): run the body with the
    formal parameters bound to [args]; restore the parameters' previous
    scalar values in every outcome. *)
let call_raw (env : env) (proc : Schema.proc) (args : Value.t list) (db : Db.t) :
  Db.t list =
  Fault.hit "semantics.call";
  if List.length args <> List.length proc.Schema.pparams then
    err "procedure %s expects %d arguments, got %d" proc.Schema.pname
      (List.length proc.Schema.pparams) (List.length args);
  let saved = List.map (fun (n, _) -> (n, Db.scalar db n)) proc.Schema.pparams in
  let db' =
    List.fold_left2
      (fun db (n, _) v -> Db.with_scalar n v db)
      db proc.Schema.pparams args
  in
  let restore out =
    List.fold_left
      (fun out (n, old) ->
        match old with
        | Some v -> Db.with_scalar n v out
        | None -> { out with Db.scalars = Db.SMap.remove n out.Db.scalars })
      out saved
  in
  List.map restore (exec env proc.Schema.body db') |> dedup_states

(** Procedure meaning [k], traced as a [semantics.call] span. *)
let call (env : env) (proc : Schema.proc) (args : Value.t list) (db : Db.t) :
  Db.t list =
  if Trace.enabled () then
    Trace.with_span ~cat:"semantics"
      ~args:[ ("proc", proc.Schema.pname) ]
      "semantics.call"
      (fun () -> call_raw env proc args db)
  else call_raw env proc args db

(** Call a procedure by name, requiring a single (deterministic)
    outcome. Execution-level failures come back as a structured
    {!Fdbs_kernel.Error.t} (the message carries the classic string);
    budget exhaustion and injected faults still raise, as for
    {!call}. *)
let call_det (env : env) (name : string) (args : Value.t list) (db : Db.t) :
  (Db.t, Error.t) result =
  let fail code fmt =
    Fmt.kstr (fun m -> Result.Error (Error.make Error.Exec code m)) fmt
  in
  match Schema.find_proc env.schema name with
  | None -> fail (Error.Unknown_procedure name) "unknown procedure %s" name
  | Some proc ->
    (match call env proc args db with
     | [ out ] -> Ok out
     | [] -> fail Error.Blocked "procedure %s blocked (no outcome)" name
     | outs ->
       fail (Error.Nondeterministic (List.length outs))
         "procedure %s has %d distinct outcomes" name (List.length outs)
     | exception Exec_error e -> fail Error.Exec_failure "%s" e)

let call_det_exn env name args db =
  match call_det env name args db with
  | Ok out -> out
  | Error e -> invalid_arg ("Semantics.call_det_exn: " ^ e.Error.message)

(** Truth of a closed wff in a state, under the environment's domain and
    constants — the query side of the DML (paper Section 5.2:
    expressions [R(t̄)] yield True iff [t̄ ∈ R]). *)
let query (env : env) (db : Db.t) (f : Formula.t) : bool =
  if Trace.enabled () then
    Trace.with_span ~cat:"semantics" "semantics.query" (fun () ->
        let v = holds env db f in
        Trace.add_attr "verdict" (string_of_bool v);
        v)
  else holds env db f

(** Like {!query}, maintained differentially: [before] is the committed
    state the planner's materialization cache last published against,
    [delta] the exact difference to [db]. Returns the verdict and the
    publish thunk of {!Planner.holds_delta} — run it only once the
    surrounding commit succeeded. [shared:false] keeps ad-hoc wffs out
    of the shared per-schema cache. *)
let query_delta (env : env) ~(before : Db.t) ~(delta : Delta.t) ?shared
    (db : Db.t) (f : Formula.t) : bool * (unit -> unit) =
  let check () =
    Planner.holds_delta ~strategy:env.strategy ~schema:env.schema
      ~domain:env.domain ~consts:env.consts ~before ~delta ?shared db f
  in
  if Trace.enabled () then
    Trace.with_span ~cat:"semantics" "semantics.query" (fun () ->
        let v, publish = check () in
        Trace.add_attr "verdict" (string_of_bool v);
        (v, publish))
  else check ()

(** Operational meaning with explicit write sets: every outcome of
    [stmt] paired with the exact {!Delta.t} taking [db] to it —
    [Rel_assign]/[Insert]/[Delete] surface their writes,
    [Test]/[Skip]/guards produce the empty delta, compounds compose.
    Computed by state differencing, which is O(changed relations)
    thanks to structure sharing across {!exec}. *)
let exec_delta (env : env) (stmt : Stmt.t) (db : Db.t) :
  (Db.t * Delta.t) list =
  exec env stmt db
  |> List.map (fun out -> (out, Delta.of_dbs ~before:db ~after:out))
