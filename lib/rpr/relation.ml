(** Finite relations: sets of equal-length value tuples, the data
    structures of the relational model that RPR programs manipulate
    (paper Section 5.1).

    The representation is a canonical sorted set of tuples (so
    structural equality needs no re-sorting) carrying lazily built,
    atomically published caches: a hash of the whole extension (for
    O(1) database-state hashing in fixpoint exploration), a tuple hash
    table (O(1)-amortized membership, e.g. antijoin probes), and
    per-column value indexes (O(n + m + |output|) composition instead
    of pairwise scanning). The caches never change what is observable:
    every operation is defined by the tuple set alone.

    Thread-safety: caches live in [Atomic.t] cells and are built
    fully before being published, so concurrent {!Pool} worker domains
    may at worst duplicate a cache build — never observe a partial
    one. *)

open Fdbs_kernel

module Tuple = struct
  type t = Value.t list

  let compare = List.compare Value.compare
  let equal a b = compare a b = 0

  (* Deterministic across runs (unlike the depth-limited generic
     [Hashtbl.hash] it folds every column). *)
  let hash (tu : t) =
    List.fold_left (fun h v -> (h * 33) + Value.hash v) 5381 tu land max_int

  let pp ppf tu = Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) tu
end

module Tuple_set = Set.Make (Tuple)

type index = (Value.t, Tuple.t list) Hashtbl.t

type t = {
  sorts : Sort.t list;  (** column sorts; the relation's arity is their length *)
  tuples : Tuple_set.t;
  hash_cache : int Atomic.t;  (** [-1] until computed *)
  mem_cache : (Tuple.t, unit) Hashtbl.t option Atomic.t;
  col_cache : (int * index) list Atomic.t;  (** per-column value indexes *)
}

(* Every constructor goes through [make]: derived relations start with
   fresh (empty) caches. *)
let make sorts tuples =
  {
    sorts;
    tuples;
    hash_cache = Atomic.make (-1);
    mem_cache = Atomic.make None;
    col_cache = Atomic.make [];
  }

let empty sorts = make sorts Tuple_set.empty

let sorts (r : t) = r.sorts
let tuple_set (r : t) = r.tuples

let arity (r : t) = List.length r.sorts

let check_tuple (r : t) (tu : Tuple.t) =
  if List.length tu <> arity r then
    invalid_arg
      (Fmt.str "Relation: tuple of arity %d in relation of arity %d" (List.length tu)
         (arity r))

let add tu (r : t) =
  check_tuple r tu;
  make r.sorts (Tuple_set.add tu r.tuples)

let remove tu (r : t) =
  check_tuple r tu;
  make r.sorts (Tuple_set.remove tu r.tuples)

let cardinal (r : t) = Tuple_set.cardinal r.tuples
let is_empty (r : t) = Tuple_set.is_empty r.tuples

(* Below this cardinality a balanced-tree lookup beats building a hash
   table; above it the table is built once and every later probe is
   O(1). *)
let mem_index_threshold = 8

(* Index-build tallies: how often the lazy caches are actually
   materialized (a concurrent duplicate build counts twice — it did
   the work twice). *)
let c_mem_index_builds = Metrics.counter "relation.mem_index_builds"
let c_col_index_builds = Metrics.counter "relation.col_index_builds"

(* Build (or fetch) the membership table. Publication is a one-shot
   CAS: the first builder wins and every racing peer drops its build
   and adopts the published table, so concurrent domains end up probing
   the {e same} table — sharing cache lines instead of each carrying a
   private duplicate. *)
let mem_table (r : t) =
  match Atomic.get r.mem_cache with
  | Some tbl -> tbl
  | None ->
    Metrics.incr c_mem_index_builds;
    let tbl = Hashtbl.create (2 * Tuple_set.cardinal r.tuples) in
    Tuple_set.iter (fun t -> Hashtbl.replace tbl t ()) r.tuples;
    if Atomic.compare_and_set r.mem_cache None (Some tbl) then tbl
    else begin
      match Atomic.get r.mem_cache with Some t -> t | None -> tbl
    end

let mem tu (r : t) =
  match Atomic.get r.mem_cache with
  | Some tbl -> Hashtbl.mem tbl tu
  | None ->
    if Tuple_set.cardinal r.tuples < mem_index_threshold then
      Tuple_set.mem tu r.tuples
    else Hashtbl.mem (mem_table r) tu

(** The value -> tuples index for column [col], built on first use and
    cached. The index is immutable once published. *)
let index_on (col : int) (r : t) : index =
  if col < 0 || col >= arity r then
    invalid_arg (Fmt.str "Relation.index_on: column %d of arity %d" col (arity r));
  match List.assoc_opt col (Atomic.get r.col_cache) with
  | Some idx -> idx
  | None ->
    Metrics.incr c_col_index_builds;
    let idx : index = Hashtbl.create (max 16 (2 * Tuple_set.cardinal r.tuples)) in
    Tuple_set.iter
      (fun tu ->
        let key = List.nth tu col in
        Hashtbl.replace idx key
          (tu :: Option.value ~default:[] (Hashtbl.find_opt idx key)))
      r.tuples;
    (* One-shot publication: if a peer published this column first, its
       index wins and we adopt it — all domains probe one shared
       index. *)
    let rec publish () =
      let cur = Atomic.get r.col_cache in
      match List.assoc_opt col cur with
      | Some published -> published
      | None ->
        if Atomic.compare_and_set r.col_cache cur ((col, idx) :: cur) then idx
        else publish ()
    in
    publish ()

(** All tuples whose column [col] holds [value], via the cached
    index. *)
let find_by ~(col : int) (value : Value.t) (r : t) : Tuple.t list =
  Option.value ~default:[] (Hashtbl.find_opt (index_on col r) value)

let of_list sorts tuples = List.fold_left (fun r tu -> add tu r) (empty sorts) tuples
let to_list (r : t) = Tuple_set.elements r.tuples

let union (a : t) (b : t) = make a.sorts (Tuple_set.union a.tuples b.tuples)
let inter (a : t) (b : t) = make a.sorts (Tuple_set.inter a.tuples b.tuples)
let diff (a : t) (b : t) = make a.sorts (Tuple_set.diff a.tuples b.tuples)

let filter f (r : t) = make r.sorts (Tuple_set.filter f r.tuples)

let fold f (r : t) acc = Tuple_set.fold f r.tuples acc
let iter f (r : t) = Tuple_set.iter f r.tuples
let exists f (r : t) = Tuple_set.exists f r.tuples
let for_all f (r : t) = Tuple_set.for_all f r.tuples

(** A canonical hash of the extension (sorts contribute arity only),
    computed once per relation value. Consistent with {!equal}. *)
let hash (r : t) =
  let h = Atomic.get r.hash_cache in
  if h >= 0 then h
  else begin
    let h =
      Tuple_set.fold
        (fun tu acc -> (acc * 33) + Tuple.hash tu)
        r.tuples
        ((arity r * 7) + 3)
      land max_int
    in
    (* The hash is deterministic, so a lost race publishes the same
       value; the CAS just keeps publication one-shot like the other
       caches. *)
    ignore (Atomic.compare_and_set r.hash_cache (-1) h : bool);
    h
  end

(** Publish this relation's lazy caches eagerly: the extension hash and
    (above the indexing threshold) the membership table. Called once on
    a shared read-only snapshot {e before} handing it to parallel
    readers, so worker domains probe published indexes instead of
    racing to build duplicates. *)
let warm (r : t) =
  ignore (hash r : int);
  if Tuple_set.cardinal r.tuples >= mem_index_threshold then
    ignore (mem_table r : (Tuple.t, unit) Hashtbl.t)

let equal (a : t) (b : t) =
  a == b
  || (let ha = Atomic.get a.hash_cache and hb = Atomic.get b.hash_cache in
      (* cached hashes, when both present, give a cheap negative *)
      (ha < 0 || hb < 0 || ha = hb)
      && List.equal Sort.equal a.sorts b.sorts
      && Tuple_set.equal a.tuples b.tuples)

(** Composition of binary relations sharing their middle sort:
    [compose a b = {(x, z) | (x, y) ∈ a, (y, z) ∈ b}], evaluated
    through [b]'s first-column index — O(|a| + |b| + |output| log
    |output|) rather than the pairwise O(|a|·|b|) scan. *)
let compose (a : t) (b : t) : t =
  match (a.sorts, b.sorts) with
  | [ sa; mid_a ], [ mid_b; sb ] when Sort.equal mid_a mid_b ->
    let out = ref Tuple_set.empty in
    Tuple_set.iter
      (fun tu ->
        match tu with
        | [ x; y ] ->
          List.iter
            (fun tu' ->
              match tu' with
              | [ _; z ] -> out := Tuple_set.add [ x; z ] !out
              | _ -> assert false)
            (find_by ~col:0 y b)
        | _ -> assert false)
      a.tuples;
    make [ sa; sb ] !out
  | _ ->
    invalid_arg
      "Relation.compose: expects binary relations sharing their middle sort"

(** Transitive closure of a homogeneous binary relation, by semi-naive
    iteration: each round composes only the {e frontier} (pairs new in
    the previous round) with [r], so total work is proportional to the
    derivations actually produced instead of re-composing the whole
    accumulated closure every round. *)
let transitive_closure (r : t) : t =
  (match r.sorts with
   | [ s1; s2 ] when Sort.equal s1 s2 -> ()
   | _ ->
     invalid_arg
       "Relation.transitive_closure: expects a homogeneous binary relation");
  let rec go acc frontier =
    if is_empty frontier then acc
    else
      let next = diff (compose frontier r) acc in
      go (union acc next) next
  in
  go r r

(** Values appearing in each column, keyed by the column's sort: the
    relation's contribution to the active domain. *)
let active_domain (r : t) : Domain.t =
  fold
    (fun tu acc ->
      List.fold_left2
        (fun acc v srt -> Domain.add srt (v :: Domain.carrier acc srt) acc)
        acc tu r.sorts)
    r Domain.empty

let pp ppf (r : t) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Tuple.pp) (to_list r)
