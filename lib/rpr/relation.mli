(** Finite relations: sets of equal-length value tuples, the data
    structures of the relational model that RPR programs manipulate
    (paper Section 5.1).

    The representation is abstract: a canonical sorted tuple set
    carrying lazily built, atomically published caches — a whole-
    extension hash, an O(1)-amortized membership table, and per-column
    value indexes that make {!compose} linear in its inputs. All
    operations are defined by the tuple set alone; it is safe to share
    relation values across {!Fdbs_kernel.Pool} worker domains. *)

open Fdbs_kernel

module Tuple : sig
  type t = Value.t list

  val compare : t -> t -> int
  val equal : t -> t -> bool

  (** Deterministic across runs, consistent with {!equal}. *)
  val hash : t -> int

  val pp : t Fmt.t
end

module Tuple_set : Set.S with type elt = Tuple.t

type t

val empty : Sort.t list -> t

(** Column sorts; the relation's arity is their length. *)
val sorts : t -> Sort.t list

(** The underlying canonical tuple set. *)
val tuple_set : t -> Tuple_set.t

val arity : t -> int

(** Raises [Invalid_argument] on arity mismatch. *)
val add : Tuple.t -> t -> t

val remove : Tuple.t -> t -> t

(** O(1) amortized: served by a lazily built hash table once the
    relation is large enough to repay building it. *)
val mem : Tuple.t -> t -> bool

(** All tuples whose column [col] holds [value], via a cached
    per-column index. Raises [Invalid_argument] if [col] is out of
    range. *)
val find_by : col:int -> Value.t -> t -> Tuple.t list

val of_list : Sort.t list -> Tuple.t list -> t
val to_list : t -> Tuple.t list

val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val filter : (Tuple.t -> bool) -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool

val equal : t -> t -> bool

(** A canonical hash of the extension, computed once per relation value
    and cached; consistent with {!equal}. *)
val hash : t -> int

(** Publish the lazy caches eagerly (extension hash, membership table
    when the relation is large enough to index). Call on a shared
    read-only snapshot before a parallel sweep so worker domains probe
    one published index instead of racing to build duplicates; cache
    publication is one-shot (first builder wins, peers adopt). *)
val warm : t -> unit

(** [compose a b = {(x, z) | (x, y) ∈ a, (y, z) ∈ b}] for binary
    relations sharing their middle sort, evaluated through [b]'s
    first-column index. Raises [Invalid_argument] otherwise. *)
val compose : t -> t -> t

(** Transitive closure of a homogeneous binary relation by iterated
    indexed composition. Raises [Invalid_argument] otherwise. *)
val transitive_closure : t -> t

(** Values appearing in each column, keyed by the column's sort: the
    relation's contribution to the active domain. *)
val active_domain : t -> Domain.t

val pp : t Fmt.t
