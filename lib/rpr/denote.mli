(** The literal denotational semantics of paper Section 5.1.2, for
    validation on small universes.

    A universe for the schema is the set of all states differing only in
    the program variables' values — here, all assignments of relation
    contents over a finite domain. The meaning m(s) is then an explicit
    binary relation over the universe; tests validate the paper's
    semantic equations, e.g. m(p;q) = m(p) ∘ m(q) and m(p⋆) =
    closure(m(p)). *)

open Fdbs_kernel

(** All subsets of a list (powerset), in a deterministic order. *)
val powerset : 'a list -> 'a list list

(** Every database state over the domain: all combinations of relation
    contents, with scalars fixed from [base]. Exponential; intended for
    small validation cases only. *)
val universe : Schema.t -> domain:Domain.t -> base:Db.t -> Db.t list

(** The meaning of a statement as an explicit binary relation over the
    universe: index pairs (i, j) with (U_i, U_j) ∈ m(s). *)
val meaning : Semantics.env -> Db.t list -> Stmt.t -> (int * int) list

(** Relation composition on index pairs, via a hash index on the second
    relation's first component. *)
val compose : (int * int) list -> (int * int) list -> (int * int) list

(** The original pairwise O(n·m) composition; the oracle for the
    equivalence property test of {!compose}. *)
val compose_naive : (int * int) list -> (int * int) list -> (int * int) list

(** Reflexive-transitive closure on index pairs over [n] states. *)
val closure : n:int -> (int * int) list -> (int * int) list

val equal_relations : (int * int) list -> (int * int) list -> bool
