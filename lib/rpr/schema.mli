(** Database schemas (paper Section 5.1.1):
    [schema SCL ; OPL end-schema] — a list of relation declarations and
    a list of operation (procedure) declarations. *)

open Fdbs_kernel
open Fdbs_logic

type rel_decl = {
  rname : string;
  rsorts : Sort.t list;  (** the unary predicate symbols A1..An, read as sorts *)
}

type proc = {
  pname : string;
  pparams : (string * Sort.t) list;  (** scalar formal parameters Y1..Yn *)
  body : Stmt.t;
}

type t = {
  name : string;
  relations : rel_decl list;
  consts : (string * Sort.t) list;  (** declared individual constants *)
  constraints : (string * Formula.t) list;
      (** named static integrity constraints: closed wffs every
          committed state must satisfy (paper Section 3's static
          consistency, enforced at the representation level) *)
  procs : proc list;
}

val rel_decl : string -> Sort.t list -> rel_decl
val proc : string -> (string * Sort.t) list -> Stmt.t -> proc

val find_relation : t -> string -> rel_decl option
val find_proc : t -> string -> proc option
val find_constraint : t -> string -> Formula.t option

(** Column sorts of a declared relation; raises on unknown names. *)
val sorts_of : t -> string -> Sort.t list

(** A structural fingerprint of the relation declarations — the part of
    the schema a compiled plan depends on. Keys the plan cache per
    schema. *)
val fingerprint : t -> int

(** Structural equality of exactly the footprint {!fingerprint}
    hashes (schema name + relation declarations); the plan cache's
    collision-proof slot comparison. *)
val plan_equal : t -> t -> bool

(** All sorts mentioned by relations, constants and parameters. *)
val sorts : t -> Sort.t list

(** The first-order signature underlying the schema's wffs: relation
    names as db-predicates; declared constants and the given formal
    [params] as 0-ary function symbols (scalar program variables are
    distinguished constants, paper Section 5.1.1). *)
val signature : ?params:(string * Sort.t) list -> t -> Signature.t

(** The empty instance: every declared relation empty, no scalars. *)
val empty_db : t -> Db.t

(** Context-sensitive well-formedness, the property the paper's
    W-grammar enforces: every relation used in the OPL part is declared
    in the SCL part, writes have declared arity, and every wff is
    well-sorted. Returns the violations. *)
val check : t -> string list

val is_well_formed : t -> bool
val pp : t Fmt.t
