(** Differential maintenance for the relational algebra: exact
    per-relation insert/delete sets between two database states, and
    the classic ΔQ(R ⊎ ΔR) per-operator rules that push such a delta
    through a materialized compiled plan in time proportional to the
    delta instead of the database. The {!Planner} keeps one
    materialization per (schema, constraint) and advances it on every
    commit; when a rule does not apply ({!Not_incremental}) it falls
    back to full re-evaluation, mirroring the [Not_compilable]
    pattern. *)

open Fdbs_kernel

module SMap : Map.S with type key = string

type t = {
  inserts : Relation.t SMap.t;  (** disjoint from the before-state *)
  deletes : Relation.t SMap.t;  (** contained in the before-state *)
  scalars_changed : bool;
}

val empty : t
val is_empty : t -> bool

(** Insert/delete set for one relation ([sorts] shapes the empty
    default when the relation is untouched). *)
val inserts : t -> string -> sorts:Sort.t list -> Relation.t

val deletes : t -> string -> sorts:Sort.t list -> Relation.t

(** Relation names touched by the delta, sorted. *)
val touches : t -> string list

(** Total number of inserted plus deleted tuples. *)
val cardinal : t -> int

(** The exact difference taking [before] to [after]; relations shared
    by reference between the two states are skipped, so cost is
    proportional to the changed relations. *)
val of_dbs : before:Db.t -> after:Db.t -> t

(** Apply the relational part of a delta to a state. *)
val apply : t -> Db.t -> Db.t

(** Sequential composition: the delta of applying the first then the
    second (re-inserted deletes and re-deleted inserts net out). *)
val compose : t -> t -> t

val pp : t Fmt.t

(** A materialized plan: the evaluated output of every operator in a
    compiled expression, in the expression's shape. *)
type node = {
  out : Relation.t;
  kids : node list;
}

(** Raised by {!advance} when no delta rule applies (today: a scalar
    changed, and ground terms read scalars). Callers fall back to full
    re-evaluation. *)
exception Not_incremental

(** Evaluate bottom-up, keeping every operator's output;
    [(materialize db e).out] agrees with [Relalg.eval db e]. *)
val materialize :
  domain:Domain.t -> ?consts:(string * Value.t) list -> Db.t -> Relalg.expr -> node

(** Push a delta through a materialization: returns the updated
    materialization and the exact insert/delete sets of the plan
    output ([out' = (out \ del) ∪ ins]). [after] is the post-commit
    state. Raises {!Not_incremental} when no rule applies. *)
val advance :
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  after:Db.t ->
  t ->
  Relalg.expr ->
  node ->
  node * Relation.t * Relation.t

(** Relation names a plan reads, in syntactic order (with repeats). *)
val reads : Relalg.expr -> string list

(** The insert-derivative of a plan with respect to one relation's
    delta, rendered in plan syntax with zero branches dropped; [None]
    when the plan does not read the relation. *)
val derivative : string -> Relalg.expr -> string option

(** One [(relation, rendered derivative)] line per relation the plan
    reads, in first-read order. *)
val derivatives : Relalg.expr -> (string * string) list
