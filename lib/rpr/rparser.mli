(** Concrete syntax for RPR schemas (paper Section 5.1.1).

    {v
    schema university

    relation OFFERED(course)
    relation TAKES(student, course)

    proc initiate() =
      (OFFERED := {(c:course) | false} ; TAKES := {(s:student, c:course) | false})
    proc offer(c: course) = insert OFFERED(c)
    proc cancel(c: course) =
      if (~(exists s:student. TAKES(s, c))) then delete OFFERED(c)

    end-schema
    v}

    Statement grammar: [;] composes (binds tighter), [u] is
    nondeterministic union, postfix [*] iterates a parenthesized
    statement, and [if]/[while]/[test] take parenthesized wffs. Wffs use
    the first-order syntax of {!Fdbs_logic.Parser} with relation names
    as predicates and procedure parameters as constants. *)

open Fdbs_kernel
open Fdbs_logic

(** Parse a full schema file; the result passes {!Schema.check}.
    Failures are structured {!Fdbs_kernel.Error.t} values in the
    [Parse] phase whose message carries the classic parser string. *)
val schema : string -> (Schema.t, Error.t) result

val schema_exn : string -> Schema.t

(** Parse a statement against a schema (for tests and the CLI);
    [params] supplies extra scalar constants. *)
val stmt :
  ?params:(string * Sort.t) list -> Schema.t -> string -> (Stmt.t, Error.t) result

(** Parse a closed wff against a schema. *)
val wff :
  ?params:(string * Sort.t) list -> Schema.t -> string -> (Formula.t, Error.t) result

val wff_exn : ?params:(string * Sort.t) list -> Schema.t -> string -> Formula.t
