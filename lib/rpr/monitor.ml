(** Streaming temporal monitors (see the interface for the design).

    The compilation pipeline per axiom: rename the theory's
    db-predicates to their homonym relations (the same canonical
    correspondence the refinement levels use), translate the temporal
    wff through {!Fdbs_temporal.Timesort} into a first-order wff over
    the time-widened monitor schema, close the free [now] variable with
    a literal time point, and hand the result to the {!Planner}. A
    two-state monitor database plays the one-step universe of each
    commit; consecutive monitor databases differ by the previous
    commit's delta at time 0 plus the current one at time 1, which is
    what lets {!Delta.advance} carry materializations across commits
    instead of re-evaluating plans. *)

open Fdbs_kernel
open Fdbs_logic
open Fdbs_temporal

type event = {
  ev_axiom : string;
  ev_kind : Tformula.kind;
  ev_state : int;
}

type compiled = {
  m_name : string;
  m_kind : Tformula.kind;
  m_depth : int;
  m_wff : Formula.t;
  m_compiled : bool;
  mutable m_violations : int;
}

type t = {
  theory_name : string;
  schema : Schema.t;
  mschema : Schema.t;
  consts : (string * Value.t) list;
  mons : compiled list;
  plans : (string * Relalg.expr) list;  (** per-axiom compiled plans *)
  skipped : (string * string) list;
  max_depth : int;
  mdomain_times : Domain.t;  (** the time carrier, unioned per check *)
  lock : Mutex.t;
  mutable commits : int;
  mutable window : Db.t list;  (** recent states, newest first *)
  mutable mdb : Db.t option;  (** two-state db of the last published commit *)
  mutable prev_delta : Delta.t option;
  mutable mats : (string * Delta.node) list;
  mutable total_violations : int;
}

let c_checks = Metrics.counter "monitor.checks"
let c_violations = Metrics.counter "monitor.violations"
let c_hits = Metrics.counter "monitor.delta_hit"
let c_misses = Metrics.counter "monitor.delta_miss"
let c_fallback = Metrics.counter "monitor.delta_fallback"
let c_resync = Metrics.counter "monitor.resync"
let h_step_us = Metrics.histogram "monitor.step_us"

(* The free current-time variable of the translation. The name cannot
   clash with parsed object-language variables ('%' is not an
   identifier character), so closing it by substitution is exact. *)
let now_var = { Term.vname = "%now"; vsort = Timesort.time_sort }

let rec rename_preds ren (f : Tformula.t) : Tformula.t =
  let r = rename_preds ren in
  match f with
  | Tformula.True | Tformula.False | Tformula.Eq _ -> f
  | Tformula.Pred (p, args) -> (
    match List.assoc_opt (String.lowercase_ascii p) ren with
    | Some p' -> Tformula.Pred (p', args)
    | None -> f)
  | Tformula.Not g -> Tformula.Not (r g)
  | Tformula.And (g, h) -> Tformula.And (r g, r h)
  | Tformula.Or (g, h) -> Tformula.Or (r g, r h)
  | Tformula.Imp (g, h) -> Tformula.Imp (r g, r h)
  | Tformula.Iff (g, h) -> Tformula.Iff (r g, r h)
  | Tformula.Forall (v, g) -> Tformula.Forall (v, r g)
  | Tformula.Exists (v, g) -> Tformula.Exists (v, r g)
  | Tformula.Possibly g -> Tformula.Possibly (r g)
  | Tformula.Necessarily g -> Tformula.Necessarily (r g)

let rec used_preds (f : Tformula.t) : string list =
  match f with
  | Tformula.True | Tformula.False | Tformula.Eq _ -> []
  | Tformula.Pred (p, _) -> [ p ]
  | Tformula.Not g | Tformula.Forall (_, g) | Tformula.Exists (_, g)
  | Tformula.Possibly g | Tformula.Necessarily g ->
    used_preds g
  | Tformula.And (g, h) | Tformula.Or (g, h) | Tformula.Imp (g, h)
  | Tformula.Iff (g, h) ->
    used_preds g @ used_preds h

(* The monitor schema: every relation widened with a trailing [time]
   column, plus the accessibility relation. Its name (hence
   fingerprint) differs from the base schema's, so monitor plans can
   never collide with ordinary constraint plans in the shared cache. *)
let monitor_schema (schema : Schema.t) (tconsts : (string * Sort.t) list) :
    Schema.t =
  {
    Schema.name = schema.Schema.name ^ "+monitor";
    relations =
      List.map
        (fun (r : Schema.rel_decl) ->
          Schema.rel_decl r.Schema.rname
            (r.Schema.rsorts @ [ Timesort.time_sort ]))
        schema.Schema.relations
      @ [
          Schema.rel_decl Timesort.accessible
            [ Timesort.time_sort; Timesort.time_sort ];
        ];
    consts = tconsts;
    constraints = [];
    procs = [];
  }

let fail fmt = Fmt.kstr (fun m -> Result.Error (Error.make Error.Parse Error.Exec_failure m)) fmt

let compile ?(consts = []) ~(schema : Schema.t) (theory : Ttheory.t) :
    (t, Error.t) result =
  let tsig = theory.Ttheory.signature in
  let find_relation name =
    List.find_opt
      (fun (r : Schema.rel_decl) ->
        String.lowercase_ascii r.Schema.rname = String.lowercase_ascii name)
      schema.Schema.relations
  in
  (* Bind db-predicates to relations by the canonical (case-insensitive)
     name correspondence; a missing homonym or a sort disagreement is a
     compile error, not a silent skip. *)
  let rec bind ren = function
    | [] -> Ok (List.rev ren)
    | (p : Signature.pred) :: rest ->
      if not p.Signature.db then bind ren rest
      else (
        match find_relation p.Signature.pname with
        | None ->
          fail "db-predicate %s has no homonym relation in schema %s"
            p.Signature.pname schema.Schema.name
        | Some r ->
          if not (List.equal Sort.equal p.Signature.pargs r.Schema.rsorts) then
            fail "db-predicate %s and relation %s disagree on sorts"
              p.Signature.pname r.Schema.rname
          else
            bind ((String.lowercase_ascii p.Signature.pname, r.Schema.rname) :: ren) rest)
  in
  match bind [] tsig.Signature.preds with
  | Result.Error _ as e -> e
  | Ok ren ->
    let db_names = List.map snd ren in
    let shared_names =
      List.filter_map
        (fun (p : Signature.pred) ->
          if p.Signature.db then None else Some p.Signature.pname)
        tsig.Signature.preds
    in
    let tconsts =
      List.filter_map
        (fun (f : Signature.func) ->
          if f.Signature.fargs = [] then Some (f.Signature.fname, f.Signature.fres)
          else None)
        tsig.Signature.funcs
    in
    let mschema = monitor_schema schema tconsts in
    (* Declared constants default to their symbolic value (the same
       convention as naive evaluation); caller-supplied bindings win. *)
    let eval_consts =
      consts
      @ List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name consts then None
            else Some (name, Value.Sym name))
          tconsts
    in
    let rsig =
      {
        tsig with
        Signature.preds =
          List.map
            (fun (p : Signature.pred) ->
              match List.assoc_opt (String.lowercase_ascii p.Signature.pname) ren with
              | Some rname when p.Signature.db -> { p with Signature.pname = rname }
              | _ -> p)
            tsig.Signature.preds;
      }
    in
    let msig = Timesort.extend_signature rsig in
    let mons, plans, skipped =
      List.fold_left
        (fun (mons, plans, skipped) (ax : Ttheory.axiom) ->
          let name = ax.Ttheory.ax_name in
          let tf = rename_preds ren ax.Ttheory.ax_formula in
          let shared_used =
            List.filter
              (fun p ->
                List.mem p shared_names && not (List.mem p db_names))
              (used_preds tf)
          in
          if shared_used <> [] then
            ( mons,
              plans,
              (name,
               Fmt.str "mentions shared predicate%s %s (no relation to monitor)"
                 (if List.length shared_used > 1 then "s" else "")
                 (String.concat ", " shared_used))
              :: skipped )
          else
            let depth = Tformula.modal_depth tf in
            let kind = Tformula.classify tf in
            let f = Timesort.translate msig ~now:now_var tf in
            (* Verdict time point: a static axiom speaks about the
               post-commit state (time 1 of the two-state db); a
               transition axiom about the window start (time 0). *)
            let at = if depth = 0 then 1 else 0 in
            let f =
              Formula.subst
                (Term.Subst.of_list [ (now_var, Term.Lit (Value.Int at)) ])
                f
            in
            let plan = Planner.plan_wff mschema f in
            let m =
              {
                m_name = name;
                m_kind = kind;
                m_depth = depth;
                m_wff = f;
                m_compiled = plan <> None;
                m_violations = 0;
              }
            in
            let plans =
              match plan with Some e -> (name, e) :: plans | None -> plans
            in
            (m :: mons, plans, skipped))
        ([], [], []) theory.Ttheory.axioms
    in
    let mons = List.rev mons in
    let max_depth =
      List.fold_left (fun acc m -> max acc m.m_depth) 1 mons
    in
    Ok
      {
        theory_name = theory.Ttheory.name;
        schema;
        mschema;
        consts = eval_consts;
        mons;
        plans = List.rev plans;
        skipped = List.rev skipped;
        max_depth;
        mdomain_times =
          Domain.add Timesort.time_sort
            (List.init (max_depth + 1) (fun i -> Value.Int i))
            Domain.empty;
        lock = Mutex.create ();
        commits = 0;
        window = [];
        mdb = None;
        prev_delta = None;
        mats = [];
        total_violations = 0;
      }

let of_file ?consts ~schema path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> (
    match Tparser.theory text with
    | Ok theory -> compile ?consts ~schema theory
    | Result.Error msg ->
      Result.Error (Error.makef Error.Parse Error.Exec_failure "%s: %s" path msg))
  | exception Sys_error msg ->
    Result.Error (Error.make Error.Io Error.Io_failure msg)

let name t = t.theory_name
let monitors t = t.mons
let skipped t = t.skipped
let commits t = Mutex.protect t.lock (fun () -> t.commits)
let violations t = Mutex.protect t.lock (fun () -> t.total_violations)

(* ------------------------------------------------------------------ *)
(* Monitor databases                                                   *)
(* ------------------------------------------------------------------ *)

let widen_rel time (r : Relation.t) : Relation.t =
  Relation.of_list
    (Relation.sorts r @ [ Timesort.time_sort ])
    (List.map (fun tu -> tu @ [ Value.Int time ]) (Relation.to_list r))

let time_pair i j =
  [ Value.Int i; Value.Int j ]

let accessible_chain n =
  Relation.of_list
    [ Timesort.time_sort; Timesort.time_sort ]
    (List.init n (fun j -> time_pair j (j + 1)))

(* The flattened database of a window of states (oldest first): every
   relation widened per state, accessibility the one-step chain. *)
let window_db (t : t) (states : Db.t list) : Db.t =
  let db =
    List.fold_left
      (fun db (r : Schema.rel_decl) ->
        let widened =
          List.mapi
            (fun j st ->
              match Db.relation st r.Schema.rname with
              | Some rel -> widen_rel j rel
              | None -> Relation.empty (r.Schema.rsorts @ [ Timesort.time_sort ]))
            states
        in
        Db.with_relation r.Schema.rname
          (List.fold_left Relation.union
             (Relation.empty (r.Schema.rsorts @ [ Timesort.time_sort ]))
             widened)
          db)
      Db.empty t.schema.Schema.relations
  in
  Db.with_relation Timesort.accessible
    (accessible_chain (List.length states - 1))
    db

let widen_delta_map time m =
  Delta.SMap.map (fun r -> widen_rel time r) m

(* The two-state monitor database's delta between consecutive commits:
   the previous commit's delta applies at time 0 (before' = after) and
   the current one at time 1. Tags keep the two disjoint, so the
   insert/delete invariants carry over from the base deltas. *)
let monitor_delta ~(prev : Delta.t) ~(cur : Delta.t) : Delta.t =
  let merge =
    Delta.SMap.union (fun _ a b -> Some (Relation.union a b))
  in
  {
    Delta.inserts =
      merge (widen_delta_map 0 prev.Delta.inserts) (widen_delta_map 1 cur.Delta.inserts);
    deletes =
      merge (widen_delta_map 0 prev.Delta.deletes) (widen_delta_map 1 cur.Delta.deletes);
    scalars_changed = false;
  }

let take n l =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  go [] n l

let attach t db =
  Mutex.protect t.lock (fun () ->
      t.commits <- 0;
      t.window <- [ db ];
      t.mdb <- None;
      t.prev_delta <- None;
      t.mats <- [])

let error_of_event (ev : event) : Error.t =
  Error.makef
    ~context:[ ("monitor", ev.ev_axiom); ("state", string_of_int ev.ev_state) ]
    Error.Commit
    (Error.Monitor_violation ev.ev_axiom)
    "monitor %s violated at state %d" ev.ev_axiom ev.ev_state

let pp_event ppf (ev : event) =
  let kind =
    match ev.ev_kind with
    | Tformula.Static -> "static"
    | Tformula.Transition -> "transition"
  in
  Fmt.pf ppf "monitor %s (%s) violated at state %d" ev.ev_axiom kind ev.ev_state

let check (t : t) ~domain ~(before : Db.t) ~(after : Db.t) :
    event list * (unit -> unit) =
  Mutex.protect t.lock @@ fun () ->
  let t0 = Mclock.now_us () in
  let mdomain = Domain.union domain t.mdomain_times in
  let in_sync =
    match t.window with cur :: _ -> cur == before | [] -> false
  in
  if (not in_sync) && t.window <> [] then Metrics.incr c_resync;
  let k = if in_sync then t.commits + 1 else 1 in
  let window' = take (t.max_depth + 1) (after :: (if in_sync then t.window else [ before ])) in
  let delta = Delta.of_dbs ~before ~after in
  (* The two-state database of this commit: advanced by the tagged
     delta when we have last commit's, rebuilt otherwise. *)
  let mdelta =
    match (in_sync, t.mdb, t.prev_delta) with
    | true, Some _, Some prev -> Some (monitor_delta ~prev ~cur:delta)
    | _ -> None
  in
  let mdb' =
    match (mdelta, t.mdb) with
    | Some md, Some m -> Delta.apply md m
    | _ -> window_db t [ before; after ]
  in
  let eval_shallow (m : compiled) :
      bool * (string * Delta.node) option =
    match List.assoc_opt m.m_name t.plans with
    | None ->
      (* outside the safe fragment: naive evaluation every commit *)
      Metrics.incr c_fallback;
      (Relcalc.holds ~domain:mdomain ~consts:t.consts mdb' m.m_wff, None)
    | Some plan -> (
      let rebuild counter =
        Metrics.incr counter;
        let node = Delta.materialize ~domain:mdomain ~consts:t.consts mdb' plan in
        (not (Relation.is_empty node.Delta.out), Some (m.m_name, node))
      in
      match (mdelta, List.assoc_opt m.m_name t.mats) with
      | Some md, Some node -> (
        match
          Delta.advance ~domain:mdomain ~consts:t.consts ~after:mdb' md plan node
        with
        | node', _ins, _del ->
          Metrics.incr c_hits;
          (not (Relation.is_empty node'.Delta.out), Some (m.m_name, node'))
        | exception Delta.Not_incremental -> rebuild c_fallback)
      | _ -> rebuild c_misses)
  in
  (* Depth ≥ 2 monitors re-evaluate over their sliding window; the
     verdict about state [k - d] exists once the window is full. *)
  let eval_deep (m : compiled) : bool =
    let states = List.rev (take (m.m_depth + 1) window') in
    let wdb = window_db t states in
    match List.assoc_opt m.m_name t.plans with
    | Some plan ->
      Metrics.incr c_misses;
      not (Relation.is_empty (Relalg.eval ~domain:mdomain ~consts:t.consts wdb plan))
    | None ->
      Metrics.incr c_fallback;
      Relcalc.holds ~domain:mdomain ~consts:t.consts wdb m.m_wff
  in
  let events = ref [] in
  let violated = ref [] in
  let mats' = ref [] in
  List.iter
    (fun (m : compiled) ->
      Metrics.incr c_checks;
      let verdict =
        if m.m_depth <= 1 then (
          let v, mat = eval_shallow m in
          (match mat with Some nm -> mats' := nm :: !mats' | None -> ());
          Some v)
        else if k >= m.m_depth then Some (eval_deep m)
        else None  (* window not yet full: no verdict about any state *)
      in
      match verdict with
      | Some false ->
        let lag = if m.m_kind = Tformula.Static then 0 else m.m_depth in
        events :=
          { ev_axiom = m.m_name; ev_kind = m.m_kind; ev_state = k - lag }
          :: !events;
        violated := m :: !violated
      | _ -> ())
    t.mons;
  let events = List.rev !events in
  let violated = !violated in
  let mats' = List.rev !mats' in
  Metrics.observe_us h_step_us (Mclock.now_us () -. t0);
  let publish () =
    Mutex.protect t.lock (fun () ->
        t.commits <- k;
        t.window <- window';
        t.mdb <- Some mdb';
        t.prev_delta <- Some delta;
        t.mats <- mats';
        t.total_violations <- t.total_violations + List.length events;
        List.iter (fun m -> m.m_violations <- m.m_violations + 1) violated;
        Metrics.add c_violations (List.length events))
  in
  (events, publish)

let advance t ~domain ~before ~after =
  let events, publish = check t ~domain ~before ~after in
  publish ();
  events
