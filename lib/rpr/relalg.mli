(** A relational algebra engine and a compiler from the safe fragment
    of the relational calculus into it.

    The naive evaluator of {!Relcalc} enumerates the full cartesian
    product of the bound variables' carriers; for range-restricted
    bodies the algebra evaluates in time proportional to the relations'
    contents instead (experiments E10 and E19). The compiler covers the
    full safe calculus: existentials become projections over joins,
    negation and range-restricted universals become antijoins.

    Compiled evaluation agrees with the naive evaluator whenever the
    database's active domain is contained in the evaluation domain's
    carriers — the standing invariant of every caller in this
    codebase. *)

open Fdbs_kernel
open Fdbs_logic

(** An argument of a selection or membership test: a column of the
    current row or a variable-free term. *)
type arg =
  | Acol of int
  | Aterm of Term.t

type col_pred =
  | Eq of arg * arg
  | Neq of arg * arg

(** Algebra expressions; columns are positional. *)
type expr =
  | Rel of string  (** contents of a database relation *)
  | Singleton of Term.t list * Sort.t list  (** one tuple of evaluated terms *)
  | Empty of Sort.t list
  | Select of col_pred list * expr
  | Project of int list * expr  (** also permutes/duplicates columns *)
  | Product of expr * expr
  | Union of expr * expr
  | Join of expr list * col_pred list
      (** n-ary equijoin: the inputs' columns concatenated in list
          order, filtered by the predicates. The optimizer introduces
          it; evaluation orders the inputs greedily by live cardinality
          and probes {!Relation.find_by} indexes on the equality links. *)
  | Antijoin of expr * expr * arg list
      (** keep left rows whose [arg] tuple (over the left columns) is
          {e not} in the right subplan *)

val pp : expr Fmt.t
val pp_arg : arg Fmt.t
val pp_preds : col_pred list Fmt.t

(** Column sorts of an expression, given the schema's relation sorts. *)
val sorts_of : rel_sorts:(string -> Sort.t list) -> expr -> Sort.t list

(** Evaluate an algebra expression against a database state. *)
val eval :
  domain:Domain.t -> ?consts:(string * Value.t) list -> Db.t -> expr -> Relation.t

(** The evaluation pieces the differential layer ({!Delta}) re-applies
    to materialized operator outputs: row predicates, antijoin
    membership keys, projection, and the greedy index-aware n-ary join
    over already-evaluated inputs. [Db.t] only feeds ground-term
    valuation. *)

val row_matches :
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  col_pred list ->
  Value.t list ->
  bool

val arg_values :
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  arg list ->
  Value.t list ->
  Value.t list

val project_rel : int list -> Relation.t -> Relation.t

val join_rels :
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  Relation.t list ->
  col_pred list ->
  Relation.t

(** Compile a relational term into an algebra expression; [None] when
    the body falls outside the safe fragment (e.g. a head variable not
    range-restricted, or a vacuous quantifier). *)
val compile : Stmt.rterm -> expr option

(** Like {!compile}, but [Error offender] carries the subformula that
    falls outside the safe fragment — surfaced by [fds explain] and the
    [`Compiled] strategy's structured error. *)
val compile_explain : Stmt.rterm -> (expr, Formula.t) result

(** Compile a closed wff to a 0-ary plan: the wff holds iff the plan
    evaluates to the non-empty (unit) relation. [None] on open or
    unsafe formulas. *)
val compile_wff : Formula.t -> expr option

val compile_wff_explain : Formula.t -> (expr, Formula.t) result

(** Optimize a compiled plan: merge [Select]/[Product] towers into
    n-ary [Join]s, push selections down to their input (through
    [Union] and [Project]), and drop identity projections. Relation
    arities come from the schema; join {e ordering} is chosen at
    evaluation time from live cardinalities. *)
val optimize : rel_arity:(string -> int) -> expr -> expr

(** Evaluate a relational term: [`Compiled] raises a structured
    {!Error.Error} ([Not_compilable]) outside the safe fragment,
    [`Auto] (default) falls back to the naive evaluator. *)
val eval_rterm :
  ?strategy:[ `Naive | `Compiled | `Auto ] ->
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  Stmt.rterm ->
  Relation.t
