(** The cost-based query planner: compile once, optimize, cache, and
    evaluate against live database states.

    Plans are cached under a structural hash of the relational term or
    wff ({!Formula.hash}), keyed per schema via {!Schema.fingerprint};
    negative results (bodies outside the safe fragment) are cached too.
    The cache is safe across {!Fdbs_kernel.Pool} domains. *)

open Fdbs_kernel
open Fdbs_logic

(** The optimized plan of a relational term under a schema, from the
    cache when warm; [None] when the body is outside the safe
    fragment. *)
val plan_rterm : Schema.t -> Stmt.rterm -> Relalg.expr option

(** The optimized 0-ary plan of a closed wff; [None] when open or
    unsafe. *)
val plan_wff : Schema.t -> Formula.t -> Relalg.expr option

(** Evaluate a relational term through the plan cache. [`Compiled]
    raises a structured {!Error.Error} ([Not_compilable]) outside the
    safe fragment; [`Auto] (default) falls back to the naive
    evaluator. *)
val eval_rterm :
  ?strategy:[ `Naive | `Compiled | `Auto ] ->
  schema:Schema.t ->
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  Stmt.rterm ->
  Relation.t

(** Truth of a closed wff through the plan cache: an emptiness test on
    the compiled 0-ary plan. [`Auto] (default) falls back to
    {!Relcalc.holds} outside the safe fragment; [`Compiled] raises the
    structured error instead. *)
val holds :
  ?strategy:[ `Naive | `Compiled | `Auto ] ->
  schema:Schema.t ->
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  Db.t ->
  Formula.t ->
  bool

(** Truth of a closed wff against the post-commit state, maintained
    differentially. [before] is the committed state the materialization
    cache last published against (compared by reference) and [delta]
    the exact difference to the new state. A warm materialization
    advances through the per-operator delta rules
    ([planner.delta_hit], [delta.apply] span); a cold one evaluates
    the plan in full and materializes ([planner.delta_miss]); stale
    state, inapplicable delta rules, and non-compilable wffs
    re-evaluate in full ([planner.delta_fallback]).

    Returns the verdict and a publish thunk; the cache is only updated
    when the thunk runs — call it after the surrounding commit
    succeeded, never on rollback. [shared:false] (ad-hoc constraints)
    bypasses the shared cache entirely. *)
val holds_delta :
  ?strategy:[ `Naive | `Compiled | `Auto ] ->
  schema:Schema.t ->
  domain:Domain.t ->
  ?consts:(string * Value.t) list ->
  before:Db.t ->
  delta:Delta.t ->
  ?shared:bool ->
  Db.t ->
  Formula.t ->
  bool * (unit -> unit)

(** Toggle differential maintenance process-wide (on by default);
    when off, {!holds_delta} evaluates directly like {!holds}. *)
val set_materialization : bool -> unit

val materialization_active : unit -> bool

(** Cumulative [(delta_hit, delta_fallback, delta_miss)] counts; also
    exported as [planner.delta_*] {!Fdbs_kernel.Metrics} counters. *)
val delta_stats : unit -> int * int * int

(** Cumulative cache [(hits, misses)] since start or {!clear}; also
    exported process-wide as the [planner.cache.hit]/[planner.cache.miss]
    {!Fdbs_kernel.Metrics} counters. *)
val stats : unit -> int * int

(** Drop every cached plan and zero the counters. *)
val clear : unit -> unit

(** Test hook: [set_key_mask (Some m)] masks every cache key with
    [land m], forcing hash-bucket collisions so tests can exercise the
    structural slot comparison (a slot matches only if schema {e and}
    term compare equal — a collision must re-plan, never cross-serve).
    [None] restores full-width keys. Not for production use. *)
val set_key_mask : int option -> unit
