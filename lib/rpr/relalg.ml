(** A relational algebra engine and a compiler from the safe fragment
    of the relational calculus into it.

    The naive evaluator of {!Relcalc} enumerates the full cartesian
    product of the bound variables' carriers; for range-restricted
    bodies the algebra evaluates in time proportional to the relations'
    contents instead. The compiler covers the full safe calculus:
    existential quantifiers become projections over joins, and negation
    and (range-restricted) universals become antijoins against compiled
    subplans — the classical reduction from calculus to algebra, which
    the paper's "set-oriented" reading of assignments anticipates
    (experiments E10 and E19).

    Compiled evaluation agrees with the naive evaluator whenever the
    database's active domain is contained in the evaluation domain's
    carriers — the standing invariant of every caller in this codebase
    (the safe-query equivalence theorem needs it: a quantifier ranges
    over carriers naively but over relation contents compiled). *)

open Fdbs_kernel
open Fdbs_logic

(** An argument of a selection or membership test: a column of the
    current row or a variable-free term. *)
type arg =
  | Acol of int
  | Aterm of Term.t

type col_pred =
  | Eq of arg * arg
  | Neq of arg * arg

(** Algebra expressions; columns are positional. *)
type expr =
  | Rel of string  (** contents of a database relation *)
  | Singleton of Term.t list * Sort.t list  (** one tuple of evaluated terms *)
  | Empty of Sort.t list
  | Select of col_pred list * expr
  | Project of int list * expr  (** also permutes/duplicates columns *)
  | Product of expr * expr
  | Union of expr * expr
  | Join of expr list * col_pred list
      (** n-ary equijoin: the inputs' columns concatenated in list
          order, filtered by the predicates. The optimizer introduces
          it; evaluation orders the inputs greedily by live cardinality
          and probes {!Relation.find_by} indexes on the equality links. *)
  | Antijoin of expr * expr * arg list
      (** keep left rows whose [arg] tuple (over the left columns) is
          {e not} in the right subplan *)

let pp_arg ppf = function
  | Acol i -> Fmt.pf ppf "#%d" i
  | Aterm t -> Term.pp ppf t

let pp_pred ppf = function
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" pp_arg a pp_arg b
  | Neq (a, b) -> Fmt.pf ppf "%a /= %a" pp_arg a pp_arg b

let pp_preds = Fmt.(list ~sep:(any " & ") pp_pred)

let rec pp ppf = function
  | Rel r -> Fmt.string ppf r
  | Singleton (ts, _) -> Fmt.pf ppf "{(%a)}" Fmt.(list ~sep:(any ", ") Term.pp) ts
  | Empty _ -> Fmt.string ppf "{}"
  | Select (ps, e) -> Fmt.pf ppf "select[%a](%a)" pp_preds ps pp e
  | Project (cols, e) ->
    Fmt.pf ppf "project[%a](%a)" Fmt.(list ~sep:(any ",") int) cols pp e
  | Product (a, b) -> Fmt.pf ppf "(%a x %a)" pp a pp b
  | Union (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Join (inputs, ps) ->
    Fmt.pf ppf "join[%a](%a)" pp_preds ps Fmt.(list ~sep:(any ", ") pp) inputs
  | Antijoin (e, sub, args) ->
    Fmt.pf ppf "antijoin[(%a)](%a, %a)"
      Fmt.(list ~sep:(any ", ") pp_arg)
      args pp e pp sub

(** Column sorts of an expression, given the schema's relation sorts. *)
let rec sorts_of ~(rel_sorts : string -> Sort.t list) : expr -> Sort.t list = function
  | Rel r -> rel_sorts r
  | Singleton (_, sorts) | Empty sorts -> sorts
  | Select (_, e) | Antijoin (e, _, _) -> sorts_of ~rel_sorts e
  | Project (cols, e) ->
    let s = Array.of_list (sorts_of ~rel_sorts e) in
    List.map (fun i -> s.(i)) cols
  | Product (a, b) -> sorts_of ~rel_sorts a @ sorts_of ~rel_sorts b
  | Union (a, _) -> sorts_of ~rel_sorts a
  | Join (inputs, _) -> List.concat_map (sorts_of ~rel_sorts) inputs

(* The pieces of evaluation the differential layer ({!Delta}) reuses on
   its own materializations: term/argument valuation, row predicates,
   projection, and the n-ary join over already-evaluated inputs. All
   term evaluation goes through {!Relcalc.eval_term} against [db]. *)

let term_value ~domain ?consts db t = Relcalc.eval_term ~domain ?consts db t

let arg_value ~domain ?consts db row = function
  | Acol i -> List.nth row i
  | Aterm t -> term_value ~domain ?consts db t

(** The values of [args] over a row — the membership key an
    {!Antijoin} probes with. *)
let arg_values ~domain ?consts db (args : arg list) (row : Value.t list) :
  Value.t list =
  List.map (arg_value ~domain ?consts db row) args

(** Does a row satisfy every selection predicate? *)
let row_matches ~domain ?consts db (ps : col_pred list) (row : Value.t list) :
  bool =
  List.for_all
    (function
      | Eq (a, b) ->
        Value.equal (arg_value ~domain ?consts db row a)
          (arg_value ~domain ?consts db row b)
      | Neq (a, b) ->
        not
          (Value.equal (arg_value ~domain ?consts db row a)
             (arg_value ~domain ?consts db row b)))
    ps

(** Project a relation onto [cols] (which may permute/duplicate). *)
let project_rel (cols : int list) (r : Relation.t) : Relation.t =
  let out_sorts = List.map (fun i -> List.nth (Relation.sorts r) i) cols in
  Relation.fold
    (fun row acc ->
      let arr = Array.of_list row in
      Relation.add (List.map (fun i -> arr.(i)) cols) acc)
    r
    (Relation.empty out_sorts)

(** Greedy index-aware n-ary join over already-evaluated inputs: seed
    with the smallest input, then repeatedly attach the smallest input
    linked to the placed set by an equality predicate (probing its
    column index), falling back to the smallest unlinked input
    (cartesian step). Every predicate is applied as soon as all its
    columns are placed. With no predicates this is the cartesian
    product. [db] only feeds ground-term valuation in predicates. *)
let join_rels ~domain ?consts db (rels : Relation.t list)
    (preds : col_pred list) : Relation.t =
  let term_value t = term_value ~domain ?consts db t in
    let out_sorts = List.concat_map Relation.sorts rels in
    let rels = Array.of_list rels in
    let n = Array.length rels in
    let widths = Array.map Relation.arity rels in
    let offsets = Array.make n 0 in
    for k = 1 to n - 1 do
      offsets.(k) <- offsets.(k - 1) + widths.(k - 1)
    done;
    let total = Array.fold_left ( + ) 0 widths in
    (* pos.(c): position of global column c in the working rows; -1 unplaced *)
    let pos = Array.make total (-1) in
    let placed = Array.make n false in
    let width_placed = ref 0 in
    let in_input k c = c >= offsets.(k) && c < offsets.(k) + widths.(k) in
    let acols p =
      let of_arg = function Acol c -> [ c ] | Aterm _ -> [] in
      match p with Eq (a, b) | Neq (a, b) -> of_arg a @ of_arg b
    in
    let available p = List.for_all (fun c -> pos.(c) >= 0) (acols p) in
    let arg_val (row : Value.t array) = function
      | Acol c -> row.(pos.(c))
      | Aterm t -> term_value t
    in
    let holds row = function
      | Eq (a, b) -> Value.equal (arg_val row a) (arg_val row b)
      | Neq (a, b) -> not (Value.equal (arg_val row a) (arg_val row b))
    in
    let remaining = ref preds in
    let take_available () =
      let av, rest = List.partition available !remaining in
      remaining := rest;
      av
    in
    let links_to k =
      List.exists
        (function
          | Eq (Acol a, Acol b) ->
            (pos.(a) >= 0 && in_input k b) || (pos.(b) >= 0 && in_input k a)
          | Eq _ | Neq _ -> false)
        !remaining
    in
    let rows = ref ([] : Value.t array list) in
    let place k =
      let rel = rels.(k) in
      let link =
        List.find_map
          (function
            | Eq (Acol a, Acol b) when pos.(a) >= 0 && in_input k b ->
              Some (pos.(a), b - offsets.(k))
            | Eq (Acol a, Acol b) when pos.(b) >= 0 && in_input k a ->
              Some (pos.(b), a - offsets.(k))
            | Eq _ | Neq _ -> None)
          !remaining
      in
      let first = !width_placed = 0 in
      for i = 0 to widths.(k) - 1 do
        pos.(offsets.(k) + i) <- !width_placed + i
      done;
      placed.(k) <- true;
      width_placed := !width_placed + widths.(k);
      let expanded =
        if first then Relation.fold (fun t acc -> Array.of_list t :: acc) rel []
        else
          match link with
          | Some (rowpos, col) ->
            List.concat_map
              (fun row ->
                Relation.find_by ~col row.(rowpos) rel
                |> List.map (fun t -> Array.append row (Array.of_list t)))
              !rows
          | None ->
            List.concat_map
              (fun row ->
                Relation.fold
                  (fun t acc -> Array.append row (Array.of_list t) :: acc)
                  rel [])
              !rows
      in
      let av = take_available () in
      rows :=
        if av = [] then expanded
        else List.filter (fun r -> List.for_all (holds r) av) expanded
    in
    (* predicates with no column at all are constant: decide them now *)
    let constant = take_available () in
    if not (List.for_all (holds [||]) constant) then Relation.empty out_sorts
    else begin
      let argmin f ks =
        match ks with
        | [] -> invalid_arg "Relalg.join: no input"
        | k0 :: rest ->
          fst
            (List.fold_left
               (fun (best, c) k ->
                 let ck = f k in
                 if ck < c then (k, ck) else (best, c))
               (k0, f k0) rest)
      in
      let card k = Relation.cardinal rels.(k) in
      while Array.exists not placed do
        let unplaced =
          List.filter (fun k -> not placed.(k)) (List.init n Fun.id)
        in
        let linked = List.filter links_to unplaced in
        let pick =
          if !width_placed = 0 || linked = [] then argmin card unplaced
          else argmin card linked
        in
        place pick
      done;
      (* all columns placed: any leftover predicate is applicable *)
      let leftover = take_available () in
      let final =
        if leftover = [] then !rows
        else List.filter (fun r -> List.for_all (holds r) leftover) !rows
      in
      Relation.of_list out_sorts
        (List.rev_map (fun row -> List.init total (fun c -> row.(pos.(c)))) final)
    end

(** Evaluate an algebra expression against a database state. Terms in
    selections are evaluated via {!Relcalc.eval_term}. *)
let eval ~domain ?consts (db : Db.t) (e : expr) : Relation.t =
  let term_value t = term_value ~domain ?consts db t in
  let arg_value row a = arg_value ~domain ?consts db row a in
  let matches ps row = row_matches ~domain ?consts db ps row in
  (* A join input's rows restricted by a constant-column equality go
     through the relation's column index instead of a scan. *)
  let indexed_select ps (rel : Relation.t) : Relation.t =
    let ground = function
      | Eq (Acol i, Aterm t) | Eq (Aterm t, Acol i) -> Some (i, t)
      | Eq _ | Neq _ -> None
    in
    match List.find_map ground ps with
    | Some (col, t) ->
      let rest = List.filter (fun p -> ground p <> Some (col, t)) ps in
      let rows =
        Relation.find_by ~col (term_value t) rel
        |> List.filter (fun row -> matches rest row)
      in
      Relation.of_list (Relation.sorts rel) rows
    | None -> Relation.filter (fun row -> matches ps row) rel
  in
  let rec go : expr -> Relation.t = function
    | Rel r -> Db.relation_exn db r
    | Singleton (ts, sorts) -> Relation.of_list sorts [ List.map term_value ts ]
    | Empty sorts -> Relation.empty sorts
    | Select (ps, Rel r) -> indexed_select ps (Db.relation_exn db r)
    | Select (ps, e) -> Relation.filter (fun row -> matches ps row) (go e)
    | Project (cols, e) -> project_rel cols (go e)
    | Product (a, b) ->
      let ra = go a and rb = go b in
      Relation.fold
        (fun row_a acc ->
          Relation.fold (fun row_b acc -> Relation.add (row_a @ row_b) acc) rb acc)
        ra
        (Relation.empty (Relation.sorts ra @ Relation.sorts rb))
    | Union (a, b) -> Relation.union (go a) (go b)
    | Join (inputs, preds) -> join_rels ~domain ?consts db (List.map go inputs) preds
    | Antijoin (e, sub, args) ->
      let target = go sub in
      Relation.filter
        (fun row -> not (Relation.mem (List.map (arg_value row) args) target))
        (go e)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Compilation from the safe calculus                                  *)
(* ------------------------------------------------------------------ *)

(* The offending subformula travels with the failure so the structured
   error (and `fds explain`) can point at it. *)
exception Not_compilable of Formula.t

(* Clause literals of the positive-structure DNF: quantified subformulas
   stay opaque and are compiled recursively on their free variables. *)
type literal =
  | Lpos of string * Term.t list
  | Lneg of string * Term.t list
  | Leq of Term.t * Term.t
  | Lneq of Term.t * Term.t
  | Lexists of Term.var * Formula.t  (** a positive [∃v. g] *)
  | Lnegsub of Formula.t  (** a negated quantified subformula *)

(* Disjunctive normal form over the propositional structure, treating
   quantified subformulas as literals. A positive [∀v. g] is read as
   [¬∃v. ¬g] (an antijoin after compilation); a negated [∀v. g] as
   [∃v. ¬g]. Raises [Not_compilable] past [max_clauses]. *)
let dnf ?(max_clauses = 512) (f : Formula.t) : literal list list =
  let rec pos = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Pred (r, args) -> [ [ Lpos (r, args) ] ]
    | Formula.Eq (a, b) -> [ [ Leq (a, b) ] ]
    | Formula.Not g -> neg g
    | Formula.And (g, h) ->
      let dg = pos g and dh = pos h in
      let product = List.concat_map (fun cg -> List.map (fun ch -> cg @ ch) dh) dg in
      if List.length product > max_clauses then raise (Not_compilable f) else product
    | Formula.Or (g, h) ->
      let d = pos g @ pos h in
      if List.length d > max_clauses then raise (Not_compilable f) else d
    | Formula.Imp (g, h) -> pos (Formula.Or (Formula.Not g, h))
    | Formula.Iff (g, h) ->
      pos (Formula.And (Formula.Imp (g, h), Formula.Imp (h, g)))
    | Formula.Exists (v, g) -> [ [ Lexists (v, g) ] ]
    | Formula.Forall (v, g) ->
      [ [ Lnegsub (Formula.Exists (v, Formula.Not g)) ] ]
  and neg = function
    | Formula.True -> []
    | Formula.False -> [ [] ]
    | Formula.Pred (r, args) -> [ [ Lneg (r, args) ] ]
    | Formula.Eq (a, b) -> [ [ Lneq (a, b) ] ]
    | Formula.Not g -> pos g
    | Formula.And (g, h) -> pos (Formula.Or (Formula.Not g, Formula.Not h))
    | Formula.Or (g, h) -> pos (Formula.And (Formula.Not g, Formula.Not h))
    | Formula.Imp (g, h) -> pos (Formula.And (g, Formula.Not h))
    | Formula.Iff (g, h) ->
      pos (Formula.Or (Formula.And (g, Formula.Not h), Formula.And (h, Formula.Not g)))
    | Formula.Exists (v, g) -> [ [ Lnegsub (Formula.Exists (v, g)) ] ]
    | Formula.Forall (v, g) -> [ [ Lexists (v, Formula.Not g) ] ]
  in
  pos f

let var_mem v vs = List.exists (Term.var_equal v) vs

(* The clause as a formula again — [Not_compilable] offenders point at
   it rather than at a synthetic placeholder. *)
let formula_of_lits (lits : literal list) : Formula.t =
  Formula.conj
    (List.map
       (function
         | Lpos (r, args) -> Formula.Pred (r, args)
         | Lneg (r, args) -> Formula.Not (Formula.Pred (r, args))
         | Leq (a, b) -> Formula.Eq (a, b)
         | Lneq (a, b) -> Formula.Not (Formula.Eq (a, b))
         | Lexists (v, g) -> Formula.Exists (v, g)
         | Lnegsub g -> Formula.Not g)
       lits)

let fresh_var (avoid : Term.var list) (v : Term.var) : Term.var =
  let rec pick i =
    let cand = { v with Term.vname = Fmt.str "%s~%d" v.Term.vname i } in
    if var_mem cand avoid then pick (i + 1) else cand
  in
  if var_mem v avoid then pick 0 else v

(* Compile a body with output columns [head], in order. Every head
   variable — and every variable an antijoin or selection needs — must
   be range-restricted: bound by a positive atom, a compiled positive
   subformula, an equality with a ground term, or an equality chain to
   such a variable. *)
let rec compile_body (head : Term.var list) (f : Formula.t) : expr =
  let head_sorts = List.map (fun v -> v.Term.vsort) head in
  match dnf f with
  | [] -> Empty head_sorts
  | c :: rest ->
    List.fold_left
      (fun acc clause -> Union (acc, compile_clause head clause))
      (compile_clause head c)
      rest

(* [∃v. g] as project-over-join: compile [g] with [v] as an extra
   output column, then drop it. A vacuous quantifier (v not free in g)
   depends on the carrier being non-empty — not range-restricted.

   [ctx] carries the enclosing clause's positive context (atoms and
   ground equalities): conjoining it under the quantifier — after
   alpha-renaming [v] away from its variables — keeps subformulas like
   [∃s2. TAKES(s2, c) & ¬OFFERED(c') ] range-restricted when the
   restriction of a free variable comes from outside the quantifier.
   Rows joined with the outer clause all satisfy [ctx], so the
   conjunction does not change the clause's meaning. *)
and compile_exists ~(ctx : Formula.t list) (v : Term.var) (g : Formula.t) :
  Term.var list * expr =
  if not (var_mem v (Formula.free_vars g)) then
    raise (Not_compilable (Formula.Exists (v, g)));
  (* Prefer the standalone subplan: when [g] restricts its own free
     variables the plan is independent of the enclosing clause and
     usually far smaller — [∃s2. TAKES(s2, c)] projects TAKES to its
     course column instead of re-joining the outer relations. Fall back
     to conjoining [ctx] only when the standalone body leaves a free
     variable unrestricted. *)
  match
    let fvs = Formula.free_vars (Formula.Exists (v, g)) in
    (fvs, compile_body (fvs @ [ v ]) g)
  with
  | fvs, e -> (fvs, Project (List.init (List.length fvs) Fun.id, e))
  | exception Not_compilable _ -> compile_exists_in_ctx ~ctx v g

and compile_exists_in_ctx ~(ctx : Formula.t list) (v : Term.var) (g : Formula.t)
  : Term.var list * expr =
  if ctx = [] then raise (Not_compilable (Formula.Exists (v, g)));
  let ctx_fvs = List.concat_map Formula.free_vars ctx in
  let v, g =
    if var_mem v ctx_fvs then begin
      let v' = fresh_var (ctx_fvs @ Formula.free_vars g) v in
      (v', Formula.subst (Term.Subst.of_list [ (v, Term.Var v') ]) g)
    end
    else (v, g)
  in
  let g = Formula.conj (g :: ctx) in
  let fvs = Formula.free_vars (Formula.Exists (v, g)) in
  let e = compile_body (fvs @ [ v ]) g in
  (fvs, Project (List.init (List.length fvs) Fun.id, e))

and compile_clause (head : Term.var list) (lits : literal list) : expr =
  let is_var = function Term.Var _ -> true | Term.App _ | Term.Lit _ -> false in
  (* The clause's positive context, pushed into quantified subformulas
     so their free variables inherit the clause's range restriction. *)
  let ctx =
    List.filter_map
      (function
        | Lpos (r, args) -> Some (Formula.Pred (r, args))
        | Leq (Term.Var x, t) when (not (is_var t)) && Term.is_ground t ->
          Some (Formula.Eq (Term.Var x, t))
        | Leq (t, Term.Var x) when (not (is_var t)) && Term.is_ground t ->
          Some (Formula.Eq (Term.Var x, t))
        | _ -> None)
      lits
  in
  (* Positive binding sources: atoms over database relations, and
     compiled positive subformulas binding their free variables. *)
  let positives =
    List.filter_map
      (function
        | Lpos (r, args) -> Some (args, Rel r)
        | Lexists (v, g) ->
          let fvs, e = compile_exists ~ctx v g in
          Some (List.map (fun v -> Term.Var v) fvs, e)
        | Lneg _ | Leq _ | Lneq _ | Lnegsub _ -> None)
      lits
  in
  let bindings : (Term.var * int) list ref = ref [] in
  let selects : col_pred list ref = ref [] in
  let offset = ref 0 in
  let col_of v =
    match List.find_opt (fun (v', _) -> Term.var_equal v v') !bindings with
    | Some (_, c) -> Some c
    | None -> None
  in
  let base =
    List.fold_left
      (fun acc (args, src) ->
        let here = !offset in
        List.iteri
          (fun i arg ->
            let col = here + i in
            match arg with
            | Term.Var v ->
              (match col_of v with
               | Some col0 -> selects := Eq (Acol col, Acol col0) :: !selects
               | None -> bindings := (v, col) :: !bindings)
            | t ->
              if not (Term.is_ground t) then raise (Not_compilable (Formula.Pred ("", [ t ])));
              selects := Eq (Acol col, Aterm t) :: !selects)
          args;
        offset := here + List.length args;
        match acc with None -> Some src | Some e -> Some (Product (e, src)))
      None positives
  in
  (* Equalities binding variables to ground terms. *)
  let ground_eqs =
    List.filter_map
      (function
        | Leq (Term.Var v, t) when (not (is_var t)) && Term.is_ground t -> Some (v, t)
        | Leq (t, Term.Var v) when (not (is_var t)) && Term.is_ground t -> Some (v, t)
        | _ -> None)
      lits
  in
  (* Variables bound only by a ground equality become singleton columns
     appended to the product. *)
  let extra_cols = ref [] in
  List.iter
    (fun (v, t) ->
      if col_of v = None && not (List.exists (fun (v', _) -> Term.var_equal v v') !extra_cols)
      then extra_cols := (v, t) :: !extra_cols)
    ground_eqs;
  let extra_cols = List.rev !extra_cols in
  let base =
    match (base, extra_cols) with
    | None, [] ->
      if head = [] then Singleton ([], [])
      else raise (Not_compilable (formula_of_lits lits))
    | None, cols ->
      Singleton (List.map snd cols, List.map (fun (v, _) -> v.Term.vsort) cols)
    | Some e, [] -> e
    | Some e, cols ->
      Product
        (e, Singleton (List.map snd cols, List.map (fun (v, _) -> v.Term.vsort) cols))
  in
  List.iteri (fun i (v, _) -> bindings := (v, !offset + i) :: !bindings) extra_cols;
  (* Propagate bindings along variable-variable equality chains: in
     [R(x) & x = y], [y] shares [x]'s column. *)
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (function
        | Leq (Term.Var v, Term.Var w) ->
          (match (col_of v, col_of w) with
           | Some c, None ->
             bindings := (w, c) :: !bindings;
             progress := true
           | None, Some c ->
             bindings := (v, c) :: !bindings;
             progress := true
           | _ -> ())
        | _ -> ())
      lits
  done;
  let arg_of (t : Term.t) : arg =
    match t with
    | Term.Var v ->
      (match col_of v with
       | Some c -> Acol c
       | None -> raise (Not_compilable (Formula.Eq (t, t))))
    | t ->
      if Term.is_ground t then Aterm t else raise (Not_compilable (Formula.Eq (t, t)))
  in
  (* Remaining equality/disequality literals become selections. *)
  List.iter
    (function
      | Leq (a, b) ->
        (* ground equalities consumed as singleton bindings are
           tautological on their own column; a var-var equality whose
           sides share a column (chain propagation) likewise *)
        let used_ground v t =
          (not (is_var t))
          && List.exists
               (fun (v', t') -> Term.var_equal v v' && Term.equal t t')
               extra_cols
        in
        let used =
          match (a, b) with
          | Term.Var v, Term.Var w -> col_of v = col_of w && col_of v <> None
          | Term.Var v, t -> used_ground v t
          | t, Term.Var v -> used_ground v t
          | _ -> false
        in
        if not used then selects := Eq (arg_of a, arg_of b) :: !selects
      | Lneq (a, b) -> selects := Neq (arg_of a, arg_of b) :: !selects
      | Lpos _ | Lneg _ | Lexists _ | Lnegsub _ -> ())
    lits;
  let with_selects = if !selects = [] then base else Select (!selects, base) in
  (* Negated atoms and negated subformulas become antijoins; all their
     free variables must be bound. *)
  let with_antijoins =
    List.fold_left
      (fun acc lit ->
        match lit with
        | Lneg (r, args) -> Antijoin (acc, Rel r, List.map arg_of args)
        | Lnegsub (Formula.Exists (v, h)) ->
          (* the subplan also gets the clause's positive context: every
             outer row tested by the antijoin satisfies it, so the
             membership test is unchanged while the subformula's free
             variables stay range-restricted *)
          let fvs, sub = compile_exists ~ctx v h in
          let args =
            List.map
              (fun v ->
                match col_of v with
                | Some c -> Acol c
                | None -> raise (Not_compilable (Formula.Exists (v, h))))
              fvs
          in
          Antijoin (acc, sub, args)
        | Lnegsub g -> raise (Not_compilable g)
        | Lpos _ | Leq _ | Lneq _ | Lexists _ -> acc)
      with_selects lits
  in
  let cols =
    List.map
      (fun v ->
        match col_of v with
        | Some c -> c
        | None -> raise (Not_compilable (formula_of_lits lits)))
      head
  in
  Project (cols, with_antijoins)

(* Distinct head variables, or the compiled projection would silently
   diverge from the naive evaluator's per-position enumeration. *)
let check_head (vars : Term.var list) =
  let rec distinct = function
    | [] -> true
    | v :: rest -> (not (var_mem v rest)) && distinct rest
  in
  if not (distinct vars) then
    raise (Not_compilable (Formula.conj []))

(** Compile a relational term; [Error offender] points at the
    subformula that falls outside the safe fragment. *)
let compile_explain (rt : Stmt.rterm) : (expr, Formula.t) result =
  match
    check_head rt.Stmt.rt_vars;
    compile_body rt.Stmt.rt_vars rt.Stmt.rt_body
  with
  | e -> Ok e
  | exception Not_compilable offender -> Error offender

let compile (rt : Stmt.rterm) : expr option =
  Result.to_option (compile_explain rt)

(** Compile a closed wff to a 0-ary plan: the wff holds iff the plan
    evaluates to the non-empty (unit) relation. *)
let compile_wff_explain (f : Formula.t) : (expr, Formula.t) result =
  if Formula.free_vars f <> [] then Error f
  else
    match compile_body [] f with
    | e -> Ok e
    | exception Not_compilable offender -> Error offender

let compile_wff (f : Formula.t) : expr option =
  Result.to_option (compile_wff_explain f)

(* ------------------------------------------------------------------ *)
(* The optimizer                                                       *)
(* ------------------------------------------------------------------ *)

(** Optimize a compiled plan: merge [Select]/[Product] towers into
    n-ary [Join]s, push single-input selections down to their input
    (through [Union] and [Project]), and drop identity projections.
    Relation arities come from the schema; join {e ordering} is chosen
    at evaluation time from live cardinalities. *)
let optimize ~(rel_arity : string -> int) (e : expr) : expr =
  let rec arity = function
    | Rel r -> rel_arity r
    | Singleton (ts, _) -> List.length ts
    | Empty sorts -> List.length sorts
    | Select (_, e) | Antijoin (e, _, _) -> arity e
    | Project (cols, _) -> List.length cols
    | Product (a, b) -> arity a + arity b
    | Union (a, _) -> arity a
    | Join (inputs, _) -> Util.sum (List.map arity inputs)
  in
  let shift_arg off = function Acol i -> Acol (i + off) | a -> a in
  let shift off = function
    | Eq (a, b) -> Eq (shift_arg off a, shift_arg off b)
    | Neq (a, b) -> Neq (shift_arg off a, shift_arg off b)
  in
  let acols p =
    let of_arg = function Acol c -> [ c ] | Aterm _ -> [] in
    match p with Eq (a, b) | Neq (a, b) -> of_arg a @ of_arg b
  in
  (* Flatten a Select/Product tower into leaves (with their global
     column offsets) and the predicates over the concatenated columns. *)
  let rec flatten off e (leaves, preds) =
    match e with
    | Product (a, b) ->
      let leaves, preds = flatten off a (leaves, preds) in
      flatten (off + arity a) b (leaves, preds)
    | Select (ps, inner) -> flatten off inner (leaves, List.map (shift off) ps @ preds)
    | leaf -> ((off, arity leaf, leaf) :: leaves, preds)
  in
  let rec go e =
    match e with
    | Rel _ | Singleton _ | Empty _ -> e
    | Union (a, b) -> Union (go a, go b)
    | Project (cols, e1) ->
      let e1 = go e1 in
      (* compose consecutive projections, then drop the identity *)
      let cols, e1 =
        match e1 with
        | Project (inner, e2) ->
          let arr = Array.of_list inner in
          (List.map (fun i -> arr.(i)) cols, e2)
        | _ -> (cols, e1)
      in
      if cols = List.init (arity e1) Fun.id then e1 else Project (cols, e1)
    | Antijoin (l, r, args) -> Antijoin (go l, go r, args)
    | Join (inputs, preds) -> Join (List.map go inputs, preds)
    | Select _ | Product _ ->
      let leaves, preds = flatten 0 e ([], []) in
      let leaves = List.rev leaves in
      (* attach each predicate to the single leaf covering all its
         columns, if any; constant predicates stay global *)
      let local_of p =
        match acols p with
        | [] -> None
        | cs ->
          List.find_opt (fun (off, w, _) -> List.for_all (fun c -> c >= off && c < off + w) cs) leaves
          |> Option.map (fun (off, _, _) -> off)
      in
      let local, global =
        List.partition_map
          (fun p ->
            match local_of p with
            | Some off -> Left (off, shift (-off) p)
            | None -> Right p)
          preds
      in
      let optimized_leaves =
        List.map
          (fun (off, _, leaf) ->
            let ps = List.filter_map (fun (o, p) -> if o = off then Some p else None) local in
            push ps leaf)
          leaves
      in
      (match optimized_leaves with
       | [ single ] -> if global = [] then single else Select (global, single)
       | several -> Join (several, global))
  (* Push localized predicates into a leaf: through Union branches and
     Project column maps; otherwise leave a Select at the leaf. *)
  and push ps leaf =
    if ps = [] then go leaf
    else
      match leaf with
      | Union (a, b) -> Union (go (Select (ps, a)), go (Select (ps, b)))
      | Project (cols, e1) ->
        let arr = Array.of_list cols in
        let remap_arg = function Acol i -> Acol arr.(i) | a -> a in
        let remap = function
          | Eq (a, b) -> Eq (remap_arg a, remap_arg b)
          | Neq (a, b) -> Neq (remap_arg a, remap_arg b)
        in
        go (Project (cols, Select (List.map remap ps, e1)))
      | leaf -> Select (ps, go leaf)
  in
  go e

(** Evaluate a relational term, preferring the compiled algebra and
    falling back to naive enumeration. *)
let eval_rterm ?(strategy = `Auto) ~domain ?consts (db : Db.t) (rt : Stmt.rterm) :
  Relation.t =
  Fault.hit "relalg.eval";
  let naive () = Relcalc.eval_rterm_naive ~domain ?consts db rt in
  match strategy with
  | `Naive -> naive ()
  | `Compiled ->
    (match compile_explain rt with
     | Ok e -> eval ~domain ?consts db e
     | Error offender ->
       Error.raise_error Error.Exec
         (Error.Not_compilable (Formula.to_string offender))
         (Fmt.str "body not compilable: %a falls outside the safe fragment"
            Formula.pp offender))
  | `Auto ->
    (match compile rt with
     | Some e -> eval ~domain ?consts db e
     | None -> naive ())
