(** A relational algebra engine and a compiler from the safe,
    quantifier-free fragment of the relational calculus into it.

    The naive evaluator of {!Relcalc} enumerates the full cartesian
    product of the bound variables' carriers; for the common
    range-restricted bodies (such as those produced by desugaring
    [insert]/[delete]) the algebra evaluates in time proportional to the
    relations' contents instead. This realizes the paper's remark that
    the general form of assignments leads to a "set-oriented" style —
    and quantifies its cost (experiment E10). *)

open Fdbs_kernel
open Fdbs_logic

(** An argument of a membership test: a column of the current row or a
    variable-free term. *)
type arg =
  | Acol of int
  | Aterm of Term.t

type col_pred =
  | Eq of arg * arg
  | Neq of arg * arg

(** Algebra expressions; columns are positional. *)
type expr =
  | Rel of string  (** contents of a database relation *)
  | Singleton of Term.t list * Sort.t list  (** one tuple of evaluated terms *)
  | Empty of Sort.t list
  | Select of col_pred list * expr
  | Project of int list * expr  (** also permutes/duplicates columns *)
  | Product of expr * expr
  | Union of expr * expr
  | Antijoin of expr * string * arg list
      (** keep rows whose [arg] tuple is {e not} in the named relation *)

let rec pp ppf = function
  | Rel r -> Fmt.string ppf r
  | Singleton (ts, _) -> Fmt.pf ppf "{(%a)}" Fmt.(list ~sep:(any ", ") Term.pp) ts
  | Empty _ -> Fmt.string ppf "{}"
  | Select (ps, e) -> Fmt.pf ppf "select[%d preds](%a)" (List.length ps) pp e
  | Project (cols, e) ->
    Fmt.pf ppf "project[%a](%a)" Fmt.(list ~sep:(any ",") int) cols pp e
  | Product (a, b) -> Fmt.pf ppf "(%a x %a)" pp a pp b
  | Union (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Antijoin (e, r, args) -> Fmt.pf ppf "antijoin[%s/%d](%a)" r (List.length args) pp e

(** Column sorts of an expression, given the schema's relation sorts. *)
let rec sorts_of ~(rel_sorts : string -> Sort.t list) : expr -> Sort.t list = function
  | Rel r -> rel_sorts r
  | Singleton (_, sorts) | Empty sorts -> sorts
  | Select (_, e) | Antijoin (e, _, _) -> sorts_of ~rel_sorts e
  | Project (cols, e) ->
    let s = Array.of_list (sorts_of ~rel_sorts e) in
    List.map (fun i -> s.(i)) cols
  | Product (a, b) -> sorts_of ~rel_sorts a @ sorts_of ~rel_sorts b
  | Union (a, _) -> sorts_of ~rel_sorts a

(** Evaluate an algebra expression against a database state. Terms in
    selections are evaluated via {!Relcalc.eval_term}. *)
let eval ~domain ?consts (db : Db.t) (e : expr) : Relation.t =
  let term_value t = Relcalc.eval_term ~domain ?consts db t in
  let arg_value row = function
    | Acol i -> List.nth row i
    | Aterm t -> term_value t
  in
  let pred_holds row = function
    | Eq (a, b) -> Value.equal (arg_value row a) (arg_value row b)
    | Neq (a, b) -> not (Value.equal (arg_value row a) (arg_value row b))
  in
  let rec go : expr -> Relation.t = function
    | Rel r -> Db.relation_exn db r
    | Singleton (ts, sorts) -> Relation.of_list sorts [ List.map term_value ts ]
    | Empty sorts -> Relation.empty sorts
    | Select (ps, e) -> Relation.filter (fun row -> List.for_all (pred_holds row) ps) (go e)
    | Project (cols, e) ->
      let r = go e in
      let out_sorts = List.map (fun i -> List.nth (Relation.sorts r) i) cols in
      Relation.fold
        (fun row acc ->
          let arr = Array.of_list row in
          Relation.add (List.map (fun i -> arr.(i)) cols) acc)
        r
        (Relation.empty out_sorts)
    | Product (a, b) ->
      let ra = go a and rb = go b in
      Relation.fold
        (fun row_a acc ->
          Relation.fold (fun row_b acc -> Relation.add (row_a @ row_b) acc) rb acc)
        ra
        (Relation.empty (Relation.sorts ra @ Relation.sorts rb))
    | Union (a, b) -> Relation.union (go a) (go b)
    | Antijoin (e, r, args) ->
      let target = Db.relation_exn db r in
      Relation.filter
        (fun row -> not (Relation.mem (List.map (arg_value row) args) target))
        (go e)
  in
  go e

(* ------------------------------------------------------------------ *)
(* Compilation from the safe calculus fragment                         *)
(* ------------------------------------------------------------------ *)

type literal =
  | Lpos of string * Term.t list
  | Lneg of string * Term.t list
  | Leq of Term.t * Term.t
  | Lneq of Term.t * Term.t

exception Not_compilable

(* Disjunctive normal form of a quantifier-free wff, as literal lists.
   Raises [Not_compilable] on quantifiers or blow-up past [max_clauses]. *)
let dnf ?(max_clauses = 64) (f : Formula.t) : literal list list =
  let rec pos = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Pred (r, args) -> [ [ Lpos (r, args) ] ]
    | Formula.Eq (a, b) -> [ [ Leq (a, b) ] ]
    | Formula.Not g -> neg g
    | Formula.And (g, h) ->
      let dg = pos g and dh = pos h in
      let product = List.concat_map (fun cg -> List.map (fun ch -> cg @ ch) dh) dg in
      if List.length product > max_clauses then raise Not_compilable else product
    | Formula.Or (g, h) ->
      let d = pos g @ pos h in
      if List.length d > max_clauses then raise Not_compilable else d
    | Formula.Imp (g, h) -> pos (Formula.Or (Formula.Not g, h))
    | Formula.Iff (g, h) ->
      pos (Formula.And (Formula.Imp (g, h), Formula.Imp (h, g)))
    | Formula.Forall _ | Formula.Exists _ -> raise Not_compilable
  and neg = function
    | Formula.True -> []
    | Formula.False -> [ [] ]
    | Formula.Pred (r, args) -> [ [ Lneg (r, args) ] ]
    | Formula.Eq (a, b) -> [ [ Lneq (a, b) ] ]
    | Formula.Not g -> pos g
    | Formula.And (g, h) -> pos (Formula.Or (Formula.Not g, Formula.Not h))
    | Formula.Or (g, h) -> pos (Formula.And (Formula.Not g, Formula.Not h))
    | Formula.Imp (g, h) -> pos (Formula.And (g, Formula.Not h))
    | Formula.Iff (g, h) ->
      pos (Formula.Or (Formula.And (g, Formula.Not h), Formula.And (h, Formula.Not g)))
    | Formula.Forall _ | Formula.Exists _ -> raise Not_compilable
  in
  pos f

(* Compile one conjunctive clause. [head] lists the output variables in
   order. Every head variable must be bound by a positive atom or an
   equality with a variable-free term (range restriction). *)
let compile_clause (head : Term.var list) (lits : literal list) : expr =
  let is_var = function Term.Var _ -> true | Term.App _ | Term.Lit _ -> false in
  let positives =
    List.filter_map (function Lpos (r, args) -> Some (r, args) | _ -> None) lits
  in
  (* Build the product of positive atoms and record column bindings. *)
  let bindings : (Term.var * int) list ref = ref [] in
  let selects : col_pred list ref = ref [] in
  let offset = ref 0 in
  let base =
    List.fold_left
      (fun acc (r, args) ->
        let here = !offset in
        List.iteri
          (fun i arg ->
            let col = here + i in
            match arg with
            | Term.Var v ->
              (match List.find_opt (fun (v', _) -> Term.var_equal v v') !bindings with
               | Some (_, col0) -> selects := Eq (Acol col, Acol col0) :: !selects
               | None -> bindings := (v, col) :: !bindings)
            | t -> selects := Eq (Acol col, Aterm t) :: !selects)
          args;
        offset := here + List.length args;
        match acc with None -> Some (Rel r) | Some e -> Some (Product (e, Rel r)))
      None positives
  in
  (* Equalities binding otherwise-unbound variables to ground terms. *)
  let ground_eqs =
    List.filter_map
      (function
        | Leq (Term.Var v, t) when not (is_var t) -> Some (v, t)
        | Leq (t, Term.Var v) when not (is_var t) -> Some (v, t)
        | _ -> None)
      lits
  in
  let col_of v =
    match List.find_opt (fun (v', _) -> Term.var_equal v v') !bindings with
    | Some (_, c) -> Some c
    | None -> None
  in
  (* Head variables bound only by ground equalities become singleton
     columns appended to the product. *)
  let extra_cols = ref [] in
  List.iter
    (fun v ->
      if col_of v = None then
        match List.find_opt (fun (v', _) -> Term.var_equal v v') ground_eqs with
        | Some (_, t) ->
          extra_cols := (v, t) :: !extra_cols
        | None -> raise Not_compilable)
    head;
  let extra_cols = List.rev !extra_cols in
  let base =
    match (base, extra_cols) with
    | None, [] -> raise Not_compilable
    | None, cols ->
      Singleton (List.map snd cols, List.map (fun (v, _) -> v.Term.vsort) cols)
    | Some e, [] -> e
    | Some e, cols ->
      Product
        (e, Singleton (List.map snd cols, List.map (fun (v, _) -> v.Term.vsort) cols))
  in
  (* Register the extra columns' positions. *)
  List.iteri (fun i (v, _) -> bindings := (v, !offset + i) :: !bindings) extra_cols;
  let arg_of (t : Term.t) : arg =
    match t with
    | Term.Var v ->
      (match col_of v with Some c -> Acol c | None -> raise Not_compilable)
    | t -> Aterm t
  in
  (* Remaining equality/disequality literals become selections. *)
  List.iter
    (function
      | Lpos _ -> ()
      | Leq (a, b) ->
        (* skip the ground equalities already used to bind head vars *)
        let used =
          match (a, b) with
          | Term.Var v, t | t, Term.Var v ->
            (not (is_var t))
            && List.exists
                 (fun (v', t') -> Term.var_equal v v' && Term.equal t t')
                 extra_cols
          | _ -> false
        in
        if not used then selects := Eq (arg_of a, arg_of b) :: !selects
      | Lneq (a, b) -> selects := Neq (arg_of a, arg_of b) :: !selects
      | Lneg _ -> ())
    lits;
  let with_selects = if !selects = [] then base else Select (!selects, base) in
  (* Negative atoms become antijoins; all their variables must be bound. *)
  let with_antijoins =
    List.fold_left
      (fun acc lit ->
        match lit with
        | Lneg (r, args) -> Antijoin (acc, r, List.map arg_of args)
        | Lpos _ | Leq _ | Lneq _ -> acc)
      with_selects lits
  in
  (* Project the head variables, in order. *)
  let cols =
    List.map
      (fun v -> match col_of v with Some c -> c | None -> raise Not_compilable)
      head
  in
  Project (cols, with_antijoins)

(** Compile a relational term into an algebra expression; [None] when
    the body falls outside the supported fragment (quantifiers, or a
    head variable not range-restricted). *)
let compile (rt : Stmt.rterm) : expr option =
  match
    let clauses = dnf rt.Stmt.rt_body in
    let head = rt.Stmt.rt_vars in
    let head_sorts = List.map (fun v -> v.Term.vsort) head in
    match clauses with
    | [] -> Empty head_sorts
    | c :: rest ->
      List.fold_left
        (fun acc clause -> Union (acc, compile_clause head clause))
        (compile_clause head c)
        rest
  with
  | e -> Some e
  | exception Not_compilable -> None

(** Evaluate a relational term, preferring the compiled algebra and
    falling back to naive enumeration. *)
let eval_rterm ?(strategy = `Auto) ~domain ?consts (db : Db.t) (rt : Stmt.rterm) :
  Relation.t =
  Fault.hit "relalg.eval";
  let naive () = Relcalc.eval_rterm_naive ~domain ?consts db rt in
  match strategy with
  | `Naive -> naive ()
  | `Compiled ->
    (match compile rt with
     | Some e -> eval ~domain ?consts db e
     | None -> invalid_arg "Relalg.eval_rterm: body not compilable")
  | `Auto ->
    (match compile rt with
     | Some e -> eval ~domain ?consts db e
     | None -> naive ())
