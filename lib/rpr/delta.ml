(** Differential maintenance for the relational algebra.

    A {!t} is the exact difference between two database states:
    per-relation insert and delete sets (inserts disjoint from the
    before-state, deletes contained in it), plus a flag recording
    whether any scalar changed. {!of_dbs} computes it from a [Txn]
    snapshot/final pair in time proportional to the {e changed}
    relations — unchanged relations are shared by reference across
    commits and skipped by physical equality.

    A {!node} is a materialization of a compiled {!Relalg} plan: the
    evaluated output of every operator in the tree. {!advance} pushes a
    delta through the materialization using the classic ΔQ(R ⊎ ΔR)
    rewrites — per-operator rules for select, project, product, union,
    n-ary join and antijoin — returning the updated materialization
    together with the exact insert/delete sets of the plan's output.
    Work scales with the delta (and the derivations it actually
    triggers), not with the database.

    When a rule does not apply — today, when a scalar changed, since
    ground terms inside selections and singletons read scalars through
    {!Relcalc.eval_term} — {!advance} raises {!Not_incremental} and the
    caller falls back to full re-evaluation, mirroring the planner's
    [Not_compilable] pattern. *)

open Fdbs_kernel

module SMap = Db.SMap

type t = {
  inserts : Relation.t SMap.t;  (** disjoint from the before-state *)
  deletes : Relation.t SMap.t;  (** contained in the before-state *)
  scalars_changed : bool;
}

let empty = { inserts = SMap.empty; deletes = SMap.empty; scalars_changed = false }

let is_empty (d : t) =
  SMap.is_empty d.inserts && SMap.is_empty d.deletes && not d.scalars_changed

let inserts (d : t) name ~sorts : Relation.t =
  match SMap.find_opt name d.inserts with
  | Some r -> r
  | None -> Relation.empty sorts

let deletes (d : t) name ~sorts : Relation.t =
  match SMap.find_opt name d.deletes with
  | Some r -> r
  | None -> Relation.empty sorts

(** Relation names touched by the delta, sorted. *)
let touches (d : t) : string list =
  let add name _ acc = if List.mem name acc then acc else name :: acc in
  SMap.fold add d.deletes (SMap.fold add d.inserts []) |> List.sort compare

(** Total number of inserted plus deleted tuples. *)
let cardinal (d : t) : int =
  let sum m = SMap.fold (fun _ r acc -> acc + Relation.cardinal r) m 0 in
  sum d.inserts + sum d.deletes

(** The exact difference taking [before] to [after]. Relations shared
    by reference between the two states are skipped without comparison:
    [Txn] commits rebind only the updated names, so this is O(changed
    relations), not O(db). *)
let of_dbs ~(before : Db.t) ~(after : Db.t) : t =
  let inserts = ref SMap.empty and deletes = ref SMap.empty in
  SMap.iter
    (fun name ra ->
      match SMap.find_opt name before.Db.relations with
      | Some rb when rb == ra -> ()
      | Some rb ->
        let ins = Relation.diff ra rb and del = Relation.diff rb ra in
        if not (Relation.is_empty ins) then inserts := SMap.add name ins !inserts;
        if not (Relation.is_empty del) then deletes := SMap.add name del !deletes
      | None ->
        if not (Relation.is_empty ra) then inserts := SMap.add name ra !inserts)
    after.Db.relations;
  SMap.iter
    (fun name rb ->
      if (not (SMap.mem name after.Db.relations)) && not (Relation.is_empty rb)
      then deletes := SMap.add name rb !deletes)
    before.Db.relations;
  let scalars_changed =
    (not (before.Db.scalars == after.Db.scalars))
    && not (SMap.equal Value.equal before.Db.scalars after.Db.scalars)
  in
  { inserts = !inserts; deletes = !deletes; scalars_changed }

(** Apply the relational part of a delta to a state (scalars are not
    carried by a delta and pass through unchanged). *)
let apply (d : t) (db : Db.t) : Db.t =
  let db =
    SMap.fold
      (fun name del db ->
        match Db.relation db name with
        | Some r -> Db.with_relation name (Relation.diff r del) db
        | None -> db)
      d.deletes db
  in
  SMap.fold
    (fun name ins db ->
      match Db.relation db name with
      | Some r -> Db.with_relation name (Relation.union r ins) db
      | None -> Db.with_relation name ins db)
    d.inserts db

(** Sequential composition: the delta of applying [d1] then [d2].
    Exact under the disjointness invariants: a tuple deleted by [d1]
    and re-inserted by [d2] (or vice versa) nets out of both sides. *)
let compose (d1 : t) (d2 : t) : t =
  let minus name r (other : Relation.t SMap.t) =
    match SMap.find_opt name other with
    | Some o -> Relation.diff r o
    | None -> r
  in
  let combine ma mb ~cancel_a ~cancel_b =
    SMap.merge
      (fun name a b ->
        let part r cancel = minus name r cancel in
        let r : Relation.t =
          match (a, b) with
          | None, None -> assert false
          | Some a, None -> part a cancel_a
          | None, Some b -> part b cancel_b
          | Some a, Some b -> Relation.union (part a cancel_a) (part b cancel_b)
        in
        if Relation.is_empty r then None else Some r)
      ma mb
  in
  {
    inserts = combine d1.inserts d2.inserts ~cancel_a:d2.deletes ~cancel_b:d1.deletes;
    deletes = combine d1.deletes d2.deletes ~cancel_a:d2.inserts ~cancel_b:d1.inserts;
    scalars_changed = d1.scalars_changed || d2.scalars_changed;
  }

let pp ppf (d : t) =
  let side label m =
    SMap.iter
      (fun name r ->
        Fmt.pf ppf "@[%s%s: %d tuple%s@]@ " label name (Relation.cardinal r)
          (if Relation.cardinal r = 1 then "" else "s"))
      m
  in
  Fmt.pf ppf "@[<v>";
  side "+" d.inserts;
  side "-" d.deletes;
  if d.scalars_changed then Fmt.pf ppf "~scalars@ ";
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Materialized plans and the per-operator delta rules                 *)
(* ------------------------------------------------------------------ *)

(** A materialized plan: the evaluated output of every operator in a
    compiled expression, in the expression's shape. *)
type node = {
  out : Relation.t;
  kids : node list;
}

exception Not_incremental

(** Evaluate [e] bottom-up against [db], keeping every operator's
    output. [materialize db e |>.out] agrees with [Relalg.eval db e]
    tuple-for-tuple. *)
let rec materialize ~domain ?consts (db : Db.t) (e : Relalg.expr) : node =
  let mat e = materialize ~domain ?consts db e in
  match e with
  | Relalg.Rel r -> { out = Db.relation_exn db r; kids = [] }
  | Relalg.Singleton _ | Relalg.Empty _ ->
    { out = Relalg.eval ~domain ?consts db e; kids = [] }
  | Relalg.Select (ps, e1) ->
    let k = mat e1 in
    let out =
      Relation.filter (Relalg.row_matches ~domain ?consts db ps) k.out
    in
    { out; kids = [ k ] }
  | Relalg.Project (cols, e1) ->
    let k = mat e1 in
    { out = Relalg.project_rel cols k.out; kids = [ k ] }
  | Relalg.Product (a, b) ->
    let ka = mat a and kb = mat b in
    { out = Relalg.join_rels ~domain ?consts db [ ka.out; kb.out ] []; kids = [ ka; kb ] }
  | Relalg.Union (a, b) ->
    let ka = mat a and kb = mat b in
    { out = Relation.union ka.out kb.out; kids = [ ka; kb ] }
  | Relalg.Join (inputs, ps) ->
    let kids = List.map mat inputs in
    let out =
      Relalg.join_rels ~domain ?consts db (List.map (fun k -> k.out) kids) ps
    in
    { out; kids }
  | Relalg.Antijoin (e1, sub, args) ->
    let ke = mat e1 and ks = mat sub in
    let out =
      Relation.filter
        (fun row ->
          not (Relation.mem (Relalg.arg_values ~domain ?consts db args row) ks.out))
        ke.out
    in
    { out; kids = [ ke; ks ] }

(** Push a delta through a materialized plan. Returns the updated
    materialization and the exact insert/delete sets of the plan's
    output ([out' = (out \ del) ∪ ins]). Raises {!Not_incremental}
    when the delta changed a scalar, since ground terms inside the plan
    read scalars. [after] is the post-commit state (used for ground
    terms and [Rel] leaves). *)
let advance ~domain ?consts ~(after : Db.t) (d : t) (e : Relalg.expr)
    (n : node) : node * Relation.t * Relation.t =
  if d.scalars_changed then raise Not_incremental;
  let matches ps row = Relalg.row_matches ~domain ?consts after ps row in
  let key args row = Relalg.arg_values ~domain ?consts after args row in
  let joinr rels ps = Relalg.join_rels ~domain ?consts after rels ps in
  let rec go (e : Relalg.expr) (n : node) : node * Relation.t * Relation.t =
    let none = Relation.empty (Relation.sorts n.out) in
    match (e, n.kids) with
    | Relalg.Rel r, [] ->
      let sorts = Relation.sorts n.out in
      let ins = inserts d r ~sorts and del = deletes d r ~sorts in
      let out =
        if Relation.is_empty ins && Relation.is_empty del then n.out
        else Db.relation_exn after r
      in
      ({ out; kids = [] }, ins, del)
    | (Relalg.Singleton _ | Relalg.Empty _), [] -> (n, none, none)
    | Relalg.Select (ps, e1), [ k ] ->
      let k', ins1, del1 = go e1 k in
      let ins = Relation.filter (matches ps) ins1
      and del = Relation.filter (matches ps) del1 in
      let out = Relation.union (Relation.diff n.out del) ins in
      ({ out; kids = [ k' ] }, ins, del)
    | Relalg.Project (cols, e1), [ k ] ->
      let k', ins1, del1 = go e1 k in
      let ins = Relation.diff (Relalg.project_rel cols ins1) n.out in
      let del =
        if Relation.is_empty del1 then none
        else begin
          (* a projected tuple leaves only when no remaining child row
             still derives it: one scan of the new child output *)
          let cand = Relalg.project_rel cols del1 in
          let arr_project row =
            let arr = Array.of_list row in
            List.map (fun i -> arr.(i)) cols
          in
          let survivors =
            Relation.fold
              (fun row acc ->
                let p = arr_project row in
                if Relation.mem p cand then Relation.add p acc else acc)
              k'.out
              (Relation.empty (Relation.sorts cand))
          in
          Relation.diff cand survivors
        end
      in
      let out = Relation.union (Relation.diff n.out del) ins in
      ({ out; kids = [ k' ] }, ins, del)
    | Relalg.Product (a, b), [ ka; kb ] ->
      let ka', insA, delA = go a ka and kb', insB, delB = go b kb in
      let prod x y =
        if Relation.is_empty x || Relation.is_empty y then none
        else joinr [ x; y ] []
      in
      let ins = Relation.union (prod insA kb'.out) (prod ka'.out insB) in
      let del = Relation.union (prod delA kb.out) (prod ka.out delB) in
      let ins = Relation.diff ins n.out in
      let out = Relation.union (Relation.diff n.out del) ins in
      ({ out; kids = [ ka'; kb' ] }, ins, del)
    | Relalg.Union (a, b), [ ka; kb ] ->
      let ka', insA, delA = go a ka and kb', insB, delB = go b kb in
      let ins = Relation.diff (Relation.union insA insB) n.out in
      let del =
        Relation.union
          (Relation.filter (fun t -> not (Relation.mem t kb'.out)) delA)
          (Relation.filter (fun t -> not (Relation.mem t ka'.out)) delB)
      in
      let out = Relation.union (Relation.diff n.out del) ins in
      ({ out; kids = [ ka'; kb' ] }, ins, del)
    | Relalg.Join (inputs, ps), kids ->
      let advanced = List.map2 go inputs kids in
      let kids' = List.map (fun (k, _, _) -> k) advanced in
      let news = List.map (fun k -> k.out) kids' in
      let olds = List.map (fun k -> k.out) kids in
      let replace l i x = List.mapi (fun j y -> if i = j then x else y) l in
      let fire base i x acc =
        if Relation.is_empty x then acc
        else Relation.union acc (joinr (replace base i x) ps)
      in
      let ins =
        List.fold_left
          (fun (acc, i) (_, insI, _) -> (fire news i insI acc, i + 1))
          (none, 0) advanced
        |> fst
      in
      let del =
        List.fold_left
          (fun (acc, i) (_, _, delI) -> (fire olds i delI acc, i + 1))
          (none, 0) advanced
        |> fst
      in
      let out = Relation.union (Relation.diff n.out del) ins in
      ({ out; kids = kids' }, ins, del)
    | Relalg.Antijoin (e1, sub, args), [ ke; ks ] ->
      let ke', insE, delE = go e1 ke and ks', insS, delS = go sub ks in
      let blocked t = Relation.mem (key args t) ks'.out in
      let ins =
        let from_e = Relation.filter (fun t -> not (blocked t)) insE in
        if Relation.is_empty delS then from_e
        else
          (* keys retracted from the subplan readmit their rows *)
          Relation.union from_e
            (Relation.filter (fun t -> Relation.mem (key args t) delS) ke'.out)
      in
      let del =
        let from_e = Relation.inter delE n.out in
        if Relation.is_empty insS then from_e
        else
          (* keys newly in the subplan retract their rows *)
          Relation.union from_e
            (Relation.filter (fun t -> Relation.mem (key args t) insS) n.out)
      in
      let out = Relation.union (Relation.diff n.out del) ins in
      ({ out; kids = [ ke'; ks' ] }, ins, del)
    | _ -> raise Not_incremental
  in
  go e n

(* ------------------------------------------------------------------ *)
(* Symbolic derivative rendering (fds explain --delta)                 *)
(* ------------------------------------------------------------------ *)

(** Relation names a plan reads. *)
let rec reads (e : Relalg.expr) : string list =
  match e with
  | Relalg.Rel r -> [ r ]
  | Relalg.Singleton _ | Relalg.Empty _ -> []
  | Relalg.Select (_, e) | Relalg.Project (_, e) -> reads e
  | Relalg.Product (a, b) | Relalg.Union (a, b) -> reads a @ reads b
  | Relalg.Join (inputs, _) -> List.concat_map reads inputs
  | Relalg.Antijoin (a, b, _) -> reads a @ reads b

(** The insert-derivative of a plan with respect to [ΔR], rendered in
    the plan syntax of {!Relalg.pp} with zero branches dropped; [None]
    when the plan does not depend on [R]. Antijoin subplan dependence
    renders as a retract/readmit annotation, since inserts on the right
    of an antijoin delete from its output (and deletes readmit). *)
let derivative (rname : string) (e : Relalg.expr) : string option =
  let str fmt = Format.asprintf fmt in
  let plan e = str "%a" Relalg.pp e in
  let rec d (e : Relalg.expr) : string option =
    match e with
    | Relalg.Rel r -> if String.equal r rname then Some (str "Δ%s" r) else None
    | Relalg.Singleton _ | Relalg.Empty _ -> None
    | Relalg.Select (ps, e1) ->
      Option.map (fun s -> str "select[%a](%s)" Relalg.pp_preds ps s) (d e1)
    | Relalg.Project (cols, e1) ->
      Option.map
        (fun s ->
          str "project[%a](%s)" Fmt.(list ~sep:(any ",") int) cols s)
        (d e1)
    | Relalg.Product (a, b) -> begin
      match (d a, d b) with
      | None, None -> None
      | Some da, None -> Some (str "(%s x %s)" da (plan b))
      | None, Some db -> Some (str "(%s x %s)" (plan a) db)
      | Some da, Some db ->
        Some (str "((%s x %s) + (%s x %s))" da (plan b) (plan a) db)
    end
    | Relalg.Union (a, b) -> begin
      match (d a, d b) with
      | None, None -> None
      | Some da, None -> Some da
      | None, Some db -> Some db
      | Some da, Some db -> Some (str "(%s + %s)" da db)
    end
    | Relalg.Join (inputs, ps) ->
      let branches =
        List.mapi
          (fun i inp ->
            Option.map
              (fun di ->
                let rendered =
                  List.mapi (fun j e -> if i = j then di else plan e) inputs
                in
                str "join[%a](%s)" Relalg.pp_preds ps
                  (String.concat ", " rendered))
              (d inp))
          inputs
        |> List.filter_map Fun.id
      in
      if branches = [] then None
      else Some (String.concat " + " branches)
    | Relalg.Antijoin (e1, sub, args) ->
      let left =
        Option.map
          (fun de ->
            str "antijoin[(%a)](%s, %s)"
              Fmt.(list ~sep:(any ", ") Relalg.pp_arg)
              args de (plan sub))
          (d e1)
      in
      let right =
        if List.mem rname (reads sub) then
          Some (str "retract/readmit via Δ(%s)" (plan sub))
        else None
      in
      begin
        match (left, right) with
        | None, None -> None
        | Some l, None -> Some l
        | None, Some r -> Some r
        | Some l, Some r -> Some (str "%s ⊖ %s" l r)
      end
  in
  d e

(** One derivative line per relation the plan reads, in first-read
    order: [(name, rendered insert-derivative)]. *)
let derivatives (e : Relalg.expr) : (string * string) list =
  let seen = Hashtbl.create 8 in
  reads e
  |> List.filter (fun r ->
         if Hashtbl.mem seen r then false
         else begin
           Hashtbl.add seen r ();
           true
         end)
  |> List.filter_map (fun r ->
         Option.map (fun s -> (r, s)) (derivative r e))
