(** The literal denotational semantics of paper Section 5.1.2, for
    validation on small universes.

    A universe U for the schema is the set of all states differing only
    in the values of the program variables — here, all assignments of
    relation contents over a finite domain (scalars are held fixed at
    the base state's values, matching the paper's procedure semantics
    where parameters are valued at call time). The meaning [m(s)] is
    then an explicit binary relation over U, computed by running the
    operational {!Semantics.exec} from every state; tests validate the
    paper's equations (1)–(6), e.g. [m(p;q) = m(p) ∘ m(q)] and
    m(p⋆) = (m(p))⋆. *)

open Fdbs_kernel

(** All subsets of a list (powerset), in a deterministic order. *)
let rec powerset = function
  | [] -> [ [] ]
  | x :: rest ->
    let smaller = powerset rest in
    smaller @ List.map (fun s -> x :: s) smaller

(** Every database state over [domain]: all combinations of relation
    contents, with scalars fixed from [base]. The universe's size is
    exponential; intended for small validation cases only. *)
let universe (schema : Schema.t) ~(domain : Domain.t) ~(base : Db.t) : Db.t list =
  let all_tuples (rd : Schema.rel_decl) =
    Util.cartesian (List.map (Domain.carrier domain) rd.Schema.rsorts)
  in
  let choices =
    List.map
      (fun rd ->
        List.map
          (fun tuples -> (rd.Schema.rname, Relation.of_list rd.Schema.rsorts tuples))
          (powerset (all_tuples rd)))
      schema.Schema.relations
  in
  List.map
    (fun assignment ->
      List.fold_left (fun db (r, rel) -> Db.with_relation r rel db) base assignment)
    (Util.cartesian choices)

(** The meaning of a statement as an explicit binary relation over the
    universe: index pairs (i, j) with (U.(i), U.(j)) ∈ m(s). *)
let meaning (env : Semantics.env) (states : Db.t list) (stmt : Stmt.t) :
  (int * int) list =
  let arr = Array.of_list states in
  (* Hash-indexed state lookup instead of a linear [Db.equal] scan over
     the whole universe per executed state. Indices are inserted in
     descending order so [Hashtbl.find_all] (most-recent-first) yields
     them ascending, preserving the lowest-index-wins rule for duplicate
     states. *)
  let by_hash : (int, int) Hashtbl.t = Hashtbl.create (2 * Array.length arr) in
  for i = Array.length arr - 1 downto 0 do
    Hashtbl.add by_hash (Db.hash arr.(i)) i
  done;
  let index db =
    List.find_opt (fun i -> Db.equal arr.(i) db) (Hashtbl.find_all by_hash (Db.hash db))
  in
  List.concat
    (List.mapi
       (fun i db ->
         List.filter_map
           (fun out -> Option.map (fun j -> (i, j)) (index out))
           (Semantics.exec env stmt db))
       states)

(** Relation composition on index pairs, via a hash index on [r2]'s
    first component: O(|r1| + |r2| + |output| log |output|) instead of
    the pairwise scan kept below as {!compose_naive}. *)
let compose (r1 : (int * int) list) (r2 : (int * int) list) : (int * int) list =
  let by_fst : (int, int) Hashtbl.t = Hashtbl.create (2 * List.length r2) in
  List.iter (fun (b', c) -> Hashtbl.add by_fst b' c) r2;
  List.concat_map
    (fun (a, b) -> List.map (fun c -> (a, c)) (Hashtbl.find_all by_fst b))
    r1
  |> List.sort_uniq compare

(** The original pairwise composition; retained as the oracle for the
    equivalence property test of {!compose}. *)
let compose_naive (r1 : (int * int) list) (r2 : (int * int) list) : (int * int) list =
  List.concat_map
    (fun (a, b) -> List.filter_map (fun (b', c) -> if b = b' then Some (a, c) else None) r2)
    r1
  |> List.sort_uniq compare

(** Reflexive-transitive closure on index pairs over [n] states. *)
let closure ~(n : int) (r : (int * int) list) : (int * int) list =
  let reach = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    reach.(i).(i) <- true
  done;
  List.iter (fun (i, j) -> reach.(i).(j) <- true) r;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if reach.(i).(k) then
        for j = 0 to n - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let out = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if reach.(i).(j) then out := (i, j) :: !out
    done
  done;
  !out

let equal_relations (a : (int * int) list) (b : (int * int) list) =
  List.sort_uniq compare a = List.sort_uniq compare b
