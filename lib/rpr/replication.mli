(** Leader/follower replication over the write-ahead {!Journal}: the
    journal as a replication log, durable snapshots that bound recovery
    and legalize truncation, and the leader's incremental log view that
    the [fetch] protocol op streams from. Epochs are leadership terms —
    {!lead} stamps a fresh one at every leader boot, and fetches from
    an epoch ahead of the leader's are rejected as stale. *)

open Fdbs_kernel

(** A durable state capture: the database after applying entries
    [1..snap_offset] of the history, and the epoch of the last entry
    folded in. *)
type snapshot = {
  snap_epoch : int;
  snap_offset : int;
  snap_db : Db.t;
}

(** Where the snapshot for a journal lives: [journal ^ ".snap"]. *)
val snapshot_path : string -> string

(** Write the snapshot durably: temp file, fsync, atomic rename. The
    [replication.snapshot] fault site fires between fsync and rename —
    the torn-snapshot window — and surfaces as a structured error with
    the previous snapshot left intact. *)
val save_snapshot : string -> snapshot -> (unit, Error.t) result

(** Read a snapshot back against [schema]. Missing file:
    [Ok (None, None)]. {e Any} unusable snapshot — torn (no [end]
    terminator), corrupt, wrong schema — is [Ok (None, Some reason)]:
    the caller falls back to a longer replay instead of an outage.
    Only an I/O failure reading an existing file is [Error]. *)
val load_snapshot :
  schema:Schema.t -> string -> (snapshot option * string option, Error.t) result

(** The leader's incremental, lock-protected view of its own journal.
    A {!refresh} reads only the bytes appended since the last look;
    truncation or rotation forces a full reload. *)
type log

val open_log : string -> (log, Error.t) result

(** Assume leadership over [journal]: load it, bump the epoch past
    everything the file has seen, and stamp the new term with a
    durable [epoch] marker. *)
val lead : journal:string -> (log, Error.t) result

val refresh : log -> (unit, Error.t) result
val path : log -> string
val epoch : log -> int
val base : log -> int

(** The absolute offset of the last committed entry. *)
val last_offset : log -> int

(** [entries_from l k] is the committed entries with offsets [> k] in
    order, capped at [max] (default 512) — the fetch payload. Empty
    when [k] is current (heartbeat) or when [k < base l] (the follower
    must install the snapshot first). *)
val entries_from : ?max:int -> log -> int -> Journal.stamped list
