(** Atomic transactions over {!Semantics}: snapshot, run procedure
    calls under a resource budget, check integrity constraints at
    commit, roll back to the snapshot on any failure — returning a
    structured {!Fdbs_kernel.Error.t}. Committed transactions are
    optionally journaled ({!Journal}); {!replay} recovers the committed
    state from the journal. *)

open Fdbs_kernel

type t = {
  txn_env : Semantics.env;
  check_constraints : bool;
  extra_constraints : (string * Fdbs_logic.Formula.t) list;
      (** additional closed wffs checked at commit beside the schema's
          own — e.g. the L1 theory's static constraints carried down
          through the refinement interpretation *)
  journal : string option;  (** journal file path *)
  fsync : bool;  (** fsync journal appends (power-loss durability) *)
  on_commit :
    (before:Db.t -> after:Db.t -> ((unit -> unit), Error.t) result) option;
      (** commit hook, run after the schema's constraints pass and
          before the journal append. [Ok publish] joins the constraint
          materializations' publish phase — fired only once the commit
          is durable; an [Error] rolls the transaction back. The
          streaming {!Monitor}s ride this hook: observing monitors
          always return [Ok] (events are delivered in the publish
          thunk), enforcing ones turn a violation into a rollback. *)
}

val make :
  ?check_constraints:bool ->
  ?extra_constraints:(string * Fdbs_logic.Formula.t) list ->
  ?journal:string ->
  ?fsync:bool ->
  ?on_commit:(before:Db.t -> after:Db.t -> ((unit -> unit), Error.t) result) ->
  Semantics.env ->
  t

(** A rolled-back transaction: the structured error and the restored
    pre-transaction state (always [Db.equal] to the snapshot). *)
type rollback = { error : Error.t; restored : Db.t }

val pp_rollback : rollback Fmt.t

(** Run the calls as one atomic transaction: all commit (with every
    constraint satisfied) or none do. [budget] overrides the
    environment's. A journaled commit appends its entry before the new
    state is returned. *)
val run :
  ?budget:Budget.t -> t -> Journal.call list -> Db.t -> (Db.t, rollback) result

(** Re-run a list of entries as transactions from the given state
    without re-journaling — the shared recovery loop. [first] numbers
    the error context when the entries are a tail of a longer
    history. *)
val replay_entries :
  ?budget:Budget.t ->
  ?first:int ->
  t ->
  Journal.entry list ->
  Db.t ->
  (Db.t, Error.t) result

(** Re-run every committed journal entry as a transaction from the
    given state — the recovery path. Entries are not re-journaled.
    Journals truncated behind a snapshot are an error; the
    snapshot-aware recovery lives in [Fdbs_service.Session.replay]. *)
val replay : ?budget:Budget.t -> t -> string -> Db.t -> (Db.t, Error.t) result
