(** First-order dynamic logic over RPR programs (paper Section 5.3:
    "to extend K to map wffs of L2 into wffs of L3 ... we would need a
    full programming logic, such as Dynamic Logic (a separate paper will
    explore this possibility)" — implemented here).

    Formulas extend the first-order wffs of L3 with the program
    modalities [⟨p⟩φ] (some outcome of p satisfies φ) and [\[p\]φ]
    (every outcome does), where programs are RPR statements or
    procedure calls. Semantics is over database states through
    {!Semantics.exec}/{!Semantics.call} — Harel-style relational
    semantics instantiated to the paper's own language. *)

open Fdbs_kernel
open Fdbs_logic

type program =
  | Prim of Stmt.t  (** an RPR statement *)
  | Call of string * Term.t list  (** a declared procedure on argument terms *)
  | Pseq of program * program  (** program composition at the logic level *)

type t =
  | Atom of Formula.t  (** an L3 wff evaluated at the current state *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | Forall of Term.var * t  (** over the environment's domain *)
  | Exists of Term.var * t
  | Box of program * t  (** [p]φ: φ holds after every outcome of p *)
  | Diamond of program * t  (** ⟨p⟩φ: some outcome of p satisfies φ *)

let rec pp_program ppf = function
  | Prim s -> Stmt.pp ppf s
  | Call (name, args) ->
    Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") Term.pp) args
  | Pseq (p, q) -> Fmt.pf ppf "%a; %a" pp_program p pp_program q

let rec pp ppf = function
  | Atom f -> Formula.pp ppf f
  | Not f -> Fmt.pf ppf "~%a" pp f
  | And (f, g) -> Fmt.pf ppf "(%a & %a)" pp f pp g
  | Or (f, g) -> Fmt.pf ppf "(%a | %a)" pp f pp g
  | Imp (f, g) -> Fmt.pf ppf "(%a -> %a)" pp f pp g
  | Iff (f, g) -> Fmt.pf ppf "(%a <-> %a)" pp f pp g
  | Forall (v, f) -> Fmt.pf ppf "forall %s:%s. %a" v.Term.vname v.Term.vsort pp f
  | Exists (v, f) -> Fmt.pf ppf "exists %s:%s. %a" v.Term.vname v.Term.vsort pp f
  | Box (p, f) -> Fmt.pf ppf "[%a] %a" pp_program p pp f
  | Diamond (p, f) -> Fmt.pf ppf "<%a> %a" pp_program p pp f

exception Dyn_error of string

(* Outcome states of a program. Quantified variables have been
   substituted into the argument terms by the time programs run. *)
let rec run (env : Semantics.env) (db : Db.t) : program -> Db.t list = function
  | Prim s -> Semantics.exec env s db
  | Call (name, args) ->
    (match Schema.find_proc env.Semantics.schema name with
     | None -> raise (Dyn_error (Fmt.str "unknown procedure %s" name))
     | Some proc ->
       let values =
         List.map
           (Relcalc.eval_term ~domain:env.Semantics.domain ~consts:env.Semantics.consts
              db)
           args
       in
       Semantics.call env proc values db)
  | Pseq (p, q) -> List.concat_map (fun db' -> run env db' q) (run env db p)

(* Substitute a value for a variable in every atom and argument term. *)
let rec subst_var (v : Term.var) (value : Value.t) (f : t) : t =
  let s = Term.Subst.of_list [ (v, Term.Lit value) ] in
  let rec subst_prog = function
    | Prim stmt -> Prim stmt (* statements use scalar constants, not variables *)
    | Call (name, args) -> Call (name, List.map (Term.subst s) args)
    | Pseq (p, q) -> Pseq (subst_prog p, subst_prog q)
  in
  match f with
  | Atom wff -> Atom (Formula.subst s wff)
  | Not g -> Not (subst_var v value g)
  | And (g, h) -> And (subst_var v value g, subst_var v value h)
  | Or (g, h) -> Or (subst_var v value g, subst_var v value h)
  | Imp (g, h) -> Imp (subst_var v value g, subst_var v value h)
  | Iff (g, h) -> Iff (subst_var v value g, subst_var v value h)
  | Forall (v', g) ->
    if Term.var_equal v v' then Forall (v', g) else Forall (v', subst_var v value g)
  | Exists (v', g) ->
    if Term.var_equal v v' then Exists (v', g) else Exists (v', subst_var v value g)
  | Box (p, g) -> Box (subst_prog p, subst_var v value g)
  | Diamond (p, g) -> Diamond (subst_prog p, subst_var v value g)

(** Truth of a closed dynamic-logic formula at a database state.
    Atoms route through {!Semantics.query} and hence the plan cache:
    the same wff recurring across the states of a {!Dynamic23}
    obligation sweep is compiled once and re-run as an emptiness
    test. *)
let rec holds (env : Semantics.env) (db : Db.t) : t -> bool = function
  | Atom wff -> Semantics.query env db wff
  | Not f -> not (holds env db f)
  | And (f, g) -> holds env db f && holds env db g
  | Or (f, g) -> holds env db f || holds env db g
  | Imp (f, g) -> (not (holds env db f)) || holds env db g
  | Iff (f, g) -> holds env db f = holds env db g
  | Forall (v, f) ->
    List.for_all
      (fun value -> holds env db (subst_var v value f))
      (Domain.carrier env.Semantics.domain v.Term.vsort)
  | Exists (v, f) ->
    List.exists
      (fun value -> holds env db (subst_var v value f))
      (Domain.carrier env.Semantics.domain v.Term.vsort)
  | Box (p, f) -> List.for_all (fun db' -> holds env db' f) (run env db p)
  | Diamond (p, f) -> List.exists (fun db' -> holds env db' f) (run env db p)

(** The standard duality [⟨p⟩φ ≡ ~\[p\]~φ], and the partial-correctness
    reading of tests: [\[P?\]φ ≡ P -> φ] — validated in the test
    suite. *)
let box p f = Box (p, f)

let diamond p f = Diamond (p, f)
