(** Leader/follower replication over the write-ahead {!Journal}.

    The paper's RPR level makes database state the deterministic result
    of a sequence of committed transactions, so the journal {e is} a
    replication log: any replica that applies the same committed
    entries in order converges to the leader's state. This module
    supplies the two halves that turn that observation into a
    subsystem:

    - {b snapshots} — a durable [Db.t] plus the offset of the last
      entry folded into it. A snapshot bounds recovery (replay only the
      journal tail behind it) and legalizes truncation: the journal may
      be cut {e only} behind a snapshot that is already renamed into
      place, so a crash at any point leaves a recoverable pair.
    - {b the leader log} — an incremental, lock-protected view of the
      leader's journal that the [fetch] protocol op streams from:
      entries stamped with absolute offsets and epochs, refreshed by
      reading only the bytes appended since the last look.

    Epochs are leadership terms: every leader boot appends a fresh
    [epoch] marker ({!lead}), and fetches from an epoch {e ahead} of
    the leader's are rejected as [Stale_epoch] — a resurrected old
    leader cannot silently feed a follower that has seen a newer
    term. *)

open Fdbs_kernel

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  snap_epoch : int;  (** epoch of the last entry folded in *)
  snap_offset : int;  (** absolute offset of the last entry folded in *)
  snap_db : Db.t;  (** the state after entries [1..snap_offset] *)
}

let snapshot_path journal = journal ^ ".snap"

let io_error path msg =
  Error.makef Error.Io Error.Io_failure "snapshot %s: %s" path msg

(* The on-disk snapshot is line-oriented like the journal, with an
   explicit [end] terminator so a torn write is detectable:

     fdbs-snapshot 1
     epoch E
     offset N
     rel NAME
     t v1 v2 ...
     scalar NAME v
     end

   Values use the journal's CLI serialization heuristic. *)

(** Write [s] durably to [path]: temp file, fsync, atomic rename. The
    [replication.snapshot] fault site fires {e between} the fsync and
    the rename — the torn-snapshot window — and surfaces as a
    structured error; the previous snapshot (if any) stays in place. *)
let save_snapshot (path : string) (s : snapshot) : (unit, Error.t) result =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc "fdbs-snapshot 1\n";
        output_string oc (Fmt.str "epoch %d\n" s.snap_epoch);
        output_string oc (Fmt.str "offset %d\n" s.snap_offset);
        List.iter
          (fun (name, rel) ->
            output_string oc (Fmt.str "rel %s\n" name);
            List.iter
              (fun tuple ->
                output_string oc
                  (String.concat " " ("t" :: List.map Value.to_string tuple));
                output_char oc '\n')
              (Relation.to_list rel))
          (Db.relations s.snap_db);
        List.iter
          (fun (name, v) ->
            output_string oc (Fmt.str "scalar %s %s\n" name (Value.to_string v)))
          (Db.scalars s.snap_db);
        output_string oc "end\n";
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc))
  with
  | exception Sys_error msg -> Result.Error (io_error path msg)
  | exception Unix.Unix_error (err, _, _) ->
    Result.Error (io_error path (Unix.error_message err))
  | () -> (
      match
        Fault.hit "replication.snapshot";
        Sys.rename tmp path
      with
      | () -> Ok ()
      | exception Sys_error msg -> Result.Error (io_error path msg)
      | exception Fault.Injected site ->
        Result.Error
          (Error.makef Error.Io (Error.Fault_injected site)
             "snapshot %s: fault injected at %s (torn snapshot left at %s)"
             path site tmp))

(** Read the snapshot at [path] back against [schema].

    Robustness-first: a missing file is [Ok (None, None)], and {e any}
    unusable snapshot — torn (no [end] terminator), corrupt, or
    referencing relations the schema does not declare — is
    [Ok (None, Some reason)]: the caller falls back to a longer replay
    instead of an outage. Only an I/O failure reading an existing file
    is an [Error]. *)
let load_snapshot ~(schema : Schema.t) (path : string) :
  (snapshot option * string option, Error.t) result =
  if not (Sys.file_exists path) then Ok (None, None)
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Result.Error (io_error path msg)
    | exception End_of_file -> Result.Error (io_error path "unreadable")
    | content ->
      let unusable reason = Ok (None, Some (Fmt.str "snapshot %s: %s" path reason)) in
      let lines = String.split_on_char '\n' content in
      (match lines with
       | "fdbs-snapshot 1" :: rest ->
         let epoch = ref None in
         let offset = ref None in
         let db = ref (Schema.empty_db schema) in
         let current = ref None in  (* relation under construction *)
         let finished = ref false in
         let failure = ref None in
         let fail reason = if !failure = None then failure := Some reason in
         let flush_current () =
           match !current with
           | None -> ()
           | Some (name, sorts, tuples) ->
             db := Db.with_relation name (Relation.of_list sorts (List.rev tuples)) !db;
             current := None
         in
         List.iter
           (fun line ->
             if !failure = None && not !finished then
               match String.split_on_char ' ' (String.trim line) with
               | [ "" ] -> ()
               | [ "end" ] -> flush_current (); finished := true
               | [ "epoch"; n ] -> (
                   match int_of_string_opt n with
                   | Some e when e >= 0 -> epoch := Some e
                   | _ -> fail (Fmt.str "bad epoch line %S" line))
               | [ "offset"; n ] -> (
                   match int_of_string_opt n with
                   | Some o when o >= 0 -> offset := Some o
                   | _ -> fail (Fmt.str "bad offset line %S" line))
               | [ "rel"; name ] -> (
                   flush_current ();
                   match Db.relation !db name with
                   | None -> fail (Fmt.str "unknown relation %s" name)
                   | Some r -> current := Some (name, Relation.sorts r, []))
               | "t" :: vals -> (
                   let tuple = List.map Journal.value_of_string vals in
                   match !current with
                   | None -> fail "tuple outside a relation block"
                   | Some (name, sorts, tuples) ->
                     if List.length tuple <> List.length sorts then
                       fail (Fmt.str "arity mismatch in relation %s" name)
                     else current := Some (name, sorts, tuple :: tuples))
               | [ "scalar"; name; v ] ->
                 flush_current ();
                 db := Db.with_scalar name (Journal.value_of_string v) !db
               | _ -> fail (Fmt.str "malformed line %S" line))
           rest;
         (match (!failure, !finished, !epoch, !offset) with
          | Some reason, _, _, _ -> unusable reason
          | None, false, _, _ -> unusable "torn (no end marker)"
          | None, true, Some e, Some o ->
            Ok (Some { snap_epoch = e; snap_offset = o; snap_db = !db }, None)
          | None, true, _, _ -> unusable "missing epoch/offset header")
       | _ -> unusable "bad header (not an fdbs snapshot)")

(* ------------------------------------------------------------------ *)
(* The leader log                                                      *)
(* ------------------------------------------------------------------ *)

(* An incremental view of the leader's own journal. [pos] is the byte
   offset of the last record boundary consumed; a refresh reads only
   [pos ..] and parses whole lines, so streaming fetches cost O(new
   bytes), not O(journal). A shrink or inode change (truncation,
   rotation) forces a full reload. *)
type log = {
  path : string;
  lock : Mutex.t;
  mutable ino : int;  (* -1 when the file does not exist yet *)
  mutable pos : int;
  mutable l_base : int;
  mutable l_epoch : int;
  mutable l_entries : Journal.stamped list;  (* newest first *)
  mutable l_count : int;  (* entries beyond base *)
  mutable l_pending : Journal.call list;  (* calls after the boundary *)
}

let path (l : log) = l.path
let epoch (l : log) = Mutex.protect l.lock (fun () -> l.l_epoch)
let base (l : log) = Mutex.protect l.lock (fun () -> l.l_base)

(** The absolute offset of the last committed entry. *)
let last_offset (l : log) =
  Mutex.protect l.lock (fun () -> l.l_base + l.l_count)

let reset (l : log) =
  l.ino <- -1;
  l.pos <- 0;
  l.l_base <- 0;
  l.l_epoch <- 0;
  l.l_entries <- [];
  l.l_count <- 0;
  l.l_pending <- []

(* Parse the complete lines of [segment] (bytes [l.pos ..] of the
   file), advancing the boundary past each complete record. Trailing
   bytes after the last newline — and call lines with no commit yet —
   stay unconsumed: they are re-read on the next refresh. *)
let consume (l : log) (segment : string) : (unit, Error.t) result =
  let len = String.length segment in
  let error = ref None in
  let start = ref 0 in
  (* [boundary] tracks bytes consumed *relative to the segment*. *)
  let boundary = ref 0 in
  (try
     while !error = None && !start < len do
       match String.index_from_opt segment !start '\n' with
       | None -> raise Exit
       | Some nl ->
         let line = String.sub segment !start (nl - !start) in
         let at_start = l.pos = 0 && !boundary = 0 && l.l_pending = [] in
         (match Journal.parse_line line with
          | Journal.L_blank ->
            if l.l_pending = [] then boundary := nl + 1
          | Journal.L_commit ->
            l.l_entries <-
              {
                Journal.offset = l.l_base + l.l_count + 1;
                ep = l.l_epoch;
                entry = { Journal.calls = List.rev l.l_pending };
              }
              :: l.l_entries;
            l.l_count <- l.l_count + 1;
            l.l_pending <- [];
            boundary := nl + 1
          | Journal.L_call c ->
            l.l_pending <- c :: l.l_pending
          | Journal.L_epoch e ->
            l.l_epoch <- max l.l_epoch e;
            if l.l_pending = [] then boundary := nl + 1
          | Journal.L_base b when at_start ->
            l.l_base <- b;
            boundary := nl + 1
          | Journal.L_base _ | Journal.L_malformed ->
            error :=
              Some
                (Error.makef Error.Io Error.Io_failure
                   "journal %s: malformed line %S at byte %d" l.path line
                   (l.pos + !start)));
         start := nl + 1
     done
   with Exit -> ());
  (* drop pending calls that were not sealed by a commit: they will be
     re-read (completed) on the next refresh *)
  l.l_pending <- [];
  l.pos <- l.pos + !boundary;
  match !error with None -> Ok () | Some e -> Result.Error e

(** Bring the view up to date with the file, reading only appended
    bytes; reloads from scratch after truncation or rotation. *)
let refresh (l : log) : (unit, Error.t) result =
  Mutex.protect l.lock (fun () ->
      match Unix.stat l.path with
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        reset l;
        Ok ()
      | exception Unix.Unix_error (err, _, _) ->
        Result.Error
          (Error.makef Error.Io Error.Io_failure "journal %s: %s" l.path
             (Unix.error_message err))
      | st ->
        if st.Unix.st_ino <> l.ino || st.Unix.st_size < l.pos then (
          reset l;
          l.ino <- st.Unix.st_ino);
        if st.Unix.st_size = l.pos then Ok ()
        else (
          match
            let ic = open_in_bin l.path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                seek_in ic l.pos;
                really_input_string ic (st.Unix.st_size - l.pos))
          with
          | exception Sys_error msg ->
            Result.Error
              (Error.makef Error.Io Error.Io_failure "journal %s: %s" l.path msg)
          | exception End_of_file ->
            (* racing writer shrank the file between stat and read *)
            reset l;
            Ok ()
          | segment -> consume l segment))

let open_log (journal : string) : (log, Error.t) result =
  let l =
    {
      path = journal;
      lock = Mutex.create ();
      ino = -1;
      pos = 0;
      l_base = 0;
      l_epoch = 0;
      l_entries = [];
      l_count = 0;
      l_pending = [];
    }
  in
  match refresh l with Ok () -> Ok l | Result.Error e -> Result.Error e

(** [entries_from l k] is the committed entries with offsets [> k], in
    order, capped at [max] (default 512) per call — the fetch payload.
    Empty when [k] is already the last offset ({e heartbeat}) or when
    [k < base l] (the caller must install the snapshot first). *)
let entries_from ?(max = 512) (l : log) (k : int) : Journal.stamped list =
  Mutex.protect l.lock (fun () ->
      if k < l.l_base then []
      else
        let want = Stdlib.min max (l.l_base + l.l_count - k) in
        if want <= 0 then []
        else
          (* newest-first list: skip entries beyond [k + want], then
             take the window *)
          let rec go acc n = function
            | [] -> acc
            | (s : Journal.stamped) :: rest ->
              if s.Journal.offset > k + n then go acc n rest
              else if s.Journal.offset > k then go (s :: acc) n rest
              else acc
          in
          go [] want l.l_entries)

(** Assume leadership over [journal]: load it, bump the epoch past
    everything the file has seen, and stamp the new term with a durable
    [epoch] marker. The returned log serves [fetch] requests. *)
let lead ~(journal : string) : (log, Error.t) result =
  match open_log journal with
  | Result.Error e -> Result.Error e
  | Ok l -> (
      let e = epoch l + 1 in
      match Journal.append_epoch ~fsync:true journal e with
      | Result.Error e -> Result.Error e
      | Ok () -> (
          match refresh l with
          | Ok () -> Ok l
          | Result.Error e -> Result.Error e))
