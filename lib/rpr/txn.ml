(** Atomic transactions over {!Semantics}: snapshot, run a sequence of
    procedure calls under a resource budget, check the schema's
    integrity constraints at commit time, and roll back to the snapshot
    on violation, blocked execution, budget exhaustion, or an injected
    fault — returning a structured {!Fdbs_kernel.Error.t} instead of a
    string exception. This is the paper's central promise made
    operational: every update leaves the database in a valid state
    (static/transition consistency, Sections 3–5), because invalid
    outcomes never become visible.

    Committed transactions are optionally recorded in a write-ahead
    {!Journal}; {!replay} reproduces the committed state from it. *)

open Fdbs_kernel

type t = {
  txn_env : Semantics.env;
  check_constraints : bool;
  extra_constraints : (string * Fdbs_logic.Formula.t) list;
      (** additional closed wffs checked at commit beside the schema's
          own — e.g. the L1 theory's static constraints carried down
          through the refinement interpretation *)
  journal : string option;  (** journal file path *)
  fsync : bool;  (** fsync journal appends (power-loss durability) *)
  on_commit :
    (before:Db.t -> after:Db.t -> ((unit -> unit), Error.t) result) option;
      (** commit hook (streaming monitors): run after constraints pass,
          before the journal append; its publish thunk fires with the
          constraint materializations', an [Error] rolls back *)
}

let make ?(check_constraints = true) ?(extra_constraints = []) ?journal
    ?(fsync = false) ?on_commit env =
  { txn_env = env; check_constraints; extra_constraints; journal; fsync; on_commit }

(** A rolled-back transaction: the structured error and the restored
    pre-transaction state (always [Db.equal] to the snapshot). *)
type rollback = { error : Error.t; restored : Db.t }

let pp_rollback ppf (r : rollback) =
  Fmt.pf ppf "rolled back: %a" Error.pp r.error

let call_context (name, args) =
  [ ("call", Fmt.str "%a" Journal.pp_call (name, args)) ]

(* Transaction observability: commit/rollback tallies plus spans for
   every phase (begin/calls/check/commit/rollback). *)
let c_commits = Metrics.counter "txn.commits"
let c_rollbacks = Metrics.counter "txn.rollbacks"

let span name f = if Trace.enabled () then Trace.with_span ~cat:"txn" name f else f ()

(* One procedure call, deterministically, with structured failures. *)
let exec_call (env : Semantics.env) ((name, args) as c : Journal.call) (db : Db.t) :
  (Db.t, Error.t) result =
  let fail code fmt = Fmt.kstr (fun m -> Result.Error (Error.make ~context:(call_context c) Error.Exec code m)) fmt in
  let run () =
    match Schema.find_proc env.Semantics.schema name with
    | None -> fail (Error.Unknown_procedure name) "unknown procedure %s" name
    | Some proc ->
      (match Semantics.call env proc args db with
       | [ out ] -> Ok out
       | [] -> fail Error.Blocked "procedure %s blocked (no outcome)" name
       | outs ->
         fail (Error.Nondeterministic (List.length outs))
           "procedure %s has %d distinct outcomes" name (List.length outs))
  in
  if Trace.enabled () then
    Trace.with_span ~cat:"txn" ~args:[ ("proc", name) ] "txn.call" run
  else run ()

(* Check every declared constraint (schema's, then the transaction's
   extra ones) in [db]; the verdicts pass through the fault injector's
   [txn.constraint] flip site.

   Schema constraints go through the planner's differential path
   ({!Semantics.query_delta}): the commit's exact delta against the
   snapshot advances a warm materialization in O(delta) instead of
   re-evaluating the plan over the whole state. The transaction's
   ad-hoc [extra_constraints] use the same path with [shared:false],
   so they never read from or publish into the shared per-schema
   materialization cache (an extra wff structurally equal to a schema
   constraint must not poison — or be served — the schema's slot).

   On success the collected publish thunks are returned; [run] fires
   them only after the journal append succeeded, so a rolled-back
   transaction never publishes a materialization of a discarded
   state. *)
let check_constraints (txn : t) (env : Semantics.env) ~(snapshot : Db.t)
    (db : Db.t) : ((unit -> unit) list, Error.t) result =
  let constraints, extras =
    if txn.check_constraints then
      (env.Semantics.schema.Schema.constraints, txn.extra_constraints)
    else ([], [])
  in
  let delta =
    if constraints = [] && extras = [] then Delta.empty
    else Delta.of_dbs ~before:snapshot ~after:db
  in
  let rec go publishes = function
    | [] -> Ok (List.rev publishes)
    | (shared, (name, wff)) :: rest ->
      let check () =
        let v, publish =
          Semantics.query_delta env ~before:snapshot ~delta ~shared db wff
        in
        (Fault.flip "txn.constraint" v, publish)
      in
      let verdict, publish =
        if Trace.enabled () then
          Trace.with_span ~cat:"txn"
            ~args:[ ("constraint", name) ]
            "txn.constraint"
            (fun () ->
              let v, publish = check () in
              Trace.add_attr "verdict" (string_of_bool v);
              (v, publish))
        else check ()
      in
      if verdict then go (publish :: publishes) rest
      else
        Result.Error
          (Error.makef
             ~context:[ ("constraint", name) ]
             Error.Commit (Error.Constraint_violation name)
             "constraint %s violated by the commit state" name)
  in
  go []
    (List.map (fun c -> (true, c)) constraints
    @ List.map (fun c -> (false, c)) extras)

(** Run [calls] as one atomic transaction against [db]: all calls
    commit (with every constraint satisfied) or none do. [budget]
    overrides the environment's; the restored state in a rollback is
    always [Db.equal] to [db]. A journaled commit appends its entry
    before the new state is returned. *)
let run ?budget (txn : t) (calls : Journal.call list) (db : Db.t) :
  (Db.t, rollback) result =
  let env =
    match budget with
    | Some b -> Semantics.with_budget b txn.txn_env
    | None -> txn.txn_env
  in
  Fault.set_budget env.Semantics.budget;
  let snapshot = db in
  let rolled_back error = Result.Error { error; restored = snapshot } in
  let work () =
    Fault.hit "txn.begin";
    let rec go db = function
      | [] -> Ok db
      | c :: rest -> (
          match exec_call env c db with
          | Ok db' -> go db' rest
          | Result.Error _ as e -> e)
    in
    let ( let* ) = Result.bind in
    let* final = go db calls in
    span "txn.commit" (fun () ->
        Fault.hit "txn.commit";
        let* publishes =
          span "txn.check" (fun () -> check_constraints txn env ~snapshot final)
        in
        (* the monitor hook sees the exact transition the commit makes;
           its publish joins the constraint materializations' *)
        let* publishes =
          match txn.on_commit with
          | None -> Ok publishes
          | Some hook ->
            span "txn.monitor" (fun () ->
                match hook ~before:snapshot ~after:final with
                | Ok publish -> Ok (publishes @ [ publish ])
                | Result.Error e -> Result.Error e)
        in
        let* () =
          match txn.journal with
          | None -> Ok ()
          | Some path ->
            span "txn.journal" (fun () ->
                Fault.hit "journal.append";
                Journal.append ~fsync:txn.fsync path { Journal.calls })
        in
        (* the commit is durable: publish the checks' materializations
           so the next commit advances from this state *)
        List.iter (fun publish -> publish ()) publishes;
        Ok final)
  in
  let result =
    match span "txn.run" work with
    | result -> result
    | exception Budget.Exhausted r ->
      Result.Error
        (Error.makef Error.Exec (Error.Budget_exhausted r) "budget exhausted (%s)"
           (Budget.resource_name r))
    | exception Fault.Injected site ->
      (* attribute the fault to the phase its site belongs to *)
      let phase =
        if site = "txn.commit" || site = "txn.constraint" || site = "journal.append"
        then Error.Commit
        else Error.Exec
      in
      Result.Error
        (Error.makef phase (Error.Fault_injected site) "fault injected at %s" site)
    | exception Semantics.Exec_error msg ->
      Result.Error (Error.make Error.Exec Error.Exec_failure msg)
    | exception Error.Error e ->
      (* already structured — e.g. [Not_compilable] under the
         [`Compiled] strategy; roll back rather than crash the CLI *)
      Result.Error e
  in
  match result with
  | Ok db ->
    Metrics.incr c_commits;
    Ok db
  | Result.Error e ->
    Metrics.incr c_rollbacks;
    span "txn.rollback" (fun () -> ());
    rolled_back e

(** Re-run [entries] as transactions from [db] without re-journaling:
    the shared recovery loop — [fds replay] drives it over a loaded
    journal, the replication follower over a fetched batch plus the
    journal tail behind its snapshot. [first] numbers the error context
    when the entries are a tail of a longer history. *)
let replay_entries ?budget ?(first = 1) (txn : t)
    (entries : Journal.entry list) (db : Db.t) : (Db.t, Error.t) result =
  let txn = { txn with journal = None } in
  let rec go i db = function
    | [] -> Ok db
    | (entry : Journal.entry) :: rest -> (
        match run ?budget txn entry.Journal.calls db with
        | Ok db' -> go (i + 1) db' rest
        | Result.Error { error; _ } ->
          Result.Error
            {
              error with
              Error.phase = Error.Replay;
              context = ("entry", string_of_int i) :: error.Error.context;
            })
  in
  go first db entries

(** Re-run every committed entry of the journal at [path] as a
    transaction from [db]: the recovery path. Entries are not
    re-journaled; the result is the journaled run's committed state,
    reproduced exactly. Journals truncated behind a snapshot are an
    error here ({!Journal.load}); the snapshot-aware recovery lives in
    [Fdbs_service.Session.replay]. *)
let replay ?budget (txn : t) (path : string) (db : Db.t) : (Db.t, Error.t) result =
  match Journal.load path with
  | Result.Error e -> Result.Error { e with Error.phase = Error.Replay }
  (* a torn tail was already dropped by {!Journal.load}; the CLI is
     responsible for surfacing the warning *)
  | Ok (entries, _torn) -> replay_entries ?budget txn entries db
