(** A write-ahead journal of committed transactions.

    One entry per committed transaction, recording the procedure calls
    it performed. The on-disk format is line-oriented and append-only:

    {v
    call offer cs101
    call enroll ana cs101
    commit
    v}

    — each committed transaction writes its calls followed by a
    [commit] marker and a flush, so a crash mid-entry leaves a trailing
    uncommitted fragment that {!load} drops (reporting it as the torn
    tail). Replaying a journal against the initial state reproduces the
    committed state exactly ({!Txn.replay}). *)

open Fdbs_kernel

type call = string * Value.t list

type entry = { calls : call list }

(* Values are serialized with the same heuristic the CLI uses to parse
   call arguments: integers and the Booleans print literally, anything
   else is a symbol. Round-trips for every value the CLI can introduce. *)
let string_of_value (v : Value.t) = Value.to_string v

let value_of_string (s : string) : Value.t =
  match int_of_string_opt s with
  | Some n -> Value.Int n
  | None -> (
      match s with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | _ -> Value.Sym s)

let pp_call ppf ((name, args) : call) =
  Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") Value.pp) args

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_call) e.calls

let io_error path msg =
  Error.makef Error.Io Error.Io_failure "journal %s: %s" path msg

(** Append one committed entry to the journal at [path], creating the
    file if needed; the entry is flushed before returning. *)
let append (path : string) (e : entry) : (unit, Error.t) result =
  match
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun (name, args) ->
            output_string oc
              (String.concat " " ("call" :: name :: List.map string_of_value args));
            output_char oc '\n')
          e.calls;
        output_string oc "commit\n";
        flush oc)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Result.Error (io_error path msg)

(** Load every {e committed} entry of the journal at [path].

    A record is complete only once its [commit] marker and newline are
    on disk, so a crash (or truncation) mid-write leaves a {e torn
    tail}: a final line without its newline, a malformed final line, or
    trailing [call] lines with no [commit]. Torn tails are tolerated —
    every complete record is returned together with [Some description]
    of what was dropped, and recovery proceeds ([fds replay] warns and
    exits 0). A malformed line {e before} the tail is real corruption
    and stays an error. *)
let load (path : string) : (entry list * string option, Error.t) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Result.Error (io_error path msg)
  | exception End_of_file -> Result.Error (io_error path "unreadable")
  | "" -> Ok ([], None)
  | content ->
    let n = String.length content in
    let ends_nl = content.[n - 1] = '\n' in
    let frag, complete =
      match List.rev (String.split_on_char '\n' content) with
      | last :: rest_rev -> ((if ends_nl then None else Some last), List.rev rest_rev)
      | [] -> (None, [])
    in
    let entries = ref [] in
    let pending = ref [] in
    let torn = ref [] in
    let error = ref None in
    (match frag with
     | Some f -> torn := [ Fmt.str "torn final record (%d bytes)" (String.length f) ]
     | None -> ());
    let total = List.length complete in
    List.iteri
      (fun i line ->
        if !error = None then
          match String.split_on_char ' ' (String.trim line) with
          | [ "" ] -> ()
          | [ "commit" ] ->
            entries := { calls = List.rev !pending } :: !entries;
            pending := []
          | "call" :: name :: args ->
            pending := (name, List.map value_of_string args) :: !pending
          | _ ->
            if i = total - 1 then
              torn := Fmt.str "malformed trailing line %S" line :: !torn
            else error := Some (io_error path (Fmt.str "malformed line %S" line)))
      complete;
    (match !error with
     | Some e -> Result.Error e
     | None ->
       (match !pending with
        | [] -> ()
        | ps ->
          torn :=
            Fmt.str "%d uncommitted trailing call(s)" (List.length ps) :: !torn);
       let torn =
         match List.rev !torn with
         | [] -> None
         | parts -> Some (String.concat "; " parts ^ " dropped")
       in
       Ok (List.rev !entries, torn))
