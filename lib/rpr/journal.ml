(** A write-ahead journal of committed transactions.

    One entry per committed transaction, recording the procedure calls
    it performed. The on-disk format is line-oriented and append-only:

    {v
    call offer cs101
    call enroll ana cs101
    commit
    v}

    — each committed transaction writes its calls followed by a
    [commit] marker and a flush, so a crash mid-entry leaves a trailing
    uncommitted fragment that {!load} drops (reporting it as the torn
    tail). Replaying a journal against the initial state reproduces the
    committed state exactly ({!Txn.replay}).

    Two marker lines extend the format for replication without
    disturbing plain journals, which never contain them:

    - [epoch N] stamps a leadership term: every entry after the marker
      belongs to epoch [N]. A leader boot appends a fresh marker
      ({!append_epoch}), so followers can reject streams from
      resurrected stale leaders.
    - [base N] may appear only as the first line, and only in journals
      rewritten by {!truncate}: the first [N] entries live in the
      snapshot next to the journal, and the file carries only the tail.
      Truncation is legal {e only} behind a durable snapshot — the
      snapshot is renamed into place before the journal is rewritten,
      so a crash between the two leaves a longer journal, never a gap.

    Durability: {!append} flushes the channel (the entry survives a
    process crash); with [~fsync:true] it additionally [fsync]s the
    file descriptor before returning, so the entry survives an
    operating-system crash or power loss. Replication leaders run with
    fsync on. *)

open Fdbs_kernel

type call = string * Value.t list

type entry = { calls : call list }

(** An entry with its replication coordinates: [offset] is the 1-based
    absolute position in the full history (entries hidden behind a
    [base] marker still count), [ep] the epoch it was committed in. *)
type stamped = { offset : int; ep : int; entry : entry }

(** A loaded journal, replication view: [base] entries live in the
    snapshot (0 for ordinary journals), [epoch] is the last stamped
    epoch, [stamped] the entries present in the file, in commit order,
    with offsets [base+1 ..]. *)
type log = {
  base : int;
  epoch : int;
  stamped : stamped list;
  torn : string option;
}

(* Values are serialized with the same heuristic the CLI uses to parse
   call arguments: integers and the Booleans print literally, anything
   else is a symbol. Round-trips for every value the CLI can introduce. *)
let string_of_value (v : Value.t) = Value.to_string v

let value_of_string (s : string) : Value.t =
  match int_of_string_opt s with
  | Some n -> Value.Int n
  | None -> (
      match s with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | _ -> Value.Sym s)

let pp_call ppf ((name, args) : call) =
  Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") Value.pp) args

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_call) e.calls

let io_error path msg =
  Error.makef Error.Io Error.Io_failure "journal %s: %s" path msg

(* --- line grammar --- *)

type line =
  | L_call of call
  | L_commit
  | L_epoch of int
  | L_base of int
  | L_blank
  | L_malformed

let parse_line (s : string) : line =
  match String.split_on_char ' ' (String.trim s) with
  | [ "" ] -> L_blank
  | [ "commit" ] -> L_commit
  | "call" :: name :: args -> L_call (name, List.map value_of_string args)
  | [ "epoch"; n ] -> (
      match int_of_string_opt n with
      | Some e when e >= 0 -> L_epoch e
      | _ -> L_malformed)
  | [ "base"; n ] -> (
      match int_of_string_opt n with
      | Some b when b >= 0 -> L_base b
      | _ -> L_malformed)
  | _ -> L_malformed

(* --- appending --- *)

let sync_out oc = Unix.fsync (Unix.descr_of_out_channel oc)

let with_append ?(fsync = false) path (f : out_channel -> unit) :
  (unit, Error.t) result =
  match
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        f oc;
        flush oc;
        if fsync then sync_out oc)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Result.Error (io_error path msg)
  | exception Unix.Unix_error (err, _, _) ->
    Result.Error (io_error path (Unix.error_message err))

let output_entry oc (e : entry) =
  List.iter
    (fun (name, args) ->
      output_string oc
        (String.concat " " ("call" :: name :: List.map string_of_value args));
      output_char oc '\n')
    e.calls;
  output_string oc "commit\n"

(** Append one committed entry to the journal at [path], creating the
    file if needed. Flushed before returning; with [~fsync:true] also
    fsynced, so the entry survives power loss. *)
let append ?fsync (path : string) (e : entry) : (unit, Error.t) result =
  with_append ?fsync path (fun oc -> output_entry oc e)

(** Stamp a leadership epoch: every entry appended after the marker
    belongs to epoch [n]. *)
let append_epoch ?fsync (path : string) (n : int) : (unit, Error.t) result =
  with_append ?fsync path (fun oc -> output_string oc (Fmt.str "epoch %d\n" n))

(* --- loading --- *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | content -> Ok content
  | exception Sys_error msg -> Result.Error (io_error path msg)
  | exception End_of_file -> Result.Error (io_error path "unreadable")

(** Load the journal at [path], replication view: every complete
    record, stamped with its absolute offset and epoch, plus the [base]
    behind which entries live in the snapshot.

    A record is complete only once its marker line and newline are on
    disk, so a crash (or truncation) mid-write leaves a {e torn tail}:
    a final line without its newline, a malformed final line, or
    trailing [call] lines with no [commit]. Torn tails are tolerated —
    every complete record is returned together with [Some description]
    of what was dropped, and recovery proceeds ([fds replay] warns and
    exits 0). A malformed line {e before} the tail is real corruption
    and stays an error; the error names the 1-based line number and
    byte offset ([line] and [byte] context entries), so an operator can
    truncate a corrupt log deliberately. *)
let load_log (path : string) : (log, Error.t) result =
  match read_file path with
  | Result.Error e -> Result.Error e
  | Ok "" -> Ok { base = 0; epoch = 0; stamped = []; torn = None }
  | Ok content ->
    let n = String.length content in
    let ends_nl = content.[n - 1] = '\n' in
    let frag, complete =
      match List.rev (String.split_on_char '\n' content) with
      | last :: rest_rev -> ((if ends_nl then None else Some last), List.rev rest_rev)
      | [] -> (None, [])
    in
    let base = ref 0 in
    let epoch = ref 0 in
    let offset = ref 0 in
    let entries = ref [] in
    let pending = ref [] in
    let torn = ref [] in
    let error = ref None in
    (match frag with
     | Some f -> torn := [ Fmt.str "torn final record (%d bytes)" (String.length f) ]
     | None -> ());
    let total = List.length complete in
    let byte = ref 0 in
    List.iteri
      (fun i line ->
        let line_start = !byte in
        byte := !byte + String.length line + 1;
        if !error = None then
          match parse_line line with
          | L_blank -> ()
          | L_commit ->
            incr offset;
            entries :=
              { offset = !base + !offset; ep = !epoch;
                entry = { calls = List.rev !pending } }
              :: !entries;
            pending := []
          | L_call c -> pending := c :: !pending
          | L_epoch e -> epoch := max !epoch e
          | L_base b when i = 0 -> base := b
          | L_base _ | L_malformed ->
            if i = total - 1 then
              torn := Fmt.str "malformed trailing line %S" line :: !torn
            else
              error :=
                Some
                  (Error.makef
                     ~context:
                       [
                         ("line", string_of_int (i + 1));
                         ("byte", string_of_int line_start);
                       ]
                     Error.Io Error.Io_failure
                     "journal %s: malformed line %d (byte %d): %S" path (i + 1)
                     line_start line))
      complete;
    (match !error with
     | Some e -> Result.Error e
     | None ->
       (match !pending with
        | [] -> ()
        | ps ->
          torn :=
            Fmt.str "%d uncommitted trailing call(s)" (List.length ps) :: !torn);
       let torn =
         match List.rev !torn with
         | [] -> None
         | parts -> Some (String.concat "; " parts ^ " dropped")
       in
       Ok { base = !base; epoch = !epoch; stamped = List.rev !entries; torn })

(** {!load_log} restricted to complete histories: the entries and the
    torn-tail description. A truncated journal ([base > 0]) is an error
    here — its prefix lives in the snapshot, so replaying the file
    alone from the empty instance would silently skip history; use
    {!load_log} (or the snapshot-aware [fds replay]) instead. *)
let load (path : string) : (entry list * string option, Error.t) result =
  match load_log path with
  | Result.Error e -> Result.Error e
  | Ok log when log.base > 0 ->
    Result.Error
      (io_error path
         (Fmt.str
            "truncated behind a snapshot (base %d): replay it with its \
             snapshot, not alone"
            log.base))
  | Ok log -> Ok (List.map (fun s -> s.entry) log.stamped, log.torn)

(* --- truncation --- *)

(** Rewrite the journal at [path] to carry only [tail] (entries with
    offsets [base+1 ..]) behind a [base] marker, stamping [epoch]. The
    rewrite goes through a temp file, fsync, and an atomic rename — and
    the caller must have made the snapshot covering offsets [1..base]
    durable {e first}; under that ordering a crash anywhere leaves
    either the old journal or the new one, never a history gap. *)
let truncate (path : string) ~(base : int) ~(epoch : int)
    (tail : stamped list) : (unit, Error.t) result =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        if base > 0 then output_string oc (Fmt.str "base %d\n" base);
        if epoch > 0 then output_string oc (Fmt.str "epoch %d\n" epoch);
        let last = ref epoch in
        List.iter
          (fun s ->
            if s.ep > !last then (
              output_string oc (Fmt.str "epoch %d\n" s.ep);
              last := s.ep);
            output_entry oc s.entry)
          tail;
        flush oc;
        sync_out oc)
  with
  | exception Sys_error msg -> Result.Error (io_error path msg)
  | exception Unix.Unix_error (err, _, _) ->
    Result.Error (io_error path (Unix.error_message err))
  | () -> (
      match Sys.rename tmp path with
      | () -> Ok ()
      | exception Sys_error msg -> Result.Error (io_error path msg))
