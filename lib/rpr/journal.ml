(** A write-ahead journal of committed transactions.

    One entry per committed transaction, recording the procedure calls
    it performed. The on-disk format is line-oriented and append-only:

    {v
    call offer cs101
    call enroll ana cs101
    commit
    v}

    — each committed transaction writes its calls followed by a
    [commit] marker and a flush, so a crash mid-entry leaves a trailing
    uncommitted fragment that {!load} ignores. Replaying a journal
    against the initial state reproduces the committed state exactly
    ({!Txn.replay}). *)

open Fdbs_kernel

type call = string * Value.t list

type entry = { calls : call list }

(* Values are serialized with the same heuristic the CLI uses to parse
   call arguments: integers and the Booleans print literally, anything
   else is a symbol. Round-trips for every value the CLI can introduce. *)
let string_of_value (v : Value.t) = Value.to_string v

let value_of_string (s : string) : Value.t =
  match int_of_string_opt s with
  | Some n -> Value.Int n
  | None -> (
      match s with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | _ -> Value.Sym s)

let pp_call ppf ((name, args) : call) =
  Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") Value.pp) args

let pp_entry ppf (e : entry) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_call) e.calls

let io_error path msg =
  Error.makef Error.Io Error.Io_failure "journal %s: %s" path msg

(** Append one committed entry to the journal at [path], creating the
    file if needed; the entry is flushed before returning. *)
let append (path : string) (e : entry) : (unit, Error.t) result =
  match
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun (name, args) ->
            output_string oc
              (String.concat " " ("call" :: name :: List.map string_of_value args));
            output_char oc '\n')
          e.calls;
        output_string oc "commit\n";
        flush oc)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Result.Error (io_error path msg)

(** Load every {e committed} entry of the journal at [path]; calls after
    the last [commit] marker (a transaction interrupted mid-write) are
    dropped. *)
let load (path : string) : (entry list, Error.t) result =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec lines acc =
          match input_line ic with
          | line -> lines (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        lines [])
  with
  | exception Sys_error msg -> Result.Error (io_error path msg)
  | lines ->
    let entries = ref [] in
    let pending = ref [] in
    let bad = ref None in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "" ] -> ()
        | [ "commit" ] ->
          entries := { calls = List.rev !pending } :: !entries;
          pending := []
        | "call" :: name :: args ->
          pending := (name, List.map value_of_string args) :: !pending
        | _ -> if !bad = None then bad := Some line)
      lines;
    (match !bad with
     | Some line -> Result.Error (io_error path (Fmt.str "malformed line %S" line))
     | None -> Ok (List.rev !entries))
