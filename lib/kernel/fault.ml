(** Fault injection for exercising rollback and recovery paths.

    Execution code calls {!hit} at named sites ([semantics.exec],
    [relalg.eval], [algebra.eval], [txn.commit], ...); an armed fault
    fires there — aborting, exhausting a budget, or flipping the next
    constraint verdict — so tests can drive every failure path of the
    transaction layer deterministically. Injection is site-keyed (fire
    at the Nth hit of one site) or probabilistic (a seeded PRNG fires at
    any site with probability [p]); nothing fires unless armed. *)

type action =
  | Abort  (** raise {!Injected} at the site *)
  | Exhaust of Budget.resource  (** drain the armed budget *)
  | Flip  (** negate the next constraint verdict at the site *)

exception Injected of string  (** the site that fired *)

type arming = {
  a_site : string;
  a_action : action;
  mutable a_countdown : int;  (** fire when it reaches 0 *)
}

(* Deterministic LCG for probabilistic mode (Numerical Recipes
   constants); independent of [Random] so seeds are reproducible. *)
type prob = { p : float; mutable prng : int }

let state : arming list ref = ref []
let prob_state : (prob * action) option ref = ref None
let hit_counts : (string, int) Hashtbl.t = Hashtbl.create 16

(* Injection state is global and mutable; {!Pool} sweeps call {!hit}
   from several domains, so all reads-for-update go through one lock.
   The unarmed fast path stays lock-free. *)
let lock = Mutex.create ()

(* The budget a fired [Exhaust] drains; armed by the transaction layer. *)
let target_budget : Budget.t option ref = ref None

(* Counts faults that actually fired (not mere site hits), across all
   actions including verdict flips. *)
let c_triggered = Metrics.counter "fault.triggered"

let arm ?(after = 0) ~site action =
  state :=
    { a_site = site; a_action = action; a_countdown = after }
    :: List.filter (fun a -> a.a_site <> site) !state

let arm_probability ~p ~seed action = prob_state := Some ({ p; prng = seed }, action)

let disarm_all () =
  state := [];
  prob_state := None;
  target_budget := None;
  Hashtbl.reset hit_counts

let armed () = !state <> [] || !prob_state <> None

let set_budget b = target_budget := Some b

let hits site = Option.value ~default:0 (Hashtbl.find_opt hit_counts site)

let next_prob (pr : prob) =
  pr.prng <- (pr.prng * 1664525) + 1013904223;
  float_of_int (pr.prng land 0xFFFFFF) /. float_of_int 0x1000000

let fire site action =
  Metrics.incr c_triggered;
  match action with
  | Abort -> raise (Injected site)
  | Exhaust r ->
    (match !target_budget with
     | Some b -> Budget.exhaust b r
     | None -> raise (Injected site))
  | Flip -> ()  (* only meaningful through {!flip} *)

(** Record a hit at [site]; fire any armed fault that matches. *)
let hit (site : string) : unit =
  if armed () then begin
    (* Decide under the lock, fire outside it: [fire] may raise, and an
       [Exhaust] with an armed budget falls through to the
       probabilistic check, as in the sequential semantics. *)
    let site_action =
      Mutex.protect lock (fun () ->
          Hashtbl.replace hit_counts site (hits site + 1);
          match List.find_opt (fun a -> a.a_site = site) !state with
          | Some a when a.a_action <> Flip ->
            if a.a_countdown <= 0 then begin
              state := List.filter (fun a' -> a'.a_site <> site) !state;
              Some a.a_action
            end
            else begin
              a.a_countdown <- a.a_countdown - 1;
              None
            end
          | Some _ | None -> None)
    in
    (match site_action with Some a -> fire site a | None -> ());
    let prob_action =
      Mutex.protect lock (fun () ->
          match !prob_state with
          | Some (pr, action) when action <> Flip && next_prob pr < pr.p ->
            Some action
          | Some _ | None -> None)
    in
    match prob_action with Some a -> fire site a | None -> ()
  end

(** Pass a constraint verdict through the injector: an armed [Flip] at
    [site] negates it (once). *)
let flip (site : string) (verdict : bool) : bool =
  Mutex.protect lock (fun () ->
      match
        List.find_opt (fun a -> a.a_site = site && a.a_action = Flip) !state
      with
      | Some a ->
        Hashtbl.replace hit_counts site (hits site + 1);
        if a.a_countdown <= 0 then begin
          state := List.filter (fun a' -> a' != a) !state;
          Metrics.incr c_triggered;
          not verdict
        end
        else begin
          a.a_countdown <- a.a_countdown - 1;
          verdict
        end
      | None -> verdict)

let action_of_name = function
  | "abort" -> Ok Abort
  | "exhaust-steps" -> Ok (Exhaust Budget.Steps)
  | "exhaust-states" -> Ok (Exhaust Budget.States)
  | "exhaust-time" -> Ok (Exhaust Budget.Time)
  | "flip" -> Ok Flip
  | a -> Result.Error (Fmt.str "unknown fault action %S" a)

(** Parse a CLI fault spec: [SITE[:AFTER][:ACTION]] with ACTION one of
    [abort] (default), [exhaust-steps], [exhaust-states], [exhaust-time],
    [flip] — e.g. ["semantics.exec:3:abort"]. *)
let parse_spec (spec : string) : (string * int * action, string) result =
  match String.split_on_char ':' spec with
  | [] | [ "" ] -> Result.Error "empty fault spec"
  | [ site ] -> Ok (site, 0, Abort)
  | [ site; x ] -> (
      match int_of_string_opt x with
      | Some k -> Ok (site, k, Abort)
      | None -> Result.map (fun a -> (site, 0, a)) (action_of_name x))
  | [ site; n; a ] -> (
      match int_of_string_opt n with
      | None -> Result.Error (Fmt.str "bad fault count %S" n)
      | Some k -> Result.map (fun act -> (site, k, act)) (action_of_name a))
  | _ -> Result.Error (Fmt.str "bad fault spec %S" spec)

(** Arm from a CLI spec string. *)
let arm_spec (spec : string) : (unit, string) result =
  Result.map (fun (site, after, action) -> arm ~after ~site action) (parse_spec spec)
