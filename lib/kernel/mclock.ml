external now : unit -> (float[@unboxed])
  = "fdbs_mclock_now" "fdbs_mclock_now_unboxed"
[@@noalloc]

let now_us () = now () *. 1e6
