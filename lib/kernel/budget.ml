(** Unified resource budgets for execution (steps, distinct states,
    wall-clock time).

    A budget is a mutable account threaded through an execution: every
    statement spends a step, every fixpoint exploration is capped by the
    distinct-state allowance, and each spend also checks the wall-clock
    deadline. Exhaustion raises {!Exhausted}, which the transaction
    layer turns into a structured {!Error.t} and a rollback. *)

type resource = Steps | States | Time

let resource_name = function
  | Steps -> "steps"
  | States -> "states"
  | Time -> "time"

let pp_resource ppf r = Fmt.string ppf (resource_name r)

exception Exhausted of resource

type t = {
  mutable steps_left : int option;  (** [None] is unlimited *)
  mutable states_left : int option;  (** cap on distinct states per fixpoint *)
  mutable deadline : float option;  (** absolute time, in [clock]'s scale *)
  clock : unit -> float;
}

let unlimited () =
  { steps_left = None; states_left = None; deadline = None; clock = Unix.gettimeofday }

(** [make ?steps ?states ?ms ()] builds a budget with the given step
    fuel, distinct-state cap, and wall-clock allowance in milliseconds
    (measured from now). Omitted resources are unlimited. *)
let make ?steps ?states ?ms ?(clock = Unix.gettimeofday) () =
  {
    steps_left = steps;
    states_left = states;
    deadline = Option.map (fun ms -> clock () +. (float_of_int ms /. 1000.)) ms;
    clock;
  }

let is_unlimited (b : t) =
  b.steps_left = None && b.states_left = None && b.deadline = None

let check_time (b : t) =
  match b.deadline with
  | Some d when b.clock () > d -> raise (Exhausted Time)
  | Some _ | None -> ()

(** Spend one step of fuel; also checks the deadline. *)
let spend_step (b : t) =
  (match b.steps_left with
   | Some n when n <= 0 -> raise (Exhausted Steps)
   | Some n -> b.steps_left <- Some (n - 1)
   | None -> ());
  check_time b

(** The distinct-state cap, if any. *)
let states (b : t) = b.states_left

(** Tighten [limit] by the budget's distinct-state cap. *)
let cap_states (b : t) (limit : int) =
  match b.states_left with Some n -> min n limit | None -> limit

(** Force a resource to exhaustion — the hook {!Fault} uses to inject
    budget-exhaustion failures. *)
let exhaust (b : t) (r : resource) =
  match r with
  | Steps -> b.steps_left <- Some 0
  | States -> b.states_left <- Some 0
  | Time -> b.deadline <- Some (b.clock () -. 1.)

let pp ppf (b : t) =
  let pp_opt name ppf = function
    | Some n -> Fmt.pf ppf "%s=%d" name n
    | None -> Fmt.pf ppf "%s=inf" name
  in
  Fmt.pf ppf "@[%a %a %s@]" (pp_opt "steps") b.steps_left (pp_opt "states")
    b.states_left
    (match b.deadline with Some _ -> "deadline=set" | None -> "deadline=inf")
