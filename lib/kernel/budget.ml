(** Unified resource budgets for execution (steps, distinct states,
    elapsed time).

    A budget is a mutable account threaded through an execution: every
    statement spends a step, every fixpoint exploration is capped by the
    distinct-state allowance, and each spend also checks the
    monotonic-clock deadline. Exhaustion raises {!Exhausted}, which the transaction
    layer turns into a structured {!Error.t} and a rollback.

    Step accounting is an {!Atomic.t}, so a budget shared by several
    {!Pool} worker domains stays exact: the total number of steps spent
    across all domains before {!Exhausted} fires equals the fuel, just
    as in a single-domain run. *)

type resource = Steps | States | Time

let resource_name = function
  | Steps -> "steps"
  | States -> "states"
  | Time -> "time"

let pp_resource ppf r = Fmt.string ppf (resource_name r)

exception Exhausted of resource

(* [max_int] in [steps_left] means unlimited; any smaller value is the
   remaining fuel. [states_left] and [deadline] are read-mostly (only
   {!exhaust} writes them after creation), so plain mutable fields are
   enough — single-word writes do not tear in OCaml 5. *)
type t = {
  steps_left : int Atomic.t;
  mutable states_left : int option;  (** cap on distinct states per fixpoint *)
  mutable deadline : float option;  (** absolute time, in [clock]'s scale *)
  clock : unit -> float;
}

(* The default clock is monotonic: a wall clock (gettimeofday) can be
   stepped backwards or forwards by NTP, which would fire (or defer) a
   time budget arbitrarily. Tests inject their own [?clock]. *)
let default_clock = Mclock.now

let unlimited () =
  {
    steps_left = Atomic.make max_int;
    states_left = None;
    deadline = None;
    clock = default_clock;
  }

(** [make ?steps ?states ?ms ()] builds a budget with the given step
    fuel, distinct-state cap, and elapsed-time allowance in
    milliseconds (measured from now on the monotonic clock). Omitted
    resources are unlimited. *)
let make ?steps ?states ?ms ?(clock = default_clock) () =
  {
    steps_left = Atomic.make (match steps with Some n -> n | None -> max_int);
    states_left = states;
    deadline = Option.map (fun ms -> clock () +. (float_of_int ms /. 1000.)) ms;
    clock;
  }

let is_unlimited (b : t) =
  Atomic.get b.steps_left = max_int && b.states_left = None && b.deadline = None

let check_time (b : t) =
  match b.deadline with
  | Some d when b.clock () > d -> raise (Exhausted Time)
  | Some _ | None -> ()

(** Spend one step of fuel; also checks the deadline. Safe to call from
    several domains at once: each call consumes exactly one unit. *)
let spend_step (b : t) =
  (if Atomic.get b.steps_left <> max_int then
     let n = Atomic.fetch_and_add b.steps_left (-1) in
     if n <= 0 then begin
       (* keep the counter pinned near zero so concurrent spenders keep
          raising instead of wrapping toward [min_int] *)
       Atomic.set b.steps_left 0;
       raise (Exhausted Steps)
     end);
  check_time b

(** The distinct-state cap, if any. *)
let states (b : t) = b.states_left

(** Tighten [limit] by the budget's distinct-state cap. *)
let cap_states (b : t) (limit : int) =
  match b.states_left with Some n -> min n limit | None -> limit

(** Force a resource to exhaustion — the hook {!Fault} uses to inject
    budget-exhaustion failures. *)
let exhaust (b : t) (r : resource) =
  match r with
  | Steps -> Atomic.set b.steps_left 0
  | States -> b.states_left <- Some 0
  | Time -> b.deadline <- Some (b.clock () -. 1.)

let pp ppf (b : t) =
  let pp_steps ppf = function
    | n when n = max_int -> Fmt.pf ppf "steps=inf"
    | n -> Fmt.pf ppf "steps=%d" n
  in
  let pp_opt name ppf = function
    | Some n -> Fmt.pf ppf "%s=%d" name n
    | None -> Fmt.pf ppf "%s=inf" name
  in
  Fmt.pf ppf "@[%a %a %s@]" pp_steps (Atomic.get b.steps_left) (pp_opt "states")
    b.states_left
    (match b.deadline with Some _ -> "deadline=set" | None -> "deadline=inf")
