(** Unified resource budgets for execution (steps, distinct states,
    elapsed time).

    A budget is a mutable account threaded through an execution: every
    statement spends a step, every fixpoint exploration is capped by the
    distinct-state allowance, and each spend also checks the
    monotonic-clock deadline. Exhaustion raises {!Exhausted}, which the transaction
    layer turns into a structured {!Error.t} and a rollback.

    Step accounting is an {!Atomic.t}, so a budget shared by several
    {!Pool} worker domains stays exact: the total number of steps spent
    across all domains before {!Exhausted} fires equals the fuel, just
    as in a single-domain run. *)

type resource = Steps | States | Time

let resource_name = function
  | Steps -> "steps"
  | States -> "states"
  | Time -> "time"

let pp_resource ppf r = Fmt.string ppf (resource_name r)

exception Exhausted of resource

(* [max_int] in [steps_left] means unlimited; any smaller value is the
   remaining fuel. [states_left] and [deadline] are read-mostly (only
   {!exhaust} writes them after creation), so plain mutable fields are
   enough — single-word writes do not tear in OCaml 5. *)
type t = {
  steps_left : int Atomic.t;
  spent : int Atomic.t;  (** steps spent so far, even when unlimited *)
  mutable states_left : int option;  (** cap on distinct states per fixpoint *)
  mutable deadline : float option;  (** absolute time, in [clock]'s scale *)
  clock : unit -> float;
}

(* The default clock is monotonic: a wall clock (gettimeofday) can be
   stepped backwards or forwards by NTP, which would fire (or defer) a
   time budget arbitrarily. Tests inject their own [?clock]. *)
let default_clock = Mclock.now

let unlimited () =
  {
    steps_left = Atomic.make max_int;
    spent = Atomic.make 0;
    states_left = None;
    deadline = None;
    clock = default_clock;
  }

(** [make ?steps ?states ?ms ()] builds a budget with the given step
    fuel, distinct-state cap, and elapsed-time allowance in
    milliseconds (measured from now on the monotonic clock). Omitted
    resources are unlimited. *)
let make ?steps ?states ?ms ?(clock = default_clock) () =
  {
    steps_left = Atomic.make (match steps with Some n -> n | None -> max_int);
    spent = Atomic.make 0;
    states_left = states;
    deadline = Option.map (fun ms -> clock () +. (float_of_int ms /. 1000.)) ms;
    clock;
  }

let is_unlimited (b : t) =
  Atomic.get b.steps_left = max_int && b.states_left = None && b.deadline = None

let check_time (b : t) =
  match b.deadline with
  | Some d when b.clock () > d -> raise (Exhausted Time)
  | Some _ | None -> ()

(** Spend one step of fuel; also checks the deadline. Safe to call from
    several domains at once: each call consumes exactly one unit. *)
let spend_step (b : t) =
  Atomic.incr b.spent;
  (if Atomic.get b.steps_left <> max_int then
     let n = Atomic.fetch_and_add b.steps_left (-1) in
     if n <= 0 then begin
       (* keep the counter pinned near zero so concurrent spenders keep
          raising instead of wrapping toward [min_int] *)
       Atomic.set b.steps_left 0;
       raise (Exhausted Steps)
     end);
  check_time b

(** Steps spent through this budget so far — tracked even when the step
    fuel is unlimited, so admission layers can post-charge the actual
    cost of a request against a rate bucket. *)
let spent (b : t) = Atomic.get b.spent

(** The distinct-state cap, if any. *)
let states (b : t) = b.states_left

(** Tighten [limit] by the budget's distinct-state cap. *)
let cap_states (b : t) (limit : int) =
  match b.states_left with Some n -> min n limit | None -> limit

(** Force a resource to exhaustion — the hook {!Fault} uses to inject
    budget-exhaustion failures. *)
let exhaust (b : t) (r : resource) =
  match r with
  | Steps -> Atomic.set b.steps_left 0
  | States -> b.states_left <- Some 0
  | Time -> b.deadline <- Some (b.clock () -. 1.)

(* ------------------------------------------------------------------ *)
(* token buckets: admission control over requests and budget steps     *)
(* ------------------------------------------------------------------ *)

(** A mutex-protected token bucket on the monotonic clock: [rate]
    tokens accrue per second up to [burst]. [take] is the pre-paid
    form (admit iff the tokens are there, deduct them); [charge] is the
    post-paid form — it may drive the level negative (debt), which
    [take] then refuses until the refill covers it. The admission
    layers use [take ~cost:1.] per request and [take ~cost:0.] +
    [charge spent] for budget-step metering, where a request's true
    cost is only known after it ran. *)
module Bucket = struct
  type bucket = {
    rate : float;  (** tokens per second; > 0 *)
    burst : float;  (** capacity; the initial level *)
    mutable level : float;
    mutable stamp : float;  (** last refill, in [clock]'s scale *)
    clock : unit -> float;
    lock : Mutex.t;
  }

  type t = bucket

  let make ?(clock = default_clock) ?burst ~rate () =
    let rate = Float.max rate 1e-6 in
    let burst =
      match burst with
      | Some b -> Float.max b 1.
      | None -> Float.max rate 1.
    in
    { rate; burst; level = burst; stamp = clock (); clock; lock = Mutex.create () }

  let refill b =
    let now = b.clock () in
    let dt = now -. b.stamp in
    if dt > 0. then begin
      b.level <- Float.min b.burst (b.level +. (dt *. b.rate));
      b.stamp <- now
    end

  let locked b f =
    Mutex.lock b.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock b.lock) f

  (** [take b cost] admits and deducts when at least [cost] tokens are
      available; otherwise [Error retry_after] — the seconds until the
      refill covers the shortfall. [cost = 0.] admits exactly when the
      bucket is out of debt. *)
  let take (b : t) (cost : float) : (unit, float) result =
    locked b (fun () ->
        refill b;
        if b.level >= cost then begin
          b.level <- b.level -. cost;
          Ok ()
        end
        else Error (Float.max 0. ((cost -. b.level) /. b.rate)))

  (** Post-paid spend: deduct [cost] unconditionally, into debt if need
      be. *)
  let charge (b : t) (cost : float) : unit =
    locked b (fun () ->
        refill b;
        b.level <- b.level -. cost)

  (** The current level (after refill); negative while in debt. *)
  let level (b : t) : float = locked b (fun () -> refill b; b.level)
end

let pp ppf (b : t) =
  let pp_steps ppf = function
    | n when n = max_int -> Fmt.pf ppf "steps=inf"
    | n -> Fmt.pf ppf "steps=%d" n
  in
  let pp_opt name ppf = function
    | Some n -> Fmt.pf ppf "%s=%d" name n
    | None -> Fmt.pf ppf "%s=inf" name
  in
  Fmt.pf ppf "@[%a %a %s@]" pp_steps (Atomic.get b.steps_left) (pp_opt "states")
    b.states_left
    (match b.deadline with Some _ -> "deadline=set" | None -> "deadline=inf")
