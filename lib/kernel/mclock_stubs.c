/* Monotonic clock for Fdbs_kernel.Mclock.
 *
 * CLOCK_MONOTONIC never jumps backwards (NTP slews it but does not
 * step it), which is what budgets, span durations, and benchmark
 * timers need. Exposed both boxed (bytecode) and unboxed (native,
 * noalloc) so reading the clock costs a function call and nothing
 * else. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

double fdbs_mclock_now_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

CAMLprim value fdbs_mclock_now(value unit)
{
  return caml_copy_double(fdbs_mclock_now_unboxed(unit));
}
