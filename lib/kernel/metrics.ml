type counter = { name : string; cell : int Atomic.t }

type histogram = {
  hname : string;
  count : int Atomic.t;
  sum_ns : int Atomic.t;
  max_ns : int Atomic.t;
  buckets : int Atomic.t array; (* bucket i counts latencies in [2^i, 2^i+1) us *)
}

(* The registry is read rarely (registration, snapshot) and never on
   the per-event path, so a single mutex is plenty. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c)

let incr (c : counter) = Atomic.incr c.cell
let add (c : counter) n = ignore (Atomic.fetch_and_add c.cell n)
let value (c : counter) = Atomic.get c.cell
let set (c : counter) n = Atomic.set c.cell n
let bucket_count = 32

let histogram hname =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt histograms hname with
      | Some h -> h
      | None ->
        let h =
          {
            hname;
            count = Atomic.make 0;
            sum_ns = Atomic.make 0;
            max_ns = Atomic.make 0;
            buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.replace histograms hname h;
        h)

let rec store_max cell n =
  let cur = Atomic.get cell in
  if n > cur && not (Atomic.compare_and_set cell cur n) then store_max cell n

let bucket_of_us us =
  let rec find i bound =
    if i >= bucket_count - 1 || us < bound then i else find (i + 1) (bound *. 2.)
  in
  find 0 1.

let observe_us (h : histogram) us =
  let us = if us < 0. then 0. else us in
  let ns = int_of_float (us *. 1000.) in
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum_ns ns);
  store_max h.max_ns ns;
  Atomic.incr h.buckets.(bucket_of_us us)

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
}

and hist_summary = { h_count : int; h_sum_ns : int; h_max_ns : int }

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.protect lock (fun () ->
      let cs =
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters []
      in
      let hs =
        Hashtbl.fold
          (fun name h acc ->
            ( name,
              {
                h_count = Atomic.get h.count;
                h_sum_ns = Atomic.get h.sum_ns;
                h_max_ns = Atomic.get h.max_ns;
              } )
            :: acc)
          histograms []
      in
      { counters = List.sort by_name cs; histograms = List.sort by_name hs })

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h ->
          Atomic.set h.count 0;
          Atomic.set h.sum_ns 0;
          Atomic.set h.max_ns 0;
          Array.iter (fun b -> Atomic.set b 0) h.buckets)
        histograms)

let pp_snapshot ppf (s : snapshot) =
  Fmt.pf ppf "@[<v>counters:";
  List.iter (fun (name, v) -> Fmt.pf ppf "@,  %-32s %d" name v) s.counters;
  Fmt.pf ppf "@,histograms:";
  List.iter
    (fun (name, h) ->
      if h.h_count = 0 then Fmt.pf ppf "@,  %-32s count=0" name
      else
        Fmt.pf ppf "@,  %-32s count=%d mean=%.1fus max=%.1fus" name h.h_count
          (float_of_int h.h_sum_ns /. float_of_int h.h_count /. 1000.)
          (float_of_int h.h_max_ns /. 1000.))
    s.histograms;
  Fmt.pf ppf "@]"
