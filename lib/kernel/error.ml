(** Structured execution errors: an error code, the phase that raised
    it, and a context of key/value pairs — replacing the scattered
    string exceptions on the transactional execution path, so callers
    can dispatch on the failure rather than parse a message. *)

type phase = Parse | Exec | Commit | Rollback | Replay | Io

let phase_name = function
  | Parse -> "parse"
  | Exec -> "exec"
  | Commit -> "commit"
  | Rollback -> "rollback"
  | Replay -> "replay"
  | Io -> "io"

type code =
  | Budget_exhausted of Budget.resource
  | Constraint_violation of string  (** the violated constraint's name *)
  | Blocked  (** no outcome: a test admitted no continuation *)
  | Nondeterministic of int  (** distinct outcome count *)
  | Fault_injected of string  (** the fault site that fired *)
  | Unknown_procedure of string
  | Exec_failure  (** an execution-level failure (detail in [message]) *)
  | Not_compilable of string
      (** the offending subformula of a body that the algebra compiler
          cannot handle, under the [`Compiled] evaluation strategy *)
  | Io_failure
  | Replay_mismatch
  | Read_only  (** a write sent to a read-only replica *)
  | Stale_epoch
      (** a replication fetch from an epoch ahead of the leader's *)
  | Overloaded
      (** admission control refused the request (rate limit or shed
          load); the context carries [retry-after-ms] *)
  | Unauthorized  (** a missing or invalid credential *)
  | Monitor_violation of string
      (** a streaming temporal monitor fired; the violated axiom's
          name *)

let code_name = function
  | Budget_exhausted r -> "budget-" ^ Budget.resource_name r
  | Constraint_violation _ -> "constraint-violation"
  | Blocked -> "blocked"
  | Nondeterministic _ -> "nondeterministic"
  | Fault_injected _ -> "fault-injected"
  | Unknown_procedure _ -> "unknown-procedure"
  | Exec_failure -> "exec-failure"
  | Not_compilable _ -> "not-compilable"
  | Io_failure -> "io-failure"
  | Replay_mismatch -> "replay-mismatch"
  | Read_only -> "read-only"
  | Stale_epoch -> "stale-epoch"
  | Overloaded -> "overloaded"
  | Unauthorized -> "unauthorized"
  | Monitor_violation _ -> "monitor-violation"

type t = {
  code : code;
  phase : phase;
  context : (string * string) list;  (** e.g. which call, which constraint *)
  message : string;
}

let make ?(context = []) phase code message = { code; phase; context; message }

(** The exception form, for code that must abort through callers that
    only know how to re-raise; {!Txn.run} and the CLI catch it. *)
exception Error of t

let raise_error ?context phase code message =
  raise (Error (make ?context phase code message))

let makef ?context phase code fmt =
  Fmt.kstr (fun s -> make ?context phase code s) fmt

(* The admission-control rejection, with the retry hint in the wire
   form clients parse: context ["retry-after-ms"], rounded up so a
   compliant client never retries early. *)
let overloaded ?retry_after_s message =
  let context =
    match retry_after_s with
    | None -> []
    | Some s ->
      [
        ( "retry-after-ms",
          string_of_int (Stdlib.max 1 (int_of_float (Float.ceil (s *. 1000.)))) );
      ]
  in
  make ~context Exec Overloaded message

let pp ppf (e : t) =
  Fmt.pf ppf "[%s/%s] %s" (phase_name e.phase) (code_name e.code) e.message;
  if e.context <> [] then
    Fmt.pf ppf " (%a)"
      Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
      e.context

let to_string (e : t) = Fmt.str "%a" pp e

(* The wire form used by the `fds serve` protocol: phase and code as
   their registry names, the context as a nested object. *)
let to_json (e : t) : Json.t =
  Json.Obj
    [
      ("phase", Json.Str (phase_name e.phase));
      ("code", Json.Str (code_name e.code));
      ("message", Json.Str e.message);
      ("context", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.context));
    ]
